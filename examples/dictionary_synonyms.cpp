// Finding near-synonyms in a dictionary — the paper's dicD use case
// ("brother-in-law" ~ "sister-in-law"): head words whose definitions use
// almost the same vocabulary come out as high-similarity column pairs.
//
//   ./dictionary_synonyms [num_head_words] [min_similarity]

#include <cstdio>
#include <cstdlib>

#include "core/engine.h"
#include "datagen/dictionary_gen.h"

int main(int argc, char** argv) {
  using namespace dmc;
  DictionaryOptions gen;
  gen.num_head_words =
      argc > 1 ? static_cast<uint32_t>(atoi(argv[1])) : 12000;
  gen.num_definition_words = gen.num_head_words / 2;
  gen.num_synonym_groups = gen.num_head_words / 40;
  const double minsim = argc > 2 ? atof(argv[2]) : 0.8;

  const DictionaryData dict = GenerateDictionary(gen);
  std::printf("dictionary: %u head words over %u definition words,"
              " %zu links; %zu planted synonym groups\n",
              dict.matrix.num_columns(), dict.matrix.num_rows(),
              dict.matrix.num_ones(), dict.synonym_groups.size());

  SimilarityMiningOptions options;
  options.min_similarity = minsim;
  MiningStats stats;
  auto pairs = MineSimilarities(dict.matrix, options, &stats);
  if (!pairs.ok()) {
    std::fprintf(stderr, "%s\n", pairs.status().ToString().c_str());
    return 1;
  }
  std::printf("\nsimilar head-word pairs at %.0f%%: %zu (%.2fs)\n",
              minsim * 100, pairs->size(), stats.total_seconds);
  int shown = 0;
  for (const auto& p : pairs->SortedBySimilarity()) {
    std::printf("  head%-6u ~ head%-6u sim=%.3f (defs of %u and %u"
                " words, %u shared)\n",
                p.a, p.b, p.similarity(), p.ones_a, p.ones_b,
                p.intersection);
    if (++shown >= 12) break;
  }

  // Recall against the planted synonym groups.
  size_t recovered = 0, total = 0;
  const auto found = pairs->Pairs();
  for (const auto& group : dict.synonym_groups) {
    for (size_t i = 0; i < group.size(); ++i) {
      for (size_t j = i + 1; j < group.size(); ++j) {
        ++total;
        const auto key = std::make_pair(std::min(group[i], group[j]),
                                        std::max(group[i], group[j]));
        for (const auto& f : found) {
          if (f == key) {
            ++recovered;
            break;
          }
        }
      }
    }
  }
  std::printf("\nplanted synonym pairs with similarity >= %.0f%%"
              " recovered: %zu/%zu\n",
              minsim * 100, recovered, total);
  std::printf("(pairs whose generated overlap landed below the threshold"
              " are correctly absent — DMC is exact.)\n");
  return 0;
}
