// Text mining with low-support implication rules — the paper's §6.3
// showcase. Mines a synthetic Reuters-like corpus at 85% confidence,
// expands the rule graph from a rare entity ("polgar"), and prints the
// rule groups, reproducing the Fig. 7 experience end to end.
//
//   ./news_text_mining [num_docs] [seed_word]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/engine.h"
#include "datagen/news_gen.h"
#include "matrix/column_stats.h"
#include "rules/grouping.h"
#include "rules/multiattr.h"

int main(int argc, char** argv) {
  using namespace dmc;
  NewsOptions gen;
  gen.num_docs = argc > 1 ? static_cast<uint32_t>(atoi(argv[1])) : 20000;
  gen.num_topics = 30;
  gen.background_vocab = 5000;
  const std::string seed_word = argc > 2 ? argv[2] : "polgar";

  const NewsData news = GenerateNews(gen);
  std::printf("corpus: %u documents, %u words, %zu occurrences\n",
              news.matrix.num_rows(), news.matrix.num_columns(),
              news.matrix.num_ones());

  // Low-support pruning as in Fig. 7: keep words appearing >= 5 times.
  const PrunedMatrix pruned = SupportPruneColumns(news.matrix, 5);
  std::printf("after support >= 5 pruning: %u words\n",
              pruned.matrix.num_columns());

  ImplicationMiningOptions options;
  options.min_confidence = 0.85;
  MiningStats stats;
  auto rules = MineImplications(pruned.matrix, options, &stats);
  if (!rules.ok()) {
    std::fprintf(stderr, "%s\n", rules.status().ToString().c_str());
    return 1;
  }
  std::printf("rules at 85%% confidence: %zu (%.2fs, peak counter memory"
              " %.1f KB)\n",
              rules->size(), stats.total_seconds,
              stats.peak_counter_bytes / 1024.0);

  // Locate the seed word among pruned columns.
  ColumnId seed = pruned.matrix.num_columns();
  for (ColumnId c = 0; c < pruned.matrix.num_columns(); ++c) {
    if (news.words[pruned.original_column[c]] == seed_word) seed = c;
  }
  if (seed == pruned.matrix.num_columns()) {
    std::printf("seed word '%s' not found (or support-pruned)\n",
                seed_word.c_str());
    return 1;
  }

  const auto expanded = ExpandFromSeed(*rules, seed, /*max_depth=*/2);
  std::printf("\nrules reachable from '%s' (2 hops):\n", seed_word.c_str());
  int shown = 0;
  for (const auto& r : expanded.SortedByConfidence()) {
    std::printf("  %-16s -> %-16s conf=%.3f support=%u\n",
                news.words[pruned.original_column[r.lhs]].c_str(),
                news.words[pruned.original_column[r.rhs]].c_str(),
                r.confidence(), r.hits());
    if (++shown >= 30) break;
  }

  // Group all rules into topics (the conclusion's multi-attribute idea),
  // with exact joint support of each group.
  const auto groups = SummarizeRuleGroups(pruned.matrix, *rules);
  std::printf("\nrule groups: %zu; largest:\n", groups.size());
  int g_shown = 0;
  for (const auto& g : groups) {
    std::printf("  [%zu words / %zu rules, joint support %u, cohesion"
                " %.2f, weakest link %.2f]",
                g.columns.size(), g.rule_indices.size(), g.joint_support,
                g.cohesion, g.min_rule_confidence);
    int w = 0;
    for (ColumnId c : g.columns) {
      std::printf(" %s", news.words[pruned.original_column[c]].c_str());
      if (++w >= 8) {
        std::printf(" ...");
        break;
      }
    }
    std::printf("\n");
    if (++g_shown >= 6) break;
  }
  return 0;
}
