// Side-by-side comparison of every algorithm in the library on one
// workload — a compact, runnable version of the paper's §6.2 comparison.
// Useful as a template for evaluating the trade-offs on your own data.
//
//   ./algorithm_shootout [num_transactions]

#include <cstdio>
#include <cstdlib>

#include "baselines/apriori.h"
#include "baselines/dhp.h"
#include "baselines/kmin.h"
#include "baselines/minhash.h"
#include "core/engine.h"
#include "datagen/quest_gen.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  using namespace dmc;
  QuestOptions gen;
  gen.num_transactions =
      argc > 1 ? static_cast<uint32_t>(atoi(argv[1])) : 30000;
  gen.num_items = 2000;
  const BinaryMatrix m = GenerateQuest(gen);
  std::printf("market-basket data: %u transactions x %u items, %zu ones\n",
              m.num_rows(), m.num_columns(), m.num_ones());

  const double minconf = 0.9;
  const double minsim = 0.8;

  std::printf("\n-- implication rules (confidence >= %.0f%%) --\n",
              minconf * 100);
  std::printf("%-12s %10s %10s %14s %s\n", "algorithm", "time [s]",
              "rules", "memory", "notes");
  {
    MiningStats s;
    ImplicationMiningOptions o;
    o.min_confidence = minconf;
    auto r = MineImplications(m, o, &s);
    std::printf("%-12s %10.3f %10zu %11.2f MB %s\n", "DMC-imp",
                s.total_seconds, r.ok() ? r->size() : 0,
                s.peak_counter_bytes / (1024.0 * 1024.0),
                "exact, no support pruning");
  }
  {
    AprioriStats s;
    auto r = AprioriImplications(m, AprioriOptions{}, minconf, &s);
    std::printf("%-12s %10.3f %10zu %11.2f MB %s\n", "a-priori",
                s.total_seconds, r.ok() ? r->size() : 0,
                s.counter_bytes / (1024.0 * 1024.0),
                "exact, O(m^2) counters");
  }
  {
    DhpOptions o;
    o.min_support = 10;
    DhpStats s;
    auto r = DhpImplications(m, o, minconf, &s);
    std::printf("%-12s %10.3f %10zu %11.2f MB %s\n", "DHP(sup=10)",
                s.total_seconds, r.size(),
                s.counter_bytes / (1024.0 * 1024.0),
                "loses support<10 rules");
  }
  {
    KMinOptions o;
    o.num_hashes = 100;
    KMinStats s;
    auto r = KMinImplications(m, o, minconf, &s);
    std::printf("%-12s %10.3f %10zu %14s %s\n", "K-Min", s.total_seconds,
                r.size(), "-", "estimates; FN/FP possible");
  }

  std::printf("\n-- similarity pairs (similarity >= %.0f%%) --\n",
              minsim * 100);
  std::printf("%-12s %10s %10s %14s %s\n", "algorithm", "time [s]",
              "pairs", "memory", "notes");
  {
    MiningStats s;
    SimilarityMiningOptions o;
    o.min_similarity = minsim;
    auto r = MineSimilarities(m, o, &s);
    std::printf("%-12s %10.3f %10zu %11.2f MB %s\n", "DMC-sim",
                s.total_seconds, r.ok() ? r->size() : 0,
                s.peak_counter_bytes / (1024.0 * 1024.0),
                "exact, §5 prunings");
  }
  {
    AprioriStats s;
    auto r = AprioriSimilarities(m, AprioriOptions{}, minsim, &s);
    std::printf("%-12s %10.3f %10zu %11.2f MB %s\n", "a-priori",
                s.total_seconds, r.ok() ? r->size() : 0,
                s.counter_bytes / (1024.0 * 1024.0), "exact");
  }
  {
    MinHashOptions o;
    o.num_hashes = 100;
    MinHashStats s;
    auto r = MinHashSimilarities(m, o, minsim, &s);
    std::printf("%-12s %10.3f %10zu %11.2f MB %s\n", "Min-Hash",
                s.total_seconds, r.size(),
                s.signature_bytes / (1024.0 * 1024.0),
                "verified; FN possible");
  }
  return 0;
}
