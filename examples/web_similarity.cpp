// Example 1.1 from the paper: finding similar pages in a web link graph.
//
// Builds a synthetic page-link graph (preferential attachment + copy
// model with near-mirror pages), then mines both orientations:
//   * plinkF columns = destinations: pages REFERRED TO by similar sets
//     of pages (co-citation; finds mirrors and duplicates);
//   * plinkT columns = sources: pages that HAVE similar sets of links
//     (near-identical out-link profiles).
// Exactly the workflow §6.1 describes for the Stanford link data.

#include <cstdio>

#include "core/engine.h"
#include "datagen/linkgraph_gen.h"
#include "rules/grouping.h"

int main(int argc, char** argv) {
  using namespace dmc;
  LinkGraphOptions gen;
  gen.num_pages = argc > 1 ? static_cast<uint32_t>(atoi(argv[1])) : 20000;
  gen.mirror_fraction = 0.03;
  const BinaryMatrix plink_f = GenerateLinkGraph(gen);
  const BinaryMatrix plink_t = plink_f.Transposed();
  std::printf("link graph: %u pages, %zu links\n", gen.num_pages,
              plink_f.num_ones());

  SimilarityMiningOptions options;
  options.min_similarity = 0.85;

  MiningStats stats;
  auto cocited = MineSimilarities(plink_f, options, &stats);
  if (!cocited.ok()) {
    std::fprintf(stderr, "%s\n", cocited.status().ToString().c_str());
    return 1;
  }
  std::printf("\npages referred to by similar page sets (plinkF,"
              " sim >= 85%%): %zu pairs in %.2fs\n",
              cocited->size(), stats.total_seconds);
  // Display the non-trivial pairs (degree-1 pages are trivially similar).
  int shown = 0;
  for (const auto& p : cocited->SortedBySimilarity()) {
    if (p.ones_a < 3) continue;
    std::printf("  page %-6u ~ page %-6u  sim=%.3f (in-degrees %u, %u)\n",
                p.a, p.b, p.similarity(), p.ones_a, p.ones_b);
    if (++shown >= 8) break;
  }

  auto similar_profiles = MineSimilarities(plink_t, options, &stats);
  if (!similar_profiles.ok()) {
    std::fprintf(stderr, "%s\n",
                 similar_profiles.status().ToString().c_str());
    return 1;
  }
  std::printf("\npages with similar out-link sets (plinkT,"
              " sim >= 85%%): %zu pairs in %.2fs\n",
              similar_profiles->size(), stats.total_seconds);
  shown = 0;
  for (const auto& p : similar_profiles->SortedBySimilarity()) {
    if (p.ones_a < 3) continue;
    std::printf("  page %-6u ~ page %-6u  sim=%.3f (out-degrees %u, %u)\n",
                p.a, p.b, p.similarity(), p.ones_a, p.ones_b);
    if (++shown >= 8) break;
  }

  // Cluster mirror families: connected components over similarity pairs.
  const auto groups = GroupByConnectedComponents(*similar_profiles);
  std::printf("\nmirror families (connected components): %zu\n",
              groups.size());
  shown = 0;
  for (const auto& g : groups) {
    std::printf("  family of %zu pages:", g.columns.size());
    int w = 0;
    for (ColumnId c : g.columns) {
      std::printf(" %u", c);
      if (++w >= 8) {
        std::printf(" ...");
        break;
      }
    }
    std::printf("\n");
    if (++shown >= 5) break;
  }
  return 0;
}
