// Quickstart: build a small 0/1 matrix, mine implication and similarity
// rules, and inspect the results.
//
//   ./quickstart [path/to/matrix.txt]
//
// Without an argument it uses a tiny inline data set (the matrix from the
// paper's Example 3.1); with one it loads a transaction-format text file
// (one row per line, space-separated column ids).

#include <cstdio>
#include <iostream>

#include "core/engine.h"
#include "matrix/matrix_io.h"
#include "observe/metrics.h"
#include "rules/verifier.h"

int main(int argc, char** argv) {
  using namespace dmc;

  BinaryMatrix matrix;
  if (argc > 1) {
    auto loaded = ReadMatrixTextFile(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", argv[1],
                   loaded.status().ToString().c_str());
      return 1;
    }
    matrix = std::move(loaded).value();
  } else {
    // The 9x6 matrix of the paper's Example 3.1.
    matrix = BinaryMatrix::FromRows(
        6, {{1, 5}, {2, 3, 4}, {2, 4}, {0, 1, 2, 5}, {0, 3, 5},
            {0, 3, 4, 5}, {0, 1, 2, 3, 4, 5}, {1, 4}, {0, 1, 2, 3}});
  }
  std::printf("matrix: %u rows x %u columns, %zu ones\n",
              matrix.num_rows(), matrix.num_columns(), matrix.num_ones());

  // --- implication rules -------------------------------------------
  // The observe hooks are optional; hooking a registry in makes the
  // engine mirror its stats under "imp.*" (see README "Observability").
  MetricsRegistry registry;
  ImplicationMiningOptions imp_options;
  imp_options.min_confidence = 0.8;
  imp_options.policy.observe.metrics = &registry;
  MiningStats imp_stats;
  auto rules = MineImplications(matrix, imp_options, &imp_stats);
  if (!rules.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 rules.status().ToString().c_str());
    return 1;
  }
  std::printf("\nimplication rules (confidence >= %.0f%%): %zu found in"
              " %.3fs, peak counter memory %zu bytes\n",
              imp_options.min_confidence * 100, rules->size(),
              imp_stats.total_seconds, imp_stats.peak_counter_bytes);
  rules->SortedByConfidence().Print(std::cout, 10);

  // --- similarity pairs --------------------------------------------
  SimilarityMiningOptions sim_options;
  sim_options.min_similarity = 0.5;
  auto pairs = MineSimilarities(matrix, sim_options);
  if (!pairs.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 pairs.status().ToString().c_str());
    return 1;
  }
  std::printf("\nsimilarity pairs (similarity >= %.0f%%): %zu found\n",
              sim_options.min_similarity * 100, pairs->size());
  pairs->SortedBySimilarity().Print(std::cout, 10);

  // --- results are exact: double-check them against the matrix -----
  const RuleVerifier verifier(matrix);
  const Status imp_ok =
      verifier.VerifyImplications(*rules, imp_options.min_confidence);
  const Status sim_ok =
      verifier.VerifySimilarities(*pairs, sim_options.min_similarity);
  std::printf("\nverification: implications %s, similarities %s\n",
              imp_ok.ok() ? "OK" : imp_ok.ToString().c_str(),
              sim_ok.ok() ? "OK" : sim_ok.ToString().c_str());

  // --- machine-readable telemetry ----------------------------------
  std::printf("\nmetrics recorded by the engine (JSONL):\n");
  registry.WriteJsonl(std::cout);
  return imp_ok.ok() && sim_ok.ok() ? 0 : 1;
}
