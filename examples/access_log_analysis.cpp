// Web access-log analysis — the paper's Wlog use case. Mines URL
// implication rules ("clients who fetch this page also fetch that page")
// from a synthetic server log, demonstrating the full two-pass workflow
// including the first-pass stream scan, density-bucket re-ordering and
// the memory instrumentation.
//
//   ./access_log_analysis [num_clients] [min_confidence]

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "core/engine.h"
#include "datagen/weblog_gen.h"
#include "matrix/column_stats.h"
#include "matrix/matrix_io.h"
#include "matrix/row_order.h"

int main(int argc, char** argv) {
  using namespace dmc;
  WebLogOptions gen;
  gen.num_clients = argc > 1 ? static_cast<uint32_t>(atoi(argv[1])) : 30000;
  gen.num_urls = 6000;
  const double minconf = argc > 2 ? atof(argv[2]) : 0.9;

  const BinaryMatrix log = GenerateWebLog(gen);
  std::printf("access log: %u clients x %u URLs, %zu hits\n",
              log.num_rows(), log.num_columns(), log.num_ones());

  // Pass 1 as it would run on disk: stream the text form and collect
  // ones(c) + row densities without materializing the matrix.
  std::stringstream disk;
  if (!WriteMatrixText(log, disk).ok()) return 1;
  auto scan = ScanMatrixText(disk);
  if (!scan.ok()) {
    std::fprintf(stderr, "%s\n", scan.status().ToString().c_str());
    return 1;
  }
  uint32_t max_density = 0;
  for (uint32_t d : scan->row_density) max_density = std::max(max_density, d);
  std::printf("first pass: %u rows scanned, densest client hit %u URLs"
              " (crawler)\n", scan->num_rows, max_density);

  const BucketedOrder buckets = DensityBucketOrder(log);
  std::printf("density buckets: %zu (sparsest first, as in §4.1)\n",
              buckets.bucket_ranges.size());

  // Pass 2: mine with the production configuration.
  ImplicationMiningOptions options;
  options.min_confidence = minconf;
  options.policy.memory_threshold_bytes = size_t{4} << 20;
  MiningStats stats;
  auto rules = MineImplications(log, options, &stats);
  if (!rules.ok()) {
    std::fprintf(stderr, "%s\n", rules.status().ToString().c_str());
    return 1;
  }

  std::printf("\nrules at %.0f%% confidence: %zu\n", minconf * 100,
              rules->size());
  std::printf("  pre-scan %.3fs | 100%% phase %.3fs | sub-100%% %.3fs |"
              " total %.3fs\n",
              stats.prescan_seconds, stats.hundred_seconds(),
              stats.sub_seconds(), stats.total_seconds);
  std::printf("  peak counter memory %.2f MB, bitmap fallback: %s\n",
              stats.peak_counter_bytes / (1024.0 * 1024.0),
              stats.hundred_bitmap_triggered || stats.sub_bitmap_triggered
                  ? "used"
                  : "not needed");

  // Navigation insights: pages that imply a section index page.
  std::printf("\nsample page => section-index rules:\n");
  int shown = 0;
  for (const auto& r : rules->SortedByConfidence()) {
    if (r.rhs >= gen.num_sections) continue;  // rhs must be an index page
    std::printf("  url%-6u => section_index%-4u conf=%.3f (seen together"
                " %u times)\n",
                r.lhs, r.rhs, r.confidence(), r.hits());
    if (++shown >= 10) break;
  }
  return 0;
}
