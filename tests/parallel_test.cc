#include "core/parallel_dmc.h"

#include <gtest/gtest.h>

#include "datagen/news_gen.h"
#include "datagen/quest_gen.h"
#include "util/random.h"

namespace dmc {
namespace {

BinaryMatrix Workload(uint64_t seed) {
  QuestOptions q;
  q.num_transactions = 2000;
  q.num_items = 300;
  q.seed = seed;
  return GenerateQuest(q);
}

TEST(ColumnShardsTest, PartitionIsDisjointAndComplete) {
  std::vector<uint32_t> ones{5, 1, 9, 0, 3, 3, 7, 2};
  const auto shards = MakeColumnShards(ones, 3);
  ASSERT_EQ(shards.size(), 3u);
  for (size_t c = 0; c < ones.size(); ++c) {
    int owners = 0;
    for (const auto& s : shards) owners += s[c];
    EXPECT_EQ(owners, 1) << "column " << c;
  }
}

TEST(ColumnShardsTest, LoadIsBalanced) {
  std::vector<uint32_t> ones(100);
  Rng rng(3);
  uint64_t total = 0;
  for (auto& o : ones) {
    o = static_cast<uint32_t>(rng.Uniform(1000));
    total += o;
  }
  const auto shards = MakeColumnShards(ones, 4);
  for (const auto& s : shards) {
    uint64_t load = 0;
    for (size_t c = 0; c < ones.size(); ++c) {
      if (s[c]) load += ones[c];
    }
    // Greedy LPT keeps every shard within a generous factor of fair.
    EXPECT_LT(load, total / 4 + 1100);
  }
}

TEST(ParallelDmcTest, ImplicationsMatchSerial) {
  const BinaryMatrix m = Workload(21);
  ImplicationMiningOptions o;
  o.min_confidence = 0.85;
  auto serial = MineImplications(m, o);
  ASSERT_TRUE(serial.ok());
  for (uint32_t threads : {1u, 2u, 3u, 8u}) {
    ParallelOptions p;
    p.num_threads = threads;
    ParallelMiningStats stats;
    auto parallel = MineImplicationsParallel(m, o, p, &stats);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel->Pairs(), serial->Pairs()) << threads;
    EXPECT_EQ(stats.shards, threads);
  }
}

TEST(ParallelDmcTest, SimilaritiesMatchSerial) {
  const BinaryMatrix m = Workload(22);
  SimilarityMiningOptions o;
  o.min_similarity = 0.7;
  auto serial = MineSimilarities(m, o);
  ASSERT_TRUE(serial.ok());
  for (uint32_t threads : {2u, 4u}) {
    ParallelOptions p;
    p.num_threads = threads;
    auto parallel = MineSimilaritiesParallel(m, o, p);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel->Pairs(), serial->Pairs()) << threads;
  }
}

TEST(ParallelDmcTest, IdenticalColumnPhaseSharded) {
  // Exercises the s = 1.0 equal-bitmap fast path under sharding with the
  // bitmap fallback forced: identical pairs must be emitted exactly once
  // (by the shard owning the lower column id).
  MatrixBuilder b(6);
  for (int i = 0; i < 10; ++i) b.AddRow({0, 3});        // c0 == c3
  for (int i = 0; i < 8; ++i) b.AddRow({1, 4, 5});      // c1 == c4 == c5
  for (int i = 0; i < 5; ++i) b.AddRow({2});
  const BinaryMatrix m = b.Build();
  SimilarityMiningOptions o;
  o.min_similarity = 1.0;
  o.policy.bitmap_fallback = true;
  o.policy.memory_threshold_bytes = 0;
  o.policy.bitmap_max_remaining_rows = 100;  // whole scan via bitmaps
  auto serial = MineSimilarities(m, o);
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(serial->size(), 4u);  // (0,3), (1,4), (1,5), (4,5)
  for (uint32_t threads : {2u, 3u}) {
    ParallelOptions p;
    p.num_threads = threads;
    auto parallel = MineSimilaritiesParallel(m, o, p);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel->Pairs(), serial->Pairs()) << threads;
  }
}

TEST(ParallelDmcTest, ShardedCountsAreExact) {
  // Each shard's rules carry exact counts identical to the serial run's.
  const BinaryMatrix m = Workload(23);
  ImplicationMiningOptions o;
  o.min_confidence = 0.8;
  auto serial = MineImplications(m, o);
  ASSERT_TRUE(serial.ok());
  ParallelOptions p;
  p.num_threads = 4;
  auto parallel = MineImplicationsParallel(m, o, p);
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(parallel->size(), serial->size());
  for (size_t i = 0; i < serial->size(); ++i) {
    EXPECT_EQ(parallel->rules()[i], serial->rules()[i]);
  }
}

TEST(ParallelDmcTest, MoreShardsThanColumns) {
  const BinaryMatrix m =
      BinaryMatrix::FromRows(3, {{0, 1, 2}, {0, 1}, {2}});
  ImplicationMiningOptions o;
  o.min_confidence = 0.5;
  ParallelOptions p;
  p.num_threads = 16;
  auto parallel = MineImplicationsParallel(m, o, p);
  auto serial = MineImplications(m, o);
  ASSERT_TRUE(parallel.ok());
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(parallel->Pairs(), serial->Pairs());
}

TEST(ParallelDmcTest, InvalidThresholdPropagates) {
  const BinaryMatrix m = Workload(24);
  ImplicationMiningOptions o;
  o.min_confidence = 2.0;
  ParallelOptions p;
  p.num_threads = 2;
  EXPECT_FALSE(MineImplicationsParallel(m, o, p).ok());
}

TEST(ParallelDmcTest, StatsAggregation) {
  const BinaryMatrix m = Workload(25);
  ImplicationMiningOptions o;
  o.min_confidence = 0.9;
  ParallelOptions p;
  p.num_threads = 3;
  ParallelMiningStats stats;
  ASSERT_TRUE(MineImplicationsParallel(m, o, p, &stats).ok());
  EXPECT_EQ(stats.shards, 3u);
  EXPECT_GE(stats.sum_shard_seconds, stats.max_shard_seconds);
  EXPECT_GE(stats.total_seconds, stats.max_shard_seconds);
}

TEST(ParallelDmcTest, ShardedSubsetOfSerial) {
  // A single shard alone yields exactly the serial rules whose lhs lies
  // in the shard.
  const BinaryMatrix m = Workload(26);
  ImplicationMiningOptions o;
  o.min_confidence = 0.8;
  auto serial = MineImplications(m, o);
  ASSERT_TRUE(serial.ok());
  const auto shards = MakeColumnShards(m.column_ones(), 2);
  auto part = MineImplicationsSharded(m, o, shards[0]);
  ASSERT_TRUE(part.ok());
  ImplicationRuleSet expected;
  for (const auto& r : *serial) {
    if (shards[0][r.lhs]) expected.Add(r);
  }
  expected.Canonicalize();
  EXPECT_EQ(part->Pairs(), expected.Pairs());
}

}  // namespace
}  // namespace dmc
