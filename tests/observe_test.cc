// Unit tests for the observability layer: metrics registry, histogram
// bucketing, trace spans, JSON/JSONL output shape, progress/cancel
// helper, and multi-threaded registry/sink use (run under TSan by
// tools/check.sh).

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/mining_stats.h"
#include "core/parallel_dmc.h"
#include "observe/json_writer.h"
#include "observe/metrics.h"
#include "observe/progress.h"
#include "observe/stats_export.h"
#include "observe/trace.h"

namespace dmc {
namespace {

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t n = 0;
  size_t pos = 0;
  while ((pos = haystack.find(needle, pos)) != std::string::npos) {
    ++n;
    pos += needle.size();
  }
  return n;
}

// --- JsonWriter ------------------------------------------------------

TEST(JsonWriterTest, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("x\ny"), "x\\ny");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriterTest, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(JsonNumber(0.5), "0.5");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::quiet_NaN()), "null");
}

TEST(JsonWriterTest, CompactObjectShape) {
  std::ostringstream os;
  JsonWriter w(os, /*indent=*/0);
  w.BeginObject();
  w.Key("a");
  w.Value(uint64_t{1});
  w.Key("b");
  w.BeginArray();
  w.Value(2);
  w.Value(3);
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(os.str(), "{\"a\":1,\"b\":[2,3]}");
}

// --- MetricsRegistry -------------------------------------------------

TEST(MetricsRegistryTest, CountersGaugesTimers) {
  MetricsRegistry r;
  r.IncrCounter("rows");
  r.IncrCounter("rows", 9);
  EXPECT_EQ(r.counter("rows"), 10u);
  EXPECT_EQ(r.counter("missing"), 0u);

  r.SetGauge("mem", 5.0);
  r.SetGauge("mem", 3.0);
  EXPECT_DOUBLE_EQ(r.gauge("mem"), 3.0);
  r.MaxGauge("peak", 5.0);
  r.MaxGauge("peak", 3.0);
  r.MaxGauge("peak", 7.0);
  EXPECT_DOUBLE_EQ(r.gauge("peak"), 7.0);

  r.RecordTimer("t", 0.5);
  r.RecordTimer("t", 1.5);
  const TimerStat t = r.timer("t");
  EXPECT_EQ(t.count, 2u);
  EXPECT_DOUBLE_EQ(t.total_seconds, 2.0);
  EXPECT_DOUBLE_EQ(t.max_seconds, 1.5);

  r.Clear();
  EXPECT_EQ(r.counter("rows"), 0u);
  EXPECT_TRUE(r.counters().empty());
}

TEST(MetricsRegistryTest, HistogramBucketingIsInclusiveOnUpperBound) {
  MetricsRegistry r;
  r.DefineHistogram("h", {10.0, 100.0});
  r.RecordHistogram("h", 10.0);   // on the boundary -> first bucket
  r.RecordHistogram("h", 10.5);   // second bucket
  r.RecordHistogram("h", 100.0);  // second bucket
  r.RecordHistogram("h", 1e9);    // overflow bucket
  const HistogramStat h = r.histogram("h");
  ASSERT_EQ(h.counts.size(), 3u);
  EXPECT_EQ(h.counts[0], 1u);
  EXPECT_EQ(h.counts[1], 2u);
  EXPECT_EQ(h.counts[2], 1u);
  EXPECT_EQ(h.total, 4u);
  EXPECT_DOUBLE_EQ(h.sum, 10.0 + 10.5 + 100.0 + 1e9);
}

TEST(MetricsRegistryTest, RecordingUndefinedHistogramAutoDefinesBuckets) {
  MetricsRegistry r;
  r.RecordHistogram("auto", 17.0);
  const HistogramStat h = r.histogram("auto");
  // Powers of four from 4^0 to 4^12: 13 bounds, 14 counts.
  ASSERT_EQ(h.upper_bounds.size(), 13u);
  ASSERT_EQ(h.counts.size(), 14u);
  EXPECT_DOUBLE_EQ(h.upper_bounds.front(), 1.0);
  EXPECT_DOUBLE_EQ(h.upper_bounds.back(), 16777216.0);
  // 17 lands in the (16, 64] bucket = index 3.
  EXPECT_EQ(h.counts[3], 1u);
  EXPECT_EQ(h.total, 1u);
}

TEST(MetricsRegistryTest, ScopedTimerRecordsOnceAndNullRegistryIsNoop) {
  MetricsRegistry r;
  { ScopedTimer timer(&r, "scoped"); }
  EXPECT_EQ(r.timer("scoped").count, 1u);
  { ScopedTimer disabled(nullptr, "scoped"); }  // must not crash
  EXPECT_EQ(r.timer("scoped").count, 1u);
}

TEST(MetricsRegistryTest, WriteJsonHasAllFourSections) {
  MetricsRegistry r;
  r.IncrCounter("c", 2);
  r.SetGauge("g", 1.5);
  r.RecordTimer("t", 0.25);
  r.DefineHistogram("h", {1.0});
  r.RecordHistogram("h", 0.5);
  std::ostringstream os;
  JsonWriter w(os, 2);
  r.WriteJson(w);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"timers\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"c\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"total_seconds\": 0.25"), std::string::npos);
  EXPECT_NE(json.find("\"upper_bounds\""), std::string::npos);
}

TEST(MetricsRegistryTest, WriteJsonlEmitsOneObjectPerMetric) {
  MetricsRegistry r;
  r.IncrCounter("c1");
  r.IncrCounter("c2");
  r.SetGauge("g", 3.0);
  r.RecordTimer("t", 0.1);
  r.RecordHistogram("h", 2.0);
  std::ostringstream os;
  r.WriteJsonl(os);
  const std::string out = os.str();
  EXPECT_EQ(CountOccurrences(out, "\n"), 5u);
  EXPECT_EQ(CountOccurrences(out, "{\"kind\":"), 5u);
  EXPECT_EQ(CountOccurrences(out, "\"kind\":\"counter\""), 2u);
  EXPECT_EQ(CountOccurrences(out, "\"kind\":\"gauge\""), 1u);
  EXPECT_EQ(CountOccurrences(out, "\"kind\":\"timer\""), 1u);
  EXPECT_EQ(CountOccurrences(out, "\"kind\":\"histogram\""), 1u);
}

// --- TraceSink / ScopedSpan ------------------------------------------

TEST(TraceSinkTest, NestedSpansRecordInCompletionOrder) {
  TraceSink sink;
  {
    ScopedSpan outer(&sink, "outer", /*tid=*/0);
    {
      ScopedSpan inner(&sink, "inner", /*tid=*/1);
    }
  }
  const auto events = sink.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Inner completes (and records) first; outer encloses it in time.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[0].tid, 1);
  EXPECT_EQ(events[1].tid, 0);
  EXPECT_LE(events[1].ts_micros, events[0].ts_micros);
  EXPECT_GE(events[1].ts_micros + events[1].dur_micros,
            events[0].ts_micros + events[0].dur_micros);
}

TEST(TraceSinkTest, NullSinkSpanIsNoop) {
  ScopedSpan span(nullptr, "never");
  span.SetArgsJson("{\"x\":1}");
  // Destructor must not crash; nothing to assert beyond surviving.
}

TEST(TraceSinkTest, ChromeJsonShape) {
  TraceSink sink;
  {
    ScopedSpan span(&sink, "phase \"one\"", /*tid=*/2);
    span.SetArgsJson("{\"rows\":4}");
  }
  std::ostringstream os;
  sink.WriteChromeJson(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"rows\":4}"), std::string::npos);
  // The quote inside the span name must be escaped.
  EXPECT_NE(json.find("phase \\\"one\\\""), std::string::npos);
}

// --- CheckProgress ---------------------------------------------------

TEST(ProgressTest, DisabledContextNeverFires) {
  ObserveContext obs;
  EXPECT_TRUE(CheckProgress(obs, "p", 0, 10, 0, 0));
  EXPECT_TRUE(CheckProgress(obs, "p", 1024, 10, 0, 0));
}

TEST(ProgressTest, FiresOnIntervalAndPropagatesCancel) {
  std::vector<uint64_t> seen;
  ObserveContext obs;
  obs.progress_interval_rows = 4;
  obs.progress = [&seen](const ProgressUpdate& u) {
    seen.push_back(u.rows_processed);
    return u.rows_processed < 8;  // cancel at row 8
  };
  for (uint64_t row = 0; row <= 8; ++row) {
    const bool keep_going = CheckProgress(obs, "scan", row, 9, 1, 2);
    if (row == 8) {
      EXPECT_FALSE(keep_going);
    } else {
      EXPECT_TRUE(keep_going);
    }
  }
  EXPECT_EQ(seen, (std::vector<uint64_t>{0, 4, 8}));
}

TEST(ProgressTest, UpdateCarriesContextFields) {
  ProgressUpdate got;
  ObserveContext obs;
  obs.progress_interval_rows = 1;
  obs.shard = 3;
  obs.progress = [&got](const ProgressUpdate& u) {
    got = u;
    return true;
  };
  EXPECT_TRUE(CheckProgress(obs, "sub_phase", 7, 100, 11, 13));
  EXPECT_STREQ(got.phase, "sub_phase");
  EXPECT_EQ(got.rows_processed, 7u);
  EXPECT_EQ(got.total_rows, 100u);
  EXPECT_EQ(got.live_candidates, 11u);
  EXPECT_EQ(got.counter_bytes, 13u);
  EXPECT_EQ(got.shard, 3);
}

// --- stats export ----------------------------------------------------

TEST(StatsExportTest, FullReportHasSchemaAndSections) {
  MiningStats mining;
  mining.total_seconds = 1.5;
  mining.peak_counter_bytes = 4096;
  mining.rules_from_hundred_phase = 2;
  mining.rules_from_sub_phase = 3;

  ParallelMiningStats parallel;
  parallel.shards = 2;
  parallel.per_shard.resize(2);

  MetricsRegistry registry;
  registry.IncrCounter("imp.rules_total", 5);

  MetricsReport report;
  report.tool = "observe_test";
  report.dataset = "synthetic";
  report.labels["command"] = "mine-imp";
  report.rules_total = 5;
  report.mining = &mining;
  report.parallel = &parallel;
  report.metrics = &registry;

  std::ostringstream os;
  ASSERT_TRUE(ExportMetricsJson(report, os).ok());
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"tool\": \"observe_test\""), std::string::npos);
  EXPECT_NE(json.find("\"dataset\": \"synthetic\""), std::string::npos);
  EXPECT_NE(json.find("\"command\": \"mine-imp\""), std::string::npos);
  EXPECT_NE(json.find("\"rules_total\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"mining\""), std::string::npos);
  EXPECT_NE(json.find("\"parallel\""), std::string::npos);
  EXPECT_NE(json.find("\"per_shard\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"peak_counter_bytes\": 4096"), std::string::npos);
  // The external section must be absent when its pointer is null.
  EXPECT_EQ(json.find("\"external\""), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
}

TEST(StatsExportTest, NegativeRulesTotalIsOmitted) {
  MetricsReport report;
  report.tool = "observe_test";
  std::ostringstream os;
  ASSERT_TRUE(ExportMetricsJson(report, os).ok());
  EXPECT_EQ(os.str().find("rules_total"), std::string::npos);
}

TEST(StatsExportTest, RecordToRegistryUsesPrefix) {
  MiningStats mining;
  mining.peak_counter_bytes = 64;
  mining.rules_from_hundred_phase = 1;
  mining.rules_from_sub_phase = 2;
  MetricsRegistry registry;
  RecordToRegistry(&registry, "imp", mining);
  EXPECT_DOUBLE_EQ(registry.gauge("imp.peak_counter_bytes"), 64.0);
  EXPECT_EQ(registry.counter("imp.rules_from_hundred_phase"), 1u);
  EXPECT_EQ(registry.counter("imp.rules_from_sub_phase"), 2u);
  // A null registry must be a safe no-op.
  RecordToRegistry(nullptr, "imp", mining);
}

// --- thread safety (meaningful under TSan) ---------------------------

TEST(ObserveThreadingTest, RegistryAndSinkSurviveConcurrentUse) {
  MetricsRegistry registry;
  TraceSink sink;
  std::atomic<uint64_t> cancels{0};
  ObserveContext obs;
  obs.metrics = &registry;
  obs.trace = &sink;
  obs.progress_interval_rows = 1;
  obs.progress = [&registry, &cancels](const ProgressUpdate& u) {
    registry.IncrCounter("progress.updates");
    cancels.fetch_add(u.shard >= 0 ? 0 : 1, std::memory_order_relaxed);
    return true;
  };

  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&obs, &registry, &sink, t] {
      for (int i = 0; i < kIters; ++i) {
        registry.IncrCounter("shared.counter");
        registry.MaxGauge("shared.peak", t * kIters + i);
        registry.RecordTimer("shared.timer", 0.001);
        registry.RecordHistogram("shared.hist", i);
        ScopedSpan span(&sink, "worker", t + 1);
        ObserveContext local = obs;
        local.shard = t;
        CheckProgress(local, "stress", static_cast<uint64_t>(i), kIters, 0, 0);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(registry.counter("shared.counter"),
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(registry.counter("progress.updates"),
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(registry.timer("shared.timer").count,
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(registry.histogram("shared.hist").total,
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(registry.gauge("shared.peak"),
                   static_cast<double>(kThreads * kIters - 1));
  EXPECT_EQ(sink.Snapshot().size(),
            static_cast<size_t>(kThreads) * kIters);
  EXPECT_EQ(cancels.load(), 0u);
  std::ostringstream os;
  sink.WriteChromeJson(os);
  EXPECT_EQ(CountOccurrences(os.str(), "\"ph\": \"X\""),
            static_cast<size_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace dmc
