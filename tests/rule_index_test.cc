// RuleIndex serving layer: query semantics, exact confidence ordering,
// snapshot immutability under Publish, checksummed persistence, failpoint
// behavior, and (under TSan) queries racing snapshot swaps.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "rules/rule_index.h"
#include "util/failpoint.h"

namespace dmc {
namespace {

ImplicationRule MakeRule(ColumnId lhs, ColumnId rhs, uint32_t lhs_ones,
                         uint32_t misses) {
  return ImplicationRule{lhs, rhs, lhs_ones, misses};
}

ImplicationRuleSet SampleRules() {
  ImplicationRuleSet rules;
  rules.Add(MakeRule(0, 1, 10, 0));   // conf 1.0
  rules.Add(MakeRule(0, 2, 10, 2));   // conf 0.8
  rules.Add(MakeRule(0, 3, 10, 1));   // conf 0.9
  rules.Add(MakeRule(1, 2, 20, 4));   // conf 0.8
  rules.Add(MakeRule(2, 1, 5, 1));    // conf 0.8
  rules.Add(MakeRule(3, 1, 8, 0));    // conf 1.0
  return rules;
}

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(HigherConfidenceTest, ExactOrderingAndTies) {
  // 2/3 vs 0.666...: cross-multiplication must get this right where
  // doubles could tie.
  EXPECT_TRUE(HigherConfidence(MakeRule(0, 1, 3, 1),      // 2/3
                               MakeRule(0, 2, 1000000, 333334)));
  // Equal confidence (4/5 == 16/20): falls back to (lhs, rhs) order.
  EXPECT_TRUE(HigherConfidence(MakeRule(1, 2, 5, 1), MakeRule(2, 1, 20, 4)));
  EXPECT_FALSE(HigherConfidence(MakeRule(2, 1, 20, 4), MakeRule(1, 2, 5, 1)));
  // Zero-antecedent rules order as confidence 0, after everything else.
  EXPECT_TRUE(HigherConfidence(MakeRule(5, 6, 4, 3), MakeRule(0, 1, 0, 0)));
  // Malformed (misses > ones) clamps to confidence 0 instead of wrapping.
  EXPECT_FALSE(HigherConfidence(MakeRule(0, 1, 2, 5), MakeRule(5, 6, 4, 3)));
}

TEST(RuleIndexSnapshotTest, QueryByAntecedentSortsByConfidence) {
  const auto snap = RuleIndexSnapshot::Build(SampleRules(), 7);
  EXPECT_EQ(snap->generation(), 7u);
  EXPECT_EQ(snap->size(), 6u);

  const auto from0 = snap->QueryByAntecedent(0);
  ASSERT_EQ(from0.size(), 3u);
  EXPECT_EQ(from0[0], MakeRule(0, 1, 10, 0));
  EXPECT_EQ(from0[1], MakeRule(0, 3, 10, 1));
  EXPECT_EQ(from0[2], MakeRule(0, 2, 10, 2));

  EXPECT_TRUE(snap->QueryByAntecedent(9).empty());
}

TEST(RuleIndexSnapshotTest, QueryByConsequentSortsByConfidence) {
  const auto snap = RuleIndexSnapshot::Build(SampleRules(), 1);
  const auto to1 = snap->QueryByConsequent(1);
  ASSERT_EQ(to1.size(), 3u);
  EXPECT_EQ(to1[0], MakeRule(0, 1, 10, 0));
  EXPECT_EQ(to1[1], MakeRule(3, 1, 8, 0));
  EXPECT_EQ(to1[2], MakeRule(2, 1, 5, 1));
  EXPECT_TRUE(snap->QueryByConsequent(0).empty());
}

TEST(RuleIndexSnapshotTest, TopKGlobalOrder) {
  const auto snap = RuleIndexSnapshot::Build(SampleRules(), 1);
  const auto top2 = snap->TopK(2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0], MakeRule(0, 1, 10, 0));
  EXPECT_EQ(top2[1], MakeRule(3, 1, 8, 0));
  EXPECT_EQ(snap->TopK(0).size(), 6u);
  EXPECT_EQ(snap->TopK(100).size(), 6u);
}

TEST(RuleIndexSnapshotTest, BuildCanonicalizesDuplicates) {
  ImplicationRuleSet rules;
  rules.Add(MakeRule(1, 2, 5, 1));
  rules.Add(MakeRule(1, 2, 5, 1));
  const auto snap = RuleIndexSnapshot::Build(rules, 1);
  EXPECT_EQ(snap->size(), 1u);
}

TEST(RuleIndexSnapshotTest, EmptySnapshotServes) {
  const auto snap = RuleIndexSnapshot::Build(ImplicationRuleSet(), 0);
  EXPECT_TRUE(snap->empty());
  EXPECT_TRUE(snap->QueryByAntecedent(0).empty());
  EXPECT_TRUE(snap->QueryByConsequent(0).empty());
  EXPECT_TRUE(snap->TopK(5).empty());
}

TEST(RuleIndexSnapshotTest, SerializeRoundTrips) {
  const auto snap = RuleIndexSnapshot::Build(SampleRules(), 42);
  const std::string image = snap->Serialize();
  auto restored = RuleIndexSnapshot::Deserialize(image, "test");
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ((*restored)->generation(), 42u);
  EXPECT_EQ((*restored)->Serialize(), image);
  EXPECT_EQ((*restored)->TopK(0), snap->TopK(0));
}

TEST(RuleIndexSnapshotTest, DeserializeRejectsCorruption) {
  const std::string image =
      RuleIndexSnapshot::Build(SampleRules(), 1)->Serialize();

  auto truncated = RuleIndexSnapshot::Deserialize(
      image.substr(0, image.size() / 2), "t");
  EXPECT_EQ(truncated.status().code(), StatusCode::kDataLoss);

  std::string flipped = image;
  flipped[image.size() / 2] ^= 0x40;
  auto corrupt = RuleIndexSnapshot::Deserialize(flipped, "t");
  EXPECT_EQ(corrupt.status().code(), StatusCode::kDataLoss);

  std::string bad_magic = image;
  bad_magic[0] = 'X';
  EXPECT_EQ(RuleIndexSnapshot::Deserialize(bad_magic, "t").status().code(),
            StatusCode::kDataLoss);

  EXPECT_EQ(RuleIndexSnapshot::Deserialize("", "t").status().code(),
            StatusCode::kDataLoss);
}

TEST(RuleIndexTest, PublishBumpsGenerationAndPreservesReaders) {
  RuleIndex index;
  const auto before = index.snapshot();
  EXPECT_EQ(before->generation(), 0u);
  EXPECT_TRUE(before->empty());

  index.Publish(SampleRules());
  const auto after = index.snapshot();
  EXPECT_EQ(after->generation(), 1u);
  EXPECT_EQ(after->size(), 6u);
  // The old snapshot is untouched by the swap.
  EXPECT_TRUE(before->empty());

  index.Publish(ImplicationRuleSet());
  EXPECT_EQ(index.snapshot()->generation(), 2u);
  EXPECT_EQ(after->size(), 6u);
}

TEST(RuleIndexTest, SaveLoadRoundTrip) {
  const std::string path = TempPath("dmc_rule_index_roundtrip.bin");
  RuleIndex writer;
  writer.Publish(SampleRules());
  ASSERT_TRUE(writer.Save(path).ok());

  RuleIndex reader;
  ASSERT_TRUE(reader.Load(path).ok());
  const auto snap = reader.snapshot();
  EXPECT_EQ(snap->generation(), 1u);
  EXPECT_EQ(snap->TopK(0), writer.snapshot()->TopK(0));
  std::remove(path.c_str());
}

TEST(RuleIndexTest, LoadKeepsServingOnCorruptFile) {
  const std::string path = TempPath("dmc_rule_index_corrupt.bin");
  RuleIndex writer;
  writer.Publish(SampleRules());
  ASSERT_TRUE(writer.Save(path).ok());

  // Flip a byte in the middle of the stored image.
  std::string data;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    data = buf.str();
  }
  data[data.size() / 2] ^= 0x01;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  }

  RuleIndex reader;
  reader.Publish(SampleRules());
  const Status status = reader.Load(path);
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  // The served snapshot is unchanged after the failed load.
  EXPECT_EQ(reader.snapshot()->generation(), 1u);
  EXPECT_EQ(reader.snapshot()->size(), 6u);
  std::remove(path.c_str());
}

TEST(RuleIndexTest, LoadMissingFileIsIOError) {
  RuleIndex index;
  EXPECT_EQ(index.Load(TempPath("dmc_rule_index_nonexistent.bin")).code(),
            StatusCode::kIOError);
}

TEST(RuleIndexFaultTest, SaveAndLoadFailpointsFire) {
  const std::string path = TempPath("dmc_rule_index_fault.bin");
  RuleIndex index;
  index.Publish(SampleRules());

  ASSERT_TRUE(fail::Configure("rule_index.save=enospc@1").ok());
  EXPECT_EQ(index.Save(path).code(), StatusCode::kResourceExhausted);
  // Second attempt (trigger was @1) succeeds.
  EXPECT_TRUE(index.Save(path).ok());

  ASSERT_TRUE(fail::Configure("rule_index.load=dataloss@1").ok());
  EXPECT_EQ(index.Load(path).code(), StatusCode::kDataLoss);
  EXPECT_TRUE(index.Load(path).ok());
  fail::Disable();
  std::remove(path.c_str());
}

// Readers race Publish and Load; TSan must stay quiet and every reader
// must observe a fully built snapshot.
TEST(RuleIndexConcurrencyTest, QueriesDuringSnapshotSwap) {
  const std::string path = TempPath("dmc_rule_index_tsan.bin");
  RuleIndex index;
  index.Publish(SampleRules());
  ASSERT_TRUE(index.Save(path).ok());

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&index, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snap = index.snapshot();
        const auto from0 = snap->QueryByAntecedent(0);
        const auto top = snap->TopK(2);
        if (!snap->empty()) {
          ASSERT_EQ(from0.size(), 3u);
          ASSERT_EQ(top.size(), 2u);
        }
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    index.Publish(i % 2 == 0 ? SampleRules() : ImplicationRuleSet());
    if (i % 50 == 0) {
      ASSERT_TRUE(index.Load(path).ok());
    }
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_GE(index.snapshot()->generation(), 1u);
  std::remove(path.c_str());
}

TEST(RuleIndexConcurrencyTest, PublishRacingSaveNeverTearsAnImage) {
  // Save serializes whatever snapshot it acquires; Publish swaps fresh
  // snapshots underneath it the whole time. Every saved image must load
  // back as one coherent published state (checksum valid, and exactly a
  // rule set that was published — never a mix of two generations).
  const std::string path = TempPath("dmc_rule_index_pub_vs_save.bin");
  RuleIndex index;
  index.Publish(SampleRules());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> saves{0};
  std::thread saver([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(index.Save(path).ok());
      saves.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // The two states publishes alternate between; a torn save would show
  // up as a mixture of the two (or a checksum failure on Load). Keep
  // publishing until the saver has demonstrably overlapped several
  // swaps (on one core it may not get scheduled for a while).
  const ImplicationRuleSet full = SampleRules();
  const ImplicationRuleSet empty;
  int i = 0;
  while (i < 300 || saves.load(std::memory_order_relaxed) < 3) {
    index.Publish(i % 2 == 0 ? empty : full);
    ++i;
    if (i % 100 == 0) std::this_thread::yield();
  }
  stop.store(true);
  saver.join();
  EXPECT_GT(saves.load(), 0u);

  RuleIndex loaded;
  ASSERT_TRUE(loaded.Load(path).ok());
  const auto snap = loaded.snapshot();
  const auto rules = snap->TopK(100);
  if (!rules.empty()) {
    // A full-state image must carry the complete sample set.
    auto sorted = full.rules();
    std::sort(sorted.begin(), sorted.end());
    auto got = rules;
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, sorted);
  }
  std::remove(path.c_str());
}

TEST(RuleIndexConcurrencyTest, ConcurrentPublishersKeepGenerationsDense) {
  // publish_mu_ serializes writers: two threads publishing concurrently
  // must never double-allocate a generation, so after N publishes the
  // generation is exactly N.
  RuleIndex index;
  constexpr int kPerThread = 100;
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&index, t] {
      for (int i = 0; i < kPerThread; ++i) {
        index.Publish(t == 0 ? SampleRules() : ImplicationRuleSet());
      }
    });
  }
  for (std::thread& w : writers) w.join();
  EXPECT_EQ(index.snapshot()->generation(),
            static_cast<uint64_t>(2 * kPerThread));
}

}  // namespace
}  // namespace dmc
