// End-to-end pipelines across modules: generator -> (pruning) -> miner ->
// verifier / baseline cross-checks, on each of the paper's four workload
// analogues at test scale.

#include <gtest/gtest.h>

#include <sstream>

#include "baselines/apriori.h"
#include "baselines/bruteforce.h"
#include "baselines/minhash.h"
#include "core/engine.h"
#include "datagen/dictionary_gen.h"
#include "datagen/linkgraph_gen.h"
#include "datagen/news_gen.h"
#include "datagen/weblog_gen.h"
#include "matrix/column_stats.h"
#include "matrix/matrix_io.h"
#include "rules/grouping.h"
#include "rules/verifier.h"

namespace dmc {
namespace {

TEST(IntegrationTest, WebLogPipelineMatchesBruteForce) {
  WebLogOptions gen;
  gen.num_clients = 400;
  gen.num_urls = 120;
  gen.num_sections = 8;
  gen.num_crawlers = 2;
  const BinaryMatrix m = GenerateWebLog(gen);

  for (double conf : {0.85, 1.0}) {
    ImplicationMiningOptions o;
    o.min_confidence = conf;
    MiningStats stats;
    auto rules = MineImplications(m, o, &stats);
    ASSERT_TRUE(rules.ok());
    EXPECT_EQ(rules->Pairs(), BruteForceImplications(m, conf).Pairs());
    EXPECT_TRUE(
        RuleVerifier(m).VerifyImplications(*rules, conf).ok());
  }
}

TEST(IntegrationTest, WebLogWithSupportPruning) {
  // The WlogP preparation: drop columns with <= 10 ones, then mine.
  WebLogOptions gen;
  gen.num_clients = 500;
  gen.num_urls = 150;
  const BinaryMatrix m = GenerateWebLog(gen);
  const PrunedMatrix pruned = SupportPruneColumns(m, 11);
  EXPECT_LT(pruned.matrix.num_columns(), m.num_columns());

  ImplicationMiningOptions o;
  o.min_confidence = 0.9;
  auto rules = MineImplications(pruned.matrix, o);
  ASSERT_TRUE(rules.ok());
  EXPECT_EQ(rules->Pairs(),
            BruteForceImplications(pruned.matrix, 0.9).Pairs());
}

TEST(IntegrationTest, LinkGraphBothOrientations) {
  LinkGraphOptions gen;
  gen.num_pages = 350;
  const BinaryMatrix plink_f = GenerateLinkGraph(gen);
  const BinaryMatrix plink_t = plink_f.Transposed();

  SimilarityMiningOptions o;
  o.min_similarity = 0.7;
  for (const BinaryMatrix* m : {&plink_f, &plink_t}) {
    auto pairs = MineSimilarities(*m, o);
    ASSERT_TRUE(pairs.ok());
    EXPECT_EQ(pairs->Pairs(), BruteForceSimilarities(*m, 0.7).Pairs());
  }
}

TEST(IntegrationTest, NewsRuleGroupsContainTopicStructure) {
  NewsOptions gen;
  gen.num_docs = 2500;
  gen.num_topics = 6;
  gen.background_vocab = 800;
  const NewsData news = GenerateNews(gen);

  ImplicationMiningOptions o;
  o.min_confidence = 0.85;
  auto rules = MineImplications(news.matrix, o);
  ASSERT_TRUE(rules.ok());
  ASSERT_GT(rules->size(), 0u);

  // Fig. 7 workflow: expand from the "polgar" column.
  const ColumnId polgar = news.entity_columns[0][0];
  const auto expanded = ExpandFromSeed(*rules, polgar);
  // polgar's successors should be dominated by topic-0 vocabulary.
  size_t topic0 = 0;
  for (const auto& r : expanded) {
    for (ColumnId w : news.theme_columns[0]) topic0 += r.rhs == w;
  }
  if (!expanded.empty()) {
    EXPECT_GT(topic0, 0u);
  }
}

TEST(IntegrationTest, DictionarySimilarityFindsSynonyms) {
  DictionaryOptions gen;
  gen.num_head_words = 400;
  gen.num_definition_words = 300;
  gen.num_synonym_groups = 25;
  gen.synonym_overlap = 0.97;
  const DictionaryData dict = GenerateDictionary(gen);

  SimilarityMiningOptions o;
  o.min_similarity = 0.75;
  auto pairs = MineSimilarities(dict.matrix, o);
  ASSERT_TRUE(pairs.ok());
  EXPECT_EQ(pairs->Pairs(),
            BruteForceSimilarities(dict.matrix, 0.75).Pairs());
  // Most reported pairs should be within synonym groups.
  size_t in_group = 0;
  for (const auto& p : *pairs) {
    for (const auto& g : dict.synonym_groups) {
      bool has_a = false, has_b = false;
      for (ColumnId c : g) {
        has_a |= c == p.a;
        has_b |= c == p.b;
      }
      in_group += has_a && has_b;
    }
  }
  EXPECT_GT(in_group, pairs->size() / 2);
}

TEST(IntegrationTest, DmcAgreesWithAprioriOnitsHomeTurf) {
  // On a support-pruned matrix (a-priori's best case), both must produce
  // the same rule set.
  NewsOptions gen;
  gen.num_docs = 1500;
  gen.num_topics = 5;
  gen.background_vocab = 600;
  const NewsData news = GenerateNews(gen);
  const PrunedMatrix pruned =
      SupportPruneColumns(news.matrix, 5, news.matrix.num_rows() / 5);

  ImplicationMiningOptions dmc_opts;
  dmc_opts.min_confidence = 0.85;
  auto dmc_rules = MineImplications(pruned.matrix, dmc_opts);
  ASSERT_TRUE(dmc_rules.ok());

  auto apriori_rules =
      AprioriImplications(pruned.matrix, AprioriOptions{}, 0.85);
  ASSERT_TRUE(apriori_rules.ok());
  EXPECT_EQ(dmc_rules->Pairs(), apriori_rules->Pairs());
}

TEST(IntegrationTest, MinHashVerifiedIsSubsetOfDmc) {
  DictionaryOptions gen;
  gen.num_head_words = 300;
  gen.num_definition_words = 250;
  const DictionaryData dict = GenerateDictionary(gen);

  SimilarityMiningOptions o;
  o.min_similarity = 0.8;
  auto dmc_pairs = MineSimilarities(dict.matrix, o);
  ASSERT_TRUE(dmc_pairs.ok());

  MinHashOptions mh;
  mh.num_hashes = 150;
  const auto mh_pairs = MinHashSimilarities(dict.matrix, mh, 0.8);

  // Verified Min-Hash results must be a subset of DMC's exact set.
  const auto exact = dmc_pairs->Pairs();
  for (const auto& p : mh_pairs.Pairs()) {
    EXPECT_TRUE(std::find(exact.begin(), exact.end(), p) != exact.end());
  }
}

TEST(IntegrationTest, SerializeMineRoundTrip) {
  WebLogOptions gen;
  gen.num_clients = 200;
  gen.num_urls = 80;
  const BinaryMatrix m = GenerateWebLog(gen);

  std::stringstream ss;
  ASSERT_TRUE(WriteMatrixText(m, ss).ok());
  auto loaded = ReadMatrixText(ss);
  ASSERT_TRUE(loaded.ok());

  ImplicationMiningOptions o;
  o.min_confidence = 0.9;
  auto a = MineImplications(m, o);
  auto b = MineImplications(*loaded, o);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->Pairs(), b->Pairs());
}

TEST(IntegrationTest, FirstPassScanFeedsBucketedMining) {
  // Demonstrates the two-pass disk workflow: pass 1 scans text for stats,
  // pass 2 loads and mines with bucketed order.
  WebLogOptions gen;
  gen.num_clients = 150;
  gen.num_urls = 60;
  const BinaryMatrix m = GenerateWebLog(gen);
  std::stringstream ss;
  ASSERT_TRUE(WriteMatrixText(m, ss).ok());
  auto stats = ScanMatrixText(ss);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->num_rows, m.num_rows());
  for (ColumnId c = 0; c < m.num_columns(); ++c) {
    EXPECT_EQ(stats->column_ones[c], m.column_ones()[c]);
  }
}

}  // namespace
}  // namespace dmc
