#include "matrix/row_order.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/random.h"

namespace dmc {
namespace {

BinaryMatrix VariedMatrix() {
  // Densities: 2, 3, 0, 1, 5, 2, 4.
  return BinaryMatrix::FromRows(5, {{0, 1},
                                    {0, 1, 2},
                                    {},
                                    {4},
                                    {0, 1, 2, 3, 4},
                                    {2, 3},
                                    {0, 2, 3, 4}});
}

TEST(RowOrderTest, IdentityOrder) {
  const BinaryMatrix m = VariedMatrix();
  const auto order = IdentityOrder(m);
  ASSERT_EQ(order.size(), 7u);
  for (RowId r = 0; r < 7; ++r) EXPECT_EQ(order[r], r);
}

TEST(RowOrderTest, SortedByDensityIsMonotoneAndStable) {
  const BinaryMatrix m = VariedMatrix();
  const auto order = SortedByDensityOrder(m);
  ASSERT_EQ(order.size(), 7u);
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(m.RowSize(order[i - 1]), m.RowSize(order[i]));
  }
  // Stability: rows 0 and 5 both have density 2, original order kept.
  const auto pos = [&](RowId r) {
    return std::find(order.begin(), order.end(), r) - order.begin();
  };
  EXPECT_LT(pos(0), pos(5));
}

TEST(RowOrderTest, OrdersArePermutations) {
  const BinaryMatrix m = VariedMatrix();
  for (auto order : {IdentityOrder(m), SortedByDensityOrder(m),
                     DensityBucketOrder(m).order}) {
    std::sort(order.begin(), order.end());
    for (RowId r = 0; r < m.num_rows(); ++r) EXPECT_EQ(order[r], r);
  }
}

TEST(RowOrderTest, BucketRangesCoverOrder) {
  const BinaryMatrix m = VariedMatrix();
  const BucketedOrder b = DensityBucketOrder(m);
  ASSERT_FALSE(b.bucket_ranges.empty());
  EXPECT_EQ(b.bucket_ranges.front().first, 0u);
  EXPECT_EQ(b.bucket_ranges.back().second, b.order.size());
  for (size_t i = 1; i < b.bucket_ranges.size(); ++i) {
    EXPECT_EQ(b.bucket_ranges[i].first, b.bucket_ranges[i - 1].second);
  }
}

TEST(RowOrderTest, BucketsAreDensityRanges) {
  const BinaryMatrix m = VariedMatrix();
  const BucketedOrder b = DensityBucketOrder(m);
  for (size_t k = 0; k < b.bucket_ranges.size(); ++k) {
    const auto [begin, end] = b.bucket_ranges[k];
    const uint64_t lo = b.bucket_min_density[k];
    const uint64_t hi = lo == 0 ? 1 : lo * 2 - 1;
    for (size_t i = begin; i < end; ++i) {
      const size_t d = m.RowSize(b.order[i]);
      EXPECT_GE(d, lo == 0 ? 0 : lo);
      EXPECT_LE(d, hi);
    }
  }
}

TEST(RowOrderTest, BucketOrderIsSparserFirstAcrossBuckets) {
  const BinaryMatrix m = VariedMatrix();
  const BucketedOrder b = DensityBucketOrder(m);
  for (size_t k = 1; k < b.bucket_min_density.size(); ++k) {
    EXPECT_LT(b.bucket_min_density[k - 1], b.bucket_min_density[k]);
  }
}

TEST(RowOrderTest, BucketCountIsLogBounded) {
  Rng rng(7);
  MatrixBuilder builder(1000);
  for (int r = 0; r < 300; ++r) {
    std::vector<ColumnId> row;
    const size_t d = rng.Uniform(1000);
    for (size_t i = 0; i < d; ++i) {
      row.push_back(static_cast<ColumnId>(rng.Uniform(1000)));
    }
    builder.AddRow(row);
  }
  const BinaryMatrix m = builder.Build();
  const BucketedOrder b = DensityBucketOrder(m);
  // ceil(log2(1000)) + 1 = 11.
  EXPECT_LE(b.bucket_ranges.size(), 11u);
}

TEST(RowOrderTest, PreservesOriginalOrderWithinBucket) {
  const BinaryMatrix m = BinaryMatrix::FromRows(
      4, {{0, 1}, {2, 3}, {0, 3}, {1, 2}});  // all density 2
  const BucketedOrder b = DensityBucketOrder(m);
  ASSERT_EQ(b.order.size(), 4u);
  for (RowId r = 0; r < 4; ++r) EXPECT_EQ(b.order[r], r);
}

}  // namespace
}  // namespace dmc
