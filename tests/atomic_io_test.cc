#include "util/atomic_io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "util/failpoint.h"

namespace dmc {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// No stray "path.tmp.*" files next to the target.
bool NoTempLeftovers(const std::string& path) {
  const std::filesystem::path target(path);
  for (const auto& entry :
       std::filesystem::directory_iterator(target.parent_path())) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(target.filename().string() + ".tmp.", 0) == 0) {
      return false;
    }
  }
  return true;
}

class AtomicIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // ctest runs each case as its own parallel process; a per-case
    // directory keeps them from clobbering each other.
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = testing::TempDir() + "/" +
           std::string(info->test_suite_name()) + "_" + info->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    path_ = dir_ + "/out.txt";
  }
  void TearDown() override {
    fail::Disable();
    std::filesystem::remove_all(dir_);
  }

  std::string dir_;
  std::string path_;
};

TEST_F(AtomicIoTest, WriteCreatesFileWithExactContent) {
  ASSERT_TRUE(AtomicWriteFile(path_, "hello\nworld\n").ok());
  EXPECT_EQ(ReadFileOrDie(path_), "hello\nworld\n");
  EXPECT_TRUE(NoTempLeftovers(path_));
}

TEST_F(AtomicIoTest, WriteReplacesExistingFile) {
  ASSERT_TRUE(AtomicWriteFile(path_, "old").ok());
  ASSERT_TRUE(AtomicWriteFile(path_, "new content").ok());
  EXPECT_EQ(ReadFileOrDie(path_), "new content");
}

TEST_F(AtomicIoTest, StreamingWriterAccumulatesChunks) {
  AtomicFileWriter w;
  ASSERT_TRUE(w.Open(path_).ok());
  ASSERT_TRUE(w.Write("a").ok());
  ASSERT_TRUE(w.Write("bc").ok());
  ASSERT_TRUE(w.Commit().ok());
  EXPECT_EQ(ReadFileOrDie(path_), "abc");
}

TEST_F(AtomicIoTest, AbortLeavesTargetUntouched) {
  ASSERT_TRUE(AtomicWriteFile(path_, "original").ok());
  AtomicFileWriter w;
  ASSERT_TRUE(w.Open(path_).ok());
  ASSERT_TRUE(w.Write("partial").ok());
  w.Abort();
  EXPECT_EQ(ReadFileOrDie(path_), "original");
  EXPECT_TRUE(NoTempLeftovers(path_));
}

TEST_F(AtomicIoTest, DestructorWithoutCommitActsAsAbort) {
  ASSERT_TRUE(AtomicWriteFile(path_, "original").ok());
  {
    AtomicFileWriter w;
    ASSERT_TRUE(w.Open(path_).ok());
    ASSERT_TRUE(w.Write("half-done").ok());
  }
  EXPECT_EQ(ReadFileOrDie(path_), "original");
  EXPECT_TRUE(NoTempLeftovers(path_));
}

TEST_F(AtomicIoTest, OpenFailsForUnwritableDirectory) {
  const Status st = AtomicWriteFile(dir_ + "/no/such/dir/f.txt", "x");
  EXPECT_EQ(st.code(), StatusCode::kIOError);
}

// The crash-safety contract under injected faults: whatever step fails,
// the target holds either the complete old content or the complete new
// content, and no temp file survives.
TEST_F(AtomicIoTest, InjectedFaultsNeverTearTheTarget) {
  const std::string kOld = "old old old\n";
  const std::string kNew = "brand new contents, longer than before\n";
  for (const char* site :
       {"atomic_io.open", "atomic_io.write", "atomic_io.fsync",
        "atomic_io.rename"}) {
    ASSERT_TRUE(AtomicWriteFile(path_, kOld).ok());
    ASSERT_TRUE(fail::Configure(std::string(site) + "=error").ok());
    const Status st = AtomicWriteFile(path_, kNew);
    fail::Disable();
    ASSERT_FALSE(st.ok()) << site;
    EXPECT_TRUE(fail::IsInjectedFault(st)) << site;
    EXPECT_EQ(ReadFileOrDie(path_), kOld) << site;
    EXPECT_TRUE(NoTempLeftovers(path_)) << site;
  }
}

TEST_F(AtomicIoTest, ShortWriteFaultAbortsCleanly) {
  ASSERT_TRUE(AtomicWriteFile(path_, "intact").ok());
  ASSERT_TRUE(fail::Configure("atomic_io.write=short").ok());
  const Status st = AtomicWriteFile(path_, "this would be truncated");
  fail::Disable();
  ASSERT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_EQ(ReadFileOrDie(path_), "intact");
  EXPECT_TRUE(NoTempLeftovers(path_));
}

TEST_F(AtomicIoTest, NoSpaceFaultMapsToResourceExhausted) {
  ASSERT_TRUE(fail::Configure("atomic_io.write=enospc").ok());
  const Status st = AtomicWriteFile(path_, "x");
  fail::Disable();
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(std::filesystem::exists(path_));
  EXPECT_TRUE(NoTempLeftovers(path_));
}

}  // namespace
}  // namespace dmc
