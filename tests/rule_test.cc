#include "rules/rule.h"

#include <gtest/gtest.h>

namespace dmc {
namespace {

TEST(ImplicationRuleTest, Confidence) {
  ImplicationRule r{1, 2, 100, 15};
  EXPECT_DOUBLE_EQ(r.confidence(), 0.85);
  EXPECT_EQ(r.hits(), 85u);
}

TEST(ImplicationRuleTest, ZeroMissesIsFullConfidence) {
  ImplicationRule r{0, 1, 7, 0};
  EXPECT_DOUBLE_EQ(r.confidence(), 1.0);
}

TEST(ImplicationRuleTest, EmptyLhsHasZeroConfidence) {
  ImplicationRule r{0, 1, 0, 0};
  EXPECT_DOUBLE_EQ(r.confidence(), 0.0);
}

TEST(ImplicationRuleTest, ToStringContainsIds) {
  ImplicationRule r{3, 9, 10, 1};
  const std::string s = r.ToString();
  EXPECT_NE(s.find("c3"), std::string::npos);
  EXPECT_NE(s.find("c9"), std::string::npos);
  EXPECT_NE(s.find("0.9"), std::string::npos);
}

TEST(SimilarityPairTest, Similarity) {
  SimilarityPair p{1, 2, 40, 44, 38};
  // 38 / (40 + 44 - 38) = 38/46.
  EXPECT_DOUBLE_EQ(p.similarity(), 38.0 / 46.0);
}

TEST(SimilarityPairTest, IdenticalColumns) {
  SimilarityPair p{0, 1, 10, 10, 10};
  EXPECT_DOUBLE_EQ(p.similarity(), 1.0);
}

TEST(SimilarityPairTest, EmptyColumns) {
  SimilarityPair p{0, 1, 0, 0, 0};
  EXPECT_DOUBLE_EQ(p.similarity(), 0.0);
}

TEST(SparserFirstTest, OrdersByOnesThenId) {
  EXPECT_TRUE(SparserFirst(3, 9, 5, 1));   // fewer ones wins
  EXPECT_FALSE(SparserFirst(5, 1, 3, 9));
  EXPECT_TRUE(SparserFirst(4, 1, 4, 2));   // tie: lower id wins
  EXPECT_FALSE(SparserFirst(4, 2, 4, 1));
  EXPECT_FALSE(SparserFirst(4, 1, 4, 1));  // strict
}

}  // namespace
}  // namespace dmc
