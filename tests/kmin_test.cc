#include "baselines/kmin.h"

#include <gtest/gtest.h>

#include "baselines/bruteforce.h"
#include "datagen/planted_gen.h"

namespace dmc {
namespace {

TEST(KMinTest, FindsObviousHighConfidenceRules) {
  // c0 subset of c1 with conf 1.0 and high similarity.
  MatrixBuilder b(2);
  for (int i = 0; i < 40; ++i) b.AddRow({0, 1});
  for (int i = 0; i < 5; ++i) b.AddRow({1});
  const BinaryMatrix m = b.Build();
  KMinOptions o;
  o.num_hashes = 200;
  const auto rules = KMinImplications(m, o, 0.9);
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules.rules()[0].lhs, 0u);
  EXPECT_EQ(rules.rules()[0].rhs, 1u);
}

TEST(KMinTest, BoundedFalseNegativesOnPlantedRules) {
  // The paper plots K-Min at the setting where its false-negative rate is
  // below 10%. With enough hash functions and slack, the planted rules
  // (conf 0.9, sim ~0.8) are nearly all found.
  PlantedOptions p;
  p.seed = 77;
  p.num_implications = 20;
  const PlantedData data = GeneratePlanted(p);
  const double conf =
      double(p.implication_hits) / p.implication_lhs_ones;  // 0.9
  KMinOptions o;
  o.num_hashes = 300;
  o.candidate_slack = 0.05;
  const auto rules = KMinImplications(data.matrix, o, conf);
  const auto found = rules.Pairs();
  size_t hits = 0;
  for (const ImplicationRule& planted : data.implications) {
    for (const auto& [lhs, rhs] : found) {
      if (lhs == planted.lhs && rhs == planted.rhs) ++hits;
    }
  }
  const double fn_rate =
      1.0 - double(hits) / double(data.implications.size());
  EXPECT_LE(fn_rate, 0.10);
}

TEST(KMinTest, CanProduceFalseNegativesWithFewHashes) {
  // With very few hash functions and no slack, the estimator is noisy and
  // some true rules are missed — the behaviour the paper criticizes.
  PlantedOptions p;
  p.seed = 78;
  p.num_implications = 30;
  const PlantedData data = GeneratePlanted(p);
  const double conf =
      double(p.implication_hits) / p.implication_lhs_ones;
  KMinOptions o;
  o.num_hashes = 8;
  o.candidate_slack = 0.0;
  const auto rules = KMinImplications(data.matrix, o, conf);
  const auto truth = BruteForceImplications(data.matrix, conf);
  // It should find strictly fewer pairs than the truth contains
  // (overwhelmingly likely at k=8).
  size_t matched = 0;
  const auto found = rules.Pairs();
  for (const auto& pr : truth.Pairs()) {
    for (const auto& f : found) {
      if (f == pr) ++matched;
    }
  }
  EXPECT_LT(matched, truth.Pairs().size());
}

TEST(KMinTest, DeterministicForSeed) {
  PlantedOptions p;
  p.seed = 79;
  const PlantedData data = GeneratePlanted(p);
  KMinOptions o;
  const auto a = KMinImplications(data.matrix, o, 0.85);
  const auto b = KMinImplications(data.matrix, o, 0.85);
  EXPECT_EQ(a.Pairs(), b.Pairs());
}

TEST(KMinTest, StatsPopulated) {
  PlantedOptions p;
  const PlantedData data = GeneratePlanted(p);
  KMinOptions o;
  KMinStats stats;
  const auto rules = KMinImplications(data.matrix, o, 0.85, &stats);
  EXPECT_EQ(stats.rules_reported, rules.size());
  EXPECT_GT(stats.candidate_pairs, 0u);
}

}  // namespace
}  // namespace dmc
