#include "util/zipf.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/random.h"

namespace dmc {
namespace {

TEST(ZipfTest, ThetaZeroIsUniform) {
  ZipfSampler z(10, 0.0);
  for (uint64_t r = 0; r < 10; ++r) {
    EXPECT_NEAR(z.Pmf(r), 0.1, 1e-12);
  }
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler z(100, 1.2);
  double total = 0.0;
  for (uint64_t r = 0; r < 100; ++r) total += z.Pmf(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, RankZeroMostPopular) {
  ZipfSampler z(50, 1.0);
  for (uint64_t r = 1; r < 50; ++r) {
    EXPECT_GT(z.Pmf(0), z.Pmf(r));
    EXPECT_GE(z.Pmf(r - 1), z.Pmf(r));
  }
}

TEST(ZipfTest, EmpiricalMatchesPmf) {
  ZipfSampler z(20, 1.0);
  Rng rng(31);
  constexpr int kSamples = 200000;
  std::vector<int> counts(20, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[z.Sample(rng)];
  for (uint64_t r = 0; r < 20; ++r) {
    EXPECT_NEAR(counts[r] / double(kSamples), z.Pmf(r),
                0.1 * z.Pmf(r) + 0.002);
  }
}

TEST(ZipfTest, SingleElement) {
  ZipfSampler z(1, 2.0);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(z.Sample(rng), 0u);
}

TEST(PowerLawTest, StaysInRange) {
  PowerLawSampler p(2, 64, 2.0);
  Rng rng(41);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t k = p.Sample(rng);
    EXPECT_GE(k, 2u);
    EXPECT_LE(k, 64u);
  }
}

TEST(PowerLawTest, HeavyTailShape) {
  PowerLawSampler p(1, 1000, 2.0);
  Rng rng(43);
  constexpr int kSamples = 100000;
  int small = 0, large = 0;
  for (int i = 0; i < kSamples; ++i) {
    const uint64_t k = p.Sample(rng);
    small += k <= 2;
    large += k >= 100;
  }
  // For alpha=2 most mass is at tiny values, but the tail is non-empty.
  EXPECT_GT(small, kSamples / 2);
  EXPECT_GT(large, 0);
  EXPECT_LT(large, kSamples / 20);
}

TEST(PowerLawTest, DegenerateRange) {
  PowerLawSampler p(5, 5, 1.5);
  Rng rng(47);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(p.Sample(rng), 5u);
}

}  // namespace
}  // namespace dmc
