#include "util/retry.h"

#include <gtest/gtest.h>

#include <vector>

namespace dmc {
namespace {

RetryPolicy FastPolicy(int attempts) {
  RetryPolicy p;
  p.max_attempts = attempts;
  p.initial_backoff_seconds = 0.0;
  p.max_backoff_seconds = 0.0;
  return p;
}

TEST(RetryTest, SucceedsFirstTryWithoutRetrying) {
  int calls = 0;
  const Status st = RetryWithBackoff(FastPolicy(3), [&] {
    ++calls;
    return Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, RetriesTransientFailureUntilSuccess) {
  int calls = 0;
  std::vector<int> retried_attempts;
  const Status st = RetryWithBackoff(
      FastPolicy(5),
      [&]() -> Status {
        if (++calls < 3) return IOError("flaky");
        return Status::OK();
      },
      [&](int attempt, const Status& s) {
        retried_attempts.push_back(attempt);
        EXPECT_EQ(s.code(), StatusCode::kIOError);
      });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retried_attempts, (std::vector<int>{1, 2}));
}

TEST(RetryTest, ExhaustsAttemptsAndReturnsLastError) {
  int calls = 0;
  const Status st = RetryWithBackoff(FastPolicy(4), [&]() -> Status {
    ++calls;
    return ResourceExhaustedError("full " + std::to_string(calls));
  });
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(st.message(), "full 4");
  EXPECT_EQ(calls, 4);
}

TEST(RetryTest, NonRetryableErrorReturnsImmediately) {
  int calls = 0;
  const Status st = RetryWithBackoff(FastPolicy(5), [&]() -> Status {
    ++calls;
    return InvalidArgumentError("bad input");
  });
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, RetryClassesAreConfigurable) {
  RetryPolicy p = FastPolicy(3);
  p.retry_io_error = false;
  EXPECT_FALSE(p.IsRetryable(IOError("x")));
  EXPECT_TRUE(p.IsRetryable(ResourceExhaustedError("x")));
  p.retry_resource_exhausted = false;
  EXPECT_FALSE(p.IsRetryable(ResourceExhaustedError("x")));
  EXPECT_FALSE(p.IsRetryable(CancelledError("x")));
  EXPECT_FALSE(p.IsRetryable(DataLossError("x")));
  EXPECT_FALSE(p.IsRetryable(Status::OK()));
}

TEST(RetryTest, ZeroOrNegativeAttemptsStillRunsOnce) {
  int calls = 0;
  const Status st = RetryWithBackoff(FastPolicy(0), [&]() -> Status {
    ++calls;
    return IOError("x");
  });
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace dmc
