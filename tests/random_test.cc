#include "util/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dmc {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  bool all_equal = true;
  bool any_diff_from_c = false;
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.Next();
    const uint64_t vb = b.Next();
    const uint64_t vc = c.Next();
    all_equal &= (va == vb);
    any_diff_from_c |= (va != vc);
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_from_c);
}

TEST(RngTest, UniformStaysInBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Uniform(1), 0u);
  }
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.Uniform(kBuckets)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, 0.05 * kSamples / kBuckets);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  constexpr int kSamples = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double v = rng.Gaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kSamples, 1.0, 0.03);
}

TEST(RngTest, PoissonMean) {
  Rng rng(17);
  for (const double mean : {0.5, 4.0, 50.0}) {
    double sum = 0.0;
    constexpr int kSamples = 50000;
    for (int i = 0; i < kSamples; ++i) sum += rng.Poisson(mean);
    EXPECT_NEAR(sum / kSamples, mean, 0.05 * mean + 0.05);
  }
}

TEST(RngTest, GeometricMean) {
  Rng rng(19);
  const double p = 0.25;
  double sum = 0.0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) sum += rng.Geometric(p);
  // Mean of failures-before-success geometric: (1-p)/p = 3.
  EXPECT_NEAR(sum / kSamples, 3.0, 0.15);
}

TEST(MixTest, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(Mix64(123), Mix64(123));
  EXPECT_NE(Mix64(123), Mix64(124));
}

}  // namespace
}  // namespace dmc
