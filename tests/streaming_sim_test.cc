#include "core/streaming_sim.h"

#include <gtest/gtest.h>

#include "baselines/bruteforce.h"
#include "core/dmc_sim.h"
#include "core/external_miner.h"
#include "datagen/dictionary_gen.h"
#include "datagen/quest_gen.h"
#include "matrix/matrix_io.h"
#include "matrix/row_order.h"

namespace dmc {
namespace {

BinaryMatrix Workload(uint64_t seed) {
  QuestOptions q;
  q.num_transactions = 1200;
  q.num_items = 180;
  q.seed = seed;
  return GenerateQuest(q);
}

auto MatrixReplay(const BinaryMatrix& m, const std::vector<RowId>& order) {
  return [&m, &order](auto&& sink) {
    for (RowId r : order) sink(m.Row(r));
  };
}

TEST(StreamingSimTest, MatchesBatchEngine) {
  const BinaryMatrix m = Workload(41);
  const auto order = DensityBucketOrder(m).order;
  for (double s : {0.5, 0.8, 1.0}) {
    SimilarityMiningOptions o;
    o.min_similarity = s;
    auto batch = MineSimilarities(m, o);
    ASSERT_TRUE(batch.ok());
    auto streamed =
        StreamSimilarities(m.num_columns(), m.column_ones(), m.num_rows(),
                           o, MatrixReplay(m, order));
    ASSERT_TRUE(streamed.ok()) << streamed.status();
    EXPECT_EQ(streamed->Pairs(), batch->Pairs()) << s;
  }
}

TEST(StreamingSimTest, BitmapModeMatches) {
  const BinaryMatrix m = Workload(42);
  const auto order = DensityBucketOrder(m).order;
  SimilarityMiningOptions o;
  o.min_similarity = 0.7;
  o.policy.bitmap_fallback = true;
  o.policy.memory_threshold_bytes = 1;
  o.policy.bitmap_max_remaining_rows = 200;
  auto streamed =
      StreamSimilarities(m.num_columns(), m.column_ones(), m.num_rows(), o,
                         MatrixReplay(m, order));
  ASSERT_TRUE(streamed.ok());
  EXPECT_EQ(streamed->Pairs(), BruteForceSimilarities(m, 0.7).Pairs());
}

TEST(StreamingSimTest, PruningFlagsMatch) {
  const BinaryMatrix m = Workload(43);
  const auto order = IdentityOrder(m);
  const auto truth = BruteForceSimilarities(m, 0.6).Pairs();
  for (bool density : {false, true}) {
    for (bool maxhits : {false, true}) {
      SimilarityMiningOptions o;
      o.min_similarity = 0.6;
      o.policy.column_density_pruning = density;
      o.policy.max_hits_pruning = maxhits;
      auto streamed = StreamSimilarities(
          m.num_columns(), m.column_ones(), m.num_rows(), o,
          MatrixReplay(m, order));
      ASSERT_TRUE(streamed.ok());
      EXPECT_EQ(streamed->Pairs(), truth)
          << density << " " << maxhits;
    }
  }
}

TEST(StreamingSimTest, RejectsShortStream) {
  const BinaryMatrix m = Workload(44);
  SimilarityMiningOptions o;
  o.min_similarity = 0.8;
  auto truncated = [&m](auto&& sink) {
    for (RowId r = 0; r + 1 < m.num_rows(); ++r) sink(m.Row(r));
  };
  auto streamed = StreamSimilarities(
      m.num_columns(), m.column_ones(), m.num_rows(), o, truncated);
  ASSERT_FALSE(streamed.ok());
  EXPECT_EQ(streamed.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ExternalSimMinerTest, MatchesInMemoryMining) {
  DictionaryOptions gen;
  gen.num_head_words = 400;
  gen.num_definition_words = 300;
  gen.num_synonym_groups = 20;
  const BinaryMatrix m = GenerateDictionary(gen).matrix;

  const std::string dir = testing::TempDir();
  const std::string path = dir + "/external_sim_test.txt";
  ASSERT_TRUE(WriteMatrixTextFile(m, path).ok());

  for (double s : {0.8, 1.0}) {
    SimilarityMiningOptions o;
    o.min_similarity = s;
    auto in_memory = MineSimilarities(m, o);
    ASSERT_TRUE(in_memory.ok());
    ExternalMiningStats stats;
    auto external = MineSimilaritiesFromFile(path, o, dir, &stats);
    ASSERT_TRUE(external.ok()) << external.status();
    EXPECT_EQ(external->Pairs(), in_memory->Pairs()) << s;
    EXPECT_EQ(stats.rows, m.num_rows());
  }
}

}  // namespace
}  // namespace dmc
