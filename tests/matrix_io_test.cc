#include "matrix/matrix_io.h"

#include <gtest/gtest.h>

#include <sstream>

namespace dmc {
namespace {

TEST(MatrixIoTest, RoundTrip) {
  const BinaryMatrix m =
      BinaryMatrix::FromRows(6, {{0, 5}, {}, {1, 2, 3}, {4}});
  std::stringstream ss;
  ASSERT_TRUE(WriteMatrixText(m, ss).ok());
  auto parsed = ReadMatrixText(ss);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  // Column count may shrink to the max id seen + 1 (5 -> 6 here since
  // column 5 is used).
  EXPECT_EQ(parsed->num_columns(), 6u);
  EXPECT_EQ(*parsed, m);
}

TEST(MatrixIoTest, ParsesCommentsAndBlankRows) {
  std::stringstream ss("# header\n1 2\n\n0\n");
  auto parsed = ReadMatrixText(ss);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_rows(), 3u);
  EXPECT_EQ(parsed->RowSize(0), 2u);
  EXPECT_EQ(parsed->RowSize(1), 0u);
  EXPECT_EQ(parsed->RowSize(2), 1u);
}

TEST(MatrixIoTest, RejectsMalformedToken) {
  std::stringstream ss("1 x 3\n");
  auto parsed = ReadMatrixText(ss);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(MatrixIoTest, HandlesWhitespaceVariants) {
  std::stringstream ss("  3\t4  \r\n7\n");
  auto parsed = ReadMatrixText(ss);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->num_rows(), 2u);
  EXPECT_TRUE(parsed->Get(0, 3));
  EXPECT_TRUE(parsed->Get(0, 4));
  EXPECT_TRUE(parsed->Get(1, 7));
}

TEST(MatrixIoTest, FileRoundTrip) {
  const BinaryMatrix m = BinaryMatrix::FromRows(3, {{0, 1}, {2}});
  const std::string path = testing::TempDir() + "/dmc_matrix_io_test.txt";
  ASSERT_TRUE(WriteMatrixTextFile(m, path).ok());
  auto parsed = ReadMatrixTextFile(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, m);
}

TEST(MatrixIoTest, MissingFileIsIOError) {
  auto parsed = ReadMatrixTextFile("/nonexistent/dir/file.txt");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kIOError);
}

TEST(MatrixIoTest, ScanMatchesMaterializedStats) {
  const BinaryMatrix m =
      BinaryMatrix::FromRows(5, {{0, 1, 4}, {1}, {}, {2, 3, 4}});
  std::stringstream ss;
  ASSERT_TRUE(WriteMatrixText(m, ss).ok());
  auto stats = ScanMatrixText(ss);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->num_rows, 4u);
  EXPECT_EQ(stats->num_columns, 5u);
  ASSERT_EQ(stats->column_ones.size(), 5u);
  for (ColumnId c = 0; c < 5; ++c) {
    EXPECT_EQ(stats->column_ones[c], m.column_ones()[c]) << c;
  }
  ASSERT_EQ(stats->row_density.size(), 4u);
  for (RowId r = 0; r < 4; ++r) {
    EXPECT_EQ(stats->row_density[r], m.RowSize(r)) << r;
  }
}

TEST(MatrixIoTest, ScanDeduplicatesWithinRowWhenNormalizing) {
  std::stringstream ss("2 2 2\n");
  TextReadOptions options;
  options.normalize = true;
  auto stats = ScanMatrixText(ss, options);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->column_ones[2], 1u);
  EXPECT_EQ(stats->row_density[0], 1u);
}

TEST(MatrixIoTest, StrictScanRejectsDuplicateIds) {
  std::stringstream ss("2 2 2\n");
  auto stats = ScanMatrixText(ss);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(stats.status().message().find("duplicate column id 2"),
            std::string::npos)
      << stats.status();
  EXPECT_NE(stats.status().message().find("line 1"), std::string::npos);
}

TEST(MatrixIoTest, StrictReadRejectsUnsortedIds) {
  std::stringstream ss("0 1\n5 3\n");
  auto parsed = ReadMatrixText(ss);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("not sorted"), std::string::npos)
      << parsed.status();
  // The error names line 2 and its byte offset (line 1 is "0 1\n" = 4 bytes).
  EXPECT_NE(parsed.status().message().find("line 2 (byte 4)"),
            std::string::npos)
      << parsed.status();
}

TEST(MatrixIoTest, StrictReadRejectsOutOfRangeIds) {
  std::stringstream ss("0 4000000000\n");
  auto parsed = ReadMatrixText(ss);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("exceeds the configured maximum"),
            std::string::npos)
      << parsed.status();
}

TEST(MatrixIoTest, NormalizeAcceptsUnsortedAndSorts) {
  std::stringstream ss("5 3 3 0\n");
  TextReadOptions options;
  options.normalize = true;
  auto parsed = ReadMatrixText(ss, options);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->RowSize(0), 3u);
  EXPECT_TRUE(parsed->Get(0, 0));
  EXPECT_TRUE(parsed->Get(0, 3));
  EXPECT_TRUE(parsed->Get(0, 5));
}

TEST(MatrixIoTest, BinaryRoundTrip) {
  const BinaryMatrix m =
      BinaryMatrix::FromRows(7, {{0, 6}, {}, {1, 2, 3}, {4}});
  const std::string path = testing::TempDir() + "/dmc_matrix_io_test.bin";
  ASSERT_TRUE(WriteMatrixBinaryFile(m, path).ok());
  auto parsed = ReadMatrixBinaryFile(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->num_columns(), 7u);
  EXPECT_EQ(*parsed, m);
}

TEST(MatrixIoTest, BinaryMissingFileIsIOError) {
  auto parsed = ReadMatrixBinaryFile("/nonexistent/dir/file.bin");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kIOError);
}

TEST(MatrixIoTest, BinaryRejectsBadMagic) {
  std::string data = SerializeMatrixBinary(
      BinaryMatrix::FromRows(3, {{0, 1}, {2}}));
  data[0] = 'X';
  auto parsed = ReadMatrixBinary(data);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(parsed.status().message().find("bad magic"), std::string::npos);
}

TEST(MatrixIoTest, BinaryRejectsBitFlipViaChecksum) {
  const BinaryMatrix m = BinaryMatrix::FromRows(3, {{0, 1}, {2}});
  std::string data = SerializeMatrixBinary(m);
  // Flip one bit inside the header's row count; structure stays parseable
  // for some flips, but the checksum must always catch it.
  data[13] ^= 0x01;
  auto parsed = ReadMatrixBinary(data);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss);
}

TEST(MatrixIoTest, BinaryRejectsTruncation) {
  const BinaryMatrix m = BinaryMatrix::FromRows(4, {{0, 1, 2, 3}, {1, 3}});
  const std::string data = SerializeMatrixBinary(m);
  for (size_t len = 0; len < data.size(); ++len) {
    auto parsed = ReadMatrixBinary(data.substr(0, len));
    ASSERT_FALSE(parsed.ok()) << "prefix of " << len << " bytes parsed";
    EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss) << len;
  }
}

TEST(MatrixIoTest, BinaryErrorsCarryRowAndByteContext) {
  const BinaryMatrix m = BinaryMatrix::FromRows(3, {{0, 1}, {2}});
  std::string data = SerializeMatrixBinary(m);
  // Truncate inside row 1's payload (header 20 bytes, row 0 = 12 bytes,
  // row 1 count = 4 bytes => cut just after row 1's count field).
  auto parsed = ReadMatrixBinary(data.substr(0, 36));
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("row 1"), std::string::npos)
      << parsed.status();
  EXPECT_NE(parsed.status().message().find("byte"), std::string::npos);
}

}  // namespace
}  // namespace dmc
