#include "matrix/matrix_io.h"

#include <gtest/gtest.h>

#include <sstream>

namespace dmc {
namespace {

TEST(MatrixIoTest, RoundTrip) {
  const BinaryMatrix m =
      BinaryMatrix::FromRows(6, {{0, 5}, {}, {1, 2, 3}, {4}});
  std::stringstream ss;
  ASSERT_TRUE(WriteMatrixText(m, ss).ok());
  auto parsed = ReadMatrixText(ss);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  // Column count may shrink to the max id seen + 1 (5 -> 6 here since
  // column 5 is used).
  EXPECT_EQ(parsed->num_columns(), 6u);
  EXPECT_EQ(*parsed, m);
}

TEST(MatrixIoTest, ParsesCommentsAndBlankRows) {
  std::stringstream ss("# header\n1 2\n\n0\n");
  auto parsed = ReadMatrixText(ss);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_rows(), 3u);
  EXPECT_EQ(parsed->RowSize(0), 2u);
  EXPECT_EQ(parsed->RowSize(1), 0u);
  EXPECT_EQ(parsed->RowSize(2), 1u);
}

TEST(MatrixIoTest, RejectsMalformedToken) {
  std::stringstream ss("1 x 3\n");
  auto parsed = ReadMatrixText(ss);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(MatrixIoTest, HandlesWhitespaceVariants) {
  std::stringstream ss("  3\t4  \r\n7\n");
  auto parsed = ReadMatrixText(ss);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->num_rows(), 2u);
  EXPECT_TRUE(parsed->Get(0, 3));
  EXPECT_TRUE(parsed->Get(0, 4));
  EXPECT_TRUE(parsed->Get(1, 7));
}

TEST(MatrixIoTest, FileRoundTrip) {
  const BinaryMatrix m = BinaryMatrix::FromRows(3, {{0, 1}, {2}});
  const std::string path = testing::TempDir() + "/dmc_matrix_io_test.txt";
  ASSERT_TRUE(WriteMatrixTextFile(m, path).ok());
  auto parsed = ReadMatrixTextFile(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, m);
}

TEST(MatrixIoTest, MissingFileIsIOError) {
  auto parsed = ReadMatrixTextFile("/nonexistent/dir/file.txt");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kIOError);
}

TEST(MatrixIoTest, ScanMatchesMaterializedStats) {
  const BinaryMatrix m =
      BinaryMatrix::FromRows(5, {{0, 1, 4}, {1}, {}, {2, 3, 4}});
  std::stringstream ss;
  ASSERT_TRUE(WriteMatrixText(m, ss).ok());
  auto stats = ScanMatrixText(ss);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->num_rows, 4u);
  EXPECT_EQ(stats->num_columns, 5u);
  ASSERT_EQ(stats->column_ones.size(), 5u);
  for (ColumnId c = 0; c < 5; ++c) {
    EXPECT_EQ(stats->column_ones[c], m.column_ones()[c]) << c;
  }
  ASSERT_EQ(stats->row_density.size(), 4u);
  for (RowId r = 0; r < 4; ++r) {
    EXPECT_EQ(stats->row_density[r], m.RowSize(r)) << r;
  }
}

TEST(MatrixIoTest, ScanDeduplicatesWithinRow) {
  std::stringstream ss("2 2 2\n");
  auto stats = ScanMatrixText(ss);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->column_ones[2], 1u);
  EXPECT_EQ(stats->row_density[0], 1u);
}

}  // namespace
}  // namespace dmc
