// TSan stress for the shard coordinator: several coordinators running
// concurrently on threads of one process, all funneling fleet and
// worker metrics into one shared MetricsRegistry while they fork/exec,
// poll and reap their own worker fleets. The coordinator's event loop
// is single-threaded by design; what must be race-free is everything it
// shares — the metrics registry, the failpoint registry, and the
// process-control layer (a fork from a multithreaded parent).
//
// Own binary so tools/check.sh can run exactly this under TSan.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/external_miner.h"
#include "matrix/binary_matrix.h"
#include "matrix/matrix_io.h"
#include "observe/metrics.h"
#include "shard/coordinator.h"
#include "util/failpoint.h"
#include "util/random.h"

namespace dmc {
namespace shard {
namespace {

BinaryMatrix StressMatrix() {
  Rng rng(0x57E5);
  MatrixBuilder b(14);
  std::vector<ColumnId> row;
  for (uint32_t r = 0; r < 120; ++r) {
    row.clear();
    for (ColumnId c = 0; c < 14; ++c) {
      if (rng.Bernoulli(0.3)) row.push_back(c);
    }
    if (!row.empty() && row[0] == 0) row.insert(row.begin() + 1, 1);
    b.AddRow(row);
  }
  return b.Build();
}

class ShardStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = testing::TempDir() + "/" +
           std::string(info->test_suite_name()) + "_" + info->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    input_ = dir_ + "/input.txt";
    ASSERT_TRUE(WriteMatrixTextFile(StressMatrix(), input_).ok());
    imp_.min_confidence = 0.8;
    auto truth = MineImplicationsFromFile(input_, imp_, dir_);
    ASSERT_TRUE(truth.ok());
    truth_ = truth->rules();
    ASSERT_FALSE(truth_.empty());
  }
  void TearDown() override {
    fail::Disable();
    std::filesystem::remove_all(dir_);
  }

  std::string dir_;
  std::string input_;
  ImplicationMiningOptions imp_;
  std::vector<ImplicationRule> truth_;
};

TEST_F(ShardStressTest, ConcurrentCoordinatorsShareOneRegistry) {
  constexpr int kCoordinators = 3;
  MetricsRegistry registry;

  std::vector<std::string> errors(kCoordinators);
  std::vector<std::thread> threads;
  for (int i = 0; i < kCoordinators; ++i) {
    threads.emplace_back([&, i] {
      // Every coordinator needs its own work_dir — bucket files are
      // per-run artifacts — but they share the registry on purpose.
      const std::string work_dir = dir_ + "/coord_" + std::to_string(i);
      std::filesystem::create_directories(work_dir);
      ImplicationMiningOptions options = imp_;
      options.policy.observe.metrics = &registry;
      ShardOptions s;
      s.worker_binary = DMC_SHARD_WORKER_BIN;
      s.num_workers = 2;
      s.tasks_per_worker = 1;
      s.worker_metrics_dir = work_dir;
      auto rules =
          MineImplicationsSharded(input_, options, work_dir, s);
      if (!rules.ok()) {
        errors[i] = rules.status().ToString();
      } else if (rules->rules() != truth_) {
        errors[i] = "rule set diverged from single-process baseline";
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < kCoordinators; ++i) {
    EXPECT_TRUE(errors[i].empty()) << "coordinator " << i << ": "
                                   << errors[i];
  }
  // Fleet accounting from all coordinators landed in the one registry.
  EXPECT_GE(registry.counter("dmc.shard.workers_spawned"),
            2u * kCoordinators);
  EXPECT_GE(registry.counter("dmc.shard.worker.tasks_ok"),
            uint64_t{kCoordinators});
}

TEST_F(ShardStressTest, ConcurrentCrashRecoveryStaysExact) {
  constexpr int kCoordinators = 2;
  MetricsRegistry registry;
  std::vector<std::string> errors(kCoordinators);
  std::vector<std::thread> threads;
  for (int i = 0; i < kCoordinators; ++i) {
    threads.emplace_back([&, i] {
      const std::string work_dir = dir_ + "/crash_" + std::to_string(i);
      std::filesystem::create_directories(work_dir);
      ImplicationMiningOptions options = imp_;
      options.policy.observe.metrics = &registry;
      ShardOptions s;
      s.worker_binary = DMC_SHARD_WORKER_BIN;
      s.num_workers = 2;
      s.tasks_per_worker = 2;
      s.max_respawns_per_slot = 1;
      s.spawn_retry.initial_backoff_seconds = 0.001;
      s.spawn_retry.max_backoff_seconds = 0.01;
      s.spawn_retry.max_total_backoff_seconds = 0.05;
      // Odd coordinators run a crashing fleet and must degrade; even
      // ones run clean. Both must land on the identical rule set. The
      // crash hook rides the progress callback — tighten its cadence so
      // it fires within this small matrix.
      if (i % 2 == 1) {
        s.worker_env = {"DMC_SHARD_TEST_CRASH_AFTER_ROWS=5"};
        options.policy.observe.progress_interval_rows = 8;
      }
      auto rules =
          MineImplicationsSharded(input_, options, work_dir, s);
      if (!rules.ok()) {
        errors[i] = rules.status().ToString();
      } else if (rules->rules() != truth_) {
        errors[i] = "rule set diverged from single-process baseline";
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < kCoordinators; ++i) {
    EXPECT_TRUE(errors[i].empty()) << "coordinator " << i << ": "
                                   << errors[i];
  }
  EXPECT_GE(registry.counter("dmc.shard.workers_died"), 2u);
}

}  // namespace
}  // namespace shard
}  // namespace dmc
