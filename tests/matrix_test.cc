#include "matrix/binary_matrix.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace dmc {
namespace {

BinaryMatrix SmallMatrix() {
  // 4 rows x 5 columns.
  return BinaryMatrix::FromRows(5, {{0, 2}, {1, 2, 4}, {}, {0, 1, 2, 3, 4}});
}

TEST(BinaryMatrixTest, Dimensions) {
  const BinaryMatrix m = SmallMatrix();
  EXPECT_EQ(m.num_rows(), 4u);
  EXPECT_EQ(m.num_columns(), 5u);
  EXPECT_EQ(m.num_ones(), 10u);
}

TEST(BinaryMatrixTest, RowAccess) {
  const BinaryMatrix m = SmallMatrix();
  ASSERT_EQ(m.RowSize(0), 2u);
  EXPECT_EQ(m.Row(0)[0], 0u);
  EXPECT_EQ(m.Row(0)[1], 2u);
  EXPECT_EQ(m.RowSize(2), 0u);
  EXPECT_EQ(m.RowSize(3), 5u);
}

TEST(BinaryMatrixTest, ColumnOnes) {
  const BinaryMatrix m = SmallMatrix();
  const auto& ones = m.column_ones();
  ASSERT_EQ(ones.size(), 5u);
  EXPECT_EQ(ones[0], 2u);
  EXPECT_EQ(ones[1], 2u);
  EXPECT_EQ(ones[2], 3u);
  EXPECT_EQ(ones[3], 1u);
  EXPECT_EQ(ones[4], 2u);
}

TEST(BinaryMatrixTest, RowsAreSortedAndDeduplicated) {
  const BinaryMatrix m = BinaryMatrix::FromRows(4, {{3, 1, 3, 0, 1}});
  ASSERT_EQ(m.RowSize(0), 3u);
  EXPECT_EQ(m.Row(0)[0], 0u);
  EXPECT_EQ(m.Row(0)[1], 1u);
  EXPECT_EQ(m.Row(0)[2], 3u);
  EXPECT_EQ(m.column_ones()[1], 1u);  // dedup counted once
}

TEST(BinaryMatrixTest, Get) {
  const BinaryMatrix m = SmallMatrix();
  EXPECT_TRUE(m.Get(0, 0));
  EXPECT_FALSE(m.Get(0, 1));
  EXPECT_TRUE(m.Get(3, 4));
  EXPECT_FALSE(m.Get(2, 0));
}

TEST(BinaryMatrixTest, TransposedRoundTrip) {
  const BinaryMatrix m = SmallMatrix();
  const BinaryMatrix t = m.Transposed();
  EXPECT_EQ(t.num_rows(), m.num_columns());
  EXPECT_EQ(t.num_columns(), m.num_rows());
  for (RowId r = 0; r < m.num_rows(); ++r) {
    for (ColumnId c = 0; c < m.num_columns(); ++c) {
      EXPECT_EQ(m.Get(r, c), t.Get(c, static_cast<ColumnId>(r)));
    }
  }
  EXPECT_EQ(t.Transposed(), m);
}

TEST(BinaryMatrixTest, ColumnBitmap) {
  const BinaryMatrix m = SmallMatrix();
  const BitVector b2 = m.ColumnBitmap(2);
  EXPECT_EQ(b2.Count(), 3u);
  EXPECT_TRUE(b2.Test(0));
  EXPECT_TRUE(b2.Test(1));
  EXPECT_FALSE(b2.Test(2));
  EXPECT_TRUE(b2.Test(3));
}

TEST(BinaryMatrixTest, AllColumnBitmapsMatchPerColumn) {
  const BinaryMatrix m = SmallMatrix();
  const auto bitmaps = m.AllColumnBitmaps();
  ASSERT_EQ(bitmaps.size(), m.num_columns());
  for (ColumnId c = 0; c < m.num_columns(); ++c) {
    EXPECT_EQ(bitmaps[c], m.ColumnBitmap(c)) << "column " << c;
  }
}

TEST(BinaryMatrixTest, EmptyMatrix) {
  const BinaryMatrix m;
  EXPECT_EQ(m.num_rows(), 0u);
  EXPECT_EQ(m.num_columns(), 0u);
  EXPECT_EQ(m.num_ones(), 0u);
}

TEST(MatrixBuilderTest, GrowsColumns) {
  MatrixBuilder b;
  b.AddRow({7});
  b.AddRow({2, 11});
  const BinaryMatrix m = b.Build();
  EXPECT_EQ(m.num_columns(), 12u);
  EXPECT_EQ(m.num_rows(), 2u);
  EXPECT_TRUE(m.Get(1, 11));
}

TEST(MatrixBuilderTest, FixedColumns) {
  MatrixBuilder b(6);
  b.AddRow({0, 5});
  const BinaryMatrix m = b.Build();
  EXPECT_EQ(m.num_columns(), 6u);
}

TEST(MatrixBuilderTest, ReusableAfterBuild) {
  MatrixBuilder b(3);
  b.AddRow({0});
  (void)b.Build();
  EXPECT_EQ(b.num_rows(), 0u);
  b.AddRow({1, 2});
  const BinaryMatrix m = b.Build();
  EXPECT_EQ(m.num_rows(), 1u);
  EXPECT_EQ(m.num_ones(), 2u);
}

TEST(BinaryMatrixTest, RandomizedTransposePreservesOnes) {
  Rng rng(99);
  MatrixBuilder b(50);
  for (int r = 0; r < 200; ++r) {
    std::vector<ColumnId> row;
    for (ColumnId c = 0; c < 50; ++c) {
      if (rng.Bernoulli(0.1)) row.push_back(c);
    }
    b.AddRow(row);
  }
  const BinaryMatrix m = b.Build();
  const BinaryMatrix t = m.Transposed();
  EXPECT_EQ(m.num_ones(), t.num_ones());
  // ones of m's columns == row sizes of t.
  for (ColumnId c = 0; c < m.num_columns(); ++c) {
    EXPECT_EQ(m.column_ones()[c], t.RowSize(c));
  }
}

}  // namespace
}  // namespace dmc
