// Differential parity: every MergeKernel choice must produce the same
// rules AND the same byte-level accounting. The in-place/SIMD kernels are
// pure layout/speed changes — any divergence from kLegacy in rule sets,
// peak_counter_bytes, peak_candidates, or the per-row history curves is a
// bug, and this harness is the tripwire.

#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/kernels.h"
#include "matrix/binary_matrix.h"
#include "util/random.h"

namespace dmc {
namespace {

BinaryMatrix RandomMatrix(uint64_t seed, uint32_t rows, uint32_t cols,
                          double density) {
  Rng rng(seed);
  MatrixBuilder b(cols);
  std::vector<ColumnId> row;
  for (uint32_t r = 0; r < rows; ++r) {
    row.clear();
    for (uint32_t c = 0; c < cols; ++c) {
      if (rng.Bernoulli(density)) row.push_back(c);
    }
    b.AddRow(row);
  }
  return b.Build();
}

const MergeKernel kAllKernels[] = {MergeKernel::kLegacy, MergeKernel::kScalar,
                                   MergeKernel::kSimd, MergeKernel::kAuto};

struct ImpRun {
  ImplicationRuleSet rules;
  MiningStats stats;
};

ImpRun RunImp(const BinaryMatrix& m, MergeKernel kernel, RowOrderPolicy order,
              double conf, const DmcPolicy* base = nullptr) {
  ImplicationMiningOptions o;
  if (base != nullptr) o.policy = *base;
  o.min_confidence = conf;
  o.policy.kernel = kernel;
  o.policy.row_order = order;
  o.policy.record_history = true;
  ImpRun run;
  auto rules = MineImplications(m, o, &run.stats);
  EXPECT_TRUE(rules.ok());
  if (rules.ok()) run.rules = std::move(*rules);
  run.rules.Canonicalize();
  return run;
}

struct SimRun {
  SimilarityRuleSet pairs;
  MiningStats stats;
};

SimRun RunSim(const BinaryMatrix& m, MergeKernel kernel, RowOrderPolicy order,
              double sim, const DmcPolicy* base = nullptr) {
  SimilarityMiningOptions o;
  if (base != nullptr) o.policy = *base;
  o.min_similarity = sim;
  o.policy.kernel = kernel;
  o.policy.row_order = order;
  o.policy.record_history = true;
  SimRun run;
  auto pairs = MineSimilarities(m, o, &run.stats);
  EXPECT_TRUE(pairs.ok());
  if (pairs.ok()) run.pairs = std::move(*pairs);
  run.pairs.Canonicalize();
  return run;
}

// Rules, accounting peaks, AND per-row history must all match. Exact
// struct equality on rules also compares the underlying counts.
void ExpectStatsEqual(const MiningStats& want, const MiningStats& got,
                      const char* label) {
  EXPECT_EQ(want.peak_counter_bytes, got.peak_counter_bytes) << label;
  EXPECT_EQ(want.peak_candidates, got.peak_candidates) << label;
  EXPECT_EQ(want.memory_history, got.memory_history) << label;
  EXPECT_EQ(want.candidate_history, got.candidate_history) << label;
  EXPECT_EQ(want.hundred_bitmap_triggered, got.hundred_bitmap_triggered)
      << label;
  EXPECT_EQ(want.sub_bitmap_triggered, got.sub_bitmap_triggered) << label;
  EXPECT_EQ(want.sub_bitmap_rows, got.sub_bitmap_rows) << label;
}

TEST(KernelParityTest, ImplicationsAcrossSeedsDensitiesAndOrders) {
  for (const uint64_t seed : {1u, 2u}) {
    for (const double density : {0.05, 0.30}) {
      const BinaryMatrix m = RandomMatrix(seed, 300, 60, density);
      for (const RowOrderPolicy order :
           {RowOrderPolicy::kIdentity, RowOrderPolicy::kDensityBuckets}) {
        const ImpRun ref =
            RunImp(m, MergeKernel::kLegacy, order, /*conf=*/0.7);
        for (const MergeKernel k : kAllKernels) {
          const ImpRun got = RunImp(m, k, order, /*conf=*/0.7);
          EXPECT_EQ(ref.rules.rules(), got.rules.rules())
              << "kernel=" << KernelName(k) << " seed=" << seed
              << " density=" << density;
          ExpectStatsEqual(ref.stats, got.stats, KernelName(k));
        }
      }
    }
  }
}

TEST(KernelParityTest, SimilaritiesAcrossSeedsDensitiesAndOrders) {
  for (const uint64_t seed : {3u, 4u}) {
    for (const double density : {0.05, 0.30}) {
      const BinaryMatrix m = RandomMatrix(seed, 300, 60, density);
      for (const RowOrderPolicy order :
           {RowOrderPolicy::kIdentity, RowOrderPolicy::kDensityBuckets}) {
        const SimRun ref =
            RunSim(m, MergeKernel::kLegacy, order, /*sim=*/0.4);
        for (const MergeKernel k : kAllKernels) {
          const SimRun got = RunSim(m, k, order, /*sim=*/0.4);
          EXPECT_EQ(ref.pairs.pairs(), got.pairs.pairs())
              << "kernel=" << KernelName(k) << " seed=" << seed
              << " density=" << density;
          ExpectStatsEqual(ref.stats, got.stats, KernelName(k));
        }
      }
    }
  }
}

TEST(KernelParityTest, ImplicationsWithForcedBitmapSwitch) {
  // Force the DMC-bitmap fallback (§4.2): threshold 0 makes the switch
  // fire as soon as few enough rows remain, exercising the
  // kernel-independent tail path plus the FlushColumn boundary.
  DmcPolicy base;
  base.memory_threshold_bytes = 0;
  base.bitmap_max_remaining_rows = 128;
  const BinaryMatrix m = RandomMatrix(9, 200, 40, 0.25);
  const ImpRun ref = RunImp(m, MergeKernel::kLegacy,
                            RowOrderPolicy::kDensityBuckets, 0.7, &base);
  EXPECT_TRUE(ref.stats.sub_bitmap_triggered);
  for (const MergeKernel k : kAllKernels) {
    const ImpRun got =
        RunImp(m, k, RowOrderPolicy::kDensityBuckets, 0.7, &base);
    EXPECT_EQ(ref.rules.rules(), got.rules.rules()) << KernelName(k);
    ExpectStatsEqual(ref.stats, got.stats, KernelName(k));
  }
}

TEST(KernelParityTest, SimilaritiesWithForcedBitmapSwitch) {
  DmcPolicy base;
  base.memory_threshold_bytes = 0;
  base.bitmap_max_remaining_rows = 128;
  const BinaryMatrix m = RandomMatrix(10, 200, 40, 0.25);
  const SimRun ref = RunSim(m, MergeKernel::kLegacy,
                            RowOrderPolicy::kDensityBuckets, 0.4, &base);
  for (const MergeKernel k : kAllKernels) {
    const SimRun got =
        RunSim(m, k, RowOrderPolicy::kDensityBuckets, 0.4, &base);
    EXPECT_EQ(ref.pairs.pairs(), got.pairs.pairs()) << KernelName(k);
    ExpectStatsEqual(ref.stats, got.stats, KernelName(k));
  }
}

TEST(KernelParityTest, ResolveKernelNeverReturnsAutoOrUnsupported) {
  for (const MergeKernel k : kAllKernels) {
    const MergeKernel r = ResolveKernel(k);
    EXPECT_NE(r, MergeKernel::kAuto);
    if (r == MergeKernel::kSimd) {
      EXPECT_TRUE(SimdKernelAvailable());
    }
  }
  EXPECT_EQ(ResolveKernel(MergeKernel::kLegacy), MergeKernel::kLegacy);
  EXPECT_EQ(ResolveKernel(MergeKernel::kScalar), MergeKernel::kScalar);
}

TEST(KernelParityTest, KernelNameIsStable) {
  EXPECT_STREQ(KernelName(MergeKernel::kAuto), "auto");
  EXPECT_STREQ(KernelName(MergeKernel::kLegacy), "legacy");
  EXPECT_STREQ(KernelName(MergeKernel::kScalar), "scalar");
  EXPECT_STREQ(KernelName(MergeKernel::kSimd), "simd");
}

}  // namespace
}  // namespace dmc
