// Checked-in corrupt inputs (tests/testdata/corrupt/) must be rejected
// with a structured Status — never a crash, never a silently wrong
// matrix. The fixtures cover the text strictness rules and the binary
// container's magic / truncation / checksum defenses.

#include <gtest/gtest.h>

#include <string>

#include "matrix/matrix_io.h"

namespace dmc {
namespace {

std::string CorruptPath(const std::string& name) {
  return std::string(DMC_TESTDATA_DIR) + "/corrupt/" + name;
}

TEST(CorruptFixtureTest, UnsortedTextRejected) {
  auto parsed = ReadMatrixTextFile(CorruptPath("unsorted.txt"));
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("not sorted"), std::string::npos)
      << parsed.status();
}

TEST(CorruptFixtureTest, DuplicateTextRejected) {
  auto parsed = ReadMatrixTextFile(CorruptPath("duplicate.txt"));
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("duplicate column id"),
            std::string::npos)
      << parsed.status();
}

TEST(CorruptFixtureTest, OutOfRangeTextRejected) {
  auto parsed = ReadMatrixTextFile(CorruptPath("out_of_range.txt"));
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("exceeds the configured maximum"),
            std::string::npos)
      << parsed.status();
}

TEST(CorruptFixtureTest, MalformedTokenRejected) {
  auto parsed = ReadMatrixTextFile(CorruptPath("malformed_token.txt"));
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("malformed column id"),
            std::string::npos)
      << parsed.status();
}

TEST(CorruptFixtureTest, NormalizeModeStillRejectsMalformedToken) {
  TextReadOptions options;
  options.normalize = true;
  auto parsed = ReadMatrixTextFile(CorruptPath("malformed_token.txt"), options);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(CorruptFixtureTest, NormalizeModeAcceptsUnsortedFixture) {
  TextReadOptions options;
  options.normalize = true;
  auto parsed = ReadMatrixTextFile(CorruptPath("unsorted.txt"), options);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->num_rows(), 2u);
  EXPECT_TRUE(parsed->Get(1, 3));
  EXPECT_TRUE(parsed->Get(1, 5));
}

TEST(CorruptFixtureTest, BinaryBadMagicRejected) {
  auto parsed = ReadMatrixBinaryFile(CorruptPath("bad_magic.bin"));
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(parsed.status().message().find("bad magic"), std::string::npos);
}

TEST(CorruptFixtureTest, BinaryTruncationRejected) {
  auto parsed = ReadMatrixBinaryFile(CorruptPath("truncated.bin"));
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(parsed.status().message().find("truncated"), std::string::npos)
      << parsed.status();
}

TEST(CorruptFixtureTest, BinaryBitFlipCaught) {
  auto parsed = ReadMatrixBinaryFile(CorruptPath("bit_flip.bin"));
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace dmc
