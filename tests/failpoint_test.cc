#include "util/failpoint.h"

#include <gtest/gtest.h>

#include <string>

namespace dmc {
namespace {

// The registry is process-global; every test re-Configures and finishes
// by disabling so tests stay order-independent.
class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { fail::Disable(); }
};

TEST_F(FailpointTest, DisabledByDefaultCostsNothing) {
  fail::Disable();
  EXPECT_FALSE(fail::Enabled());
  EXPECT_EQ(fail::Fire("any.site"), fail::Mode::kOff);
  EXPECT_TRUE(fail::InjectStatus("any.site").ok());
  EXPECT_TRUE(fail::SitesSeen().empty());
}

TEST_F(FailpointTest, EveryHitFiresWithoutTrigger) {
  ASSERT_TRUE(fail::Configure("io.read=error").ok());
  EXPECT_TRUE(fail::Enabled());
  for (int i = 0; i < 3; ++i) {
    const Status st = fail::InjectStatus("io.read");
    EXPECT_EQ(st.code(), StatusCode::kIOError);
    EXPECT_TRUE(fail::IsInjectedFault(st));
  }
  EXPECT_EQ(fail::GetSiteStats("io.read").hits, 3u);
  EXPECT_EQ(fail::GetSiteStats("io.read").fires, 3u);
}

TEST_F(FailpointTest, NthHitTriggerFiresExactlyOnce) {
  ASSERT_TRUE(fail::Configure("io.read=error@2").ok());
  EXPECT_TRUE(fail::InjectStatus("io.read").ok());
  EXPECT_FALSE(fail::InjectStatus("io.read").ok());
  EXPECT_TRUE(fail::InjectStatus("io.read").ok());
  EXPECT_EQ(fail::GetSiteStats("io.read").fires, 1u);
  EXPECT_EQ(fail::TotalFires(), 1u);
}

TEST_F(FailpointTest, FromNthOnwardTrigger) {
  ASSERT_TRUE(fail::Configure("io.read=error@3+").ok());
  EXPECT_TRUE(fail::InjectStatus("io.read").ok());
  EXPECT_TRUE(fail::InjectStatus("io.read").ok());
  EXPECT_FALSE(fail::InjectStatus("io.read").ok());
  EXPECT_FALSE(fail::InjectStatus("io.read").ok());
}

TEST_F(FailpointTest, ModesMapToStatusCodes) {
  ASSERT_TRUE(
      fail::Configure("a=error;b=enospc;c=alloc;d=dataloss;e=short").ok());
  EXPECT_EQ(fail::InjectStatus("a").code(), StatusCode::kIOError);
  EXPECT_EQ(fail::InjectStatus("b").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(fail::InjectStatus("c").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(fail::InjectStatus("d").code(), StatusCode::kDataLoss);
  // InjectStatus cannot emulate truncation, so kShortWrite degrades to a
  // plain I/O error; sites that can truncate handle the mode themselves.
  EXPECT_EQ(fail::InjectStatus("e").code(), StatusCode::kIOError);
}

TEST_F(FailpointTest, OffModeNeverFiresButRecordsHits) {
  ASSERT_TRUE(fail::Configure("io.read=off").ok());
  EXPECT_TRUE(fail::InjectStatus("io.read").ok());
  EXPECT_EQ(fail::GetSiteStats("io.read").hits, 1u);
  EXPECT_EQ(fail::GetSiteStats("io.read").fires, 0u);
}

TEST_F(FailpointTest, RecordOnlyModeEnumeratesSites) {
  ASSERT_TRUE(fail::Configure("").ok());
  EXPECT_TRUE(fail::Enabled());
  EXPECT_TRUE(fail::InjectStatus("zeta.site").ok());
  EXPECT_TRUE(fail::InjectStatus("alpha.site").ok());
  EXPECT_TRUE(fail::InjectStatus("alpha.site").ok());
  const auto sites = fail::SitesSeen();
  ASSERT_EQ(sites.size(), 2u);
  EXPECT_EQ(sites[0], "alpha.site");
  EXPECT_EQ(sites[1], "zeta.site");
  EXPECT_EQ(fail::TotalFires(), 0u);
}

TEST_F(FailpointTest, ProbabilityTriggerIsDeterministicInSeed) {
  auto run = [](const std::string& spec) {
    EXPECT_TRUE(fail::Configure(spec).ok());
    std::string pattern;
    for (int i = 0; i < 64; ++i) {
      pattern += fail::InjectStatus("io.read").ok() ? '.' : 'X';
    }
    return pattern;
  };
  const std::string a = run("io.read=error@p0.5;seed=11");
  const std::string b = run("io.read=error@p0.5;seed=11");
  const std::string c = run("io.read=error@p0.5;seed=12");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // astronomically unlikely to collide across 64 flips
  EXPECT_NE(a.find('X'), std::string::npos);
  EXPECT_NE(a.find('.'), std::string::npos);
}

TEST_F(FailpointTest, MalformedSpecIsRejectedAndDisables) {
  EXPECT_EQ(fail::Configure("io.read").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fail::Configure("io.read=bogus").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fail::Configure("io.read=error@x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fail::Configure("io.read=error@p2").code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(fail::Enabled());
}

TEST_F(FailpointTest, ReconfigureResetsCounters) {
  ASSERT_TRUE(fail::Configure("io.read=error").ok());
  EXPECT_FALSE(fail::InjectStatus("io.read").ok());
  ASSERT_TRUE(fail::Configure("io.read=error").ok());
  EXPECT_EQ(fail::GetSiteStats("io.read").hits, 0u);
  EXPECT_EQ(fail::TotalFires(), 0u);
}

TEST_F(FailpointTest, IsInjectedFaultIgnoresOrdinaryErrors) {
  EXPECT_FALSE(fail::IsInjectedFault(Status::OK()));
  EXPECT_FALSE(fail::IsInjectedFault(IOError("disk on fire")));
  ASSERT_TRUE(fail::Configure("s=dataloss").ok());
  EXPECT_TRUE(fail::IsInjectedFault(fail::InjectStatus("s")));
}

}  // namespace
}  // namespace dmc
