// ThreadSanitizer stress test for the parallel miner.
//
// The DMC claim is exactness, so the parallel engine must return
// bit-identical rule sets under any interleaving. This binary hammers
// MineImplicationsParallel / MineSimilaritiesParallel with many threads
// over small shards, repeatedly, and also runs several parallel miners
// concurrently against the same shared matrix — the configuration most
// likely to expose a data race. Run it under -DDMC_SANITIZE=thread
// (cmake --preset tsan); it is also registered in the normal suite as a
// cheap determinism check.

#include "core/parallel_dmc.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/dmc_imp.h"
#include "core/dmc_sim.h"
#include "datagen/quest_gen.h"

namespace dmc {
namespace {

// Small enough that one mining run is milliseconds even under TSan's
// ~10x slowdown, dense enough that every shard sees real candidates.
BinaryMatrix StressWorkload(uint64_t seed) {
  QuestOptions q;
  q.num_transactions = 600;
  q.num_items = 64;
  q.seed = seed;
  return GenerateQuest(q);
}

TEST(ParallelStressTest, RepeatedManyThreadImplicationRuns) {
  const BinaryMatrix m = StressWorkload(101);
  ImplicationMiningOptions o;
  o.min_confidence = 0.8;
  auto serial = MineImplications(m, o);
  ASSERT_TRUE(serial.ok());
  for (int iter = 0; iter < 8; ++iter) {
    ParallelOptions p;
    p.num_threads = 16;  // 16 threads x 64 columns = tiny shards
    ParallelMiningStats stats;
    auto parallel = MineImplicationsParallel(m, o, p, &stats);
    ASSERT_TRUE(parallel.ok()) << "iter " << iter;
    EXPECT_EQ(parallel->Pairs(), serial->Pairs()) << "iter " << iter;
    EXPECT_EQ(stats.shards, 16u);
  }
}

TEST(ParallelStressTest, RepeatedManyThreadSimilarityRuns) {
  const BinaryMatrix m = StressWorkload(102);
  SimilarityMiningOptions o;
  o.min_similarity = 0.6;
  auto serial = MineSimilarities(m, o);
  ASSERT_TRUE(serial.ok());
  for (int iter = 0; iter < 8; ++iter) {
    ParallelOptions p;
    p.num_threads = 16;
    auto parallel = MineSimilaritiesParallel(m, o, p);
    ASSERT_TRUE(parallel.ok()) << "iter " << iter;
    EXPECT_EQ(parallel->Pairs(), serial->Pairs()) << "iter " << iter;
  }
}

TEST(ParallelStressTest, ConcurrentMinersShareOneMatrix) {
  // Several top-level miners, each itself multi-threaded, all reading the
  // same matrix concurrently. Any hidden global/shared mutable state in
  // the mining stack (stats, memory tracking, logging) shows up here.
  const BinaryMatrix m = StressWorkload(103);
  ImplicationMiningOptions imp_options;
  imp_options.min_confidence = 0.85;
  SimilarityMiningOptions sim_options;
  sim_options.min_similarity = 0.7;
  auto serial_imp = MineImplications(m, imp_options);
  auto serial_sim = MineSimilarities(m, sim_options);
  ASSERT_TRUE(serial_imp.ok());
  ASSERT_TRUE(serial_sim.ok());

  constexpr int kMiners = 4;
  std::vector<StatusOr<ImplicationRuleSet>> imp_results(
      kMiners, StatusOr<ImplicationRuleSet>(ImplicationRuleSet{}));
  std::vector<StatusOr<SimilarityRuleSet>> sim_results(
      kMiners, StatusOr<SimilarityRuleSet>(SimilarityRuleSet{}));
  std::vector<std::thread> miners;
  miners.reserve(2 * kMiners);
  for (int i = 0; i < kMiners; ++i) {
    miners.emplace_back([&, i]() {
      ParallelOptions p;
      p.num_threads = 4;
      imp_results[i] = MineImplicationsParallel(m, imp_options, p);
    });
    miners.emplace_back([&, i]() {
      ParallelOptions p;
      p.num_threads = 4;
      sim_results[i] = MineSimilaritiesParallel(m, sim_options, p);
    });
  }
  for (auto& t : miners) t.join();

  for (int i = 0; i < kMiners; ++i) {
    ASSERT_TRUE(imp_results[i].ok()) << "miner " << i;
    ASSERT_TRUE(sim_results[i].ok()) << "miner " << i;
    EXPECT_EQ(imp_results[i]->Pairs(), serial_imp->Pairs()) << "miner " << i;
    EXPECT_EQ(sim_results[i]->Pairs(), serial_sim->Pairs()) << "miner " << i;
  }
}

TEST(ParallelStressTest, BitmapFallbackUnderManyThreads) {
  // Forces the DMC-bitmap fallback inside every shard worker so the
  // tail-collection path also runs under contention.
  const BinaryMatrix m = StressWorkload(104);
  SimilarityMiningOptions o;
  o.min_similarity = 0.7;
  o.policy.bitmap_fallback = true;
  o.policy.memory_threshold_bytes = 0;
  o.policy.bitmap_max_remaining_rows = 1000;  // whole scan via bitmaps
  auto serial = MineSimilarities(m, o);
  ASSERT_TRUE(serial.ok());
  for (int iter = 0; iter < 4; ++iter) {
    ParallelOptions p;
    p.num_threads = 12;
    auto parallel = MineSimilaritiesParallel(m, o, p);
    ASSERT_TRUE(parallel.ok()) << "iter " << iter;
    EXPECT_EQ(parallel->Pairs(), serial->Pairs()) << "iter " << iter;
  }
}

TEST(ParallelStressTest, MidMineCancellationUnderManyThreads) {
  // Cancels from the (thread-shared) progress callback at varying points
  // while 16 shard workers are mid-scan. The run must end in a clean
  // kCancelled status — no crash, no race (TSan), no partial rule set —
  // or, when the miner outruns the late cancellation, in the exact
  // serial result.
  const BinaryMatrix m = StressWorkload(105);
  ImplicationMiningOptions o;
  o.min_confidence = 0.8;
  auto serial = MineImplications(m, o);
  ASSERT_TRUE(serial.ok());
  for (int iter = 0; iter < 8; ++iter) {
    std::atomic<uint64_t> calls{0};
    const uint64_t cancel_after = static_cast<uint64_t>(iter) * 113;
    o.policy.observe.progress_interval_rows = 1 + iter;
    o.policy.observe.progress = [&calls,
                                 cancel_after](const ProgressUpdate&) {
      return calls.fetch_add(1, std::memory_order_relaxed) < cancel_after;
    };
    ParallelOptions p;
    p.num_threads = 16;
    auto parallel = MineImplicationsParallel(m, o, p);
    if (parallel.ok()) {
      EXPECT_EQ(parallel->Pairs(), serial->Pairs()) << "iter " << iter;
    } else {
      EXPECT_EQ(parallel.status().code(), StatusCode::kCancelled)
          << "iter " << iter << ": " << parallel.status().message();
    }
    // iter 0 cancels on the first sample, which always lands on a
    // row-level check: that run can never complete.
    if (iter == 0) {
      EXPECT_FALSE(parallel.ok());
    }
  }
}

TEST(ParallelStressTest, CancelledSimilarityShardsShutDownCleanly) {
  const BinaryMatrix m = StressWorkload(106);
  SimilarityMiningOptions o;
  o.min_similarity = 0.6;
  o.policy.observe.progress_interval_rows = 1;
  std::atomic<uint64_t> updates{0};
  o.policy.observe.progress = [&updates](const ProgressUpdate& u) {
    updates.fetch_add(1, std::memory_order_relaxed);
    // Let every shard report a few samples, then pull the plug.
    return updates.load(std::memory_order_relaxed) < 64 || u.shard < 0;
  };
  for (int iter = 0; iter < 4; ++iter) {
    updates.store(0);
    ParallelOptions p;
    p.num_threads = 12;
    auto parallel = MineSimilaritiesParallel(m, o, p);
    ASSERT_FALSE(parallel.ok()) << "iter " << iter;
    EXPECT_EQ(parallel.status().code(), StatusCode::kCancelled)
        << "iter " << iter;
  }
}

}  // namespace
}  // namespace dmc
