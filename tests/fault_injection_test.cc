// Differential fault-injection sweep: enumerate every live failpoint
// site via a record-only run, then force each one and prove the
// robustness contract — a faulted run either fails with a clean Status
// (leaving no partial artifacts) or recovers and produces *exactly* the
// fault-free rule set. Plus the kill-between-passes / --resume
// exactness check for the external miner's checkpoint.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/external_miner.h"
#include "core/parallel_dmc.h"
#include "incr/window_miner.h"
#include "matrix/binary_matrix.h"
#include "matrix/matrix_io.h"
#include "observe/metrics.h"
#include "util/failpoint.h"
#include "util/random.h"

namespace dmc {
namespace {

BinaryMatrix TestMatrix() {
  Rng rng(0xFA17);
  MatrixBuilder b(12);
  std::vector<ColumnId> row;
  for (uint32_t r = 0; r < 80; ++r) {
    row.clear();
    for (ColumnId c = 0; c < 12; ++c) {
      if (rng.Bernoulli(0.25)) row.push_back(c);
    }
    // A planted implication: column 1 always accompanies column 0.
    if (!row.empty() && row[0] == 0) row.insert(row.begin() + 1, 1);
    b.AddRow(row);
  }
  return b.Build();
}

bool NoBucketFilesLeft(const std::string& dir) {
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("dmc_bucket_", 0) == 0) return false;
  }
  return true;
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // ctest runs each case as its own parallel process; a per-case
    // directory keeps them from clobbering each other.
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = testing::TempDir() + "/" +
           std::string(info->test_suite_name()) + "_" + info->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    input_ = dir_ + "/input.txt";
    const BinaryMatrix m = TestMatrix();
    ASSERT_TRUE(WriteMatrixTextFile(m, input_).ok());
    options_.min_confidence = 0.9;
    options_.policy.row_order = RowOrderPolicy::kDensityBuckets;
    auto truth = MineImplications(m, options_);
    ASSERT_TRUE(truth.ok());
    truth_ = truth->Pairs();
    ASSERT_FALSE(truth_.empty());
  }
  void TearDown() override {
    fail::Disable();
    std::filesystem::remove_all(dir_);
  }

  std::string dir_;
  std::string input_;
  ImplicationMiningOptions options_;
  std::vector<std::pair<ColumnId, ColumnId>> truth_;
};

// The heart of the PR: for every site the external pipeline actually
// hits, under several fault modes, the result is all-or-nothing.
TEST_F(FaultInjectionTest, ExternalSweepFailsCleanlyOrMatchesExactly) {
  // Pass 1 of the sweep: record-only run to enumerate live sites.
  ASSERT_TRUE(fail::Configure("").ok());
  {
    auto rules = MineImplicationsFromFile(input_, options_, dir_);
    ASSERT_TRUE(rules.ok());
    ASSERT_EQ(rules->Pairs(), truth_);
  }
  const std::vector<std::string> sites = fail::SitesSeen();
  fail::Disable();
  // The pipeline must expose at least its structural sites; a refactor
  // that silently drops one weakens the sweep.
  for (const char* expected :
       {"external.pass1.open", "external.partition.open",
        "external.spill.write", "external.replay.open",
        "matrix.text.row", "streaming.imp.row"}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), expected), sites.end())
        << "site not seen: " << expected;
  }

  for (const std::string& site : sites) {
    for (const char* arm : {"=error", "=error@1", "=enospc@2",
                            "=dataloss@1", "=error@p0.3;seed=9"}) {
      ASSERT_TRUE(fail::Configure(site + arm).ok());
      ExternalMiningStats stats;
      auto rules = MineImplicationsFromFile(input_, options_, dir_,
                                            ExternalIoOptions{}, &stats);
      const uint64_t fires = fail::TotalFires();
      fail::Disable();
      if (rules.ok()) {
        EXPECT_EQ(rules->Pairs(), truth_) << site << arm;
      } else {
        EXPECT_GT(fires, 0u) << site << arm;
        EXPECT_FALSE(rules.status().message().empty()) << site << arm;
      }
      // Win or lose, a non-checkpointed run cleans up its spill files.
      EXPECT_TRUE(NoBucketFilesLeft(dir_)) << site << arm;
    }
  }
}

// A transient open failure is absorbed by the retry policy: the run
// succeeds, reports the retry, and the rules are exact.
TEST_F(FaultInjectionTest, TransientOpenFaultIsRetriedToExactness) {
  MetricsRegistry registry;
  ImplicationMiningOptions options = options_;
  options.policy.observe.metrics = &registry;
  ASSERT_TRUE(fail::Configure("external.pass1.open=error@1").ok());
  ExternalMiningStats stats;
  auto rules = MineImplicationsFromFile(input_, options, dir_,
                                        ExternalIoOptions{}, &stats);
  fail::Disable();
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  EXPECT_EQ(rules->Pairs(), truth_);
  EXPECT_GE(stats.io_retries, 1u);
  EXPECT_GE(registry.counter("dmc.faults.injected"), 1u);
  EXPECT_GE(registry.counter("dmc.faults.retried"), 1u);
  EXPECT_GE(registry.counter("dmc.faults.recovered"), 1u);
}

// A persistent fault exhausts the bounded retries and surfaces.
TEST_F(FaultInjectionTest, PersistentFaultExhaustsRetriesAndSurfaces) {
  ASSERT_TRUE(fail::Configure("external.pass1.open=enospc").ok());
  ExternalIoOptions io;
  io.retry.max_attempts = 2;
  io.retry.initial_backoff_seconds = 0.0;
  ExternalMiningStats stats;
  auto rules =
      MineImplicationsFromFile(input_, options_, dir_, io, &stats);
  fail::Disable();
  ASSERT_FALSE(rules.ok());
  EXPECT_EQ(rules.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(fail::IsInjectedFault(rules.status()));
  EXPECT_EQ(stats.io_retries, 1u);
}

// Simulated kill between pass 1 and pass 2: the first run checkpoints,
// then dies replaying (a persistent fault stands in for SIGKILL). The
// checkpoint and bucket files survive, and a --resume run skips pass 1
// and reproduces the fault-free rule set bit-for-bit.
TEST_F(FaultInjectionTest, KillBetweenPassesThenResumeIsExact) {
  const std::string ckpt = dir_ + "/ckpt.bin";
  ExternalIoOptions io;
  io.checkpoint_path = ckpt;
  io.retry.max_attempts = 1;
  io.retry.initial_backoff_seconds = 0.0;

  ASSERT_TRUE(fail::Configure("external.replay.open=error").ok());
  auto crashed = MineImplicationsFromFile(input_, options_, dir_, io);
  fail::Disable();
  ASSERT_FALSE(crashed.ok());
  ASSERT_TRUE(std::filesystem::exists(ckpt));
  ASSERT_FALSE(NoBucketFilesLeft(dir_));

  io.resume = true;
  ExternalMiningStats stats;
  auto resumed =
      MineImplicationsFromFile(input_, options_, dir_, io, &stats);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_TRUE(stats.resumed);
  EXPECT_EQ(resumed->Pairs(), truth_);
}

// Resume must refuse a stale checkpoint: if the input changed after the
// crash, the run silently falls back to a fresh pass 1 and still mines
// the *new* input correctly.
TEST_F(FaultInjectionTest, ResumeWithChangedInputFallsBackToFreshRun) {
  const std::string ckpt = dir_ + "/ckpt.bin";
  ExternalIoOptions io;
  io.checkpoint_path = ckpt;
  {
    auto first = MineImplicationsFromFile(input_, options_, dir_, io);
    ASSERT_TRUE(first.ok());
  }
  // Grow the input; the old checkpoint no longer describes it.
  Rng rng(0x5EED);
  MatrixBuilder b(12);
  for (uint32_t r = 0; r < 40; ++r) {
    std::vector<ColumnId> row;
    for (ColumnId c = 0; c < 12; ++c) {
      if (rng.Bernoulli(0.4)) row.push_back(c);
    }
    b.AddRow(row);
  }
  const BinaryMatrix changed = b.Build();
  ASSERT_TRUE(WriteMatrixTextFile(changed, input_).ok());
  auto fresh_truth = MineImplications(changed, options_);
  ASSERT_TRUE(fresh_truth.ok());

  io.resume = true;
  ExternalMiningStats stats;
  auto resumed =
      MineImplicationsFromFile(input_, options_, dir_, io, &stats);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_FALSE(stats.resumed);
  EXPECT_EQ(resumed->Pairs(), fresh_truth->Pairs());
}

// A valid checkpoint naming a bucket file that was truncated after the
// crash must degrade to a fresh run (never mine the torn bucket), and
// the fresh run must still be exact.
TEST_F(FaultInjectionTest, ResumeWithTruncatedBucketFallsBackToFreshRun) {
  const std::string ckpt = dir_ + "/ckpt.bin";
  ExternalIoOptions io;
  io.checkpoint_path = ckpt;
  {
    auto first = MineImplicationsFromFile(input_, options_, dir_, io);
    ASSERT_TRUE(first.ok());
  }
  // Truncate the first surviving bucket file to half its size.
  std::string bucket;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("dmc_bucket_", 0) == 0) {
      bucket = entry.path().string();
      break;
    }
  }
  ASSERT_FALSE(bucket.empty());
  const auto size = std::filesystem::file_size(bucket);
  ASSERT_GT(size, 1u);
  std::filesystem::resize_file(bucket, size / 2);

  io.resume = true;
  ExternalMiningStats stats;
  auto resumed =
      MineImplicationsFromFile(input_, options_, dir_, io, &stats);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_FALSE(stats.resumed);
  EXPECT_EQ(resumed->Pairs(), truth_);
}

// A checkpoint written by a future build (higher schema version, valid
// structure) must be refused and degrade to a fresh, exact run.
TEST_F(FaultInjectionTest, ResumeWithFutureVersionFallsBackToFreshRun) {
  const std::string ckpt = dir_ + "/ckpt.bin";
  ExternalIoOptions io;
  io.checkpoint_path = ckpt;
  {
    auto first = MineImplicationsFromFile(input_, options_, dir_, io);
    ASSERT_TRUE(first.ok());
  }
  // Bump the version field and re-seal the trailing FNV-1a checksum so
  // only the version check stands between resume and a misparse.
  std::string bytes;
  {
    std::ifstream in(ckpt, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  ASSERT_GT(bytes.size(), 12u);
  bytes[8] = 9;
  uint64_t h = 14695981039346656037ull;
  for (size_t i = 0; i + 12 < bytes.size(); ++i) {
    h = (h ^ static_cast<unsigned char>(bytes[i])) * 1099511628211ull;
  }
  for (int i = 0; i < 8; ++i) {
    bytes[bytes.size() - 12 + i] = static_cast<char>(h >> (8 * i));
  }
  {
    std::ofstream out(ckpt, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  io.resume = true;
  ExternalMiningStats stats;
  auto resumed =
      MineImplicationsFromFile(input_, options_, dir_, io, &stats);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_FALSE(stats.resumed);
  EXPECT_EQ(resumed->Pairs(), truth_);
}

// Parallel miner: a transient shard fault is retried in-thread (exact
// result); a persistent one is contained by the serial degradation pass
// only when that pass can actually succeed — with an always-on fault it
// must surface, never emit a partial rule set.
TEST_F(FaultInjectionTest, ParallelShardFaultsAreContained) {
  const BinaryMatrix m = TestMatrix();
  ParallelOptions par;
  par.num_threads = 3;

  {
    ASSERT_TRUE(fail::Configure("parallel.shard.mine=error@1").ok());
    ParallelMiningStats stats;
    auto rules = MineImplicationsParallel(m, options_, par, &stats);
    fail::Disable();
    ASSERT_TRUE(rules.ok()) << rules.status().ToString();
    EXPECT_EQ(rules->Pairs(), truth_);
    EXPECT_EQ(stats.shards_failed, 1u);
    EXPECT_GE(stats.shard_retries, 1u);
    ASSERT_FALSE(stats.shard_errors.empty());
    EXPECT_NE(stats.shard_errors[0].find("injected"), std::string::npos);
  }
  {
    // An always-on fault defeats retries and the degradation pass alike:
    // the run must surface the injected error, never partial rules.
    ASSERT_TRUE(fail::Configure("parallel.shard.mine=error").ok());
    ParallelMiningStats stats;
    auto rules = MineImplicationsParallel(m, options_, par, &stats);
    fail::Disable();
    ASSERT_FALSE(rules.ok());
    EXPECT_TRUE(fail::IsInjectedFault(rules.status()));
    EXPECT_EQ(stats.shards_failed, 3u);
  }
  {
    // With retries disabled, a one-shot fault reaches the degradation
    // pass, which rescues the shard serially.
    ParallelOptions no_retry = par;
    no_retry.max_shard_retries = 0;
    ASSERT_TRUE(fail::Configure("parallel.shard.mine=error@1").ok());
    ParallelMiningStats stats;
    auto rules = MineImplicationsParallel(m, options_, no_retry, &stats);
    fail::Disable();
    ASSERT_TRUE(rules.ok()) << rules.status().ToString();
    EXPECT_EQ(rules->Pairs(), truth_);
    EXPECT_EQ(stats.shards_failed, 1u);
    EXPECT_EQ(stats.shards_degraded, 1u);
  }
  {
    // Same one-shot fault with degradation off: the failure is final.
    ParallelOptions strict = par;
    strict.max_shard_retries = 0;
    strict.degrade_to_serial = false;
    ASSERT_TRUE(fail::Configure("parallel.shard.mine=error@1").ok());
    auto rules = MineImplicationsParallel(m, options_, strict);
    fail::Disable();
    ASSERT_FALSE(rules.ok());
    EXPECT_TRUE(fail::IsInjectedFault(rules.status()));
  }
}

// Streaming row faults surface from Finish() as the injected status —
// never as a truncated rule set. The external miner streams every row
// through the site, so a mid-stream fault is guaranteed to fire.
// Eviction-path fault arm: drive a windowed miner through an
// append/evict schedule with faults forced at the incr.evict site.
// After every op, faulted or not, the rule set must be exactly a fresh
// mine of the rows the miner actually holds — a fault may abort an
// evict (or the auto-slide half of an append), but it must never leave
// a corrupted window.
TEST_F(FaultInjectionTest, WindowEvictFaultLeavesExactWindowOrFailsCleanly) {
  Rng rng(0xE71C);
  std::vector<std::vector<ColumnId>> feed;
  for (int r = 0; r < 120; ++r) {
    std::vector<ColumnId> row;
    for (ColumnId c = 0; c < 10; ++c) {
      if (rng.Bernoulli(0.3)) row.push_back(c);
    }
    feed.push_back(std::move(row));
  }
  ImplicationMiningOptions o;
  o.min_confidence = 0.85;

  const auto fresh_rules =
      [&o](const std::vector<std::vector<ColumnId>>& rows) {
        auto mined = MineImplications(BinaryMatrix::FromRows(10, rows), o);
        EXPECT_TRUE(mined.ok());
        ImplicationRuleSet out =
            mined.ok() ? std::move(*mined) : ImplicationRuleSet();
        out.Canonicalize();
        return out.rules();
      };

  for (const char* arm :
       {"incr.evict=error@1", "incr.evict=enospc@2",
        "incr.evict=dataloss@3", "incr.evict=error@5",
        "incr.evict=error@p0.4;seed=7", "incr.evict=error"}) {
    ASSERT_TRUE(fail::Configure(arm).ok());
    WindowedImplicationMiner miner(o, 30);
    size_t absorbed = 0;  // rows successfully appended, in feed order
    size_t pos = 0;
    int op = 0;
    bool saw_fault = false;
    while (pos < feed.size()) {
      const uint64_t rows_before = miner.num_rows();
      Status st = Status::OK();
      size_t n = 0;
      if (op % 3 == 2 && miner.num_rows() >= 7) {
        st = miner.EvictBatch(7);
      } else {
        n = std::min<size_t>(10, feed.size() - pos);
        st = miner.AppendBatch(BinaryMatrix::FromRows(
            10, std::vector<std::vector<ColumnId>>(
                    feed.begin() + pos, feed.begin() + pos + n)));
      }
      ++op;
      if (st.ok()) {
        if (n > 0) {
          pos += n;
          absorbed += n;
        }
      } else {
        saw_fault = true;
        EXPECT_TRUE(fail::IsInjectedFault(st)) << arm;
        // A faulted windowed append may have absorbed its rows and
        // failed only in the auto-slide; the row count says which.
        if (n > 0 && miner.num_rows() == rows_before + n) {
          pos += n;
          absorbed += n;
        }
      }
      // The contract: the miner holds exactly the newest num_rows() of
      // the absorbed feed, mined exactly.
      ASSERT_LE(miner.num_rows(), absorbed);
      const std::vector<std::vector<ColumnId>> held(
          feed.begin() + (absorbed - miner.num_rows()),
          feed.begin() + absorbed);
      ASSERT_EQ(miner.rules().rules(), fresh_rules(held))
          << arm << " op=" << op;
    }
    const uint64_t fires = fail::TotalFires();
    fail::Disable();
    EXPECT_EQ(saw_fault, fires > 0) << arm;
  }
}

TEST_F(FaultInjectionTest, StreamingRowFaultSurfaces) {
  ASSERT_TRUE(fail::Configure("streaming.imp.row=dataloss@17").ok());
  auto rules = MineImplicationsFromFile(input_, options_, dir_);
  const uint64_t fires = fail::TotalFires();
  fail::Disable();
  ASSERT_FALSE(rules.ok());
  EXPECT_EQ(rules.status().code(), StatusCode::kDataLoss);
  EXPECT_TRUE(fail::IsInjectedFault(rules.status()));
  EXPECT_EQ(fires, 1u);
  EXPECT_TRUE(NoBucketFilesLeft(dir_));
}

}  // namespace
}  // namespace dmc
