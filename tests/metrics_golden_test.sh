#!/usr/bin/env bash
# Golden test for `dmc_cli --metrics-out`: mines the checked-in fixture
# matrix, masks the non-deterministic fields (wall-clock timings and the
# invocation-dependent input path), and diffs the result against the
# goldens in tests/testdata/metrics/.
#
# Usage: metrics_golden_test.sh <path-to-dmc_cli> <testdata-metrics-dir>
#
# To regenerate the goldens after an intentional schema change, run the
# script with UPDATE_GOLDENS=1.
set -u

CLI="$1"
DATA="$2"
FIXTURE="$DATA/fixture_matrix.txt"

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# Every timing field ends in "seconds" (the stats_export.h contract);
# mask their numeric values, plus the free-form dataset path and the
# machine-dependent resolved merge kernel ("simd" vs "scalar").
mask() {
  sed -e 's/\("[A-Za-z0-9_.]*seconds"\): [0-9.e+-]*/\1: 0/' \
      -e 's|"dataset": ".*"|"dataset": "<input>"|' \
      -e 's/"kernel": "[a-z]*"/"kernel": "<kernel>"/' "$1"
}

fail=0

run_case() {
  local name="$1"
  shift
  if ! "$CLI" "$@" --metrics-out="$TMP/$name.json" >/dev/null 2>&1; then
    echo "FAIL: dmc_cli exited non-zero for case $name" >&2
    fail=1
    return
  fi
  mask "$TMP/$name.json" > "$TMP/$name.masked.json"
  if [ "${UPDATE_GOLDENS:-0}" = "1" ]; then
    cp "$TMP/$name.masked.json" "$DATA/$name.golden.json"
    echo "updated $DATA/$name.golden.json"
    return
  fi
  if ! diff -u "$DATA/$name.golden.json" "$TMP/$name.masked.json"; then
    echo "FAIL: metrics mismatch for case $name" >&2
    fail=1
  fi
}

run_case mine_imp \
  mine-imp --input="$FIXTURE" --minconf=0.8 --order=sort
run_case mine_imp_parallel \
  mine-imp --input="$FIXTURE" --minconf=0.8 --order=sort --threads=2
run_case mine_sim \
  mine-sim --input="$FIXTURE" --minsim=0.6 --order=sort

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "metrics goldens match"
