#include "rules/verifier.h"

#include <gtest/gtest.h>

namespace dmc {
namespace {

BinaryMatrix Sample() {
  // c0: rows 0,1,2 (ones=3); c1: rows 0,1,3 (3); c2: rows 0,4 (2).
  return BinaryMatrix::FromRows(3, {{0, 1, 2}, {0, 1}, {0}, {1}, {2}});
}

TEST(RuleVerifierTest, IntersectionAndMetrics) {
  const RuleVerifier v(Sample());
  EXPECT_EQ(v.Intersection(0, 1), 2u);
  EXPECT_EQ(v.Intersection(0, 2), 1u);
  EXPECT_DOUBLE_EQ(v.Confidence(0, 1), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(v.Confidence(2, 0), 0.5);
  EXPECT_DOUBLE_EQ(v.Similarity(0, 1), 2.0 / 4.0);
  EXPECT_DOUBLE_EQ(v.Similarity(1, 2), 1.0 / 4.0);
}

TEST(RuleVerifierTest, MakeImplication) {
  const RuleVerifier v(Sample());
  const ImplicationRule r = v.MakeImplication(2, 0);
  EXPECT_EQ(r.lhs, 2u);
  EXPECT_EQ(r.rhs, 0u);
  EXPECT_EQ(r.lhs_ones, 2u);
  EXPECT_EQ(r.misses, 1u);
}

TEST(RuleVerifierTest, MakeSimilarityCanonical) {
  const RuleVerifier v(Sample());
  const SimilarityPair p = v.MakeSimilarity(0, 2);  // denser first input
  EXPECT_EQ(p.a, 2u);  // sparser column goes first
  EXPECT_EQ(p.b, 0u);
  EXPECT_EQ(p.intersection, 1u);
}

TEST(RuleVerifierTest, VerifyAcceptsCorrectRules) {
  const RuleVerifier v(Sample());
  ImplicationRuleSet rules;
  rules.Add(v.MakeImplication(2, 0));  // conf 0.5
  EXPECT_TRUE(v.VerifyImplications(rules, 0.5).ok());
}

TEST(RuleVerifierTest, VerifyRejectsWrongCounts) {
  const RuleVerifier v(Sample());
  ImplicationRuleSet rules;
  ImplicationRule r = v.MakeImplication(2, 0);
  r.misses = 0;  // corrupt
  rules.Add(r);
  EXPECT_FALSE(v.VerifyImplications(rules, 0.1).ok());
}

TEST(RuleVerifierTest, VerifyRejectsBelowThreshold) {
  const RuleVerifier v(Sample());
  ImplicationRuleSet rules;
  rules.Add(v.MakeImplication(2, 0));  // conf 0.5
  EXPECT_FALSE(v.VerifyImplications(rules, 0.9).ok());
}

TEST(RuleVerifierTest, VerifyRejectsUnknownColumn) {
  const RuleVerifier v(Sample());
  ImplicationRuleSet rules;
  rules.Add({10, 0, 1, 0});
  EXPECT_FALSE(v.VerifyImplications(rules, 0.1).ok());
}

TEST(RuleVerifierTest, VerifySimilarities) {
  const RuleVerifier v(Sample());
  SimilarityRuleSet pairs;
  pairs.Add(v.MakeSimilarity(0, 1));  // sim 0.5
  EXPECT_TRUE(v.VerifySimilarities(pairs, 0.5).ok());
  EXPECT_FALSE(v.VerifySimilarities(pairs, 0.75).ok());

  SimilarityRuleSet corrupt;
  SimilarityPair p = v.MakeSimilarity(0, 1);
  p.intersection += 1;
  corrupt.Add(p);
  EXPECT_FALSE(v.VerifySimilarities(corrupt, 0.1).ok());
}

}  // namespace
}  // namespace dmc
