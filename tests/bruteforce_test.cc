#include "baselines/bruteforce.h"

#include <gtest/gtest.h>

#include "rules/verifier.h"

namespace dmc {
namespace {

BinaryMatrix Sample() {
  // c0: rows 0,1 (2); c1: rows 0,1,2 (3); c2: rows 0,3 (2).
  return BinaryMatrix::FromRows(3, {{0, 1, 2}, {0, 1}, {1}, {2}});
}

TEST(BruteForceTest, ImplicationsAtHalf) {
  const auto rules = BruteForceImplications(Sample(), 0.5);
  // Candidates (sparser => denser): c0=>c1 conf 1.0; c0=>c2 conf 0.5
  // (ones equal, id order); c2=>c1 conf 0.5.
  const auto pairs = rules.Pairs();
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0], std::make_pair(ColumnId{0}, ColumnId{1}));
  EXPECT_EQ(pairs[1], std::make_pair(ColumnId{0}, ColumnId{2}));
  EXPECT_EQ(pairs[2], std::make_pair(ColumnId{2}, ColumnId{1}));
}

TEST(BruteForceTest, ImplicationsAtFull) {
  const auto rules = BruteForceImplications(Sample(), 1.0);
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules.rules()[0].lhs, 0u);
  EXPECT_EQ(rules.rules()[0].rhs, 1u);
  EXPECT_EQ(rules.rules()[0].misses, 0u);
}

TEST(BruteForceTest, RespectsSparserFirstOrdering) {
  // Never emits denser => sparser.
  const auto rules = BruteForceImplications(Sample(), 0.01);
  for (const auto& r : rules) {
    const RuleVerifier v(Sample());
    EXPECT_TRUE(SparserFirst(v.ones(r.lhs), r.lhs, v.ones(r.rhs), r.rhs))
        << r.ToString();
  }
}

TEST(BruteForceTest, SimilaritiesExactCounts) {
  const auto pairs = BruteForceSimilarities(Sample(), 0.5);
  // (0,1): 2/3; (0,2): 1/3; (1,2): 1/4. Only (0,1) >= 0.5.
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs.pairs()[0].a, 0u);
  EXPECT_EQ(pairs.pairs()[0].b, 1u);
  EXPECT_EQ(pairs.pairs()[0].intersection, 2u);
}

TEST(BruteForceTest, CountsVerifiedAgainstBitmaps) {
  const BinaryMatrix m = Sample();
  const RuleVerifier v(m);
  EXPECT_TRUE(
      v.VerifyImplications(BruteForceImplications(m, 0.3), 0.3).ok());
  EXPECT_TRUE(
      v.VerifySimilarities(BruteForceSimilarities(m, 0.2), 0.2).ok());
}

TEST(BruteForceTest, EmptyMatrix) {
  EXPECT_TRUE(BruteForceImplications(BinaryMatrix(), 0.5).empty());
  EXPECT_TRUE(BruteForceSimilarities(BinaryMatrix(), 0.5).empty());
}

}  // namespace
}  // namespace dmc
