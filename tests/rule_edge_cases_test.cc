// Edge cases for the rule-consumption layer: empty rule sets, zero-row
// and zero-column matrices, and rule sets that do not belong to the
// matrix they are checked against. These paths sit downstream of every
// engine (the verifier is the test oracle, the group summarizer feeds
// reports), so they must degrade to clean answers, not crashes.

#include <gtest/gtest.h>

#include "matrix/binary_matrix.h"
#include "rules/multiattr.h"
#include "rules/rule_set.h"
#include "rules/verifier.h"

namespace dmc {
namespace {

BinaryMatrix ZeroRowMatrix(ColumnId cols) {
  return MatrixBuilder(cols).Build();
}

TEST(VerifierEdgeTest, EmptyRuleSetsVerifyAgainstAnyMatrix) {
  const BinaryMatrix zero_rows = ZeroRowMatrix(4);
  const BinaryMatrix zero_cols = ZeroRowMatrix(0);
  for (const BinaryMatrix* m : {&zero_rows, &zero_cols}) {
    RuleVerifier v(*m);
    EXPECT_TRUE(v.VerifyImplications(ImplicationRuleSet(), 0.9).ok());
    EXPECT_TRUE(v.VerifySimilarities(SimilarityRuleSet(), 0.9).ok());
  }
}

TEST(VerifierEdgeTest, ZeroRowMatrixAnswersExactQueries) {
  RuleVerifier v(ZeroRowMatrix(3));
  EXPECT_EQ(v.Intersection(0, 1), 0u);
  EXPECT_EQ(v.Confidence(0, 1), 0.0);
  EXPECT_EQ(v.Similarity(0, 1), 0.0);
  EXPECT_EQ(v.ones(2), 0u);
}

TEST(VerifierEdgeTest, RulesOnZeroRowMatrixReportMismatchNotCrash) {
  RuleVerifier v(ZeroRowMatrix(3));
  ImplicationRuleSet rules;
  rules.Add(ImplicationRule{0, 1, 5, 0});  // claims ones(0) == 5
  const Status s = v.VerifyImplications(rules, 0.9);
  EXPECT_EQ(s.code(), StatusCode::kInternal);

  SimilarityRuleSet pairs;
  pairs.Add(SimilarityPair{0, 1, 5, 5, 5});
  EXPECT_EQ(v.VerifySimilarities(pairs, 0.9).code(), StatusCode::kInternal);
}

TEST(VerifierEdgeTest, OutOfRangeColumnsAreInvalidArgument) {
  MatrixBuilder b(2);
  b.AddRow({0, 1});
  RuleVerifier v(b.Build());
  ImplicationRuleSet rules;
  rules.Add(ImplicationRule{0, 7, 1, 0});
  EXPECT_EQ(v.VerifyImplications(rules, 0.5).code(),
            StatusCode::kInvalidArgument);
  SimilarityRuleSet pairs;
  pairs.Add(SimilarityPair{7, 0, 1, 1, 1});
  EXPECT_EQ(v.VerifySimilarities(pairs, 0.5).code(),
            StatusCode::kInvalidArgument);
}

TEST(MultiAttrEdgeTest, EmptyRuleSetYieldsNoGroups) {
  const BinaryMatrix zero_rows = ZeroRowMatrix(4);
  EXPECT_TRUE(SummarizeRuleGroups(zero_rows, ImplicationRuleSet()).empty());
  MatrixBuilder b(2);
  b.AddRow({0, 1});
  EXPECT_TRUE(SummarizeRuleGroups(b.Build(), ImplicationRuleSet()).empty());
}

TEST(MultiAttrEdgeTest, ZeroRowMatrixGroupsHaveZeroCohesion) {
  ImplicationRuleSet rules;
  rules.Add(ImplicationRule{0, 1, 0, 0});
  rules.Add(ImplicationRule{1, 2, 0, 0});
  const auto groups = SummarizeRuleGroups(ZeroRowMatrix(3), rules);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].columns.size(), 3u);
  EXPECT_EQ(groups[0].joint_support, 0u);
  EXPECT_EQ(groups[0].cohesion, 0.0);
}

// Regression: rules referencing columns the matrix does not have used to
// read bitmaps out of range; they must be summarized as skipped groups.
TEST(MultiAttrEdgeTest, OutOfRangeColumnsAreSkippedNotCrashed) {
  MatrixBuilder b(2);
  b.AddRow({0, 1});
  ImplicationRuleSet rules;
  rules.Add(ImplicationRule{0, 9, 1, 0});
  const auto groups = SummarizeRuleGroups(b.Build(), rules);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].joint_support, 0u);
  EXPECT_EQ(groups[0].cohesion, -1.0);
}

}  // namespace
}  // namespace dmc
