#include "baselines/apriori.h"

#include <gtest/gtest.h>

#include "baselines/bruteforce.h"
#include "datagen/quest_gen.h"
#include "matrix/column_stats.h"

namespace dmc {
namespace {

TEST(AprioriTest, MatchesBruteForceWithoutSupportPruning) {
  QuestOptions q;
  q.num_transactions = 500;
  q.num_items = 60;
  q.seed = 5;
  const BinaryMatrix m = GenerateQuest(q);
  AprioriOptions o;  // min_support = 1: no pruning
  for (double conf : {0.5, 0.8, 1.0}) {
    auto rules = AprioriImplications(m, o, conf);
    ASSERT_TRUE(rules.ok());
    EXPECT_EQ(rules->Pairs(), BruteForceImplications(m, conf).Pairs())
        << conf;
  }
}

TEST(AprioriTest, SimilaritiesMatchBruteForce) {
  QuestOptions q;
  q.num_transactions = 400;
  q.num_items = 50;
  q.seed = 6;
  const BinaryMatrix m = GenerateQuest(q);
  AprioriOptions o;
  for (double s : {0.3, 0.6, 0.9}) {
    auto pairs = AprioriSimilarities(m, o, s);
    ASSERT_TRUE(pairs.ok());
    EXPECT_EQ(pairs->Pairs(), BruteForceSimilarities(m, s).Pairs()) << s;
  }
}

TEST(AprioriTest, SupportWindowLosesLowSupportRules) {
  // The paper's core criticism: support pruning discards low-support
  // high-confidence rules. Build one explicitly and watch a-priori miss
  // it while the unpruned run finds it.
  MatrixBuilder b(3);
  for (int i = 0; i < 3; ++i) b.AddRow({0, 1});  // rare pair, conf 1.0
  for (int i = 0; i < 50; ++i) b.AddRow({1, 2});
  const BinaryMatrix m = b.Build();

  AprioriOptions pruned;
  pruned.min_support = 10;
  auto rules = AprioriImplications(m, pruned, 0.9);
  ASSERT_TRUE(rules.ok());
  for (const auto& r : *rules) {
    EXPECT_NE(r.lhs, 0u) << "support-pruned rule resurfaced";
  }

  AprioriOptions unpruned;
  auto all = AprioriImplications(m, unpruned, 0.9);
  ASSERT_TRUE(all.ok());
  bool found = false;
  for (const auto& r : *all) found |= (r.lhs == 0 && r.rhs == 1);
  EXPECT_TRUE(found);
}

TEST(AprioriTest, MaxSupportPrunesStopWords) {
  MatrixBuilder b(2);
  for (int i = 0; i < 100; ++i) b.AddRow({0, 1});
  const BinaryMatrix m = b.Build();
  AprioriOptions o;
  o.max_support = 50;  // both columns too frequent
  AprioriStats stats;
  auto rules = AprioriImplications(m, o, 0.5, &stats);
  ASSERT_TRUE(rules.ok());
  EXPECT_TRUE(rules->empty());
  EXPECT_EQ(stats.frequent_columns, 0u);
}

TEST(AprioriTest, CounterMemoryIsQuadratic) {
  QuestOptions q;
  q.num_transactions = 200;
  q.num_items = 100;
  q.seed = 7;
  const BinaryMatrix m = GenerateQuest(q);
  AprioriOptions o;
  AprioriStats stats;
  ASSERT_TRUE(AprioriImplications(m, o, 0.9, &stats).ok());
  const size_t f = stats.frequent_columns;
  EXPECT_EQ(stats.counter_bytes, f * (f - 1) / 2 * sizeof(uint32_t));
}

TEST(AprioriTest, FailsWhenCountersExceedBudget) {
  QuestOptions q;
  q.num_transactions = 100;
  q.num_items = 200;
  q.seed = 8;
  const BinaryMatrix m = GenerateQuest(q);
  AprioriOptions o;
  auto rules = AprioriImplications(m, o, 0.9, nullptr,
                                   /*max_counter_bytes=*/16);
  ASSERT_FALSE(rules.ok());
  EXPECT_EQ(rules.status().code(), StatusCode::kResourceExhausted);
}

TEST(AprioriTest, StatsTimingsPopulated) {
  QuestOptions q;
  q.num_transactions = 300;
  q.num_items = 40;
  const BinaryMatrix m = GenerateQuest(q);
  AprioriStats stats;
  ASSERT_TRUE(AprioriImplications(m, AprioriOptions{}, 0.8, &stats).ok());
  EXPECT_GE(stats.total_seconds,
            stats.pass1_seconds);
  EXPECT_GT(stats.occupied_counters, 0u);
}

}  // namespace
}  // namespace dmc
