#include "core/streaming_imp.h"

#include <gtest/gtest.h>

#include <fstream>

#include "baselines/bruteforce.h"
#include "core/dmc_imp.h"
#include "core/external_miner.h"
#include "datagen/quest_gen.h"
#include "datagen/weblog_gen.h"
#include "matrix/matrix_io.h"
#include "matrix/row_order.h"

namespace dmc {
namespace {

BinaryMatrix Workload(uint64_t seed) {
  QuestOptions q;
  q.num_transactions = 1500;
  q.num_items = 200;
  q.seed = seed;
  return GenerateQuest(q);
}

// Replays the in-memory matrix in a given order.
auto MatrixReplay(const BinaryMatrix& m, const std::vector<RowId>& order) {
  return [&m, &order](auto&& sink) {
    for (RowId r : order) sink(m.Row(r));
  };
}

TEST(StreamingImpTest, MatchesBatchEngine) {
  const BinaryMatrix m = Workload(31);
  const auto order = DensityBucketOrder(m).order;
  for (double conf : {0.7, 0.9, 1.0}) {
    ImplicationMiningOptions o;
    o.min_confidence = conf;
    auto batch = MineImplications(m, o);
    ASSERT_TRUE(batch.ok());
    auto streamed =
        StreamImplications(m.num_columns(), m.column_ones(), m.num_rows(),
                           o, MatrixReplay(m, order));
    ASSERT_TRUE(streamed.ok()) << streamed.status();
    EXPECT_EQ(streamed->Pairs(), batch->Pairs()) << conf;
  }
}

TEST(StreamingImpTest, BitmapModeMatches) {
  const BinaryMatrix m = Workload(32);
  const auto order = DensityBucketOrder(m).order;
  ImplicationMiningOptions o;
  o.min_confidence = 0.85;
  o.policy.bitmap_fallback = true;
  o.policy.memory_threshold_bytes = 1;
  o.policy.bitmap_max_remaining_rows = 300;
  auto streamed =
      StreamImplications(m.num_columns(), m.column_ones(), m.num_rows(), o,
                         MatrixReplay(m, order));
  ASSERT_TRUE(streamed.ok());
  EXPECT_EQ(streamed->Pairs(), BruteForceImplications(m, 0.85).Pairs());
}

TEST(StreamingImpTest, RejectsShortStream) {
  const BinaryMatrix m = Workload(33);
  ImplicationMiningOptions o;
  o.min_confidence = 0.9;
  auto truncated = [&m](auto&& sink) {
    for (RowId r = 0; r + 1 < m.num_rows(); ++r) sink(m.Row(r));
  };
  auto streamed = StreamImplications(
      m.num_columns(), m.column_ones(), m.num_rows(), o, truncated);
  ASSERT_FALSE(streamed.ok());
  EXPECT_EQ(streamed.status().code(), StatusCode::kFailedPrecondition);
}

TEST(StreamingImpTest, PassExposesProgress) {
  const BinaryMatrix m = Workload(34);
  StreamingImplicationPass::Config cfg;
  cfg.num_columns = m.num_columns();
  cfg.ones = m.column_ones();
  cfg.total_rows = m.num_rows();
  cfg.max_misses.assign(m.num_columns(), 0);
  StreamingImplicationPass pass(std::move(cfg));
  EXPECT_EQ(pass.rows_seen(), 0u);
  pass.ProcessRow(m.Row(0));
  EXPECT_EQ(pass.rows_seen(), 1u);
  EXPECT_FALSE(pass.bitmap_mode());
}

TEST(ExternalMinerTest, MatchesInMemoryMining) {
  WebLogOptions gen;
  gen.num_clients = 600;
  gen.num_urls = 150;
  gen.num_crawlers = 2;
  const BinaryMatrix m = GenerateWebLog(gen);

  const std::string dir = testing::TempDir();
  const std::string path = dir + "/external_miner_test.txt";
  ASSERT_TRUE(WriteMatrixTextFile(m, path).ok());

  for (double conf : {0.85, 1.0}) {
    ImplicationMiningOptions o;
    o.min_confidence = conf;
    auto in_memory = MineImplications(m, o);
    ASSERT_TRUE(in_memory.ok());

    ExternalMiningStats stats;
    auto external = MineImplicationsFromFile(path, o, dir, &stats);
    ASSERT_TRUE(external.ok()) << external.status();
    EXPECT_EQ(external->Pairs(), in_memory->Pairs()) << conf;
    EXPECT_EQ(stats.rows, m.num_rows());
    EXPECT_GT(stats.bucket_files, 1u);
  }
}

TEST(ExternalMinerTest, IdentityOrderSkipsPartitioning) {
  const BinaryMatrix m = Workload(35);
  const std::string dir = testing::TempDir();
  const std::string path = dir + "/external_identity_test.txt";
  ASSERT_TRUE(WriteMatrixTextFile(m, path).ok());

  ImplicationMiningOptions o;
  o.min_confidence = 0.9;
  o.policy.row_order = RowOrderPolicy::kIdentity;
  ExternalMiningStats stats;
  auto external = MineImplicationsFromFile(path, o, dir, &stats);
  ASSERT_TRUE(external.ok());
  EXPECT_EQ(stats.bucket_files, 0u);
  auto in_memory = MineImplications(m, o);
  ASSERT_TRUE(in_memory.ok());
  EXPECT_EQ(external->Pairs(), in_memory->Pairs());
}

TEST(ExternalMinerTest, MissingFileFails) {
  ImplicationMiningOptions o;
  auto result = MineImplicationsFromFile("/no/such/file.txt", o,
                                         testing::TempDir());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST(ExternalMinerTest, CleansUpBucketFiles) {
  const BinaryMatrix m = Workload(36);
  const std::string dir = testing::TempDir();
  const std::string path = dir + "/external_cleanup_test.txt";
  ASSERT_TRUE(WriteMatrixTextFile(m, path).ok());
  ImplicationMiningOptions o;
  o.min_confidence = 0.9;
  ASSERT_TRUE(MineImplicationsFromFile(path, o, dir).ok());
  // No bucket files left behind.
  std::ifstream probe(dir + "/dmc_bucket_0.txt");
  EXPECT_FALSE(probe.good());
}

}  // namespace
}  // namespace dmc
