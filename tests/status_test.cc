#include "util/status.h"

#include <gtest/gtest.h>

#include "util/statusor.h"

namespace dmc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = InvalidArgumentError("bad threshold");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad threshold");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad threshold");
}

TEST(StatusTest, FactoryCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(CancelledError("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(DataLossError("x").code(), StatusCode::kDataLoss);
}

TEST(StatusTest, DataLossToString) {
  EXPECT_EQ(DataLossError("bad checksum").ToString(),
            "DataLoss: bad checksum");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(IOError("a"), IOError("a"));
  EXPECT_FALSE(IOError("a") == IOError("b"));
  EXPECT_FALSE(IOError("a") == InternalError("a"));
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return IOError("disk"); };
  auto wrapper = [&]() -> Status {
    DMC_RETURN_IF_ERROR(fails());
    return InternalError("unreachable");
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kIOError);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFoundError("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 7);
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  auto source = []() -> StatusOr<int> { return 10; };
  auto consumer = [&]() -> Status {
    DMC_ASSIGN_OR_RETURN(const int x, source());
    EXPECT_EQ(x, 10);
    return Status::OK();
  };
  EXPECT_TRUE(consumer().ok());

  auto bad_source = []() -> StatusOr<int> { return IOError("nope"); };
  auto bad_consumer = [&]() -> Status {
    DMC_ASSIGN_OR_RETURN(const int x, bad_source());
    (void)x;
    return Status::OK();
  };
  EXPECT_EQ(bad_consumer().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace dmc
