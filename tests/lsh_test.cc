#include "baselines/lsh.h"

#include <gtest/gtest.h>

#include "baselines/bruteforce.h"
#include "datagen/planted_gen.h"
#include "rules/verifier.h"

namespace dmc {
namespace {

TEST(LshTest, CandidateProbabilityCurve) {
  // The (b=12, r=4) sigmoid: near-certain above 0.85, moderate at 0.5.
  EXPECT_GT(LshCandidateProbability(0.9, 12, 4), 0.999);
  EXPECT_GT(LshCandidateProbability(0.85, 12, 4), 0.99);
  EXPECT_LT(LshCandidateProbability(0.3, 12, 4), 0.1);
  // Monotone in s.
  for (double s = 0.1; s < 0.95; s += 0.1) {
    EXPECT_LT(LshCandidateProbability(s, 12, 4),
              LshCandidateProbability(s + 0.05, 12, 4));
  }
}

TEST(LshTest, NoFalsePositives) {
  PlantedOptions p;
  p.seed = 91;
  const PlantedData data = GeneratePlanted(p);
  LshOptions o;
  LshStats stats;
  const auto pairs = LshSimilarities(data.matrix, o, 0.7, &stats);
  const RuleVerifier v(data.matrix);
  EXPECT_TRUE(v.VerifySimilarities(pairs, 0.7).ok());
}

TEST(LshTest, FindsPlantedPairs) {
  PlantedOptions p;
  p.seed = 92;
  const PlantedData data = GeneratePlanted(p);  // planted sim ~0.826
  LshOptions o;
  o.bands = 16;
  o.rows_per_band = 4;
  const auto pairs = LshSimilarities(data.matrix, o, 0.8);
  const auto found = pairs.Pairs();
  size_t hits = 0;
  for (const SimilarityPair& planted : data.similarities) {
    const auto key = std::make_pair(std::min(planted.a, planted.b),
                                    std::max(planted.a, planted.b));
    for (const auto& f : found) hits += f == key;
  }
  // P(miss) = (1 - 0.826^4)^16 ~ 2e-4 per pair.
  EXPECT_EQ(hits, data.similarities.size());
}

TEST(LshTest, SubsetOfBruteForce) {
  PlantedOptions p;
  p.seed = 93;
  p.noise_density = 0.05;
  const PlantedData data = GeneratePlanted(p);
  const auto truth = BruteForceSimilarities(data.matrix, 0.6).Pairs();
  const auto pairs = LshSimilarities(data.matrix, LshOptions{}, 0.6);
  for (const auto& f : pairs.Pairs()) {
    EXPECT_TRUE(std::find(truth.begin(), truth.end(), f) != truth.end());
  }
}

TEST(LshTest, DeterministicForSeed) {
  PlantedOptions p;
  p.seed = 94;
  const PlantedData data = GeneratePlanted(p);
  const auto a = LshSimilarities(data.matrix, LshOptions{}, 0.75);
  const auto b = LshSimilarities(data.matrix, LshOptions{}, 0.75);
  EXPECT_EQ(a.Pairs(), b.Pairs());
}

TEST(LshTest, StatsPopulated) {
  PlantedOptions p;
  p.seed = 95;
  const PlantedData data = GeneratePlanted(p);
  LshStats stats;
  const auto pairs = LshSimilarities(data.matrix, LshOptions{}, 0.8, &stats);
  EXPECT_GE(stats.candidate_pairs,
            pairs.size() + stats.false_positives_removed);
  EXPECT_GE(stats.total_seconds, 0.0);
}

TEST(LshTest, MinSupportExcludesColumns) {
  MatrixBuilder b(3);
  for (int i = 0; i < 30; ++i) b.AddRow({0, 1});
  b.AddRow({2});
  const BinaryMatrix m = b.Build();
  LshOptions o;
  o.min_support = 5;
  const auto pairs = LshSimilarities(m, o, 0.5);
  for (const auto& p : pairs) {
    EXPECT_NE(p.a, 2u);
    EXPECT_NE(p.b, 2u);
  }
  EXPECT_EQ(pairs.size(), 1u);
}

}  // namespace
}  // namespace dmc
