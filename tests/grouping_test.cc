#include "rules/grouping.h"

#include <gtest/gtest.h>

namespace dmc {
namespace {

ImplicationRule R(ColumnId lhs, ColumnId rhs) {
  return ImplicationRule{lhs, rhs, 10, 1};
}

TEST(ExpandFromSeedTest, FollowsSuccessorsRecursively) {
  ImplicationRuleSet rules;
  rules.Add(R(0, 1));
  rules.Add(R(1, 2));
  rules.Add(R(2, 3));
  rules.Add(R(7, 8));  // unrelated
  const auto expanded = ExpandFromSeed(rules, 0);
  EXPECT_EQ(expanded.size(), 3u);
  const auto pairs = expanded.Pairs();
  EXPECT_EQ(pairs[0], std::make_pair(ColumnId{0}, ColumnId{1}));
  EXPECT_EQ(pairs[1], std::make_pair(ColumnId{1}, ColumnId{2}));
  EXPECT_EQ(pairs[2], std::make_pair(ColumnId{2}, ColumnId{3}));
}

TEST(ExpandFromSeedTest, RespectsMaxDepth) {
  ImplicationRuleSet rules;
  rules.Add(R(0, 1));
  rules.Add(R(1, 2));
  rules.Add(R(2, 3));
  EXPECT_EQ(ExpandFromSeed(rules, 0, 1).size(), 1u);
  EXPECT_EQ(ExpandFromSeed(rules, 0, 2).size(), 2u);
  EXPECT_EQ(ExpandFromSeed(rules, 0, 3).size(), 3u);
}

TEST(ExpandFromSeedTest, HandlesCycles) {
  ImplicationRuleSet rules;
  rules.Add(R(0, 1));
  rules.Add(R(1, 0));
  const auto expanded = ExpandFromSeed(rules, 0);
  EXPECT_EQ(expanded.size(), 2u);
}

TEST(ExpandFromSeedTest, UnknownSeedYieldsEmpty) {
  ImplicationRuleSet rules;
  rules.Add(R(0, 1));
  EXPECT_TRUE(ExpandFromSeed(rules, 99).empty());
}

TEST(GroupingTest, ConnectedComponentsOverImplications) {
  ImplicationRuleSet rules;
  rules.Add(R(0, 1));
  rules.Add(R(1, 2));
  rules.Add(R(5, 6));
  const auto groups = GroupByConnectedComponents(rules);
  ASSERT_EQ(groups.size(), 2u);
  // Largest first.
  EXPECT_EQ(groups[0].columns, (std::vector<ColumnId>{0, 1, 2}));
  EXPECT_EQ(groups[0].rule_indices.size(), 2u);
  EXPECT_EQ(groups[1].columns, (std::vector<ColumnId>{5, 6}));
}

TEST(GroupingTest, ConnectedComponentsOverSimilarities) {
  SimilarityRuleSet pairs;
  pairs.Add({0, 1, 5, 5, 4});
  pairs.Add({1, 2, 5, 5, 4});
  pairs.Add({8, 9, 5, 5, 4});
  const auto groups = GroupByConnectedComponents(pairs);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].columns, (std::vector<ColumnId>{0, 1, 2}));
}

TEST(GroupingTest, EmptyInput) {
  EXPECT_TRUE(GroupByConnectedComponents(ImplicationRuleSet()).empty());
  EXPECT_TRUE(GroupByConnectedComponents(SimilarityRuleSet()).empty());
}

TEST(GroupingTest, MergingChains) {
  // Two chains merged by a bridging rule.
  ImplicationRuleSet rules;
  rules.Add(R(0, 1));
  rules.Add(R(2, 3));
  rules.Add(R(1, 2));
  const auto groups = GroupByConnectedComponents(rules);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].columns.size(), 4u);
  EXPECT_EQ(groups[0].rule_indices.size(), 3u);
}

}  // namespace
}  // namespace dmc
