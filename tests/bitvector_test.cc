#include "util/bitvector.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace dmc {
namespace {

TEST(BitVectorTest, StartsCleared) {
  BitVector bv(100);
  EXPECT_EQ(bv.size(), 100u);
  EXPECT_EQ(bv.Count(), 0u);
  for (size_t i = 0; i < 100; ++i) EXPECT_FALSE(bv.Test(i));
}

TEST(BitVectorTest, SetClearTest) {
  BitVector bv(130);
  bv.Set(0);
  bv.Set(63);
  bv.Set(64);
  bv.Set(129);
  EXPECT_TRUE(bv.Test(0));
  EXPECT_TRUE(bv.Test(63));
  EXPECT_TRUE(bv.Test(64));
  EXPECT_TRUE(bv.Test(129));
  EXPECT_FALSE(bv.Test(1));
  EXPECT_EQ(bv.Count(), 4u);
  bv.Clear(63);
  EXPECT_FALSE(bv.Test(63));
  EXPECT_EQ(bv.Count(), 3u);
}

TEST(BitVectorTest, AndCount) {
  BitVector a(200), b(200);
  for (size_t i = 0; i < 200; i += 2) a.Set(i);
  for (size_t i = 0; i < 200; i += 3) b.Set(i);
  // Multiples of 6 in [0, 200): 0, 6, ..., 198 -> 34.
  EXPECT_EQ(a.AndCount(b), 34u);
  EXPECT_EQ(b.AndCount(a), 34u);
}

TEST(BitVectorTest, AndNotCountIsMissKernel) {
  BitVector a(10), b(10);
  a.Set(1);
  a.Set(3);
  a.Set(5);
  b.Set(3);
  b.Set(7);
  // a=1 where b=0: positions 1 and 5.
  EXPECT_EQ(a.AndNotCount(b), 2u);
  // b=1 where a=0: position 7.
  EXPECT_EQ(b.AndNotCount(a), 1u);
}

TEST(BitVectorTest, AndNotCountAgainstEmpty) {
  BitVector a(70), empty(70);
  a.Set(0);
  a.Set(69);
  EXPECT_EQ(a.AndNotCount(empty), 2u);
  EXPECT_EQ(empty.AndNotCount(a), 0u);
}

TEST(BitVectorTest, OrWith) {
  BitVector a(66), b(66);
  a.Set(0);
  b.Set(65);
  a.OrWith(b);
  EXPECT_TRUE(a.Test(0));
  EXPECT_TRUE(a.Test(65));
  EXPECT_EQ(a.Count(), 2u);
}

TEST(BitVectorTest, EqualityAndHash) {
  BitVector a(80), b(80), c(81);
  a.Set(17);
  b.Set(17);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_FALSE(a == c);
  b.Set(18);
  EXPECT_FALSE(a == b);
  EXPECT_NE(a.Hash(), b.Hash());  // overwhelmingly likely
}

TEST(BitVectorTest, ToIndices) {
  BitVector a(150);
  a.Set(3);
  a.Set(64);
  a.Set(149);
  const std::vector<uint32_t> idx = a.ToIndices();
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx[0], 3u);
  EXPECT_EQ(idx[1], 64u);
  EXPECT_EQ(idx[2], 149u);
}

TEST(BitVectorTest, ResetClearsAll) {
  BitVector a(90);
  for (size_t i = 0; i < 90; i += 7) a.Set(i);
  a.Reset();
  EXPECT_EQ(a.Count(), 0u);
}

TEST(BitVectorTest, RandomizedCountMatchesReference) {
  Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 1 + rng.Uniform(500);
    BitVector a(n), b(n);
    size_t count_a = 0, count_and = 0, count_andnot = 0;
    std::vector<bool> ra(n, false), rb(n, false);
    for (size_t i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.3)) {
        a.Set(i);
        ra[i] = true;
      }
      if (rng.Bernoulli(0.3)) {
        b.Set(i);
        rb[i] = true;
      }
    }
    for (size_t i = 0; i < n; ++i) {
      count_a += ra[i];
      count_and += ra[i] && rb[i];
      count_andnot += ra[i] && !rb[i];
    }
    EXPECT_EQ(a.Count(), count_a);
    EXPECT_EQ(a.AndCount(b), count_and);
    EXPECT_EQ(a.AndNotCount(b), count_andnot);
  }
}

TEST(BitVectorTest, MemoryBytes) {
  BitVector a(1);
  EXPECT_EQ(a.MemoryBytes(), 8u);
  BitVector b(64);
  EXPECT_EQ(b.MemoryBytes(), 8u);
  BitVector c(65);
  EXPECT_EQ(c.MemoryBytes(), 16u);
}

}  // namespace
}  // namespace dmc
