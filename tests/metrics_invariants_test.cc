// Differential test harness locking down the observability layer: the
// numbers the exporters emit must agree with each other and with the
// mined rule sets, on planted datasets where both can be computed
// independently.
//
// Invariants covered:
//   1. rules_from_hundred_phase + rules_from_sub_phase == ruleset size
//   2. max(memory_history) == peak_counter_bytes (history recording on)
//   3. the phase timers sum to <= total_seconds
//   4. parallel per-shard stats aggregate exactly (rule counts sum to
//      the serial run's, peaks max/sum correctly)
//   5. RecordToRegistry mirrors the stats struct field-for-field

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "core/dmc_imp.h"
#include "core/dmc_sim.h"
#include "core/parallel_dmc.h"
#include "matrix/binary_matrix.h"
#include "observe/metrics.h"
#include "observe/stats_export.h"
#include "observe/trace.h"
#include "util/random.h"

namespace dmc {
namespace {

// A planted matrix dense enough that both phases produce rules: a block
// of near-identical columns (100%-phase material) plus random columns
// with correlated pairs (sub-phase material).
BinaryMatrix PlantedMatrix(uint32_t rows, uint32_t cols, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<ColumnId>> matrix_rows(rows);
  for (uint32_t r = 0; r < rows; ++r) {
    // Columns 0..2: identical except for a few planted misses.
    const bool base = rng.Bernoulli(0.4);
    for (ColumnId c = 0; c < 3 && c < cols; ++c) {
      if (base && !(c == 1 && rng.Bernoulli(0.02))) {
        matrix_rows[r].push_back(c);
      }
    }
    // Remaining columns: independent, with column c correlated to c+1.
    bool prev = false;
    for (ColumnId c = 3; c < cols; ++c) {
      const bool bit = prev ? rng.Bernoulli(0.8) : rng.Bernoulli(0.15);
      if (bit) matrix_rows[r].push_back(c);
      prev = bit;
    }
  }
  return BinaryMatrix::FromRows(cols, matrix_rows);
}

ImplicationMiningOptions ImpOptions(double minconf) {
  ImplicationMiningOptions o;
  o.min_confidence = minconf;
  return o;
}

SimilarityMiningOptions SimOptions(double minsim) {
  SimilarityMiningOptions o;
  o.min_similarity = minsim;
  return o;
}

// --- invariant 1: phase rule counts partition the rule set -----------

TEST(MetricsInvariantsTest, ImpPhaseRuleCountsPartitionRuleSet) {
  const BinaryMatrix m = PlantedMatrix(400, 24, 7);
  for (double minconf : {0.7, 0.9, 1.0}) {
    MiningStats stats;
    auto rules = MineImplications(m, ImpOptions(minconf), &stats);
    ASSERT_TRUE(rules.ok()) << "minconf=" << minconf;
    EXPECT_EQ(stats.rules_from_hundred_phase + stats.rules_from_sub_phase,
              rules->size())
        << "minconf=" << minconf;
  }
}

TEST(MetricsInvariantsTest, SimPhaseRuleCountsPartitionRuleSet) {
  const BinaryMatrix m = PlantedMatrix(400, 24, 11);
  for (double minsim : {0.5, 0.8, 1.0}) {
    MiningStats stats;
    auto rules = MineSimilarities(m, SimOptions(minsim), &stats);
    ASSERT_TRUE(rules.ok()) << "minsim=" << minsim;
    EXPECT_EQ(stats.rules_from_hundred_phase + stats.rules_from_sub_phase,
              rules->size())
        << "minsim=" << minsim;
  }
}

// --- invariant 2: memory history peak matches the reported peak ------

TEST(MetricsInvariantsTest, MemoryHistoryPeakMatchesPeakCounterBytes) {
  const BinaryMatrix m = PlantedMatrix(300, 20, 13);
  ImplicationMiningOptions o = ImpOptions(0.85);
  o.policy.record_history = true;
  MiningStats stats;
  auto rules = MineImplications(m, o, &stats);
  ASSERT_TRUE(rules.ok());
  ASSERT_FALSE(stats.memory_history.empty());
  const size_t history_peak =
      *std::max_element(stats.memory_history.begin(),
                        stats.memory_history.end());
  EXPECT_EQ(history_peak, stats.peak_counter_bytes);
  ASSERT_FALSE(stats.candidate_history.empty());
  const size_t candidate_peak =
      *std::max_element(stats.candidate_history.begin(),
                        stats.candidate_history.end());
  EXPECT_EQ(candidate_peak, stats.peak_candidates);
}

// --- invariant 3: phase timers bounded by the total ------------------

TEST(MetricsInvariantsTest, PhaseTimersSumToAtMostTotal) {
  const BinaryMatrix m = PlantedMatrix(500, 24, 17);
  MiningStats stats;
  auto rules = MineImplications(m, ImpOptions(0.9), &stats);
  ASSERT_TRUE(rules.ok());
  const double phase_sum = stats.prescan_seconds + stats.hundred_seconds() +
                           stats.sub_seconds();
  EXPECT_GE(stats.total_seconds, 0.0);
  // The phases are disjoint sub-intervals of the total; allow a small
  // absolute slack for clock granularity.
  EXPECT_LE(phase_sum, stats.total_seconds + 1e-3);
}

// --- invariant 4: parallel per-shard stats aggregate exactly ---------

TEST(MetricsInvariantsTest, ParallelPerShardStatsAggregateToSerial) {
  const BinaryMatrix m = PlantedMatrix(400, 24, 19);
  const ImplicationMiningOptions options = ImpOptions(0.85);

  auto serial = MineImplications(m, options);
  ASSERT_TRUE(serial.ok());

  ParallelOptions popts;
  popts.num_threads = 4;
  ParallelMiningStats pstats;
  auto parallel = MineImplicationsParallel(m, options, popts, &pstats);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(parallel->Pairs(), serial->Pairs());

  ASSERT_EQ(pstats.per_shard.size(), pstats.shards);
  ASSERT_GT(pstats.shards, 0u);

  size_t shard_rules = 0;
  size_t sum_peak = 0;
  size_t max_peak = 0;
  double sum_seconds = 0.0;
  double max_seconds = 0.0;
  for (const MiningStats& s : pstats.per_shard) {
    shard_rules += s.rules_from_hundred_phase + s.rules_from_sub_phase;
    sum_peak += s.peak_counter_bytes;
    max_peak = std::max(max_peak, s.peak_counter_bytes);
    sum_seconds += s.total_seconds;
    max_seconds = std::max(max_seconds, s.total_seconds);
  }
  // Shard outputs are disjoint, so per-shard rule counts sum to the
  // serial rule-set size.
  EXPECT_EQ(shard_rules, serial->size());
  EXPECT_EQ(pstats.sum_peak_counter_bytes, sum_peak);
  EXPECT_EQ(pstats.max_peak_counter_bytes, max_peak);
  EXPECT_DOUBLE_EQ(pstats.sum_shard_seconds, sum_seconds);
  EXPECT_DOUBLE_EQ(pstats.max_shard_seconds, max_seconds);
  EXPECT_LE(pstats.max_shard_seconds, pstats.sum_shard_seconds + 1e-12);
}

// --- invariant 5: registry mirror matches the stats struct -----------

TEST(MetricsInvariantsTest, RegistryMirrorsEngineStats) {
  const BinaryMatrix m = PlantedMatrix(300, 20, 23);
  MetricsRegistry registry;
  TraceSink sink;
  ImplicationMiningOptions o = ImpOptions(0.85);
  o.policy.observe.metrics = &registry;
  o.policy.observe.trace = &sink;
  MiningStats stats;
  auto rules = MineImplications(m, o, &stats);
  ASSERT_TRUE(rules.ok());

  EXPECT_DOUBLE_EQ(registry.gauge("imp.peak_counter_bytes"),
                   static_cast<double>(stats.peak_counter_bytes));
  EXPECT_DOUBLE_EQ(registry.gauge("imp.peak_candidates"),
                   static_cast<double>(stats.peak_candidates));
  EXPECT_EQ(registry.counter("imp.rules_from_hundred_phase"),
            stats.rules_from_hundred_phase);
  EXPECT_EQ(registry.counter("imp.rules_from_sub_phase"),
            stats.rules_from_sub_phase);
  EXPECT_DOUBLE_EQ(registry.timer("imp.total_seconds").total_seconds,
                   stats.total_seconds);

  // The trace must contain the three pipeline spans, each no longer than
  // the whole mine.
  const auto events = sink.Snapshot();
  int prescan = 0, hundred = 0, sub = 0;
  for (const TraceEvent& e : events) {
    prescan += e.name == "imp/prescan";
    hundred += e.name == "imp/hundred_phase";
    sub += e.name == "imp/sub_phase";
  }
  EXPECT_EQ(prescan, 1);
  EXPECT_EQ(hundred, 1);
  EXPECT_EQ(sub, 1);
}

// --- progress stream sanity ------------------------------------------

TEST(MetricsInvariantsTest, ProgressRowsMonotonicPerPhaseAndComplete) {
  const BinaryMatrix m = PlantedMatrix(300, 20, 29);
  ImplicationMiningOptions o = ImpOptions(0.85);
  o.policy.observe.progress_interval_rows = 64;
  std::vector<ProgressUpdate> updates;
  o.policy.observe.progress = [&updates](const ProgressUpdate& u) {
    updates.push_back(u);
    return true;
  };
  auto rules = MineImplications(m, o);
  ASSERT_TRUE(rules.ok());
  ASSERT_FALSE(updates.empty());
  for (size_t i = 1; i < updates.size(); ++i) {
    if (std::string(updates[i].phase) == updates[i - 1].phase) {
      EXPECT_LE(updates[i - 1].rows_processed, updates[i].rows_processed);
    }
  }
  for (const ProgressUpdate& u : updates) {
    EXPECT_EQ(u.shard, -1);  // serial run
    if (u.total_rows > 0) {
      EXPECT_LE(u.rows_processed, u.total_rows);
    }
  }
}

// WriteJsonl -> MergeMetricsJsonl must be lossless into an empty
// registry and additive into a non-empty one — the contract the shard
// coordinator relies on when folding per-worker dumps into its own
// registry (counters add, gauges keep the max, timers fold).
TEST(MetricsInvariantsTest, MergeMetricsJsonlRoundTripsARegistry) {
  MetricsRegistry worker;
  worker.IncrCounter("dmc.shard.worker.tasks_ok", 3);
  worker.SetGauge("dmc.shard.worker.peak_counter_bytes", 4096);
  worker.RecordTimer("dmc.shard.worker.mine_seconds", 0.25);
  worker.RecordTimer("dmc.shard.worker.mine_seconds", 0.75);
  worker.DefineHistogram("dmc.rows.density", {1, 4, 16});
  worker.RecordHistogram("dmc.rows.density", 3);
  worker.RecordHistogram("dmc.rows.density", 100);

  std::ostringstream os;
  worker.WriteJsonl(os);
  const std::string jsonl = os.str();

  MetricsRegistry merged;
  ASSERT_TRUE(MergeMetricsJsonl(jsonl, &merged).ok());
  EXPECT_EQ(merged.counters(), worker.counters());
  EXPECT_EQ(merged.gauges(), worker.gauges());
  const TimerStat t = merged.timer("dmc.shard.worker.mine_seconds");
  EXPECT_EQ(t.count, 2u);
  EXPECT_DOUBLE_EQ(t.total_seconds, 1.0);
  EXPECT_DOUBLE_EQ(t.max_seconds, 0.75);
  const HistogramStat h = merged.histogram("dmc.rows.density");
  EXPECT_EQ(h.total, 2u);
  EXPECT_EQ(h.counts.back(), 1u);  // the overflow bucket caught 100

  // Merging the same dump again is additive, not idempotent: two
  // workers reporting 3 tasks each really did 6 tasks. Gauges are
  // peaks, so they stay put.
  ASSERT_TRUE(MergeMetricsJsonl(jsonl, &merged).ok());
  EXPECT_EQ(merged.counter("dmc.shard.worker.tasks_ok"), 6u);
  EXPECT_EQ(merged.gauge("dmc.shard.worker.peak_counter_bytes"), 4096);
  EXPECT_EQ(merged.timer("dmc.shard.worker.mine_seconds").count, 4u);
}

TEST(MetricsInvariantsTest, MergeMetricsJsonlRejectsGarbageLines) {
  MetricsRegistry merged;
  // Blank lines are tolerated; an unparseable line is a clean error.
  EXPECT_TRUE(MergeMetricsJsonl("\n\n", &merged).ok());
  const Status bad = MergeMetricsJsonl("{\"kind\":\"counter\"}\nwat\n",
                                       &merged);
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
}

TEST(MetricsInvariantsTest, MergeMetricsJsonlDropsBucketMismatches) {
  MetricsRegistry a;
  a.DefineHistogram("dmc.rows.density", {1, 2, 4});
  a.RecordHistogram("dmc.rows.density", 2);
  std::ostringstream os;
  a.WriteJsonl(os);

  MetricsRegistry merged;
  merged.DefineHistogram("dmc.rows.density", {10, 20});
  merged.RecordHistogram("dmc.rows.density", 15);
  // Mismatched bucket layouts: the incoming histogram is dropped, the
  // resident one is untouched, and the merge itself still succeeds so
  // one worker's odd histogram cannot sink the whole aggregation.
  ASSERT_TRUE(MergeMetricsJsonl(os.str(), &merged).ok());
  const HistogramStat h = merged.histogram("dmc.rows.density");
  EXPECT_EQ(h.total, 1u);
  EXPECT_EQ(h.upper_bounds, (std::vector<double>{10, 20}));
}

}  // namespace
}  // namespace dmc
