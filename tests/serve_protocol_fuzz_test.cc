// Seeded protocol fuzzing against a live server: random frame
// mutations — truncations, hostile length prefixes, bad versions and
// ops, flipped payload bytes, garbage pipelined behind valid frames —
// must each produce a clean protocol-error reply or an orderly close,
// and must never crash, hang, or wedge the daemon (the suite runs in
// the ASan stage of tools/check.sh, so "no leak" is part of the
// contract: a connection the server forgets to reap shows up there).

#include "serve/server.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "serve/client.h"
#include "serve/net_socket.h"
#include "serve/protocol.h"
#include "util/random.h"

namespace dmc {
namespace {

using serve::Op;

class ServeProtocolFuzzTest : public ::testing::Test {
 protected:
  static constexpr ColumnId kColumns = 24;

  void SetUp() override {
    Rng rng(71);
    std::vector<std::vector<ColumnId>> rows(300);
    for (auto& row : rows) {
      const ColumnId base = static_cast<ColumnId>(rng.Uniform(kColumns - 1));
      row = {base, static_cast<ColumnId>(base + 1)};
    }
    ServeOptions options;
    options.mining.min_confidence = 0.5;
    server_ = std::make_unique<RuleServer>(std::move(options));
    ASSERT_TRUE(
        server_->SeedFromMatrix(BinaryMatrix::FromRows(kColumns, rows)).ok());
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override { server_->Shutdown(); }

  /// The health probe: a fresh, well-formed connection must still get
  /// exact answers no matter what the fuzz connection just sent.
  void AssertServerHealthy() {
    serve::RuleClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    const StatusOr<serve::Reply> reply = client.QueryByAntecedent(0);
    ASSERT_TRUE(reply.ok()) << reply.status();
    EXPECT_EQ(reply->rules,
              server_->index().snapshot()->QueryByAntecedent(0));
  }

  /// Opens a raw connection, sends `bytes`, then reads until the server
  /// closes or the 5s timeout trips. Returns what came back.
  struct RawResult {
    bool closed = false;     // orderly EOF observed
    bool timed_out = false;  // server neither answered nor closed
    std::string data;
  };
  RawResult SendRaw(const std::string& bytes) {
    RawResult result;
    const StatusOr<int> fd = net::ConnectTcp("127.0.0.1", server_->port());
    EXPECT_TRUE(fd.ok());
    if (!fd.ok()) return result;
    EXPECT_TRUE(net::SetIoTimeout(*fd, 5.0).ok());
    EXPECT_TRUE(net::SendAll(*fd, bytes.data(), bytes.size()).ok());
    // Half-close: the server sees EOF after the mutation, so a healthy
    // daemon always answers what it can and then closes — a timeout
    // here means the connection was left dangling (a wedge).
    net::ShutdownWrite(*fd);
    char buf[4096];
    for (;;) {
      const StatusOr<int64_t> r = net::ReadSome(*fd, buf, sizeof(buf));
      if (!r.ok() || *r == net::kWouldBlock) {
        result.timed_out = true;
        break;
      }
      if (*r == 0) {
        result.closed = true;
        break;
      }
      result.data.append(buf, static_cast<size_t>(*r));
    }
    net::CloseFd(*fd);
    return result;
  }

  /// True iff `data` is exactly whole frames and the last one decodes
  /// to an error reply (nonzero status).
  static bool EndsWithErrorReply(const std::string& data) {
    serve::FrameBuffer frames(serve::kMaxFramePayloadBytes);
    frames.Append(data.data(), data.size());
    std::string payload;
    bool saw_error = false;
    for (;;) {
      const auto poll = frames.Next(&payload);
      if (poll != serve::FrameBuffer::Poll::kFrame) {
        return saw_error && poll == serve::FrameBuffer::Poll::kNeedMore &&
               frames.buffered_bytes() == 0;
      }
      const StatusOr<serve::Reply> reply =
          serve::DecodeReplyPayload(payload);
      if (!reply.ok()) return false;
      saw_error = !reply->status.ok();
    }
  }

  std::unique_ptr<RuleServer> server_;
};

std::string ValidFrame(Rng& rng, ColumnId num_columns) {
  switch (rng.Uniform(4)) {
    case 0:
      return serve::EncodeQueryRequest(
          Op::kQueryByAntecedent,
          static_cast<ColumnId>(rng.Uniform(num_columns)));
    case 1:
      return serve::EncodeQueryRequest(
          Op::kQueryByConsequent,
          static_cast<ColumnId>(rng.Uniform(num_columns)));
    case 2:
      return serve::EncodeStatsRequest();
    default:
      return serve::EncodeQueryRequest(
          Op::kTopK, static_cast<uint32_t>(rng.Uniform(64)));
  }
}

TEST_F(ServeProtocolFuzzTest, HostileLengthPrefixGetsErrorReplyAndClose) {
  for (const uint32_t len : {0u, 1u, 3u,  // below the 4-byte header
                             serve::kMaxFramePayloadBytes + 1,
                             0xFFFFFFFFu}) {
    std::string bytes(sizeof(uint32_t), '\0');
    std::memcpy(bytes.data(), &len, sizeof(len));
    bytes += "trailing garbage the server must never wait for";
    const RawResult result = SendRaw(bytes);
    EXPECT_TRUE(result.closed) << "len=" << len;
    EXPECT_FALSE(result.timed_out) << "len=" << len;
    EXPECT_TRUE(EndsWithErrorReply(result.data)) << "len=" << len;
    AssertServerHealthy();
  }
}

TEST_F(ServeProtocolFuzzTest, BadVersionAndOpGetErrorReplyAndClose) {
  // version 3 (unknown), version 1 (superseded), op 0x42 (unknown),
  // reserved != 0.
  const std::string frames[] = {
      std::string("\x04\x00\x00\x00\x03\x00\x01\x00", 8),
      std::string("\x04\x00\x00\x00\x01\x00\x01\x00", 8),
      std::string("\x04\x00\x00\x00\x02\x00\x42\x00", 8),
      std::string("\x04\x00\x00\x00\x02\x00\x04\x07", 8),
  };
  for (const std::string& frame : frames) {
    const RawResult result = SendRaw(frame);
    EXPECT_TRUE(result.closed);
    EXPECT_TRUE(EndsWithErrorReply(result.data));
    AssertServerHealthy();
  }
}

/// A complete kAppend frame that announces `num_columns` x `num_rows`
/// but carries no row data — with zero rows every per-row check is
/// vacuous, so only the header caps stand between a 16-byte frame and
/// a multi-GiB per-column allocation.
std::string RawAppendHeaderFrame(uint32_t num_columns, uint32_t num_rows) {
  std::string payload("\x02\x00\x05\x00", 4);  // version 2, op kAppend
  const auto le32 = [&payload](uint32_t v) {
    char buf[sizeof(v)];
    std::memcpy(buf, &v, sizeof(v));
    payload.append(buf, sizeof(v));
  };
  le32(num_columns);
  le32(num_rows);
  std::string frame(sizeof(uint32_t), '\0');
  const uint32_t len = static_cast<uint32_t>(payload.size());
  std::memcpy(frame.data(), &len, sizeof(len));
  return frame + payload;
}

TEST_F(ServeProtocolFuzzTest, HostileAppendHeaderGetsErrorReplyAndClose) {
  // Decode-level: the caps are enforced before any allocation sized by
  // the header, and the largest legal header still decodes.
  EXPECT_FALSE(serve::DecodeRequestPayload(
                   RawAppendHeaderFrame(0xFFFFFFFFu, 0).substr(4))
                   .ok());
  EXPECT_FALSE(serve::DecodeRequestPayload(
                   RawAppendHeaderFrame(serve::kMaxAppendColumns + 1, 0)
                       .substr(4))
                   .ok());
  EXPECT_TRUE(serve::DecodeRequestPayload(
                  RawAppendHeaderFrame(serve::kMaxAppendColumns, 0).substr(4))
                  .ok());

  // Wire-level: the live server answers each hostile header with an
  // error reply and a close, and keeps serving exactly.
  for (const std::string& frame :
       {RawAppendHeaderFrame(0xFFFFFFFFu, 0),
        RawAppendHeaderFrame(serve::kMaxAppendColumns + 1, 0),
        RawAppendHeaderFrame(16, serve::kMaxAppendRows + 1)}) {
    const RawResult result = SendRaw(frame);
    EXPECT_TRUE(result.closed);
    EXPECT_FALSE(result.timed_out);
    EXPECT_TRUE(EndsWithErrorReply(result.data));
    AssertServerHealthy();
  }
}

/// A complete kEvict frame announcing `rows` — used to probe counts the
/// decoder accepts but the server must reject against its window.
std::string RawEvictFrame(uint64_t rows) {
  std::string payload("\x02\x00\x06\x00", 4);  // version 2, op kEvict
  char buf[sizeof(rows)];
  std::memcpy(buf, &rows, sizeof(rows));
  payload.append(buf, sizeof(buf));
  std::string frame(sizeof(uint32_t), '\0');
  const uint32_t len = static_cast<uint32_t>(payload.size());
  std::memcpy(frame.data(), &len, sizeof(len));
  return frame + payload;
}

TEST_F(ServeProtocolFuzzTest, HostileEvictCountGetsErrorReplyAndClose) {
  // Decode-level: the body is a plain u64, so any count decodes — the
  // window bound is the server's to enforce. A truncated body is the
  // decoder's problem.
  EXPECT_TRUE(serve::DecodeRequestPayload(RawEvictFrame(1).substr(4)).ok());
  EXPECT_FALSE(
      serve::DecodeRequestPayload(RawEvictFrame(1).substr(4, 8)).ok());

  // Wire-level: counts past the 300 seeded rows (including the u64
  // extremes) get an error reply and a close, and the server keeps
  // serving the untouched window exactly.
  for (const uint64_t rows :
       {uint64_t{301}, uint64_t{1} << 32, ~uint64_t{0}}) {
    const RawResult result = SendRaw(RawEvictFrame(rows));
    EXPECT_TRUE(result.closed) << "rows=" << rows;
    EXPECT_FALSE(result.timed_out) << "rows=" << rows;
    EXPECT_TRUE(EndsWithErrorReply(result.data)) << "rows=" << rows;
    AssertServerHealthy();
  }
  const serve::ServeStats stats = server_->StatsSnapshot();
  EXPECT_EQ(stats.rows_evicted, 0u);
  EXPECT_EQ(stats.batches_evicted, 0u);
  EXPECT_GE(stats.protocol_errors, 3u);

  // A legal evict on the same server still round-trips.
  serve::RuleClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  const StatusOr<uint64_t> depth = client.EvictRows(10);
  ASSERT_TRUE(depth.ok()) << depth.status();
}

TEST_F(ServeProtocolFuzzTest, TruncatedFrameNeverWedgesTheServer) {
  Rng rng(101);
  for (int i = 0; i < 32; ++i) {
    std::string frame = ValidFrame(rng, kColumns);
    frame.resize(rng.Uniform(frame.size()));  // strictly shorter
    // An incomplete frame is not an error — the server waits for the
    // rest. Closing our end instead must reap the connection without
    // fuss, and the daemon must stay healthy throughout.
    const StatusOr<int> fd = net::ConnectTcp("127.0.0.1", server_->port());
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(net::SendAll(*fd, frame.data(), frame.size()).ok());
    net::CloseFd(*fd);
  }
  AssertServerHealthy();
}

TEST_F(ServeProtocolFuzzTest, SeededMutationSweepErrorsOrClosesCleanly) {
  Rng rng(2026);
  int error_replies = 0;
  for (int i = 0; i < 200; ++i) {
    std::string bytes = ValidFrame(rng, kColumns);
    switch (rng.Uniform(5)) {
      case 0:  // flip one byte anywhere (length prefix included)
        bytes[rng.Uniform(bytes.size())] ^=
            static_cast<char>(1u << rng.Uniform(8));
        break;
      case 1:  // splice random garbage behind a valid frame
        for (int j = 0; j < 16; ++j) {
          bytes.push_back(static_cast<char>(rng.Uniform(256)));
        }
        break;
      case 2: {  // declare a bigger payload than is sent, then garbage
        uint32_t len = 0;
        std::memcpy(&len, bytes.data(), sizeof(len));
        len += static_cast<uint32_t>(1 + rng.Uniform(64));
        std::memcpy(bytes.data(), &len, sizeof(len));
        for (int j = 0; j < 80; ++j) {
          bytes.push_back(static_cast<char>(rng.Uniform(256)));
        }
        break;
      }
      case 3:  // pure noise, no framing at all
        bytes.assign(4 + rng.Uniform(120), '\0');
        for (char& c : bytes) c = static_cast<char>(rng.Uniform(256));
        break;
      default:  // pipeline: valid, then corrupted copy of another frame
        bytes += ValidFrame(rng, kColumns);
        bytes[bytes.size() - 1 - rng.Uniform(4)] ^= 0x5A;
        break;
    }
    const RawResult result = SendRaw(bytes);
    // The one hard rule: the server answered what it could and closed;
    // it never left the half-closed connection dangling past the
    // timeout.
    EXPECT_TRUE(result.closed) << "iteration " << i;
    EXPECT_FALSE(result.timed_out) << "iteration " << i;
    if (EndsWithErrorReply(result.data)) ++error_replies;
    if (i % 20 == 0) AssertServerHealthy();
  }
  AssertServerHealthy();
  // The sweep must actually exercise the error path, not just luck into
  // 200 valid mutations.
  EXPECT_GT(error_replies, 20);

  const serve::ServeStats stats = server_->StatsSnapshot();
  EXPECT_GT(stats.protocol_errors, 0u);
}

}  // namespace
}  // namespace dmc
