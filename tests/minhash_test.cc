#include "baselines/minhash.h"

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/bruteforce.h"
#include "datagen/planted_gen.h"
#include "rules/verifier.h"
#include "util/random.h"

namespace dmc {
namespace {

// Two columns with controlled Jaccard similarity.
BinaryMatrix PairWithSimilarity(uint32_t inter, uint32_t a_only,
                                uint32_t b_only) {
  MatrixBuilder b(2);
  for (uint32_t i = 0; i < inter; ++i) b.AddRow({0, 1});
  for (uint32_t i = 0; i < a_only; ++i) b.AddRow({0});
  for (uint32_t i = 0; i < b_only; ++i) b.AddRow({1});
  return b.Build();
}

TEST(MinHashTest, EstimatorIsUnbiased) {
  // sim = 60 / 100 = 0.6; with k=400 the estimate should be within a few
  // standard deviations (sigma = sqrt(0.6*0.4/400) ~ 0.024).
  const BinaryMatrix m = PairWithSimilarity(60, 20, 20);
  const auto sig = ComputeMinHashSignatures(m, 400, 12345);
  const double est = EstimateSimilarity(sig, 400, 0, 1);
  EXPECT_NEAR(est, 0.6, 5 * 0.0245);
}

TEST(MinHashTest, IdenticalColumnsAgreeEverywhere) {
  const BinaryMatrix m = PairWithSimilarity(50, 0, 0);
  const auto sig = ComputeMinHashSignatures(m, 100, 7);
  EXPECT_DOUBLE_EQ(EstimateSimilarity(sig, 100, 0, 1), 1.0);
}

TEST(MinHashTest, DisjointColumnsRarelyAgree) {
  const BinaryMatrix m = PairWithSimilarity(0, 50, 50);
  const auto sig = ComputeMinHashSignatures(m, 200, 9);
  EXPECT_LT(EstimateSimilarity(sig, 200, 0, 1), 0.05);
}

TEST(MinHashTest, VerifiedOutputHasNoFalsePositives) {
  PlantedOptions p;
  p.seed = 55;
  const PlantedData data = GeneratePlanted(p);
  const double s = 0.7;
  MinHashOptions o;
  o.num_hashes = 200;
  o.verify = true;
  MinHashStats stats;
  const auto pairs = MinHashSimilarities(data.matrix, o, s, &stats);
  const RuleVerifier v(data.matrix);
  EXPECT_TRUE(v.VerifySimilarities(pairs, s).ok());
}

TEST(MinHashTest, FindsThePlantedPairs) {
  PlantedOptions p;
  p.seed = 56;
  // Planted sim = 38 / 46 ~ 0.826.
  const PlantedData data = GeneratePlanted(p);
  MinHashOptions o;
  o.num_hashes = 300;
  const auto pairs = MinHashSimilarities(data.matrix, o, 0.8);
  const auto found = pairs.Pairs();
  size_t hits = 0;
  for (const SimilarityPair& planted : data.similarities) {
    for (const auto& [a, b] : found) {
      if (a == std::min(planted.a, planted.b) &&
          b == std::max(planted.a, planted.b)) {
        ++hits;
      }
    }
  }
  // Min-Hash may miss pairs (false negatives are its documented flaw),
  // but at k=300 and slack 0.05 it should find nearly all of these.
  EXPECT_GE(hits, data.similarities.size() - 1);
}

TEST(MinHashTest, UnverifiedMayReportEstimates) {
  const BinaryMatrix m = PairWithSimilarity(90, 5, 5);  // sim = 0.9
  MinHashOptions o;
  o.num_hashes = 200;
  o.verify = false;
  MinHashStats stats;
  const auto pairs = MinHashSimilarities(m, o, 0.8, &stats);
  ASSERT_EQ(pairs.size(), 1u);
  // Estimated intersection should be near the true value 90.
  EXPECT_NEAR(pairs.pairs()[0].intersection, 90, 8);
  EXPECT_EQ(stats.false_positives_removed, 0u);
}

TEST(MinHashTest, StatsAccounting) {
  const BinaryMatrix m = PairWithSimilarity(40, 10, 10);
  MinHashOptions o;
  o.num_hashes = 64;
  MinHashStats stats;
  (void)MinHashSimilarities(m, o, 0.5, &stats);
  EXPECT_EQ(stats.signature_bytes, 2 * 64 * sizeof(uint64_t));
  EXPECT_GE(stats.total_seconds, 0.0);
}

TEST(MinHashTest, MinSupportFiltersColumns) {
  MatrixBuilder b(3);
  b.AddRow({0, 1, 2});
  b.AddRow({0, 1});
  for (int i = 0; i < 20; ++i) b.AddRow({0, 1});
  const BinaryMatrix m = b.Build();
  MinHashOptions o;
  o.num_hashes = 100;
  o.min_support = 5;  // column 2 (1 one) excluded
  const auto pairs = MinHashSimilarities(m, o, 0.5);
  for (const auto& p : pairs) {
    EXPECT_NE(p.a, 2u);
    EXPECT_NE(p.b, 2u);
  }
  EXPECT_EQ(pairs.size(), 1u);  // (0,1)
}

TEST(MinHashTest, DeterministicForSeed) {
  const BinaryMatrix m = PairWithSimilarity(30, 10, 10);
  MinHashOptions o;
  o.num_hashes = 50;
  const auto a = MinHashSimilarities(m, o, 0.5);
  const auto b = MinHashSimilarities(m, o, 0.5);
  EXPECT_EQ(a.Pairs(), b.Pairs());
}

}  // namespace
}  // namespace dmc
