// Concurrency stress for the sliding-window ingest path, built to run
// under TSan (tools/check.sh runs every test whose name matches
// "WindowStress" in its TSan stage): wire-reader threads race a
// publisher that interleaves AppendRows and EvictRows, so the event
// thread, the ingest thread's EvictBatch/AppendBatch mutations, and
// the RuleIndex snapshot swap are all exercised against each other.
//
// The second test drives the auto-slide path instead: a window-capped
// server absorbs rapid over-full appends, so every publish is preceded
// by an internal eviction while the readers keep querying.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/random.h"

namespace dmc {
namespace {

using serve::Reply;
using serve::RuleClient;

constexpr ColumnId kColumns = 24;

BinaryMatrix MakeMatrix(uint32_t seed, size_t rows) {
  Rng rng(seed);
  std::vector<std::vector<ColumnId>> out(rows);
  for (auto& row : out) {
    const ColumnId base = static_cast<ColumnId>(rng.Uniform(kColumns - 1));
    row.push_back(base);
    row.push_back(base + 1);
  }
  return BinaryMatrix::FromRows(kColumns, out);
}

std::vector<std::vector<ColumnId>> MatrixRows(const BinaryMatrix& m) {
  std::vector<std::vector<ColumnId>> rows(m.num_rows());
  for (RowId r = 0; r < m.num_rows(); ++r) {
    const auto row = m.Row(r);
    rows[r].assign(row.begin(), row.end());
  }
  return rows;
}

// Launches `count` reader threads that hammer point queries until
// `stop`, counting successes and flagging any error or generation
// regression (generations are monotone per connection: one publish per
// op, replies in request order).
std::vector<std::thread> StartReaders(RuleServer& server, size_t count,
                                      std::atomic<bool>& stop,
                                      std::atomic<uint64_t>& queries,
                                      std::atomic<uint64_t>& errors) {
  std::vector<std::thread> readers;
  readers.reserve(count);
  for (size_t t = 0; t < count; ++t) {
    readers.emplace_back([&server, &stop, &queries, &errors, t] {
      RuleClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) {
        errors.fetch_add(1);
        return;
      }
      Rng rng(static_cast<uint32_t>(700 + t));
      uint64_t last_generation = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const ColumnId c = static_cast<ColumnId>(rng.Uniform(kColumns));
        const StatusOr<Reply> reply = rng.Uniform(2) == 0
                                          ? client.QueryByAntecedent(c)
                                          : client.QueryByConsequent(c);
        if (!reply.ok() || reply->generation < last_generation) {
          errors.fetch_add(1);
          return;
        }
        last_generation = reply->generation;
        queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  return readers;
}

TEST(WindowStressTest, ReadersRaceInterleavedAppendEvictPublishes) {
  constexpr size_t kReaders = 4;
  constexpr size_t kRounds = 15;  // each round = one append + one evict

  ServeOptions options;
  options.mining.min_confidence = 0.5;
  RuleServer server(std::move(options));
  ASSERT_TRUE(server.SeedFromMatrix(MakeMatrix(31, 400)).ok());
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries{0};
  std::atomic<uint64_t> reader_errors{0};
  std::vector<std::thread> readers =
      StartReaders(server, kReaders, stop, queries, reader_errors);

  // Publisher: interleaved appends and evicts over the wire, no pacing.
  // Evicting less than each append's row count keeps the request-time
  // window validation satisfiable at every step.
  RuleClient publisher;
  ASSERT_TRUE(publisher.Connect("127.0.0.1", server.port()).ok());
  for (size_t round = 0; round < kRounds; ++round) {
    const auto rows =
        MatrixRows(MakeMatrix(static_cast<uint32_t>(800 + round), 100));
    const StatusOr<uint64_t> append_depth =
        publisher.AppendRows(kColumns, rows);
    ASSERT_TRUE(append_depth.ok()) << append_depth.status();
    const StatusOr<uint64_t> evict_depth = publisher.EvictRows(60);
    ASSERT_TRUE(evict_depth.ok()) << evict_depth.status();
  }
  // Wait until every op is applied and published (seed + 2 per round).
  StatusOr<serve::ServeStats> stats = publisher.Stats();
  ASSERT_TRUE(stats.ok());
  while (stats->snapshots_published < 2 * kRounds + 1) {
    stats = publisher.Stats();
    ASSERT_TRUE(stats.ok());
  }

  stop.store(true);
  for (std::thread& r : readers) r.join();

  EXPECT_EQ(reader_errors.load(), 0u);
  EXPECT_GT(queries.load(), 0u);
  EXPECT_EQ(stats->batches_ingested, kRounds);
  EXPECT_EQ(stats->batches_evicted, kRounds);
  EXPECT_EQ(stats->rows_evicted, 60 * kRounds);
  EXPECT_EQ(stats->rows_mined, 400 + kRounds * (100 - 60));
  EXPECT_EQ(stats->evicts_dropped, 0u);
  EXPECT_EQ(stats->protocol_errors, 0u);

  server.Shutdown();
  const serve::ServeStats final_stats = server.StatsSnapshot();
  EXPECT_EQ(final_stats.connections_active, 0u);
  EXPECT_EQ(final_stats.generation, 2 * kRounds + 1);
}

TEST(WindowStressTest, ReadersRaceAutoSlidingWindowPublishes) {
  constexpr size_t kReaders = 3;
  constexpr size_t kBatches = 20;
  constexpr uint64_t kWindow = 250;

  ServeOptions options;
  options.mining.min_confidence = 0.5;
  options.window_rows = kWindow;
  RuleServer server(std::move(options));
  ASSERT_TRUE(server.SeedFromMatrix(MakeMatrix(41, 200)).ok());
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries{0};
  std::atomic<uint64_t> reader_errors{0};
  std::vector<std::thread> readers =
      StartReaders(server, kReaders, stop, queries, reader_errors);

  // Every append past the first overfills the window, so each publish
  // is preceded by an internal slide (EvictPrefix + regeneration) that
  // races the readers' snapshot loads.
  RuleClient publisher;
  ASSERT_TRUE(publisher.Connect("127.0.0.1", server.port()).ok());
  for (size_t b = 0; b < kBatches; ++b) {
    const auto rows =
        MatrixRows(MakeMatrix(static_cast<uint32_t>(1300 + b), 100));
    const StatusOr<uint64_t> depth = publisher.AppendRows(kColumns, rows);
    ASSERT_TRUE(depth.ok()) << depth.status();
  }
  StatusOr<serve::ServeStats> stats = publisher.Stats();
  ASSERT_TRUE(stats.ok());
  while (stats->snapshots_published < kBatches + 1) {
    stats = publisher.Stats();
    ASSERT_TRUE(stats.ok());
  }

  stop.store(true);
  for (std::thread& r : readers) r.join();

  EXPECT_EQ(reader_errors.load(), 0u);
  EXPECT_GT(queries.load(), 0u);
  EXPECT_EQ(stats->batches_ingested, kBatches);
  EXPECT_EQ(stats->rows_mined, kWindow);
  // 200 seed + 2000 appended, window holds 250: 1950 rows slid out.
  EXPECT_EQ(stats->rows_evicted, 200 + 100 * kBatches - kWindow);
  EXPECT_GT(stats->batches_evicted, 0u);
  EXPECT_EQ(stats->protocol_errors, 0u);

  server.Shutdown();
  EXPECT_EQ(server.StatsSnapshot().connections_active, 0u);
}

}  // namespace
}  // namespace dmc
