// Concurrency stress for the serving daemon, built to run under TSan
// (tools/check.sh runs every test whose name matches "Serve" in its
// TSan stage): many wire-reader threads race a publisher that drives
// rapid AppendBatch + Publish cycles, so the event thread, the ingest
// thread, and the RuleIndex snapshot swap are all exercised against
// each other.
//
// The second half is the fault-injection arm: with the serve.* sites
// armed probabilistically, injected accept/read/write/publish failures
// must degrade the affected connection (or skip the affected publish) —
// the process, the listener, and every healthy connection keep working.

#include "serve/server.h"

#include <gtest/gtest.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "serve/net_socket.h"
#include "serve/protocol.h"
#include "util/failpoint.h"
#include "util/random.h"

namespace dmc {
namespace {

using serve::Reply;
using serve::RuleClient;

constexpr ColumnId kColumns = 32;

BinaryMatrix MakeMatrix(uint32_t seed, size_t rows) {
  Rng rng(seed);
  std::vector<std::vector<ColumnId>> out(rows);
  for (auto& row : out) {
    const ColumnId base = static_cast<ColumnId>(rng.Uniform(kColumns - 1));
    row.push_back(base);
    row.push_back(base + 1);
  }
  return BinaryMatrix::FromRows(kColumns, out);
}

std::vector<std::vector<ColumnId>> MatrixRows(const BinaryMatrix& m) {
  std::vector<std::vector<ColumnId>> rows(m.num_rows());
  for (RowId r = 0; r < m.num_rows(); ++r) {
    const auto row = m.Row(r);
    rows[r].assign(row.begin(), row.end());
  }
  return rows;
}

TEST(ServeStressTest, ReadersRacePublisherWithoutTearing) {
  constexpr size_t kReaders = 4;
  constexpr size_t kBatches = 30;

  ServeOptions options;
  options.mining.min_confidence = 0.5;
  RuleServer server(std::move(options));
  ASSERT_TRUE(server.SeedFromMatrix(MakeMatrix(3, 400)).ok());
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reader_errors{0};
  std::atomic<uint64_t> queries{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      RuleClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) {
        reader_errors.fetch_add(1);
        return;
      }
      Rng rng(static_cast<uint32_t>(100 + t));
      uint64_t last_generation = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const ColumnId c = static_cast<ColumnId>(rng.Uniform(kColumns));
        const StatusOr<Reply> reply = rng.Uniform(2) == 0
                                          ? client.QueryByAntecedent(c)
                                          : client.QueryByConsequent(c);
        if (!reply.ok()) {
          reader_errors.fetch_add(1);
          return;
        }
        // Generations are monotone per connection: one publish per
        // batch, and replies come back in request order.
        if (reply->generation < last_generation) {
          reader_errors.fetch_add(1);
          return;
        }
        last_generation = reply->generation;
        queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Publisher: rapid-fire appends over the wire, no pacing — the ingest
  // thread publishes as fast as it can mine.
  RuleClient publisher;
  ASSERT_TRUE(publisher.Connect("127.0.0.1", server.port()).ok());
  for (size_t b = 0; b < kBatches; ++b) {
    const auto rows =
        MatrixRows(MakeMatrix(static_cast<uint32_t>(500 + b), 100));
    const StatusOr<uint64_t> depth = publisher.AppendRows(kColumns, rows);
    ASSERT_TRUE(depth.ok()) << depth.status();
  }
  // Wait until every batch is mined and published.
  StatusOr<serve::ServeStats> stats = publisher.Stats();
  ASSERT_TRUE(stats.ok());
  while (stats->snapshots_published < kBatches + 1) {
    stats = publisher.Stats();
    ASSERT_TRUE(stats.ok());
  }

  stop.store(true);
  for (std::thread& r : readers) r.join();

  EXPECT_EQ(reader_errors.load(), 0u);
  EXPECT_GT(queries.load(), 0u);
  EXPECT_EQ(stats->batches_ingested, kBatches);
  EXPECT_EQ(stats->io_errors, 0u);
  EXPECT_EQ(stats->protocol_errors, 0u);

  server.Shutdown();
  const serve::ServeStats final_stats = server.StatsSnapshot();
  EXPECT_EQ(final_stats.connections_active, 0u);
  EXPECT_EQ(final_stats.generation, kBatches + 1);
}

TEST(ServeStressTest, GracefulDrainUnderLoad) {
  ServeOptions options;
  options.mining.min_confidence = 0.5;
  RuleServer server(std::move(options));
  ASSERT_TRUE(server.SeedFromMatrix(MakeMatrix(7, 300)).ok());
  ASSERT_TRUE(server.Start().ok());

  // Readers keep querying until the drain kicks them off; every error
  // they see must be a connection-level close, never a crash.
  std::atomic<uint64_t> queries{0};
  std::vector<std::thread> readers;
  for (size_t t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      RuleClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) return;
      Rng rng(static_cast<uint32_t>(200 + t));
      while (true) {
        const StatusOr<Reply> reply = client.QueryByAntecedent(
            static_cast<ColumnId>(rng.Uniform(kColumns)));
        if (!reply.ok()) return;  // drained: server closed on us
        queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Let the readers get going, then pull the plug mid-flight.
  while (queries.load(std::memory_order_relaxed) < 200) {
    std::this_thread::yield();
  }
  server.Shutdown();
  for (std::thread& r : readers) r.join();
  EXPECT_GE(queries.load(), 200u);

  // The drain left no connection behind and the port is released: a
  // fresh server can bind an ephemeral port and the old one is gone.
  const serve::ServeStats stats = server.StatsSnapshot();
  EXPECT_EQ(stats.connections_active, 0u);
  RuleClient late;
  EXPECT_FALSE(late.Connect("127.0.0.1", server.port(), 1.0).ok());
}

TEST(ServeStressTest, StalledReaderConnectionIsReaped) {
  ServeOptions options;
  options.mining.min_confidence = 0.5;
  options.write_stall_timeout_seconds = 0.25;
  options.max_output_buffer_bytes = 256 * 1024;
  RuleServer server(std::move(options));
  ASSERT_TRUE(server.SeedFromMatrix(MakeMatrix(23, 400)).ok());
  ASSERT_TRUE(server.Start().ok());

  // A slowloris reader: pipeline thousands of top-k queries, then never
  // read a byte. The replies overrun the kernel buffers, POLLOUT stops
  // firing, and backpressure pauses reads — only the write-stall reaper
  // can reclaim the connection and its buffered output.
  const StatusOr<int> fd = net::ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(fd.ok());
  // Clamp our receive buffer so the kernel cannot quietly absorb the
  // whole backlog (rcvbuf auto-tuning can otherwise grow to tens of
  // MiB and the server would simply finish writing).
  const int rcvbuf = 4096;
  ::setsockopt(*fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  std::string burst;
  for (int i = 0; i < 15000; ++i) {
    burst += serve::EncodeQueryRequest(serve::Op::kTopK, 0);
  }
  ASSERT_TRUE(net::SendAll(*fd, burst.data(), burst.size()).ok());

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  // First wait for the server to accept us (the stats read races the
  // accept otherwise), then for the reaper — not our close — to take
  // the connection down.
  while (server.StatsSnapshot().connections_accepted == 0) {
    ASSERT_LT(std::chrono::steady_clock::now() - deadline,
              std::chrono::seconds(0))
        << "connection was never accepted";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  while (server.StatsSnapshot().connections_active != 0) {
    ASSERT_LT(std::chrono::steady_clock::now() - deadline,
              std::chrono::seconds(0))
        << "stalled connection was never reaped";
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GT(server.StatsSnapshot().io_errors, 0u);

  // The slot and the buffer are free again: a fresh connection gets
  // exact service.
  RuleClient healthy;
  ASSERT_TRUE(healthy.Connect("127.0.0.1", server.port()).ok());
  const StatusOr<Reply> reply = healthy.QueryByAntecedent(0);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->rules, server.index().snapshot()->QueryByAntecedent(0));

  net::CloseFd(*fd);
  server.Shutdown();
}

TEST(ServeStressTest, InjectedServeFaultsDegradePerConnection) {
  ServeOptions options;
  options.mining.min_confidence = 0.5;
  RuleServer server(std::move(options));
  ASSERT_TRUE(server.SeedFromMatrix(MakeMatrix(13, 300)).ok());
  ASSERT_TRUE(server.Start().ok());

  // Arm every serve.* site probabilistically: accepts, reads, writes
  // and publishes all fail ~20% of the time, deterministically seeded.
  ASSERT_TRUE(fail::Configure("serve.accept=error@p0.2;"
                              "serve.read=error@p0.2;"
                              "serve.write=error@p0.2;"
                              "serve.publish=error@p0.2;seed=17")
                  .ok());

  uint64_t ok_queries = 0;
  uint64_t dropped_connections = 0;
  uint64_t appends_acked = 0;
  Rng rng(19);
  for (int round = 0; round < 60; ++round) {
    RuleClient client;
    if (!client.Connect("127.0.0.1", server.port(), 2.0).ok()) {
      // Injected accept failure: that connection is gone, the listener
      // must keep accepting new ones.
      ++dropped_connections;
      continue;
    }
    bool alive = true;
    for (int q = 0; q < 10 && alive; ++q) {
      const StatusOr<Reply> reply = client.QueryByAntecedent(
          static_cast<ColumnId>(rng.Uniform(kColumns)));
      if (reply.ok()) {
        ++ok_queries;
      } else {
        // Injected read/write failure: this connection dies cleanly.
        alive = false;
        ++dropped_connections;
      }
    }
    if (alive && round % 4 == 0) {
      const auto rows =
          MatrixRows(MakeMatrix(static_cast<uint32_t>(900 + round), 50));
      if (client.AppendRows(kColumns, rows).ok()) ++appends_acked;
    }
  }
  fail::Disable();

  // Fault amnesty over: the process survived, and a fresh connection
  // gets exact service — including the faults' own bookkeeping.
  RuleClient healthy;
  ASSERT_TRUE(healthy.Connect("127.0.0.1", server.port()).ok());
  const StatusOr<Reply> reply = healthy.QueryByAntecedent(0);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->rules, server.index().snapshot()->QueryByAntecedent(0));

  const StatusOr<serve::ServeStats> stats = healthy.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(ok_queries, 0u);
  EXPECT_GT(dropped_connections, 0u);  // the sweep must have injected
  EXPECT_GT(stats->io_errors, 0u);
  // Skipped publishes (serve.publish) lose no data: every acked batch
  // was still ingested; a skipped publish only means the generation
  // lags the batch count until the next successful one.
  EXPECT_LE(stats->snapshots_published - 1, stats->batches_ingested);

  server.Shutdown();
}

}  // namespace
}  // namespace dmc
