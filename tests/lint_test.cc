#include "tools/lint_lib.h"

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace dmc {
namespace lint {
namespace {

std::string FixturePath(const std::string& name) {
  return std::string(DMC_TESTDATA_DIR) + "/lint/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

size_t CountRule(const std::vector<Finding>& findings,
                 const std::string& rule) {
  size_t n = 0;
  for (const auto& f : findings) {
    if (f.rule == rule) ++n;
  }
  return n;
}

TEST(ScrubSourceTest, BlanksCommentsAndStringsKeepsNewlines) {
  const std::string src =
      "int x; // rand()\n"
      "const char* s = \"srand(1)\";\n"
      "/* std::cout\n   rand() */ int y;\n";
  const std::string scrubbed = ScrubSource(src);
  EXPECT_EQ(scrubbed.find("rand"), std::string::npos);
  EXPECT_EQ(scrubbed.find("cout"), std::string::npos);
  EXPECT_NE(scrubbed.find("int x;"), std::string::npos);
  EXPECT_NE(scrubbed.find("int y;"), std::string::npos);
  EXPECT_EQ(std::count(scrubbed.begin(), scrubbed.end(), '\n'),
            std::count(src.begin(), src.end(), '\n'));
}

TEST(ScrubSourceTest, EscapedQuoteStaysInsideString) {
  const std::string scrubbed =
      ScrubSource("const char* s = \"a\\\"rand()\"; int z;");
  EXPECT_EQ(scrubbed.find("rand"), std::string::npos);
  EXPECT_NE(scrubbed.find("int z;"), std::string::npos);
}

TEST(CollectStatusFunctionsTest, HarvestsDeclarations) {
  const auto names = CollectStatusFunctions(
      "Status WriteThing(int x);\n"
      "StatusOr<std::vector<int>> ReadThing();\n"
      "  [[nodiscard]] StatusOr<Matrix> Load(const std::string& p);\n");
  EXPECT_TRUE(names.count("WriteThing"));
  EXPECT_TRUE(names.count("ReadThing"));
  EXPECT_TRUE(names.count("Load"));
  EXPECT_EQ(names.size(), 3u);
}

TEST(CollectStatusFunctionsTest, SkipsNonFunctions) {
  const auto names = CollectStatusFunctions(
      "StatusCode code();\n"        // different type
      "Status st = Foo();\n"        // variable, not a declaration
      "enum class Status { kA };\n");
  EXPECT_TRUE(names.empty());
}

// --- fixture files: each violating fixture fires its rule exactly once ---

TEST(LintFixtureTest, BannedRandFiresExactlyOnce) {
  const auto findings =
      LintFile("uses_rand.cc", ReadFile(FixturePath("uses_rand.cc")), {});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "banned-rand");
  EXPECT_EQ(findings[0].line, 10);
}

TEST(LintFixtureTest, MissingGuardFiresExactlyOnce) {
  const auto findings = LintFile(
      "missing_guard.h", ReadFile(FixturePath("missing_guard.h")), {});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "include-guard");
}

TEST(LintFixtureTest, IgnoredStatusFiresExactlyOnce) {
  const std::string content = ReadFile(FixturePath("ignored_status.cc"));
  // Registry harvested from the fixture's own declarations.
  const auto registry = CollectStatusFunctions(content);
  EXPECT_TRUE(registry.count("Frob"));
  EXPECT_TRUE(registry.count("Other"));
  const auto findings = LintFile("ignored_status.cc", content, registry);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "discarded-status");
  EXPECT_EQ(findings[0].line, 15);
  EXPECT_NE(findings[0].message.find("Frob"), std::string::npos);
}

TEST(LintFixtureTest, BannedStdioFiresExactlyOnce) {
  const auto findings =
      LintFile("uses_stdio.cc", ReadFile(FixturePath("uses_stdio.cc")), {});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "banned-stdio");
}

TEST(LintFixtureTest, BannedFileStreamFiresExactlyOnce) {
  const auto findings = LintFile("uses_ofstream.cc",
                                 ReadFile(FixturePath("uses_ofstream.cc")), {});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "banned-file-stream");
  EXPECT_EQ(findings[0].line, 10);
  EXPECT_NE(findings[0].message.find("observe"), std::string::npos);
}

TEST(LintFixtureTest, BannedRawUnlinkFiresExactlyOnce) {
  const auto findings = LintFile("uses_unlink.cc",
                                 ReadFile(FixturePath("uses_unlink.cc")), {});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "banned-raw-unlink");
  EXPECT_EQ(findings[0].line, 14);
  EXPECT_NE(findings[0].message.find("atomic_io"), std::string::npos);
}

TEST(LintFixtureTest, BannedHotPathMapFiresExactlyOnce) {
  const auto findings =
      LintFile("core/dmc_sim_pass.cc",
               ReadFile(FixturePath("core/dmc_sim_pass.cc")), {});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "banned-hot-path-map");
  EXPECT_EQ(findings[0].line, 12);
  EXPECT_NE(findings[0].message.find("dense vectors"), std::string::npos);
}

TEST(LintFixtureTest, CleanFilesPass) {
  EXPECT_TRUE(
      LintFile("clean.h", ReadFile(FixturePath("clean.h")), {}).empty());
  EXPECT_TRUE(
      LintFile("clean.cc", ReadFile(FixturePath("clean.cc")), {}).empty());
}

TEST(LintFixtureTest, TreeWalkFindsOnePerViolatingFixture) {
  const auto findings = LintTree(std::string(DMC_TESTDATA_DIR) + "/lint");
  EXPECT_EQ(CountRule(findings, "banned-rand"), 1u);
  EXPECT_EQ(CountRule(findings, "include-guard"), 1u);
  EXPECT_EQ(CountRule(findings, "discarded-status"), 1u);
  EXPECT_EQ(CountRule(findings, "banned-stdio"), 1u);
  EXPECT_EQ(CountRule(findings, "banned-file-stream"), 1u);
  EXPECT_EQ(CountRule(findings, "banned-raw-unlink"), 1u);
  EXPECT_EQ(CountRule(findings, "banned-hot-path-map"), 1u);
  EXPECT_EQ(CountRule(findings, "banned-ruleset-mutation"), 1u);
  EXPECT_EQ(CountRule(findings, "banned-raw-posting"), 1u);
  EXPECT_EQ(CountRule(findings, "banned-raw-lock"), 2u);
  EXPECT_EQ(CountRule(findings, "banned-raw-socket"), 4u);
  EXPECT_EQ(CountRule(findings, "banned-raw-process"), 5u);
  EXPECT_EQ(CountRule(findings, "unannotated-mutex"), 1u);
  EXPECT_EQ(CountRule(findings, "atomic-ordering-audit"), 1u);
  EXPECT_EQ(findings.size(), 22u);
}

TEST(LintFixtureTest, BannedRawLockFiresPerPrimitiveCall) {
  const auto findings = LintFile(
      "bad_raw_lock.cc", ReadFile(FixturePath("bad_raw_lock.cc")), {});
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "banned-raw-lock");
  EXPECT_EQ(findings[0].line, 10);
  EXPECT_NE(findings[0].message.find("MutexLock"), std::string::npos);
  EXPECT_EQ(findings[1].rule, "banned-raw-lock");
  EXPECT_EQ(findings[1].line, 12);
}

TEST(LintFixtureTest, BannedRawSocketFiresPerPrimitiveCall) {
  const auto findings = LintFile(
      "uses_socket.cc", ReadFile(FixturePath("uses_socket.cc")), {});
  ASSERT_EQ(findings.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(findings[i].rule, "banned-raw-socket");
    EXPECT_EQ(findings[i].line, 11 + i);
    EXPECT_NE(findings[i].message.find("serve/net_socket.h"),
              std::string::npos);
  }
}

TEST(LintFixtureTest, BannedRawProcessFiresPerPrimitiveCall) {
  const auto findings = LintFile(
      "uses_process.cc", ReadFile(FixturePath("uses_process.cc")), {});
  ASSERT_EQ(findings.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(findings[i].rule, "banned-raw-process");
    EXPECT_EQ(findings[i].line, 12 + i);
    EXPECT_NE(findings[i].message.find("shard/process_control.h"),
              std::string::npos);
  }
}

TEST(LintFixtureTest, BannedRawProcessExemptsProcessControlFiles) {
  // The same content under the sanctioned path must stay silent.
  const auto findings =
      LintFile("src/shard/process_control.cc",
               ReadFile(FixturePath("uses_process.cc")), {});
  EXPECT_TRUE(findings.empty());
}

TEST(LintFixtureTest, BannedRawSocketExemptsNetSocketFiles) {
  // The same content under the sanctioned path must stay silent.
  const auto findings =
      LintFile("src/serve/net_socket.cc",
               ReadFile(FixturePath("uses_socket.cc")), {});
  EXPECT_TRUE(findings.empty());
}

TEST(LintFixtureTest, UnannotatedMutexFiresExactlyOnce) {
  const auto findings =
      LintFile("bad_mutex_member.h",
               ReadFile(FixturePath("bad_mutex_member.h")), {});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unannotated-mutex");
  EXPECT_EQ(findings[0].line, 19);
  EXPECT_NE(findings[0].message.find("mu_"), std::string::npos);
}

TEST(LintFixtureTest, AtomicOrderingAuditFiresExactlyOnce) {
  const auto findings = LintFile(
      "core/kernels.cc", ReadFile(FixturePath("core/kernels.cc")), {});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "atomic-ordering-audit");
  EXPECT_EQ(findings[0].line, 11);
  EXPECT_NE(findings[0].message.find("memory_order"), std::string::npos);
}

TEST(LintFixtureTest, RegressionFixturesAreCleanUnderTokenEngine) {
  // Raw strings and line-spliced comments produced phantom findings
  // under the v1 substring engine; the token engine must stay silent.
  EXPECT_TRUE(LintFile("regression/raw_string_decoy.cc",
                       ReadFile(FixturePath("regression/raw_string_decoy.cc")),
                       {})
                  .empty());
  EXPECT_TRUE(
      LintFile("regression/comment_splice_decoy.cc",
               ReadFile(FixturePath("regression/comment_splice_decoy.cc")),
               {})
          .empty());
}

TEST(LintFixtureTest, BannedRuleSetMutationFiresExactlyOnce) {
  const auto findings =
      LintFile("bad_ruleset_mutation.cc",
               ReadFile(FixturePath("bad_ruleset_mutation.cc")), {});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "banned-ruleset-mutation");
  EXPECT_EQ(findings[0].line, 15);
  EXPECT_NE(findings[0].message.find("immutable"), std::string::npos);
}

TEST(LintFixtureTest, BannedRawPostingFiresExactlyOnce) {
  const auto findings = LintFile(
      "bad_raw_posting.cc", ReadFile(FixturePath("bad_raw_posting.cc")), {});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "banned-raw-posting");
  EXPECT_EQ(findings[0].line, 16);
  EXPECT_NE(findings[0].message.find("PostingContainer"), std::string::npos);
}

TEST(LintFixtureTest, BannedRawPostingExemptsContainerAndWhitelist) {
  const std::string content = ReadFile(FixturePath("bad_raw_posting.cc"));
  EXPECT_TRUE(
      LintFile("src/postings/posting_container.cc", content, {}).empty());
  EXPECT_TRUE(LintFile("src/matrix/row_order.cc", content, {}).empty());
  EXPECT_TRUE(LintFile("src/datagen/dictionary_gen.cc", content, {}).empty());
}

// --- rule details on inline content ---

TEST(LintRuleTest, PragmaOnceSatisfiesGuardRule) {
  EXPECT_TRUE(LintFile("x.h", "#pragma once\nint v;\n", {}).empty());
}

TEST(LintRuleTest, MismatchedGuardMacroFails) {
  const auto findings =
      LintFile("x.h", "#ifndef A_H_\n#define B_H_\nint v;\n#endif\n", {});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "include-guard");
}

TEST(LintRuleTest, GuardRuleIgnoresNonHeaders) {
  EXPECT_TRUE(LintFile("x.cc", "int v;\n", {}).empty());
}

TEST(LintRuleTest, LoggingBackendMayUseStdio) {
  const std::string body = "#include <cstdio>\nvoid F(){fprintf(stderr, x);}\n";
  EXPECT_TRUE(LintFile("src/util/logging.cc", body, {}).empty());
  EXPECT_EQ(LintFile("src/core/engine.cc", body, {}).size(), 1u);
}

TEST(LintRuleTest, ObserveExportMayOpenFileStreams) {
  const std::string body =
      "#include <fstream>\nvoid F(){ std::ofstream out(\"x\"); }\n";
  EXPECT_TRUE(LintFile("src/observe/stats_export.cc", body, {}).empty());
  const auto findings = LintFile("src/core/engine.cc", body, {});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "banned-file-stream");
}

TEST(LintRuleTest, RuleSetMutationAllowedOnlyInRulesAndIncr) {
  const std::string body =
      "void F(RuleSet& r){ r.mutable_rules(); }\n"
      "void G(RuleSet* r){ r->mutable_pairs(); }\n";
  EXPECT_TRUE(LintFile("src/rules/rule_set_fuzz.cc", body, {}).empty());
  EXPECT_TRUE(LintFile("src/incr/incr_miner.cc", body, {}).empty());
  const auto findings = LintFile("src/core/engine.cc", body, {});
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "banned-ruleset-mutation");
  // Declarations are not calls: defining the accessors is legal anywhere.
  EXPECT_TRUE(LintFile("src/core/engine.cc",
                       "struct S { int* mutable_rules(); };\n", {})
                  .empty());
}

TEST(LintRuleTest, FileStreamLineSuppressionWorks) {
  const std::string body =
      "#include <fstream>\n"
      "void F(){ std::ofstream out(\"x\"); }  // dmc_lint: ignore\n";
  EXPECT_TRUE(LintFile("src/core/engine.cc", body, {}).empty());
}

TEST(LintRuleTest, FopenRequiresCallToFire) {
  EXPECT_EQ(LintFile("x.cc", "void F(){ fopen(\"a\", \"w\"); }\n", {}).size(),
            1u);
  // A mention without a call (e.g. a symbol named fopen_mode) is legal.
  EXPECT_TRUE(LintFile("x.cc", "int fopen_mode = 0;\n", {}).empty());
}

TEST(LintRuleTest, RawUnlinkFormsAreBanned) {
  EXPECT_EQ(LintFile("x.cc", "void F(){ unlink(\"a\"); }\n", {}).size(), 1u);
  EXPECT_EQ(LintFile("x.cc", "void F(){ ::unlink(\"a\"); }\n", {}).size(),
            1u);
  EXPECT_EQ(
      LintFile("x.cc", "void F(){ std::rename(\"a\", \"b\"); }\n", {}).size(),
      1u);
  EXPECT_EQ(LintFile("x.cc", "void F(){ std::remove(\"a\"); }\n", {}).size(),
            1u);
}

TEST(LintRuleTest, DeliberateAndAlgorithmRemovesAreAllowed) {
  EXPECT_TRUE(
      LintFile("x.cc", "void F(){ std::filesystem::remove(p); }\n", {})
          .empty());
  EXPECT_TRUE(LintFile("x.cc", "void F(){ list.remove(7); }\n", {}).empty());
  EXPECT_TRUE(
      LintFile("x.cc",
               "void F(){ std::remove(v.begin(), v.end(), 3); }\n", {})
          .empty());
  // A mention without a call is legal.
  EXPECT_TRUE(LintFile("x.cc", "int unlink_count = 0;\n", {}).empty());
}

TEST(LintRuleTest, AtomicIoHelperMayUseRawFileOps) {
  const std::string body = "void F(){ ::unlink(\"a\"); }\n";
  EXPECT_TRUE(LintFile("src/util/atomic_io.cc", body, {}).empty());
  EXPECT_EQ(LintFile("src/core/engine.cc", body, {}).size(), 1u);
}

TEST(LintRuleTest, QualifiedNonStdRandIsAllowed) {
  EXPECT_TRUE(LintFile("x.cc", "int v = Legacy::rand();\n", {}).empty());
  EXPECT_EQ(LintFile("x.cc", "int v = std::rand();\n", {}).size(), 1u);
}

TEST(LintRuleTest, HotPathMapIsPathConditional) {
  const std::string body =
      "#include <map>\nvoid F(){ std::map<int, int> m; (void)m; }\n";
  EXPECT_EQ(LintFile("src/core/dmc_base.cc", body, {}).size(), 1u);
  EXPECT_EQ(LintFile("src/core/kernels.cc", body, {}).size(), 1u);
  // Everywhere else node-based containers stay legal.
  EXPECT_TRUE(LintFile("src/core/dmc_imp.cc", body, {}).empty());
  EXPECT_TRUE(LintFile("src/observe/metrics.cc", body, {}).empty());
}

TEST(LintRuleTest, HotPathMapRequiresStdQualifier) {
  // A project type or member named map is not the banned container.
  EXPECT_TRUE(LintFile("src/core/dmc_base.cc",
                       "void F(){ ColumnMap map; map.Clear(); }\n", {})
                  .empty());
  EXPECT_EQ(LintFile("src/core/dmc_base.cc",
                     "void F(){ std::unordered_map<int, int> m; }\n", {})
                .size(),
            1u);
}

TEST(LintRuleTest, HotPathMapSuppressionWorks) {
  const std::string body =
      "void F(){ std::map<int, int> m; }  // dmc_lint: ignore\n";
  EXPECT_TRUE(LintFile("src/core/dmc_base.cc", body, {}).empty());
}

TEST(LintRuleTest, RawLockAllowedOnlyUnderUtil) {
  const std::string body = "void F(M& mu){ mu.lock(); mu.unlock(); }\n";
  EXPECT_TRUE(LintFile("src/util/spin.cc", body, {}).empty());
  EXPECT_EQ(LintFile("src/core/engine.cc", body, {}).size(), 2u);
  EXPECT_EQ(LintFile("src/core/engine.cc",
                     "void G(M* mu){ mu->lock(); }\n", {})
                .size(),
            1u);
}

TEST(LintRuleTest, RawLockNeedsMemberCall) {
  // Free functions and plain identifiers named lock are not the
  // primitive.
  EXPECT_TRUE(LintFile("src/core/engine.cc",
                       "void F(){ lock(); int lock = 0; (void)lock; }\n", {})
                  .empty());
  const std::string body =
      "void F(M& mu){ mu.lock(); }  // dmc_lint: ignore\n";
  EXPECT_TRUE(LintFile("src/core/engine.cc", body, {}).empty());
}

TEST(LintRuleTest, UnannotatedMutexAcceptsGuardedByReference) {
  const std::string referenced =
      "#pragma once\n"
      "class C { std::mutex mu_; int x_ DMC_GUARDED_BY(mu_); };\n";
  EXPECT_TRUE(LintFile("src/core/engine.h", referenced, {}).empty());
  const std::string bare =
      "#pragma once\nclass C { std::mutex mu_; };\n";
  EXPECT_EQ(LintFile("src/core/engine.h", bare, {}).size(), 1u);
  // A DMC_REQUIRES contract also ties the mutex into the graph.
  const std::string required =
      "#pragma once\n"
      "struct R { std::mutex mu; };\n"
      "void G(R& r) DMC_REQUIRES(r.mu);\n";
  EXPECT_TRUE(LintFile("src/core/engine.h", required, {}).empty());
}

TEST(LintRuleTest, UnannotatedMutexIgnoresNonDeclarations) {
  // Mentions that are not `std::mutex name;` declarations: references,
  // template arguments, lock types.
  EXPECT_TRUE(LintFile("src/core/engine.cc",
                       "void F(std::mutex& mu);\n"
                       "std::lock_guard<std::mutex> g(mu);\n",
                       {})
                  .empty());
  // dmc::Mutex is the annotated capability; never flagged.
  EXPECT_TRUE(LintFile("src/core/engine.cc",
                       "class C { Mutex mu_; };\n", {})
                  .empty());
}

TEST(LintRuleTest, AtomicOrderingAuditIsPathConditional) {
  const std::string body = "long F(A& a){ return a.load(); }\n";
  EXPECT_EQ(LintFile("src/core/parallel_dmc.cc", body, {}).size(), 1u);
  EXPECT_EQ(LintFile("src/util/failpoint.cc", body, {}).size(), 1u);
  // Outside the audited TUs a defaulted order is left to review.
  EXPECT_TRUE(LintFile("src/observe/metrics.cc", body, {}).empty());
}

TEST(LintRuleTest, AtomicOrderingAcceptsExplicitOrder) {
  const std::string body =
      "void F(A& a){ a.store(1, std::memory_order_release); "
      "a.fetch_add(2, std::memory_order_relaxed); }\n";
  EXPECT_TRUE(LintFile("src/core/parallel_dmc.cc", body, {}).empty());
  // C++20 scoped form counts too.
  EXPECT_TRUE(LintFile("src/core/parallel_dmc.cc",
                       "void G(A& a){ a.store(1, std::memory_order::release); "
                       "}\n",
                       {})
                  .empty());
}

TEST(LintRuleTest, DiscardInsideIfBodyIsFlagged) {
  const std::set<std::string> registry{"Frob"};
  const auto findings =
      LintFile("x.cc", "void F(bool b){ if (b) Frob(); }\n", registry);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "discarded-status");
}

TEST(LintRuleTest, MemberCallDiscardIsFlagged) {
  const std::set<std::string> registry{"VerifyImplications"};
  const auto findings = LintFile(
      "x.cc", "void F(V& v){ v.VerifyImplications(r, m); }\n", registry);
  ASSERT_EQ(findings.size(), 1u);
}

TEST(LintRuleTest, CheckedUsesAreNotFlagged) {
  const std::set<std::string> registry{"Frob"};
  const std::string body =
      "Status G() {\n"
      "  Status s = Frob();\n"
      "  if (!Frob().ok()) return s;\n"
      "  (void)Frob();\n"
      "  return Frob();\n"
      "}\n";
  EXPECT_TRUE(LintFile("x.cc", body, registry).empty());
}

TEST(LintRuleTest, IgnoreFileSuppressesEverything) {
  const auto findings = LintFile(
      "x.cc", "// dmc_lint: ignore-file\nvoid F(){ srand(7); }\n", {});
  EXPECT_TRUE(findings.empty());
}

TEST(LintRuleTest, LineSuppressionWorks) {
  const auto findings = LintFile(
      "x.cc", "void F(){ srand(7); }  // dmc_lint: ignore\n", {});
  EXPECT_TRUE(findings.empty());
}

TEST(LintRuleTest, FormatFindingIsStable) {
  const Finding f{"a/b.cc", 12, "banned-rand", "no"};
  EXPECT_EQ(FormatFinding(f), "a/b.cc:12: [banned-rand] no");
}

}  // namespace
}  // namespace lint
}  // namespace dmc
