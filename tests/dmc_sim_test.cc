#include "core/dmc_sim.h"

#include <gtest/gtest.h>

#include "baselines/bruteforce.h"
#include "core/engine.h"
#include "matrix/binary_matrix.h"
#include "rules/verifier.h"

namespace dmc {
namespace {

SimilarityMiningOptions PlainOptions(double minsim) {
  SimilarityMiningOptions o;
  o.min_similarity = minsim;
  o.policy.row_order = RowOrderPolicy::kIdentity;
  o.policy.hundred_percent_phase = false;
  o.policy.bitmap_fallback = false;
  return o;
}

// ---------------------------------------------------------------------
// Example 5.1 (Fig. 5): two columns, ones(c1)=4 and ones(c2)=5.
// Reconstructed from the prose: before r4, cnt(c1)=1 and cnt(c2)=3 with
// one hit at r2; r3 has c2 but not c1; r4 has both. Completion: one more
// joint row and one c1-only row to reach the column sums. True
// similarity = 3/6 = 0.5 < 0.75, so the pair must NOT be reported, and
// §5.2's maximum-hits bound already proves that at r4.
BinaryMatrix Example51Matrix() {
  return BinaryMatrix::FromRows(2, {
                                       {1},     // r1
                                       {0, 1},  // r2
                                       {1},     // r3
                                       {0, 1},  // r4
                                       {0, 1},  // r5
                                       {0},     // r6
                                   });
}

TEST(DmcSimTest, PaperExample51PairRejected) {
  const BinaryMatrix m = Example51Matrix();
  EXPECT_EQ(m.column_ones()[0], 4u);
  EXPECT_EQ(m.column_ones()[1], 5u);
  auto pairs = MineSimilarities(m, PlainOptions(0.75));
  ASSERT_TRUE(pairs.ok());
  EXPECT_TRUE(pairs->empty());
}

TEST(DmcSimTest, PaperExample51MaxHitsBound) {
  // The quantities the example computes by hand: before r4, remaining 1s
  // are 3 and 2, hits so far 1, so best-possible hits = 3 and
  // best-possible similarity = 3/(4+5-3) = 0.5.
  const uint32_t ones_a = 4, ones_b = 5;
  const uint32_t cnt_a = 1, cnt_b = 3, miss_a = 0;
  const int64_t rem_a = ones_a - cnt_a;  // 3
  const int64_t rem_b = ones_b - cnt_b;  // 2
  const int64_t best_hits = (cnt_a - miss_a) + std::min(rem_a, rem_b);
  EXPECT_EQ(best_hits, 3);
  EXPECT_DOUBLE_EQ(double(best_hits) / (ones_a + ones_b - best_hits), 0.5);
  // And the engine's integer form of the same test:
  EXPECT_LT(best_hits, MinHitsForSimilarity(ones_a, ones_b, 0.75));
}

TEST(DmcSimTest, PaperExample51LowerThresholdAccepts) {
  // At minsim = 0.5 the same pair qualifies (sim = 0.5 exactly).
  const BinaryMatrix m = Example51Matrix();
  auto pairs = MineSimilarities(m, PlainOptions(0.5));
  ASSERT_TRUE(pairs.ok());
  ASSERT_EQ(pairs->size(), 1u);
  EXPECT_EQ(pairs->pairs()[0].a, 0u);
  EXPECT_EQ(pairs->pairs()[0].b, 1u);
  EXPECT_EQ(pairs->pairs()[0].intersection, 3u);
  EXPECT_DOUBLE_EQ(pairs->pairs()[0].similarity(), 0.5);
}

// ---------------------------------------------------------------------

TEST(DmcSimTest, IdenticalColumnsFoundAtHundredPercent) {
  const BinaryMatrix m = BinaryMatrix::FromRows(
      4, {{0, 1, 2}, {0, 1}, {0, 1, 3}, {2, 3}});
  auto pairs = MineSimilarities(m, PlainOptions(1.0));
  ASSERT_TRUE(pairs.ok());
  ASSERT_EQ(pairs->size(), 1u);
  EXPECT_EQ(pairs->pairs()[0].a, 0u);
  EXPECT_EQ(pairs->pairs()[0].b, 1u);
  EXPECT_DOUBLE_EQ(pairs->pairs()[0].similarity(), 1.0);
}

TEST(DmcSimTest, HundredPhasePlusCutoffLosesNoPairs) {
  const BinaryMatrix m = BinaryMatrix::FromRows(
      5, {{0, 1, 2, 3}, {0, 1, 2}, {0, 1}, {2, 3, 4}, {2, 3}, {0, 1, 4}});
  for (double s : {0.5, 0.75, 0.9}) {
    SimilarityMiningOptions plain = PlainOptions(s);
    SimilarityMiningOptions full = PlainOptions(s);
    full.policy.hundred_percent_phase = true;
    auto a = MineSimilarities(m, plain);
    auto b = MineSimilarities(m, full);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->Pairs(), b->Pairs()) << "s=" << s;
    EXPECT_EQ(a->Pairs(), BruteForceSimilarities(m, s).Pairs());
  }
}

TEST(DmcSimTest, PruningFlagsNeverChangeOutput) {
  const BinaryMatrix m = BinaryMatrix::FromRows(
      6,
      {{0, 1, 2, 3, 4}, {0, 1, 2}, {0, 1, 5}, {2, 3, 4, 5}, {2, 3}, {0, 4, 5},
       {1, 2, 3}, {0, 1, 2, 3, 4, 5}});
  for (double s : {0.4, 0.6, 0.8}) {
    const auto truth = BruteForceSimilarities(m, s).Pairs();
    for (bool density : {false, true}) {
      for (bool maxhits : {false, true}) {
        SimilarityMiningOptions o = PlainOptions(s);
        o.policy.column_density_pruning = density;
        o.policy.max_hits_pruning = maxhits;
        auto pairs = MineSimilarities(m, o);
        ASSERT_TRUE(pairs.ok());
        EXPECT_EQ(pairs->Pairs(), truth)
            << "s=" << s << " density=" << density
            << " maxhits=" << maxhits;
      }
    }
  }
}

TEST(DmcSimTest, MaxHitsPruningShrinksPeak) {
  // Example 5.1's matrix: with pruning the candidate dies at r4; without
  // it, it lives until c1 completes.
  const BinaryMatrix m = Example51Matrix();
  SimilarityMiningOptions with = PlainOptions(0.75);
  SimilarityMiningOptions without = PlainOptions(0.75);
  without.policy.max_hits_pruning = false;
  MiningStats s_with, s_without;
  ASSERT_TRUE(MineSimilarities(m, with, &s_with).ok());
  ASSERT_TRUE(MineSimilarities(m, without, &s_without).ok());
  EXPECT_LE(s_with.peak_candidates, s_without.peak_candidates);
}

TEST(DmcSimTest, BitmapFallbackProducesSamePairs) {
  const BinaryMatrix m = BinaryMatrix::FromRows(
      5, {{0, 1, 2, 3}, {0, 1, 2}, {0, 1}, {2, 3, 4}, {2, 3}, {0, 1, 4},
          {1, 2}, {3, 4, 0}});
  for (double s : {0.4, 0.7}) {
    SimilarityMiningOptions o = PlainOptions(s);
    o.policy.bitmap_fallback = true;
    o.policy.memory_threshold_bytes = 1;
    o.policy.bitmap_max_remaining_rows = 4;
    MiningStats stats;
    auto pairs = MineSimilarities(m, o, &stats);
    ASSERT_TRUE(pairs.ok());
    EXPECT_TRUE(stats.sub_bitmap_triggered);
    EXPECT_EQ(pairs->Pairs(), BruteForceSimilarities(m, s).Pairs())
        << "s=" << s;
  }
}

TEST(DmcSimTest, RejectsInvalidThreshold) {
  const BinaryMatrix m = Example51Matrix();
  EXPECT_FALSE(MineSimilarities(m, PlainOptions(0.0)).ok());
  EXPECT_FALSE(MineSimilarities(m, PlainOptions(1.0001)).ok());
}

TEST(DmcSimTest, EmptyMatrix) {
  auto pairs = MineSimilarities(BinaryMatrix(), PlainOptions(0.9));
  ASSERT_TRUE(pairs.ok());
  EXPECT_TRUE(pairs->empty());
}

TEST(DmcSimTest, PairsCarryExactCounts) {
  const BinaryMatrix m = BinaryMatrix::FromRows(
      5, {{0, 1, 2}, {0, 1}, {0, 1, 3}, {2, 3, 4}, {2, 3}, {0, 4}});
  for (double s : {0.3, 0.5, 0.8, 1.0}) {
    auto pairs = MineSimilarities(m, PlainOptions(s));
    ASSERT_TRUE(pairs.ok());
    const RuleVerifier verifier(m);
    EXPECT_TRUE(verifier.VerifySimilarities(*pairs, s).ok()) << "s=" << s;
  }
}

TEST(DmcSimTest, ColumnDensityPruningIsSound) {
  // c0 strictly contained in c1, ratio 2/6 < 0.5: must never qualify at
  // s = 0.5 even though every c0-row hits.
  MatrixBuilder b(2);
  b.AddRow({0, 1});
  b.AddRow({0, 1});
  for (int i = 0; i < 4; ++i) b.AddRow({1});
  const BinaryMatrix m = b.Build();
  auto pairs = MineSimilarities(m, PlainOptions(0.5));
  ASSERT_TRUE(pairs.ok());
  EXPECT_TRUE(pairs->empty());
  // At the exact ratio the pair qualifies: sim = 2/6 = 1/3.
  auto low = MineSimilarities(m, PlainOptions(1.0 / 3.0));
  ASSERT_TRUE(low.ok());
  EXPECT_EQ(low->size(), 1u);
}

}  // namespace
}  // namespace dmc
