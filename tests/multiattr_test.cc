#include "rules/multiattr.h"

#include <gtest/gtest.h>

#include "core/dmc_imp.h"
#include "datagen/news_gen.h"

namespace dmc {
namespace {

TEST(MultiAttrTest, JointSupportIsExact) {
  // c0, c1, c2 co-occur in exactly 4 rows; c0/c1 and c1/c2 additionally
  // co-occur elsewhere.
  MatrixBuilder b(3);
  for (int i = 0; i < 4; ++i) b.AddRow({0, 1, 2});
  b.AddRow({0, 1});
  b.AddRow({1, 2});
  const BinaryMatrix m = b.Build();

  ImplicationRuleSet rules;
  rules.Add({0, 1, 5, 0});
  rules.Add({2, 1, 5, 0});
  const auto groups = SummarizeRuleGroups(m, rules);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].columns, (std::vector<ColumnId>{0, 1, 2}));
  EXPECT_EQ(groups[0].joint_support, 4u);
  // Sparsest member has 5 ones -> cohesion 4/5.
  EXPECT_DOUBLE_EQ(groups[0].cohesion, 0.8);
  EXPECT_DOUBLE_EQ(groups[0].min_rule_confidence, 1.0);
}

TEST(MultiAttrTest, MinRuleConfidence) {
  MatrixBuilder b(3);
  for (int i = 0; i < 8; ++i) b.AddRow({0, 1, 2});
  b.AddRow({0});
  b.AddRow({0});
  const BinaryMatrix m = b.Build();
  ImplicationRuleSet rules;
  rules.Add({0, 1, 10, 2});  // conf 0.8
  rules.Add({1, 2, 8, 0});   // conf 1.0
  const auto groups = SummarizeRuleGroups(m, rules);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_DOUBLE_EQ(groups[0].min_rule_confidence, 0.8);
}

TEST(MultiAttrTest, LargeGroupsAreSkipped) {
  MatrixBuilder b(40);
  std::vector<ColumnId> all;
  for (ColumnId c = 0; c < 40; ++c) all.push_back(c);
  for (int i = 0; i < 3; ++i) b.AddRow(all);
  const BinaryMatrix m = b.Build();
  ImplicationRuleSet rules;
  for (ColumnId c = 0; c + 1 < 40; ++c) rules.Add({c, ColumnId(c + 1), 3, 0});
  MultiAttributeOptions o;
  o.max_exact_group = 16;
  const auto groups = SummarizeRuleGroups(m, rules, o);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].cohesion, -1.0);
}

TEST(MultiAttrTest, NewsTopicsFormCohesiveGroups) {
  NewsOptions gen;
  gen.num_docs = 2000;
  gen.num_topics = 5;
  gen.background_vocab = 500;
  const NewsData news = GenerateNews(gen);
  ImplicationMiningOptions o;
  o.min_confidence = 0.9;
  auto rules = MineImplications(news.matrix, o);
  ASSERT_TRUE(rules.ok());
  const auto groups = SummarizeRuleGroups(news.matrix, *rules);
  ASSERT_FALSE(groups.empty());
  // The largest group should contain at least one whole entity cluster
  // and have positive joint support (entities co-occur by construction).
  bool cluster_found = false;
  for (const auto& g : groups) {
    for (const auto& entities : news.entity_columns) {
      size_t members = 0;
      for (ColumnId e : entities) {
        members += std::count(g.columns.begin(), g.columns.end(), e) > 0;
      }
      if (members >= 2 && g.joint_support > 0) cluster_found = true;
    }
  }
  EXPECT_TRUE(cluster_found);
}

TEST(MultiAttrTest, EmptyRules) {
  const BinaryMatrix m = BinaryMatrix::FromRows(2, {{0, 1}});
  EXPECT_TRUE(SummarizeRuleGroups(m, ImplicationRuleSet()).empty());
}

}  // namespace
}  // namespace dmc
