// Randomized differential sweep: many small random matrices with random
// shapes/densities/thresholds, each checked across engines —
// batch / streaming / parallel DMC against the brute-force oracle.
// Complements property_test.cc's curated cases with breadth.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <span>
#include <sstream>
#include <string>

#include "baselines/bruteforce.h"
#include "core/engine.h"
#include "core/streaming_imp.h"
#include "core/streaming_sim.h"
#include "matrix/matrix_io.h"
#include "matrix/row_order.h"
#include "util/random.h"

namespace dmc {
namespace {

BinaryMatrix RandomMatrix(Rng& rng) {
  const uint32_t rows = 5 + static_cast<uint32_t>(rng.Uniform(120));
  const uint32_t cols = 2 + static_cast<uint32_t>(rng.Uniform(24));
  const double density = 0.03 + rng.UniformDouble() * 0.45;
  MatrixBuilder b(cols);
  std::vector<ColumnId> row;
  for (uint32_t r = 0; r < rows; ++r) {
    row.clear();
    for (ColumnId c = 0; c < cols; ++c) {
      if (rng.Bernoulli(density)) row.push_back(c);
    }
    b.AddRow(row);
  }
  return b.Build();
}

double RandomThreshold(Rng& rng) {
  // Mix exact rational thresholds with arbitrary ones.
  switch (rng.Uniform(4)) {
    case 0:
      return (1 + rng.Uniform(20)) / 20.0;  // 0.05 .. 1.00
    case 1:
      return 1.0;
    case 2:
      return 0.5 + rng.UniformDouble() * 0.5;
    default:
      return 0.05 + rng.UniformDouble() * 0.95;
  }
}

DmcPolicy RandomPolicy(Rng& rng) {
  DmcPolicy p;
  p.row_order = static_cast<RowOrderPolicy>(rng.Uniform(3));
  p.hundred_percent_phase = rng.Bernoulli(0.5);
  p.bitmap_fallback = rng.Bernoulli(0.5);
  p.memory_threshold_bytes = rng.Uniform(2048);
  p.bitmap_max_remaining_rows = rng.Uniform(80);
  p.column_density_pruning = rng.Bernoulli(0.5);
  p.max_hits_pruning = rng.Bernoulli(0.5);
  return p;
}

TEST(FuzzSweepTest, ImplicationsAcrossEnginesMatchOracle) {
  Rng rng(0xF122);
  for (int trial = 0; trial < 120; ++trial) {
    const BinaryMatrix m = RandomMatrix(rng);
    ImplicationMiningOptions o;
    o.min_confidence = RandomThreshold(rng);
    o.policy = RandomPolicy(rng);
    const auto truth = BruteForceImplications(m, o.min_confidence).Pairs();

    auto batch = MineImplications(m, o);
    ASSERT_TRUE(batch.ok());
    ASSERT_EQ(batch->Pairs(), truth) << "trial " << trial;

    const auto order = SortedByDensityOrder(m);
    auto streamed = StreamImplications(
        m.num_columns(), m.column_ones(), m.num_rows(), o,
        [&](auto&& sink) {
          for (RowId r : order) sink(m.Row(r));
        });
    ASSERT_TRUE(streamed.ok());
    ASSERT_EQ(streamed->Pairs(), truth) << "trial " << trial;

    ParallelOptions par;
    par.num_threads = 1 + static_cast<uint32_t>(rng.Uniform(4));
    auto parallel = MineImplicationsParallel(m, o, par);
    ASSERT_TRUE(parallel.ok());
    ASSERT_EQ(parallel->Pairs(), truth) << "trial " << trial;
  }
}

TEST(FuzzSweepTest, SimilaritiesAcrossEnginesMatchOracle) {
  Rng rng(0xF133);
  for (int trial = 0; trial < 120; ++trial) {
    const BinaryMatrix m = RandomMatrix(rng);
    SimilarityMiningOptions o;
    o.min_similarity = RandomThreshold(rng);
    o.policy = RandomPolicy(rng);
    const auto truth = BruteForceSimilarities(m, o.min_similarity).Pairs();

    auto batch = MineSimilarities(m, o);
    ASSERT_TRUE(batch.ok());
    ASSERT_EQ(batch->Pairs(), truth) << "trial " << trial;

    const auto order = DensityBucketOrder(m).order;
    auto streamed = StreamSimilarities(
        m.num_columns(), m.column_ones(), m.num_rows(), o,
        [&](auto&& sink) {
          for (RowId r : order) sink(m.Row(r));
        });
    ASSERT_TRUE(streamed.ok());
    ASSERT_EQ(streamed->Pairs(), truth) << "trial " << trial;

    ParallelOptions par;
    par.num_threads = 1 + static_cast<uint32_t>(rng.Uniform(4));
    auto parallel = MineSimilaritiesParallel(m, o, par);
    ASSERT_TRUE(parallel.ok());
    ASSERT_EQ(parallel->Pairs(), truth) << "trial " << trial;
  }
}

// A cancelling progress callback: returns false from invocation
// `cancel_after` onwards (sticky, thread-safe for the parallel miners).
struct Canceller {
  explicit Canceller(uint64_t cancel_after) : remaining(cancel_after) {}

  ProgressCallback Callback() {
    return [this](const ProgressUpdate&) {
      // fetch_sub on 0 wraps, so test-and-decrement in two steps.
      uint64_t cur = remaining.load(std::memory_order_relaxed);
      while (cur > 0 &&
             !remaining.compare_exchange_weak(cur, cur - 1,
                                              std::memory_order_relaxed)) {
      }
      if (cur == 0) {
        requested.store(true, std::memory_order_relaxed);
        return false;
      }
      return true;
    };
  }

  std::atomic<uint64_t> remaining;
  std::atomic<bool> requested{false};
};

// Cancels each engine at a random point in its progress stream. Either
// the engine got cancelled (clean kCancelled, no partial results) or it
// outran the cancellation and must still match the oracle exactly.
TEST(FuzzSweepTest, ImplicationCancellationAtRandomRowsIsClean) {
  Rng rng(0xF144);
  for (int trial = 0; trial < 40; ++trial) {
    const BinaryMatrix m = RandomMatrix(rng);
    ImplicationMiningOptions o;
    o.min_confidence = RandomThreshold(rng);
    o.policy = RandomPolicy(rng);
    o.policy.observe.progress_interval_rows = 1 + rng.Uniform(8);
    const uint64_t cancel_after = rng.Uniform(2 * m.num_rows() + 2);
    const auto truth = BruteForceImplications(m, o.min_confidence).Pairs();

    {
      Canceller cancel(cancel_after);
      o.policy.observe.progress = cancel.Callback();
      auto batch = MineImplications(m, o);
      if (batch.ok()) {
        EXPECT_EQ(batch->Pairs(), truth) << "trial " << trial;
      } else {
        EXPECT_EQ(batch.status().code(), StatusCode::kCancelled)
            << "trial " << trial << ": " << batch.status().message();
        EXPECT_TRUE(cancel.requested.load());
      }
    }
    {
      Canceller cancel(cancel_after);
      o.policy.observe.progress = cancel.Callback();
      const auto order = SortedByDensityOrder(m);
      auto streamed = StreamImplications(
          m.num_columns(), m.column_ones(), m.num_rows(), o,
          [&](auto&& sink) {
            for (RowId r : order) sink(m.Row(r));
          });
      if (streamed.ok()) {
        EXPECT_EQ(streamed->Pairs(), truth) << "trial " << trial;
      } else {
        EXPECT_EQ(streamed.status().code(), StatusCode::kCancelled)
            << "trial " << trial;
        EXPECT_TRUE(cancel.requested.load());
      }
    }
    {
      Canceller cancel(cancel_after);
      o.policy.observe.progress = cancel.Callback();
      ParallelOptions par;
      par.num_threads = 1 + static_cast<uint32_t>(rng.Uniform(4));
      auto parallel = MineImplicationsParallel(m, o, par);
      if (parallel.ok()) {
        EXPECT_EQ(parallel->Pairs(), truth) << "trial " << trial;
      } else {
        EXPECT_EQ(parallel.status().code(), StatusCode::kCancelled)
            << "trial " << trial;
        EXPECT_TRUE(cancel.requested.load());
      }
    }
  }
}

TEST(FuzzSweepTest, SimilarityCancellationAtRandomRowsIsClean) {
  Rng rng(0xF155);
  for (int trial = 0; trial < 40; ++trial) {
    const BinaryMatrix m = RandomMatrix(rng);
    SimilarityMiningOptions o;
    o.min_similarity = RandomThreshold(rng);
    o.policy = RandomPolicy(rng);
    o.policy.observe.progress_interval_rows = 1 + rng.Uniform(8);
    const uint64_t cancel_after = rng.Uniform(2 * m.num_rows() + 2);
    const auto truth = BruteForceSimilarities(m, o.min_similarity).Pairs();

    {
      Canceller cancel(cancel_after);
      o.policy.observe.progress = cancel.Callback();
      auto batch = MineSimilarities(m, o);
      if (batch.ok()) {
        EXPECT_EQ(batch->Pairs(), truth) << "trial " << trial;
      } else {
        EXPECT_EQ(batch.status().code(), StatusCode::kCancelled)
            << "trial " << trial;
        EXPECT_TRUE(cancel.requested.load());
      }
    }
    {
      Canceller cancel(cancel_after);
      o.policy.observe.progress = cancel.Callback();
      const auto order = DensityBucketOrder(m).order;
      auto streamed = StreamSimilarities(
          m.num_columns(), m.column_ones(), m.num_rows(), o,
          [&](auto&& sink) {
            for (RowId r : order) sink(m.Row(r));
          });
      if (streamed.ok()) {
        EXPECT_EQ(streamed->Pairs(), truth) << "trial " << trial;
      } else {
        EXPECT_EQ(streamed.status().code(), StatusCode::kCancelled)
            << "trial " << trial;
        EXPECT_TRUE(cancel.requested.load());
      }
    }
    {
      Canceller cancel(cancel_after);
      o.policy.observe.progress = cancel.Callback();
      ParallelOptions par;
      par.num_threads = 1 + static_cast<uint32_t>(rng.Uniform(4));
      auto parallel = MineSimilaritiesParallel(m, o, par);
      if (parallel.ok()) {
        EXPECT_EQ(parallel->Pairs(), truth) << "trial " << trial;
      } else {
        EXPECT_EQ(parallel.status().code(), StatusCode::kCancelled)
            << "trial " << trial;
        EXPECT_TRUE(cancel.requested.load());
      }
    }
  }
}

// Cancelling on the very first progress sample must cancel every engine
// deterministically (a row-level check always precedes completion on
// non-empty matrices).
TEST(FuzzSweepTest, ImmediateCancellationAlwaysCancels) {
  Rng rng(0xF166);
  const BinaryMatrix m = RandomMatrix(rng);
  ImplicationMiningOptions io;
  io.min_confidence = 0.8;
  io.policy.observe.progress_interval_rows = 1;
  io.policy.observe.progress = [](const ProgressUpdate&) { return false; };
  auto imp = MineImplications(m, io);
  ASSERT_FALSE(imp.ok());
  EXPECT_EQ(imp.status().code(), StatusCode::kCancelled);

  SimilarityMiningOptions so;
  so.min_similarity = 0.7;
  so.policy.observe = io.policy.observe;
  auto sim = MineSimilarities(m, so);
  ASSERT_FALSE(sim.ok());
  EXPECT_EQ(sim.status().code(), StatusCode::kCancelled);
}

// Applies `flips` random byte mutations (or a truncation) to `data`.
std::string Mutate(Rng& rng, std::string data) {
  if (data.empty() || rng.Bernoulli(0.3)) {
    return data.substr(0, rng.Uniform(data.size() + 1));
  }
  const uint32_t flips = 1 + static_cast<uint32_t>(rng.Uniform(4));
  for (uint32_t i = 0; i < flips; ++i) {
    const size_t pos = rng.Uniform(data.size());
    data[pos] = static_cast<char>(data[pos] ^ (1u << rng.Uniform(8)));
  }
  return data;
}

// Text reader/scanner fuzz: random truncations and bit flips must yield
// either a clean parse (a mutation can still be valid text) or a
// structured error naming the line — never a crash or a hang. When the
// strict reader accepts, the streaming scanner must agree with it.
TEST(FuzzSweepTest, TextReaderSurvivesRandomMutations) {
  Rng rng(0xF177);
  for (int trial = 0; trial < 300; ++trial) {
    const BinaryMatrix m = RandomMatrix(rng);
    std::ostringstream serialized;
    ASSERT_TRUE(WriteMatrixText(m, serialized).ok());
    const std::string mutated = Mutate(rng, serialized.str());

    std::istringstream read_in(mutated);
    const auto parsed = ReadMatrixText(read_in);
    std::istringstream count_in(mutated);
    uint64_t rows_streamed = 0;
    const Status streamed = ForEachRowText(
        count_in,
        [&rows_streamed](std::span<const ColumnId>) {
          ++rows_streamed;
          return Status::OK();
        });
    if (parsed.ok()) {
      EXPECT_TRUE(streamed.ok()) << "trial " << trial;
      EXPECT_EQ(rows_streamed, parsed->num_rows()) << "trial " << trial;
    } else {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument)
          << "trial " << trial << ": " << parsed.status().ToString();
      EXPECT_NE(parsed.status().message().find("line "), std::string::npos)
          << "trial " << trial << ": " << parsed.status().ToString();
      EXPECT_FALSE(streamed.ok()) << "trial " << trial;
    }
  }
}

// Binary reader fuzz: the checksummed container must reject every
// mutation that changes the bytes, with kDataLoss and row/byte context.
TEST(FuzzSweepTest, BinaryReaderSurvivesRandomMutations) {
  Rng rng(0xF188);
  for (int trial = 0; trial < 300; ++trial) {
    const BinaryMatrix m = RandomMatrix(rng);
    const std::string whole = SerializeMatrixBinary(m);
    const std::string mutated = Mutate(rng, whole);
    const auto parsed = ReadMatrixBinary(mutated);
    if (mutated == whole) {
      ASSERT_TRUE(parsed.ok()) << "trial " << trial;
      EXPECT_EQ(parsed->num_rows(), m.num_rows());
      EXPECT_EQ(parsed->num_columns(), m.num_columns());
      continue;
    }
    ASSERT_FALSE(parsed.ok())
        << "trial " << trial << ": corrupt input accepted";
    EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss)
        << "trial " << trial;
    const std::string& msg = parsed.status().message();
    EXPECT_TRUE(msg.find("row ") != std::string::npos ||
                msg.find("byte") != std::string::npos)
        << "trial " << trial << ": " << msg;
  }
}

TEST(FuzzSweepTest, DegenerateMatrices) {
  // All-zero, single-row, single-column, duplicate-row matrices.
  const std::vector<BinaryMatrix> cases = {
      BinaryMatrix::FromRows(3, {{}, {}, {}}),
      BinaryMatrix::FromRows(4, {{0, 1, 2, 3}}),
      BinaryMatrix::FromRows(1, {{0}, {0}, {0}}),
      BinaryMatrix::FromRows(2, {{0, 1}, {0, 1}, {0, 1}, {0, 1}}),
  };
  for (const auto& m : cases) {
    for (double t : {0.5, 1.0}) {
      ImplicationMiningOptions io;
      io.min_confidence = t;
      auto rules = MineImplications(m, io);
      ASSERT_TRUE(rules.ok());
      EXPECT_EQ(rules->Pairs(), BruteForceImplications(m, t).Pairs());
      SimilarityMiningOptions so;
      so.min_similarity = t;
      auto pairs = MineSimilarities(m, so);
      ASSERT_TRUE(pairs.ok());
      EXPECT_EQ(pairs->Pairs(), BruteForceSimilarities(m, t).Pairs());
    }
  }
}

}  // namespace
}  // namespace dmc
