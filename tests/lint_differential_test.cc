// Differential parity: the token-based dmc_lint v2 engine must
// reproduce the frozen v1 substring engine's verdicts for the eight
// original rules, byte for byte, over the real src/ tree and the
// non-regression fixture corpus. The regression fixtures are the one
// intended divergence: inputs where v1's scrubber misfires (raw
// strings, line-spliced comments) and v2 is clean.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "tools/lint_legacy.h"
#include "tools/lint_lib.h"

namespace dmc {
namespace lint {
namespace {

// The rules both engines implement; v2-only rules are filtered out
// before comparing.
const std::set<std::string>& LegacyRules() {
  static const std::set<std::string> kRules = {
      "include-guard",       "banned-rand",
      "banned-stdio",        "banned-file-stream",
      "banned-raw-unlink",   "banned-hot-path-map",
      "banned-ruleset-mutation", "discarded-status"};
  return kRules;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing file: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<Finding> Normalized(std::vector<Finding> findings) {
  findings.erase(
      std::remove_if(findings.begin(), findings.end(),
                     [](const Finding& f) {
                       return LegacyRules().count(f.rule) == 0;
                     }),
      findings.end());
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return findings;
}

std::string Render(const std::vector<Finding>& findings) {
  std::ostringstream os;
  for (const Finding& f : findings) os << FormatFinding(f) << "\n";
  return os.str();
}

// Every .h/.cc/.cpp under root, sorted; optionally skipping paths that
// contain `skip_substr`.
std::vector<std::string> SourceFiles(const std::string& root,
                                     const char* skip_substr) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : fs::recursive_directory_iterator(root, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string p = entry.path().string();
    const bool source = p.size() >= 3 && (p.compare(p.size() - 2, 2, ".h") ==
                                              0 ||
                                          p.compare(p.size() - 3, 3, ".cc") ==
                                              0 ||
                                          p.compare(p.size() - 4, 4,
                                                    ".cpp") == 0);
    if (!source) continue;
    if (skip_substr != nullptr &&
        p.find(skip_substr) != std::string::npos) {
      continue;
    }
    files.push_back(p);
  }
  std::sort(files.begin(), files.end());
  return files;
}

// Lints `files` with both engines, each using its own harvested
// Status-function registry, and compares the normalized verdicts.
void ExpectParity(const std::vector<std::string>& files) {
  ASSERT_FALSE(files.empty());
  std::vector<std::pair<std::string, std::string>> contents;
  std::set<std::string> v1_registry;
  std::set<std::string> v2_registry;
  for (const std::string& p : files) {
    contents.emplace_back(p, ReadFile(p));
    for (const auto& n : legacy::CollectStatusFunctions(contents.back().second))
      v1_registry.insert(n);
    for (const auto& n : CollectStatusFunctions(contents.back().second))
      v2_registry.insert(n);
  }
  EXPECT_EQ(v1_registry, v2_registry);
  std::vector<Finding> v1;
  std::vector<Finding> v2;
  for (const auto& [p, content] : contents) {
    for (auto& f : legacy::LintFile(p, content, v1_registry))
      v1.push_back(std::move(f));
    for (auto& f : LintFile(p, content, v2_registry))
      v2.push_back(std::move(f));
  }
  const auto n1 = Normalized(std::move(v1));
  const auto n2 = Normalized(std::move(v2));
  EXPECT_EQ(Render(n1), Render(n2));
}

TEST(LintDifferentialTest, SrcTreeParity) {
  ExpectParity(SourceFiles(std::string(DMC_SOURCE_DIR) + "/src", nullptr));
}

TEST(LintDifferentialTest, ToolsTreeParity) {
  // tools/ is exempt from the stdio/file-stream bans only in v2, so
  // compare the rules that apply identically by linting with both and
  // checking v2 never fires where v1 is also clean on the other rules.
  const auto files =
      SourceFiles(std::string(DMC_SOURCE_DIR) + "/tools", nullptr);
  ASSERT_FALSE(files.empty());
  for (const std::string& p : files) {
    const std::string content = ReadFile(p);
    auto v2 = LintFile(p, content, {});
    EXPECT_TRUE(v2.empty()) << p << ":\n" << Render(v2);
  }
}

TEST(LintDifferentialTest, FixtureCorpusParity) {
  ExpectParity(SourceFiles(std::string(DMC_TESTDATA_DIR) + "/lint",
                           "regression/"));
}

// The intended divergence: v1 misfires on the regression fixtures, v2
// does not. If v1 ever stops misfiring here, the fixture no longer
// exercises the blind spot — tighten it.
TEST(LintDifferentialTest, RegressionFixturesDivergeByDesign) {
  const auto files = SourceFiles(
      std::string(DMC_TESTDATA_DIR) + "/lint/regression", nullptr);
  ASSERT_EQ(files.size(), 2u);
  for (const std::string& p : files) {
    const std::string content = ReadFile(p);
    const auto v1 = legacy::LintFile(p, content, {});
    EXPECT_FALSE(v1.empty()) << p << ": v1 no longer misfires";
    const auto v2 = LintFile(p, content, {});
    EXPECT_TRUE(v2.empty()) << p << ":\n" << Render(v2);
  }
}

// The scrubbers agree wherever v1 was correct: on splice- and
// raw-string-free input the outputs are byte-identical.
TEST(LintDifferentialTest, ScrubberParityOnPlainInput) {
  const auto files =
      SourceFiles(std::string(DMC_SOURCE_DIR) + "/src", nullptr);
  size_t compared = 0;
  for (const std::string& p : files) {
    const std::string content = ReadFile(p);
    if (content.find("R\"") != std::string::npos) continue;
    if (content.find("\\\n") != std::string::npos) continue;
    // Digit separators and encoding prefixes also confused v1's
    // scrubber; skip those files too (none in src/ today).
    bool has_separator = false;
    for (size_t i = 0; i + 1 < content.size(); ++i) {
      if (content[i] >= '0' && content[i] <= '9' && content[i + 1] == '\'') {
        has_separator = true;
        break;
      }
    }
    if (has_separator || content.find("u8\"") != std::string::npos) continue;
    EXPECT_EQ(legacy::ScrubSource(content), ScrubSource(content)) << p;
    ++compared;
  }
  EXPECT_GT(compared, 20u);
}

}  // namespace
}  // namespace lint
}  // namespace dmc
