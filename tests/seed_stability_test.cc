// Seed-stability sweep: every engine, run twice with the same seed and
// inputs, must produce byte-identical serialized rule sets and identical
// byte accounting (peak_counter_bytes). Catches nondeterminism
// regressions — hash-container iteration order, uninitialized reads,
// time-dependent tie-breaks — before they poison goldens.

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/external_miner.h"
#include "core/parallel_dmc.h"
#include "core/streaming_imp.h"
#include "core/streaming_sim.h"
#include "incr/incr_miner.h"
#include "matrix/binary_matrix.h"
#include "matrix/matrix_io.h"
#include "rules/rule_index.h"
#include "util/random.h"

namespace dmc {
namespace {

constexpr double kConf = 0.85;
constexpr double kSim = 0.6;

BinaryMatrix RandomMatrix(uint64_t seed, uint32_t rows, uint32_t cols,
                          double density) {
  Rng rng(seed);
  MatrixBuilder b(cols);
  std::vector<ColumnId> row;
  for (uint32_t r = 0; r < rows; ++r) {
    row.clear();
    for (ColumnId c = 0; c < cols; ++c) {
      if (rng.Bernoulli(density)) row.push_back(c);
    }
    b.AddRow(row);
  }
  return b.Build();
}

std::string PrintImp(const ImplicationRuleSet& rules) {
  std::ostringstream os;
  ImplicationRuleSet sorted = rules;
  sorted.Canonicalize();
  sorted.Print(os);
  return os.str();
}

std::string PrintSim(const SimilarityRuleSet& pairs) {
  std::ostringstream os;
  SimilarityRuleSet sorted = pairs;
  sorted.Canonicalize();
  sorted.Print(os);
  return os.str();
}

TEST(SeedStabilityTest, BatchEnginesAreRunToRunIdentical) {
  const BinaryMatrix m = RandomMatrix(101, 80, 16, 0.3);
  std::string imp_text;
  size_t imp_peak = 0;
  std::string sim_text;
  size_t sim_peak = 0;
  for (int run = 0; run < 2; ++run) {
    ImplicationMiningOptions io;
    io.min_confidence = kConf;
    MiningStats is;
    auto rules = MineImplications(m, io, &is);
    ASSERT_TRUE(rules.ok());
    SimilarityMiningOptions so;
    so.min_similarity = kSim;
    MiningStats ss;
    auto pairs = MineSimilarities(m, so, &ss);
    ASSERT_TRUE(pairs.ok());
    if (run == 0) {
      imp_text = PrintImp(*rules);
      imp_peak = is.peak_counter_bytes;
      sim_text = PrintSim(*pairs);
      sim_peak = ss.peak_counter_bytes;
    } else {
      EXPECT_EQ(PrintImp(*rules), imp_text);
      EXPECT_EQ(is.peak_counter_bytes, imp_peak);
      EXPECT_EQ(PrintSim(*pairs), sim_text);
      EXPECT_EQ(ss.peak_counter_bytes, sim_peak);
    }
  }
}

TEST(SeedStabilityTest, ParallelEnginesAreRunToRunIdentical) {
  const BinaryMatrix m = RandomMatrix(102, 70, 14, 0.35);
  ParallelOptions popt;
  popt.num_threads = 2;
  std::string imp_text;
  size_t imp_sum = 0, imp_max = 0;
  std::string sim_text;
  for (int run = 0; run < 2; ++run) {
    ImplicationMiningOptions io;
    io.min_confidence = kConf;
    ParallelMiningStats is;
    auto rules = MineImplicationsParallel(m, io, popt, &is);
    ASSERT_TRUE(rules.ok());
    SimilarityMiningOptions so;
    so.min_similarity = kSim;
    auto pairs = MineSimilaritiesParallel(m, so, popt);
    ASSERT_TRUE(pairs.ok());
    if (run == 0) {
      imp_text = PrintImp(*rules);
      imp_sum = is.sum_peak_counter_bytes;
      imp_max = is.max_peak_counter_bytes;
      sim_text = PrintSim(*pairs);
    } else {
      EXPECT_EQ(PrintImp(*rules), imp_text);
      EXPECT_EQ(is.sum_peak_counter_bytes, imp_sum);
      EXPECT_EQ(is.max_peak_counter_bytes, imp_max);
      EXPECT_EQ(PrintSim(*pairs), sim_text);
    }
  }
}

TEST(SeedStabilityTest, StreamingDriversAreRunToRunIdentical) {
  const BinaryMatrix m = RandomMatrix(103, 60, 12, 0.4);
  const auto replay = [&m](auto&& sink) {
    for (RowId r = 0; r < m.num_rows(); ++r) sink(m.Row(r));
  };
  std::string imp_text;
  std::string sim_text;
  for (int run = 0; run < 2; ++run) {
    ImplicationMiningOptions io;
    io.min_confidence = kConf;
    auto rules = StreamImplications(m.num_columns(), m.column_ones(),
                                    m.num_rows(), io, replay);
    ASSERT_TRUE(rules.ok());
    SimilarityMiningOptions so;
    so.min_similarity = kSim;
    auto pairs = StreamSimilarities(m.num_columns(), m.column_ones(),
                                    m.num_rows(), so, replay);
    ASSERT_TRUE(pairs.ok());
    if (run == 0) {
      imp_text = PrintImp(*rules);
      sim_text = PrintSim(*pairs);
    } else {
      EXPECT_EQ(PrintImp(*rules), imp_text);
      EXPECT_EQ(PrintSim(*pairs), sim_text);
    }
  }
}

TEST(SeedStabilityTest, ExternalMinerIsRunToRunIdentical) {
  const BinaryMatrix m = RandomMatrix(104, 50, 10, 0.35);
  const auto dir = std::filesystem::temp_directory_path() / "dmc_seed_ext";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "input.txt").string();
  ASSERT_TRUE(WriteMatrixTextFile(m, path).ok());
  std::string imp_text;
  for (int run = 0; run < 2; ++run) {
    ImplicationMiningOptions io;
    io.min_confidence = kConf;
    auto rules = MineImplicationsFromFile(path, io, dir.string());
    ASSERT_TRUE(rules.ok()) << rules.status();
    if (run == 0) {
      imp_text = PrintImp(*rules);
    } else {
      EXPECT_EQ(PrintImp(*rules), imp_text);
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(SeedStabilityTest, IncrementalMinerIsRunToRunIdentical) {
  const BinaryMatrix m = RandomMatrix(105, 90, 15, 0.3);
  const uint32_t batch = 17;  // deliberately not a divisor of 90
  std::string imp_text;
  std::string sim_text;
  size_t imp_bytes = 0;
  std::string index_image;
  for (int run = 0; run < 2; ++run) {
    ImplicationMiningOptions io;
    io.min_confidence = kConf;
    IncrementalImplicationMiner imp(io);
    SimilarityMiningOptions so;
    so.min_similarity = kSim;
    IncrementalSimilarityMiner sim(so);
    for (uint32_t start = 0; start < m.num_rows(); start += batch) {
      const uint32_t n = std::min(batch, m.num_rows() - start);
      MatrixBuilder b(m.num_columns());
      for (uint32_t r = start; r < start + n; ++r) {
        const auto row = m.Row(r);
        b.AddRow(std::vector<ColumnId>(row.begin(), row.end()));
      }
      const BinaryMatrix delta = b.Build();
      ASSERT_TRUE(imp.AppendBatch(delta).ok());
      ASSERT_TRUE(sim.AppendBatch(delta).ok());
    }
    const std::string image =
        RuleIndexSnapshot::Build(imp.rules(), 1)->Serialize();
    if (run == 0) {
      imp_text = PrintImp(imp.rules());
      sim_text = PrintSim(sim.pairs());
      imp_bytes = imp.MemoryBytes();
      index_image = image;
    } else {
      EXPECT_EQ(PrintImp(imp.rules()), imp_text);
      EXPECT_EQ(PrintSim(sim.pairs()), sim_text);
      EXPECT_EQ(imp.MemoryBytes(), imp_bytes);
      EXPECT_EQ(image, index_image);
    }
  }
}

}  // namespace
}  // namespace dmc
