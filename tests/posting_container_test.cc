// Differential battery for the hybrid posting container: every operation
// is checked against a sorted std::vector<uint32_t> oracle, across random
// densities that force all three chunk formats (array / bitmap / run),
// chunk-boundary ids, and empty/full chunks.

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "postings/posting_container.h"
#include "util/random.h"

namespace dmc {
namespace {

using Ids = std::vector<uint32_t>;

Ids OracleIntersect(const Ids& a, const Ids& b) {
  Ids out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

Ids OracleUnion(const Ids& a, const Ids& b) {
  Ids out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

// Random sorted set over [0, universe) with per-region behavior chosen to
// exercise all formats: sparse scatter (arrays), dense scatter (bitmaps),
// and long contiguous stretches (runs).
Ids RandomSet(Rng& rng, uint32_t universe) {
  Ids out;
  uint32_t id = 0;
  while (id < universe) {
    const uint64_t mode = rng.Uniform(3);
    const uint32_t region = static_cast<uint32_t>(
        std::min<uint64_t>(universe - id, 1000 + rng.Uniform(40000)));
    if (mode == 0) {  // sparse
      for (uint32_t v = id; v < id + region; ++v) {
        if (rng.Bernoulli(0.01)) out.push_back(v);
      }
    } else if (mode == 1) {  // dense scatter
      for (uint32_t v = id; v < id + region; ++v) {
        if (rng.Bernoulli(0.5)) out.push_back(v);
      }
    } else {  // runs: alternate solid/empty stretches
      uint32_t v = id;
      while (v < id + region) {
        const uint32_t len = static_cast<uint32_t>(1 + rng.Uniform(500));
        const bool solid = rng.Bernoulli(0.5);
        for (uint32_t w = v; w < std::min(id + region, v + len); ++w) {
          if (solid) out.push_back(w);
        }
        v += len;
      }
    }
    id += region;
  }
  return out;
}

TEST(PostingContainerTest, EmptyContainer) {
  PostingContainer p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.cardinality(), 0u);
  EXPECT_FALSE(p.Contains(0));
  EXPECT_TRUE(p.ToVector().empty());
  PostingContainer q;
  EXPECT_EQ(p.IntersectCount(q), 0u);
  EXPECT_EQ(p.SuffixIntersectCount(0, q, 0), 0u);
  EXPECT_TRUE(p == q);
  EXPECT_EQ(p.LogicalBytes(), 0u);
}

TEST(PostingContainerTest, RoundTripAcrossChunkBoundaries) {
  const Ids ids = {0,      1,      65534,  65535,  65536,
                   65537,  131071, 131072, 262144, 4000000};
  const PostingContainer p = PostingContainer::FromSorted(ids);
  EXPECT_EQ(p.ToVector(), ids);
  EXPECT_EQ(p.cardinality(), ids.size());
  for (const uint32_t id : ids) EXPECT_TRUE(p.Contains(id));
  EXPECT_FALSE(p.Contains(2));
  EXPECT_FALSE(p.Contains(65533));
  EXPECT_FALSE(p.Contains(131073));
  for (size_t k = 0; k < ids.size(); ++k) EXPECT_EQ(p.Select(k), ids[k]);
}

TEST(PostingContainerTest, FullChunkBecomesRun) {
  Ids ids(PostingContainer::kChunkSpan);
  for (uint32_t i = 0; i < ids.size(); ++i) ids[i] = i;
  const PostingContainer p = PostingContainer::FromSorted(ids);
  EXPECT_EQ(p.cardinality(), PostingContainer::kChunkSpan);
  const auto fc = p.ChunkFormats();
  EXPECT_EQ(fc.run, 1u);
  EXPECT_EQ(fc.array + fc.bitmap, 0u);
  // One run costs 4 bytes + the chunk header.
  EXPECT_EQ(p.LogicalBytes(), PostingContainer::kChunkHeaderBytes + 4u);
  EXPECT_EQ(p.ToVector(), ids);
}

TEST(PostingContainerTest, FormatSelectionMatchesDensity) {
  Rng rng(7);
  // Sparse chunk -> array.
  Ids sparse;
  for (uint32_t v = 0; v < 65536; v += 97) sparse.push_back(v);
  EXPECT_EQ(PostingContainer::FromSorted(sparse).ChunkFormats().array, 1u);
  // Dense scatter chunk -> bitmap (adjacent pairs break runs).
  Ids dense;
  for (uint32_t v = 0; v < 65536; ++v) {
    if (rng.Bernoulli(0.5)) dense.push_back(v);
  }
  EXPECT_EQ(PostingContainer::FromSorted(dense).ChunkFormats().bitmap, 1u);
  // A few solid blocks -> run.
  Ids runs;
  for (uint32_t v = 10000; v < 30000; ++v) runs.push_back(v);
  for (uint32_t v = 40000; v < 60000; ++v) runs.push_back(v);
  EXPECT_EQ(PostingContainer::FromSorted(runs).ChunkFormats().run, 1u);
}

TEST(PostingContainerTest, AppendAfterSealExtendsRuns) {
  Ids block;
  for (uint32_t v = 0; v < 20000; ++v) block.push_back(v);
  PostingContainer p = PostingContainer::FromSorted(block);
  ASSERT_EQ(p.ChunkFormats().run, 1u);
  // Adjacent append extends the final run; a gap starts a new one.
  p.Append(20000);
  p.Append(30000);
  p.Append(70000);  // new chunk; previous chunk reseals
  Ids want = block;
  want.push_back(20000);
  want.push_back(30000);
  want.push_back(70000);
  EXPECT_EQ(p.ToVector(), want);
  EXPECT_TRUE(p.Contains(30000));
  EXPECT_FALSE(p.Contains(29999));
}

TEST(PostingContainerTest, EqualityAndHashAreFormatIndependent) {
  Ids ids;
  for (uint32_t v = 100; v < 5000; ++v) ids.push_back(v);
  // Sealed (run format) vs append-only (array upgraded to bitmap mid-way
  // but never sealed) must compare and hash equal.
  const PostingContainer sealed = PostingContainer::FromSorted(ids);
  PostingContainer grown;
  grown.AppendSorted(ids);
  EXPECT_TRUE(sealed == grown);
  EXPECT_EQ(sealed.Hash(), grown.Hash());
  grown.Append(5000);
  EXPECT_TRUE(sealed != grown);
}

TEST(PostingContainerTest, FuzzAgainstVectorOracle) {
  Rng rng(42);
  for (int iter = 0; iter < 30; ++iter) {
    const uint32_t universe =
        static_cast<uint32_t>(20000 + rng.Uniform(250000));
    const Ids a = RandomSet(rng, universe);
    const Ids b = RandomSet(rng, universe);
    const PostingContainer pa = PostingContainer::FromSorted(a);
    const PostingContainer pb = PostingContainer::FromSorted(b);

    ASSERT_EQ(pa.ToVector(), a) << "iter=" << iter;
    ASSERT_EQ(pb.ToVector(), b) << "iter=" << iter;

    const Ids want_and = OracleIntersect(a, b);
    ASSERT_EQ(pa.IntersectCount(pb), want_and.size()) << "iter=" << iter;
    ASSERT_EQ(pb.IntersectCount(pa), want_and.size()) << "iter=" << iter;
    ASSERT_EQ(pa.AndNotCount(pb), a.size() - want_and.size())
        << "iter=" << iter;
    ASSERT_EQ(pa.Intersect(pb).ToVector(), want_and) << "iter=" << iter;
    ASSERT_EQ(pa.Union(pb).ToVector(), OracleUnion(a, b)) << "iter=" << iter;

    // Random membership probes.
    for (int probe = 0; probe < 200; ++probe) {
      const uint32_t id = static_cast<uint32_t>(rng.Uniform(universe));
      ASSERT_EQ(pa.Contains(id),
                std::binary_search(a.begin(), a.end(), id))
          << "iter=" << iter << " id=" << id;
    }
    if (!a.empty()) {
      const uint64_t k = rng.Uniform(a.size());
      ASSERT_EQ(pa.Select(k), a[k]) << "iter=" << iter;
    }

    // Suffix intersections at random index boundaries (the incremental
    // miner's access pattern), including out-of-range skips.
    for (int probe = 0; probe < 20; ++probe) {
      const uint64_t sa = rng.Uniform(a.size() + 2);
      const uint64_t sb = rng.Uniform(b.size() + 2);
      Ids suf_a(a.begin() + std::min<size_t>(sa, a.size()), a.end());
      Ids suf_b(b.begin() + std::min<size_t>(sb, b.size()), b.end());
      ASSERT_EQ(pa.SuffixIntersectCount(sa, pb, sb),
                OracleIntersect(suf_a, suf_b).size())
          << "iter=" << iter << " sa=" << sa << " sb=" << sb;
    }
  }
}

TEST(PostingContainerTest, FuzzEqualityAndConversionStability) {
  Rng rng(99);
  for (int iter = 0; iter < 20; ++iter) {
    const Ids a = RandomSet(rng, 150000);
    PostingContainer grown;
    grown.AppendSorted(a);
    PostingContainer sealed = grown;
    sealed.Optimize();
    sealed.Optimize();  // idempotent
    ASSERT_EQ(sealed.ToVector(), a);
    ASSERT_TRUE(sealed == grown);
    ASSERT_EQ(sealed.Hash(), grown.Hash());
    ASSERT_EQ(sealed.LogicalBytes() <= grown.LogicalBytes(), true)
        << "sealing must never increase the logical cost";
    ASSERT_EQ(sealed.cardinality(), a.size());
  }
}

// The eviction primitives (Rank / IntersectCountBelow /
// EvictBelowAndShift) against the vector oracle, with bounds placed on
// chunk boundaries and mid-chunk, plus 0 and past-the-end.
TEST(PostingContainerTest, FuzzEvictionPrimitivesAgainstOracle) {
  Rng rng(1234);
  for (int iter = 0; iter < 20; ++iter) {
    const uint32_t universe =
        static_cast<uint32_t>(20000 + rng.Uniform(250000));
    const Ids a = RandomSet(rng, universe);
    const Ids b = RandomSet(rng, universe);
    const PostingContainer pa = PostingContainer::FromSorted(a);
    const PostingContainer pb = PostingContainer::FromSorted(b);

    std::vector<uint32_t> bounds = {0, 1, 65535, 65536, 65537,
                                    universe, universe + 10};
    for (int probe = 0; probe < 12; ++probe) {
      bounds.push_back(static_cast<uint32_t>(rng.Uniform(universe + 1)));
    }
    for (const uint32_t bound : bounds) {
      const size_t below = static_cast<size_t>(
          std::lower_bound(a.begin(), a.end(), bound) - a.begin());
      ASSERT_EQ(pa.Rank(bound), below) << "iter=" << iter
                                       << " bound=" << bound;
      // IntersectCountBelow(hi, b) counts this ∩ b over ids < hi.
      Ids pre_a(a.begin(), a.begin() + below);
      Ids pre_b(b.begin(), std::lower_bound(b.begin(), b.end(), bound));
      ASSERT_EQ(pa.IntersectCountBelow(bound, pb),
                OracleIntersect(pre_a, pre_b).size())
          << "iter=" << iter << " bound=" << bound;

      PostingContainer evicted = pa;
      evicted.EvictBelowAndShift(bound);
      Ids want;
      for (size_t k = below; k < a.size(); ++k) want.push_back(a[k] - bound);
      ASSERT_EQ(evicted.ToVector(), want) << "iter=" << iter
                                          << " bound=" << bound;
      ASSERT_EQ(evicted.cardinality(), want.size());
      // Memory accounting must match a fresh append of the shifted ids —
      // the windowed miner's byte-parity invariant rests on this.
      PostingContainer fresh;
      for (const uint32_t id : want) fresh.Append(id);
      ASSERT_TRUE(evicted == fresh);
      ASSERT_EQ(evicted.MemoryBytes(), fresh.MemoryBytes())
          << "iter=" << iter << " bound=" << bound;
    }
  }
}

TEST(PostingContainerTest, EvictionPrimitiveEdgeCases) {
  PostingContainer empty;
  EXPECT_EQ(empty.Rank(0), 0u);
  EXPECT_EQ(empty.Rank(1 << 20), 0u);
  EXPECT_EQ(empty.IntersectCountBelow(1 << 20, empty), 0u);
  empty.EvictBelowAndShift(12345);
  EXPECT_TRUE(empty.empty());

  // Evicting everything leaves a container byte-equal to a fresh one.
  const Ids three = {5, 10, 70000};
  PostingContainer p = PostingContainer::FromSorted(three);
  p.EvictBelowAndShift(70001);
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.MemoryBytes(), PostingContainer().MemoryBytes());

  // Evicting nothing (bound 0) is an identity on contents.
  PostingContainer q = PostingContainer::FromSorted(three);
  q.EvictBelowAndShift(0);
  EXPECT_EQ(q.ToVector(), three);
}

TEST(PostingContainerTest, LogicalBytesFollowsCostModel) {
  // 10 ids in one chunk: array = 20 bytes of data.
  Ids few = {1, 5, 9, 100, 2000, 3000, 40000, 50000, 60000, 65535};
  EXPECT_EQ(PostingContainer::FromSorted(few).LogicalBytes(),
            PostingContainer::kChunkHeaderBytes + 20u);
  // BitmapCostBytes is the dense bound used by the counter table.
  EXPECT_EQ(PostingContainer::BitmapCostBytes(64),
            PostingContainer::kChunkHeaderBytes + 8u);
  EXPECT_EQ(PostingContainer::BitmapCostBytes(65536),
            PostingContainer::kChunkHeaderBytes + 8192u);
}

}  // namespace
}  // namespace dmc
