// Differential battery for sliding-window mining: for every tested
// (workload, append/evict-schedule, kernel, rule-type) tuple the
// windowed state after EVERY operation must be byte-identical to a
// fresh mine of the current window contents — rules AND memory
// accounting (a fresh incremental miner fed the window in one batch
// must report the same MemoryBytes, proving the eviction path leaves no
// layout residue). Schedules include empty evictions, total evictions,
// overlapping evict-then-append interleavings, windows shrinking to
// zero and regrowing, and batches that widen the column space before an
// eviction. The sweep runs >= 200 random schedules across all merge
// kernels for both rule types.

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/kernels.h"
#include "incr/incr_miner.h"
#include "incr/window_miner.h"
#include "matrix/binary_matrix.h"
#include "observe/metrics.h"
#include "util/random.h"

namespace dmc {
namespace {

std::string PrintImp(const ImplicationRuleSet& rules) {
  std::ostringstream os;
  rules.Print(os);
  return os.str();
}

std::string PrintSim(const SimilarityRuleSet& pairs) {
  std::ostringstream os;
  pairs.Print(os);
  return os.str();
}

const MergeKernel kAllKernels[] = {MergeKernel::kLegacy, MergeKernel::kScalar,
                                   MergeKernel::kSimd, MergeKernel::kAuto};

ImplicationRuleSet BatchImp(const BinaryMatrix& m, double conf,
                            MergeKernel kernel) {
  ImplicationMiningOptions o;
  o.min_confidence = conf;
  o.policy.kernel = kernel;
  auto rules = MineImplications(m, o);
  EXPECT_TRUE(rules.ok()) << rules.status();
  ImplicationRuleSet out =
      rules.ok() ? std::move(*rules) : ImplicationRuleSet();
  out.Canonicalize();
  return out;
}

SimilarityRuleSet BatchSim(const BinaryMatrix& m, double sim,
                           MergeKernel kernel) {
  SimilarityMiningOptions o;
  o.min_similarity = sim;
  o.policy.kernel = kernel;
  auto pairs = MineSimilarities(m, o);
  EXPECT_TRUE(pairs.ok()) << pairs.status();
  SimilarityRuleSet out =
      pairs.ok() ? std::move(*pairs) : SimilarityRuleSet();
  out.Canonicalize();
  return out;
}

// One step of an append/evict schedule.
struct WindowOp {
  enum Kind { kAppend, kEvict } kind;
  // kAppend: the rows to add. kEvict: `count` oldest rows to drop.
  std::vector<std::vector<ColumnId>> rows;
  uint32_t count = 0;
};

// A deterministic random interleaving of appends and evictions.
// Evictions are drawn over [0, live] inclusive, so empty and total
// evictions (window shrinking to zero) occur regularly, and appends
// after a total eviction regrow the window.
std::vector<WindowOp> RandomSchedule(uint64_t seed, uint32_t num_ops,
                                     ColumnId cols, double density,
                                     double zero_row_prob) {
  Rng rng(seed);
  std::vector<WindowOp> ops;
  uint32_t live = 0;
  for (uint32_t i = 0; i < num_ops; ++i) {
    // Bias toward appends so the window actually holds rows to evict.
    const bool evict = live > 0 && rng.Bernoulli(0.4);
    WindowOp op;
    if (evict) {
      op.kind = WindowOp::kEvict;
      op.count = static_cast<uint32_t>(rng.Uniform(live + 1));  // 0..live
      live -= op.count;
    } else {
      op.kind = WindowOp::kAppend;
      const uint32_t n = static_cast<uint32_t>(rng.Uniform(9));  // 0..8
      for (uint32_t r = 0; r < n; ++r) {
        std::vector<ColumnId> row;
        if (!rng.Bernoulli(zero_row_prob)) {
          for (ColumnId c = 0; c < cols; ++c) {
            if (rng.Bernoulli(density)) row.push_back(c);
          }
        }
        op.rows.push_back(std::move(row));
      }
      live += n;
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

// The oracle window: surviving rows in arrival order.
class OracleWindow {
 public:
  void Append(const std::vector<std::vector<ColumnId>>& rows) {
    rows_.insert(rows_.end(), rows.begin(), rows.end());
  }
  void Evict(uint32_t k) { rows_.erase(rows_.begin(), rows_.begin() + k); }
  size_t size() const { return rows_.size(); }

  BinaryMatrix Matrix(ColumnId width) const {
    return BinaryMatrix::FromRows(width, rows_);
  }

 private:
  std::vector<std::vector<ColumnId>> rows_;
};

BinaryMatrix RowsMatrix(const std::vector<std::vector<ColumnId>>& rows,
                        ColumnId width) {
  return BinaryMatrix::FromRows(width, rows);
}

struct WindowCase {
  uint32_t num_ops;
  ColumnId cols;
  double density;
  double threshold;
  uint64_t seed;
  double zero_row_prob;
  uint32_t schedules;  // random schedules derived from `seed`
};

class WindowDifferentialTest : public ::testing::TestWithParam<WindowCase> {};

// After every operation, rules and MemoryBytes must equal a fresh mine
// of the window contents at the miner's (sticky) width.
TEST_P(WindowDifferentialTest, ImplicationsMatchFreshWindowMine) {
  const WindowCase& c = GetParam();
  for (uint32_t s = 0; s < c.schedules; ++s) {
    const std::vector<WindowOp> ops = RandomSchedule(
        c.seed * 1009 + s, c.num_ops, c.cols, c.density, c.zero_row_prob);
    for (const MergeKernel kernel : kAllKernels) {
      ImplicationMiningOptions o;
      o.min_confidence = c.threshold;
      o.policy.kernel = kernel;
      IncrementalImplicationMiner miner(o);
      OracleWindow window;
      for (size_t i = 0; i < ops.size(); ++i) {
        const WindowOp& op = ops[i];
        if (op.kind == WindowOp::kAppend) {
          ASSERT_TRUE(
              miner.AppendBatch(RowsMatrix(op.rows, c.cols)).ok());
          window.Append(op.rows);
        } else {
          ASSERT_TRUE(miner.EvictBatch(op.count).ok());
          window.Evict(op.count);
        }
        ASSERT_EQ(miner.num_rows(), window.size());
        const BinaryMatrix contents = window.Matrix(miner.num_columns());
        EXPECT_EQ(miner.rules().rules(),
                  BatchImp(contents, c.threshold, kernel).rules())
            << "schedule=" << s << " op=" << i
            << " kernel=" << KernelName(kernel);
        IncrementalImplicationMiner fresh(o);
        ASSERT_TRUE(fresh.AppendBatch(contents).ok());
        EXPECT_EQ(miner.MemoryBytes(), fresh.MemoryBytes())
            << "schedule=" << s << " op=" << i
            << " kernel=" << KernelName(kernel);
      }
    }
  }
}

TEST_P(WindowDifferentialTest, SimilaritiesMatchFreshWindowMine) {
  const WindowCase& c = GetParam();
  for (uint32_t s = 0; s < c.schedules; ++s) {
    const std::vector<WindowOp> ops = RandomSchedule(
        c.seed * 2003 + s, c.num_ops, c.cols, c.density, c.zero_row_prob);
    for (const MergeKernel kernel : kAllKernels) {
      SimilarityMiningOptions o;
      o.min_similarity = c.threshold;
      o.policy.kernel = kernel;
      IncrementalSimilarityMiner miner(o);
      OracleWindow window;
      for (size_t i = 0; i < ops.size(); ++i) {
        const WindowOp& op = ops[i];
        if (op.kind == WindowOp::kAppend) {
          ASSERT_TRUE(
              miner.AppendBatch(RowsMatrix(op.rows, c.cols)).ok());
          window.Append(op.rows);
        } else {
          ASSERT_TRUE(miner.EvictBatch(op.count).ok());
          window.Evict(op.count);
        }
        ASSERT_EQ(miner.num_rows(), window.size());
        const BinaryMatrix contents = window.Matrix(miner.num_columns());
        EXPECT_EQ(miner.pairs().pairs(),
                  BatchSim(contents, c.threshold, kernel).pairs())
            << "schedule=" << s << " op=" << i
            << " kernel=" << KernelName(kernel);
        IncrementalSimilarityMiner fresh(o);
        ASSERT_TRUE(fresh.AppendBatch(contents).ok());
        EXPECT_EQ(miner.MemoryBytes(), fresh.MemoryBytes())
            << "schedule=" << s << " op=" << i
            << " kernel=" << KernelName(kernel);
      }
    }
  }
}

// Seed stability: replaying the same schedule must reproduce the exact
// same printed rule set, byte for byte.
TEST_P(WindowDifferentialTest, SchedulesAreSeedStable) {
  const WindowCase& c = GetParam();
  const std::vector<WindowOp> ops = RandomSchedule(
      c.seed * 4001, c.num_ops, c.cols, c.density, c.zero_row_prob);
  std::string first_imp;
  std::string first_sim;
  for (int pass = 0; pass < 2; ++pass) {
    ImplicationMiningOptions io;
    io.min_confidence = c.threshold;
    IncrementalImplicationMiner imp(io);
    SimilarityMiningOptions so;
    so.min_similarity = c.threshold;
    IncrementalSimilarityMiner sim(so);
    for (const WindowOp& op : ops) {
      if (op.kind == WindowOp::kAppend) {
        ASSERT_TRUE(imp.AppendBatch(RowsMatrix(op.rows, c.cols)).ok());
        ASSERT_TRUE(sim.AppendBatch(RowsMatrix(op.rows, c.cols)).ok());
      } else {
        ASSERT_TRUE(imp.EvictBatch(op.count).ok());
        ASSERT_TRUE(sim.EvictBatch(op.count).ok());
      }
    }
    if (pass == 0) {
      first_imp = PrintImp(imp.rules());
      first_sim = PrintSim(sim.pairs());
    } else {
      EXPECT_EQ(PrintImp(imp.rules()), first_imp);
      EXPECT_EQ(PrintSim(sim.pairs()), first_sim);
    }
  }
}

// 25 workloads x `schedules` random schedules each = 200 schedules,
// every one swept across all four kernels for both rule types.
INSTANTIATE_TEST_SUITE_P(
    Sweep, WindowDifferentialTest,
    ::testing::Values(
        WindowCase{12, 8, 0.3, 0.9, 101, 0.0, 8},
        WindowCase{14, 10, 0.25, 0.9, 102, 0.0, 8},
        WindowCase{10, 12, 0.35, 0.8, 103, 0.1, 8},
        WindowCase{16, 6, 0.5, 0.7, 104, 0.0, 8},
        WindowCase{12, 16, 0.15, 0.95, 105, 0.0, 8},
        WindowCase{18, 10, 0.3, 0.7, 106, 0.05, 8},
        WindowCase{10, 6, 0.6, 0.5, 107, 0.0, 8},
        WindowCase{14, 20, 0.1, 1.0, 108, 0.2, 8},   // exact threshold
        WindowCase{12, 15, 0.4, 0.85, 109, 0.0, 8},
        WindowCase{20, 8, 0.35, 0.75, 110, 0.0, 8},
        WindowCase{8, 10, 0.45, 0.6, 111, 0.1, 8},
        WindowCase{16, 12, 0.2, 0.9, 112, 0.0, 8},
        WindowCase{12, 9, 0.55, 0.65, 113, 0.0, 8},
        WindowCase{14, 14, 0.25, 0.8, 114, 0.15, 8},
        WindowCase{10, 18, 0.12, 0.95, 115, 0.0, 8},
        WindowCase{18, 7, 0.4, 0.7, 116, 0.0, 8},
        WindowCase{12, 11, 0.3, 0.85, 117, 0.05, 8},
        WindowCase{16, 13, 0.18, 0.9, 118, 0.0, 8},
        WindowCase{10, 8, 0.5, 0.55, 119, 0.0, 8},
        WindowCase{14, 10, 0.35, 0.8, 120, 0.3, 8},  // many zero rows
        WindowCase{12, 12, 0.28, 0.75, 121, 0.0, 8},
        WindowCase{20, 6, 0.45, 0.6, 122, 0.0, 8},
        WindowCase{8, 16, 0.22, 0.9, 123, 0.1, 8},
        WindowCase{16, 9, 0.38, 0.7, 124, 0.0, 8},
        WindowCase{12, 10, 0.3, 1.0, 125, 0.0, 8}));

// Appending a wider batch then evicting the pre-widening prefix must
// agree with a fresh mine at the widened width — the id renumbering and
// the sticky column count interact here.
TEST(WindowWideningTest, WidenThenEvictMatchesFreshMine) {
  Rng rng(31);
  std::vector<std::vector<ColumnId>> narrow_rows;
  for (int r = 0; r < 20; ++r) {
    std::vector<ColumnId> row;
    for (ColumnId c = 0; c < 6; ++c) {
      if (rng.Bernoulli(0.4)) row.push_back(c);
    }
    narrow_rows.push_back(std::move(row));
  }
  std::vector<std::vector<ColumnId>> wide_rows;
  for (int r = 0; r < 15; ++r) {
    std::vector<ColumnId> row;
    for (ColumnId c = 0; c < 14; ++c) {
      if (rng.Bernoulli(0.3)) row.push_back(c);
    }
    wide_rows.push_back(std::move(row));
  }

  ImplicationMiningOptions o;
  o.min_confidence = 0.8;
  IncrementalImplicationMiner miner(o);
  ASSERT_TRUE(miner.AppendBatch(BinaryMatrix::FromRows(6, narrow_rows)).ok());
  ASSERT_TRUE(miner.AppendBatch(BinaryMatrix::FromRows(14, wide_rows)).ok());
  ASSERT_TRUE(miner.EvictBatch(narrow_rows.size()).ok());
  EXPECT_EQ(miner.num_columns(), 14u);

  const BinaryMatrix contents = BinaryMatrix::FromRows(14, wide_rows);
  EXPECT_EQ(miner.rules().rules(),
            BatchImp(contents, 0.8, MergeKernel::kAuto).rules());
  IncrementalImplicationMiner fresh(o);
  ASSERT_TRUE(fresh.AppendBatch(contents).ok());
  EXPECT_EQ(miner.MemoryBytes(), fresh.MemoryBytes());
}

// Count-bounded sliding mode: the wrapper keeps exactly the newest
// window_rows rows and its rules always equal a fresh mine of them.
TEST(WindowedMinerTest, SlidingModeTracksNewestRows) {
  const ColumnId cols = 10;
  const uint64_t window = 25;
  Rng rng(57);
  std::vector<std::vector<ColumnId>> feed;
  for (int r = 0; r < 120; ++r) {
    std::vector<ColumnId> row;
    for (ColumnId c = 0; c < cols; ++c) {
      if (rng.Bernoulli(0.3)) row.push_back(c);
    }
    feed.push_back(std::move(row));
  }

  MetricsRegistry metrics;
  ImplicationMiningOptions io;
  io.min_confidence = 0.8;
  io.policy.observe.metrics = &metrics;
  WindowedImplicationMiner imp(io, window);
  SimilarityMiningOptions so;
  so.min_similarity = 0.6;
  WindowedSimilarityMiner sim(so, window);

  size_t pos = 0;
  Rng batch_rng(58);
  while (pos < feed.size()) {
    const size_t n =
        std::min<size_t>(1 + batch_rng.Uniform(12), feed.size() - pos);
    const std::vector<std::vector<ColumnId>> batch(
        feed.begin() + pos, feed.begin() + pos + n);
    pos += n;
    ASSERT_TRUE(imp.AppendBatch(BinaryMatrix::FromRows(cols, batch)).ok());
    ASSERT_TRUE(sim.AppendBatch(BinaryMatrix::FromRows(cols, batch)).ok());
    EXPECT_LE(imp.num_rows(), window);
    EXPECT_EQ(imp.num_rows(), std::min<uint64_t>(pos, window));

    const size_t head = pos > window ? pos - window : 0;
    const std::vector<std::vector<ColumnId>> live(feed.begin() + head,
                                                  feed.begin() + pos);
    const BinaryMatrix contents = BinaryMatrix::FromRows(cols, live);
    EXPECT_EQ(imp.rules().rules(),
              BatchImp(contents, 0.8, MergeKernel::kAuto).rules());
    EXPECT_EQ(sim.pairs().pairs(),
              BatchSim(contents, 0.6, MergeKernel::kAuto).pairs());
  }
  EXPECT_GT(metrics.counter("dmc.window.slides"), 0u);
  EXPECT_EQ(metrics.counter("dmc.window.rows_evicted"),
            imp.cumulative().rows_evicted);
  EXPECT_EQ(imp.cumulative().rows_evicted,
            static_cast<uint64_t>(feed.size()) - window);
}

// FromBatchMine with an over-full seed trims down to the window.
TEST(WindowedMinerTest, FromBatchMineTrimsOverflow) {
  Rng rng(71);
  std::vector<std::vector<ColumnId>> rows;
  for (int r = 0; r < 40; ++r) {
    std::vector<ColumnId> row;
    for (ColumnId c = 0; c < 8; ++c) {
      if (rng.Bernoulli(0.35)) row.push_back(c);
    }
    rows.push_back(std::move(row));
  }
  const BinaryMatrix seed = BinaryMatrix::FromRows(8, rows);
  ImplicationMiningOptions o;
  o.min_confidence = 0.8;
  auto miner = WindowedImplicationMiner::FromBatchMine(seed, o, 15);
  ASSERT_TRUE(miner.ok()) << miner.status();
  EXPECT_EQ(miner->num_rows(), 15u);
  const std::vector<std::vector<ColumnId>> live(rows.end() - 15, rows.end());
  EXPECT_EQ(miner->rules().rules(),
            BatchImp(BinaryMatrix::FromRows(8, live), 0.8,
                     MergeKernel::kAuto)
                .rules());
}

// Edge contracts: zero evictions are no-ops, over-evictions fail cleanly
// with untouched state, and total eviction empties the rule set.
TEST(WindowEdgeTest, EvictBoundaries) {
  MatrixBuilder b(3);
  for (int i = 0; i < 10; ++i) b.AddRow({0, 1});
  ImplicationMiningOptions o;
  o.min_confidence = 0.9;
  IncrementalImplicationMiner miner(o);
  ASSERT_TRUE(miner.AppendBatch(b.Build()).ok());
  const std::string before = PrintImp(miner.rules());
  const size_t bytes_before = miner.MemoryBytes();

  IncrEvictStats stats;
  ASSERT_TRUE(miner.EvictBatch(0, &stats).ok());
  EXPECT_EQ(stats.rows_evicted, 0u);
  EXPECT_EQ(miner.num_rows(), 10u);
  EXPECT_EQ(PrintImp(miner.rules()), before);
  EXPECT_EQ(miner.MemoryBytes(), bytes_before);
  EXPECT_EQ(miner.cumulative().evict_batches, 0u);

  const Status too_many = miner.EvictBatch(11);
  EXPECT_FALSE(too_many.ok());
  EXPECT_EQ(miner.num_rows(), 10u);
  EXPECT_EQ(PrintImp(miner.rules()), before);

  ASSERT_TRUE(miner.EvictBatch(10, &stats).ok());
  EXPECT_EQ(miner.num_rows(), 0u);
  EXPECT_TRUE(miner.rules().empty());
  EXPECT_EQ(stats.candidates_killed, 1u);
  EXPECT_EQ(miner.cumulative().evict_batches, 1u);
  EXPECT_EQ(miner.cumulative().rows_evicted, 10u);

  // Regrow from empty: the state must behave like a brand-new miner.
  MatrixBuilder regrow(3);
  for (int i = 0; i < 5; ++i) regrow.AddRow({1, 2});
  ASSERT_TRUE(miner.AppendBatch(regrow.Build()).ok());
  EXPECT_EQ(miner.num_rows(), 5u);
  EXPECT_EQ(miner.rules().size(), 1u);
}

// Eviction can resurrect a pair: dropping prefix rows that miss removes
// misses faster than hits, so a below-threshold pair comes back — the
// regeneration pass's reason to exist.
TEST(WindowEdgeTest, EvictionResurrectsFailedPair) {
  MatrixBuilder b(2);
  for (int i = 0; i < 3; ++i) b.AddRow({0});  // prefix misses both ways
  for (int i = 0; i < 3; ++i) b.AddRow({1});
  for (int i = 0; i < 10; ++i) b.AddRow({0, 1});
  ImplicationMiningOptions o;
  o.min_confidence = 0.9;
  IncrementalImplicationMiner miner(o);
  ASSERT_TRUE(miner.AppendBatch(b.Build()).ok());
  // Sparser-first 0 => 1: 3 misses of 13 ones, budget 1 — not held.
  ASSERT_TRUE(miner.rules().empty());

  IncrEvictStats stats;
  ASSERT_TRUE(miner.EvictBatch(6, &stats).ok());
  // Only perfect co-occurrences remain; the pair was not held, so only
  // the regeneration pass (seeded from evicted ones) can bring it back.
  ASSERT_EQ(miner.rules().size(), 1u);
  EXPECT_EQ(miner.rules().rules()[0].misses, 0u);
  EXPECT_EQ(miner.rules().rules()[0].lhs_ones, 10u);
  EXPECT_GT(stats.regen_pairs_examined, 0u);
  EXPECT_EQ(stats.candidates_regenerated, 1u);
}

}  // namespace
}  // namespace dmc
