#include "util/memory_tracker.h"

#include <gtest/gtest.h>

namespace dmc {
namespace {

TEST(MemoryTrackerTest, TracksCurrentAndPeak) {
  MemoryTracker t;
  EXPECT_EQ(t.current_bytes(), 0u);
  EXPECT_EQ(t.peak_bytes(), 0u);
  t.Add(100);
  t.Add(50);
  EXPECT_EQ(t.current_bytes(), 150u);
  EXPECT_EQ(t.peak_bytes(), 150u);
  t.Sub(120);
  EXPECT_EQ(t.current_bytes(), 30u);
  EXPECT_EQ(t.peak_bytes(), 150u);
  t.Add(10);
  EXPECT_EQ(t.peak_bytes(), 150u);
  t.Add(200);
  EXPECT_EQ(t.peak_bytes(), 240u);
}

TEST(MemoryTrackerTest, SubClampsAtZero) {
  MemoryTracker t;
  t.Add(10);
  t.Sub(100);
  EXPECT_EQ(t.current_bytes(), 0u);
}

TEST(MemoryTrackerTest, History) {
  MemoryTracker t;
  t.Add(5);
  t.RecordSample();
  t.Add(5);
  t.RecordSample();
  t.Sub(8);
  t.RecordSample();
  ASSERT_EQ(t.history().size(), 3u);
  EXPECT_EQ(t.history()[0], 5u);
  EXPECT_EQ(t.history()[1], 10u);
  EXPECT_EQ(t.history()[2], 2u);
}

TEST(MemoryTrackerTest, ResetClearsEverything) {
  MemoryTracker t;
  t.Add(10);
  t.RecordSample();
  t.Reset();
  EXPECT_EQ(t.current_bytes(), 0u);
  EXPECT_EQ(t.peak_bytes(), 0u);
  EXPECT_TRUE(t.history().empty());
}

TEST(MemoryTrackerTest, ReleaseAllKeepsPeak) {
  MemoryTracker t;
  t.Add(77);
  t.ReleaseAll();
  EXPECT_EQ(t.current_bytes(), 0u);
  EXPECT_EQ(t.peak_bytes(), 77u);
}

}  // namespace
}  // namespace dmc
