// Differential battery for the serving daemon: every byte that comes
// back over the wire must decode to exactly the result of the
// equivalent direct RuleIndexSnapshot query — including while an
// append/publish loop is running, where the reply's generation pins
// which snapshot it must match (never a torn or in-between state).
//
// The oracle is a mirror miner: the server publishes exactly one
// snapshot per ingested batch, in arrival order, so generation g always
// serves "seed + first (g - 1) batches". The test replays the same
// batches through its own IncrementalImplicationMiner, builds the
// expected snapshot per generation, and compares rule-for-rule.

#include "serve/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "incr/incr_miner.h"
#include "incr/window_miner.h"
#include "matrix/binary_matrix.h"
#include "rules/rule_index.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "util/random.h"

namespace dmc {
namespace {

using serve::Op;
using serve::Reply;
using serve::RuleClient;

std::vector<std::vector<ColumnId>> RandomRows(Rng& rng, size_t rows,
                                              ColumnId num_columns) {
  std::vector<std::vector<ColumnId>> out(rows);
  for (auto& row : out) {
    // Clustered pairs so implications actually form and shift around.
    const ColumnId base = static_cast<ColumnId>(rng.Uniform(num_columns - 2));
    row.push_back(base);
    if (rng.Uniform(3) != 0) row.push_back(base + 1);
    if (rng.Uniform(5) == 0) {
      row.push_back(static_cast<ColumnId>(rng.Uniform(num_columns)));
    }
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
  }
  return out;
}

ImplicationMiningOptions Options() {
  ImplicationMiningOptions options;
  options.min_confidence = 0.6;
  return options;
}

class ServeDifferentialTest : public ::testing::Test {
 protected:
  static constexpr ColumnId kColumns = 48;

  BinaryMatrix MakeSeed(uint32_t seed, size_t rows) {
    Rng rng(seed);
    return BinaryMatrix::FromRows(kColumns, RandomRows(rng, rows, kColumns));
  }
};

TEST_F(ServeDifferentialTest, WireRepliesEqualDirectSnapshotQueries) {
  const BinaryMatrix seed = MakeSeed(11, 400);
  ServeOptions options;
  options.mining = Options();
  RuleServer server(std::move(options));
  ASSERT_TRUE(server.SeedFromMatrix(seed).ok());
  ASSERT_TRUE(server.Start().ok());

  RuleClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  const std::shared_ptr<const RuleIndexSnapshot> snap =
      server.index().snapshot();
  ASSERT_GT(snap->size(), 0u);  // the seed must actually yield rules

  for (ColumnId c = 0; c < kColumns; ++c) {
    const StatusOr<Reply> by_lhs = client.QueryByAntecedent(c);
    ASSERT_TRUE(by_lhs.ok()) << by_lhs.status();
    EXPECT_EQ(by_lhs->generation, snap->generation());
    EXPECT_EQ(by_lhs->rules, snap->QueryByAntecedent(c)) << "lhs=" << c;

    const StatusOr<Reply> by_rhs = client.QueryByConsequent(c);
    ASSERT_TRUE(by_rhs.ok()) << by_rhs.status();
    EXPECT_EQ(by_rhs->rules, snap->QueryByConsequent(c)) << "rhs=" << c;
  }
  for (uint32_t k : {0u, 1u, 7u, 1000u}) {
    const StatusOr<Reply> top = client.TopK(k);
    ASSERT_TRUE(top.ok()) << top.status();
    EXPECT_EQ(top->rules, snap->TopK(k)) << "k=" << k;
  }

  const StatusOr<serve::ServeStats> stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->generation, snap->generation());
  EXPECT_EQ(stats->num_rules, snap->size());
  EXPECT_EQ(stats->rows_mined, 400u);

  server.Shutdown();
}

TEST_F(ServeDifferentialTest, GenerationPinsExactSnapshotDuringPublishes) {
  constexpr size_t kBatches = 12;
  constexpr size_t kBatchRows = 120;

  const BinaryMatrix seed = MakeSeed(23, 500);
  Rng batch_rng(29);
  std::vector<BinaryMatrix> batches;
  for (size_t b = 0; b < kBatches; ++b) {
    batches.push_back(BinaryMatrix::FromRows(
        kColumns, RandomRows(batch_rng, kBatchRows, kColumns)));
  }

  // Mirror miner: expected[g] is the snapshot generation g must serve.
  auto mirror =
      IncrementalImplicationMiner::FromBatchMine(seed, Options());
  ASSERT_TRUE(mirror.ok());
  std::vector<std::shared_ptr<const RuleIndexSnapshot>> expected;
  expected.push_back(nullptr);  // generation 0: never served after seeding
  expected.push_back(RuleIndexSnapshot::Build(mirror->rules(), 1));
  for (size_t b = 0; b < kBatches; ++b) {
    ASSERT_TRUE(mirror->AppendBatch(batches[b]).ok());
    expected.push_back(RuleIndexSnapshot::Build(
        mirror->rules(), static_cast<uint64_t>(b) + 2));
  }

  ServeOptions options;
  options.mining = Options();
  RuleServer server(std::move(options));
  ASSERT_TRUE(server.SeedFromMatrix(seed).ok());
  ASSERT_TRUE(server.Start().ok());

  // Appender: one wire client feeding the batches in order, paced only
  // by the append acknowledgments (so publishes overlap the queries).
  std::atomic<bool> append_failed{false};
  std::thread appender([&] {
    RuleClient client;
    if (!client.Connect("127.0.0.1", server.port()).ok()) {
      append_failed.store(true);
      return;
    }
    for (const BinaryMatrix& batch : batches) {
      std::vector<std::vector<ColumnId>> rows(batch.num_rows());
      for (RowId r = 0; r < batch.num_rows(); ++r) {
        const auto row = batch.Row(r);
        rows[r].assign(row.begin(), row.end());
      }
      if (!client.AppendRows(batch.num_columns(), rows).ok()) {
        append_failed.store(true);
        return;
      }
    }
  });

  // Reader: hammer queries while the publishes happen. Each reply's
  // generation selects the oracle snapshot it must match exactly.
  RuleClient reader;
  ASSERT_TRUE(reader.Connect("127.0.0.1", server.port()).ok());
  Rng rng(31);
  const uint64_t final_generation = kBatches + 1;
  uint64_t seen_generations = 0;
  uint64_t queries = 0;
  while (true) {
    const ColumnId c = static_cast<ColumnId>(rng.Uniform(kColumns));
    const bool by_lhs = rng.Uniform(2) == 0;
    const StatusOr<Reply> reply =
        by_lhs ? reader.QueryByAntecedent(c) : reader.QueryByConsequent(c);
    ASSERT_TRUE(reply.ok()) << reply.status();
    ASSERT_GE(reply->generation, 1u);
    ASSERT_LE(reply->generation, final_generation);
    const RuleIndexSnapshot& oracle = *expected[reply->generation];
    EXPECT_EQ(reply->rules, by_lhs ? oracle.QueryByAntecedent(c)
                                   : oracle.QueryByConsequent(c))
        << "generation " << reply->generation << (by_lhs ? " lhs=" : " rhs=")
        << c;
    ++queries;
    if (reply->generation > seen_generations) {
      seen_generations = reply->generation;
    }
    if (seen_generations == final_generation && queries >= 2000) break;
    ASSERT_LT(queries, 2000000u) << "server never reached generation "
                                 << final_generation;
  }
  appender.join();
  EXPECT_FALSE(append_failed.load());

  // After the last publish the served snapshot must equal the mirror's
  // final state, rule for rule.
  const StatusOr<Reply> top = reader.TopK(1u << 20);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top->generation, final_generation);
  EXPECT_EQ(top->rules, expected[final_generation]->TopK(1u << 20));

  const StatusOr<serve::ServeStats> stats = reader.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->batches_ingested, kBatches);
  EXPECT_EQ(stats->snapshots_published, kBatches + 1);
  EXPECT_EQ(stats->rows_mined, 500u + kBatches * kBatchRows);

  server.Shutdown();
}

TEST_F(ServeDifferentialTest, EvictOverWireMatchesDirectEvictBatch) {
  // kEvict round-trip: each evict must bump the generation by exactly
  // one and serve what a direct EvictBatch on a mirror miner yields —
  // interleaved with appends so the id renumbering is exercised on the
  // wire path too.
  const BinaryMatrix seed = MakeSeed(53, 300);
  Rng rng(57);
  const std::vector<std::vector<ColumnId>> batch_rows =
      RandomRows(rng, 150, kColumns);

  auto mirror = IncrementalImplicationMiner::FromBatchMine(seed, Options());
  ASSERT_TRUE(mirror.ok());

  ServeOptions options;
  options.mining = Options();
  RuleServer server(std::move(options));
  ASSERT_TRUE(server.SeedFromMatrix(seed).ok());
  ASSERT_TRUE(server.Start().ok());

  RuleClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  // Await a given generation, returning its full rule set.
  const auto rules_at = [&client](uint64_t generation) {
    StatusOr<Reply> top = client.TopK(1u << 20);
    EXPECT_TRUE(top.ok());
    while (top.ok() && top->generation < generation) {
      top = client.TopK(1u << 20);
    }
    EXPECT_TRUE(top.ok());
    EXPECT_EQ(top->generation, generation);
    return top->rules;
  };

  // Evict 120 of the 300 seeded rows: generation 1 -> 2.
  ASSERT_TRUE(mirror->EvictBatch(120).ok());
  ASSERT_TRUE(client.EvictRows(120).ok());
  EXPECT_EQ(rules_at(2),
            RuleIndexSnapshot::Build(mirror->rules(), 2)->TopK(1u << 20));

  // Append a batch on top of the trimmed window: generation 3.
  ASSERT_TRUE(mirror->AppendBatch(
                  BinaryMatrix::FromRows(kColumns, batch_rows)).ok());
  ASSERT_TRUE(client.AppendRows(kColumns, batch_rows).ok());
  EXPECT_EQ(rules_at(3),
            RuleIndexSnapshot::Build(mirror->rules(), 3)->TopK(1u << 20));

  // Evict across the old/new boundary: generation 4.
  ASSERT_TRUE(mirror->EvictBatch(200).ok());
  ASSERT_TRUE(client.EvictRows(200).ok());
  EXPECT_EQ(rules_at(4),
            RuleIndexSnapshot::Build(mirror->rules(), 4)->TopK(1u << 20));

  const StatusOr<serve::ServeStats> stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->batches_evicted, 2u);
  EXPECT_EQ(stats->rows_evicted, 320u);
  EXPECT_EQ(stats->evicts_dropped, 0u);
  EXPECT_EQ(stats->rows_mined, 300u - 120u + 150u - 200u);
  EXPECT_EQ(stats->snapshots_published, 4u);

  server.Shutdown();
}

TEST_F(ServeDifferentialTest, WindowedServerSlidesLikeWindowedMiner) {
  // --window-rows end to end: a server with a row budget must serve, at
  // every generation, exactly what a WindowedImplicationMiner fed the
  // same batches holds — the auto-slide happens inside the ingest
  // thread's publish cycle.
  constexpr uint64_t kWindow = 250;
  constexpr size_t kBatches = 6;
  constexpr size_t kBatchRows = 100;

  const BinaryMatrix seed = MakeSeed(61, 400);
  Rng rng(67);
  std::vector<std::vector<std::vector<ColumnId>>> batches;
  for (size_t b = 0; b < kBatches; ++b) {
    batches.push_back(RandomRows(rng, kBatchRows, kColumns));
  }

  auto mirror =
      WindowedImplicationMiner::FromBatchMine(seed, Options(), kWindow);
  ASSERT_TRUE(mirror.ok());

  ServeOptions options;
  options.mining = Options();
  options.window_rows = kWindow;
  RuleServer server(std::move(options));
  ASSERT_TRUE(server.SeedFromMatrix(seed).ok());
  ASSERT_TRUE(server.Start().ok());
  // The seed itself is over-full: the publish-1 snapshot already
  // reflects the trimmed window.
  EXPECT_EQ(server.index().snapshot()->TopK(1u << 20),
            RuleIndexSnapshot::Build(mirror->rules(), 1)->TopK(1u << 20));

  RuleClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  for (size_t b = 0; b < kBatches; ++b) {
    ASSERT_TRUE(mirror->AppendBatch(
                    BinaryMatrix::FromRows(kColumns, batches[b])).ok());
    ASSERT_TRUE(client.AppendRows(kColumns, batches[b]).ok());
    StatusOr<Reply> top = client.TopK(1u << 20);
    ASSERT_TRUE(top.ok());
    while (top->generation < b + 2) {
      top = client.TopK(1u << 20);
      ASSERT_TRUE(top.ok());
    }
    EXPECT_EQ(top->rules,
              RuleIndexSnapshot::Build(mirror->rules(), b + 2)->TopK(1u << 20))
        << "batch " << b;
  }

  const StatusOr<serve::ServeStats> stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows_mined, kWindow);
  // Every append overflowed the full window, so every ingest slid.
  EXPECT_EQ(stats->batches_evicted, kBatches);
  EXPECT_EQ(stats->rows_evicted, kBatches * kBatchRows);

  server.Shutdown();
}

TEST_F(ServeDifferentialTest, AppendOverWireMatchesDirectAppendBatch) {
  // The wire encode/decode of a batch must hand the miner exactly the
  // same matrix a direct AppendBatch would see: compare the full rule
  // sets after one round trip.
  const BinaryMatrix seed = MakeSeed(41, 300);
  Rng rng(43);
  const std::vector<std::vector<ColumnId>> batch_rows =
      RandomRows(rng, 200, kColumns);
  const BinaryMatrix batch = BinaryMatrix::FromRows(kColumns, batch_rows);

  auto mirror = IncrementalImplicationMiner::FromBatchMine(seed, Options());
  ASSERT_TRUE(mirror.ok());
  ASSERT_TRUE(mirror->AppendBatch(batch).ok());

  ServeOptions options;
  options.mining = Options();
  RuleServer server(std::move(options));
  ASSERT_TRUE(server.SeedFromMatrix(seed).ok());
  ASSERT_TRUE(server.Start().ok());

  RuleClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.AppendRows(kColumns, batch_rows).ok());

  // Wait for the publish (generation 2), then compare everything.
  StatusOr<Reply> top = client.TopK(1u << 20);
  ASSERT_TRUE(top.ok());
  while (top->generation < 2) {
    top = client.TopK(1u << 20);
    ASSERT_TRUE(top.ok());
  }
  const auto oracle = RuleIndexSnapshot::Build(mirror->rules(), 2);
  EXPECT_EQ(top->rules, oracle->TopK(1u << 20));

  server.Shutdown();
}

}  // namespace
}  // namespace dmc
