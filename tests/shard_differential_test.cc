// Kill-a-worker differential sweep for the multi-process shard
// coordinator (src/shard/, DESIGN §5.8).
//
// Every scenario — clean fleets of 1/2/4 workers, SIGKILLed workers,
// crash/hang hooks armed in every child, an unexecutable worker binary,
// forced shard.* failpoints, checkpoint resume with a torn checkpoint —
// must end in exactly one of two ways: a rule set byte-identical to the
// single-process external miner, or a clean non-OK Status. Never a
// hang, never a partial result.
//
// The worker binary path is compile-defined (DMC_SHARD_WORKER_BIN) so
// the sweep runs the worker from the same build tree — under ASan/UBSan
// the children are sanitized too.

#include <fcntl.h>
#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/external_miner.h"
#include "matrix/binary_matrix.h"
#include "matrix/matrix_io.h"
#include "observe/metrics.h"
#include "shard/coordinator.h"
#include "shard/shard_checkpoint.h"
#include "util/failpoint.h"
#include "util/random.h"

namespace dmc {
namespace shard {
namespace {

BinaryMatrix TestMatrix() {
  Rng rng(0x5AAD);
  MatrixBuilder b(18);
  std::vector<ColumnId> row;
  for (uint32_t r = 0; r < 160; ++r) {
    row.clear();
    for (ColumnId c = 0; c < 18; ++c) {
      if (rng.Bernoulli(0.3)) row.push_back(c);
    }
    // Planted structure so both engines have rules to find: column 1
    // accompanies column 0, and 2/3 are near-identical.
    if (!row.empty() && row[0] == 0) row.insert(row.begin() + 1, 1);
    b.AddRow(row);
  }
  return b.Build();
}

class ShardDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = testing::TempDir() + "/" +
           std::string(info->test_suite_name()) + "_" + info->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    input_ = dir_ + "/input.txt";
    ASSERT_TRUE(WriteMatrixTextFile(TestMatrix(), input_).ok());

    imp_.min_confidence = 0.8;
    sim_.min_similarity = 0.5;

    auto truth_imp = MineImplicationsFromFile(input_, imp_, dir_);
    ASSERT_TRUE(truth_imp.ok());
    truth_imp_ = truth_imp->rules();
    ASSERT_FALSE(truth_imp_.empty());
    auto truth_sim = MineSimilaritiesFromFile(input_, sim_, dir_);
    ASSERT_TRUE(truth_sim.ok());
    truth_sim_ = truth_sim->pairs();
    ASSERT_FALSE(truth_sim_.empty());
  }

  void TearDown() override {
    fail::Disable();
    std::filesystem::remove_all(dir_);
  }

  ShardOptions BaseOptions() const {
    ShardOptions s;
    s.worker_binary = DMC_SHARD_WORKER_BIN;
    s.num_workers = 2;
    s.tasks_per_worker = 2;
    // Keep worst-case test wall-clock bounded: tight backoff budget.
    s.spawn_retry.initial_backoff_seconds = 0.001;
    s.spawn_retry.max_backoff_seconds = 0.02;
    s.spawn_retry.max_total_backoff_seconds = 0.1;
    return s;
  }

  std::string dir_;
  std::string input_;
  ImplicationMiningOptions imp_;
  SimilarityMiningOptions sim_;
  std::vector<ImplicationRule> truth_imp_;
  std::vector<SimilarityPair> truth_sim_;
};

TEST_F(ShardDifferentialTest, FleetSizesMatchSingleProcessByteForByte) {
  for (const int workers : {1, 2, 4}) {
    ShardOptions s = BaseOptions();
    s.num_workers = workers;
    ShardMiningStats stats;
    auto rules = MineImplicationsSharded(input_, imp_, dir_, s, &stats);
    ASSERT_TRUE(rules.ok()) << rules.status().ToString();
    EXPECT_EQ(rules->rules(), truth_imp_) << "workers=" << workers;
    EXPECT_EQ(stats.tasks_total, workers * s.tasks_per_worker);
    EXPECT_GE(stats.workers_spawned, 1);
    EXPECT_EQ(stats.degraded_tasks, 0);

    auto pairs = MineSimilaritiesSharded(input_, sim_, dir_, s, &stats);
    ASSERT_TRUE(pairs.ok()) << pairs.status().ToString();
    EXPECT_EQ(pairs->pairs(), truth_sim_) << "workers=" << workers;
  }
}

TEST_F(ShardDifferentialTest, IdentityRowOrderMatchesToo) {
  ImplicationMiningOptions imp = imp_;
  imp.policy.row_order = RowOrderPolicy::kIdentity;
  auto truth = MineImplicationsFromFile(input_, imp, dir_);
  ASSERT_TRUE(truth.ok());

  ShardOptions s = BaseOptions();
  auto rules = MineImplicationsSharded(input_, imp, dir_, s);
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  EXPECT_EQ(rules->rules(), truth->rules());
}

TEST_F(ShardDifferentialTest, SigkilledWorkerIsReplacedAndResultExact) {
  ShardOptions s = BaseOptions();
  std::mutex mu;
  int kills = 0;
  s.on_worker_spawn = [&](int slot, int pid) {
    std::lock_guard<std::mutex> lock(mu);
    // Murder the first worker of slot 0 right out of the gate; its
    // replacement (and slot 1) survive.
    if (slot == 0 && kills == 0) {
      ++kills;
      kill(pid, SIGKILL);
    }
  };
  ShardMiningStats stats;
  auto rules = MineImplicationsSharded(input_, imp_, dir_, s, &stats);
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  EXPECT_EQ(rules->rules(), truth_imp_);
  EXPECT_EQ(kills, 1);
  EXPECT_GE(stats.workers_died, 1);
  EXPECT_GE(stats.workers_spawned, 3);  // 2 slots + 1 respawn
}

TEST_F(ShardDifferentialTest, EveryWorkerCrashingDegradesToExactResult) {
  ShardOptions s = BaseOptions();
  s.worker_env = {"DMC_SHARD_TEST_CRASH_AFTER_ROWS=5"};
  s.max_respawns_per_slot = 1;
  // The hooks ride the progress callback; a tight cadence makes them
  // fire within this small matrix.
  imp_.policy.observe.progress_interval_rows = 8;
  sim_.policy.observe.progress_interval_rows = 8;
  ShardMiningStats stats;
  auto rules = MineImplicationsSharded(input_, imp_, dir_, s, &stats);
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  EXPECT_EQ(rules->rules(), truth_imp_);
  EXPECT_GE(stats.workers_died, 2);
  EXPECT_GE(stats.degraded_tasks, 1);

  auto pairs = MineSimilaritiesSharded(input_, sim_, dir_, s, &stats);
  ASSERT_TRUE(pairs.ok()) << pairs.status().ToString();
  EXPECT_EQ(pairs->pairs(), truth_sim_);
}

TEST_F(ShardDifferentialTest, HungWorkerTripsHeartbeatDeadline) {
  ShardOptions s = BaseOptions();
  s.worker_env = {"DMC_SHARD_TEST_HANG_AFTER_ROWS=5"};
  s.heartbeat_timeout_seconds = 0.3;
  s.max_respawns_per_slot = 1;
  // Tight heartbeat cadence so a live worker would never miss the
  // 0.3 s deadline — only the hang hook does.
  imp_.policy.observe.progress_interval_rows = 8;
  ShardMiningStats stats;
  auto rules = MineImplicationsSharded(input_, imp_, dir_, s, &stats);
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  EXPECT_EQ(rules->rules(), truth_imp_);
  EXPECT_GE(stats.workers_died, 2);
  EXPECT_GE(stats.degraded_tasks, 1);
}

TEST_F(ShardDifferentialTest, UnexecutableWorkerBinaryDegradesOrFails) {
  ShardOptions s = BaseOptions();
  s.worker_binary = dir_ + "/no_such_worker";
  s.max_respawns_per_slot = 0;
  ShardMiningStats stats;
  auto rules = MineImplicationsSharded(input_, imp_, dir_, s, &stats);
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  EXPECT_EQ(rules->rules(), truth_imp_);
  EXPECT_EQ(stats.degraded_tasks, stats.tasks_total);

  s.degrade_to_in_process = false;
  auto refused = MineImplicationsSharded(input_, imp_, dir_, s);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kInternal);
}

TEST_F(ShardDifferentialTest, DegradeDisabledFailsCleanlyUnderCrashes) {
  ShardOptions s = BaseOptions();
  s.worker_env = {"DMC_SHARD_TEST_CRASH_AFTER_ROWS=5"};
  s.max_respawns_per_slot = 0;
  s.degrade_to_in_process = false;
  imp_.policy.observe.progress_interval_rows = 8;
  auto rules = MineImplicationsSharded(input_, imp_, dir_, s);
  ASSERT_FALSE(rules.ok());
  EXPECT_EQ(rules.status().code(), StatusCode::kInternal);

  // The same options mine fine once the hook is gone — the failure was
  // the fleet's, not a leftover artifact's.
  s.worker_env.clear();
  s.degrade_to_in_process = true;
  auto retry = MineImplicationsSharded(input_, imp_, dir_, s);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(retry->rules(), truth_imp_);
}

TEST_F(ShardDifferentialTest, ForcedFailpointsRecoverOrFailCleanly) {
  const char* sites[] = {"shard.spawn", "shard.read", "shard.worker",
                         "shard.merge"};
  for (const char* site : sites) {
    ASSERT_TRUE(
        fail::Configure(std::string(site) + "=error@1").ok());
    ShardOptions s = BaseOptions();
    ShardMiningStats stats;
    auto rules = MineImplicationsSharded(input_, imp_, dir_, s, &stats);
    if (rules.ok()) {
      EXPECT_EQ(rules->rules(), truth_imp_) << site;
    } else {
      EXPECT_FALSE(rules.status().message().empty()) << site;
    }
    fail::Disable();
  }
}

TEST_F(ShardDifferentialTest, FailpointSpecPropagatesIntoWorkers) {
  // shard.worker only exists inside the worker binary; the in-process
  // degrade path never hits it. Arming it with an always-fire trigger
  // therefore fails every worker attempt — if (and only if) the spec
  // actually reaches the children via DMC_FAILPOINTS. All tasks ending
  // up degraded proves the propagation.
  ASSERT_TRUE(fail::Configure("shard.worker=error").ok());
  ShardOptions s = BaseOptions();
  s.max_respawns_per_slot = 1;
  ShardMiningStats stats;
  auto rules = MineImplicationsSharded(input_, imp_, dir_, s, &stats);
  fail::Disable();
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  EXPECT_EQ(rules->rules(), truth_imp_);
  EXPECT_EQ(stats.degraded_tasks, stats.tasks_total);
}

TEST_F(ShardDifferentialTest, ResumeSkipsCheckpointedTasks) {
  const std::string ckpt_dir = dir_ + "/task_ckpts";
  std::filesystem::create_directories(ckpt_dir);

  ShardOptions s = BaseOptions();
  s.checkpoint_dir = ckpt_dir;
  ShardMiningStats first;
  auto rules = MineImplicationsSharded(input_, imp_, dir_, s, &first);
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  EXPECT_EQ(rules->rules(), truth_imp_);
  EXPECT_EQ(first.checkpoint_hits, 0);

  // Resume: every task comes back from its checkpoint, no worker runs.
  s.resume = true;
  int spawns = 0;
  s.on_worker_spawn = [&](int, int) { ++spawns; };
  ShardMiningStats second;
  auto resumed = MineImplicationsSharded(input_, imp_, dir_, s, &second);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->rules(), truth_imp_);
  EXPECT_EQ(second.checkpoint_hits, second.tasks_total);
  EXPECT_EQ(spawns, 0);
  EXPECT_EQ(second.workers_spawned, 0);

  // Tear one checkpoint: only that task is re-mined, result unchanged.
  const std::string victim = ShardCheckpointPath(ckpt_dir, 0);
  {
    std::ifstream in(victim, std::ios::binary);
    std::string bytes(std::istreambuf_iterator<char>(in), {});
    ASSERT_GT(bytes.size(), 8u);
    std::ofstream out(victim, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  ShardMiningStats third;
  auto repaired = MineImplicationsSharded(input_, imp_, dir_, s, &third);
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
  EXPECT_EQ(repaired->rules(), truth_imp_);
  EXPECT_EQ(third.checkpoint_hits, third.tasks_total - 1);
}

TEST_F(ShardDifferentialTest, ConfigDriftInvalidatesTaskCheckpoints) {
  const std::string ckpt_dir = dir_ + "/task_ckpts";
  std::filesystem::create_directories(ckpt_dir);

  ShardOptions s = BaseOptions();
  s.checkpoint_dir = ckpt_dir;
  auto rules = MineImplicationsSharded(input_, imp_, dir_, s);
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();

  // Same checkpoints, different threshold: every fingerprint misses and
  // the run re-mines from scratch — correctly, for the new threshold.
  ImplicationMiningOptions looser = imp_;
  looser.min_confidence = 0.6;
  auto loose_truth = MineImplicationsFromFile(input_, looser, dir_);
  ASSERT_TRUE(loose_truth.ok());
  s.resume = true;
  ShardMiningStats stats;
  auto remined = MineImplicationsSharded(input_, looser, dir_, s, &stats);
  ASSERT_TRUE(remined.ok()) << remined.status().ToString();
  EXPECT_EQ(remined->rules(), loose_truth->rules());
  EXPECT_EQ(stats.checkpoint_hits, 0);
  EXPECT_GE(stats.workers_spawned, 1);
}

TEST_F(ShardDifferentialTest, WorkerMetricsFoldIntoCoordinatorRegistry) {
  const std::string metrics_dir = dir_ + "/worker_metrics";
  std::filesystem::create_directories(metrics_dir);
  MetricsRegistry registry;
  imp_.policy.observe.metrics = &registry;

  ShardOptions s = BaseOptions();
  s.worker_metrics_dir = metrics_dir;
  auto rules = MineImplicationsSharded(input_, imp_, dir_, s);
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  EXPECT_EQ(rules->rules(), truth_imp_);

  // Coordinator-side fleet accounting and worker-side mining counters
  // both land in the one registry.
  EXPECT_GE(registry.counter("dmc.shard.workers_spawned"), 2u);
  EXPECT_GE(registry.counter("dmc.shard.worker.tasks_received"),
            registry.counter("dmc.shard.worker.tasks_ok"));
  EXPECT_GE(registry.counter("dmc.shard.worker.tasks_ok"), 1u);
}

TEST_F(ShardDifferentialTest, SurvivesLowDescriptorsBeingOccupied) {
  // Regression: when the coordinator's fd 3 is taken but 4 is free
  // (ctest leaves exactly this layout), the first worker pipe lands
  // on {4, 5} — so the read end occupies the conventional child
  // *output* slot. A careless child-side dup2 sequence then closed
  // the output pipe it had just placed on fd 4, every worker write
  // died with EBADF, and the run silently degraded in-process.
  // Recreate that exact layout and insist the fleet mines remotely.
  // (If something else already owns fd 3 we inherit the layout for
  // free; if 4 is also taken the hostile case cannot arise at all.)
  bool squatting = false;
  if (fcntl(3, F_GETFD) == -1) {
    const int dn = open("/dev/null", O_RDONLY);
    ASSERT_GE(dn, 0);
    if (dn != 3) {
      ASSERT_EQ(dup2(dn, 3), 3);
      close(dn);
    }
    squatting = true;
  }
  ShardMiningStats stats;
  auto rules =
      MineImplicationsSharded(input_, imp_, dir_, BaseOptions(), &stats);
  if (squatting) close(3);
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  EXPECT_EQ(rules->rules(), truth_imp_);
  EXPECT_EQ(stats.degraded_tasks, 0);
  EXPECT_EQ(stats.workers_died, 0);
}

TEST_F(ShardDifferentialTest, InvalidOptionsAreRejectedUpFront) {
  ShardOptions s = BaseOptions();
  s.num_workers = 0;
  EXPECT_EQ(MineImplicationsSharded(input_, imp_, dir_, s).status().code(),
            StatusCode::kInvalidArgument);

  s = BaseOptions();
  s.tasks_per_worker = 0;
  EXPECT_EQ(MineImplicationsSharded(input_, imp_, dir_, s).status().code(),
            StatusCode::kInvalidArgument);

  s = BaseOptions();
  s.resume = true;  // no checkpoint_dir
  EXPECT_EQ(MineImplicationsSharded(input_, imp_, dir_, s).status().code(),
            StatusCode::kInvalidArgument);

  ImplicationMiningOptions bad = imp_;
  bad.min_confidence = 0.0;
  EXPECT_EQ(
      MineImplicationsSharded(input_, bad, dir_, BaseOptions()).status().code(),
      StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace shard
}  // namespace dmc
