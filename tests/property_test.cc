// The library's central property: DMC mining is EXACT — for any matrix
// and any threshold, the rule set equals the brute-force ground truth
// (no false positives, no false negatives), under every combination of
// policy knobs (row order, 100% phase, bitmap fallback, pruning flags).

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "baselines/bruteforce.h"
#include "core/engine.h"
#include "datagen/planted_gen.h"
#include "matrix/binary_matrix.h"
#include "rules/verifier.h"
#include "util/random.h"

namespace dmc {
namespace {

BinaryMatrix RandomMatrix(uint32_t rows, uint32_t cols, double density,
                          uint64_t seed) {
  Rng rng(seed);
  MatrixBuilder b(cols);
  std::vector<ColumnId> row;
  for (uint32_t r = 0; r < rows; ++r) {
    row.clear();
    for (ColumnId c = 0; c < cols; ++c) {
      if (rng.Bernoulli(density)) row.push_back(c);
    }
    b.AddRow(row);
  }
  return b.Build();
}

// A matrix with a few dense "crawler" rows appended, to exercise the
// bitmap fallback path realistically.
BinaryMatrix SkewedMatrix(uint32_t rows, uint32_t cols, uint64_t seed) {
  Rng rng(seed);
  MatrixBuilder b(cols);
  std::vector<ColumnId> row;
  for (uint32_t r = 0; r < rows; ++r) {
    row.clear();
    const double density = r + 3 >= rows ? 0.9 : 0.06;
    for (ColumnId c = 0; c < cols; ++c) {
      if (rng.Bernoulli(density)) row.push_back(c);
    }
    b.AddRow(row);
  }
  return b.Build();
}

struct PropertyCase {
  uint32_t rows;
  uint32_t cols;
  double density;
  double threshold;
  uint64_t seed;
  bool skewed;
};

std::string CaseName(const testing::TestParamInfo<PropertyCase>& info) {
  const PropertyCase& p = info.param;
  std::string name = "r" + std::to_string(p.rows) + "_c" +
                     std::to_string(p.cols) + "_d" +
                     std::to_string(int(p.density * 100)) + "_t" +
                     std::to_string(int(p.threshold * 100)) + "_s" +
                     std::to_string(p.seed);
  if (p.skewed) name += "_skew";
  return name;
}

class DmcExactnessTest : public testing::TestWithParam<PropertyCase> {
 protected:
  BinaryMatrix MakeMatrix() const {
    const PropertyCase& p = GetParam();
    return p.skewed ? SkewedMatrix(p.rows, p.cols, p.seed)
                    : RandomMatrix(p.rows, p.cols, p.density, p.seed);
  }
};

TEST_P(DmcExactnessTest, ImplicationsMatchBruteForceAllPolicies) {
  const PropertyCase& p = GetParam();
  const BinaryMatrix m = MakeMatrix();
  const auto truth = BruteForceImplications(m, p.threshold);
  const RuleVerifier verifier(m);

  for (auto order : {RowOrderPolicy::kIdentity,
                     RowOrderPolicy::kDensityBuckets}) {
    for (bool hundred : {false, true}) {
      for (bool bitmap : {false, true}) {
        ImplicationMiningOptions o;
        o.min_confidence = p.threshold;
        o.policy.row_order = order;
        o.policy.hundred_percent_phase = hundred;
        o.policy.bitmap_fallback = bitmap;
        o.policy.memory_threshold_bytes = 1;  // trigger eagerly
        o.policy.bitmap_max_remaining_rows = p.rows / 3 + 1;
        auto rules = MineImplications(m, o);
        ASSERT_TRUE(rules.ok());
        ASSERT_EQ(rules->Pairs(), truth.Pairs())
            << "order=" << int(order) << " hundred=" << hundred
            << " bitmap=" << bitmap;
        EXPECT_TRUE(
            verifier.VerifyImplications(*rules, p.threshold).ok());
      }
    }
  }
}

TEST_P(DmcExactnessTest, SimilaritiesMatchBruteForceAllPolicies) {
  const PropertyCase& p = GetParam();
  const BinaryMatrix m = MakeMatrix();
  const auto truth = BruteForceSimilarities(m, p.threshold);
  const RuleVerifier verifier(m);

  for (bool hundred : {false, true}) {
    for (bool bitmap : {false, true}) {
      for (bool maxhits : {false, true}) {
        SimilarityMiningOptions o;
        o.min_similarity = p.threshold;
        o.policy.row_order = RowOrderPolicy::kDensityBuckets;
        o.policy.hundred_percent_phase = hundred;
        o.policy.bitmap_fallback = bitmap;
        o.policy.memory_threshold_bytes = 1;
        o.policy.bitmap_max_remaining_rows = p.rows / 3 + 1;
        o.policy.max_hits_pruning = maxhits;
        auto pairs = MineSimilarities(m, o);
        ASSERT_TRUE(pairs.ok());
        ASSERT_EQ(pairs->Pairs(), truth.Pairs())
            << "hundred=" << hundred << " bitmap=" << bitmap
            << " maxhits=" << maxhits;
        EXPECT_TRUE(
            verifier.VerifySimilarities(*pairs, p.threshold).ok());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomSweep, DmcExactnessTest,
    testing::Values(
        PropertyCase{30, 8, 0.30, 0.50, 1, false},
        PropertyCase{50, 12, 0.20, 0.70, 2, false},
        PropertyCase{80, 15, 0.15, 0.80, 3, false},
        PropertyCase{120, 20, 0.10, 0.90, 4, false},
        PropertyCase{200, 25, 0.08, 0.85, 5, false},
        PropertyCase{64, 10, 0.40, 1.00, 6, false},
        PropertyCase{100, 16, 0.25, 0.95, 7, false},
        PropertyCase{150, 30, 0.05, 0.60, 8, false},
        PropertyCase{40, 6, 0.50, 0.75, 9, false},
        PropertyCase{300, 12, 0.12, 0.88, 10, false},
        PropertyCase{60, 20, 0.10, 0.80, 11, true},
        PropertyCase{90, 25, 0.08, 0.90, 12, true},
        PropertyCase{120, 15, 0.10, 0.70, 13, true},
        PropertyCase{45, 18, 0.15, 1.00, 14, true}),
    CaseName);

// Sparse extreme: very low densities where most columns have 0-2 ones.
INSTANTIATE_TEST_SUITE_P(
    SparseSweep, DmcExactnessTest,
    testing::Values(PropertyCase{200, 60, 0.01, 0.80, 21, false},
                    PropertyCase{300, 80, 0.02, 0.90, 22, false},
                    PropertyCase{150, 40, 0.03, 0.50, 23, false}),
    CaseName);

// Threshold extremes, including just-above-zero.
INSTANTIATE_TEST_SUITE_P(
    ThresholdSweep, DmcExactnessTest,
    testing::Values(PropertyCase{60, 10, 0.2, 0.05, 31, false},
                    PropertyCase{60, 10, 0.2, 0.33, 32, false},
                    PropertyCase{60, 10, 0.2, 0.99, 33, false}),
    CaseName);

TEST(PlantedTruthTest, AllPlantedImplicationsRecovered) {
  PlantedOptions opts;
  opts.seed = 1234;
  const PlantedData data = GeneratePlanted(opts);
  const double conf =
      double(opts.implication_hits) / opts.implication_lhs_ones;
  ImplicationMiningOptions o;
  o.min_confidence = conf;
  auto rules = MineImplications(data.matrix, o);
  ASSERT_TRUE(rules.ok());
  // Every planted rule must be present with exact counts.
  for (const ImplicationRule& planted : data.implications) {
    bool found = false;
    for (const ImplicationRule& r : *rules) {
      if (r.lhs == planted.lhs && r.rhs == planted.rhs) {
        EXPECT_EQ(r.lhs_ones, planted.lhs_ones);
        EXPECT_EQ(r.misses, planted.misses);
        found = true;
      }
    }
    EXPECT_TRUE(found) << planted.ToString();
  }
  // And the whole output matches brute force (no spurious extras).
  EXPECT_EQ(rules->Pairs(),
            BruteForceImplications(data.matrix, conf).Pairs());
}

TEST(PlantedTruthTest, AllPlantedSimilaritiesRecovered) {
  PlantedOptions opts;
  opts.seed = 4321;
  const PlantedData data = GeneratePlanted(opts);
  const double sim =
      double(opts.sim_intersection) /
      (opts.sim_ones_a + opts.sim_ones_b - opts.sim_intersection);
  SimilarityMiningOptions o;
  o.min_similarity = sim;
  auto pairs = MineSimilarities(data.matrix, o);
  ASSERT_TRUE(pairs.ok());
  for (const SimilarityPair& planted : data.similarities) {
    bool found = false;
    for (const SimilarityPair& p : *pairs) {
      if (p.a == planted.a && p.b == planted.b) {
        EXPECT_EQ(p.intersection, planted.intersection);
        found = true;
      }
    }
    EXPECT_TRUE(found) << planted.ToString();
  }
  EXPECT_EQ(pairs->Pairs(),
            BruteForceSimilarities(data.matrix, sim).Pairs());
}

TEST(PlantedTruthTest, ThresholdJustAbovePlantedExcludesThem) {
  PlantedOptions opts;
  opts.seed = 999;
  opts.num_implications = 5;
  const PlantedData data = GeneratePlanted(opts);
  const double conf =
      double(opts.implication_hits) / opts.implication_lhs_ones;
  ImplicationMiningOptions o;
  o.min_confidence = conf + 0.02;
  auto rules = MineImplications(data.matrix, o);
  ASSERT_TRUE(rules.ok());
  for (const ImplicationRule& planted : data.implications) {
    for (const ImplicationRule& r : *rules) {
      EXPECT_FALSE(r.lhs == planted.lhs && r.rhs == planted.rhs)
          << "planted rule above threshold: " << r.ToString();
    }
  }
}

}  // namespace
}  // namespace dmc
