#include "baselines/dhp.h"

#include <gtest/gtest.h>

#include "baselines/apriori.h"
#include "baselines/bruteforce.h"
#include "datagen/quest_gen.h"

namespace dmc {
namespace {

BinaryMatrix Workload(uint64_t seed) {
  QuestOptions q;
  q.num_transactions = 500;
  q.num_items = 60;
  q.seed = seed;
  return GenerateQuest(q);
}

TEST(DhpTest, WithSupportOneMatchesBruteForce) {
  const BinaryMatrix m = Workload(11);
  DhpOptions o;  // min_support = 1
  for (double conf : {0.5, 0.9}) {
    auto rules = DhpImplications(m, o, conf);
    EXPECT_EQ(rules.Pairs(), BruteForceImplications(m, conf).Pairs())
        << conf;
  }
}

TEST(DhpTest, MatchesAprioriUnderPairSupportFloor) {
  // DHP prunes pairs with support < min_support; filtering a-priori's
  // result by the same pair-support floor must give the same rules.
  const BinaryMatrix m = Workload(12);
  DhpOptions dhp_opts;
  dhp_opts.min_support = 5;
  const auto dhp_rules = DhpImplications(m, dhp_opts, 0.6);

  AprioriOptions ap_opts;
  ap_opts.min_support = 5;
  auto ap = AprioriImplications(m, ap_opts, 0.6);
  ASSERT_TRUE(ap.ok());
  ImplicationRuleSet filtered;
  for (const auto& r : *ap) {
    if (r.hits() >= 5) filtered.Add(r);
  }
  filtered.Canonicalize();
  EXPECT_EQ(dhp_rules.Pairs(), filtered.Pairs());
}

TEST(DhpTest, BucketFilterPrunesCounters) {
  const BinaryMatrix m = Workload(13);
  DhpOptions coarse;
  coarse.min_support = 8;
  coarse.num_buckets = 1 << 16;
  DhpStats stats;
  (void)DhpImplications(m, coarse, 0.6, &stats);
  // The exact counters must be far fewer than all pairs of frequent
  // columns.
  const size_t all_pairs =
      stats.frequent_columns * (stats.frequent_columns - 1) / 2;
  EXPECT_LT(stats.exact_counters, all_pairs);
  EXPECT_GT(stats.exact_counters, 0u);
}

TEST(DhpTest, TinyBucketCountStillSound) {
  // With very few buckets almost nothing is pruned, but results must
  // still be correct (bucket filter only ever over-approximates).
  const BinaryMatrix m = Workload(14);
  DhpOptions o;
  o.min_support = 3;
  o.num_buckets = 4;
  const auto rules = DhpImplications(m, o, 0.7);

  AprioriOptions ap_opts;
  ap_opts.min_support = 3;
  auto ap = AprioriImplications(m, ap_opts, 0.7);
  ASSERT_TRUE(ap.ok());
  ImplicationRuleSet filtered;
  for (const auto& r : *ap) {
    if (r.hits() >= 3) filtered.Add(r);
  }
  filtered.Canonicalize();
  EXPECT_EQ(rules.Pairs(), filtered.Pairs());
}

}  // namespace
}  // namespace dmc
