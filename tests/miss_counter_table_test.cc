#include "core/miss_counter_table.h"

#include <gtest/gtest.h>

namespace dmc {
namespace {

TEST(MissCounterTableTest, StartsEmpty) {
  MemoryTracker tracker;
  MissCounterTable t(10, 8, &tracker);
  for (ColumnId c = 0; c < 10; ++c) EXPECT_FALSE(t.HasList(c));
  EXPECT_EQ(t.total_entries(), 0u);
  EXPECT_EQ(t.bytes(), 0u);
  EXPECT_EQ(tracker.current_bytes(), 0u);
}

TEST(MissCounterTableTest, CreateAccountsOverhead) {
  MemoryTracker tracker;
  MissCounterTable t(4, 8, &tracker);
  t.Create(2);
  EXPECT_TRUE(t.HasList(2));
  EXPECT_EQ(t.bytes(), MissCounterTable::kPerListOverheadBytes);
  EXPECT_EQ(tracker.current_bytes(), t.bytes());
  EXPECT_EQ(t.live_lists(), 1u);
}

TEST(MissCounterTableTest, ReplaceTracksEntryDelta) {
  MemoryTracker tracker;
  MissCounterTable t(4, 8, &tracker);
  t.Create(0);
  std::vector<CandidateEntry> entries{{1, 0}, {2, 1}, {3, 0}};
  t.Replace(0, entries);
  EXPECT_EQ(t.total_entries(), 3u);
  EXPECT_EQ(t.bytes(), MissCounterTable::kPerListOverheadBytes + 3 * 8);
  ASSERT_EQ(t.List(0).size(), 3u);
  EXPECT_EQ(t.List(0)[1].cand, 2u);
  EXPECT_EQ(t.List(0)[1].miss, 1u);

  std::vector<CandidateEntry> smaller{{2, 2}};
  t.Replace(0, smaller);
  EXPECT_EQ(t.total_entries(), 1u);
  EXPECT_EQ(t.bytes(), MissCounterTable::kPerListOverheadBytes + 8);
  EXPECT_EQ(tracker.current_bytes(), t.bytes());
  // Peak saw the 3-entry state.
  EXPECT_EQ(tracker.peak_bytes(),
            MissCounterTable::kPerListOverheadBytes + 3 * 8);
}

TEST(MissCounterTableTest, ReleaseFreesEverything) {
  MemoryTracker tracker;
  MissCounterTable t(4, 8, &tracker);
  t.Create(1);
  std::vector<CandidateEntry> entries{{2, 0}, {3, 0}};
  t.Replace(1, entries);
  t.Release(1);
  EXPECT_FALSE(t.HasList(1));
  EXPECT_EQ(t.total_entries(), 0u);
  EXPECT_EQ(t.bytes(), 0u);
  EXPECT_EQ(tracker.current_bytes(), 0u);
}

TEST(MissCounterTableTest, IdOnlyEntryCost) {
  MemoryTracker tracker;
  MissCounterTable t(4, MissCounterTable::kEntryBytesIdOnly, &tracker);
  t.Create(0);
  std::vector<CandidateEntry> entries{{1, 0}, {2, 0}};
  t.Replace(0, entries);
  EXPECT_EQ(t.bytes(), MissCounterTable::kPerListOverheadBytes + 2 * 4);
}

TEST(MissCounterTableTest, SharedTrackerComposesPeaks) {
  MemoryTracker tracker;
  {
    MissCounterTable a(4, 8, &tracker);
    a.Create(0);
    std::vector<CandidateEntry> e{{1, 0}};
    a.Replace(0, e);
  }  // destructor releases a's bytes
  EXPECT_EQ(tracker.current_bytes(), 0u);
  MissCounterTable b(4, 8, &tracker);
  b.Create(0);
  EXPECT_EQ(tracker.current_bytes(),
            MissCounterTable::kPerListOverheadBytes);
  EXPECT_GE(tracker.peak_bytes(),
            MissCounterTable::kPerListOverheadBytes + 8);
}

TEST(MissCounterTableTest, ReleaseEverything) {
  MemoryTracker tracker;
  MissCounterTable t(8, 8, &tracker);
  for (ColumnId c = 0; c < 8; c += 2) {
    t.Create(c);
    std::vector<CandidateEntry> e{{ColumnId(c + 1), 0}};
    t.Replace(c, e);
  }
  EXPECT_EQ(t.live_lists(), 4u);
  t.ReleaseEverything();
  EXPECT_EQ(t.live_lists(), 0u);
  EXPECT_EQ(t.total_entries(), 0u);
  EXPECT_EQ(tracker.current_bytes(), 0u);
}

}  // namespace
}  // namespace dmc
