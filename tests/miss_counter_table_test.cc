#include "core/miss_counter_table.h"

#include <vector>

#include <gtest/gtest.h>

namespace dmc {
namespace {

// Convenience: install entries {cand[i], miss[i]} into column `c`.
void Fill(MissCounterTable& t, ColumnId c,
          const std::vector<ColumnId>& cand,
          const std::vector<uint32_t>& miss) {
  t.Assign(c, cand.data(), miss.data(), cand.size());
}

TEST(MissCounterTableTest, StartsEmpty) {
  MemoryTracker tracker;
  MissCounterTable t(10, 8, &tracker);
  for (ColumnId c = 0; c < 10; ++c) EXPECT_FALSE(t.HasList(c));
  EXPECT_EQ(t.total_entries(), 0u);
  EXPECT_EQ(t.bytes(), 0u);
  EXPECT_EQ(tracker.current_bytes(), 0u);
}

TEST(MissCounterTableTest, CreateAccountsOverhead) {
  MemoryTracker tracker;
  MissCounterTable t(4, 8, &tracker);
  t.Create(2);
  EXPECT_TRUE(t.HasList(2));
  EXPECT_EQ(t.bytes(), MissCounterTable::kPerListOverheadBytes);
  EXPECT_EQ(tracker.current_bytes(), t.bytes());
  EXPECT_EQ(t.live_lists(), 1u);
}

TEST(MissCounterTableTest, AssignTracksEntryDelta) {
  MemoryTracker tracker;
  MissCounterTable t(4, 8, &tracker);
  t.Create(0);
  Fill(t, 0, {1, 2, 3}, {0, 1, 0});
  EXPECT_EQ(t.total_entries(), 3u);
  EXPECT_EQ(t.bytes(), MissCounterTable::kPerListOverheadBytes + 3 * 8);
  const auto list = t.List(0);
  ASSERT_EQ(list.size, 3u);
  EXPECT_EQ(list.cand[1], 2u);
  EXPECT_EQ(list.miss[1], 1u);

  Fill(t, 0, {2}, {2});
  EXPECT_EQ(t.total_entries(), 1u);
  EXPECT_EQ(t.bytes(), MissCounterTable::kPerListOverheadBytes + 8);
  EXPECT_EQ(tracker.current_bytes(), t.bytes());
  // Peak saw the 3-entry state.
  EXPECT_EQ(tracker.peak_bytes(),
            MissCounterTable::kPerListOverheadBytes + 3 * 8);
}

TEST(MissCounterTableTest, SetSizeCommitsInPlaceEdits) {
  MemoryTracker tracker;
  MissCounterTable t(4, 8, &tracker);
  t.Create(0);
  auto m = t.Reserve(0, 4);
  ASSERT_GE(m.capacity, 4u);
  for (uint32_t i = 0; i < 4; ++i) {
    m.cand[i] = i + 10;
    m.miss[i] = i;
  }
  t.SetSize(0, 4);
  EXPECT_EQ(t.total_entries(), 4u);
  EXPECT_EQ(t.bytes(), MissCounterTable::kPerListOverheadBytes + 4 * 8);
  EXPECT_EQ(tracker.current_bytes(), t.bytes());

  // Compact in place to 2 survivors.
  auto m2 = t.Mutable(0);
  m2.cand[0] = m2.cand[1];
  m2.miss[0] = m2.miss[1];
  m2.cand[1] = m2.cand[3];
  m2.miss[1] = m2.miss[3];
  t.SetSize(0, 2);
  const auto list = t.List(0);
  ASSERT_EQ(list.size, 2u);
  EXPECT_EQ(list.cand[0], 11u);
  EXPECT_EQ(list.cand[1], 13u);
  EXPECT_EQ(tracker.current_bytes(),
            MissCounterTable::kPerListOverheadBytes + 2 * 8);
}

TEST(MissCounterTableTest, ReserveGrowthPreservesContents) {
  MemoryTracker tracker;
  MissCounterTable t(4, 8, &tracker);
  t.Create(0);
  Fill(t, 0, {5, 6, 7}, {1, 2, 3});
  const size_t bytes_before = tracker.current_bytes();
  auto m = t.Reserve(0, 100);  // forces a move to a bigger block
  ASSERT_GE(m.capacity, 100u);
  EXPECT_EQ(m.size, 3u);
  EXPECT_EQ(m.cand[0], 5u);
  EXPECT_EQ(m.cand[2], 7u);
  EXPECT_EQ(m.miss[2], 3u);
  // Capacity is physical only: accounted bytes are unchanged until
  // SetSize commits a new logical size.
  EXPECT_EQ(tracker.current_bytes(), bytes_before);
}

TEST(MissCounterTableTest, ArenaRecyclesReleasedBlocks) {
  MemoryTracker tracker;
  MissCounterTable t(4, 8, &tracker);
  t.Create(0);
  Fill(t, 0, {1, 2, 3, 4}, {0, 0, 0, 0});
  const size_t slabs_after_first = t.arena_bytes();
  EXPECT_GT(slabs_after_first, 0u);
  t.Release(0);
  // A same-size-class list must reuse the freed block: no slab growth.
  t.Create(1);
  Fill(t, 1, {9, 10, 11, 12}, {0, 0, 0, 0});
  EXPECT_EQ(t.arena_bytes(), slabs_after_first);
}

TEST(MissCounterTableTest, PeakEntriesTracksTransientHighWaterMark) {
  MemoryTracker tracker;
  MissCounterTable t(4, 8, &tracker);
  t.Create(0);
  Fill(t, 0, {1, 2, 3, 4, 5}, {0, 0, 0, 0, 0});
  Fill(t, 0, {1}, {0});
  EXPECT_EQ(t.total_entries(), 1u);
  EXPECT_EQ(t.peak_entries(), 5u);

  // The interval peak mirrors MemoryTracker::TakeIntervalPeak: it reports
  // the max since the last call, then re-arms at the current level.
  EXPECT_EQ(t.TakeEntriesIntervalPeak(), 5u);
  EXPECT_EQ(t.TakeEntriesIntervalPeak(), 1u);
  Fill(t, 0, {1, 2, 3}, {0, 0, 0});
  Fill(t, 0, {1, 2}, {0, 0});
  EXPECT_EQ(t.TakeEntriesIntervalPeak(), 3u);
  EXPECT_EQ(t.peak_entries(), 5u);
}

TEST(MissCounterTableTest, ReleaseFreesEverything) {
  MemoryTracker tracker;
  MissCounterTable t(4, 8, &tracker);
  t.Create(1);
  Fill(t, 1, {2, 3}, {0, 0});
  t.Release(1);
  EXPECT_FALSE(t.HasList(1));
  EXPECT_EQ(t.total_entries(), 0u);
  EXPECT_EQ(t.bytes(), 0u);
  EXPECT_EQ(tracker.current_bytes(), 0u);
}

TEST(MissCounterTableTest, IdOnlyEntryCost) {
  MemoryTracker tracker;
  MissCounterTable t(4, MissCounterTable::kEntryBytesIdOnly, &tracker);
  t.Create(0);
  Fill(t, 0, {1, 2}, {0, 0});
  EXPECT_EQ(t.bytes(), MissCounterTable::kPerListOverheadBytes + 2 * 4);
}

TEST(MissCounterTableTest, SharedTrackerComposesPeaks) {
  MemoryTracker tracker;
  {
    MissCounterTable a(4, 8, &tracker);
    a.Create(0);
    Fill(a, 0, {1}, {0});
  }  // destructor releases a's bytes
  EXPECT_EQ(tracker.current_bytes(), 0u);
  MissCounterTable b(4, 8, &tracker);
  b.Create(0);
  EXPECT_EQ(tracker.current_bytes(),
            MissCounterTable::kPerListOverheadBytes);
  EXPECT_GE(tracker.peak_bytes(),
            MissCounterTable::kPerListOverheadBytes + 8);
}

TEST(MissCounterTableTest, ReleaseEverything) {
  MemoryTracker tracker;
  MissCounterTable t(8, 8, &tracker);
  for (ColumnId c = 0; c < 8; c += 2) {
    t.Create(c);
    Fill(t, c, {ColumnId(c + 1)}, {0});
  }
  EXPECT_EQ(t.live_lists(), 4u);
  t.ReleaseEverything();
  EXPECT_EQ(t.live_lists(), 0u);
  EXPECT_EQ(t.total_entries(), 0u);
  EXPECT_EQ(tracker.current_bytes(), 0u);
}

}  // namespace
}  // namespace dmc
