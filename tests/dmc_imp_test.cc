#include "core/dmc_imp.h"

#include <gtest/gtest.h>

#include "baselines/bruteforce.h"
#include "core/engine.h"
#include "matrix/binary_matrix.h"
#include "rules/verifier.h"
#include "util/random.h"

namespace dmc {
namespace {

ImplicationMiningOptions PlainOptions(double minconf) {
  ImplicationMiningOptions o;
  o.min_confidence = minconf;
  o.policy.row_order = RowOrderPolicy::kIdentity;
  o.policy.hundred_percent_phase = false;
  o.policy.bitmap_fallback = false;
  return o;
}

// ---------------------------------------------------------------------
// Example 1.2 (Fig. 1): the 4x3 matrix of the introduction. At 100%
// confidence, with the §2 ordering (only sparser => denser), exactly
// c3 => c2 survives. 0-indexed: columns c1,c2,c3 -> 0,1,2.
BinaryMatrix Example12Matrix() {
  return BinaryMatrix::FromRows(3, {{1, 2}, {0, 1, 2}, {0}, {1}});
}

TEST(DmcImpTest, PaperExample12HundredPercent) {
  auto rules = MineImplications(Example12Matrix(), PlainOptions(1.0));
  ASSERT_TRUE(rules.ok());
  ASSERT_EQ(rules->size(), 1u);
  EXPECT_EQ(rules->rules()[0].lhs, 2u);  // c3
  EXPECT_EQ(rules->rules()[0].rhs, 1u);  // c2
  EXPECT_EQ(rules->rules()[0].misses, 0u);
  EXPECT_DOUBLE_EQ(rules->rules()[0].confidence(), 1.0);
}

TEST(DmcImpTest, PaperExample12MatchesBruteForce) {
  const BinaryMatrix m = Example12Matrix();
  for (double minconf : {0.4, 0.5, 0.85, 1.0}) {
    auto rules = MineImplications(m, PlainOptions(minconf));
    ASSERT_TRUE(rules.ok());
    EXPECT_EQ(rules->Pairs(), BruteForceImplications(m, minconf).Pairs())
        << "minconf=" << minconf;
  }
}

// ---------------------------------------------------------------------
// Example 3.1 (Fig. 2): rows r1..r4 are given verbatim in the paper's
// prose; every column has exactly five 1s, minconf = 80% -> one miss
// allowed. The tail rows below complete the column sums; the end-of-row
// candidate totals through r5 (1,4,4,7,9) match the paper's §4.1 trace
// exactly (they are independent of the tail). The paper's final history
// element is 2 because Fig. 2 keeps flushed survivor lists on display;
// this engine releases a list the moment its column completes.
BinaryMatrix Example31Matrix() {
  return BinaryMatrix::FromRows(6, {
                                       {1, 5},           // r1
                                       {2, 3, 4},        // r2
                                       {2, 4},           // r3
                                       {0, 1, 2, 5},     // r4
                                       {0, 3, 5},        // r5
                                       {0, 3, 4, 5},     // r6
                                       {0, 1, 2, 3, 4, 5},  // r7
                                       {1, 4},           // r8
                                       {0, 1, 2, 3},     // r9
                                   });
}

TEST(DmcImpTest, PaperExample31OnesAndBudgets) {
  const BinaryMatrix m = Example31Matrix();
  for (ColumnId c = 0; c < 6; ++c) {
    EXPECT_EQ(m.column_ones()[c], 5u) << "c" << c + 1;
    EXPECT_EQ(MaxMissesForConfidence(5, 0.8), 1);
  }
}

TEST(DmcImpTest, PaperExample31CandidateHistory) {
  const BinaryMatrix m = Example31Matrix();
  ImplicationMiningOptions o = PlainOptions(0.8);
  o.policy.record_history = true;
  MiningStats stats;
  auto rules = MineImplications(m, o, &stats);
  ASSERT_TRUE(rules.ok());
  // Each element is the intra-row candidate peak (mirroring the memory
  // history's TakeIntervalPeak semantics): during a row, lists that gain
  // entries are committed before lists that lose them, so the per-row
  // peak can exceed both the row's start and end totals. The end-of-row
  // totals of the paper's §4.1 trace — 1,4,4,7,9,7,7,6,0 — are enveloped
  // by this sequence, and the overall peak (9, at r5) is identical.
  const std::vector<size_t> expected{1, 4, 4, 8, 9, 9, 7, 7, 6};
  EXPECT_EQ(stats.candidate_history, expected);
  EXPECT_EQ(stats.peak_candidates, 9u);
}

TEST(DmcImpTest, PaperExample31MatchesBruteForce) {
  const BinaryMatrix m = Example31Matrix();
  auto rules = MineImplications(m, PlainOptions(0.8));
  ASSERT_TRUE(rules.ok());
  const auto truth = BruteForceImplications(m, 0.8);
  EXPECT_EQ(rules->Pairs(), truth.Pairs());
  const RuleVerifier verifier(m);
  EXPECT_TRUE(verifier.VerifyImplications(*rules, 0.8).ok());
}

TEST(DmcImpTest, SparserFirstLowersPeak) {
  // §4.1's point: sparsest-first never changes the answer but shrinks
  // the candidate peak. On the 9-row Example 3.1 toy the true intra-row
  // peak is too coarse to show the effect (a single dense row dominates
  // either order), so the claim is checked on a mixed-density matrix
  // large enough for the ordering to matter.
  Rng rng(1);
  MatrixBuilder b(50);
  std::vector<ColumnId> row;
  for (uint32_t r = 0; r < 300; ++r) {
    row.clear();
    const double density = 0.05 + 0.55 * rng.UniformDouble();
    for (ColumnId c = 0; c < 50; ++c) {
      if (rng.Bernoulli(density)) row.push_back(c);
    }
    b.AddRow(row);
  }
  const BinaryMatrix m = b.Build();

  ImplicationMiningOptions original = PlainOptions(0.8);
  original.policy.record_history = true;
  ImplicationMiningOptions sorted_order = original;
  sorted_order.policy.row_order = RowOrderPolicy::kExactSort;

  MiningStats stats_orig, stats_sorted;
  auto r1 = MineImplications(m, original, &stats_orig);
  auto r2 = MineImplications(m, sorted_order, &stats_sorted);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->Pairs(), r2->Pairs());
  EXPECT_LT(stats_sorted.peak_candidates, stats_orig.peak_candidates);
  EXPECT_LT(stats_sorted.peak_counter_bytes, stats_orig.peak_counter_bytes);
}

// ---------------------------------------------------------------------
// Engine behaviour.

TEST(DmcImpTest, RejectsInvalidThreshold) {
  const BinaryMatrix m = Example12Matrix();
  EXPECT_FALSE(MineImplications(m, PlainOptions(0.0)).ok());
  EXPECT_FALSE(MineImplications(m, PlainOptions(1.5)).ok());
  EXPECT_FALSE(MineImplications(m, PlainOptions(-0.1)).ok());
}

TEST(DmcImpTest, EmptyMatrix) {
  const BinaryMatrix m;
  auto rules = MineImplications(m, PlainOptions(0.9));
  ASSERT_TRUE(rules.ok());
  EXPECT_TRUE(rules->empty());
}

TEST(DmcImpTest, SingleColumnNoRules) {
  const BinaryMatrix m = BinaryMatrix::FromRows(1, {{0}, {0}, {}});
  auto rules = MineImplications(m, PlainOptions(0.5));
  ASSERT_TRUE(rules.ok());
  EXPECT_TRUE(rules->empty());
}

TEST(DmcImpTest, DuplicateColumnsProduceOneDirectedRule) {
  // Identical columns: only i<j orientation is reported.
  const BinaryMatrix m =
      BinaryMatrix::FromRows(2, {{0, 1}, {0, 1}, {0, 1}});
  auto rules = MineImplications(m, PlainOptions(1.0));
  ASSERT_TRUE(rules.ok());
  ASSERT_EQ(rules->size(), 1u);
  EXPECT_EQ(rules->rules()[0].lhs, 0u);
  EXPECT_EQ(rules->rules()[0].rhs, 1u);
}

TEST(DmcImpTest, HundredPhasePlusCutoffLosesNoRules) {
  const BinaryMatrix m = Example31Matrix();
  ImplicationMiningOptions plain = PlainOptions(0.8);
  ImplicationMiningOptions full = PlainOptions(0.8);
  full.policy.hundred_percent_phase = true;
  auto r_plain = MineImplications(m, plain);
  auto r_full = MineImplications(m, full);
  ASSERT_TRUE(r_plain.ok());
  ASSERT_TRUE(r_full.ok());
  EXPECT_EQ(r_plain->Pairs(), r_full->Pairs());
}

TEST(DmcImpTest, CutoffRemovesColumnsAtNinetyPercent) {
  // Columns with < 10 ones tolerate no miss at 90%; the cutoff must
  // remove them from the sub-100% phase without losing rules.
  MatrixBuilder b(4);
  // c0 subset of c1: ones(c0)=5 (100% rule only), c2 ~ c3 with one miss.
  for (int i = 0; i < 5; ++i) b.AddRow({0, 1});
  for (int i = 0; i < 7; ++i) b.AddRow({1});
  for (int i = 0; i < 18; ++i) b.AddRow({2, 3});
  b.AddRow({2});
  b.AddRow({2});
  b.AddRow({3, 1});
  const BinaryMatrix m = b.Build();

  ImplicationMiningOptions o = PlainOptions(0.9);
  o.policy.hundred_percent_phase = true;
  MiningStats stats;
  auto rules = MineImplications(m, o, &stats);
  ASSERT_TRUE(rules.ok());
  EXPECT_GT(stats.columns_cut_off, 0u);
  EXPECT_EQ(rules->Pairs(), BruteForceImplications(m, 0.9).Pairs());
}

TEST(DmcImpTest, BitmapFallbackProducesSameRules) {
  const BinaryMatrix m = Example31Matrix();
  ImplicationMiningOptions with_bitmap = PlainOptions(0.8);
  with_bitmap.policy.bitmap_fallback = true;
  with_bitmap.policy.memory_threshold_bytes = 1;  // force the switch
  with_bitmap.policy.bitmap_max_remaining_rows = 5;
  MiningStats stats;
  auto rules = MineImplications(m, with_bitmap, &stats);
  ASSERT_TRUE(rules.ok());
  EXPECT_TRUE(stats.sub_bitmap_triggered);
  EXPECT_EQ(stats.sub_bitmap_rows, 5u);
  EXPECT_EQ(rules->Pairs(), BruteForceImplications(m, 0.8).Pairs());
}

TEST(DmcImpTest, BitmapFallbackWholeMatrix) {
  const BinaryMatrix m = Example31Matrix();
  ImplicationMiningOptions o = PlainOptions(0.8);
  o.policy.bitmap_fallback = true;
  o.policy.memory_threshold_bytes = 0;   // switch allowed immediately
  o.policy.bitmap_max_remaining_rows = 100;  // covers all rows
  auto rules = MineImplications(m, o);
  ASSERT_TRUE(rules.ok());
  EXPECT_EQ(rules->Pairs(), BruteForceImplications(m, 0.8).Pairs());
}

TEST(DmcImpTest, StatsTimeBreakdownIsConsistent) {
  const BinaryMatrix m = Example31Matrix();
  ImplicationMiningOptions o = PlainOptions(0.8);
  o.policy.hundred_percent_phase = true;
  MiningStats stats;
  ASSERT_TRUE(MineImplications(m, o, &stats).ok());
  EXPECT_GE(stats.total_seconds,
            stats.hundred_seconds() + stats.sub_seconds());
  EXPECT_GT(stats.peak_counter_bytes, 0u);
}

TEST(DmcImpTest, RulesCarryExactCounts) {
  const BinaryMatrix m = Example31Matrix();
  for (double minconf : {0.6, 0.8, 1.0}) {
    auto rules = MineImplications(m, PlainOptions(minconf));
    ASSERT_TRUE(rules.ok());
    const RuleVerifier verifier(m);
    EXPECT_TRUE(verifier.VerifyImplications(*rules, minconf).ok())
        << "minconf=" << minconf << ": "
        << verifier.VerifyImplications(*rules, minconf).ToString();
  }
}

TEST(DmcImpTest, NoCandidatesAddedAfterBudgetExhausted) {
  // Example 1.3's second point: once cnt(c_i) exceeds maxmis(c_i), no new
  // candidate is ever added for c_i — a column first co-occurring with it
  // after that point has already missed too often.
  // c0: 20 ones, minconf 0.85 -> maxmis = 3. c1 co-occurs with c0 only
  // from c0's 5th row onwards (4 misses already) -> never a candidate,
  // and the candidate count must not grow after row 4.
  MatrixBuilder b(2);
  for (int i = 0; i < 4; ++i) b.AddRow({0});
  for (int i = 0; i < 16; ++i) b.AddRow({0, 1});
  for (int i = 0; i < 10; ++i) b.AddRow({1});
  const BinaryMatrix m = b.Build();

  ImplicationMiningOptions o = PlainOptions(0.85);
  o.policy.record_history = true;
  MiningStats stats;
  auto rules = MineImplications(m, o, &stats);
  ASSERT_TRUE(rules.ok());
  // conf(c0 => c1) = 16/20 = 0.8 < 0.85: correctly absent.
  EXPECT_TRUE(rules->empty());
  // After c0's budget is gone (row 4, cnt=4 > maxmis=3), no candidates
  // ever appear for it.
  ASSERT_EQ(stats.candidate_history.size(), m.num_rows());
  for (size_t r = 4; r < stats.candidate_history.size(); ++r) {
    EXPECT_EQ(stats.candidate_history[r], 0u) << "row " << r;
  }
  // Sanity: at 0.8 the rule is present.
  auto at80 = MineImplications(m, PlainOptions(0.8));
  ASSERT_TRUE(at80.ok());
  EXPECT_EQ(at80->size(), 1u);
}

TEST(DmcImpTest, DeletedCandidateCannotResurrect) {
  // §3.3's monotonicity argument: once a candidate is deleted its column
  // can never re-add it, even if they co-occur heavily afterwards.
  // c0/c1: 3 early misses (budget 2), then 20 joint rows.
  MatrixBuilder b(2);
  for (int i = 0; i < 3; ++i) b.AddRow({0});
  for (int i = 0; i < 20; ++i) b.AddRow({0, 1});
  for (int i = 0; i < 4; ++i) b.AddRow({1});
  const BinaryMatrix m = b.Build();
  // ones(c0)=23 < ones(c1)=24, so the canonical rule is c0 => c1;
  // minconf=0.9 -> maxmis=2 < the 3 early misses.
  auto rules = MineImplications(m, PlainOptions(0.9));
  ASSERT_TRUE(rules.ok());
  EXPECT_TRUE(rules->empty());
  EXPECT_EQ(rules->Pairs(), BruteForceImplications(m, 0.9).Pairs());
}

TEST(DmcImpTest, RowReorderingNeverChangesRules) {
  const BinaryMatrix m = Example31Matrix();
  for (auto order : {RowOrderPolicy::kIdentity,
                     RowOrderPolicy::kDensityBuckets,
                     RowOrderPolicy::kExactSort}) {
    ImplicationMiningOptions o = PlainOptions(0.8);
    o.policy.row_order = order;
    auto rules = MineImplications(m, o);
    ASSERT_TRUE(rules.ok());
    EXPECT_EQ(rules->Pairs(), BruteForceImplications(m, 0.8).Pairs());
  }
}

}  // namespace
}  // namespace dmc
