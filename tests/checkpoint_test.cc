#include "core/checkpoint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "util/atomic_io.h"

namespace dmc {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

ExternalCheckpoint SampleCheckpoint() {
  ExternalCheckpoint cp;
  cp.input = {123, 0xDEADBEEFull};
  cp.bucketed = true;
  cp.num_columns = 4;
  cp.num_rows = 9;
  cp.column_ones = {3, 0, 5, 1};
  cp.buckets.push_back({1, 4, 20});
  cp.buckets.push_back({2, 5, 35});
  return cp;
}

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // ctest runs each case as its own parallel process; a per-case
    // directory keeps them from clobbering each other.
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = testing::TempDir() + "/" +
           std::string(info->test_suite_name()) + "_" + info->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    path_ = dir_ + "/ckpt.bin";
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
  std::string path_;
};

TEST_F(CheckpointTest, RoundTripPreservesEveryField) {
  const ExternalCheckpoint cp = SampleCheckpoint();
  ASSERT_TRUE(WriteCheckpointFile(cp, path_).ok());
  auto read = ReadCheckpointFile(path_);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_TRUE(read->input == cp.input);
  EXPECT_EQ(read->bucketed, cp.bucketed);
  EXPECT_EQ(read->num_columns, cp.num_columns);
  EXPECT_EQ(read->num_rows, cp.num_rows);
  EXPECT_EQ(read->column_ones, cp.column_ones);
  ASSERT_EQ(read->buckets.size(), cp.buckets.size());
  for (size_t i = 0; i < cp.buckets.size(); ++i) {
    EXPECT_EQ(read->buckets[i].id, cp.buckets[i].id);
    EXPECT_EQ(read->buckets[i].rows, cp.buckets[i].rows);
    EXPECT_EQ(read->buckets[i].bytes, cp.buckets[i].bytes);
  }
}

TEST_F(CheckpointTest, MissingFileIsIOError) {
  EXPECT_EQ(ReadCheckpointFile(dir_ + "/nope.bin").status().code(),
            StatusCode::kIOError);
}

TEST_F(CheckpointTest, EveryTruncationIsDataLoss) {
  ASSERT_TRUE(WriteCheckpointFile(SampleCheckpoint(), path_).ok());
  const std::string whole = ReadFileOrDie(path_);
  for (size_t len = 0; len < whole.size(); ++len) {
    ASSERT_TRUE(AtomicWriteFile(path_, whole.substr(0, len)).ok());
    const auto read = ReadCheckpointFile(path_);
    ASSERT_FALSE(read.ok()) << "prefix length " << len;
    EXPECT_EQ(read.status().code(), StatusCode::kDataLoss)
        << "prefix length " << len;
  }
}

TEST_F(CheckpointTest, EverySingleBitFlipIsDataLoss) {
  ASSERT_TRUE(WriteCheckpointFile(SampleCheckpoint(), path_).ok());
  const std::string whole = ReadFileOrDie(path_);
  for (size_t i = 0; i < whole.size(); ++i) {
    std::string mutated = whole;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x10);
    ASSERT_TRUE(AtomicWriteFile(path_, mutated).ok());
    const auto read = ReadCheckpointFile(path_);
    ASSERT_FALSE(read.ok()) << "flipped byte " << i;
    EXPECT_EQ(read.status().code(), StatusCode::kDataLoss)
        << "flipped byte " << i;
  }
}

TEST_F(CheckpointTest, TrailingGarbageIsDataLoss) {
  ASSERT_TRUE(WriteCheckpointFile(SampleCheckpoint(), path_).ok());
  ASSERT_TRUE(AtomicWriteFile(path_, ReadFileOrDie(path_) + "x").ok());
  EXPECT_EQ(ReadCheckpointFile(path_).status().code(),
            StatusCode::kDataLoss);
}

TEST_F(CheckpointTest, FutureVersionIsDataLossEvenWithValidChecksum) {
  // A checkpoint from a *newer* build is structurally sound and
  // checksums clean; only the version check can keep this build from
  // misparsing it. Bump the version and re-seal the checksum so that
  // check is the one being exercised.
  ASSERT_TRUE(WriteCheckpointFile(SampleCheckpoint(), path_).ok());
  std::string bytes = ReadFileOrDie(path_);
  ASSERT_GT(bytes.size(), 12u);
  bytes[8] = 2;  // u32 version lives right after the 8-byte magic
  uint64_t h = 14695981039346656037ull;  // FNV-1a over all bytes above
  for (size_t i = 0; i + 12 < bytes.size(); ++i) {
    h = (h ^ static_cast<unsigned char>(bytes[i])) * 1099511628211ull;
  }
  for (int i = 0; i < 8; ++i) {
    bytes[bytes.size() - 12 + i] = static_cast<char>(h >> (8 * i));
  }
  ASSERT_TRUE(AtomicWriteFile(path_, bytes).ok());
  const auto read = ReadCheckpointFile(path_);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kDataLoss);
}

TEST_F(CheckpointTest, FingerprintTracksContent) {
  const std::string input = dir_ + "/input.txt";
  ASSERT_TRUE(AtomicWriteFile(input, "0 1 2\n3\n").ok());
  auto a = FingerprintFile(input);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->bytes, 8u);
  auto again = FingerprintFile(input);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(*a == *again);
  ASSERT_TRUE(AtomicWriteFile(input, "0 1 2\n4\n").ok());
  auto changed = FingerprintFile(input);
  ASSERT_TRUE(changed.ok());
  EXPECT_FALSE(*a == *changed);
}

class ValidateCheckpointTest : public CheckpointTest {
 protected:
  void SetUp() override {
    CheckpointTest::SetUp();
    input_ = dir_ + "/input.txt";
    ASSERT_TRUE(AtomicWriteFile(input_, "0 1\n2\n0 2\n").ok());
    auto fp = FingerprintFile(input_);
    ASSERT_TRUE(fp.ok());
    cp_ = ExternalCheckpoint{};
    cp_.input = *fp;
    cp_.bucketed = true;
    cp_.num_columns = 3;
    cp_.num_rows = 3;
    cp_.column_ones = {2, 1, 2};
    const std::string low = ExternalBucketPath(dir_, 0);
    ASSERT_TRUE(AtomicWriteFile(low, "2\n").ok());
    cp_.buckets.push_back(
        {0, 1, static_cast<uint64_t>(std::filesystem::file_size(low))});
    const std::string high = ExternalBucketPath(dir_, 1);
    ASSERT_TRUE(AtomicWriteFile(high, "0 1\n0 2\n").ok());
    cp_.buckets.push_back(
        {1, 2, static_cast<uint64_t>(std::filesystem::file_size(high))});
  }

  std::string input_;
  ExternalCheckpoint cp_;
};

TEST_F(ValidateCheckpointTest, IntactStateValidates) {
  EXPECT_TRUE(ValidateCheckpoint(cp_, input_, dir_).ok());
}

TEST_F(ValidateCheckpointTest, ChangedInputIsFailedPrecondition) {
  ASSERT_TRUE(AtomicWriteFile(input_, "0 1\n2\n0 1\n").ok());
  EXPECT_EQ(ValidateCheckpoint(cp_, input_, dir_).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ValidateCheckpointTest, MissingBucketFileIsDataLoss) {
  std::filesystem::remove(ExternalBucketPath(dir_, 1));
  EXPECT_EQ(ValidateCheckpoint(cp_, input_, dir_).code(),
            StatusCode::kDataLoss);
}

TEST_F(ValidateCheckpointTest, ResizedBucketFileIsDataLoss) {
  ASSERT_TRUE(AtomicWriteFile(ExternalBucketPath(dir_, 1), "2\n2\n").ok());
  EXPECT_EQ(ValidateCheckpoint(cp_, input_, dir_).code(),
            StatusCode::kDataLoss);
}

}  // namespace
}  // namespace dmc
