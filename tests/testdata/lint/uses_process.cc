// Fixture: raw process-control primitives outside src/shard/process_*
// must fire banned-raw-process once each (lines 12 through 16). Member
// calls, wrapper namespaces and plain identifiers named like the
// primitives stay legal.

#include <sys/wait.h>
#include <unistd.h>

namespace fixture {

inline int SpawnRaw(char** argv, char** envp) {
  const int pid = fork();
  if (pid == 0) execve(argv[0], argv, envp);
  if (pid == 0) execvp(argv[0], argv);
  static_cast<void>(::kill(pid, 9));
  static_cast<void>(::waitpid(pid, nullptr, 0));
  return pid;
}

struct Child {
  int Signal(int sig);
};

// Member calls and named-namespace wrappers are exactly what the rule
// routes callers onto; neither may fire.
inline int ViaWrapper(Child& c) { return c.kill(9) + c.Signal(15); }

int ViaNamespace(int pid);
inline int CallViaNamespace(int pid) {
  return fixture::ViaNamespace(pid) + proc::kill(pid, 9);
}

inline int fork_count(int fork) { return fork + 1; }  // not a call

}  // namespace fixture
