// Fixture: exactly one banned-stdio violation (the std::cout line).
// snprintf is string formatting, not output, and stays legal.
#include <cstdio>
#include <iostream>

namespace dmc_fixture {

void Shout() {
  std::cout << "library code must not write to stdout\n";
}

void Format(char* buf, unsigned long n) {
  std::snprintf(buf, n, "ok");
}

}  // namespace dmc_fixture
