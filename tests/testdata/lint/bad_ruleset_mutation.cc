// Fixture: exactly one banned-ruleset-mutation violation (the
// mutable_rules() call). The suppressed call, the bare identifier, and
// a member named mutable_pairs that is never called are all legal.
#include <cstddef>

namespace dmc_fixture {

struct FakeRuleSet {
  int* mutable_rules() { return nullptr; }
  int* mutable_pairs() { return nullptr; }
  size_t mutable_pairs_count = 0;
};

void Mutates(FakeRuleSet& rules) {
  rules.mutable_rules();
}

void LegalForms(FakeRuleSet& rules) {
  rules.mutable_pairs();  // dmc_lint: ignore
  auto member = &FakeRuleSet::mutable_pairs_count;
  (void)member;
}

}  // namespace dmc_fixture
