// Fixture: a raw std::mutex member that no annotation references must
// fire unannotated-mutex exactly once (line 19). The second mutex is
// tied into the annotation graph by the DMC_GUARDED_BY reference below
// and stays legal.

#ifndef DMC_TESTS_TESTDATA_LINT_BAD_MUTEX_MEMBER_H_
#define DMC_TESTS_TESTDATA_LINT_BAD_MUTEX_MEMBER_H_

#include <mutex>
#include <vector>

namespace fixture {

class Counters {
 public:
  void Bump();

 private:
  std::mutex mu_;
  std::mutex annotated_mu_;
  std::vector<int> counts_ DMC_GUARDED_BY(annotated_mu_);
};

}  // namespace fixture

#endif  // DMC_TESTS_TESTDATA_LINT_BAD_MUTEX_MEMBER_H_
