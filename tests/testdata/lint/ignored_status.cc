// Fixture: exactly one discarded-status violation (the bare Frob() call).
// Every other use checks, propagates, returns, or (void)-casts the result.

namespace dmc_fixture {

class Status {
 public:
  bool ok() const { return true; }
};

Status Frob();
Status Other();

void Ignorer() {
  Frob();  // <- the one violation
}

Status FineUses() {
  Status s = Frob();
  if (!s.ok()) return s;
  (void)Other();
  return Other();
}

}  // namespace dmc_fixture
