// Fixture (regression): a line comment whose trailing backslash splices
// the next physical line into the comment. v1 ended the comment at the
// newline and scanned the continuation as code — phantom banned-rand
// and banned-stdio findings on commented-out text. The token engine
// removes the splice first; this file must be completely clean.

namespace fixture {

inline int Seed() { return 1; }

// everything on the next physical line is still this comment \
   srand(42); std::cout << seed;

}  // namespace fixture
