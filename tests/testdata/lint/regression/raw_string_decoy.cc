// Fixture (regression): banned identifiers inside a raw string literal.
// The v1 substring scrubber only understood plain "..." quoting, so the
// lone inner quote below flipped it out of string state and the rest of
// the literal scanned as code — phantom banned-rand and banned-stdio
// findings on data. The token engine lexes the whole raw string as one
// literal; this file must be completely clean.

#include <string>

namespace fixture {

inline std::string LintManualExcerpt() {
  return R"(say "no to rand() and srand(7) and std::cout in library code)";
}

}  // namespace fixture
