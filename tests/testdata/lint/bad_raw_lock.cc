// Fixture: bare .lock()/.unlock() member calls outside src/util/ must
// fire banned-raw-lock once each (lines 10 and 12). A symbol merely
// named lock stays legal.

#include <mutex>

namespace fixture {

inline void Critical(std::mutex& mu, int* v) {
  mu.lock();
  ++*v;
  mu.unlock();
}

inline int LockFree(int lock) { return lock + 1; }

}  // namespace fixture
