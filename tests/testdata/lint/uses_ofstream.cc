// Fixture: exactly one banned-file-stream violation (the std::ofstream
// line). Reading via std::ifstream is legal — the rule only guards
// output streams.
#include <fstream>
#include <string>

namespace dmc_fixture {

void Dump(const std::string& path) {
  std::ofstream out(path);
  out << "library code must hand exports to src/observe\n";
}

bool Probe(const std::string& path) {
  std::ifstream in(path);
  return in.good();
}

}  // namespace dmc_fixture
