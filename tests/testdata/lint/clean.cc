// Fixture: a fully clean translation unit — no rule may fire, including
// the suppressed violation below.
#include <cstdlib>

#include "clean.h"

namespace dmc_fixture {

int LegacySeed() {
  return rand();  // dmc_lint: ignore — fixture exercises line suppression
}

}  // namespace dmc_fixture
