// Fixture: exactly one include-guard violation (no #pragma once and no
// #ifndef/#define pair at the top of the header).

namespace dmc_fixture {

inline int Answer() { return 42; }

}  // namespace dmc_fixture
