// Fixture: exactly one banned-raw-unlink violation (the ::unlink call).
// The std::filesystem::remove call, the member .remove() call and the
// 3-arg <algorithm> remove are all legal.
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <list>
#include <string>

namespace dmc_fixture {

void Cleanup(const std::string& path) {
  ::unlink(path.c_str());
}

void LegalForms(std::list<int>& l, std::string& s,
                const std::string& path) {
  std::filesystem::remove(path);
  l.remove(7);
  s.erase(std::remove(s.begin(), s.end(), 'x'), s.end());
}

}  // namespace dmc_fixture
