// Fixture: the path ends with core/kernels.cc, an audited hot-path TU,
// so every named atomic operation must spell its memory order. The
// defaulted .load() on line 11 fires atomic-ordering-audit exactly
// once; the explicit operations around it stay legal.

#include <atomic>

namespace fixture {

inline long Drain(std::atomic<long>& pending) {
  const long seen = pending.load();
  pending.fetch_add(1, std::memory_order_relaxed);
  pending.store(0, std::memory_order_release);
  return seen;
}

}  // namespace fixture
