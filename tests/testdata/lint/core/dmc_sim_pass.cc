// Fixture: a std::unordered_map in a file whose path ends with
// core/dmc_sim_pass.cc (a hot-path TU) must fire banned-hot-path-map
// exactly once. The suppressed use and the unqualified mention stay
// legal. This is testdata, not the real similarity pass.

#include <unordered_map>
#include <vector>

namespace fixture {

inline int CountDense(const std::vector<unsigned>& touched) {
  std::unordered_map<unsigned, int> hits;
  for (unsigned c : touched) ++hits[c];
  std::unordered_map<unsigned, int> allowed;  // dmc_lint: ignore
  int map = static_cast<int>(allowed.size());
  return static_cast<int>(hits.size()) + map;
}

}  // namespace fixture
