// Fixture: exactly one banned-rand violation (the call below).
// "rand()" in this comment and "srand(1)" in the string must not fire.
#include <cstdlib>

namespace dmc_fixture {

const char* kDecoy = "calls srand(1) and rand()";

int Roll() {
  return rand();
}

int BrandNew() { return 7; }  // `brand`-like identifiers are not matches

}  // namespace dmc_fixture
