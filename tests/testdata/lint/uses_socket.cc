// Fixture: raw BSD socket primitives outside src/serve/net_* must fire
// banned-raw-socket once each (lines 11 through 14). Member calls,
// wrapper namespaces and plain identifiers named like the primitives
// stay legal.

#include <sys/socket.h>

namespace fixture {

inline void TalkRaw(int listen_fd, char* buf) {
  const int fd = socket(2 /*AF_INET*/, 1 /*SOCK_STREAM*/, 0);
  const int conn = accept(listen_fd, nullptr, nullptr);
  static_cast<void>(::recv(conn, buf, 16, 0));
  static_cast<void>(::send(fd, buf, 16, 0));
}

struct Wrapper {
  int Dispatch(const char* data, int n);
};

inline int ViaWrapper(Wrapper& w, const char* data) {
  return w.Dispatch(data, 4);
}

int ViaNamespace(int fd, const char* data);
inline int CallViaNamespace(int fd, const char* data) {
  return fixture::ViaNamespace(fd, data) + net::send(fd, data, 4);
}

inline int accept_rate(int accept) { return accept + 1; }  // not a call

}  // namespace fixture
