// Fixture: a fully clean header — no rule may fire.

#ifndef DMC_TESTS_TESTDATA_LINT_CLEAN_H_
#define DMC_TESTS_TESTDATA_LINT_CLEAN_H_

namespace dmc_fixture {

inline int Twice(int x) { return 2 * x; }

}  // namespace dmc_fixture

#endif  // DMC_TESTS_TESTDATA_LINT_CLEAN_H_
