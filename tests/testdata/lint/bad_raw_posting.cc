// Fixture: exactly one banned-raw-posting violation (the nested RowId
// vector on line 16). Row-major ColumnId rows, a flat RowId vector, the
// suppressed declaration and a nested vector of a non-id type are all
// legal.
#include <cstdint>
#include <vector>

namespace dmc_fixture {

using RowId = uint32_t;
using ColumnId = uint32_t;

struct FakePostings {
  std::vector<std::vector<ColumnId>> rows;
  std::vector<RowId> scratch;
  std::vector<std::vector<RowId>> per_column;
  std::vector<std::vector<uint32_t>> also_ids;  // dmc_lint: ignore
  std::vector<std::vector<double>> weights;
};

}  // namespace dmc_fixture
