#include "core/thresholds.h"

#include <gtest/gtest.h>

namespace dmc {
namespace {

TEST(ThresholdsTest, MaxMissesForConfidenceExamples) {
  // Example 1.3: 100 ones at 85% confidence -> 15 misses allowed.
  EXPECT_EQ(MaxMissesForConfidence(100, 0.85), 15);
  // Example 3.1: 5 ones at 80% -> 1 miss.
  EXPECT_EQ(MaxMissesForConfidence(5, 0.8), 1);
  // 100% confidence -> no misses ever.
  EXPECT_EQ(MaxMissesForConfidence(100, 1.0), 0);
  EXPECT_EQ(MaxMissesForConfidence(0, 0.5), 0);
}

TEST(ThresholdsTest, MaxMissesBoundaryRounding) {
  // (1-0.9)*10 = 1 exactly; naive floating point gives 0.9999...
  EXPECT_EQ(MaxMissesForConfidence(10, 0.9), 1);
  EXPECT_EQ(MaxMissesForConfidence(9, 0.9), 0);
  EXPECT_EQ(MaxMissesForConfidence(20, 0.95), 1);
  EXPECT_EQ(MaxMissesForConfidence(19, 0.95), 0);
}

TEST(ThresholdsTest, MaxMissesConsistentWithConfidencePredicate) {
  // miss <= maxmis  <=>  (ones - miss)/ones >= minconf, checked over a
  // sweep of exact rational thresholds.
  for (uint32_t ones = 1; ones <= 60; ++ones) {
    for (int pct = 5; pct <= 100; pct += 5) {
      const double minconf = pct / 100.0;
      const int64_t mm = MaxMissesForConfidence(ones, minconf);
      for (uint32_t miss = 0; miss <= ones; ++miss) {
        // Exact rational comparison: (ones-miss)*100 >= pct*ones.
        const bool holds =
            uint64_t{ones - miss} * 100 >= uint64_t(pct) * ones;
        EXPECT_EQ(static_cast<int64_t>(miss) <= mm, holds)
            << "ones=" << ones << " pct=" << pct << " miss=" << miss;
      }
    }
  }
}

TEST(ThresholdsTest, SimilarityBudgetMatchesPredicate) {
  // mis <= budget  <=>  (a - mis)/(b + mis) >= s, exact rational check.
  for (uint32_t a = 1; a <= 30; ++a) {
    for (uint32_t b = a; b <= 30; ++b) {
      for (int pct = 10; pct <= 100; pct += 10) {
        const double s = pct / 100.0;
        const int64_t budget = MaxMissesForSimilarity(a, b, s);
        for (uint32_t mis = 0; mis <= a; ++mis) {
          const bool holds = uint64_t{a - mis} * 100 >=
                             uint64_t(pct) * (uint64_t{b} + mis);
          EXPECT_EQ(static_cast<int64_t>(mis) <= budget, holds)
              << "a=" << a << " b=" << b << " pct=" << pct
              << " mis=" << mis;
        }
      }
    }
  }
}

TEST(ThresholdsTest, ColumnDensityPruningIsNegativeBudget) {
  // a/b < s  <=>  budget < 0 (the §5.1 condition).
  EXPECT_LT(MaxMissesForSimilarity(3, 10, 0.5), 0);
  EXPECT_GE(MaxMissesForSimilarity(5, 10, 0.5), 0);
  EXPECT_GE(MaxMissesForSimilarity(10, 10, 0.5), 0);
}

TEST(ThresholdsTest, ColumnMaxMissesIsAtEqualOnes) {
  for (uint32_t a : {1u, 5u, 10u, 100u}) {
    for (double s : {0.5, 0.75, 0.9, 1.0}) {
      EXPECT_EQ(ColumnMaxMissesForSimilarity(a, s),
                MaxMissesForSimilarity(a, a, s));
      // No partner offers a looser budget than an equally-sparse one.
      for (uint32_t b = a; b <= a + 20; ++b) {
        EXPECT_LE(MaxMissesForSimilarity(a, b, s),
                  ColumnMaxMissesForSimilarity(a, s));
      }
    }
  }
}

TEST(ThresholdsTest, MinHitsComplementsBudgets) {
  EXPECT_EQ(MinHitsForConfidence(100, 0.85), 85);
  EXPECT_EQ(MinHitsForSimilarity(4, 5, 0.75), 4);  // Example 5.1
}

TEST(ThresholdsTest, ConfidenceCutoffSoundness) {
  // minconf=0.9: ones=10 tolerates one miss (must survive); ones=9 does
  // not. This is the off-by-one the paper's step-3 prose gets wrong (see
  // DESIGN.md).
  EXPECT_TRUE(ColumnSurvivesConfidenceCutoff(10, 0.9));
  EXPECT_FALSE(ColumnSurvivesConfidenceCutoff(9, 0.9));
  EXPECT_FALSE(ColumnSurvivesConfidenceCutoff(1, 0.9));
}

TEST(ThresholdsTest, SimilarityCutoffSoundness) {
  // s=0.75: a column with 3 ones can reach sim 3/4 with a 4-ones superset
  // (the paper's own footnoted boundary case) -> must survive.
  EXPECT_TRUE(ColumnSurvivesSimilarityCutoff(3, 0.75));
  EXPECT_FALSE(ColumnSurvivesSimilarityCutoff(2, 0.75));
  EXPECT_FALSE(ColumnSurvivesSimilarityCutoff(0, 0.5));
  // s = 1.0: no column can be in a NON-identical pair of sim 1.
  EXPECT_FALSE(ColumnSurvivesSimilarityCutoff(100, 1.0));
}

TEST(ThresholdsTest, SimilarityCutoffAgainstExhaustiveCheck) {
  for (uint32_t a = 1; a <= 40; ++a) {
    for (int pct = 10; pct <= 95; pct += 5) {
      const double s = pct / 100.0;
      // Best non-identical similarity for a column with `a` ones is
      // a/(a+1) (subset of a column with a+1 ones).
      const bool reachable = uint64_t{a} * 100 >= uint64_t(pct) * (a + 1);
      EXPECT_EQ(ColumnSurvivesSimilarityCutoff(a, s), reachable)
          << "a=" << a << " pct=" << pct;
    }
  }
}

}  // namespace
}  // namespace dmc
