// Shard wire protocol, per-task checkpoints and the k-way rule-set
// merge (src/shard/). Pure library tests: every frame round-trips
// exactly or decodes to kInvalidArgument, every torn checkpoint reads
// as kDataLoss, and the merge reproduces Canonicalize(union) byte for
// byte — the invariants the multi-process differential sweep leans on.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/checkpoint.h"
#include "rules/rule_set.h"
#include "shard/merge.h"
#include "shard/shard_checkpoint.h"
#include "shard/shard_protocol.h"
#include "util/random.h"
#include "util/status.h"

namespace dmc {
namespace shard {
namespace {

// Frames carry a u32-LE length prefix; DecodeMessagePayload wants the
// payload alone.
std::string_view PayloadOf(const std::string& frame) {
  EXPECT_GE(frame.size(), 4u);
  return std::string_view(frame).substr(4);
}

ShardPlan SamplePlan() {
  ShardPlan plan;
  plan.engine = Engine::kSimilarities;
  plan.threshold = 0.625;
  plan.row_order = 1;
  plan.hundred_percent_phase = false;
  plan.bitmap_fallback = true;
  plan.column_density_pruning = false;
  plan.max_hits_pruning = true;
  plan.kernel = 2;
  plan.memory_threshold_bytes = 7777;
  plan.bitmap_max_remaining_rows = 96;
  plan.progress_interval_rows = 512;
  plan.input_path = "/tmp/quest.txt";
  plan.work_dir = "/tmp/work";
  plan.num_columns = 5;  // the decoder insists column_ones covers it
  plan.num_rows = 4242;
  plan.column_ones = {0, 3, 9, 4242, 1u << 20};
  plan.buckets = {0, 2, 5};
  return plan;
}

ShardResult SampleImpResult() {
  ShardResult r;
  r.task_id = 7;
  r.engine = Engine::kImplications;
  r.imp_rules = {{1, 2, 30, 3}, {4, 5, 100, 0}, {9, 0, 12, 1}};
  r.mine_seconds = 1.5;
  r.peak_counter_bytes = 1u << 22;
  return r;
}

ShardResult SampleSimResult() {
  ShardResult r;
  r.task_id = 11;
  r.engine = Engine::kSimilarities;
  r.sim_pairs = {{1, 2, 30, 40, 25}, {3, 8, 12, 12, 12}};
  r.mine_seconds = 0.25;
  r.peak_counter_bytes = 512;
  return r;
}

TEST(ShardProtocolTest, HelloAndShutdownRoundTrip) {
  auto hello = DecodeMessagePayload(PayloadOf(EncodeHello()));
  ASSERT_TRUE(hello.ok());
  EXPECT_EQ(hello->op, Op::kHello);

  auto bye = DecodeMessagePayload(PayloadOf(EncodeShutdown()));
  ASSERT_TRUE(bye.ok());
  EXPECT_EQ(bye->op, Op::kShutdown);
}

TEST(ShardProtocolTest, InitRoundTripPreservesEveryPlanField) {
  const ShardPlan plan = SamplePlan();
  auto msg = DecodeMessagePayload(PayloadOf(EncodeInit(plan)));
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(msg->op, Op::kInit);
  const ShardPlan& p = msg->plan;
  EXPECT_EQ(p.engine, plan.engine);
  EXPECT_EQ(p.threshold, plan.threshold);
  EXPECT_EQ(p.row_order, plan.row_order);
  EXPECT_EQ(p.hundred_percent_phase, plan.hundred_percent_phase);
  EXPECT_EQ(p.bitmap_fallback, plan.bitmap_fallback);
  EXPECT_EQ(p.column_density_pruning, plan.column_density_pruning);
  EXPECT_EQ(p.max_hits_pruning, plan.max_hits_pruning);
  EXPECT_EQ(p.kernel, plan.kernel);
  EXPECT_EQ(p.memory_threshold_bytes, plan.memory_threshold_bytes);
  EXPECT_EQ(p.bitmap_max_remaining_rows, plan.bitmap_max_remaining_rows);
  EXPECT_EQ(p.progress_interval_rows, plan.progress_interval_rows);
  EXPECT_EQ(p.input_path, plan.input_path);
  EXPECT_EQ(p.work_dir, plan.work_dir);
  EXPECT_EQ(p.num_columns, plan.num_columns);
  EXPECT_EQ(p.num_rows, plan.num_rows);
  EXPECT_EQ(p.column_ones, plan.column_ones);
  EXPECT_EQ(p.buckets, plan.buckets);
}

TEST(ShardProtocolTest, TaskRoundTripPreservesMask) {
  const std::vector<uint8_t> mask = {1, 0, 0, 1, 1, 0, 1};
  auto msg = DecodeMessagePayload(PayloadOf(EncodeTask(42, mask)));
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(msg->op, Op::kTask);
  EXPECT_EQ(msg->task_id, 42u);
  EXPECT_EQ(msg->shard_mask, mask);
}

TEST(ShardProtocolTest, HeartbeatRoundTrip) {
  auto msg = DecodeMessagePayload(
      PayloadOf(EncodeHeartbeat(3, uint64_t{1} << 40)));
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(msg->op, Op::kHeartbeat);
  EXPECT_EQ(msg->task_id, 3u);
  EXPECT_EQ(msg->rows_processed, uint64_t{1} << 40);
}

TEST(ShardProtocolTest, ResultRoundTripBothEngines) {
  for (const ShardResult& r : {SampleImpResult(), SampleSimResult()}) {
    auto msg = DecodeMessagePayload(PayloadOf(EncodeResult(r)));
    ASSERT_TRUE(msg.ok());
    EXPECT_EQ(msg->op, Op::kResult);
    EXPECT_EQ(msg->result.task_id, r.task_id);
    EXPECT_EQ(msg->result.engine, r.engine);
    EXPECT_EQ(msg->result.imp_rules, r.imp_rules);
    EXPECT_EQ(msg->result.sim_pairs, r.sim_pairs);
    EXPECT_EQ(msg->result.mine_seconds, r.mine_seconds);
    EXPECT_EQ(msg->result.peak_counter_bytes, r.peak_counter_bytes);
  }
}

TEST(ShardProtocolTest, TaskErrorRoundTripKeepsCodeAndMessage) {
  const Status err = DataLossError("bucket 3 went missing");
  auto msg = DecodeMessagePayload(PayloadOf(EncodeTaskError(9, err)));
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(msg->op, Op::kTaskError);
  EXPECT_EQ(msg->task_id, 9u);
  EXPECT_EQ(msg->task_status.code(), StatusCode::kDataLoss);
  EXPECT_NE(msg->task_status.message().find("bucket 3"),
            std::string::npos);
}

TEST(ShardProtocolTest, EveryTruncationOfEveryOpIsInvalidArgument) {
  const std::string frames[] = {
      EncodeHello(),
      EncodeInit(SamplePlan()),
      EncodeTask(1, {1, 0, 1}),
      EncodeHeartbeat(2, 77),
      EncodeResult(SampleImpResult()),
      EncodeResult(SampleSimResult()),
      EncodeTaskError(3, IOError("boom")),
      EncodeShutdown(),
  };
  for (const std::string& frame : frames) {
    const std::string_view payload = PayloadOf(frame);
    for (size_t len = 0; len < payload.size(); ++len) {
      auto msg = DecodeMessagePayload(payload.substr(0, len));
      EXPECT_FALSE(msg.ok()) << "truncation to " << len << " of "
                             << payload.size() << " decoded";
      if (!msg.ok()) {
        EXPECT_EQ(msg.status().code(), StatusCode::kInvalidArgument);
      }
    }
  }
}

TEST(ShardProtocolTest, TrailingGarbageIsInvalidArgument) {
  std::string frame = EncodeHeartbeat(1, 2);
  std::string payload(PayloadOf(frame));
  payload.push_back('\0');
  auto msg = DecodeMessagePayload(payload);
  ASSERT_FALSE(msg.ok());
  EXPECT_EQ(msg.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardProtocolTest, VersionSkewAndUnknownOpAreRejected) {
  // Payload header: u16 version, u8 op, u8 reserved.
  std::string payload(PayloadOf(EncodeHello()));
  payload[0] = static_cast<char>(kShardProtocolVersion + 1);
  auto skew = DecodeMessagePayload(payload);
  ASSERT_FALSE(skew.ok());
  EXPECT_EQ(skew.status().code(), StatusCode::kInvalidArgument);

  std::string bad_op(PayloadOf(EncodeHello()));
  bad_op[2] = static_cast<char>(0xEE);
  auto unknown = DecodeMessagePayload(bad_op);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardProtocolTest, HostileCountsAreRejectedBeforeAllocation) {
  // kTask layout: 4-byte header, u32 task_id, u32 mask_len, mask bytes.
  // A 16-byte frame announcing a 4 GiB mask must bounce off the bounds
  // check, not size a vector.
  std::string payload(PayloadOf(EncodeTask(1, {1, 0, 1})));
  const uint32_t huge = 0xFFFFFFFFu;
  payload.replace(8, 4, reinterpret_cast<const char*>(&huge), 4);
  auto msg = DecodeMessagePayload(payload);
  ASSERT_FALSE(msg.ok());
  EXPECT_EQ(msg.status().code(), StatusCode::kInvalidArgument);

  // Same for a kResult rule count: 4-byte header + u32 task_id +
  // u8 engine + f64 + u64 puts the count at offset 25.
  std::string rp(PayloadOf(EncodeResult(SampleImpResult())));
  rp.replace(25, 4, reinterpret_cast<const char*>(&huge), 4);
  auto rmsg = DecodeMessagePayload(rp);
  ASSERT_FALSE(rmsg.ok());
  EXPECT_EQ(rmsg.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------
// Per-task checkpoints.

class ShardCheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = testing::TempDir() + "/" +
           std::string(info->test_suite_name()) + "_" + info->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string ReadAll(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }
  void WriteAll(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string dir_;
};

TEST_F(ShardCheckpointTest, RoundTripPreservesResultAndFingerprint) {
  const std::string path = ShardCheckpointPath(dir_, 7);
  const ShardResult want = SampleImpResult();
  ASSERT_TRUE(WriteShardCheckpoint(want, 0xDEADBEEFu, path).ok());
  auto got = ReadShardCheckpoint(path);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->fingerprint, 0xDEADBEEFu);
  EXPECT_EQ(got->result.task_id, want.task_id);
  EXPECT_EQ(got->result.engine, want.engine);
  EXPECT_EQ(got->result.imp_rules, want.imp_rules);

  const ShardResult sim = SampleSimResult();
  const std::string sim_path = ShardCheckpointPath(dir_, 11);
  ASSERT_TRUE(WriteShardCheckpoint(sim, 1, sim_path).ok());
  auto sim_got = ReadShardCheckpoint(sim_path);
  ASSERT_TRUE(sim_got.ok());
  EXPECT_EQ(sim_got->result.sim_pairs, sim.sim_pairs);
}

TEST_F(ShardCheckpointTest, MissingFileIsIOError) {
  auto got = ReadShardCheckpoint(dir_ + "/absent.ckpt");
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kIOError);
}

TEST_F(ShardCheckpointTest, EveryTruncationIsDataLoss) {
  const std::string path = ShardCheckpointPath(dir_, 1);
  ASSERT_TRUE(WriteShardCheckpoint(SampleImpResult(), 99, path).ok());
  const std::string bytes = ReadAll(path);
  ASSERT_GT(bytes.size(), 16u);
  for (size_t len = 0; len < bytes.size(); ++len) {
    WriteAll(path, bytes.substr(0, len));
    auto got = ReadShardCheckpoint(path);
    ASSERT_FALSE(got.ok()) << "truncation to " << len << " read OK";
    EXPECT_EQ(got.status().code(), StatusCode::kDataLoss);
  }
}

TEST_F(ShardCheckpointTest, BitFlipsAreDataLoss) {
  const std::string path = ShardCheckpointPath(dir_, 1);
  ASSERT_TRUE(WriteShardCheckpoint(SampleSimResult(), 99, path).ok());
  const std::string bytes = ReadAll(path);
  Rng rng(0x5AD);
  for (int trial = 0; trial < 64; ++trial) {
    std::string corrupt = bytes;
    const size_t pos = rng.Uniform(corrupt.size());
    corrupt[pos] = static_cast<char>(
        corrupt[pos] ^ (1 << rng.Uniform(8)));
    if (corrupt == bytes) continue;
    WriteAll(path, corrupt);
    auto got = ReadShardCheckpoint(path);
    ASSERT_FALSE(got.ok()) << "bit flip at byte " << pos << " read OK";
    EXPECT_EQ(got.status().code(), StatusCode::kDataLoss);
  }
}

TEST_F(ShardCheckpointTest, FutureVersionIsDataLoss) {
  const std::string path = ShardCheckpointPath(dir_, 1);
  ASSERT_TRUE(WriteShardCheckpoint(SampleImpResult(), 99, path).ok());
  std::string bytes = ReadAll(path);
  // u32 version lives at offset 8, after the 8-byte magic.
  bytes[8] = 2;
  WriteAll(path, bytes);
  auto got = ReadShardCheckpoint(path);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDataLoss);
}

TEST(TaskFingerprintTest, EveryConfigInputChangesTheFingerprint) {
  const FileFingerprint input{1234, 0xABCD};
  const std::vector<uint8_t> mask = {1, 0, 1, 1};
  const uint64_t base = TaskFingerprint(input, Engine::kImplications,
                                        0.9, 4, mask, 0);

  FileFingerprint other_input{1234, 0xABCE};
  EXPECT_NE(base, TaskFingerprint(other_input, Engine::kImplications,
                                  0.9, 4, mask, 0));
  EXPECT_NE(base, TaskFingerprint(input, Engine::kSimilarities, 0.9, 4,
                                  mask, 0));
  EXPECT_NE(base, TaskFingerprint(input, Engine::kImplications, 0.91, 4,
                                  mask, 0));
  EXPECT_NE(base, TaskFingerprint(input, Engine::kImplications, 0.9, 5,
                                  mask, 0));
  std::vector<uint8_t> other_mask = {1, 1, 1, 1};
  EXPECT_NE(base, TaskFingerprint(input, Engine::kImplications, 0.9, 4,
                                  other_mask, 0));
  EXPECT_NE(base, TaskFingerprint(input, Engine::kImplications, 0.9, 4,
                                  mask, 1));
  // And it is a pure function: same inputs, same hash.
  EXPECT_EQ(base, TaskFingerprint(input, Engine::kImplications, 0.9, 4,
                                  mask, 0));
}

// ---------------------------------------------------------------------
// K-way merge vs Canonicalize(union).

TEST(ShardMergeTest, MergeCanonicalEqualsCanonicalizeOfUnion) {
  Rng rng(0x3A6D);
  for (int trial = 0; trial < 20; ++trial) {
    const int num_shards = 1 + static_cast<int>(rng.Uniform(5));
    const ColumnId cols = 24;
    std::vector<ImplicationRule> all;
    std::vector<ImplicationRuleSet> parts(num_shards);
    const size_t n = rng.Uniform(200);
    for (size_t i = 0; i < n; ++i) {
      ImplicationRule r;
      r.lhs = static_cast<ColumnId>(rng.Uniform(cols));
      do {
        r.rhs = static_cast<ColumnId>(rng.Uniform(cols));
      } while (r.rhs == r.lhs);
      // Counts are a pure function of (lhs, rhs): a real mine never
      // produces the same rule with different counts, and Canonicalize
      // dedups by key alone — ambiguous duplicates would be testing a
      // state the pipeline cannot reach.
      r.lhs_ones = 5 + (r.lhs * 37 + r.rhs * 11) % 90;
      r.misses = (r.lhs * 7 + r.rhs * 3) % r.lhs_ones;
      all.push_back(r);
      // Owner = the antecedent's shard, exactly like the coordinator.
      parts[r.lhs % num_shards].Add(r);
    }
    for (auto& p : parts) p.Canonicalize();
    ImplicationRuleSet expect(all);
    expect.Canonicalize();
    const ImplicationRuleSet got = MergeCanonical(std::move(parts));
    EXPECT_EQ(got.rules(), expect.rules()) << "trial " << trial;
  }
}

TEST(ShardMergeTest, MergeCanonicalSimEqualsCanonicalizeOfUnion) {
  Rng rng(0x51AB);
  for (int trial = 0; trial < 20; ++trial) {
    const int num_shards = 1 + static_cast<int>(rng.Uniform(4));
    std::vector<SimilarityPair> all;
    std::vector<SimilarityRuleSet> parts(num_shards);
    std::set<std::pair<ColumnId, ColumnId>> seen;
    const size_t n = rng.Uniform(150);
    for (size_t i = 0; i < n; ++i) {
      SimilarityPair p;
      p.a = static_cast<ColumnId>(rng.Uniform(16));
      do {
        p.b = static_cast<ColumnId>(rng.Uniform(16));
      } while (p.b == p.a);
      // Each unordered pair appears at most once, with counts that are
      // pure (symmetric) functions of the ids — shards must stay
      // pairwise disjoint after canonical reorientation, exactly as the
      // coordinator's owner partition guarantees.
      const ColumnId lo = std::min(p.a, p.b), hi = std::max(p.a, p.b);
      if (!seen.insert({lo, hi}).second) continue;
      p.ones_a = 5 + (p.a * 37) % 50;
      p.ones_b = 5 + (p.b * 37) % 50;
      p.intersection = 1 + ((lo + hi) * 13) % std::min(p.ones_a, p.ones_b);
      all.push_back(p);
      parts[lo % num_shards].Add(p);
    }
    for (auto& part : parts) part.Canonicalize();
    SimilarityRuleSet expect(all);
    expect.Canonicalize();
    const SimilarityRuleSet got = MergeCanonicalSim(std::move(parts));
    EXPECT_EQ(got.pairs(), expect.pairs()) << "trial " << trial;
  }
}

TEST(ShardMergeTest, MergeByConfidenceMatchesSortedByConfidence) {
  Rng rng(0xC04F);
  for (int trial = 0; trial < 20; ++trial) {
    const int num_shards = 2 + static_cast<int>(rng.Uniform(3));
    std::vector<ImplicationRuleSet> parts(num_shards);
    std::vector<ImplicationRule> all;
    const size_t n = 1 + rng.Uniform(120);
    for (size_t i = 0; i < n; ++i) {
      ImplicationRule r;
      r.lhs = static_cast<ColumnId>(rng.Uniform(20));
      r.rhs = static_cast<ColumnId>((r.lhs + 1 + rng.Uniform(19)) % 20);
      // Small denominators force exact-rational ties (2/4 == 1/2) that
      // the uint64 cross-multiply comparator must break by ids; counts
      // stay a pure function of the key (see above).
      r.lhs_ones = 1 + (r.lhs * 3 + r.rhs) % 6;
      r.misses = (r.lhs + r.rhs) % (r.lhs_ones + 1);
      all.push_back(r);
      parts[r.lhs % num_shards].Add(r);
    }
    for (auto& p : parts) p.Canonicalize();
    ImplicationRuleSet expect(all);
    expect.Canonicalize();
    expect = expect.SortedByConfidence();
    const ImplicationRuleSet got = MergeByConfidence(std::move(parts));
    EXPECT_EQ(got.rules(), expect.rules()) << "trial " << trial;
  }
}

TEST(ShardMergeTest, EmptyAndSingletonPartsAreFine) {
  EXPECT_TRUE(MergeCanonical({}).empty());
  EXPECT_TRUE(MergeCanonicalSim({}).empty());
  EXPECT_TRUE(MergeByConfidence({}).empty());

  ImplicationRuleSet one;
  one.Add({1, 2, 10, 1});
  one.Canonicalize();
  std::vector<ImplicationRuleSet> parts;
  parts.push_back(one);
  parts.emplace_back();  // empty shard: a worker whose mask matched no rules
  const ImplicationRuleSet got = MergeCanonical(std::move(parts));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got.rules()[0].lhs, 1u);
}

}  // namespace
}  // namespace shard
}  // namespace dmc
