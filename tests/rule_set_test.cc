#include "rules/rule_set.h"

#include <gtest/gtest.h>

#include <sstream>

namespace dmc {
namespace {

TEST(ImplicationRuleSetTest, CanonicalizeSortsAndDedupes) {
  ImplicationRuleSet s;
  s.Add({2, 3, 10, 1});
  s.Add({1, 2, 10, 0});
  s.Add({2, 3, 10, 1});
  s.Canonicalize();
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.rules()[0].lhs, 1u);
  EXPECT_EQ(s.rules()[1].lhs, 2u);
}

TEST(ImplicationRuleSetTest, PairsSortedUnique) {
  ImplicationRuleSet s;
  s.Add({5, 1, 10, 0});
  s.Add({0, 1, 10, 0});
  s.Add({5, 1, 10, 2});
  const auto pairs = s.Pairs();
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], std::make_pair(ColumnId{0}, ColumnId{1}));
  EXPECT_EQ(pairs[1], std::make_pair(ColumnId{5}, ColumnId{1}));
}

TEST(ImplicationRuleSetTest, FilterByConfidence) {
  ImplicationRuleSet s;
  s.Add({0, 1, 10, 0});  // 1.0
  s.Add({1, 2, 10, 2});  // 0.8
  s.Add({2, 3, 10, 5});  // 0.5
  const auto filtered = s.FilterByConfidence(0.8);
  EXPECT_EQ(filtered.size(), 2u);
}

TEST(ImplicationRuleSetTest, SortedByConfidence) {
  ImplicationRuleSet s;
  s.Add({1, 2, 10, 2});
  s.Add({0, 1, 10, 0});
  s.Add({2, 3, 10, 5});
  const auto sorted = s.SortedByConfidence();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted.rules()[0].misses, 0u);
  EXPECT_EQ(sorted.rules()[2].misses, 5u);
}

TEST(ImplicationRuleSetTest, PrintRespectsLimit) {
  ImplicationRuleSet s;
  for (ColumnId i = 0; i < 5; ++i) s.Add({i, ColumnId(i + 1), 10, 0});
  std::stringstream ss;
  s.Print(ss, 2);
  const std::string text = ss.str();
  EXPECT_NE(text.find("more"), std::string::npos);
}

TEST(SimilarityRuleSetTest, CanonicalizeOrientsSparserFirst) {
  SimilarityRuleSet s;
  // Stored denser-first; canonicalization must flip it.
  s.Add({7, 3, 20, 10, 9});
  s.Canonicalize();
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.pairs()[0].a, 3u);
  EXPECT_EQ(s.pairs()[0].b, 7u);
  EXPECT_EQ(s.pairs()[0].ones_a, 10u);
  EXPECT_EQ(s.pairs()[0].ones_b, 20u);
}

TEST(SimilarityRuleSetTest, CanonicalizeDedupesAcrossOrientation) {
  SimilarityRuleSet s;
  s.Add({3, 7, 10, 20, 9});
  s.Add({7, 3, 20, 10, 9});
  s.Canonicalize();
  EXPECT_EQ(s.size(), 1u);
}

TEST(SimilarityRuleSetTest, PairsAreOrientationInsensitive) {
  SimilarityRuleSet s;
  s.Add({9, 2, 5, 5, 4});  // ones equal: canonical orientation is 2,9
  const auto pairs = s.Pairs();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], std::make_pair(ColumnId{2}, ColumnId{9}));
}

TEST(SimilarityRuleSetTest, FilterAndSort) {
  SimilarityRuleSet s;
  s.Add({0, 1, 10, 10, 10});  // 1.0
  s.Add({2, 3, 10, 10, 8});   // 8/12
  s.Add({4, 5, 10, 10, 5});   // 5/15
  EXPECT_EQ(s.FilterBySimilarity(0.6).size(), 2u);
  const auto sorted = s.SortedBySimilarity();
  EXPECT_EQ(sorted.pairs()[0].intersection, 10u);
  EXPECT_EQ(sorted.pairs()[2].intersection, 5u);
}

}  // namespace
}  // namespace dmc
