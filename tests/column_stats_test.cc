#include "matrix/column_stats.h"

#include <gtest/gtest.h>

namespace dmc {
namespace {

BinaryMatrix Sample() {
  // ones per column: c0=3, c1=1, c2=1, c3=2, c4=0.
  return BinaryMatrix::FromRows(5, {{0, 1}, {0, 3}, {0, 2, 3}});
}

TEST(ColumnStatsTest, DensityHistogram) {
  const auto hist = ComputeColumnDensityHistogram(Sample());
  // densities: 0 -> 1 column, 1 -> 2 columns, 2 -> 1, 3 -> 1.
  ASSERT_EQ(hist.entries.size(), 4u);
  EXPECT_EQ(hist.entries[0].ones, 0u);
  EXPECT_EQ(hist.entries[0].columns, 1u);
  EXPECT_EQ(hist.entries[1].ones, 1u);
  EXPECT_EQ(hist.entries[1].columns, 2u);
  EXPECT_EQ(hist.entries[2].ones, 2u);
  EXPECT_EQ(hist.entries[2].columns, 1u);
  EXPECT_EQ(hist.entries[3].ones, 3u);
  EXPECT_EQ(hist.entries[3].columns, 1u);
}

TEST(ColumnStatsTest, ColumnsWithAtLeast) {
  const auto hist = ComputeColumnDensityHistogram(Sample());
  EXPECT_EQ(hist.ColumnsWithAtLeast(0), 5u);
  EXPECT_EQ(hist.ColumnsWithAtLeast(1), 4u);
  EXPECT_EQ(hist.ColumnsWithAtLeast(2), 2u);
  EXPECT_EQ(hist.ColumnsWithAtLeast(4), 0u);
}

TEST(ColumnStatsTest, Summarize) {
  const MatrixSummary s = Summarize(Sample());
  EXPECT_EQ(s.rows, 3u);
  EXPECT_EQ(s.columns, 5u);
  EXPECT_EQ(s.ones, 7u);
  EXPECT_EQ(s.max_row_density, 3u);
  EXPECT_EQ(s.max_column_ones, 3u);
  EXPECT_DOUBLE_EQ(s.mean_row_density, 7.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.mean_column_ones, 7.0 / 5.0);
}

TEST(ColumnStatsTest, SupportPruneKeepsWindow) {
  const PrunedMatrix p = SupportPruneColumns(Sample(), 2);
  // Columns with >= 2 ones: c0 (3), c3 (2).
  ASSERT_EQ(p.original_column.size(), 2u);
  EXPECT_EQ(p.original_column[0], 0u);
  EXPECT_EQ(p.original_column[1], 3u);
  EXPECT_EQ(p.matrix.num_columns(), 2u);
  EXPECT_EQ(p.matrix.num_rows(), 3u);
  // Row 2 was {0,2,3} -> {new0, new1}.
  EXPECT_EQ(p.matrix.RowSize(2), 2u);
  // ones preserved under renaming.
  EXPECT_EQ(p.matrix.column_ones()[0], 3u);
  EXPECT_EQ(p.matrix.column_ones()[1], 2u);
}

TEST(ColumnStatsTest, SupportPruneMaxWindow) {
  const PrunedMatrix p = SupportPruneColumns(Sample(), 1, 2);
  // Columns with ones in [1,2]: c1, c2, c3.
  ASSERT_EQ(p.original_column.size(), 3u);
  EXPECT_EQ(p.original_column[0], 1u);
  EXPECT_EQ(p.original_column[1], 2u);
  EXPECT_EQ(p.original_column[2], 3u);
}

TEST(ColumnStatsTest, SupportPruneAllRemoved) {
  const PrunedMatrix p = SupportPruneColumns(Sample(), 10);
  EXPECT_EQ(p.matrix.num_columns(), 0u);
  EXPECT_EQ(p.matrix.num_rows(), 3u);
  EXPECT_EQ(p.matrix.num_ones(), 0u);
}

}  // namespace
}  // namespace dmc
