#include "tools/lint_lexer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace dmc {
namespace lint {
namespace {

std::vector<Token> CodeTokens(const std::string& src) {
  std::vector<Token> out;
  for (Token& t : LexSource(src)) {
    if (t.kind != TokenKind::kComment) out.push_back(std::move(t));
  }
  return out;
}

std::vector<std::string> Texts(const std::vector<Token>& toks) {
  std::vector<std::string> out;
  for (const Token& t : toks) out.push_back(t.text);
  return out;
}

const Token* FindKind(const std::vector<Token>& toks, TokenKind kind) {
  for (const Token& t : toks) {
    if (t.kind == kind) return &t;
  }
  return nullptr;
}

TEST(LexerTest, BasicTokenKinds) {
  const auto toks = LexSource("int x = 42; // note\n");
  ASSERT_EQ(toks.size(), 6u);
  EXPECT_EQ(toks[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(toks[0].text, "int");
  EXPECT_EQ(toks[2].kind, TokenKind::kPunct);
  EXPECT_EQ(toks[3].kind, TokenKind::kNumber);
  EXPECT_EQ(toks[3].text, "42");
  EXPECT_EQ(toks[5].kind, TokenKind::kComment);
  EXPECT_EQ(toks[5].text, "// note");
}

TEST(LexerTest, OffsetsSpanOriginalBytes) {
  const std::string src = "ab + cd";
  const auto toks = LexSource(src);
  ASSERT_EQ(toks.size(), 3u);
  for (const Token& t : toks) {
    EXPECT_EQ(src.substr(t.offset, t.end_offset - t.offset), t.text);
  }
}

TEST(LexerTest, LineNumbersAreOneBased) {
  const auto toks = LexSource("a\nb\n\nc\n");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[2].line, 4);
}

// --- raw strings ---

TEST(LexerTest, RawStringIsOneToken) {
  const auto toks = LexSource("auto s = R\"(a \" b rand() c)\";");
  const Token* str = FindKind(toks, TokenKind::kString);
  ASSERT_NE(str, nullptr);
  EXPECT_EQ(str->text, "R\"(a \" b rand() c)\"");
  // Nothing inside the literal leaks out as an identifier.
  for (const Token& t : toks) {
    EXPECT_NE(t.text, "rand");
  }
}

TEST(LexerTest, RawStringCustomDelimiter) {
  // The )" inside the body is content; only )xy" closes it.
  const auto toks = LexSource("auto s = R\"xy(quote )\" inside)xy\";");
  const Token* str = FindKind(toks, TokenKind::kString);
  ASSERT_NE(str, nullptr);
  EXPECT_EQ(str->text, "R\"xy(quote )\" inside)xy\"");
}

TEST(LexerTest, RawStringBodyIgnoresBackslashNewline) {
  // A backslash-newline inside a raw string is two content bytes, not a
  // splice; the literal still ends at its delimiter.
  const auto toks = LexSource("auto s = R\"(tail\\\nmore)\"; int z;");
  const Token* str = FindKind(toks, TokenKind::kString);
  ASSERT_NE(str, nullptr);
  EXPECT_NE(str->text.find("\\\n"), std::string::npos);
  const auto texts = Texts(toks);
  EXPECT_NE(std::find(texts.begin(), texts.end(), "z"), texts.end());
}

TEST(LexerTest, EncodingPrefixedLiterals) {
  const auto toks = LexSource("auto a = u8\"x\"; auto b = L'y'; uR\"(q)\";");
  size_t strings = 0;
  size_t chars = 0;
  for (const Token& t : toks) {
    if (t.kind == TokenKind::kString) ++strings;
    if (t.kind == TokenKind::kCharLiteral) ++chars;
  }
  EXPECT_EQ(strings, 2u);
  EXPECT_EQ(chars, 1u);
}

// --- line splices ---

TEST(LexerTest, SpliceInsideIdentifier) {
  const auto toks = LexSource("in\\\nt x;");
  ASSERT_GE(toks.size(), 2u);
  EXPECT_EQ(toks[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(toks[0].text, "int");
  // The span still covers the original bytes including the splice.
  EXPECT_EQ(toks[0].offset, 0u);
  EXPECT_EQ(toks[0].end_offset, 5u);
}

TEST(LexerTest, SpliceExtendsLineComment) {
  const auto toks = LexSource("// still comment \\\nsrand(42);\nint x;");
  ASSERT_FALSE(toks.empty());
  EXPECT_EQ(toks[0].kind, TokenKind::kComment);
  EXPECT_NE(toks[0].text.find("srand"), std::string::npos);
  const auto texts = Texts(toks);
  EXPECT_EQ(std::count(texts.begin(), texts.end(), "srand"), 0);
  EXPECT_NE(std::find(texts.begin(), texts.end(), "x"), texts.end());
  // The token after the spliced comment knows its true physical line.
  EXPECT_EQ(toks.back().line, 3);
}

TEST(LexerTest, CarriageReturnSplice) {
  const auto toks = LexSource("in\\\r\nt x;");
  ASSERT_GE(toks.size(), 1u);
  EXPECT_EQ(toks[0].text, "int");
}

// --- comments ---

TEST(LexerTest, BlockCommentsDoNotNest) {
  const auto toks = LexSource("/* outer /* inner */ int x;");
  ASSERT_GE(toks.size(), 3u);
  EXPECT_EQ(toks[0].kind, TokenKind::kComment);
  EXPECT_EQ(toks[0].text, "/* outer /* inner */");
  EXPECT_EQ(toks[1].text, "int");
}

TEST(LexerTest, UnterminatedBlockCommentExtendsToEof) {
  const auto toks = LexSource("int x; /* no close");
  EXPECT_EQ(toks.back().kind, TokenKind::kComment);
}

// --- pp-numbers ---

TEST(LexerTest, DigitSeparatorsStayInOneNumber) {
  const auto toks = LexSource("long n = 1'000'000; char c = 'x';");
  const Token* num = FindKind(toks, TokenKind::kNumber);
  ASSERT_NE(num, nullptr);
  EXPECT_EQ(num->text, "1'000'000");
  // The separators did not open a char literal early; 'x' still lexes.
  const Token* ch = FindKind(toks, TokenKind::kCharLiteral);
  ASSERT_NE(ch, nullptr);
  EXPECT_EQ(ch->text, "'x'");
}

TEST(LexerTest, ExponentSignsAndHexFloats) {
  const auto a = LexSource("x = 1e+5;");
  const Token* na = FindKind(a, TokenKind::kNumber);
  ASSERT_NE(na, nullptr);
  EXPECT_EQ(na->text, "1e+5");
  const auto b = LexSource("y = 0x1p-3;");
  const Token* nb = FindKind(b, TokenKind::kNumber);
  ASSERT_NE(nb, nullptr);
  EXPECT_EQ(nb->text, "0x1p-3");
}

TEST(LexerTest, SuffixedAndFloatNumbers) {
  const auto toks = CodeTokens("a = 0xFFull; b = .5f; c = 3.14;");
  std::vector<std::string> nums;
  for (const Token& t : toks) {
    if (t.kind == TokenKind::kNumber) nums.push_back(t.text);
  }
  ASSERT_EQ(nums.size(), 3u);
  EXPECT_EQ(nums[0], "0xFFull");
  EXPECT_EQ(nums[1], ".5f");
  EXPECT_EQ(nums[2], "3.14");
}

// --- punctuators ---

TEST(LexerTest, OnlyScopeAndArrowCombine) {
  const auto texts = Texts(CodeTokens("a::b->c << d >> e"));
  const std::vector<std::string> expected = {"a", "::", "b", "->", "c", "<",
                                             "<", "d",  ">", ">",  "e"};
  EXPECT_EQ(texts, expected);
}

// --- scrubber ---

TEST(LexerTest, ScrubBlanksRawStringsAndSplicedComments) {
  const std::string src =
      "auto s = R\"(a \" rand() b)\";\n"
      "// gone \\\nsrand(7);\n"
      "int keep;\n";
  const std::string out = ScrubWithLexer(src);
  EXPECT_EQ(out.find("rand"), std::string::npos);
  EXPECT_EQ(out.find("srand"), std::string::npos);
  EXPECT_NE(out.find("int keep;"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'),
            std::count(src.begin(), src.end(), '\n'));
  EXPECT_EQ(out.size(), src.size());
}

}  // namespace
}  // namespace lint
}  // namespace dmc
