#include <gtest/gtest.h>

#include <algorithm>

#include "core/engine.h"
#include "datagen/dictionary_gen.h"
#include "datagen/linkgraph_gen.h"
#include "datagen/news_gen.h"
#include "datagen/planted_gen.h"
#include "datagen/quest_gen.h"
#include "datagen/weblog_gen.h"
#include "matrix/column_stats.h"
#include "rules/verifier.h"

namespace dmc {
namespace {

// Small option presets keep the suite fast.
WebLogOptions SmallWebLog() {
  WebLogOptions o;
  o.num_clients = 800;
  o.num_urls = 300;
  o.num_sections = 10;
  o.num_crawlers = 2;
  return o;
}

TEST(WebLogGenTest, ShapeAndDeterminism) {
  const WebLogOptions o = SmallWebLog();
  const BinaryMatrix a = GenerateWebLog(o);
  const BinaryMatrix b = GenerateWebLog(o);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.num_rows(), o.num_clients);
  EXPECT_EQ(a.num_columns(), o.num_urls);
  EXPECT_GT(a.num_ones(), 0u);
}

TEST(WebLogGenTest, CrawlersAreDenseRows) {
  const WebLogOptions o = SmallWebLog();
  const BinaryMatrix m = GenerateWebLog(o);
  // Exactly num_crawlers rows cover more than half of all URLs; they are
  // shuffled into arbitrary positions.
  size_t dense_rows = 0;
  for (RowId r = 0; r < m.num_rows(); ++r) {
    dense_rows += m.RowSize(r) > size_t(o.num_urls / 2);
  }
  EXPECT_EQ(dense_rows, o.num_crawlers);
}

TEST(WebLogGenTest, HeavyTailedColumnDensity) {
  const BinaryMatrix m = GenerateWebLog(SmallWebLog());
  const auto hist = ComputeColumnDensityHistogram(m);
  const auto summary = Summarize(m);
  // Most columns are far below the max (Fig. 4 shape).
  const uint64_t above_half =
      hist.ColumnsWithAtLeast(summary.max_column_ones / 2);
  EXPECT_LT(above_half, m.num_columns() / 4);
}

TEST(WebLogGenTest, ProducesPageToIndexRules) {
  WebLogOptions o = SmallWebLog();
  o.num_crawlers = 0;
  const BinaryMatrix m = GenerateWebLog(o);
  ImplicationMiningOptions mine;
  mine.min_confidence = 0.9;
  auto rules = MineImplications(m, mine);
  ASSERT_TRUE(rules.ok());
  // Expect at least one rule pointing at a section index (columns
  // 0..num_sections-1).
  bool to_index = false;
  for (const auto& r : *rules) to_index |= r.rhs < o.num_sections;
  EXPECT_TRUE(to_index);
}

TEST(LinkGraphGenTest, ShapeAndDeterminism) {
  LinkGraphOptions o;
  o.num_pages = 600;
  const BinaryMatrix a = GenerateLinkGraph(o);
  const BinaryMatrix b = GenerateLinkGraph(o);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.num_rows(), o.num_pages);
  EXPECT_EQ(a.num_columns(), o.num_pages);
}

TEST(LinkGraphGenTest, MirrorsYieldSimilarColumnsInTranspose) {
  LinkGraphOptions o;
  o.num_pages = 800;
  o.mirror_fraction = 0.05;
  const BinaryMatrix forward = GenerateLinkGraph(o);
  // plinkT: columns = source pages, i.e. out-link profiles.
  const BinaryMatrix plink_t = forward.Transposed();
  SimilarityMiningOptions mine;
  mine.min_similarity = 0.8;
  auto pairs = MineSimilarities(plink_t, mine);
  ASSERT_TRUE(pairs.ok());
  EXPECT_GT(pairs->size(), 0u);
}

TEST(LinkGraphGenTest, PreferentialAttachmentCreatesHubs) {
  LinkGraphOptions o;
  o.num_pages = 1000;
  const BinaryMatrix m = GenerateLinkGraph(o);
  const auto summary = Summarize(m);
  // Hubs: max in-degree far above the mean.
  EXPECT_GT(summary.max_column_ones, 10 * summary.mean_column_ones);
}

NewsOptions SmallNews() {
  NewsOptions o;
  o.num_docs = 3000;
  o.num_topics = 8;
  o.background_vocab = 1500;
  return o;
}

TEST(NewsGenTest, ShapeAndNames) {
  const NewsData d = GenerateNews(SmallNews());
  EXPECT_EQ(d.matrix.num_rows(), 3000u);
  EXPECT_EQ(d.words.size(), d.matrix.num_columns());
  EXPECT_EQ(d.words[d.entity_columns[0][0]], "polgar");
  EXPECT_EQ(d.words[d.theme_columns[0][0]], "chess");
}

TEST(NewsGenTest, EntitiesAreLowSupport) {
  const NewsData d = GenerateNews(SmallNews());
  const auto& ones = d.matrix.column_ones();
  // Entities appear in at most entity_prob of their topic's docs.
  for (const auto& topic : d.entity_columns) {
    for (ColumnId e : topic) {
      EXPECT_LT(ones[e], d.matrix.num_rows() / 20);
    }
  }
}

TEST(NewsGenTest, EntityImpliesThemeWithHighConfidence) {
  const NewsData d = GenerateNews(SmallNews());
  const RuleVerifier v(d.matrix);
  // Average entity->theme confidence across topic 0 should be near the
  // configured 0.95.
  double total = 0.0;
  int count = 0;
  for (ColumnId e : d.entity_columns[0]) {
    for (ColumnId w : d.theme_columns[0]) {
      total += v.Confidence(e, w);
      ++count;
    }
  }
  EXPECT_GT(total / count, 0.85);
}

TEST(DictionaryGenTest, SynonymsAreSimilar) {
  DictionaryOptions o;
  o.num_head_words = 600;
  o.num_definition_words = 500;
  o.num_synonym_groups = 30;
  const DictionaryData d = GenerateDictionary(o);
  EXPECT_EQ(d.matrix.num_columns(), o.num_head_words);
  EXPECT_EQ(d.matrix.num_rows(), o.num_definition_words);
  ASSERT_EQ(d.synonym_groups.size(), 30u);
  const RuleVerifier v(d.matrix);
  double total = 0.0;
  int count = 0;
  for (const auto& group : d.synonym_groups) {
    for (size_t i = 0; i < group.size(); ++i) {
      for (size_t j = i + 1; j < group.size(); ++j) {
        total += v.Similarity(group[i], group[j]);
        ++count;
      }
    }
  }
  // Mean synonym similarity well above random pairs.
  EXPECT_GT(total / count, 0.6);
}

TEST(QuestGenTest, ShapeAndDeterminism) {
  QuestOptions o;
  o.num_transactions = 500;
  o.num_items = 100;
  const BinaryMatrix a = GenerateQuest(o);
  const BinaryMatrix b = GenerateQuest(o);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.num_rows(), 500u);
  EXPECT_EQ(a.num_columns(), 100u);
  const auto summary = Summarize(a);
  EXPECT_GT(summary.mean_row_density, 1.0);
}

TEST(PlantedGenTest, CountsAreExact) {
  PlantedOptions o;
  o.seed = 101;
  const PlantedData d = GeneratePlanted(o);
  const RuleVerifier v(d.matrix);
  for (const ImplicationRule& r : d.implications) {
    EXPECT_EQ(v.ones(r.lhs), r.lhs_ones);
    EXPECT_EQ(v.Intersection(r.lhs, r.rhs), r.hits());
  }
  for (const SimilarityPair& p : d.similarities) {
    EXPECT_EQ(v.ones(p.a), p.ones_a);
    EXPECT_EQ(v.ones(p.b), p.ones_b);
    EXPECT_EQ(v.Intersection(p.a, p.b), p.intersection);
  }
}

TEST(PlantedGenTest, DifferentSeedsDiffer) {
  PlantedOptions a, b;
  a.seed = 1;
  b.seed = 2;
  EXPECT_FALSE(GeneratePlanted(a).matrix == GeneratePlanted(b).matrix);
}

}  // namespace
}  // namespace dmc
