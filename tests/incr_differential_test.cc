// Differential battery for the incremental engine: for every tested
// (matrix, append-schedule, kernel, rule-type) tuple the incremental
// final rule set must be byte-identical to a fresh batch mine of the
// concatenated matrix, and RuleIndex queries must return exactly what a
// linear scan of that rule set returns. Schedules include empty batches,
// single-row batches, all-zero rows, and batches that widen the column
// space mid-stream.

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/kernels.h"
#include "incr/incr_miner.h"
#include "matrix/binary_matrix.h"
#include "rules/rule_index.h"
#include "util/random.h"

namespace dmc {
namespace {

BinaryMatrix RandomMatrix(uint64_t seed, uint32_t rows, uint32_t cols,
                          double density, double zero_row_prob = 0.0) {
  Rng rng(seed);
  MatrixBuilder b(cols);
  std::vector<ColumnId> row;
  for (uint32_t r = 0; r < rows; ++r) {
    row.clear();
    if (!rng.Bernoulli(zero_row_prob)) {
      for (ColumnId c = 0; c < cols; ++c) {
        if (rng.Bernoulli(density)) row.push_back(c);
      }
    }
    b.AddRow(row);
  }
  return b.Build();
}

// Rows [start, start+count) of `m`, as a matrix with `cols` columns.
BinaryMatrix Slice(const BinaryMatrix& m, uint32_t start, uint32_t count,
                   ColumnId cols) {
  MatrixBuilder b(cols);
  for (uint32_t r = start; r < start + count; ++r) {
    const auto row = m.Row(r);
    b.AddRow(std::vector<ColumnId>(row.begin(), row.end()));
  }
  return b.Build();
}

// Deterministic random split of [0, rows) into batch sizes; sprinkles in
// empty and single-row batches.
std::vector<uint32_t> RandomSchedule(uint64_t seed, uint32_t rows) {
  Rng rng(seed);
  std::vector<uint32_t> sizes;
  uint32_t pos = 0;
  while (pos < rows) {
    uint32_t s = static_cast<uint32_t>(rng.Uniform(9));  // 0..8, 0 = empty
    s = std::min(s, rows - pos);
    sizes.push_back(s);
    pos += s;
    if (sizes.size() > 4 * rows + 8) break;  // paranoia against 0-loops
  }
  if (pos < rows) sizes.push_back(rows - pos);
  return sizes;
}

std::string PrintImp(const ImplicationRuleSet& rules) {
  std::ostringstream os;
  rules.Print(os);
  return os.str();
}

std::string PrintSim(const SimilarityRuleSet& pairs) {
  std::ostringstream os;
  pairs.Print(os);
  return os.str();
}

const MergeKernel kAllKernels[] = {MergeKernel::kLegacy, MergeKernel::kScalar,
                                   MergeKernel::kSimd, MergeKernel::kAuto};

ImplicationRuleSet BatchImp(const BinaryMatrix& m, double conf,
                            MergeKernel kernel) {
  ImplicationMiningOptions o;
  o.min_confidence = conf;
  o.policy.kernel = kernel;
  auto rules = MineImplications(m, o);
  EXPECT_TRUE(rules.ok()) << rules.status();
  ImplicationRuleSet out = rules.ok() ? std::move(*rules) : ImplicationRuleSet();
  out.Canonicalize();
  return out;
}

SimilarityRuleSet BatchSim(const BinaryMatrix& m, double sim,
                           MergeKernel kernel) {
  SimilarityMiningOptions o;
  o.min_similarity = sim;
  o.policy.kernel = kernel;
  auto pairs = MineSimilarities(m, o);
  EXPECT_TRUE(pairs.ok()) << pairs.status();
  SimilarityRuleSet out = pairs.ok() ? std::move(*pairs) : SimilarityRuleSet();
  out.Canonicalize();
  return out;
}

struct DiffCase {
  uint32_t rows;
  uint32_t cols;
  double density;
  double threshold;
  uint64_t seed;
  double zero_row_prob;
};

class IncrDifferentialTest : public ::testing::TestWithParam<DiffCase> {};

TEST_P(IncrDifferentialTest, ImplicationsMatchBatchAcrossKernels) {
  const DiffCase& c = GetParam();
  const BinaryMatrix full =
      RandomMatrix(c.seed, c.rows, c.cols, c.density, c.zero_row_prob);
  const std::vector<uint32_t> schedule = RandomSchedule(c.seed * 31 + 7, c.rows);
  for (const MergeKernel kernel : kAllKernels) {
    const ImplicationRuleSet expected = BatchImp(full, c.threshold, kernel);

    ImplicationMiningOptions o;
    o.min_confidence = c.threshold;
    o.policy.kernel = kernel;
    IncrementalImplicationMiner miner(o);
    uint32_t pos = 0;
    for (const uint32_t s : schedule) {
      ASSERT_TRUE(miner.AppendBatch(Slice(full, pos, s, c.cols)).ok());
      pos += s;
    }
    ASSERT_EQ(pos, c.rows);
    EXPECT_EQ(miner.num_rows(), c.rows);
    EXPECT_EQ(miner.rules().rules(), expected.rules())
        << "kernel=" << KernelName(kernel);
    EXPECT_EQ(PrintImp(miner.rules()), PrintImp(expected));
  }
}

TEST_P(IncrDifferentialTest, SimilaritiesMatchBatchAcrossKernels) {
  const DiffCase& c = GetParam();
  const BinaryMatrix full =
      RandomMatrix(c.seed, c.rows, c.cols, c.density, c.zero_row_prob);
  const std::vector<uint32_t> schedule = RandomSchedule(c.seed * 17 + 3, c.rows);
  for (const MergeKernel kernel : kAllKernels) {
    const SimilarityRuleSet expected = BatchSim(full, c.threshold, kernel);

    SimilarityMiningOptions o;
    o.min_similarity = c.threshold;
    o.policy.kernel = kernel;
    IncrementalSimilarityMiner miner(o);
    uint32_t pos = 0;
    for (const uint32_t s : schedule) {
      ASSERT_TRUE(miner.AppendBatch(Slice(full, pos, s, c.cols)).ok());
      pos += s;
    }
    ASSERT_EQ(pos, c.rows);
    EXPECT_EQ(miner.pairs().pairs(), expected.pairs())
        << "kernel=" << KernelName(kernel);
    EXPECT_EQ(PrintSim(miner.pairs()), PrintSim(expected));
  }
}

// Seeding from a batch mine and appending the remainder must agree with
// mining everything at once.
TEST_P(IncrDifferentialTest, FromBatchMineThenAppendMatches) {
  const DiffCase& c = GetParam();
  if (c.rows < 2) GTEST_SKIP();
  const BinaryMatrix full =
      RandomMatrix(c.seed, c.rows, c.cols, c.density, c.zero_row_prob);
  const uint32_t head = c.rows / 2;
  const BinaryMatrix initial = Slice(full, 0, head, c.cols);

  {
    ImplicationMiningOptions o;
    o.min_confidence = c.threshold;
    auto miner = IncrementalImplicationMiner::FromBatchMine(initial, o);
    ASSERT_TRUE(miner.ok()) << miner.status();
    ASSERT_TRUE(
        miner->AppendBatch(Slice(full, head, c.rows - head, c.cols)).ok());
    EXPECT_EQ(miner->rules().rules(),
              BatchImp(full, c.threshold, MergeKernel::kAuto).rules());
  }
  {
    SimilarityMiningOptions o;
    o.min_similarity = c.threshold;
    auto miner = IncrementalSimilarityMiner::FromBatchMine(initial, o);
    ASSERT_TRUE(miner.ok()) << miner.status();
    ASSERT_TRUE(
        miner->AppendBatch(Slice(full, head, c.rows - head, c.cols)).ok());
    EXPECT_EQ(miner->pairs().pairs(),
              BatchSim(full, c.threshold, MergeKernel::kAuto).pairs());
  }
}

// RuleIndex queries over the final incremental rule set must equal a
// linear scan of that rule set, for every antecedent and consequent that
// occurs plus one that does not.
TEST_P(IncrDifferentialTest, RuleIndexQueriesMatchLinearScan) {
  const DiffCase& c = GetParam();
  const BinaryMatrix full =
      RandomMatrix(c.seed, c.rows, c.cols, c.density, c.zero_row_prob);
  const ImplicationRuleSet rules =
      BatchImp(full, c.threshold, MergeKernel::kAuto);
  const auto snapshot = RuleIndexSnapshot::Build(rules, 1);
  ASSERT_EQ(snapshot->size(), rules.size());

  const auto scan = [&rules](auto pred) {
    std::vector<ImplicationRule> out;
    for (const ImplicationRule& r : rules) {
      if (pred(r)) out.push_back(r);
    }
    std::sort(out.begin(), out.end(), HigherConfidence);
    return out;
  };

  for (ColumnId col = 0; col <= c.cols; ++col) {  // c.cols: absent column
    EXPECT_EQ(snapshot->QueryByAntecedent(col),
              scan([col](const ImplicationRule& r) { return r.lhs == col; }));
    EXPECT_EQ(snapshot->QueryByConsequent(col),
              scan([col](const ImplicationRule& r) { return r.rhs == col; }));
  }
  const std::vector<ImplicationRule> all =
      scan([](const ImplicationRule&) { return true; });
  EXPECT_EQ(snapshot->TopK(0), all);
  for (const size_t k : {size_t{1}, size_t{3}, all.size(), all.size() + 5}) {
    std::vector<ImplicationRule> expect(
        all.begin(), all.begin() + std::min(k, all.size()));
    EXPECT_EQ(snapshot->TopK(k), expect);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IncrDifferentialTest,
    ::testing::Values(
        DiffCase{0, 8, 0.3, 0.9, 11, 0.0},     // zero rows
        DiffCase{1, 8, 0.5, 0.9, 12, 0.0},     // single row
        DiffCase{40, 10, 0.25, 0.9, 13, 0.0},
        DiffCase{60, 12, 0.35, 0.8, 14, 0.1},  // with all-zero rows
        DiffCase{80, 16, 0.15, 0.95, 15, 0.0},
        DiffCase{100, 20, 0.3, 0.7, 16, 0.05},
        DiffCase{50, 6, 0.6, 0.5, 17, 0.0},    // dense, low threshold
        DiffCase{30, 24, 0.1, 1.0, 18, 0.2},   // exact-implication threshold
        DiffCase{64, 15, 0.4, 0.85, 19, 0.0}));

// A batch wider than anything seen before must grow the column space;
// the result still matches a batch mine over the full-width concat.
TEST(IncrWidthGrowthTest, WideningAppendMatchesBatch) {
  const ColumnId narrow = 6;
  const ColumnId wide = 14;
  const BinaryMatrix head = RandomMatrix(21, 30, narrow, 0.4);
  const BinaryMatrix tail = RandomMatrix(22, 25, wide, 0.3);

  MatrixBuilder b(wide);
  for (RowId r = 0; r < head.num_rows(); ++r) {
    const auto row = head.Row(r);
    b.AddRow(std::vector<ColumnId>(row.begin(), row.end()));
  }
  for (RowId r = 0; r < tail.num_rows(); ++r) {
    const auto row = tail.Row(r);
    b.AddRow(std::vector<ColumnId>(row.begin(), row.end()));
  }
  const BinaryMatrix full = b.Build();

  ImplicationMiningOptions io;
  io.min_confidence = 0.8;
  IncrementalImplicationMiner imp(io);
  ASSERT_TRUE(imp.AppendBatch(head).ok());
  ASSERT_TRUE(imp.AppendBatch(tail).ok());
  EXPECT_EQ(imp.num_columns(), wide);
  EXPECT_EQ(imp.rules().rules(), BatchImp(full, 0.8, MergeKernel::kAuto).rules());

  SimilarityMiningOptions so;
  so.min_similarity = 0.6;
  IncrementalSimilarityMiner sim(so);
  ASSERT_TRUE(sim.AppendBatch(head).ok());
  ASSERT_TRUE(sim.AppendBatch(tail).ok());
  EXPECT_EQ(sim.pairs().pairs(), BatchSim(full, 0.6, MergeKernel::kAuto).pairs());
}

// Widening, evicting the pre-widening prefix, then appending more must
// still match a batch mine of the surviving rows at the widened width —
// the id renumbering must splice cleanly into the append path.
TEST(IncrWidthGrowthTest, AppendAfterWideningThenEvictMatchesBatch) {
  const ColumnId narrow = 6;
  const ColumnId wide = 14;
  const BinaryMatrix head = RandomMatrix(41, 30, narrow, 0.4);
  const BinaryMatrix mid = RandomMatrix(42, 25, wide, 0.3);
  const BinaryMatrix tail = RandomMatrix(43, 20, wide, 0.35);
  const uint32_t evicted = 18;  // most of the narrow head

  MatrixBuilder b(wide);
  for (RowId r = evicted; r < head.num_rows(); ++r) {
    const auto row = head.Row(r);
    b.AddRow(std::vector<ColumnId>(row.begin(), row.end()));
  }
  for (const BinaryMatrix* m : {&mid, &tail}) {
    for (RowId r = 0; r < m->num_rows(); ++r) {
      const auto row = m->Row(r);
      b.AddRow(std::vector<ColumnId>(row.begin(), row.end()));
    }
  }
  const BinaryMatrix survivors = b.Build();

  ImplicationMiningOptions io;
  io.min_confidence = 0.8;
  IncrementalImplicationMiner imp(io);
  ASSERT_TRUE(imp.AppendBatch(head).ok());
  ASSERT_TRUE(imp.AppendBatch(mid).ok());
  ASSERT_TRUE(imp.EvictBatch(evicted).ok());
  ASSERT_TRUE(imp.AppendBatch(tail).ok());
  EXPECT_EQ(imp.num_columns(), wide);
  EXPECT_EQ(imp.rules().rules(),
            BatchImp(survivors, 0.8, MergeKernel::kAuto).rules());

  SimilarityMiningOptions so;
  so.min_similarity = 0.6;
  IncrementalSimilarityMiner sim(so);
  ASSERT_TRUE(sim.AppendBatch(head).ok());
  ASSERT_TRUE(sim.AppendBatch(mid).ok());
  ASSERT_TRUE(sim.EvictBatch(evicted).ok());
  ASSERT_TRUE(sim.AppendBatch(tail).ok());
  EXPECT_EQ(sim.pairs().pairs(),
            BatchSim(survivors, 0.6, MergeKernel::kAuto).pairs());
}

// Stats plumbing: kills and revivals are reported and accumulate.
TEST(IncrStatsTest, KillAndReviveAreCounted) {
  // Columns 0 and 1 always co-occur in the head -> rule at conf 1.0.
  MatrixBuilder head(2);
  for (int i = 0; i < 10; ++i) head.AddRow({0, 1});
  ImplicationMiningOptions o;
  o.min_confidence = 0.9;
  IncrementalImplicationMiner miner(o);
  ASSERT_TRUE(miner.AppendBatch(head.Build()).ok());
  ASSERT_EQ(miner.rules().size(), 1u);  // 0=>1 (sparser-first, tie by id)

  // Five lone-0 and five lone-1 rows: misses 5 of 15, budget 1 -> dead.
  MatrixBuilder kill(2);
  for (int i = 0; i < 5; ++i) kill.AddRow({0});
  for (int i = 0; i < 5; ++i) kill.AddRow({1});
  IncrAppendStats stats;
  ASSERT_TRUE(miner.AppendBatch(kill.Build(), &stats).ok());
  EXPECT_EQ(stats.candidates_killed, 1u);
  EXPECT_TRUE(miner.rules().empty());

  // Enough fresh co-occurrences bring 0=>1 back above 0.9.
  MatrixBuilder revive(2);
  for (int i = 0; i < 90; ++i) revive.AddRow({0, 1});
  ASSERT_TRUE(miner.AppendBatch(revive.Build(), &stats).ok());
  EXPECT_EQ(stats.candidates_revived, 1u);
  EXPECT_FALSE(miner.rules().empty());
  EXPECT_EQ(miner.cumulative().batches, 3u);
  EXPECT_EQ(miner.cumulative().rows_total, 110u);
  EXPECT_EQ(miner.cumulative().candidates_killed, 1u);
}

}  // namespace
}  // namespace dmc
