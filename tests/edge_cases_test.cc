// Contract (death) tests and degenerate-input edges across modules.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/miss_counter_table.h"
#include "matrix/column_stats.h"
#include "matrix/row_order.h"
#include "rules/grouping.h"
#include "util/bitvector.h"

namespace dmc {
namespace {

using EdgeDeathTest = testing::Test;

TEST(EdgeDeathTest, TableCreateTwiceAborts) {
  MemoryTracker tracker;
  MissCounterTable t(4, 8, &tracker);
  t.Create(0);
  EXPECT_DEATH(t.Create(0), "Check failed");
}

TEST(EdgeDeathTest, TableAssignWithoutCreateAborts) {
  MemoryTracker tracker;
  MissCounterTable t(4, 8, &tracker);
  const ColumnId cand[] = {1};
  const uint32_t miss[] = {0};
  EXPECT_DEATH(t.Assign(0, cand, miss, 1), "Check failed");
}

TEST(EdgeDeathTest, TableSetSizeBeyondCapacityAborts) {
  MemoryTracker tracker;
  MissCounterTable t(4, 8, &tracker);
  t.Create(0);
  EXPECT_DEATH(t.SetSize(0, 1), "Check failed");  // capacity still 0
}

TEST(EdgeDeathTest, TableReleaseWithoutCreateAborts) {
  MemoryTracker tracker;
  MissCounterTable t(4, 8, &tracker);
  EXPECT_DEATH(t.Release(2), "Check failed");
}

TEST(EdgeDeathTest, BitVectorOutOfRangeAborts) {
  BitVector bv(8);
  EXPECT_DEATH(bv.Set(8), "Check failed");
  EXPECT_DEATH(bv.Test(100), "Check failed");
}

TEST(EdgeDeathTest, BitVectorSizeMismatchAborts) {
  BitVector a(8), b(9);
  EXPECT_DEATH((void)a.AndCount(b), "Check failed");
  EXPECT_DEATH((void)a.AndNotCount(b), "Check failed");
}

TEST(EdgeDeathTest, MatrixColumnOutOfRangeAborts) {
  EXPECT_DEATH(BinaryMatrix::FromRows(2, {{0, 2}}), "Check failed");
}

TEST(EdgeCasesTest, EmptyMatrixEverywhere) {
  const BinaryMatrix m;
  EXPECT_TRUE(IdentityOrder(m).empty());
  EXPECT_TRUE(SortedByDensityOrder(m).empty());
  EXPECT_TRUE(DensityBucketOrder(m).order.empty());
  EXPECT_TRUE(ComputeColumnDensityHistogram(m).entries.empty());
  const MatrixSummary s = Summarize(m);
  EXPECT_EQ(s.rows, 0u);
  EXPECT_EQ(s.ones, 0u);
}

TEST(EdgeCasesTest, AllZeroRowsMatrix) {
  const BinaryMatrix m = BinaryMatrix::FromRows(3, {{}, {}, {}, {}});
  EXPECT_EQ(m.num_ones(), 0u);
  ImplicationMiningOptions io;
  io.min_confidence = 0.5;
  auto rules = MineImplications(m, io);
  ASSERT_TRUE(rules.ok());
  EXPECT_TRUE(rules->empty());
  SimilarityMiningOptions so;
  so.min_similarity = 0.5;
  auto pairs = MineSimilarities(m, so);
  ASSERT_TRUE(pairs.ok());
  EXPECT_TRUE(pairs->empty());
}

TEST(EdgeCasesTest, SingleRowMatrixFullClique) {
  // One row with k columns: every ordered pair is a 100%-confidence rule
  // (ties by id), every unordered pair an identical pair.
  const BinaryMatrix m = BinaryMatrix::FromRows(4, {{0, 1, 2, 3}});
  ImplicationMiningOptions io;
  io.min_confidence = 1.0;
  auto rules = MineImplications(m, io);
  ASSERT_TRUE(rules.ok());
  EXPECT_EQ(rules->size(), 6u);  // i < j pairs
  SimilarityMiningOptions so;
  so.min_similarity = 1.0;
  auto pairs = MineSimilarities(m, so);
  ASSERT_TRUE(pairs.ok());
  EXPECT_EQ(pairs->size(), 6u);
}

TEST(EdgeCasesTest, ThresholdEpsilonBoundaries) {
  // Rules sitting exactly AT the threshold must be included; epsilon
  // handling must not admit rules strictly below it.
  MatrixBuilder b(2);
  for (int i = 0; i < 9; ++i) b.AddRow({0, 1});
  b.AddRow({0});
  b.AddRow({1});
  const BinaryMatrix m = b.Build();  // conf(c0=>c1) = 9/10 exactly
  // At the exact rational boundary the rule is included; clearly above
  // it (beyond the documented 1e-6 rounding guard) it is excluded.
  for (double conf : {0.9, 0.91}) {
    ImplicationMiningOptions o;
    o.min_confidence = conf;
    auto rules = MineImplications(m, o);
    ASSERT_TRUE(rules.ok());
    const bool expect_rule = conf <= 0.9;
    EXPECT_EQ(rules->size() == 1, expect_rule) << conf;
  }
}

TEST(EdgeCasesTest, ExpandFromSeedOnEmptyRuleSet) {
  EXPECT_TRUE(ExpandFromSeed(ImplicationRuleSet(), 0).empty());
}

TEST(EdgeCasesTest, SupportPruneEmptyMatrix) {
  const PrunedMatrix p = SupportPruneColumns(BinaryMatrix(), 1);
  EXPECT_EQ(p.matrix.num_columns(), 0u);
  EXPECT_TRUE(p.original_column.empty());
}

TEST(EdgeCasesTest, HugeThresholdEdge) {
  // minsim exactly 1.0 and barely below.
  MatrixBuilder b(2);
  for (int i = 0; i < 100; ++i) b.AddRow({0, 1});
  b.AddRow({0});
  const BinaryMatrix m = b.Build();  // sim = 100/101
  SimilarityMiningOptions o;
  o.min_similarity = 1.0;
  auto exact = MineSimilarities(m, o);
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE(exact->empty());
  o.min_similarity = 100.0 / 101.0;
  auto at = MineSimilarities(m, o);
  ASSERT_TRUE(at.ok());
  EXPECT_EQ(at->size(), 1u);
}

}  // namespace
}  // namespace dmc
