// Ablation: the individual pruning techniques.
//   * DMC-imp: the 100%-rule phase + column cutoff (§4.3) on/off.
//   * DMC-sim: column-density pruning (§5.1) and maximum-hits pruning
//     (§5.2) on/off, in all four combinations.
// All variants produce identical rule sets (guaranteed by the property
// tests); the table shows what each technique buys in memory and time.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/engine.h"

int main(int argc, char** argv) {
  using namespace dmc;
  const double scale = bench::ParseScale(argc, argv);

  bench::PrintHeader("Ablation: 100%-rule phase + cutoff (§4.3), DMC-imp"
                     " @ 90% (scale=" + std::to_string(scale) + ")");
  std::printf("%-8s %-14s %14s %12s %10s %10s\n", "Data", "variant",
              "peak MB", "peak cands", "time [s]", "rules");
  for (const auto& maker :
       {bench::MakeWlog, bench::MakeNewsSet, bench::MakeDicD}) {
    const bench::Dataset d = maker(scale);
    for (bool hundred : {true, false}) {
      ImplicationMiningOptions o;
      o.min_confidence = 0.9;
      o.policy.hundred_percent_phase = hundred;
      o.policy.memory_threshold_bytes = size_t{2} << 20;
      MiningStats s;
      auto rules = MineImplications(d.matrix, o, &s);
      if (!rules.ok()) continue;
      std::printf("%-8s %-14s %14.3f %12zu %10.3f %10zu\n",
                  d.name.c_str(), hundred ? "with-100%" : "without",
                  s.peak_counter_bytes / (1024.0 * 1024.0),
                  s.peak_candidates, s.total_seconds, rules->size());
      std::fflush(stdout);
    }
  }

  bench::PrintHeader("Ablation: §5.1/§5.2 pruning, DMC-sim @ 80%");
  std::printf("%-8s %-22s %14s %12s %10s %10s\n", "Data", "variant",
              "peak MB", "peak cands", "time [s]", "pairs");
  for (const auto& maker :
       {bench::MakeWlog, bench::MakePlinkT, bench::MakeDicD}) {
    const bench::Dataset d = maker(scale);
    for (bool density : {true, false}) {
      for (bool maxhits : {true, false}) {
        SimilarityMiningOptions o;
        o.min_similarity = 0.8;
        o.policy.column_density_pruning = density;
        o.policy.max_hits_pruning = maxhits;
        o.policy.memory_threshold_bytes = size_t{2} << 20;
        MiningStats s;
        auto pairs = MineSimilarities(d.matrix, o, &s);
        if (!pairs.ok()) continue;
        char variant[32];
        std::snprintf(variant, sizeof(variant), "density=%d maxhits=%d",
                      density, maxhits);
        std::printf("%-8s %-22s %14.3f %12zu %10.3f %10zu\n",
                    d.name.c_str(), variant,
                    s.peak_counter_bytes / (1024.0 * 1024.0),
                    s.peak_candidates, s.total_seconds, pairs->size());
        std::fflush(stdout);
      }
    }
  }

  std::printf(
      "\nExpectation: every variant yields the same rule/pair count (the\n"
      "prunings are lossless); memory and time improve with each pruning\n"
      "enabled.\n");
  return 0;
}
