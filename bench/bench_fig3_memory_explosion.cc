// Reproduces Fig. 3: counter-array memory versus scan progress when
// extracting 100%-confidence rules from the Wlog and plinkF analogues,
// with the §4.1 sparsest-first ordering. The paper's observation: with
// dense rows scheduled last, memory explodes near the end of the scan —
// the motivation for the DMC-bitmap fallback. For contrast we also print
// the original (identity) order and the run with the bitmap fallback
// enabled, whose peak stays bounded.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/engine.h"

namespace {

using namespace dmc;

// Prints the MAXIMUM counter-array size within each of 16 equal segments
// of the scan (instantaneous samples would miss peaks that flush within
// a segment — exactly the end-of-scan spikes Fig. 3 is about).
void PrintSeries(const std::string& label,
                 const std::vector<size_t>& history) {
  constexpr int kPoints = 16;
  std::printf("%-28s", label.c_str());
  if (history.empty()) {
    std::printf(" (empty)\n");
    return;
  }
  size_t begin = 0;
  for (int i = 1; i <= kPoints; ++i) {
    const size_t end = history.size() * i / kPoints;
    size_t seg_max = 0;
    for (size_t k = begin; k < end; ++k) {
      seg_max = std::max(seg_max, history[k]);
    }
    std::printf(" %7.2f", seg_max / (1024.0 * 1024.0));
    begin = end;
  }
  std::printf("  MB\n");
}

void RunCase(const bench::Dataset& d, RowOrderPolicy order,
             bool bitmap_fallback, size_t memory_threshold,
             const std::string& label) {
  ImplicationMiningOptions o;
  o.min_confidence = 1.0;
  o.policy.row_order = order;
  o.policy.bitmap_fallback = bitmap_fallback;
  o.policy.memory_threshold_bytes = memory_threshold;
  o.policy.record_history = true;
  MiningStats stats;
  auto rules = MineImplications(d.matrix, o, &stats);
  if (!rules.ok()) {
    std::printf("%s: error %s\n", label.c_str(),
                rules.status().ToString().c_str());
    return;
  }
  PrintSeries(label, stats.memory_history);
  std::printf("%-28s peak=%.2f MB, rules=%zu, bitmap=%s, time=%.2fs\n",
              "", stats.peak_counter_bytes / (1024.0 * 1024.0),
              rules->size(),
              stats.hundred_bitmap_triggered ? "yes" : "no",
              stats.total_seconds);
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::ParseScale(argc, argv);
  bench::PrintHeader(
      "Fig. 3: counter-array memory vs scan progress, 100% rules (scale=" +
      std::to_string(scale) + ")");
  std::printf(
      "Each series: counter-array MB sampled at 16 evenly spaced points\n"
      "of the second scan.\n\n");

  for (const auto& maker : {bench::MakeWlog, bench::MakePlinkT}) {
    const bench::Dataset d = maker(scale);
    bench::PrintSubHeader(d.name);
    // The paper's Fig. 3 configuration: re-ordered scan, no fallback.
    RunCase(d, RowOrderPolicy::kDensityBuckets, /*bitmap=*/false, 0,
            d.name + " sparsest-first");
    RunCase(d, RowOrderPolicy::kIdentity, /*bitmap=*/false, 0,
            d.name + " original order");
    // §4.2's cure: the bitmap fallback caps the explosion.
    RunCase(d, RowOrderPolicy::kDensityBuckets, /*bitmap=*/true,
            size_t{128} << 10, d.name + " +bitmap(128KB)");
  }
  return 0;
}
