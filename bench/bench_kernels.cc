// Micro-benchmarks for the hot-path merge/intersection kernels
// (core/kernels.h) and the arena-backed counter table:
//
//   * sorted-set intersection: scalar two-pointer vs AVX2 blocked probe,
//   * MarkHits (the in-place merge primitive), scalar vs SIMD,
//   * counter-table churn: Assign/Release cycles through the arena,
//   * full dense-workload scans (imp + sim) under each MergeKernel,
//     reporting the speedup of the in-place kernels over kLegacy.
//
// `--scale=<float>` sizes the dense workload; `--json-out=<path>` writes
// the measurements as a stable JSON document (see bench_common.h);
// `--baseline=<path>` compares the dense-scan throughput against a
// previously committed bench JSON and exits nonzero on a >10% drop.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/engine.h"
#include "core/kernels.h"
#include "core/miss_counter_table.h"
#include "matrix/binary_matrix.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace dmc {
namespace {

std::vector<ColumnId> SortedRandomIds(Rng& rng, size_t n, uint32_t universe) {
  std::vector<uint8_t> member(universe, 0);
  size_t placed = 0;
  while (placed < n) {
    const uint32_t v = static_cast<uint32_t>(rng.Uniform(universe));
    if (!member[v]) {
      member[v] = 1;
      ++placed;
    }
  }
  std::vector<ColumnId> out;
  out.reserve(n);
  for (uint32_t v = 0; v < universe; ++v) {
    if (member[v]) out.push_back(v);
  }
  return out;
}

/// Dense correlated matrix: the regime where candidate lists stay long
/// and the per-row merge dominates the scan. Columns come in blocks of
/// 20 that co-occur with probability 0.9 when their block is selected
/// (so high-confidence rules exist and their candidates survive the
/// whole scan, exactly like real rule-bearing data), on top of 10%
/// uniform background noise that feeds short-lived candidates.
BinaryMatrix MakeDenseMatrix(double scale) {
  const uint32_t rows = static_cast<uint32_t>(3000 * scale);
  const uint32_t cols = static_cast<uint32_t>(500 * scale);
  const uint32_t block = 20;
  const uint32_t num_blocks = (cols + block - 1) / block;
  Rng rng(42);
  MatrixBuilder b(cols);
  std::vector<uint8_t> on(cols);
  std::vector<ColumnId> row;
  for (uint32_t r = 0; r < rows; ++r) {
    std::fill(on.begin(), on.end(), 0);
    // Each row activates ~1/4 of the blocks and emits each member column
    // of an active block with probability 0.9.
    for (uint32_t g = 0; g < num_blocks; ++g) {
      if (!rng.Bernoulli(0.25)) continue;
      const uint32_t lo = g * block;
      const uint32_t hi = std::min(cols, lo + block);
      for (uint32_t c = lo; c < hi; ++c) {
        if (rng.Bernoulli(0.9)) on[c] = 1;
      }
    }
    for (uint32_t c = 0; c < cols; ++c) {
      if (!on[c] && rng.Bernoulli(0.1)) on[c] = 1;
    }
    row.clear();
    for (uint32_t c = 0; c < cols; ++c) {
      if (on[c]) row.push_back(c);
    }
    b.AddRow(row);
  }
  return b.Build();
}

void BenchIntersect(std::vector<bench::BenchRecord>& records, double scale) {
  bench::PrintSubHeader("sorted-set intersection (ids/sec)");
  Rng rng(7);
  const size_t n = static_cast<size_t>(100000 * scale);
  const uint32_t universe = static_cast<uint32_t>(4 * n);
  const auto a = SortedRandomIds(rng, n, universe);
  const auto b = SortedRandomIds(rng, n, universe);
  const int reps = 200;

  for (const MergeKernel k : {MergeKernel::kScalar, MergeKernel::kSimd}) {
    if (k == MergeKernel::kSimd && !SimdKernelAvailable()) continue;
    Stopwatch sw;
    size_t sink = 0;
    for (int i = 0; i < reps; ++i) {
      sink += kernels::IntersectCount(a.data(), a.size(), b.data(), b.size(), k);
    }
    const double secs = sw.ElapsedSeconds();
    const double ids_per_sec = 2.0 * n * reps / secs;
    std::printf("  intersect/%-6s  %10.3f ms   %12.0f ids/sec   (count=%zu)\n",
                KernelName(k), secs * 1e3 / reps, ids_per_sec, sink / reps);
    records.push_back({std::string("intersect/") + KernelName(k),
                       "n=" + std::to_string(n), secs / reps, ids_per_sec, 0});
  }
}

void BenchMarkHits(std::vector<bench::BenchRecord>& records, double scale) {
  bench::PrintSubHeader("MarkHits merge primitive (ids/sec)");
  Rng rng(11);
  const size_t list_n = static_cast<size_t>(80000 * scale);
  const size_t row_n = static_cast<size_t>(20000 * scale);
  const uint32_t universe = static_cast<uint32_t>(4 * list_n);
  const auto list = SortedRandomIds(rng, list_n, universe);
  const auto row = SortedRandomIds(rng, row_n, universe);
  std::vector<uint8_t> hit(list_n);
  const int reps = 200;

  for (const MergeKernel k : {MergeKernel::kScalar, MergeKernel::kSimd}) {
    if (k == MergeKernel::kSimd && !SimdKernelAvailable()) continue;
    Stopwatch sw;
    for (int i = 0; i < reps; ++i) {
      kernels::MarkHits(list.data(), list.size(), row.data(), row.size(),
                        hit.data(), k);
    }
    const double secs = sw.ElapsedSeconds();
    const double ids_per_sec = (list_n + row_n) * double(reps) / secs;
    std::printf("  mark_hits/%-6s %10.3f ms   %12.0f ids/sec\n",
                KernelName(k), secs * 1e3 / reps, ids_per_sec);
    records.push_back({std::string("mark_hits/") + KernelName(k),
                       "list=" + std::to_string(list_n) +
                           ",row=" + std::to_string(row_n),
                       secs / reps, ids_per_sec, 0});
  }
}

void BenchTableChurn(std::vector<bench::BenchRecord>& records, double scale) {
  bench::PrintSubHeader("counter-table Assign/Release churn (lists/sec)");
  const ColumnId cols = 256;
  const size_t list_len = static_cast<size_t>(200 * scale);
  std::vector<ColumnId> cand(list_len);
  std::vector<uint32_t> miss(list_len, 0);
  for (size_t i = 0; i < list_len; ++i) cand[i] = static_cast<ColumnId>(i);
  const int rounds = 2000;

  MemoryTracker tracker;
  MissCounterTable table(cols, MissCounterTable::kEntryBytesWithCounters,
                         &tracker);
  Stopwatch sw;
  for (int r = 0; r < rounds; ++r) {
    for (ColumnId c = 0; c < cols; ++c) {
      table.Create(c);
      table.Assign(c, cand.data(), miss.data(), list_len);
    }
    table.ReleaseEverything();
  }
  const double secs = sw.ElapsedSeconds();
  const double lists_per_sec = double(rounds) * cols / secs;
  std::printf("  table_churn      %10.3f ms/round  %12.0f lists/sec  "
              "(arena %zu KiB)\n",
              secs * 1e3 / rounds, lists_per_sec, table.arena_bytes() >> 10);
  records.push_back({"table_churn", "lists=256,len=" + std::to_string(list_len),
                     secs / rounds, lists_per_sec, 0});
}

struct ScanResult {
  double seconds = 0.0;
  size_t peak_counter_bytes = 0;
  size_t rules = 0;
};

ScanResult RunImpScan(const BinaryMatrix& m, MergeKernel k) {
  ImplicationMiningOptions o;
  o.min_confidence = 0.6;
  o.policy.kernel = k;
  MiningStats stats;
  Stopwatch sw;
  auto rules = MineImplications(m, o, &stats);
  ScanResult r;
  r.seconds = sw.ElapsedSeconds();
  r.peak_counter_bytes = stats.peak_counter_bytes;
  r.rules = rules.ok() ? rules->size() : 0;
  return r;
}

ScanResult RunSimScan(const BinaryMatrix& m, MergeKernel k) {
  SimilarityMiningOptions o;
  o.min_similarity = 0.55;
  o.policy.kernel = k;
  MiningStats stats;
  Stopwatch sw;
  auto pairs = MineSimilarities(m, o, &stats);
  ScanResult r;
  r.seconds = sw.ElapsedSeconds();
  r.peak_counter_bytes = stats.peak_counter_bytes;
  r.rules = pairs.ok() ? pairs->size() : 0;
  return r;
}

void BenchDenseScans(std::vector<bench::BenchRecord>& records, double scale) {
  bench::PrintSubHeader("dense-workload scans (rows/sec; speedup vs legacy)");
  const BinaryMatrix m = MakeDenseMatrix(scale);
  bench::PerfCounters perf;
  std::printf("  matrix: %u rows x %u cols, %zu ones  (hw counters: %s)\n",
              m.num_rows(), m.num_columns(), size_t(m.num_ones()),
              perf.available() ? "on" : "unavailable");

  const MergeKernel kernels_to_run[] = {MergeKernel::kLegacy,
                                        MergeKernel::kScalar,
                                        MergeKernel::kSimd};
  // Best-of-N per variant: full scans are long enough that scheduler noise
  // dominates single-shot timings; the minimum is the stable estimator.
  // Hardware counters are captured per rep and reported for the fastest
  // rep, so instructions/cache_misses describe the same run as `seconds`.
  const int reps = 5;
  for (const bool sim : {false, true}) {
    const char* scan = sim ? "scan_sim_dense" : "scan_imp_dense";
    double legacy_secs = 0.0;
    for (const MergeKernel k : kernels_to_run) {
      const MergeKernel resolved = ResolveKernel(k);
      if (k == MergeKernel::kSimd && resolved != MergeKernel::kSimd) continue;
      perf.Start();
      ScanResult r = sim ? RunSimScan(m, k) : RunImpScan(m, k);
      perf.Stop();
      uint64_t instructions = perf.instructions();
      uint64_t cache_misses = perf.cache_misses();
      for (int i = 1; i < reps; ++i) {
        perf.Start();
        const ScanResult again = sim ? RunSimScan(m, k) : RunImpScan(m, k);
        perf.Stop();
        if (again.seconds < r.seconds) {
          r.seconds = again.seconds;
          instructions = perf.instructions();
          cache_misses = perf.cache_misses();
        }
      }
      if (k == MergeKernel::kLegacy) legacy_secs = r.seconds;
      const double rows_per_sec = m.num_rows() / r.seconds;
      std::printf("  %s/%-6s  %8.3f s  %10.0f rows/sec  %zu rules"
                  "  peak=%zu B",
                  scan, KernelName(k), r.seconds, rows_per_sec, r.rules,
                  r.peak_counter_bytes);
      if (perf.available()) {
        std::printf("  %" PRIu64 "M insn  %" PRIu64 "k LLC-miss",
                    instructions / 1000000, cache_misses / 1000);
      }
      if (k != MergeKernel::kLegacy && legacy_secs > 0.0) {
        std::printf("  (%.2fx vs legacy)", legacy_secs / r.seconds);
      }
      std::printf("\n");
      records.push_back({std::string(scan) + "/" + KernelName(k),
                         "scale=" + std::to_string(scale), r.seconds,
                         rows_per_sec, r.peak_counter_bytes, instructions,
                         cache_misses});
    }
  }
}

std::string ParseBaselinePath(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--baseline=", 11) == 0) return argv[i] + 11;
  }
  return "";
}

/// rows_per_sec recorded for `bench` in the baseline JSON text, or -1
/// when absent. A targeted string scan is enough here: the file is our
/// own WriteBenchJson output, whose key order is fixed.
double BaselineRowsPerSec(const std::string& json, const std::string& bench) {
  const std::string name = "\"bench\": \"" + bench + "\"";
  const size_t at = json.find(name);
  if (at == std::string::npos) return -1.0;
  const std::string key = "\"rows_per_sec\": ";
  const size_t val = json.find(key, at);
  if (val == std::string::npos) return -1.0;
  return std::atof(json.c_str() + val + key.size());
}

/// Compares the dense-scan records against `path`; returns the number of
/// variants whose throughput dropped below 90% of the baseline.
int CheckAgainstBaseline(const std::vector<bench::BenchRecord>& records,
                         const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "baseline: cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();

  bench::PrintSubHeader("dense-scan regression gate vs " + path);
  int compared = 0;
  int failures = 0;
  for (const bench::BenchRecord& r : records) {
    if (r.bench.rfind("scan_", 0) != 0) continue;
    const double base = BaselineRowsPerSec(json, r.bench);
    if (base <= 0.0) {
      std::printf("  %-24s  no baseline record; skipped\n", r.bench.c_str());
      continue;
    }
    ++compared;
    const double ratio = r.rows_per_sec / base;
    const bool ok = ratio >= 0.9;
    std::printf("  %-24s  %10.0f vs %10.0f rows/sec  (%.2fx)  %s\n",
                r.bench.c_str(), r.rows_per_sec, base, ratio,
                ok ? "ok" : "REGRESSED");
    if (!ok) ++failures;
  }
  if (compared == 0) {
    std::fprintf(stderr, "baseline: no comparable scan_* records in %s\n",
                 path.c_str());
    return 1;
  }
  return failures;
}

int Main(int argc, char** argv) {
  const double scale = bench::ParseScale(argc, argv);
  const std::string json_out = bench::ParseJsonOut(argc, argv);
  const std::string baseline = ParseBaselinePath(argc, argv);
  bench::PrintHeader("Hot-path kernel micro-benchmarks");
  std::printf("scale=%.2f  simd=%s\n", scale,
              SimdKernelAvailable() ? "avx2" : "unavailable");

  std::vector<bench::BenchRecord> records;
  BenchIntersect(records, scale);
  BenchMarkHits(records, scale);
  BenchTableChurn(records, scale);
  BenchDenseScans(records, scale);

  if (!bench::WriteBenchJson(records, json_out)) return 1;
  if (!baseline.empty() && CheckAgainstBaseline(records, baseline) != 0) {
    std::fprintf(stderr, "dense-scan throughput regressed >10%% vs %s\n",
                 baseline.c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dmc

int main(int argc, char** argv) { return dmc::Main(argc, argv); }
