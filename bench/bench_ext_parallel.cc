// Extension bench (the paper's §7 future work): the parallel
// divide-and-conquer miner and the disk-based external pipeline.
//
//   * parallel: speedup of MineImplicationsParallel / -SimilaritiesParallel
//     over the serial engines at 1/2/4/8 shards (identical outputs);
//   * external: the file-based two-pass miner vs in-memory, with the
//     pass-1 / partition / mine time split.

#include <cstdio>
#include <filesystem>

#include "bench/bench_common.h"
#include "core/engine.h"
#include "core/external_miner.h"
#include "matrix/matrix_io.h"

int main(int argc, char** argv) {
  using namespace dmc;
  const double scale = bench::ParseScale(argc, argv);

  bench::PrintHeader("Extension: parallel divide-and-conquer DMC (scale=" +
                     std::to_string(scale) + ")");
  std::printf("%-8s %-6s %8s %10s %10s %14s %14s %10s\n", "Data", "kind",
              "threads", "wall [s]", "serial[s]", "shard peak MB",
              "serial MB", "rules");
  for (const auto& maker : {bench::MakeWlog, bench::MakeNewsSet}) {
    const bench::Dataset d = maker(scale);
    {
      // Low threshold: candidate-list maintenance (which shards) must
      // dominate the shared row-scan cost for parallelism to pay.
      ImplicationMiningOptions o;
      o.min_confidence = 0.70;
      MiningStats serial_stats;
      auto serial = MineImplications(d.matrix, o, &serial_stats);
      if (!serial.ok()) continue;
      for (uint32_t threads : {2u, 4u, 8u}) {
        ParallelOptions p;
        p.num_threads = threads;
        ParallelMiningStats stats;
        auto rules = MineImplicationsParallel(d.matrix, o, p, &stats);
        if (!rules.ok()) continue;
        std::printf("%-8s %-6s %8u %10.3f %10.3f %14.3f %14.3f %10zu\n",
                    d.name.c_str(), "imp", threads, stats.total_seconds,
                    serial_stats.total_seconds,
                    stats.max_peak_counter_bytes / (1024.0 * 1024.0),
                    serial_stats.peak_counter_bytes / (1024.0 * 1024.0),
                    rules->size());
        std::fflush(stdout);
      }
    }
    {
      SimilarityMiningOptions o;
      o.min_similarity = 0.60;
      MiningStats serial_stats;
      auto serial = MineSimilarities(d.matrix, o, &serial_stats);
      if (!serial.ok()) continue;
      for (uint32_t threads : {2u, 4u, 8u}) {
        ParallelOptions p;
        p.num_threads = threads;
        ParallelMiningStats stats;
        auto pairs = MineSimilaritiesParallel(d.matrix, o, p, &stats);
        if (!pairs.ok()) continue;
        std::printf("%-8s %-6s %8u %10.3f %10.3f %14.3f %14.3f %10zu\n",
                    d.name.c_str(), "sim", threads, stats.total_seconds,
                    serial_stats.total_seconds,
                    stats.max_peak_counter_bytes / (1024.0 * 1024.0),
                    serial_stats.peak_counter_bytes / (1024.0 * 1024.0),
                    pairs->size());
        std::fflush(stdout);
      }
    }
  }

  bench::PrintHeader("Extension: external (disk-based) two-pass DMC-imp");
  std::printf("%-8s %10s %12s %10s %10s %12s %10s\n", "Data", "pass1",
              "partition", "mine", "total", "in-memory", "rules");
  const std::string work_dir =
      std::filesystem::temp_directory_path().string();
  for (const auto& maker : {bench::MakeWlog, bench::MakeNewsSet}) {
    const bench::Dataset d = maker(scale);
    const std::string path = work_dir + "/dmc_bench_" + d.name + ".txt";
    if (!WriteMatrixTextFile(d.matrix, path).ok()) continue;

    ImplicationMiningOptions o;
    o.min_confidence = 0.9;
    MiningStats mem_stats;
    auto in_memory = MineImplications(d.matrix, o, &mem_stats);
    ExternalMiningStats ext_stats;
    auto external = MineImplicationsFromFile(path, o, work_dir, &ext_stats);
    std::error_code ec;
    std::filesystem::remove(path, ec);
    if (!in_memory.ok() || !external.ok()) continue;
    std::printf("%-8s %10.3f %12.3f %10.3f %10.3f %12.3f %10zu%s\n",
                d.name.c_str(), ext_stats.pass1_seconds,
                ext_stats.partition_seconds, ext_stats.mine_seconds,
                ext_stats.total_seconds, mem_stats.total_seconds,
                external->size(),
                external->Pairs() == in_memory->Pairs() ? ""
                                                        : "  MISMATCH!");
    std::fflush(stdout);
  }
  std::printf(
      "\nExpectation: parallel outputs are identical to serial. The win\n"
      "the paper asks for (§7: News outgrowing 256 MB) is MEMORY: each\n"
      "shard's counter-array peak is a fraction of the serial peak, so a\n"
      "divide-and-conquer deployment fits workloads no single counter\n"
      "array could. Wall-clock gains appear only when candidate-list\n"
      "maintenance dominates the (replicated) row scan. The external\n"
      "miner matches the in-memory result while touching rows only via\n"
      "streams.\n");
  return 0;
}
