// Reproduces Fig. 6(g) and 6(h): the peak size of the counter array
// (candidate ids + miss counters) versus the threshold, for DMC-imp (g)
// and DMC-sim (h). Paper shape: DMC-sim needs much less memory than
// DMC-imp thanks to column-density and maximum-hits pruning (§5), and the
// bitmap fallback keeps the requirement from exploding as the threshold
// drops.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/engine.h"

int main(int argc, char** argv) {
  using namespace dmc;
  const double scale = bench::ParseScale(argc, argv);
  auto datasets = bench::MakeAllDatasets(scale);

  constexpr double kThresholds[] = {0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 1.00};

  bench::PrintHeader("Fig. 6(g): DMC-imp peak counter-array MB vs minconf"
                     " (scale=" + std::to_string(scale) + ")");
  std::printf("%-8s", "Data");
  for (double t : kThresholds) std::printf(" %8.0f%%", t * 100);
  std::printf("\n");
  for (const auto& d : datasets) {
    std::printf("%-8s", d.name.c_str());
    for (double t : kThresholds) {
      ImplicationMiningOptions o;
      o.min_confidence = t;
      o.policy.memory_threshold_bytes = size_t{2} << 20;
      MiningStats s;
      auto rules = MineImplications(d.matrix, o, &s);
      std::printf(" %9.3f",
                  rules.ok() ? s.peak_counter_bytes / (1024.0 * 1024.0)
                             : -1.0);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  bench::PrintHeader("Fig. 6(h): DMC-sim peak counter-array MB vs minsim");
  std::printf("%-8s", "Data");
  for (double t : kThresholds) std::printf(" %8.0f%%", t * 100);
  std::printf("\n");
  for (const auto& d : datasets) {
    std::printf("%-8s", d.name.c_str());
    for (double t : kThresholds) {
      SimilarityMiningOptions o;
      o.min_similarity = t;
      o.policy.memory_threshold_bytes = size_t{2} << 20;
      MiningStats s;
      auto pairs = MineSimilarities(d.matrix, o, &s);
      std::printf(" %9.3f",
                  pairs.ok() ? s.peak_counter_bytes / (1024.0 * 1024.0)
                             : -1.0);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf(
      "\nShape check (paper): DMC-sim uses far less memory than DMC-imp\n"
      "at the same threshold; memory grows as the threshold drops but\n"
      "stays bounded thanks to the bitmap switch.\n");
  return 0;
}
