// Micro-benchmarks (google-benchmark) of the kernels the mining engines
// sit on: bit-vector popcount kernels, candidate-list merging, min-hash
// signature construction, and the workload generators.
//
// `--json-out=<path>` additionally writes every measurement in the
// shared BENCH_*.json schema (see bench_common.h).

#include <benchmark/benchmark.h>

#include "bench_common.h"

#include "baselines/minhash.h"
#include "core/engine.h"
#include "core/miss_counter_table.h"
#include "datagen/news_gen.h"
#include "datagen/quest_gen.h"
#include "datagen/weblog_gen.h"
#include "util/bitvector.h"
#include "util/random.h"
#include "util/zipf.h"

namespace dmc {
namespace {

void BM_BitVectorAndNotCount(benchmark::State& state) {
  const size_t n = state.range(0);
  BitVector a(n), b(n);
  Rng rng(1);
  for (size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) a.Set(i);
    if (rng.Bernoulli(0.3)) b.Set(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.AndNotCount(b));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BitVectorAndNotCount)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_ZipfSample(benchmark::State& state) {
  const ZipfSampler zipf(state.range(0), 1.0);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(1000)->Arg(100000);

void BM_MinHashSignatures(benchmark::State& state) {
  QuestOptions q;
  q.num_transactions = 2000;
  q.num_items = 500;
  const BinaryMatrix m = GenerateQuest(q);
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeMinHashSignatures(m, k, 7));
  }
  state.SetItemsProcessed(state.iterations() * m.num_ones() * k);
}
BENCHMARK(BM_MinHashSignatures)->Arg(32)->Arg(128);

void BM_MineImplicationsQuest(benchmark::State& state) {
  QuestOptions q;
  q.num_transactions = static_cast<uint32_t>(state.range(0));
  q.num_items = 400;
  const BinaryMatrix m = GenerateQuest(q);
  ImplicationMiningOptions o;
  o.min_confidence = 0.9;
  for (auto _ : state) {
    auto rules = MineImplications(m, o);
    benchmark::DoNotOptimize(rules);
  }
  state.SetItemsProcessed(state.iterations() * m.num_ones());
}
BENCHMARK(BM_MineImplicationsQuest)->Arg(1000)->Arg(4000);

void BM_MineSimilaritiesQuest(benchmark::State& state) {
  QuestOptions q;
  q.num_transactions = static_cast<uint32_t>(state.range(0));
  q.num_items = 400;
  const BinaryMatrix m = GenerateQuest(q);
  SimilarityMiningOptions o;
  o.min_similarity = 0.8;
  for (auto _ : state) {
    auto pairs = MineSimilarities(m, o);
    benchmark::DoNotOptimize(pairs);
  }
  state.SetItemsProcessed(state.iterations() * m.num_ones());
}
BENCHMARK(BM_MineSimilaritiesQuest)->Arg(1000)->Arg(4000);

void BM_GenerateWebLog(benchmark::State& state) {
  WebLogOptions o;
  o.num_clients = static_cast<uint32_t>(state.range(0));
  o.num_urls = 1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateWebLog(o));
  }
}
BENCHMARK(BM_GenerateWebLog)->Arg(2000);

void BM_GenerateNews(benchmark::State& state) {
  NewsOptions o;
  o.num_docs = static_cast<uint32_t>(state.range(0));
  o.background_vocab = 2000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateNews(o));
  }
}
BENCHMARK(BM_GenerateNews)->Arg(2000);

void BM_Transpose(benchmark::State& state) {
  QuestOptions q;
  q.num_transactions = 5000;
  q.num_items = 2000;
  const BinaryMatrix m = GenerateQuest(q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.Transposed());
  }
  state.SetItemsProcessed(state.iterations() * m.num_ones());
}
BENCHMARK(BM_Transpose);

// Console reporter that also captures each run as a BenchRecord so the
// google-benchmark binary can emit the shared --json-out schema.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCaptureReporter(std::vector<bench::BenchRecord>* records)
      : records_(records) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      bench::BenchRecord rec;
      rec.bench = run.benchmark_name();
      rec.params = "iterations=" + std::to_string(run.iterations);
      rec.seconds = run.iterations > 0
                        ? run.real_accumulated_time /
                              static_cast<double>(run.iterations)
                        : run.real_accumulated_time;
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) rec.rows_per_sec = it->second.value;
      records_->push_back(std::move(rec));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  std::vector<bench::BenchRecord>* records_;
};

}  // namespace
}  // namespace dmc

int main(int argc, char** argv) {
  const std::string json_out = dmc::bench::ParseJsonOut(argc, argv);
  benchmark::Initialize(&argc, argv);
  std::vector<dmc::bench::BenchRecord> records;
  dmc::JsonCaptureReporter reporter(&records);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!dmc::bench::WriteBenchJson(records, json_out)) return 1;
  return 0;
}
