// Micro-benchmarks (google-benchmark) of the kernels the mining engines
// sit on: bit-vector popcount kernels, candidate-list merging, min-hash
// signature construction, and the workload generators — plus the
// append-batch scenario comparing an incremental 1%-row append against a
// full re-mine on the correlated block workload.
//
// `--json-out=<path>` additionally writes every measurement in the
// shared BENCH_*.json schema (see bench_common.h).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "bench_common.h"

#include "baselines/minhash.h"
#include "core/engine.h"
#include "core/miss_counter_table.h"
#include "datagen/news_gen.h"
#include "datagen/quest_gen.h"
#include "datagen/weblog_gen.h"
#include "incr/incr_miner.h"
#include "incr/window_miner.h"
#include "util/bitvector.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/zipf.h"

namespace dmc {
namespace {

void BM_BitVectorAndNotCount(benchmark::State& state) {
  const size_t n = state.range(0);
  BitVector a(n), b(n);
  Rng rng(1);
  for (size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) a.Set(i);
    if (rng.Bernoulli(0.3)) b.Set(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.AndNotCount(b));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BitVectorAndNotCount)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_ZipfSample(benchmark::State& state) {
  const ZipfSampler zipf(state.range(0), 1.0);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(1000)->Arg(100000);

void BM_MinHashSignatures(benchmark::State& state) {
  QuestOptions q;
  q.num_transactions = 2000;
  q.num_items = 500;
  const BinaryMatrix m = GenerateQuest(q);
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeMinHashSignatures(m, k, 7));
  }
  state.SetItemsProcessed(state.iterations() * m.num_ones() * k);
}
BENCHMARK(BM_MinHashSignatures)->Arg(32)->Arg(128);

void BM_MineImplicationsQuest(benchmark::State& state) {
  QuestOptions q;
  q.num_transactions = static_cast<uint32_t>(state.range(0));
  q.num_items = 400;
  const BinaryMatrix m = GenerateQuest(q);
  ImplicationMiningOptions o;
  o.min_confidence = 0.9;
  for (auto _ : state) {
    auto rules = MineImplications(m, o);
    benchmark::DoNotOptimize(rules);
  }
  state.SetItemsProcessed(state.iterations() * m.num_ones());
}
BENCHMARK(BM_MineImplicationsQuest)->Arg(1000)->Arg(4000);

void BM_MineSimilaritiesQuest(benchmark::State& state) {
  QuestOptions q;
  q.num_transactions = static_cast<uint32_t>(state.range(0));
  q.num_items = 400;
  const BinaryMatrix m = GenerateQuest(q);
  SimilarityMiningOptions o;
  o.min_similarity = 0.8;
  for (auto _ : state) {
    auto pairs = MineSimilarities(m, o);
    benchmark::DoNotOptimize(pairs);
  }
  state.SetItemsProcessed(state.iterations() * m.num_ones());
}
BENCHMARK(BM_MineSimilaritiesQuest)->Arg(1000)->Arg(4000);

void BM_GenerateWebLog(benchmark::State& state) {
  WebLogOptions o;
  o.num_clients = static_cast<uint32_t>(state.range(0));
  o.num_urls = 1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateWebLog(o));
  }
}
BENCHMARK(BM_GenerateWebLog)->Arg(2000);

void BM_GenerateNews(benchmark::State& state) {
  NewsOptions o;
  o.num_docs = static_cast<uint32_t>(state.range(0));
  o.background_vocab = 2000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateNews(o));
  }
}
BENCHMARK(BM_GenerateNews)->Arg(2000);

void BM_Transpose(benchmark::State& state) {
  QuestOptions q;
  q.num_transactions = 5000;
  q.num_items = 2000;
  const BinaryMatrix m = GenerateQuest(q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.Transposed());
  }
  state.SetItemsProcessed(state.iterations() * m.num_ones());
}
BENCHMARK(BM_Transpose);

// Correlated block workload (the bench_kernels dense-matrix shape):
// columns come in blocks of 20 that co-occur with probability 0.9 when
// their block activates (p=0.25 per row), over 10% background noise —
// the regime where high-confidence rules exist and survive the scan.
BinaryMatrix MakeCorrelatedBlockMatrix(uint32_t rows, uint32_t cols) {
  const uint32_t block = 20;
  const uint32_t num_blocks = (cols + block - 1) / block;
  Rng rng(42);
  MatrixBuilder b(cols);
  std::vector<uint8_t> on(cols);
  std::vector<ColumnId> row;
  for (uint32_t r = 0; r < rows; ++r) {
    std::fill(on.begin(), on.end(), 0);
    for (uint32_t g = 0; g < num_blocks; ++g) {
      if (!rng.Bernoulli(0.25)) continue;
      const uint32_t lo = g * block;
      const uint32_t hi = std::min(cols, lo + block);
      for (uint32_t c = lo; c < hi; ++c) {
        if (rng.Bernoulli(0.9)) on[c] = 1;
      }
    }
    for (uint32_t c = 0; c < cols; ++c) {
      if (!on[c] && rng.Bernoulli(0.1)) on[c] = 1;
    }
    row.clear();
    for (uint32_t c = 0; c < cols; ++c) {
      if (on[c]) row.push_back(c);
    }
    b.AddRow(row);
  }
  return b.Build();
}

BinaryMatrix SliceRows(const BinaryMatrix& m, uint32_t start,
                       uint32_t count) {
  MatrixBuilder b(m.num_columns());
  for (uint32_t r = start; r < start + count; ++r) {
    const auto row = m.Row(r);
    b.AddRow(std::vector<ColumnId>(row.begin(), row.end()));
  }
  return b.Build();
}

// Append-batch scenario: absorbing the last 1% of rows through the
// incremental engine vs re-mining the whole matrix. Records both
// timings (best of N) plus the ratio; the check tracked in ISSUE 5 is
// append < 25% of the full re-mine.
void BenchAppendBatch(std::vector<bench::BenchRecord>& records) {
  const uint32_t rows = 3000;
  const uint32_t cols = 300;
  const BinaryMatrix full = MakeCorrelatedBlockMatrix(rows, cols);
  const uint32_t delta_rows = rows / 100;
  const BinaryMatrix base = SliceRows(full, 0, rows - delta_rows);
  const BinaryMatrix delta = SliceRows(full, rows - delta_rows, delta_rows);

  ImplicationMiningOptions options;
  options.min_confidence = 0.6;
  const int reps = 3;

  double full_secs = 1e300;
  size_t full_rules = 0;
  for (int i = 0; i < reps; ++i) {
    Stopwatch sw;
    auto rules = MineImplications(full, options);
    full_secs = std::min(full_secs, sw.ElapsedSeconds());
    full_rules = rules.ok() ? rules->size() : 0;
  }

  auto seeded = IncrementalImplicationMiner::FromBatchMine(base, options);
  if (!seeded.ok()) {
    std::fprintf(stderr, "append scenario seed failed: %s\n",
                 seeded.status().ToString().c_str());
    return;
  }
  double append_secs = 1e300;
  size_t incr_rules = 0;
  for (int i = 0; i < reps; ++i) {
    IncrementalImplicationMiner miner = *seeded;  // fresh state per rep
    Stopwatch sw;
    if (!miner.AppendBatch(delta).ok()) return;
    append_secs = std::min(append_secs, sw.ElapsedSeconds());
    incr_rules = miner.rules().size();
  }

  const double ratio = append_secs / full_secs;
  std::printf("incr_append_1pct: full re-mine %.3fs (%zu rules), append "
              "%u rows %.3fs (%zu rules) — %.1f%% of a re-mine\n",
              full_secs, full_rules, delta_rows, append_secs, incr_rules,
              100.0 * ratio);
  char params[96];
  std::snprintf(params, sizeof(params), "rows=%u,cols=%u,minconf=0.6", rows,
                cols);
  records.push_back({"incr_append_1pct/full_remine", params, full_secs,
                     rows / full_secs, 0});
  std::snprintf(params, sizeof(params),
                "delta_rows=%u,append_vs_full=%.4f", delta_rows, ratio);
  records.push_back({"incr_append_1pct/append", params, append_secs,
                     delta_rows / append_secs, 0});
}

// Window-slide scenario: one steady-state slide step (append `step`
// rows into a full count-bounded window, auto-evicting the oldest
// `step`) vs a fresh batch mine of the resulting window contents.
// Records both timings (best of N) plus the ratio; the check tracked in
// ISSUE 10 is slide < 30% of the fresh window mine.
void BenchWindowSlide(std::vector<bench::BenchRecord>& records) {
  const uint32_t window = 4000;
  const uint32_t step = 100;
  const uint32_t cols = 300;
  const BinaryMatrix full = MakeCorrelatedBlockMatrix(window + step, cols);
  const BinaryMatrix base = SliceRows(full, 0, window);
  const BinaryMatrix delta = SliceRows(full, window, step);
  const BinaryMatrix slid = SliceRows(full, step, window);

  ImplicationMiningOptions options;
  options.min_confidence = 0.6;
  const int reps = 3;

  double fresh_secs = 1e300;
  size_t fresh_rules = 0;
  for (int i = 0; i < reps; ++i) {
    Stopwatch sw;
    auto rules = MineImplications(slid, options);
    fresh_secs = std::min(fresh_secs, sw.ElapsedSeconds());
    fresh_rules = rules.ok() ? rules->size() : 0;
  }

  auto seeded =
      WindowedImplicationMiner::FromBatchMine(base, options, window);
  if (!seeded.ok()) {
    std::fprintf(stderr, "window scenario seed failed: %s\n",
                 seeded.status().ToString().c_str());
    return;
  }
  double slide_secs = 1e300;
  size_t slid_rules = 0;
  for (int i = 0; i < reps; ++i) {
    WindowedImplicationMiner miner = *seeded;  // fresh state per rep
    Stopwatch sw;
    if (!miner.AppendBatch(delta).ok()) return;
    slide_secs = std::min(slide_secs, sw.ElapsedSeconds());
    slid_rules = miner.rules().size();
  }

  const double ratio = slide_secs / fresh_secs;
  std::printf("window_slide: fresh window mine %.3fs (%zu rules), slide "
              "%u rows %.3fs (%zu rules) — %.1f%% of a fresh mine\n",
              fresh_secs, fresh_rules, step, slide_secs, slid_rules,
              100.0 * ratio);
  char params[96];
  std::snprintf(params, sizeof(params), "window=%u,cols=%u,minconf=0.6",
                window, cols);
  records.push_back({"window_slide/full_window_remine", params, fresh_secs,
                     window / fresh_secs, 0});
  std::snprintf(params, sizeof(params),
                "step_rows=%u,slide_vs_full=%.4f", step, ratio);
  records.push_back({"window_slide/slide_step", params, slide_secs,
                     step / slide_secs, 0});
}

std::string ParseBaselinePath(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--baseline=", 11) == 0) return argv[i] + 11;
  }
  return "";
}

/// rows_per_sec recorded for `bench` in the baseline JSON text, or -1
/// when absent (same targeted scan as bench_kernels: the file is our own
/// WriteBenchJson output, whose key order is fixed).
double BaselineRowsPerSec(const std::string& json, const std::string& bench) {
  const std::string name = "\"bench\": \"" + bench + "\"";
  const size_t at = json.find(name);
  if (at == std::string::npos) return -1.0;
  const std::string key = "\"rows_per_sec\": ";
  const size_t val = json.find(key, at);
  if (val == std::string::npos) return -1.0;
  return std::atof(json.c_str() + val + key.size());
}

/// Compares the scenario records (incr_append_*, window_slide/*) against
/// `path`; returns the number of records whose throughput dropped below
/// 90% of the baseline.
int CheckAgainstBaseline(const std::vector<bench::BenchRecord>& records,
                         const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "baseline: cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();

  std::printf("scenario regression gate vs %s\n", path.c_str());
  int compared = 0;
  int failures = 0;
  for (const bench::BenchRecord& r : records) {
    if (r.rows_per_sec <= 0.0) continue;
    const double base = BaselineRowsPerSec(json, r.bench);
    if (base <= 0.0) continue;  // not a gated scenario record
    ++compared;
    const double ratio = r.rows_per_sec / base;
    const bool ok = ratio >= 0.9;
    std::printf("  %-32s  %10.0f vs %10.0f rows/sec  (%.2fx)  %s\n",
                r.bench.c_str(), r.rows_per_sec, base, ratio,
                ok ? "ok" : "REGRESSED");
    if (!ok) ++failures;
  }
  if (compared == 0) {
    std::fprintf(stderr, "baseline: no comparable records in %s\n",
                 path.c_str());
    return 1;
  }
  return failures;
}

// Console reporter that also captures each run as a BenchRecord so the
// google-benchmark binary can emit the shared --json-out schema.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCaptureReporter(std::vector<bench::BenchRecord>* records)
      : records_(records) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      bench::BenchRecord rec;
      rec.bench = run.benchmark_name();
      rec.params = "iterations=" + std::to_string(run.iterations);
      rec.seconds = run.iterations > 0
                        ? run.real_accumulated_time /
                              static_cast<double>(run.iterations)
                        : run.real_accumulated_time;
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) rec.rows_per_sec = it->second.value;
      records_->push_back(std::move(rec));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  std::vector<bench::BenchRecord>* records_;
};

}  // namespace
}  // namespace dmc

int main(int argc, char** argv) {
  const std::string json_out = dmc::bench::ParseJsonOut(argc, argv);
  benchmark::Initialize(&argc, argv);
  std::vector<dmc::bench::BenchRecord> records;
  dmc::JsonCaptureReporter reporter(&records);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  dmc::BenchAppendBatch(records);
  dmc::BenchWindowSlide(records);
  if (!dmc::bench::WriteBenchJson(records, json_out)) return 1;
  const std::string baseline = dmc::ParseBaselinePath(argc, argv);
  if (!baseline.empty() && dmc::CheckAgainstBaseline(records, baseline) != 0) {
    std::fprintf(stderr, "scenario throughput regressed >10%% vs %s\n",
                 baseline.c_str());
    return 1;
  }
  return 0;
}
