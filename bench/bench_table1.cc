// Reproduces Table 1 of the paper: the sizes of all evaluation data sets
// (here: their synthetic analogues), printed next to the paper's numbers.
//
// --metrics-jsonl=FILE appends every printed quantity as one JSONL gauge
// per line for machine consumption.

#include <cstdio>

#include "bench/bench_common.h"
#include "matrix/column_stats.h"

int main(int argc, char** argv) {
  using namespace dmc;
  const double scale = bench::ParseScale(argc, argv);
  const std::string metrics_path = bench::ParseMetricsJsonl(argc, argv);
  MetricsRegistry registry;

  bench::PrintHeader("Table 1: data sets (synthetic analogues, scale=" +
                     std::to_string(scale) + ")");
  std::printf("%-8s %12s %12s %12s | %12s %12s (paper)\n", "Data", "Rows",
              "Columns", "Ones", "Rows", "Columns");

  auto datasets = bench::MakeAllDatasets(scale);
  {
    auto newsp = bench::MakeNewsP(scale);
    datasets.insert(datasets.begin() + 5, std::move(newsp));
  }
  for (const auto& d : datasets) {
    const MatrixSummary s = Summarize(d.matrix);
    std::printf("%-8s %12u %12u %12zu | %12lu %12lu\n", d.name.c_str(),
                s.rows, s.columns, s.ones,
                static_cast<unsigned long>(d.paper_rows),
                static_cast<unsigned long>(d.paper_columns));
    registry.SetGauge("table1." + d.name + ".rows", s.rows);
    registry.SetGauge("table1." + d.name + ".columns", s.columns);
    registry.SetGauge("table1." + d.name + ".ones",
                      static_cast<double>(s.ones));
  }

  bench::PrintSubHeader("shape details (not in the paper's table)");
  std::printf("%-8s %16s %16s %16s %16s\n", "Data", "mean row dens",
              "max row dens", "mean col ones", "max col ones");
  for (const auto& d : datasets) {
    const MatrixSummary s = Summarize(d.matrix);
    std::printf("%-8s %16.2f %16zu %16.2f %16zu\n", d.name.c_str(),
                s.mean_row_density, s.max_row_density, s.mean_column_ones,
                s.max_column_ones);
    registry.SetGauge("table1." + d.name + ".mean_row_density",
                      s.mean_row_density);
    registry.SetGauge("table1." + d.name + ".mean_column_ones",
                      s.mean_column_ones);
  }
  return bench::AppendMetricsJsonl(registry, metrics_path) ? 0 : 1;
}
