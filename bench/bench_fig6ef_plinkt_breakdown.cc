// Reproduces Fig. 6(e) and 6(f): the DMC-base vs DMC-bitmap time split on
// the plinkT analogue. The paper's finding: the DMC-bitmap time jumps up
// when the threshold drops past the point where frequency-4 columns can
// no longer be cut off (80% -> 75% on their data), while the DMC-base
// time moves smoothly.
//
// The cutoff kept a column only if maxmis >= 1, i.e. ones >= 1/(1-t); at
// t = 0.80 that is ones >= 5, at 0.75 it is ones >= 4 — so the mass of
// frequency-4 columns floods the sub-100% phase below 80%, exactly as in
// the paper.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/engine.h"
#include "matrix/column_stats.h"

int main(int argc, char** argv) {
  using namespace dmc;
  const double scale = bench::ParseScale(argc, argv);
  const bench::Dataset plink_t = bench::MakePlinkT(scale);

  {
    const auto hist = ComputeColumnDensityHistogram(plink_t.matrix);
    uint64_t freq4 = 0;
    for (const auto& e : hist.entries) {
      if (e.ones == 4) freq4 = e.columns;
    }
    std::printf("plinkT analogue: %u columns, %llu with frequency 4\n",
                plink_t.matrix.num_columns(),
                static_cast<unsigned long long>(freq4));
  }

  constexpr double kThresholds[] = {0.70, 0.75, 0.80, 0.85, 0.90};

  bench::PrintHeader("Fig. 6(e): DMC-imp base vs bitmap on plinkT [s]"
                     " (scale=" + std::to_string(scale) + ")");
  std::printf("%-8s %10s %12s %12s %12s %12s %12s\n", "minconf",
              "pre-scan", "100% phase", "sub base", "sub bitmap",
              "cut cols", "total");
  for (double t : kThresholds) {
    ImplicationMiningOptions o;
    o.min_confidence = t;
    o.policy.memory_threshold_bytes = size_t{1} << 20;
    MiningStats s;
    auto rules = MineImplications(plink_t.matrix, o, &s);
    if (!rules.ok()) continue;
    std::printf("%-8.0f %10.3f %12.3f %12.3f %12.3f %12zu %12.3f\n",
                t * 100, s.prescan_seconds, s.hundred_seconds(),
                s.sub_base_seconds, s.sub_bitmap_seconds,
                s.columns_cut_off, s.total_seconds);
    std::fflush(stdout);
  }

  bench::PrintHeader("Fig. 6(f): DMC-sim base vs bitmap on plinkT [s]");
  std::printf("%-8s %10s %12s %12s %12s %12s %12s\n", "minsim",
              "pre-scan", "100% phase", "sub base", "sub bitmap",
              "cut cols", "total");
  for (double t : kThresholds) {
    SimilarityMiningOptions o;
    o.min_similarity = t;
    o.policy.memory_threshold_bytes = size_t{1} << 20;
    MiningStats s;
    auto pairs = MineSimilarities(plink_t.matrix, o, &s);
    if (!pairs.ok()) continue;
    std::printf("%-8.0f %10.3f %12.3f %12.3f %12.3f %12zu %12.3f\n",
                t * 100, s.prescan_seconds, s.hundred_seconds(),
                s.sub_base_seconds, s.sub_bitmap_seconds,
                s.columns_cut_off, s.total_seconds);
    std::fflush(stdout);
  }

  std::printf(
      "\nShape check (paper): the bitmap phase jumps up once the\n"
      "threshold crosses the frequency-4 cutoff boundary (between 80%%\n"
      "and 75%%), while the base-scan time moves smoothly; the cut-column\n"
      "count drops sharply at the same boundary.\n");
  return 0;
}
