// Ablation: the §4.1 row re-ordering. Compares peak counter-array memory
// and time across original order, density buckets (the paper's choice),
// and exact sparsest-first sort, for both rule kinds. The paper reports
// a 10x memory reduction on the link data (0.33 GB -> 0.033 GB); the
// analogue should show the same direction.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/engine.h"

namespace {

using namespace dmc;

const char* OrderName(RowOrderPolicy p) {
  switch (p) {
    case RowOrderPolicy::kIdentity:
      return "original";
    case RowOrderPolicy::kDensityBuckets:
      return "buckets";
    case RowOrderPolicy::kExactSort:
      return "exact-sort";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::ParseScale(argc, argv);
  bench::PrintHeader("Ablation: row re-ordering (§4.1), minconf/minsim=1.0"
                     " (scale=" + std::to_string(scale) + ")");
  std::printf("%-8s %-12s %14s %12s %10s\n", "Data", "order",
              "peak MB", "peak cands", "time [s]");

  for (const auto& maker :
       {bench::MakeWlog, bench::MakePlinkF, bench::MakeNewsSet,
        bench::MakeDicD}) {
    const bench::Dataset d = maker(scale);
    for (auto order : {RowOrderPolicy::kIdentity,
                       RowOrderPolicy::kDensityBuckets,
                       RowOrderPolicy::kExactSort}) {
      ImplicationMiningOptions o;
      o.min_confidence = 1.0;
      o.policy.row_order = order;
      o.policy.bitmap_fallback = false;  // isolate ordering effect
      MiningStats s;
      auto rules = MineImplications(d.matrix, o, &s);
      if (!rules.ok()) continue;
      std::printf("%-8s %-12s %14.3f %12zu %10.3f\n", d.name.c_str(),
                  OrderName(order), s.peak_counter_bytes / (1024.0 * 1024.0),
                  s.peak_candidates, s.total_seconds);
      std::fflush(stdout);
    }
  }

  std::printf(
      "\nShape check (paper): sparsest-first ordering cuts peak memory\n"
      "roughly an order of magnitude on link-like data; the bucketed\n"
      "approximation is close to the exact sort.\n");
  return 0;
}
