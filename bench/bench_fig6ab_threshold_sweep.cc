// Reproduces Fig. 6(a) and 6(b): execution time of DMC-imp and DMC-sim
// versus the confidence / similarity threshold, for all six evaluation
// sets. Paper shape to check: time decreases roughly linearly as the
// threshold rises, and every set finishes in reasonable time at >= 85%.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/engine.h"

namespace {

using namespace dmc;

constexpr double kThresholds[] = {0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 1.00};

DmcPolicy BenchPolicy() {
  DmcPolicy p;
  // 2 MB stands in for the paper's 50 MB (data scaled down accordingly).
  p.memory_threshold_bytes = size_t{2} << 20;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::ParseScale(argc, argv);
  auto datasets = bench::MakeAllDatasets(scale);

  bench::PrintHeader("Fig. 6(a): DMC-imp execution time [s] vs minconf"
                     " (scale=" + std::to_string(scale) + ")");
  std::printf("%-8s", "Data");
  for (double t : kThresholds) std::printf(" %8.0f%%", t * 100);
  std::printf("\n");
  for (const auto& d : datasets) {
    std::printf("%-8s", d.name.c_str());
    for (double t : kThresholds) {
      ImplicationMiningOptions o;
      o.min_confidence = t;
      o.policy = BenchPolicy();
      MiningStats stats;
      auto rules = MineImplications(d.matrix, o, &stats);
      std::printf(" %9.3f", rules.ok() ? stats.total_seconds : -1.0);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  bench::PrintHeader("Fig. 6(b): DMC-sim execution time [s] vs minsim");
  std::printf("%-8s", "Data");
  for (double t : kThresholds) std::printf(" %8.0f%%", t * 100);
  std::printf("\n");
  for (const auto& d : datasets) {
    std::printf("%-8s", d.name.c_str());
    for (double t : kThresholds) {
      SimilarityMiningOptions o;
      o.min_similarity = t;
      o.policy = BenchPolicy();
      MiningStats stats;
      auto pairs = MineSimilarities(d.matrix, o, &stats);
      std::printf(" %9.3f", pairs.ok() ? stats.total_seconds : -1.0);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf(
      "\nShape check (paper): execution time decreases as the threshold\n"
      "increases; all sets tractable at >= 85%%.\n");
  return 0;
}
