// Reproduces Fig. 6(c) and 6(d): the execution-time breakdown for the
// Wlog analogue — pre-scan, 100%-rule phase, and sub-100% phase — for
// DMC-imp (c) and DMC-sim (d). Paper shape: the pre-scan and 100% phase
// are small and roughly constant; the sub-100% phase dominates and grows
// as the threshold drops.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/engine.h"

int main(int argc, char** argv) {
  using namespace dmc;
  const double scale = bench::ParseScale(argc, argv);
  const bench::Dataset wlog = bench::MakeWlog(scale);

  constexpr double kThresholds[] = {0.70, 0.75, 0.80, 0.85, 0.90, 0.95};

  bench::PrintHeader("Fig. 6(c): DMC-imp breakdown on Wlog [s] (scale=" +
                     std::to_string(scale) + ")");
  std::printf("%-8s %10s %12s %12s %10s\n", "minconf", "pre-scan",
              "100% rules", "<100% rules", "total");
  for (double t : kThresholds) {
    ImplicationMiningOptions o;
    o.min_confidence = t;
    o.policy.memory_threshold_bytes = size_t{2} << 20;
    MiningStats s;
    auto rules = MineImplications(wlog.matrix, o, &s);
    if (!rules.ok()) continue;
    std::printf("%-8.0f %10.3f %12.3f %12.3f %10.3f   (rules=%zu)\n",
                t * 100, s.prescan_seconds, s.hundred_seconds(),
                s.sub_seconds(), s.total_seconds, rules->size());
    std::fflush(stdout);
  }

  bench::PrintHeader("Fig. 6(d): DMC-sim breakdown on Wlog [s]");
  std::printf("%-8s %10s %12s %12s %10s\n", "minsim", "pre-scan",
              "100% rules", "<100% rules", "total");
  for (double t : kThresholds) {
    SimilarityMiningOptions o;
    o.min_similarity = t;
    o.policy.memory_threshold_bytes = size_t{2} << 20;
    MiningStats s;
    auto pairs = MineSimilarities(wlog.matrix, o, &s);
    if (!pairs.ok()) continue;
    std::printf("%-8.0f %10.3f %12.3f %12.3f %10.3f   (pairs=%zu)\n",
                t * 100, s.prescan_seconds, s.hundred_seconds(),
                s.sub_seconds(), s.total_seconds, pairs->size());
    std::fflush(stdout);
  }

  std::printf(
      "\nShape check (paper): pre-scan and 100%%-rule phases small and\n"
      "flat; the sub-100%% phase dominates and grows as the threshold\n"
      "drops.\n");
  return 0;
}
