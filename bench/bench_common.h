// Shared helpers for the reproduction benches: the six Table-1 data-set
// analogues at a configurable scale, plus small table-printing utilities.
//
// Every bench accepts `--scale=<float>` (default 1.0). Scale 1 keeps the
// whole suite in the minutes range on a laptop; larger scales approach
// the paper's sizes.

#ifndef DMC_BENCH_BENCH_COMMON_H_
#define DMC_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "datagen/news_gen.h"
#include "matrix/binary_matrix.h"
#include "observe/metrics.h"

namespace dmc {
namespace bench {

/// Parses --scale=<float> from argv; returns `def` if absent.
double ParseScale(int argc, char** argv, double def = 1.0);

/// Parses --metrics-jsonl=<path> from argv; empty when absent.
std::string ParseMetricsJsonl(int argc, char** argv);

/// Parses --json-out=<path> (or "--json-out <path>") from argv; empty
/// when absent.
std::string ParseJsonOut(int argc, char** argv);

/// One machine-readable benchmark measurement for --json-out files.
struct BenchRecord {
  std::string bench;    ///< measurement name, e.g. "scan_imp_dense/simd"
  std::string params;   ///< free-form parameter echo, e.g. "scale=1"
  double seconds = 0.0;
  double rows_per_sec = 0.0;
  size_t peak_counter_bytes = 0;
  /// Hardware counters for the measured interval (see PerfCounters).
  /// Zero when the counters are unavailable on the host.
  uint64_t instructions = 0;
  uint64_t cache_misses = 0;
};

/// Atomically writes `records` to `path` as a stable JSON document:
///   {"schema_version": 1, "records": [{"bench", "params", "seconds",
///    "rows_per_sec", "peak_counter_bytes", "instructions",
///    "cache_misses"}, ...]}
/// No-op (returning true) when `path` is empty; false on IO failure.
bool WriteBenchJson(const std::vector<BenchRecord>& records,
                    const std::string& path);

/// Hardware instruction / last-level-cache-miss counters over an
/// interval, via perf_event_open. Degrades gracefully: when the kernel
/// interface is unavailable (non-Linux build, seccomp'd container,
/// perf_event_paranoid lockdown) `available()` is false and the readings
/// stay zero, so benches always run and the JSON simply reports 0.
class PerfCounters {
 public:
  PerfCounters();
  ~PerfCounters();
  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  /// True when both counters opened successfully at construction.
  bool available() const { return instructions_fd_ >= 0; }

  /// Resets and enables the counters; pairs with Stop().
  void Start();
  /// Disables the counters and latches the readings for the interval
  /// since the matching Start(). Zero when !available().
  void Stop();

  uint64_t instructions() const { return instructions_; }
  uint64_t cache_misses() const { return cache_misses_; }

 private:
  int instructions_fd_ = -1;
  int cache_misses_fd_ = -1;
  uint64_t instructions_ = 0;
  uint64_t cache_misses_ = 0;
};

/// Appends the registry's flat JSONL dump (one {"kind","name",...} object
/// per line, see MetricsRegistry::WriteJsonl) to `path`, so repeated
/// bench runs accumulate one machine-readable log. No-op when `path` is
/// empty; returns false on IO failure.
bool AppendMetricsJsonl(const MetricsRegistry& registry,
                        const std::string& path);

/// One benchmark data set.
struct Dataset {
  std::string name;
  BinaryMatrix matrix;
  /// The corresponding row of the paper's Table 1 (rows, columns), for
  /// side-by-side printing.
  uint64_t paper_rows = 0;
  uint64_t paper_columns = 0;
};

// The six evaluation sets of §6.2 (synthetic analogues; see DESIGN.md).
Dataset MakeWlog(double scale);
Dataset MakeWlogP(double scale);   // Wlog with columns of <= 10 ones removed
Dataset MakePlinkF(double scale);
Dataset MakePlinkT(double scale);
Dataset MakeNewsSet(double scale);
Dataset MakeDicD(double scale);

/// All six, in the paper's Table-1 order.
std::vector<Dataset> MakeAllDatasets(double scale);

/// The NewsP preparation of §6.2: a smaller news corpus support-pruned to
/// the [0.2%, 20%] window so a-priori's counters fit in memory. Returns
/// the pruned matrix; `news_out`, when non-null, receives the unpruned
/// corpus metadata.
Dataset MakeNewsP(double scale, NewsData* news_out = nullptr);

/// printf-style row helpers keeping the bench outputs uniform.
void PrintHeader(const std::string& title);
void PrintSubHeader(const std::string& title);

}  // namespace bench
}  // namespace dmc

#endif  // DMC_BENCH_BENCH_COMMON_H_
