// Reproduces Fig. 4: the column-density distribution (number of columns
// with a given count of 1s) of the four raw data sets, on log-log
// buckets. The paper's point: all four are heavy-tailed — many columns
// with very few 1s — which is why 100%-rule pruning (§4.3) pays off.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "matrix/column_stats.h"

namespace {

// Log-2 bucketed view of the exact histogram.
std::vector<uint64_t> LogBuckets(const dmc::ColumnDensityHistogram& hist,
                                 int num_buckets) {
  std::vector<uint64_t> buckets(num_buckets, 0);
  for (const auto& e : hist.entries) {
    if (e.ones == 0) continue;
    int b = 0;
    uint64_t v = e.ones;
    while (v > 1 && b < num_buckets - 1) {
      v >>= 1;
      ++b;
    }
    buckets[b] += e.columns;
  }
  return buckets;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dmc;
  const double scale = bench::ParseScale(argc, argv);
  bench::PrintHeader("Fig. 4: column density distribution (scale=" +
                     std::to_string(scale) + ")");

  constexpr int kBuckets = 14;
  std::printf("%-8s", "ones in");
  for (int b = 0; b < kBuckets; ++b) {
    std::printf(" %8llu+", static_cast<unsigned long long>(1ULL << b));
  }
  std::printf("\n");

  for (const auto& maker :
       {bench::MakeWlog, bench::MakePlinkF, bench::MakeNewsSet,
        bench::MakeDicD}) {
    const bench::Dataset d = maker(scale);
    const auto hist = ComputeColumnDensityHistogram(d.matrix);
    const auto buckets = LogBuckets(hist, kBuckets);
    std::printf("%-8s", d.name.c_str());
    for (uint64_t v : buckets) {
      std::printf(" %9llu", static_cast<unsigned long long>(v));
    }
    std::printf("\n");
  }

  std::printf(
      "\nShape check (paper: all four sets are heavy-tailed; most columns\n"
      "have few 1s, a handful are very dense).\n");
  return 0;
}
