// Extension bench: the multi-process shard coordinator (src/shard/,
// DESIGN §5.8).
//
// Streams a Quest matrix to disk with the bounded-memory generator, then
// mines it with MineImplicationsSharded / MineSimilaritiesSharded at
// 1/2/4/8 worker processes and compares against the single-process
// external pipeline. Every fleet's rule set must match the baseline
// exactly — the scaling numbers are only worth recording if the
// byte-identity contract holds while we time it.
//
//   bench_shard [--scale=F] [--json-out=BENCH_shard.json]

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/external_miner.h"
#include "datagen/quest_gen.h"
#include "shard/coordinator.h"

namespace {

// Bench binaries live in build/bench/; the worker ships in build/tools/.
std::string WorkerBinaryPath() {
  std::error_code ec;
  const auto self = std::filesystem::read_symlink("/proc/self/exe", ec);
  if (ec) return "";
  return (self.parent_path().parent_path() / "tools" / "dmc_shard_worker")
      .string();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dmc;
  const double scale = bench::ParseScale(argc, argv);
  const std::string json_out = bench::ParseJsonOut(argc, argv);

  const auto tmp = std::filesystem::temp_directory_path();
  const std::string input = (tmp / "bench_shard_quest.txt").string();
  const std::string work_dir = tmp.string();

  QuestOptions q;
  q.num_transactions = static_cast<uint32_t>(200000 * scale);
  q.num_items = 2000;
  q.seed = 4242;
  if (const Status st = GenerateQuestFile(q, input); !st.ok()) {
    std::fprintf(stderr, "generate: %s\n", st.ToString().c_str());
    return 1;
  }

  bench::PrintHeader("Extension: sharded multi-process DMC (scale=" +
                     std::to_string(scale) + ")");
  std::printf("dataset: quest %u x %u (streamed to %s)\n",
              q.num_transactions, q.num_items, input.c_str());

  // Low thresholds so candidate maintenance (which shards across
  // workers) dominates the shared row replay (which does not).
  ImplicationMiningOptions imp;
  imp.min_confidence = 0.70;
  SimilarityMiningOptions sim;
  sim.min_similarity = 0.40;

  ExternalMiningStats base_imp_stats;
  auto base_imp = MineImplicationsFromFile(input, imp, work_dir,
                                           ExternalIoOptions{},
                                           &base_imp_stats);
  if (!base_imp.ok()) {
    std::fprintf(stderr, "baseline: %s\n",
                 base_imp.status().ToString().c_str());
    return 1;
  }

  std::vector<bench::BenchRecord> records;
  const std::string params =
      "rows=" + std::to_string(q.num_transactions) +
      " cols=" + std::to_string(q.num_items) +
      " minconf=0.70 minsim=0.40 scale=" + std::to_string(scale);
  records.push_back({"shard_imp/baseline_1proc", params,
                     base_imp_stats.total_seconds,
                     q.num_transactions / base_imp_stats.total_seconds, 0});

  std::printf("%-6s %8s %10s %12s %12s %10s %8s\n", "kind", "workers",
              "total [s]", "pass1 [s]", "mine [s]", "rules", "match");
  std::printf("%-6s %8s %10.3f %12.3f %12.3f %10zu %8s\n", "imp", "1proc",
              base_imp_stats.total_seconds, base_imp_stats.pass1_seconds,
              base_imp_stats.mine_seconds, base_imp->size(), "-");

  for (const int workers : {1, 2, 4, 8}) {
    shard::ShardOptions s;
    s.num_workers = workers;
    // One task per worker: the robustness over-partitioning (default 2)
    // doubles replay work, which is noise in a throughput curve.
    s.tasks_per_worker = 1;
    s.worker_binary = WorkerBinaryPath();
    shard::ShardMiningStats stats;
    auto rules = shard::MineImplicationsSharded(input, imp, work_dir, s,
                                                &stats);
    if (!rules.ok()) {
      std::fprintf(stderr, "imp workers=%d: %s\n", workers,
                   rules.status().ToString().c_str());
      return 1;
    }
    const bool match = rules->rules() == base_imp->rules();
    std::printf("%-6s %8d %10.3f %12.3f %12.3f %10zu %8s\n", "imp",
                workers, stats.total_seconds, stats.pass1_seconds,
                stats.mine_seconds, rules->size(), match ? "yes" : "NO");
    std::fflush(stdout);
    if (!match) return 1;
    records.push_back({"shard_imp/workers=" + std::to_string(workers),
                       params, stats.total_seconds,
                       q.num_transactions / stats.total_seconds, 0});
  }

  ExternalMiningStats base_sim_stats;
  auto base_sim = MineSimilaritiesFromFile(input, sim, work_dir,
                                           ExternalIoOptions{},
                                           &base_sim_stats);
  if (!base_sim.ok()) {
    std::fprintf(stderr, "baseline sim: %s\n",
                 base_sim.status().ToString().c_str());
    return 1;
  }
  records.push_back({"shard_sim/baseline_1proc", params,
                     base_sim_stats.total_seconds,
                     q.num_transactions / base_sim_stats.total_seconds, 0});
  std::printf("%-6s %8s %10.3f %12.3f %12.3f %10zu %8s\n", "sim", "1proc",
              base_sim_stats.total_seconds, base_sim_stats.pass1_seconds,
              base_sim_stats.mine_seconds, base_sim->size(), "-");

  for (const int workers : {1, 2, 4, 8}) {
    shard::ShardOptions s;
    s.num_workers = workers;
    // One task per worker: the robustness over-partitioning (default 2)
    // doubles replay work, which is noise in a throughput curve.
    s.tasks_per_worker = 1;
    s.worker_binary = WorkerBinaryPath();
    shard::ShardMiningStats stats;
    auto pairs = shard::MineSimilaritiesSharded(input, sim, work_dir, s,
                                                &stats);
    if (!pairs.ok()) {
      std::fprintf(stderr, "sim workers=%d: %s\n", workers,
                   pairs.status().ToString().c_str());
      return 1;
    }
    const bool match = pairs->pairs() == base_sim->pairs();
    std::printf("%-6s %8d %10.3f %12.3f %12.3f %10zu %8s\n", "sim",
                workers, stats.total_seconds, stats.pass1_seconds,
                stats.mine_seconds, pairs->size(), match ? "yes" : "NO");
    std::fflush(stdout);
    if (!match) return 1;
    records.push_back({"shard_sim/workers=" + std::to_string(workers),
                       params, stats.total_seconds,
                       q.num_transactions / stats.total_seconds, 0});
  }

  std::filesystem::remove(input);
  if (!bench::WriteBenchJson(records, json_out)) {
    std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
    return 1;
  }
  return 0;
}
