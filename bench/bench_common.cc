#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define DMC_BENCH_HAVE_PERF_EVENT 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include "datagen/dictionary_gen.h"
#include "datagen/linkgraph_gen.h"
#include "datagen/weblog_gen.h"
#include "matrix/column_stats.h"
#include "observe/json_writer.h"
#include "util/atomic_io.h"

namespace dmc {
namespace bench {

double ParseScale(int argc, char** argv, double def) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      return std::atof(argv[i] + 8);
    }
  }
  return def;
}

std::string ParseMetricsJsonl(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--metrics-jsonl=", 16) == 0) {
      return argv[i] + 16;
    }
  }
  return "";
}

std::string ParseJsonOut(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json-out=", 11) == 0) {
      return argv[i] + 11;
    }
    if (std::strcmp(argv[i], "--json-out") == 0 && i + 1 < argc) {
      return argv[i + 1];
    }
  }
  return "";
}

bool WriteBenchJson(const std::vector<BenchRecord>& records,
                    const std::string& path) {
  if (path.empty()) return true;
  std::ostringstream buffer;
  {
    JsonWriter w(buffer, /*indent=*/2);
    w.BeginObject();
    w.Key("schema_version");
    w.Value(1);
    w.Key("records");
    w.BeginArray();
    for (const BenchRecord& r : records) {
      w.BeginObject();
      w.Key("bench");
      w.Value(r.bench);
      w.Key("params");
      w.Value(r.params);
      w.Key("seconds");
      w.Value(r.seconds);
      w.Key("rows_per_sec");
      w.Value(r.rows_per_sec);
      w.Key("peak_counter_bytes");
      w.Value(static_cast<uint64_t>(r.peak_counter_bytes));
      w.Key("instructions");
      w.Value(r.instructions);
      w.Key("cache_misses");
      w.Value(r.cache_misses);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  buffer << '\n';
  const Status s = AtomicWriteFile(path, buffer.str());
  if (!s.ok()) {
    std::fprintf(stderr, "bench json write failed: %s\n",
                 s.ToString().c_str());
    return false;
  }
  std::fprintf(stderr, "wrote bench json to %s\n", path.c_str());
  return true;
}

bool AppendMetricsJsonl(const MetricsRegistry& registry,
                        const std::string& path) {
  if (path.empty()) return true;
  std::ofstream out(path, std::ios::app);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  registry.WriteJsonl(out);
  if (!out) {
    std::fprintf(stderr, "metrics write failed: %s\n", path.c_str());
    return false;
  }
  std::fprintf(stderr, "appended metrics to %s\n", path.c_str());
  return true;
}

#ifdef DMC_BENCH_HAVE_PERF_EVENT
namespace {

int OpenHardwareCounter(uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = group_fd < 0 ? 1 : 0;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  return static_cast<int>(syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                                  /*cpu=*/-1, group_fd, /*flags=*/0));
}

uint64_t ReadCounter(int fd) {
  if (fd < 0) return 0;
  uint64_t value = 0;
  if (read(fd, &value, sizeof(value)) != sizeof(value)) return 0;
  return value;
}

}  // namespace

PerfCounters::PerfCounters() {
  instructions_fd_ =
      OpenHardwareCounter(PERF_COUNT_HW_INSTRUCTIONS, /*group_fd=*/-1);
  if (instructions_fd_ < 0) return;
  // Grouped with the leader so both cover the exact same interval.
  cache_misses_fd_ =
      OpenHardwareCounter(PERF_COUNT_HW_CACHE_MISSES, instructions_fd_);
}

PerfCounters::~PerfCounters() {
  if (cache_misses_fd_ >= 0) close(cache_misses_fd_);
  if (instructions_fd_ >= 0) close(instructions_fd_);
}

void PerfCounters::Start() {
  instructions_ = 0;
  cache_misses_ = 0;
  if (instructions_fd_ < 0) return;
  ioctl(instructions_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(instructions_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

void PerfCounters::Stop() {
  if (instructions_fd_ < 0) return;
  ioctl(instructions_fd_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
  instructions_ = ReadCounter(instructions_fd_);
  cache_misses_ = ReadCounter(cache_misses_fd_);
}
#else  // !DMC_BENCH_HAVE_PERF_EVENT
PerfCounters::PerfCounters() = default;
PerfCounters::~PerfCounters() = default;
void PerfCounters::Start() {
  instructions_ = 0;
  cache_misses_ = 0;
}
void PerfCounters::Stop() {}
#endif  // DMC_BENCH_HAVE_PERF_EVENT

Dataset MakeWlog(double scale) {
  WebLogOptions o;
  o.num_clients = static_cast<uint32_t>(40000 * scale);
  o.num_urls = static_cast<uint32_t>(8000 * scale);
  o.num_sections = 40;
  o.num_crawlers = 5;
  o.max_pages_per_client = 300;
  return Dataset{"Wlog", GenerateWebLog(o), 218518, 74957};
}

Dataset MakeWlogP(double scale) {
  Dataset d = MakeWlog(scale);
  d.name = "WlogP";
  d.paper_rows = 203185;
  d.paper_columns = 13087;
  d.matrix = SupportPruneColumns(d.matrix, 11).matrix;
  return d;
}

Dataset MakePlinkF(double scale) {
  LinkGraphOptions o;
  o.num_pages = static_cast<uint32_t>(40000 * scale);
  return Dataset{"plinkF", GenerateLinkGraph(o), 173338, 697824};
}

Dataset MakePlinkT(double scale) {
  Dataset d = MakePlinkF(scale);
  d.name = "plinkT";
  d.paper_rows = 695280;
  d.paper_columns = 688747;
  d.matrix = d.matrix.Transposed();
  return d;
}

Dataset MakeNewsSet(double scale) {
  NewsOptions o;
  o.num_docs = static_cast<uint32_t>(40000 * scale);
  o.num_topics = 60;
  o.background_vocab = static_cast<uint32_t>(15000 * scale);
  return Dataset{"News", GenerateNews(o).matrix, 84672, 170372};
}

Dataset MakeDicD(double scale) {
  DictionaryOptions o;
  o.num_head_words = static_cast<uint32_t>(18000 * scale);
  o.num_definition_words = static_cast<uint32_t>(8000 * scale);
  o.num_synonym_groups = static_cast<uint32_t>(500 * scale);
  return Dataset{"dicD", GenerateDictionary(o).matrix, 45418, 96540};
}

std::vector<Dataset> MakeAllDatasets(double scale) {
  std::vector<Dataset> out;
  out.push_back(MakeWlog(scale));
  out.push_back(MakeWlogP(scale));
  out.push_back(MakePlinkF(scale));
  out.push_back(MakePlinkT(scale));
  out.push_back(MakeNewsSet(scale));
  out.push_back(MakeDicD(scale));
  return out;
}

Dataset MakeNewsP(double scale, NewsData* news_out) {
  // Tuned so the support window leaves thousands of columns — the regime
  // where a-priori's quadratic counter array becomes the bottleneck, as
  // in the paper's 9518-column NewsP.
  NewsOptions o;
  o.num_docs = static_cast<uint32_t>(16000 * scale);
  o.num_topics = 30;
  o.background_vocab = static_cast<uint32_t>(12000 * scale);
  o.background_zipf_theta = 0.65;
  o.background_words_min = 20;
  o.background_words_max = 300;
  o.background_len_alpha = 1.5;
  NewsData news = GenerateNews(o);
  // The paper's window: min support 0.2% of docs, max 20% of docs.
  const uint64_t min_sup =
      static_cast<uint64_t>(0.002 * news.matrix.num_rows()) + 1;
  const uint64_t max_sup =
      static_cast<uint64_t>(0.20 * news.matrix.num_rows());
  Dataset d{"NewsP",
            SupportPruneColumns(news.matrix, min_sup, max_sup).matrix,
            16392, 9518};
  if (news_out != nullptr) *news_out = std::move(news);
  return d;
}

void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

void PrintSubHeader(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

}  // namespace bench
}  // namespace dmc
