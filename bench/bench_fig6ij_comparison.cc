// Reproduces Fig. 6(i) and 6(j): the algorithm comparison on NewsP — the
// support-pruned news corpus chosen so a-priori's full pair-counter array
// fits in memory (its best case).
//
//   (i) implication rules: a-priori vs DMC-imp vs K-Min (K-Min tuned to
//       <10% false negatives, as the paper plots it);
//   (j) similarity rules:  a-priori vs DMC-sim vs Min-Hash (verified).
//
// Also prints the §7 headline ratios at the 85% threshold: the paper
// reports DMC-imp 1.7x faster than a-priori and 1.9x faster than K-Min;
// DMC-sim 5.9x faster than a-priori and 1.7x faster than Min-Hash.

#include <cstdio>
#include <vector>

#include "baselines/apriori.h"
#include "baselines/bruteforce.h"
#include "baselines/kmin.h"
#include "baselines/lsh.h"
#include "baselines/minhash.h"
#include "bench/bench_common.h"
#include "core/engine.h"

namespace {

using namespace dmc;

size_t MatchedPairs(const std::vector<std::pair<ColumnId, ColumnId>>& a,
                    const std::vector<std::pair<ColumnId, ColumnId>>& b) {
  size_t matched = 0;
  for (const auto& p : a) {
    for (const auto& q : b) {
      if (p == q) {
        ++matched;
        break;
      }
    }
  }
  return matched;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::ParseScale(argc, argv);
  const bench::Dataset newsp = bench::MakeNewsP(scale);
  std::printf("NewsP analogue: %u rows x %u columns, %zu ones\n",
              newsp.matrix.num_rows(), newsp.matrix.num_columns(),
              newsp.matrix.num_ones());

  constexpr double kThresholds[] = {0.70, 0.75, 0.80, 0.85, 0.90, 0.95};
  double dmc_imp_85 = 0, apriori_imp_85 = 0, kmin_85 = 0;
  double dmc_sim_85 = 0, apriori_sim_85 = 0, minhash_85 = 0;

  bench::PrintHeader("Fig. 6(i): implication rules on NewsP [s] (scale=" +
                     std::to_string(scale) + ")");
  std::printf("%-8s %12s %12s %12s %10s %12s\n", "minconf", "a-priori",
              "DMC-imp", "K-Min", "rules", "K-Min FN%");
  for (double t : kThresholds) {
    AprioriStats ap_stats;
    auto ap = AprioriImplications(newsp.matrix, AprioriOptions{}, t,
                                  &ap_stats);
    ImplicationMiningOptions o;
    o.min_confidence = t;
    MiningStats dmc_stats;
    auto dmc_rules = MineImplications(newsp.matrix, o, &dmc_stats);
    KMinOptions kmin_opts;
    kmin_opts.num_hashes = 80;
    kmin_opts.candidate_slack = 0.10;
    KMinStats kmin_stats;
    auto kmin_rules =
        KMinImplications(newsp.matrix, kmin_opts, t, &kmin_stats);
    if (!ap.ok() || !dmc_rules.ok()) continue;

    const auto truth = dmc_rules->Pairs();
    const size_t found = MatchedPairs(truth, kmin_rules.Pairs());
    const double fn_rate =
        truth.empty() ? 0.0 : 100.0 * (truth.size() - found) / truth.size();
    std::printf("%-8.0f %12.3f %12.3f %12.3f %10zu %11.1f%%\n", t * 100,
                ap_stats.total_seconds, dmc_stats.total_seconds,
                kmin_stats.total_seconds, truth.size(), fn_rate);
    std::fflush(stdout);
    if (t == 0.85) {
      apriori_imp_85 = ap_stats.total_seconds;
      dmc_imp_85 = dmc_stats.total_seconds;
      kmin_85 = kmin_stats.total_seconds;
    }
  }

  bench::PrintHeader("Fig. 6(j): similarity rules on NewsP [s]");
  std::printf("%-8s %12s %12s %12s %12s %10s %12s %12s\n", "minsim",
              "a-priori", "DMC-sim", "Min-Hash", "LSH", "pairs", "MH FN%",
              "LSH FN%");
  for (double t : kThresholds) {
    AprioriStats ap_stats;
    auto ap = AprioriSimilarities(newsp.matrix, AprioriOptions{}, t,
                                  &ap_stats);
    SimilarityMiningOptions o;
    o.min_similarity = t;
    MiningStats dmc_stats;
    auto dmc_pairs = MineSimilarities(newsp.matrix, o, &dmc_stats);
    MinHashOptions mh_opts;
    mh_opts.num_hashes = 64;
    mh_opts.candidate_slack = 0.08;
    MinHashStats mh_stats;
    auto mh_pairs =
        MinHashSimilarities(newsp.matrix, mh_opts, t, &mh_stats);
    LshOptions lsh_opts;
    lsh_opts.bands = 16;
    lsh_opts.rows_per_band = 4;
    LshStats lsh_stats;
    auto lsh_pairs = LshSimilarities(newsp.matrix, lsh_opts, t, &lsh_stats);
    if (!ap.ok() || !dmc_pairs.ok()) continue;

    const auto truth = dmc_pairs->Pairs();
    const size_t mh_found = MatchedPairs(truth, mh_pairs.Pairs());
    const size_t lsh_found = MatchedPairs(truth, lsh_pairs.Pairs());
    const double mh_fn =
        truth.empty() ? 0.0
                      : 100.0 * (truth.size() - mh_found) / truth.size();
    const double lsh_fn =
        truth.empty() ? 0.0
                      : 100.0 * (truth.size() - lsh_found) / truth.size();
    std::printf("%-8.0f %12.3f %12.3f %12.3f %12.3f %10zu %11.1f%% %11.1f%%\n",
                t * 100, ap_stats.total_seconds, dmc_stats.total_seconds,
                mh_stats.total_seconds, lsh_stats.total_seconds,
                truth.size(), mh_fn, lsh_fn);
    std::fflush(stdout);
    if (t == 0.85) {
      apriori_sim_85 = ap_stats.total_seconds;
      dmc_sim_85 = dmc_stats.total_seconds;
      minhash_85 = mh_stats.total_seconds;
    }
  }

  bench::PrintHeader("§7 headline speedups at 85% threshold");
  std::printf("%-36s %10s %10s\n", "comparison", "measured", "paper");
  if (dmc_imp_85 > 0) {
    std::printf("%-36s %9.2fx %9.1fx\n", "DMC-imp vs a-priori",
                apriori_imp_85 / dmc_imp_85, 1.7);
    std::printf("%-36s %9.2fx %9.1fx\n", "DMC-imp vs K-Min",
                kmin_85 / dmc_imp_85, 1.9);
  }
  if (dmc_sim_85 > 0) {
    std::printf("%-36s %9.2fx %9.1fx\n", "DMC-sim vs a-priori",
                apriori_sim_85 / dmc_sim_85, 5.9);
    std::printf("%-36s %9.2fx %9.1fx\n", "DMC-sim vs Min-Hash",
                minhash_85 / dmc_sim_85, 1.7);
  }
  std::printf(
      "\nShape check (paper): a-priori wins at low confidence (<=75%%),\n"
      "Min-Hash at low similarity (<=70%%); DMC wins at high thresholds.\n");
  return 0;
}
