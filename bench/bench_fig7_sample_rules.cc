// Reproduces Fig. 7: sample implication rules mined from the news corpus
// at 85% confidence with low-support pruning of columns having fewer than
// 5 ones, then expanded recursively from the "polgar" keyword — the
// paper's text-mining showcase. The synthetic corpus names topic-0
// entities and theme words after the paper's chess example, so the output
// reads like Fig. 7.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/engine.h"
#include "datagen/news_gen.h"
#include "matrix/column_stats.h"
#include "rules/grouping.h"

int main(int argc, char** argv) {
  using namespace dmc;
  const double scale = bench::ParseScale(argc, argv);

  NewsOptions gen;
  gen.num_docs = static_cast<uint32_t>(8000 * scale);
  gen.num_topics = 25;
  gen.background_vocab = static_cast<uint32_t>(3000 * scale);
  const NewsData news = GenerateNews(gen);

  // "support pruning less than 5": drop columns with fewer than 5 ones.
  const PrunedMatrix pruned = SupportPruneColumns(news.matrix, 5);

  ImplicationMiningOptions o;
  o.min_confidence = 0.85;
  MiningStats stats;
  auto rules = MineImplications(pruned.matrix, o, &stats);
  if (!rules.ok()) {
    std::printf("mining failed: %s\n", rules.status().ToString().c_str());
    return 1;
  }

  bench::PrintHeader("Fig. 7: sample rules (85% confidence, support >= 5,"
                     " scale=" + std::to_string(scale) + ")");
  std::printf("total rules: %zu (%.2fs)\n\n", rules->size(),
              stats.total_seconds);

  // Map pruned ids back to words.
  auto word = [&](ColumnId pruned_id) {
    return news.words[pruned.original_column[pruned_id]].c_str();
  };

  // Find "polgar" in the pruned matrix.
  ColumnId polgar = pruned.matrix.num_columns();
  for (ColumnId c = 0; c < pruned.matrix.num_columns(); ++c) {
    if (news.words[pruned.original_column[c]] == "polgar") polgar = c;
  }
  if (polgar == pruned.matrix.num_columns()) {
    std::printf("'polgar' was support-pruned at this scale; rerun with a"
                " larger --scale\n");
    return 0;
  }

  const auto expanded = ExpandFromSeed(*rules, polgar, /*max_depth=*/2);
  std::printf("rules reachable from 'polgar' (depth <= 2): %zu\n\n",
              expanded.size());
  int printed = 0;
  for (const auto& r : expanded.SortedByConfidence()) {
    std::printf("  %-14s -> %-14s (conf=%.3f, support=%u)\n", word(r.lhs),
                word(r.rhs), r.confidence(), r.hits());
    if (++printed >= 40) break;
  }

  // The conclusion's grouping idea: connected components approximate
  // multi-attribute rules.
  const auto groups = GroupByConnectedComponents(expanded);
  bench::PrintSubHeader("rule groups (connected components)");
  int shown = 0;
  for (const auto& g : groups) {
    std::printf("  group of %zu columns, %zu rules: ", g.columns.size(),
                g.rule_indices.size());
    int w = 0;
    for (ColumnId c : g.columns) {
      std::printf("%s ", word(c));
      if (++w >= 10) {
        std::printf("...");
        break;
      }
    }
    std::printf("\n");
    if (++shown >= 5) break;
  }
  return 0;
}
