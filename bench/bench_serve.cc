// Load generator for the rule-serving daemon (src/serve).
//
// Starts an in-process RuleServer on an ephemeral loopback port, seeds
// it with a WlogP-style matrix, then drives a mixed workload:
//
//   * N client threads, each pipelining `--pipeline` query requests
//     (antecedent / consequent / top-k / stats mix) per window for
//     throughput, plus one individually-timed synchronous query every
//     few windows — those samples are the latency histogram, so p50/p99
//     measure a query's round trip *under* full pipelined load.
//   * One appender thread pushing small batches on a fixed cadence, so
//     snapshots keep publishing while the readers hammer the index.
//
// Flags: --scale=F --threads=N --seconds=S --pipeline=P
//        --json-out=PATH   (BENCH_serve.json schema; see bench_common.h)
//        --smoke           (tiny deterministic run, hard-fails on any
//                           error reply — the check.sh serve stage)
//
// Reported: total mixed QPS, query p50/p99, snapshots published during
// the run.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "matrix/binary_matrix.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace dmc {
namespace {

using bench::BenchRecord;

uint64_t ParseIntFlag(int argc, char** argv, const char* name, uint64_t def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return static_cast<uint64_t>(std::atoll(argv[i] + prefix.size()));
    }
  }
  return def;
}

bool HasFlag(int argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

/// Rows for one append batch: a few hundred correlated rows so each
/// AppendBatch both confirms existing rules and perturbs confidences.
std::vector<std::vector<ColumnId>> MakeBatchRows(Rng& rng, size_t rows,
                                                 ColumnId num_columns) {
  std::vector<std::vector<ColumnId>> out(rows);
  for (auto& row : out) {
    const ColumnId base =
        static_cast<ColumnId>(rng.Uniform(num_columns > 4 ? num_columns - 4
                                                          : 1));
    row.push_back(base);
    row.push_back(base + 1);
    if (rng.Uniform(4) == 0) row.push_back(base + 3);
  }
  for (auto& row : out) {
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
  }
  return out;
}

struct WorkerResult {
  uint64_t requests = 0;
  uint64_t errors = 0;
  std::vector<double> latencies;  // seconds, synchronous samples only
};

void RunWorker(uint16_t port, ColumnId num_columns, double seconds,
               size_t pipeline, uint32_t seed, std::atomic<bool>* stop,
               WorkerResult* result) {
  serve::RuleClient client;
  if (!client.Connect("127.0.0.1", port).ok()) {
    ++result->errors;
    return;
  }
  Rng rng(seed);
  // One pre-encoded frame per op kind, re-randomized each window.
  std::vector<std::string> window;
  window.reserve(pipeline);
  Stopwatch clock;
  uint64_t windows = 0;
  while (!stop->load(std::memory_order_relaxed) &&
         clock.ElapsedSeconds() < seconds) {
    window.clear();
    for (size_t i = 0; i < pipeline; ++i) {
      const uint32_t kind = static_cast<uint32_t>(rng.Uniform(16));
      const ColumnId col = static_cast<ColumnId>(rng.Uniform(num_columns));
      if (kind < 7) {
        window.push_back(serve::EncodeQueryRequest(
            serve::Op::kQueryByAntecedent, col));
      } else if (kind < 14) {
        window.push_back(serve::EncodeQueryRequest(
            serve::Op::kQueryByConsequent, col));
      } else if (kind == 14) {
        window.push_back(
            serve::EncodeQueryRequest(serve::Op::kTopK, 16));
      } else {
        window.push_back(serve::EncodeStatsRequest());
      }
    }
    std::string wire;
    for (const std::string& frame : window) wire += frame;
    if (!client.SendRequest(wire).ok()) {
      ++result->errors;
      break;
    }
    bool dead = false;
    for (size_t i = 0; i < pipeline; ++i) {
      const StatusOr<serve::Reply> reply = client.ReadReply();
      if (!reply.ok()) {
        ++result->errors;
        dead = true;
        break;
      }
      ++result->requests;
    }
    if (dead) break;
    ++windows;
    // Every 8th window: one synchronous, individually timed query —
    // the latency histogram measures these under the pipelined load.
    if (windows % 8 == 0) {
      Stopwatch rt;
      const StatusOr<serve::Reply> reply = client.QueryByAntecedent(
          static_cast<ColumnId>(rng.Uniform(num_columns)));
      if (!reply.ok()) {
        ++result->errors;
        break;
      }
      result->latencies.push_back(rt.ElapsedSeconds());
      ++result->requests;
    }
  }
}

void RunAppender(uint16_t port, ColumnId num_columns, double seconds,
                 std::atomic<bool>* stop, uint64_t* batches_sent,
                 uint64_t* errors) {
  serve::RuleClient client;
  if (!client.Connect("127.0.0.1", port).ok()) {
    ++*errors;
    return;
  }
  Rng rng(0xA99E7Du);
  Stopwatch clock;
  while (!stop->load(std::memory_order_relaxed) &&
         clock.ElapsedSeconds() < seconds) {
    const auto rows = MakeBatchRows(rng, 256, num_columns);
    if (!client.AppendRows(num_columns, rows).ok()) {
      ++*errors;
      return;
    }
    ++*batches_sent;
    // ~8 batches/second: enough to publish well over 10 snapshots in a
    // default 5-second run without starving the readers' core.
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
  }
}

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(p * (sorted.size() - 1));
  return sorted[idx];
}

int Run(int argc, char** argv) {
  const bool smoke = HasFlag(argc, argv, "smoke");
  const double scale = bench::ParseScale(argc, argv, smoke ? 0.05 : 0.25);
  const size_t threads =
      static_cast<size_t>(ParseIntFlag(argc, argv, "threads", smoke ? 1 : 4));
  const double seconds =
      smoke ? 1.0 : static_cast<double>(ParseIntFlag(argc, argv, "seconds", 5));
  const size_t pipeline =
      static_cast<size_t>(ParseIntFlag(argc, argv, "pipeline", 128));
  const std::string json_out = bench::ParseJsonOut(argc, argv);

  bench::PrintHeader("bench_serve: mixed query/append load");

  bench::Dataset dataset = bench::MakeWlogP(scale);
  const ColumnId num_columns = dataset.matrix.num_columns();

  ServeOptions options;
  options.mining.min_confidence = 0.5;
  RuleServer server(std::move(options));
  if (!server.SeedFromMatrix(dataset.matrix).ok() || !server.Start().ok()) {
    std::fprintf(stderr, "bench_serve: failed to start the server\n");
    return 1;
  }
  const serve::ServeStats before = server.StatsSnapshot();
  std::printf("seeded %s: %u x %u, generation %llu, %llu rules\n",
              dataset.name.c_str(), dataset.matrix.num_rows(), num_columns,
              (unsigned long long)before.generation,
              (unsigned long long)before.num_rules);

  std::atomic<bool> stop{false};
  std::vector<WorkerResult> results(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  Stopwatch wall;
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back(RunWorker, server.port(), num_columns, seconds,
                         pipeline, static_cast<uint32_t>(1000 + t), &stop,
                         &results[t]);
  }
  uint64_t batches_sent = 0;
  uint64_t append_errors = 0;
  std::thread appender(RunAppender, server.port(), num_columns, seconds,
                       &stop, &batches_sent, &append_errors);
  for (std::thread& w : workers) w.join();
  stop.store(true, std::memory_order_relaxed);
  appender.join();
  const double elapsed = wall.ElapsedSeconds();

  uint64_t requests = 0;
  uint64_t errors = append_errors;
  std::vector<double> latencies;
  for (const WorkerResult& r : results) {
    requests += r.requests;
    errors += r.errors;
    latencies.insert(latencies.end(), r.latencies.begin(), r.latencies.end());
  }
  requests += batches_sent;  // appends are requests too
  std::sort(latencies.begin(), latencies.end());

  const serve::ServeStats after = server.StatsSnapshot();
  server.Shutdown();

  const double qps = requests / elapsed;
  const double p50 = Percentile(latencies, 0.50);
  const double p99 = Percentile(latencies, 0.99);
  const uint64_t snapshots =
      after.snapshots_published - before.snapshots_published;

  std::printf("%zu threads x pipeline %zu for %.1fs\n", threads, pipeline,
              elapsed);
  std::printf("requests        %llu (%llu append batches)\n",
              (unsigned long long)requests, (unsigned long long)batches_sent);
  std::printf("mixed qps       %.0f\n", qps);
  std::printf("query p50       %.3f ms (%zu samples)\n", p50 * 1e3,
              latencies.size());
  std::printf("query p99       %.3f ms\n", p99 * 1e3);
  std::printf("snapshots       %llu published during the run (gen %llu)\n",
              (unsigned long long)snapshots,
              (unsigned long long)after.generation);
  std::printf("errors          %llu\n", (unsigned long long)errors);

  if (!json_out.empty()) {
    char params[160];
    std::snprintf(params, sizeof(params),
                  "threads=%zu pipeline=%zu seconds=%.1f scale=%g "
                  "snapshots=%llu",
                  threads, pipeline, elapsed, scale,
                  (unsigned long long)snapshots);
    std::vector<BenchRecord> records;
    records.push_back({"serve/mixed_qps", params, elapsed, qps, 0});
    records.push_back({"serve/query_latency_p50", params, p50, 0.0, 0});
    records.push_back({"serve/query_latency_p99", params, p99, 0.0, 0});
    if (!bench::WriteBenchJson(records, json_out)) {
      std::fprintf(stderr, "bench_serve: failed to write %s\n",
                   json_out.c_str());
      return 1;
    }
  }

  if (smoke) {
    // The smoke contract for check.sh: no error replies, the readers
    // made real progress, and at least one append published.
    if (errors != 0 || requests < 100 || snapshots < 1) {
      std::fprintf(stderr,
                   "bench_serve --smoke FAILED: errors=%llu requests=%llu "
                   "snapshots=%llu\n",
                   (unsigned long long)errors, (unsigned long long)requests,
                   (unsigned long long)snapshots);
      return 1;
    }
    std::printf("smoke OK\n");
  }
  return errors == 0 ? 0 : 1;
}

}  // namespace
}  // namespace dmc

int main(int argc, char** argv) { return dmc::Run(argc, argv); }
