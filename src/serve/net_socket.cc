#include "serve/net_socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/types.h>
#include <unistd.h>

#include <cmath>

namespace dmc {
namespace net {

namespace {

Status Errno(const std::string& what) {
  return IOError(what + ": " + std::string(strerror(errno)));
}

StatusOr<sockaddr_in> MakeAddr(const std::string& address, uint16_t port) {
  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgumentError("not a numeric IPv4 address: " + address);
  }
  return addr;
}

}  // namespace

StatusOr<int> ListenTcp(const std::string& address, uint16_t port,
                        int backlog) {
  DMC_ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddr(address, port));
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  if (setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0) {
    const Status st = Errno("setsockopt(SO_REUSEADDR)");
    CloseFd(fd);
    return st;
  }
  if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st = Errno("bind " + address + ":" + std::to_string(port));
    CloseFd(fd);
    return st;
  }
  if (listen(fd, backlog) != 0) {
    const Status st = Errno("listen");
    CloseFd(fd);
    return st;
  }
  return fd;
}

StatusOr<uint16_t> LocalPort(int fd) {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

StatusOr<int> AcceptConn(int listen_fd) {
  for (;;) {
    const int fd = accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return static_cast<int>(kWouldBlock);
    }
    return Errno("accept");
  }
}

StatusOr<int> ConnectTcp(const std::string& address, uint16_t port) {
  DMC_ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddr(address, port));
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  for (;;) {
    if (connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) == 0) {
      break;
    }
    if (errno == EINTR) continue;
    const Status st =
        Errno("connect " + address + ":" + std::to_string(port));
    CloseFd(fd);
    return st;
  }
  // Request/reply frames are small; never trade latency for Nagle.
  const int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Errno("fcntl(F_SETFL, O_NONBLOCK)");
  }
  return Status::OK();
}

Status SetIoTimeout(int fd, double seconds) {
  timeval tv;
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (seconds - std::floor(seconds)) * 1e6);
  if (setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(SO_RCVTIMEO)");
  }
  if (setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(SO_SNDTIMEO)");
  }
  return Status::OK();
}

StatusOr<int64_t> ReadSome(int fd, char* buf, size_t n) {
  for (;;) {
    const ssize_t r = recv(fd, buf, n, 0);
    if (r >= 0) return static_cast<int64_t>(r);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return kWouldBlock;
    return Errno("recv");
  }
}

StatusOr<int64_t> WriteSome(int fd, const char* buf, size_t n) {
  for (;;) {
    const ssize_t r = send(fd, buf, n, MSG_NOSIGNAL);
    if (r >= 0) return static_cast<int64_t>(r);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return kWouldBlock;
    return Errno("send");
  }
}

Status SendAll(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    DMC_ASSIGN_OR_RETURN(int64_t w, WriteSome(fd, data + off, n - off));
    if (w == kWouldBlock) {
      // A blocking socket only reports would-block when SO_SNDTIMEO
      // expired with the peer's window closed.
      return IOError("send timed out");
    }
    off += static_cast<size_t>(w);
  }
  return Status::OK();
}

Status RecvAll(int fd, char* buf, size_t n) {
  size_t off = 0;
  while (off < n) {
    DMC_ASSIGN_OR_RETURN(int64_t r, ReadSome(fd, buf + off, n - off));
    if (r == kWouldBlock) return IOError("recv timed out");
    if (r == 0) {
      if (off == 0) return NotFoundError("connection closed");
      return IOError("connection closed mid-frame (" + std::to_string(off) +
                     " of " + std::to_string(n) + " bytes)");
    }
    off += static_cast<size_t>(r);
  }
  return Status::OK();
}

void ShutdownWrite(int fd) {
  if (fd >= 0) shutdown(fd, SHUT_WR);
}

void CloseFd(int fd) {
  if (fd >= 0) close(fd);
}

StatusOr<std::pair<int, int>> CreateWakePipe() {
  int fds[2];
  if (pipe(fds) != 0) return Errno("pipe");
  for (int fd : fds) {
    const Status st = SetNonBlocking(fd);
    if (!st.ok()) {
      CloseFd(fds[0]);
      CloseFd(fds[1]);
      return st;
    }
  }
  return std::make_pair(fds[0], fds[1]);
}

void WakeUp(int write_fd, char flag) {
  // Async-signal-safe: write(2) only. EAGAIN means the pipe already
  // holds unread wakeups; the reader drains everything anyway. The
  // shutdown flag always fits: it is sent at most twice per server
  // lifetime, against a 64 KiB pipe buffer.
  (void)!write(write_fd, &flag, 1);
}

bool DrainWakePipe(int read_fd, char flag) {
  char buf[64];
  bool saw_flag = false;
  for (;;) {
    const ssize_t r = read(read_fd, buf, sizeof(buf));
    if (r <= 0) break;  // EAGAIN (drained), EOF, or EINTR — retry is moot
    for (ssize_t i = 0; i < r; ++i) {
      if (buf[i] == flag) saw_flag = true;
    }
  }
  return saw_flag;
}

}  // namespace net
}  // namespace dmc
