// Wire protocol for the dmc_serve rule-serving daemon (DESIGN §5.7).
//
// Every message — request or reply, either direction — is one frame:
//
//   u32  payload_len   little-endian, excludes the prefix itself
//   ...  payload       payload_len bytes
//
// and every payload starts with the same 4-byte header:
//
//   u16  version       kProtocolVersion (2)
//   u8   op            Op below (replies echo the request op)
//   u8   reserved      0 on requests; the Status code on replies
//
// Request bodies:
//   kQueryByAntecedent   u32 column          all rules column => *
//   kQueryByConsequent   u32 column          all rules * => column
//   kTopK                u32 k               k best rules (0 = all)
//   kStats               (empty)             server counters
//   kAppend              u32 num_columns, u32 num_rows,
//                        per row: u32 n, n ascending u32 column ids
//   kEvict               u64 rows (oldest rows to drop; must not
//                        exceed the rows the server logically holds)
//
// Reply bodies (reserved byte == 0, i.e. OK):
//   queries              u64 generation, u32 count,
//                        count x (u32 lhs, u32 rhs, u32 lhs_ones,
//                                 u32 misses) in confidence order
//   kStats               the ServeStats fields, each u64, in
//                        declaration order
//   kAppend              u64 pending_batches (ingest-queue depth after
//                        the enqueue — appends are acknowledged before
//                        they are mined; a batch the ingest thread
//                        later fails to mine is counted in the
//                        batches_dropped stat)
//   kEvict               u64 pending ops (same queue as kAppend;
//                        evicts are acknowledged before they are
//                        applied — a failed one is counted in the
//                        evicts_dropped stat)
// An error reply (reserved byte != 0) carries u32 msg_len + msg bytes
// instead; an unparseable request is answered with op kError and
// StatusCode::kInvalidArgument, after which the server closes the
// connection (the stream can no longer be trusted to be framed).
//
// Bounds: payload_len must be in [4, kMaxFramePayloadBytes]. A length
// prefix outside that range is a protocol error the receiver detects
// *before* buffering the body, so an adversarial 4 GiB announcement
// costs nothing. Append batches are additionally capped at
// kMaxAppendRows rows and kMaxAppendColumns columns — the column cap
// matters even for a zero-row batch, because num_columns alone sizes
// per-column state downstream (BinaryMatrix::FromRows and the miner's
// posting lists), so a 16-byte frame must never be able to announce a
// multi-GiB width.
//
// All encode/decode helpers are pure functions over std::string buffers
// shared by the server, the client, the fuzz battery and the bench — a
// frame either round-trips exactly or decodes to kInvalidArgument;
// nothing here does I/O.

#ifndef DMC_SERVE_PROTOCOL_H_
#define DMC_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "rules/rule.h"
#include "util/status.h"
#include "util/statusor.h"

namespace dmc {
namespace serve {

inline constexpr uint16_t kProtocolVersion = 2;
/// Hard cap on one frame's payload; covers a ~64k-row append batch.
inline constexpr uint32_t kMaxFramePayloadBytes = 4u << 20;
/// Smallest meaningful payload: the 4-byte payload header.
inline constexpr uint32_t kMinFramePayloadBytes = 4;
/// Per-batch row cap for kAppend (defense against hostile headers).
inline constexpr uint32_t kMaxAppendRows = 1u << 20;
/// Cap on kAppend's num_columns. Decode rejects anything wider before
/// the server allocates per-column state, bounding the allocation a
/// hostile header can force to a few MiB instead of ~16 GiB at the
/// u32 maximum.
inline constexpr uint32_t kMaxAppendColumns = 1u << 20;

enum class Op : uint8_t {
  kQueryByAntecedent = 1,
  kQueryByConsequent = 2,
  kTopK = 3,
  kStats = 4,
  kAppend = 5,
  kEvict = 6,
  /// Reply-only: the request could not be decoded far enough to echo
  /// its op.
  kError = 0x7F,
};

/// Server counters served by kStats (and RuleServer::StatsSnapshot).
/// All fields ride the wire as u64 in declaration order — append new
/// fields at the end and bump kProtocolVersion.
struct ServeStats {
  uint64_t generation = 0;
  uint64_t num_rules = 0;
  uint64_t rows_mined = 0;
  uint64_t batches_ingested = 0;
  uint64_t rows_ingested = 0;
  uint64_t pending_batches = 0;
  uint64_t snapshots_published = 0;
  uint64_t requests_served = 0;
  uint64_t connections_accepted = 0;
  uint64_t connections_active = 0;
  uint64_t protocol_errors = 0;
  uint64_t io_errors = 0;
  /// Acknowledged append batches the ingest thread later failed to
  /// mine (appends are acked at enqueue time, so this is how a client
  /// detects that acked data was lost).
  uint64_t batches_dropped = 0;
  /// kEvict requests applied (explicit plus automatic window slides).
  uint64_t batches_evicted = 0;
  /// Rows those evictions dropped from the front of the window.
  uint64_t rows_evicted = 0;
  /// Acknowledged evicts the ingest thread later failed to apply (the
  /// evict-side mirror of batches_dropped).
  uint64_t evicts_dropped = 0;

  friend bool operator==(const ServeStats&, const ServeStats&) = default;
};

/// One decoded request.
struct Request {
  Op op = Op::kStats;
  /// kQueryByAntecedent / kQueryByConsequent: the column; kTopK: k.
  uint32_t arg = 0;
  /// kAppend only.
  uint32_t append_num_columns = 0;
  std::vector<std::vector<ColumnId>> append_rows;
  /// kEvict only: oldest rows to drop.
  uint64_t evict_rows = 0;
};

/// One decoded reply. `status` carries the server-side verdict; the
/// transport succeeded either way.
struct Reply {
  Op op = Op::kError;
  Status status;
  uint64_t generation = 0;
  std::vector<ImplicationRule> rules;  // query replies
  ServeStats stats;                    // kStats replies
  uint64_t pending_batches = 0;        // kAppend / kEvict replies
};

// Requests. Encoders produce a complete frame (length prefix included).
std::string EncodeQueryRequest(Op op, uint32_t arg);
std::string EncodeStatsRequest();
std::string EncodeAppendRequest(uint32_t num_columns,
                                const std::vector<std::vector<ColumnId>>& rows);
std::string EncodeEvictRequest(uint64_t rows);

/// Decodes one request *payload* (frame prefix already stripped).
/// Version skew, unknown op, short/trailing bytes, or append bodies
/// violating the bounds yield kInvalidArgument.
[[nodiscard]] StatusOr<Request> DecodeRequestPayload(std::string_view payload);

// Replies (complete frames, as above).
std::string EncodeRulesReply(Op op, uint64_t generation,
                             const std::vector<ImplicationRule>& rules);
std::string EncodeStatsReply(const ServeStats& stats);
std::string EncodeAppendReply(uint64_t pending_batches);
std::string EncodeEvictReply(uint64_t pending_batches);
/// `op` is the request op when known, Op::kError otherwise. `status`
/// must not be OK.
std::string EncodeErrorReply(Op op, const Status& status);

/// Decodes one reply payload. Transport-level garbage decodes to
/// kInvalidArgument; a well-formed error reply decodes to OK with
/// `Reply::status` holding the server's error.
[[nodiscard]] StatusOr<Reply> DecodeReplyPayload(std::string_view payload);

/// Incremental splitter for a length-prefixed byte stream. Feed bytes as
/// they arrive; Next() hands back complete payloads. Shared by the
/// server's per-connection state machine and the client, and hammered
/// directly by the fuzz battery.
class FrameBuffer {
 public:
  /// What Next() found.
  enum class Poll {
    kFrame,     ///< *payload was filled with one complete payload
    kNeedMore,  ///< the buffered prefix is valid but incomplete
    kBadFrame,  ///< the length prefix violates the protocol bounds
  };

  explicit FrameBuffer(
      uint32_t max_payload_bytes = kMaxFramePayloadBytes)
      : max_payload_bytes_(max_payload_bytes) {}

  void Append(const char* data, size_t n) { buffer_.append(data, n); }

  /// Extracts the next complete payload. After kBadFrame the stream is
  /// unframed garbage; the caller must stop feeding and close.
  Poll Next(std::string* payload);

  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  uint32_t max_payload_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;
};

}  // namespace serve
}  // namespace dmc

#endif  // DMC_SERVE_PROTOCOL_H_
