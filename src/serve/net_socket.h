// Thin Status-returning wrappers over the BSD socket syscalls.
//
// This is deliberately the *only* translation unit in the tree that may
// call socket/accept/recv/send directly — the dmc_lint
// `banned-raw-socket` rule confines the raw primitives to
// src/serve/net_* files, the same way atomic_io.cc owns unlink/rename.
// Everything above this layer (event loop, client, tools, tests, bench)
// speaks fds through these helpers, so error mapping (errno -> Status),
// EINTR retries and non-blocking semantics live in exactly one place.
//
// Only numeric IPv4 addresses are supported ("127.0.0.1"): the daemon
// serves loopback and explicit bind addresses; name resolution is a CLI
// concern, not a serving-layer one.

#ifndef DMC_SERVE_NET_SOCKET_H_
#define DMC_SERVE_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <utility>

#include "util/status.h"
#include "util/statusor.h"

namespace dmc {
namespace net {

/// Sentinel returned by ReadSome/WriteSome/AcceptConn when the
/// operation would block on a non-blocking fd.
inline constexpr int64_t kWouldBlock = -1;

/// Creates, binds and listens a TCP socket on `address:port`
/// (SO_REUSEADDR set; port 0 picks an ephemeral port — read it back
/// with LocalPort). Returns the listening fd.
[[nodiscard]] StatusOr<int> ListenTcp(const std::string& address,
                                      uint16_t port, int backlog);

/// The port a bound socket actually listens on.
[[nodiscard]] StatusOr<uint16_t> LocalPort(int fd);

/// Accepts one pending connection from a non-blocking listener.
/// Returns the connection fd, or kWouldBlock (as an int) when no
/// connection is pending.
[[nodiscard]] StatusOr<int> AcceptConn(int listen_fd);

/// Blocking connect to `address:port`. Returns the connected fd.
[[nodiscard]] StatusOr<int> ConnectTcp(const std::string& address,
                                       uint16_t port);

[[nodiscard]] Status SetNonBlocking(int fd);

/// Send/receive timeouts for a blocking client socket, so a wedged or
/// draining server turns into a clean kIOError instead of a hang.
[[nodiscard]] Status SetIoTimeout(int fd, double seconds);

/// recv() once. >0 bytes were read; 0 = orderly EOF; kWouldBlock on a
/// non-blocking fd with nothing pending. EINTR retries internally.
[[nodiscard]] StatusOr<int64_t> ReadSome(int fd, char* buf, size_t n);

/// send() once (MSG_NOSIGNAL — a dead peer yields a Status, never
/// SIGPIPE). Returns bytes written or kWouldBlock.
[[nodiscard]] StatusOr<int64_t> WriteSome(int fd, const char* buf, size_t n);

/// Blocking send of the whole buffer (for the client side).
[[nodiscard]] Status SendAll(int fd, const char* data, size_t n);

/// Blocking receive of exactly `n` bytes. EOF before the first byte is
/// kNotFound ("connection closed"); EOF mid-buffer is kIOError.
[[nodiscard]] Status RecvAll(int fd, char* buf, size_t n);

/// Half-close: shutdown(SHUT_WR), signalling EOF to the peer while the
/// read side stays open for its remaining replies.
void ShutdownWrite(int fd);

/// close(), ignoring errors (used on teardown paths only).
void CloseFd(int fd);

/// A non-blocking self-pipe {read_fd, write_fd}: the wakeup primitive
/// for the event loop and the ingest thread. The write end is safe to
/// use from a signal handler.
[[nodiscard]] StatusOr<std::pair<int, int>> CreateWakePipe();

/// write() one `flag` byte to a wake pipe; async-signal-safe, never
/// blocks (a full pipe already guarantees a pending wakeup).
void WakeUp(int write_fd, char flag);

/// Drains every pending byte from a wake pipe's read end; returns true
/// iff any byte equals `flag` (used for the shutdown marker).
bool DrainWakePipe(int read_fd, char flag);

}  // namespace net
}  // namespace dmc

#endif  // DMC_SERVE_NET_SOCKET_H_
