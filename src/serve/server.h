// RuleServer — the long-running rule-serving daemon (DESIGN §5.7).
//
// Architecture: two threads plus the caller's.
//
//   * The *event thread* owns every socket. A poll(2) loop multiplexes
//     the listening socket, a self-pipe (wakeups/shutdown), and one
//     per-connection state machine each: non-blocking reads feed a
//     FrameBuffer, complete requests are answered immediately, replies
//     queue in a per-connection output buffer drained by non-blocking
//     writes (POLLOUT only while data is pending; reading pauses while
//     a slow consumer's buffer is over the backpressure cap; a
//     connection whose peer stops reading altogether is reaped after
//     write_stall_timeout_seconds without write progress).
//     Queries resolve against the current immutable RuleIndexSnapshot
//     via one shared_ptr acquire — the event thread never waits on the
//     miner, so readers are wait-free with respect to publishes.
//   * The *ingest thread* owns the WindowedImplicationMiner. Append and
//     evict requests are acknowledged as soon as the op is parked on
//     the ingest queue; the ingest thread pops one op at a time, runs
//     AppendBatch / EvictBatch, and atomically Publishes a fresh
//     snapshot. Exactly one publish per op, in arrival order, so
//     generation g always serves the rules of "seed + first
//     (g - seed_generation) ops" — the invariant the differential
//     battery checks. Evict row counts are validated against the
//     server's logical row tally (rows after every queued op applies)
//     at request time: an over-eviction gets an error reply and the
//     connection closes, and the op is never queued. With
//     ServeOptions::window_rows set, every append auto-evicts its
//     overflow, so the server mines a count-bounded sliding window.
//
// Shutdown (RequestShutdown — async-signal-safe — or Shutdown): the
// listener closes first, pending replies flush (bounded by
// drain_timeout_seconds), connections close, then the ingest thread
// drains every queued batch, publishes, and exits.
//
// Observability: dmc.serve.* counters and serve/* trace spans flow
// through the registry/sink in ServeOptions. Failpoint sites
// serve.accept, serve.read, serve.write, serve.publish inject
// per-connection (resp. per-batch) failures for the fault drills —
// an injected error degrades one connection or one publish, never the
// process.

#ifndef DMC_SERVE_SERVER_H_
#define DMC_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/dmc_options.h"
#include "incr/incr_miner.h"
#include "incr/window_miner.h"
#include "matrix/binary_matrix.h"
#include "rules/rule_index.h"
#include "serve/protocol.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace dmc {

class MetricsRegistry;
class TraceSink;

struct ServeOptions {
  /// 0 = pick an ephemeral port (read it back via RuleServer::port()).
  uint16_t port = 0;
  std::string bind_address = "127.0.0.1";
  int backlog = 128;
  /// Connections beyond this are accepted and immediately closed.
  size_t max_connections = 256;
  /// Largest request/reply payload honored on the wire.
  uint32_t max_frame_payload_bytes = serve::kMaxFramePayloadBytes;
  /// Reading from a connection pauses while its pending output exceeds
  /// this (resumes once the client drains).
  size_t max_output_buffer_bytes = 8u << 20;
  /// How long a graceful drain may spend flushing pending replies.
  double drain_timeout_seconds = 5.0;
  /// A connection with pending output that makes no write progress for
  /// this long is closed (its peer stopped reading: POLLOUT never
  /// fires and backpressure pauses reads, so nothing else would ever
  /// reap it or its buffered output). Non-positive disables the reaper.
  double write_stall_timeout_seconds = 30.0;
  /// Mining configuration for the ingest-side incremental miner; its
  /// policy.observe hooks also apply to the mining work.
  ImplicationMiningOptions mining;
  /// Sliding-window row budget: appends past this auto-evict the
  /// overflow from the front (0 = unbounded; kEvict still works).
  uint64_t window_rows = 0;
  /// dmc.serve.* counters land here (null = disabled).
  MetricsRegistry* metrics = nullptr;
  /// serve/* spans land here (null = disabled).
  TraceSink* trace = nullptr;
};

class RuleServer {
 public:
  explicit RuleServer(ServeOptions options);
  ~RuleServer();

  RuleServer(const RuleServer&) = delete;
  RuleServer& operator=(const RuleServer&) = delete;

  /// Batch-mines `initial` and publishes the result as generation 1.
  /// Must be called before Start (the miner has no owner thread yet).
  [[nodiscard]] Status SeedFromMatrix(const BinaryMatrix& initial);

  /// Binds, listens, and spawns the event + ingest threads. The server
  /// is answering queries when this returns OK.
  [[nodiscard]] Status Start();

  /// The port actually bound (valid after Start).
  uint16_t port() const { return port_; }

  /// Initiates a graceful drain. Async-signal-safe (one atomic store
  /// plus one pipe write) — the SIGTERM handler in tools/dmc_serve.cc
  /// calls exactly this.
  void RequestShutdown();

  /// Blocks until both threads exit (after RequestShutdown, or a fatal
  /// listener error).
  void Wait();

  /// RequestShutdown + Wait. Idempotent.
  void Shutdown();

  /// The serving index; tests compare wire replies against direct
  /// snapshot queries on this object.
  const RuleIndex& index() const { return index_; }

  /// Consistent copy of the serve counters (same fields kStats serves).
  serve::ServeStats StatsSnapshot() const;

 private:
  struct Connection;

  void EventLoop();
  void IngestLoop();

  /// Decodes and answers every complete frame buffered on `conn`.
  /// Returns false when the connection must close (protocol error or
  /// injected fault).
  bool ProcessFrames(Connection* conn);
  /// Appends the reply for one decoded request to conn->out.
  void HandleRequest(const serve::Request& request, Connection* conn);

  serve::ServeStats StatsLocked() const DMC_REQUIRES(mu_);
  void Count(const char* name, uint64_t delta = 1);

  const ServeOptions options_;

  // Immutable after Start().
  int listen_fd_ = -1;
  int event_wake_r_ = -1;
  int event_wake_w_ = -1;
  int ingest_wake_r_ = -1;
  int ingest_wake_w_ = -1;
  uint16_t port_ = 0;
  bool started_ = false;
  bool joined_ = false;

  std::atomic<bool> shutdown_requested_{false};

  RuleIndex index_;
  /// Owned by the caller before Start, by the ingest thread after.
  WindowedImplicationMiner miner_;

  /// One queued ingest op: an append batch or a prefix eviction.
  struct PendingOp {
    BinaryMatrix batch;       ///< append payload (empty for evicts)
    uint64_t evict_rows = 0;  ///< > 0 marks an evict op
  };

  mutable Mutex mu_;
  /// Ops parked by the event thread, applied by the ingest thread.
  std::deque<PendingOp> pending_ DMC_GUARDED_BY(mu_);
  /// Rows the miner will hold once every queued op has applied — the
  /// value kEvict requests are validated against, so an evict racing
  /// queued appends is judged against the rows it will actually see.
  uint64_t logical_rows_ DMC_GUARDED_BY(mu_) = 0;
  /// The counters kStats serves (generation/num_rules come from the
  /// snapshot at reply time instead).
  serve::ServeStats counters_ DMC_GUARDED_BY(mu_);

  std::thread event_thread_;
  std::thread ingest_thread_;
};

}  // namespace dmc

#endif  // DMC_SERVE_SERVER_H_
