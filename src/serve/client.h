// RuleClient — blocking client for the dmc_serve wire protocol.
//
// One client == one TCP connection == one thread. The convenience
// calls (QueryByAntecedent, ..., AppendRows) are strict request/reply; the
// lower-level SendRequest/ReadReply pair lets a load generator pipeline
// many requests down the socket before reading the replies back, which
// is how bench_serve reaches tens of thousands of requests per second
// over a single connection.

#ifndef DMC_SERVE_CLIENT_H_
#define DMC_SERVE_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "matrix/binary_matrix.h"
#include "rules/rule.h"
#include "serve/protocol.h"
#include "util/status.h"
#include "util/statusor.h"

namespace dmc {
namespace serve {

class RuleClient {
 public:
  RuleClient() = default;
  ~RuleClient();

  RuleClient(const RuleClient&) = delete;
  RuleClient& operator=(const RuleClient&) = delete;
  RuleClient(RuleClient&& other) noexcept;
  RuleClient& operator=(RuleClient&& other) noexcept;

  /// Connects to `address:port` with send/receive timeouts of
  /// `timeout_seconds`, so a wedged server yields kIOError, not a hang.
  [[nodiscard]] Status Connect(const std::string& address, uint16_t port,
                               double timeout_seconds = 10.0);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Strict request/reply convenience calls. An error reply from the
  /// server is surfaced as its embedded Status.
  [[nodiscard]] StatusOr<Reply> QueryByAntecedent(ColumnId lhs);
  [[nodiscard]] StatusOr<Reply> QueryByConsequent(ColumnId rhs);
  [[nodiscard]] StatusOr<Reply> TopK(uint32_t k);
  [[nodiscard]] StatusOr<ServeStats> Stats();
  /// Returns the server's ingest-queue depth after parking the batch.
  [[nodiscard]] StatusOr<uint64_t> AppendRows(
      uint32_t num_columns, const std::vector<std::vector<ColumnId>>& rows);
  /// Evicts the server's oldest `rows` rows; returns the ingest-queue
  /// depth after parking the op. Over-evicting yields the server's
  /// kInvalidArgument (and the server closes the connection).
  [[nodiscard]] StatusOr<uint64_t> EvictRows(uint64_t rows);

  /// Pipelining primitives: write one encoded frame / read one reply
  /// frame. Callers must read exactly one reply per request sent, in
  /// order.
  [[nodiscard]] Status SendRequest(const std::string& frame);
  [[nodiscard]] StatusOr<Reply> ReadReply();

 private:
  [[nodiscard]] StatusOr<Reply> RoundTrip(const std::string& frame);

  int fd_ = -1;
};

}  // namespace serve
}  // namespace dmc

#endif  // DMC_SERVE_CLIENT_H_
