#include "serve/server.h"

#include <poll.h>

#include <algorithm>
#include <chrono>
#include <utility>

#include "observe/metrics.h"
#include "observe/trace.h"
#include "serve/net_socket.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace dmc {

namespace {

using serve::FrameBuffer;
using serve::Op;

/// One accepted connection's state machine. Owned (and touched) by the
/// event thread only.
constexpr size_t kReadChunkBytes = 64 * 1024;
/// Read bursts per readable event, so one fire-hosing client cannot
/// starve the rest of the poll set.
constexpr int kMaxReadsPerEvent = 8;

}  // namespace

struct RuleServer::Connection {
  explicit Connection(int fd_in, uint32_t max_payload)
      : fd(fd_in), in(max_payload) {}

  int fd;
  FrameBuffer in;
  std::string out;
  size_t out_offset = 0;
  /// Last moment this connection either had no pending output or made
  /// write progress; the stall reaper measures against it.
  std::chrono::steady_clock::time_point stall_start =
      std::chrono::steady_clock::now();
  /// Flush `out`, then close (set after a protocol error so the error
  /// reply still reaches the peer).
  bool closing = false;
  /// Close without further ceremony (EOF, IO error, injected fault).
  bool dead = false;

  size_t pending_out() const { return out.size() - out_offset; }
};

RuleServer::RuleServer(ServeOptions options)
    : options_(std::move(options)),
      miner_(options_.mining, options_.window_rows) {}

RuleServer::~RuleServer() {
  Shutdown();
  net::CloseFd(event_wake_r_);
  net::CloseFd(event_wake_w_);
  net::CloseFd(ingest_wake_r_);
  net::CloseFd(ingest_wake_w_);
}

Status RuleServer::SeedFromMatrix(const BinaryMatrix& initial) {
  if (started_) {
    return FailedPreconditionError(
        "SeedFromMatrix must run before Start: the ingest thread owns "
        "the miner afterwards");
  }
  DMC_ASSIGN_OR_RETURN(
      miner_, WindowedImplicationMiner::FromBatchMine(
                  initial, options_.mining, options_.window_rows));
  index_.Publish(miner_.rules());
  MutexLock lock(mu_);
  counters_.rows_mined = miner_.num_rows();
  counters_.snapshots_published += 1;
  logical_rows_ = miner_.num_rows();
  return Status::OK();
}

Status RuleServer::Start() {
  if (started_) return FailedPreconditionError("server already started");
  DMC_ASSIGN_OR_RETURN(
      listen_fd_, net::ListenTcp(options_.bind_address, options_.port,
                                 options_.backlog));
  Status st = Status::OK();
  do {
    auto port = net::LocalPort(listen_fd_);
    if (!port.ok()) {
      st = port.status();
      break;
    }
    port_ = *port;
    st = net::SetNonBlocking(listen_fd_);
    if (!st.ok()) break;
    auto event_pipe = net::CreateWakePipe();
    if (!event_pipe.ok()) {
      st = event_pipe.status();
      break;
    }
    event_wake_r_ = event_pipe->first;
    event_wake_w_ = event_pipe->second;
    auto ingest_pipe = net::CreateWakePipe();
    if (!ingest_pipe.ok()) {
      st = ingest_pipe.status();
      break;
    }
    ingest_wake_r_ = ingest_pipe->first;
    ingest_wake_w_ = ingest_pipe->second;
  } while (false);
  if (!st.ok()) {
    net::CloseFd(listen_fd_);
    listen_fd_ = -1;
    return st;
  }

  started_ = true;
  event_thread_ = std::thread(&RuleServer::EventLoop, this);
  ingest_thread_ = std::thread(&RuleServer::IngestLoop, this);
  DMC_LOG(Info) << "dmc_serve listening on " << options_.bind_address << ":"
                << port_;
  return Status::OK();
}

void RuleServer::RequestShutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
  if (event_wake_w_ >= 0) net::WakeUp(event_wake_w_, 's');
}

void RuleServer::Wait() {
  if (!started_ || joined_) return;
  if (event_thread_.joinable()) event_thread_.join();
  // The event thread's last act is the ingest quit marker; joining it
  // first guarantees no batch can arrive after the drain below.
  if (ingest_thread_.joinable()) ingest_thread_.join();
  joined_ = true;
}

void RuleServer::Shutdown() {
  if (!started_ || joined_) return;
  RequestShutdown();
  Wait();
}

serve::ServeStats RuleServer::StatsSnapshot() const {
  MutexLock lock(mu_);
  return StatsLocked();
}

serve::ServeStats RuleServer::StatsLocked() const {
  serve::ServeStats stats = counters_;
  stats.pending_batches = pending_.size();
  const std::shared_ptr<const RuleIndexSnapshot> snap = index_.snapshot();
  stats.generation = snap->generation();
  stats.num_rules = snap->size();
  return stats;
}

void RuleServer::Count(const char* name, uint64_t delta) {
  if (options_.metrics != nullptr) options_.metrics->IncrCounter(name, delta);
}

void RuleServer::HandleRequest(const serve::Request& request,
                               Connection* conn) {
  {
    MutexLock lock(mu_);
    ++counters_.requests_served;
  }
  Count("dmc.serve.requests");
  switch (request.op) {
    case Op::kQueryByAntecedent:
    case Op::kQueryByConsequent:
    case Op::kTopK: {
      // One shared_ptr acquire pins an immutable snapshot; publishes
      // swap the pointer without touching what this request reads.
      const std::shared_ptr<const RuleIndexSnapshot> snap = index_.snapshot();
      std::vector<ImplicationRule> rules;
      if (request.op == Op::kQueryByAntecedent) {
        rules = snap->QueryByAntecedent(request.arg);
      } else if (request.op == Op::kQueryByConsequent) {
        rules = snap->QueryByConsequent(request.arg);
      } else {
        rules = snap->TopK(request.arg);
      }
      conn->out +=
          serve::EncodeRulesReply(request.op, snap->generation(), rules);
      break;
    }
    case Op::kStats: {
      serve::ServeStats stats;
      {
        MutexLock lock(mu_);
        stats = StatsLocked();
      }
      conn->out += serve::EncodeStatsReply(stats);
      break;
    }
    case Op::kAppend: {
      BinaryMatrix batch = BinaryMatrix::FromRows(request.append_num_columns,
                                                  request.append_rows);
      uint64_t pending = 0;
      {
        MutexLock lock(mu_);
        pending_.push_back(PendingOp{std::move(batch), 0});
        pending = pending_.size();
        counters_.pending_batches = pending;
        logical_rows_ += request.append_rows.size();
        if (options_.window_rows > 0 &&
            logical_rows_ > options_.window_rows) {
          logical_rows_ = options_.window_rows;  // auto-slide trims it
        }
      }
      net::WakeUp(ingest_wake_w_, 'b');
      Count("dmc.serve.append_batches");
      Count("dmc.serve.append_rows", request.append_rows.size());
      conn->out += serve::EncodeAppendReply(pending);
      break;
    }
    case Op::kEvict: {
      uint64_t pending = 0;
      uint64_t held = 0;
      bool rejected = false;
      {
        MutexLock lock(mu_);
        if (request.evict_rows > logical_rows_) {
          ++counters_.protocol_errors;
          rejected = true;
          held = logical_rows_;
        } else {
          logical_rows_ -= request.evict_rows;
          pending_.push_back(PendingOp{BinaryMatrix(), request.evict_rows});
          pending = pending_.size();
          counters_.pending_batches = pending;
        }
      }
      if (rejected) {
        // A hostile over-eviction poisons trust in the stream the same
        // way an unparseable frame does: reply, then close.
        Count("dmc.serve.protocol_errors");
        conn->out += serve::EncodeErrorReply(
            Op::kEvict,
            InvalidArgumentError(
                "evict of " + std::to_string(request.evict_rows) +
                " rows exceeds the " + std::to_string(held) +
                " rows the window holds"));
        conn->closing = true;
        break;
      }
      net::WakeUp(ingest_wake_w_, 'b');
      Count("dmc.serve.evict_requests");
      conn->out += serve::EncodeEvictReply(pending);
      break;
    }
    case Op::kError:
      break;  // unreachable: DecodeRequestPayload rejects kError
  }
}

bool RuleServer::ProcessFrames(Connection* conn) {
  std::string payload;
  for (;;) {
    switch (conn->in.Next(&payload)) {
      case FrameBuffer::Poll::kNeedMore:
        return true;
      case FrameBuffer::Poll::kBadFrame: {
        {
          MutexLock lock(mu_);
          ++counters_.protocol_errors;
        }
        Count("dmc.serve.protocol_errors");
        conn->out += serve::EncodeErrorReply(
            Op::kError,
            InvalidArgumentError("protocol: frame length out of bounds"));
        conn->closing = true;
        return true;
      }
      case FrameBuffer::Poll::kFrame:
        break;
    }
    const StatusOr<serve::Request> request =
        serve::DecodeRequestPayload(payload);
    if (!request.ok()) {
      {
        MutexLock lock(mu_);
        ++counters_.protocol_errors;
      }
      Count("dmc.serve.protocol_errors");
      conn->out += serve::EncodeErrorReply(Op::kError, request.status());
      conn->closing = true;
      return true;
    }
    HandleRequest(*request, conn);
    if (conn->closing) return true;
  }
}

void RuleServer::EventLoop() {
  std::vector<std::unique_ptr<Connection>> conns;
  bool draining = false;
  std::chrono::steady_clock::time_point drain_deadline{};
  std::vector<char> read_buf(kReadChunkBytes);

  auto record_io_error = [this](const char* counter) {
    {
      MutexLock lock(mu_);
      ++counters_.io_errors;
    }
    Count(counter);
  };

  // Drains as much pending output as the socket accepts right now.
  // Returns false when the connection died writing.
  auto flush_out = [&](Connection* conn) -> bool {
    while (conn->pending_out() > 0) {
      if (fail::Enabled() &&
          !fail::InjectStatus("serve.write").ok()) {
        record_io_error("dmc.serve.write_errors");
        return false;
      }
      const StatusOr<int64_t> w =
          net::WriteSome(conn->fd, conn->out.data() + conn->out_offset,
                         conn->pending_out());
      if (!w.ok()) {
        record_io_error("dmc.serve.write_errors");
        return false;
      }
      if (*w == net::kWouldBlock) return true;
      conn->out_offset += static_cast<size_t>(*w);
      conn->stall_start = std::chrono::steady_clock::now();
      Count("dmc.serve.bytes_written", static_cast<uint64_t>(*w));
    }
    conn->out.clear();
    conn->out_offset = 0;
    return true;
  };

  const auto stall_timeout =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(
              std::max(options_.write_stall_timeout_seconds, 0.0)));
  constexpr auto kAcceptErrorBackoff = std::chrono::milliseconds(200);
  // Epoch-initialized: no backoff until an accept actually fails.
  std::chrono::steady_clock::time_point accept_backoff_until{};

  int listen_fd = listen_fd_;
  for (;;) {
    if (!draining && shutdown_requested_.load(std::memory_order_acquire)) {
      draining = true;
      net::CloseFd(listen_fd);
      listen_fd = -1;
      drain_deadline = std::chrono::steady_clock::now() +
                       std::chrono::duration_cast<
                           std::chrono::steady_clock::duration>(
                           std::chrono::duration<double>(
                               options_.drain_timeout_seconds));
    }
    const auto now = std::chrono::steady_clock::now();
    if (draining) {
      const bool past_deadline = now >= drain_deadline;
      for (auto& conn : conns) {
        if (conn->pending_out() == 0 || past_deadline) conn->dead = true;
      }
    }
    if (stall_timeout.count() > 0) {
      // Reap connections whose peer stopped reading: with output
      // pending, POLLOUT never fires and backpressure pauses reads, so
      // no event will ever touch them again — without this sweep each
      // one pins its buffer (and a max_connections slot) forever.
      for (auto& conn : conns) {
        if (conn->pending_out() == 0) {
          conn->stall_start = now;
        } else if (!conn->dead && now - conn->stall_start >= stall_timeout) {
          conn->dead = true;
          record_io_error("dmc.serve.write_stalls");
        }
      }
    }

    // Sweep connections that finished (flushed + closing) or died.
    const size_t before = conns.size();
    conns.erase(std::remove_if(conns.begin(), conns.end(),
                               [](const std::unique_ptr<Connection>& c) {
                                 const bool done =
                                     c->dead || (c->closing &&
                                                 c->pending_out() == 0);
                                 if (done) net::CloseFd(c->fd);
                                 return done;
                               }),
                conns.end());
    if (conns.size() != before) {
      MutexLock lock(mu_);
      counters_.connections_active = conns.size();
    }
    if (draining && conns.empty()) break;

    std::vector<pollfd> fds;
    // Parallel map: fds[i] belongs to conns[conn_of[i]]; SIZE_MAX for
    // the wakeup pipe / listener entries.
    std::vector<size_t> conn_of;
    fds.push_back(pollfd{event_wake_r_, POLLIN, 0});
    conn_of.push_back(SIZE_MAX);
    // While backing off after an accept failure the listener stays out
    // of the poll set: a persistent failure (e.g. EMFILE) leaves it
    // readable, and polling it would turn the loop into a busy-spin.
    const bool poll_listener = listen_fd >= 0 && now >= accept_backoff_until;
    if (poll_listener) {
      fds.push_back(pollfd{listen_fd, POLLIN, 0});
      conn_of.push_back(SIZE_MAX);
    }
    const size_t listen_slot = poll_listener ? 1 : SIZE_MAX;
    for (size_t i = 0; i < conns.size(); ++i) {
      Connection* conn = conns[i].get();
      short events = 0;
      const bool paused =
          conn->pending_out() > options_.max_output_buffer_bytes;
      if (!conn->closing && !draining && !paused) events |= POLLIN;
      if (conn->pending_out() > 0) events |= POLLOUT;
      if (events == 0) continue;
      fds.push_back(pollfd{conn->fd, events, 0});
      conn_of.push_back(i);
    }

    const int timeout_ms = draining ? 50 : 500;
    const int n = ::poll(fds.data(), fds.size(), timeout_ms);
    if (n < 0) continue;  // EINTR: just rebuild and re-poll

    if ((fds[0].revents & POLLIN) != 0) {
      (void)net::DrainWakePipe(event_wake_r_, 's');
      // The shutdown flag is authoritative; the byte is only a wakeup.
    }

    if (listen_slot != SIZE_MAX && (fds[listen_slot].revents & POLLIN) != 0) {
      for (;;) {
        const StatusOr<int> accepted = net::AcceptConn(listen_fd);
        if (!accepted.ok()) {
          record_io_error("dmc.serve.accept_errors");
          accept_backoff_until =
              std::chrono::steady_clock::now() + kAcceptErrorBackoff;
          break;
        }
        if (*accepted == net::kWouldBlock) break;
        const int fd = *accepted;
        if (fail::Enabled() &&
            !fail::InjectStatus("serve.accept").ok()) {
          // Injected accept failure: this connection degrades, the
          // listener keeps running.
          net::CloseFd(fd);
          record_io_error("dmc.serve.accept_errors");
          continue;
        }
        if (conns.size() >= options_.max_connections) {
          net::CloseFd(fd);
          Count("dmc.serve.connections_rejected");
          continue;
        }
        if (!net::SetNonBlocking(fd).ok()) {
          net::CloseFd(fd);
          record_io_error("dmc.serve.accept_errors");
          continue;
        }
        conns.push_back(std::make_unique<Connection>(
            fd, options_.max_frame_payload_bytes));
        {
          MutexLock lock(mu_);
          ++counters_.connections_accepted;
          counters_.connections_active = conns.size();
        }
        Count("dmc.serve.connections_accepted");
      }
    }

    for (size_t slot = 0; slot < fds.size(); ++slot) {
      const size_t ci = conn_of[slot];
      if (ci == SIZE_MAX) continue;
      Connection* conn = conns[ci].get();
      const short revents = fds[slot].revents;
      if ((revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
          (revents & POLLIN) == 0) {
        conn->dead = true;
        continue;
      }
      if ((revents & POLLIN) != 0) {
        if (fail::Enabled() &&
            !fail::InjectStatus("serve.read").ok()) {
          record_io_error("dmc.serve.read_errors");
          conn->dead = true;
          continue;
        }
        bool got_eof = false;
        for (int burst = 0; burst < kMaxReadsPerEvent; ++burst) {
          const StatusOr<int64_t> r =
              net::ReadSome(conn->fd, read_buf.data(), read_buf.size());
          if (!r.ok()) {
            record_io_error("dmc.serve.read_errors");
            conn->dead = true;
            break;
          }
          if (*r == net::kWouldBlock) break;
          if (*r == 0) {
            got_eof = true;
            break;
          }
          Count("dmc.serve.bytes_read", static_cast<uint64_t>(*r));
          conn->in.Append(read_buf.data(), static_cast<size_t>(*r));
          if (static_cast<int64_t>(read_buf.size()) != *r) break;
        }
        if (!conn->dead) {
          (void)ProcessFrames(conn);
          if (!flush_out(conn)) conn->dead = true;
        }
        if (got_eof && !conn->dead && conn->pending_out() == 0) {
          conn->dead = true;
        } else if (got_eof) {
          // Flush the remaining replies (e.g. the protocol-error reply
          // racing the peer's half-close), then let the sweep close.
          conn->closing = true;
        }
        continue;
      }
      if ((revents & POLLOUT) != 0) {
        if (!flush_out(conn)) conn->dead = true;
      }
    }
  }

  for (auto& conn : conns) net::CloseFd(conn->fd);
  net::CloseFd(listen_fd);
  {
    MutexLock lock(mu_);
    counters_.connections_active = 0;
  }
  // Last act: no more appends can arrive, so the ingest thread can
  // drain its queue and exit.
  net::WakeUp(ingest_wake_w_, 'q');
}

void RuleServer::IngestLoop() {
  bool quit = false;
  for (;;) {
    pollfd p{ingest_wake_r_, POLLIN, 0};
    // The 200 ms heartbeat is belt-and-braces: every enqueue writes the
    // pipe, but a lost wakeup must degrade to latency, not a wedge.
    (void)::poll(&p, 1, 200);
    if (net::DrainWakePipe(ingest_wake_r_, 'q')) quit = true;

    for (;;) {
      PendingOp op;
      {
        MutexLock lock(mu_);
        if (pending_.empty()) break;
        op = std::move(pending_.front());
        pending_.pop_front();
        counters_.pending_batches = pending_.size();
      }
      if (op.evict_rows > 0) {
        ScopedSpan span(options_.trace, "serve/ingest_evict");
        IncrEvictStats estats;
        const Status st = miner_.EvictBatch(op.evict_rows, &estats);
        if (!st.ok()) {
          DMC_LOG(Warning) << "serve ingest: EvictBatch failed, evict "
                           << "dropped: " << st;
          // Acked at enqueue time, so the loss is surfaced through its
          // own kStats counter, mirroring batches_dropped.
          {
            MutexLock lock(mu_);
            ++counters_.evicts_dropped;
          }
          Count("dmc.serve.ingest_errors");
          continue;
        }
        {
          MutexLock lock(mu_);
          ++counters_.batches_evicted;
          counters_.rows_evicted += estats.rows_evicted;
          counters_.rows_mined = miner_.num_rows();
        }
        Count("dmc.serve.batches_evicted");
      } else {
        ScopedSpan span(options_.trace, "serve/ingest_batch");
        IncrAppendStats astats;
        IncrEvictStats slide;
        const Status st = miner_.AppendBatch(op.batch, &astats, &slide);
        if (!st.ok()) {
          DMC_LOG(Warning) << "serve ingest: AppendBatch failed, batch "
                           << "dropped: " << st;
          // The batch was already acked at enqueue time, so the loss is
          // surfaced through its own kStats counter — clients watching
          // batches_dropped can detect that acked data never landed.
          {
            MutexLock lock(mu_);
            ++counters_.batches_dropped;
          }
          Count("dmc.serve.ingest_errors");
          continue;
        }
        {
          MutexLock lock(mu_);
          ++counters_.batches_ingested;
          counters_.rows_ingested += op.batch.num_rows();
          counters_.rows_mined = miner_.num_rows();
          if (slide.rows_evicted > 0) {
            // The window auto-slide is an eviction too; fold it into
            // the same counters an explicit kEvict feeds.
            ++counters_.batches_evicted;
            counters_.rows_evicted += slide.rows_evicted;
          }
        }
        Count("dmc.serve.batches_ingested");
      }

      if (fail::Enabled() &&
          !fail::InjectStatus("serve.publish").ok()) {
        // Injected publish failure: the snapshot stays stale for one
        // batch; the rules are still in the miner and ride the next
        // publish.
        {
          MutexLock lock(mu_);
          ++counters_.io_errors;
        }
        Count("dmc.serve.publish_errors");
        continue;
      }
      {
        ScopedSpan publish_span(options_.trace, "serve/publish");
        index_.Publish(miner_.rules());
      }
      {
        MutexLock lock(mu_);
        ++counters_.snapshots_published;
      }
      Count("dmc.serve.snapshots_published");
    }

    if (quit) {
      MutexLock lock(mu_);
      if (pending_.empty()) break;
    }
  }
}

}  // namespace dmc
