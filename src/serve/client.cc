#include "serve/client.h"

#include <cstring>
#include <utility>

#include "serve/net_socket.h"

namespace dmc {
namespace serve {

RuleClient::~RuleClient() { Close(); }

RuleClient::RuleClient(RuleClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

RuleClient& RuleClient::operator=(RuleClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Status RuleClient::Connect(const std::string& address, uint16_t port,
                           double timeout_seconds) {
  Close();
  DMC_ASSIGN_OR_RETURN(fd_, net::ConnectTcp(address, port));
  const Status st = net::SetIoTimeout(fd_, timeout_seconds);
  if (!st.ok()) Close();
  return st;
}

void RuleClient::Close() {
  net::CloseFd(fd_);
  fd_ = -1;
}

Status RuleClient::SendRequest(const std::string& frame) {
  if (fd_ < 0) return FailedPreconditionError("client not connected");
  return net::SendAll(fd_, frame.data(), frame.size());
}

StatusOr<Reply> RuleClient::ReadReply() {
  if (fd_ < 0) return FailedPreconditionError("client not connected");
  char len_buf[sizeof(uint32_t)];
  DMC_RETURN_IF_ERROR(net::RecvAll(fd_, len_buf, sizeof(len_buf)));
  uint32_t len = 0;
  std::memcpy(&len, len_buf, sizeof(len));
  if (len < kMinFramePayloadBytes || len > kMaxFramePayloadBytes) {
    return InvalidArgumentError("protocol: reply frame length " +
                                std::to_string(len) + " out of bounds");
  }
  std::string payload(len, '\0');
  DMC_RETURN_IF_ERROR(net::RecvAll(fd_, payload.data(), payload.size()));
  DMC_ASSIGN_OR_RETURN(Reply reply, DecodeReplyPayload(payload));
  if (!reply.status.ok()) return reply.status;
  return reply;
}

StatusOr<Reply> RuleClient::RoundTrip(const std::string& frame) {
  DMC_RETURN_IF_ERROR(SendRequest(frame));
  return ReadReply();
}

StatusOr<Reply> RuleClient::QueryByAntecedent(ColumnId lhs) {
  return RoundTrip(EncodeQueryRequest(Op::kQueryByAntecedent, lhs));
}

StatusOr<Reply> RuleClient::QueryByConsequent(ColumnId rhs) {
  return RoundTrip(EncodeQueryRequest(Op::kQueryByConsequent, rhs));
}

StatusOr<Reply> RuleClient::TopK(uint32_t k) {
  return RoundTrip(EncodeQueryRequest(Op::kTopK, k));
}

StatusOr<ServeStats> RuleClient::Stats() {
  DMC_ASSIGN_OR_RETURN(Reply reply, RoundTrip(EncodeStatsRequest()));
  if (reply.op != Op::kStats) {
    return InvalidArgumentError("protocol: expected a stats reply");
  }
  return reply.stats;
}

StatusOr<uint64_t> RuleClient::AppendRows(
    uint32_t num_columns, const std::vector<std::vector<ColumnId>>& rows) {
  DMC_ASSIGN_OR_RETURN(Reply reply,
                       RoundTrip(EncodeAppendRequest(num_columns, rows)));
  if (reply.op != Op::kAppend) {
    return InvalidArgumentError("protocol: expected an append reply");
  }
  return reply.pending_batches;
}

StatusOr<uint64_t> RuleClient::EvictRows(uint64_t rows) {
  DMC_ASSIGN_OR_RETURN(Reply reply, RoundTrip(EncodeEvictRequest(rows)));
  if (reply.op != Op::kEvict) {
    return InvalidArgumentError("protocol: expected an evict reply");
  }
  if (!reply.status.ok()) return reply.status;
  return reply.pending_batches;
}

}  // namespace serve
}  // namespace dmc
