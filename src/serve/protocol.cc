#include "serve/protocol.h"

#include <cstring>

namespace dmc {
namespace serve {

namespace {

template <typename T>
void AppendLE(std::string* out, T value) {
  char buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  out->append(buf, sizeof(T));
}

template <typename T>
bool ReadLE(std::string_view data, size_t* offset, T* value) {
  if (data.size() - *offset < sizeof(T)) return false;
  std::memcpy(value, data.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

Status Malformed(const std::string& what) {
  return InvalidArgumentError("protocol: " + what);
}

/// Wraps a finished payload into a frame by prefixing its length.
std::string Frame(std::string payload) {
  std::string out;
  out.reserve(payload.size() + sizeof(uint32_t));
  AppendLE<uint32_t>(&out, static_cast<uint32_t>(payload.size()));
  out += payload;
  return out;
}

void AppendPayloadHeader(std::string* out, Op op, uint8_t reserved) {
  AppendLE<uint16_t>(out, kProtocolVersion);
  AppendLE<uint8_t>(out, static_cast<uint8_t>(op));
  AppendLE<uint8_t>(out, reserved);
}

/// Shared header check for both directions. On success *op / *reserved
/// hold the decoded fields and *offset points at the body.
Status DecodeHeader(std::string_view payload, size_t* offset, uint8_t* op,
                    uint8_t* reserved) {
  uint16_t version = 0;
  if (!ReadLE(payload, offset, &version) || !ReadLE(payload, offset, op) ||
      !ReadLE(payload, offset, reserved)) {
    return Malformed("payload shorter than the 4-byte header");
  }
  if (version != kProtocolVersion) {
    return Malformed("unsupported version " + std::to_string(version));
  }
  return Status::OK();
}

bool IsRequestOp(uint8_t op) {
  switch (static_cast<Op>(op)) {
    case Op::kQueryByAntecedent:
    case Op::kQueryByConsequent:
    case Op::kTopK:
    case Op::kStats:
    case Op::kAppend:
    case Op::kEvict:
      return true;
    case Op::kError:
      return false;
  }
  return false;
}

}  // namespace

std::string EncodeQueryRequest(Op op, uint32_t arg) {
  std::string payload;
  AppendPayloadHeader(&payload, op, 0);
  AppendLE<uint32_t>(&payload, arg);
  return Frame(std::move(payload));
}

std::string EncodeStatsRequest() {
  std::string payload;
  AppendPayloadHeader(&payload, Op::kStats, 0);
  return Frame(std::move(payload));
}

std::string EncodeAppendRequest(
    uint32_t num_columns, const std::vector<std::vector<ColumnId>>& rows) {
  std::string payload;
  AppendPayloadHeader(&payload, Op::kAppend, 0);
  AppendLE<uint32_t>(&payload, num_columns);
  AppendLE<uint32_t>(&payload, static_cast<uint32_t>(rows.size()));
  for (const std::vector<ColumnId>& row : rows) {
    AppendLE<uint32_t>(&payload, static_cast<uint32_t>(row.size()));
    for (ColumnId c : row) AppendLE<uint32_t>(&payload, c);
  }
  return Frame(std::move(payload));
}

std::string EncodeEvictRequest(uint64_t rows) {
  std::string payload;
  AppendPayloadHeader(&payload, Op::kEvict, 0);
  AppendLE<uint64_t>(&payload, rows);
  return Frame(std::move(payload));
}

StatusOr<Request> DecodeRequestPayload(std::string_view payload) {
  size_t offset = 0;
  uint8_t op = 0;
  uint8_t reserved = 0;
  DMC_RETURN_IF_ERROR(DecodeHeader(payload, &offset, &op, &reserved));
  if (!IsRequestOp(op)) {
    return Malformed("unknown request op " + std::to_string(op));
  }
  if (reserved != 0) {
    return Malformed("nonzero reserved byte on a request");
  }

  Request request;
  request.op = static_cast<Op>(op);
  switch (request.op) {
    case Op::kQueryByAntecedent:
    case Op::kQueryByConsequent:
    case Op::kTopK:
      if (!ReadLE(payload, &offset, &request.arg)) {
        return Malformed("query body truncated");
      }
      break;
    case Op::kStats:
      break;
    case Op::kAppend: {
      uint32_t num_rows = 0;
      if (!ReadLE(payload, &offset, &request.append_num_columns) ||
          !ReadLE(payload, &offset, &num_rows)) {
        return Malformed("append header truncated");
      }
      if (request.append_num_columns > kMaxAppendColumns) {
        return Malformed("append num_columns " +
                         std::to_string(request.append_num_columns) +
                         " exceeds the " +
                         std::to_string(kMaxAppendColumns) + "-column cap");
      }
      if (num_rows > kMaxAppendRows) {
        return Malformed("append batch of " + std::to_string(num_rows) +
                         " rows exceeds the " +
                         std::to_string(kMaxAppendRows) + "-row cap");
      }
      // Each announced row needs at least its 4-byte count, so a hostile
      // num_rows can never make us reserve more than the payload holds.
      if (static_cast<uint64_t>(num_rows) * sizeof(uint32_t) >
          payload.size() - offset) {
        return Malformed("append row count exceeds payload size");
      }
      request.append_rows.resize(num_rows);
      for (uint32_t r = 0; r < num_rows; ++r) {
        uint32_t n = 0;
        if (!ReadLE(payload, &offset, &n)) {
          return Malformed("append row " + std::to_string(r) + " truncated");
        }
        if (static_cast<uint64_t>(n) * sizeof(uint32_t) >
            payload.size() - offset) {
          return Malformed("append row " + std::to_string(r) +
                           " longer than the remaining payload");
        }
        std::vector<ColumnId>& row = request.append_rows[r];
        row.resize(n);
        for (uint32_t i = 0; i < n; ++i) {
          (void)ReadLE(payload, &offset, &row[i]);
          if (row[i] >= request.append_num_columns) {
            return Malformed("append row " + std::to_string(r) +
                             " references column " + std::to_string(row[i]) +
                             " outside num_columns");
          }
          if (i > 0 && row[i] <= row[i - 1]) {
            return Malformed("append row " + std::to_string(r) +
                             " not strictly ascending");
          }
        }
      }
      break;
    }
    case Op::kEvict:
      if (!ReadLE(payload, &offset, &request.evict_rows)) {
        return Malformed("evict body truncated");
      }
      break;
    case Op::kError:
      return Malformed("kError is reply-only");
  }
  if (offset != payload.size()) {
    return Malformed(std::to_string(payload.size() - offset) +
                     " trailing bytes after the request body");
  }
  return request;
}

std::string EncodeRulesReply(Op op, uint64_t generation,
                             const std::vector<ImplicationRule>& rules) {
  std::string payload;
  AppendPayloadHeader(&payload, op, 0);
  AppendLE<uint64_t>(&payload, generation);
  AppendLE<uint32_t>(&payload, static_cast<uint32_t>(rules.size()));
  for (const ImplicationRule& r : rules) {
    AppendLE<uint32_t>(&payload, r.lhs);
    AppendLE<uint32_t>(&payload, r.rhs);
    AppendLE<uint32_t>(&payload, r.lhs_ones);
    AppendLE<uint32_t>(&payload, r.misses);
  }
  return Frame(std::move(payload));
}

std::string EncodeStatsReply(const ServeStats& stats) {
  std::string payload;
  AppendPayloadHeader(&payload, Op::kStats, 0);
  AppendLE<uint64_t>(&payload, stats.generation);
  AppendLE<uint64_t>(&payload, stats.num_rules);
  AppendLE<uint64_t>(&payload, stats.rows_mined);
  AppendLE<uint64_t>(&payload, stats.batches_ingested);
  AppendLE<uint64_t>(&payload, stats.rows_ingested);
  AppendLE<uint64_t>(&payload, stats.pending_batches);
  AppendLE<uint64_t>(&payload, stats.snapshots_published);
  AppendLE<uint64_t>(&payload, stats.requests_served);
  AppendLE<uint64_t>(&payload, stats.connections_accepted);
  AppendLE<uint64_t>(&payload, stats.connections_active);
  AppendLE<uint64_t>(&payload, stats.protocol_errors);
  AppendLE<uint64_t>(&payload, stats.io_errors);
  AppendLE<uint64_t>(&payload, stats.batches_dropped);
  AppendLE<uint64_t>(&payload, stats.batches_evicted);
  AppendLE<uint64_t>(&payload, stats.rows_evicted);
  AppendLE<uint64_t>(&payload, stats.evicts_dropped);
  return Frame(std::move(payload));
}

std::string EncodeAppendReply(uint64_t pending_batches) {
  std::string payload;
  AppendPayloadHeader(&payload, Op::kAppend, 0);
  AppendLE<uint64_t>(&payload, pending_batches);
  return Frame(std::move(payload));
}

std::string EncodeEvictReply(uint64_t pending_batches) {
  std::string payload;
  AppendPayloadHeader(&payload, Op::kEvict, 0);
  AppendLE<uint64_t>(&payload, pending_batches);
  return Frame(std::move(payload));
}

std::string EncodeErrorReply(Op op, const Status& status) {
  std::string payload;
  AppendPayloadHeader(&payload, op, static_cast<uint8_t>(status.code()));
  const std::string& message = status.message();
  AppendLE<uint32_t>(&payload, static_cast<uint32_t>(message.size()));
  payload += message;
  return Frame(std::move(payload));
}

StatusOr<Reply> DecodeReplyPayload(std::string_view payload) {
  size_t offset = 0;
  uint8_t op = 0;
  uint8_t code = 0;
  DMC_RETURN_IF_ERROR(DecodeHeader(payload, &offset, &op, &code));
  if (!IsRequestOp(op) && static_cast<Op>(op) != Op::kError) {
    return Malformed("unknown reply op " + std::to_string(op));
  }

  Reply reply;
  reply.op = static_cast<Op>(op);
  if (code != 0) {
    if (code > static_cast<uint8_t>(StatusCode::kDataLoss)) {
      return Malformed("unknown status code " + std::to_string(code));
    }
    uint32_t msg_len = 0;
    if (!ReadLE(payload, &offset, &msg_len) ||
        msg_len != payload.size() - offset) {
      return Malformed("error reply message truncated");
    }
    reply.status = Status(static_cast<StatusCode>(code),
                          std::string(payload.substr(offset, msg_len)));
    return reply;
  }

  switch (reply.op) {
    case Op::kQueryByAntecedent:
    case Op::kQueryByConsequent:
    case Op::kTopK: {
      uint32_t count = 0;
      if (!ReadLE(payload, &offset, &reply.generation) ||
          !ReadLE(payload, &offset, &count)) {
        return Malformed("rules reply header truncated");
      }
      if (static_cast<uint64_t>(count) * 4 * sizeof(uint32_t) !=
          payload.size() - offset) {
        return Malformed("rules reply count does not match payload size");
      }
      reply.rules.resize(count);
      for (uint32_t i = 0; i < count; ++i) {
        ImplicationRule& r = reply.rules[i];
        (void)ReadLE(payload, &offset, &r.lhs);
        (void)ReadLE(payload, &offset, &r.rhs);
        (void)ReadLE(payload, &offset, &r.lhs_ones);
        (void)ReadLE(payload, &offset, &r.misses);
      }
      return reply;
    }
    case Op::kStats: {
      ServeStats& s = reply.stats;
      uint64_t* const fields[] = {
          &s.generation,       &s.num_rules,          &s.rows_mined,
          &s.batches_ingested, &s.rows_ingested,      &s.pending_batches,
          &s.snapshots_published, &s.requests_served,
          &s.connections_accepted, &s.connections_active,
          &s.protocol_errors,  &s.io_errors,
          &s.batches_dropped,  &s.batches_evicted,
          &s.rows_evicted,     &s.evicts_dropped};
      for (uint64_t* field : fields) {
        if (!ReadLE(payload, &offset, field)) {
          return Malformed("stats reply truncated");
        }
      }
      if (offset != payload.size()) {
        return Malformed("trailing bytes after the stats reply");
      }
      reply.generation = s.generation;
      return reply;
    }
    case Op::kAppend:
    case Op::kEvict:
      if (!ReadLE(payload, &offset, &reply.pending_batches) ||
          offset != payload.size()) {
        return Malformed("append reply truncated");
      }
      return reply;
    case Op::kError:
      return Malformed("kError reply with OK status");
  }
  return Malformed("unreachable reply op");
}

FrameBuffer::Poll FrameBuffer::Next(std::string* payload) {
  // Reclaim consumed bytes once they dominate the buffer, so a
  // long-lived pipelining connection cannot grow the buffer unboundedly.
  if (consumed_ > 0 && consumed_ * 2 >= buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  const size_t available = buffer_.size() - consumed_;
  if (available < sizeof(uint32_t)) return Poll::kNeedMore;
  uint32_t len = 0;
  std::memcpy(&len, buffer_.data() + consumed_, sizeof(uint32_t));
  if (len < kMinFramePayloadBytes || len > max_payload_bytes_) {
    return Poll::kBadFrame;
  }
  if (available - sizeof(uint32_t) < len) return Poll::kNeedMore;
  payload->assign(buffer_, consumed_ + sizeof(uint32_t), len);
  consumed_ += sizeof(uint32_t) + len;
  return Poll::kFrame;
}

}  // namespace serve
}  // namespace dmc
