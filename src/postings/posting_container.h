// Hybrid compressed posting container — the single representation for
// "sorted set of row ids" shared by the matrix layer, the miss-counter
// accounting model, the incremental miner's column postings, and the
// bitmap-tail phases of the batch scans.
//
// Layout follows the Roaring idea: the id space is cut into 64 Ki-wide
// chunks (id >> 16 selects the chunk) and each chunk independently picks
// the cheapest of three physical formats for its 16-bit low halves:
//
//   - kArray:  sorted std::vector<uint16_t> of ids        (2 bytes/id)
//   - kBitmap: 1024 packed uint64 words                   (8192 bytes)
//   - kRun:    sorted (start, last) uint16 pairs          (4 bytes/run)
//
// A chunk is appended to in array form, upgrades itself to a bitmap once
// the array would cost more (> 4096 ids), and is "sealed" into its
// globally cheapest format the moment a later chunk is started (or on an
// explicit Optimize() call). This turns the paper's global §4.3 rule —
// "switch the whole counter table to bitmaps once the byte budget is
// hit" — into a local, per-64Ki-chunk decision: dense regions become
// bitmaps, sparse regions stay arrays, and constant regions collapse to
// runs, with no global mode flag and no cliff.
//
// Logical vs physical bytes: MemoryBytes() reports real heap usage
// (vector capacities included); LogicalBytes() reports the cost model
// Σ_chunks (header + bytes of the chosen format), which is what the
// mining engines charge to MemoryTracker. BitmapCostBytes(universe) is
// the model's bound for holding `universe` ids as packed bitmap chunks —
// the miss-counter table uses it to cap each candidate list's charge
// (a list can never cost more than its bitmap form, which is exactly
// the §4.3 switch bound made per-list).
//
// Ids must be appended strictly ascending; every query treats the
// container as an immutable sorted set.

#ifndef DMC_POSTINGS_POSTING_CONTAINER_H_
#define DMC_POSTINGS_POSTING_CONTAINER_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace dmc {

enum class PostingChunkFormat : uint8_t { kArray = 0, kBitmap = 1, kRun = 2 };

class PostingContainer {
 public:
  static constexpr uint32_t kChunkShift = 16;
  static constexpr uint32_t kChunkSpan = 1u << kChunkShift;
  static constexpr uint32_t kBitmapWords = kChunkSpan / 64;  // 1024
  /// Array chunks upgrade to bitmaps past this many ids (2 bytes/id vs a
  /// fixed 8192-byte bitmap: the break-even point).
  static constexpr uint32_t kArrayMaxIds = kChunkSpan / 16;  // 4096
  /// Logical per-chunk bookkeeping charge (key, format, cardinality).
  static constexpr size_t kChunkHeaderBytes = 16;

  /// Cost-model bytes for holding `universe` consecutive ids' worth of
  /// bitmap chunks: the per-list §4.3 switch bound.
  static constexpr size_t BitmapCostBytes(uint64_t universe) {
    return kChunkHeaderBytes + (universe + 7) / 8;
  }

  PostingContainer() = default;

  /// Builds a sealed container from strictly-ascending ids.
  static PostingContainer FromSorted(std::span<const uint32_t> ids);

  /// Appends one id; must be strictly greater than every id present.
  void Append(uint32_t id);
  /// Appends a strictly-ascending batch (all greater than existing ids).
  void AppendSorted(std::span<const uint32_t> ids);
  /// Re-seals every chunk into its cheapest format. Idempotent.
  void Optimize();
  void Clear();

  /// Drops every id < bound and renumbers the survivors down by `bound`
  /// (id -> id - bound) — the sliding window's prefix trim. The
  /// container is rebuilt by appending the shifted survivors into a
  /// fresh instance, so its physical layout (chunk formats, vector
  /// capacities, MemoryBytes) is identical to a container that only
  /// ever held the surviving window.
  void EvictBelowAndShift(uint32_t bound);

  uint64_t cardinality() const { return cardinality_; }
  bool empty() const { return cardinality_ == 0; }
  bool Contains(uint32_t id) const;
  /// k-th smallest id, 0-based. Precondition: k < cardinality().
  uint32_t Select(uint64_t k) const;
  /// |{x ∈ this : x < bound}| — the index the sliding window's evicted
  /// prefix ends at. O(chunks below bound).
  uint64_t Rank(uint32_t bound) const;

  std::vector<uint32_t> ToVector() const;

  /// Calls fn(uint32_t id) for every id in ascending order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Chunk& c : chunks_) ForEachInChunk(c, fn);
  }

  /// |this ∩ b|.
  uint64_t IntersectCount(const PostingContainer& b) const;
  /// |{x ∈ this ∩ b : x >= lo}|.
  uint64_t IntersectCountFrom(uint32_t lo, const PostingContainer& b) const;
  /// |{x ∈ this ∩ b : x < hi}| — the evicted-prefix intersection the
  /// windowed miner subtracts from held counts. O(chunks below hi).
  uint64_t IntersectCountBelow(uint32_t hi, const PostingContainer& b) const;
  /// |this \ b| = cardinality() - |this ∩ b|.
  uint64_t AndNotCount(const PostingContainer& b) const {
    return cardinality_ - IntersectCount(b);
  }
  /// |suffix(this, skip_a) ∩ suffix(b, skip_b)| where suffix(X, k) drops
  /// the k smallest ids of X — the incremental miner's boundary
  /// semantics (k is an earlier ones() value).
  uint64_t SuffixIntersectCount(uint64_t skip_a, const PostingContainer& b,
                                uint64_t skip_b) const;

  /// Materialized set operations (sealed results).
  PostingContainer Intersect(const PostingContainer& b) const;
  PostingContainer Union(const PostingContainer& b) const;

  /// Content hash: equal sets hash equal regardless of chunk formats.
  uint64_t Hash() const;
  /// Set equality, format-independent.
  bool operator==(const PostingContainer& b) const;
  bool operator!=(const PostingContainer& b) const { return !(*this == b); }

  /// Physical heap bytes (vector capacities + chunk headers).
  size_t MemoryBytes() const;
  /// Cost-model bytes: Σ chunks (kChunkHeaderBytes + data bytes of the
  /// chosen format). This is what mining engines charge to trackers.
  size_t LogicalBytes() const;

  struct FormatCounts {
    size_t array = 0;
    size_t bitmap = 0;
    size_t run = 0;
  };
  FormatCounts ChunkFormats() const;

 private:
  struct Chunk {
    uint32_t key = 0;  // id >> kChunkShift
    PostingChunkFormat format = PostingChunkFormat::kArray;
    uint32_t card = 0;
    std::vector<uint16_t> slots;  // kArray: ids; kRun: (start, last) pairs
    std::vector<uint64_t> words;  // kBitmap: kBitmapWords packed words
  };

  static void SealChunk(Chunk* c);
  static void ArrayToBitmap(Chunk* c);
  static bool ChunkContains(const Chunk& c, uint16_t lo);
  static uint64_t ChunkCountBelow(const Chunk& c, uint16_t lo);
  static uint64_t ChunkIntersect(const Chunk& a, const Chunk& b);
  static uint64_t ChunkIntersectFrom(const Chunk& a, const Chunk& b,
                                     uint16_t lo);
  static void ChunkWords(const Chunk& c, uint64_t* words);  // decode to bitmap
  static size_t ChunkDataBytes(const Chunk& c);

  template <typename Fn>
  static void ForEachInChunk(const Chunk& c, Fn&& fn) {
    const uint32_t base = c.key << kChunkShift;
    switch (c.format) {
      case PostingChunkFormat::kArray:
        for (const uint16_t v : c.slots) fn(base | v);
        break;
      case PostingChunkFormat::kBitmap:
        for (uint32_t w = 0; w < kBitmapWords; ++w) {
          uint64_t word = c.words[w];
          while (word != 0) {
            const int bit = __builtin_ctzll(word);
            fn(base | (w * 64 + static_cast<uint32_t>(bit)));
            word &= word - 1;
          }
        }
        break;
      case PostingChunkFormat::kRun:
        for (size_t i = 0; i + 1 < c.slots.size(); i += 2) {
          for (uint32_t v = c.slots[i]; v <= c.slots[i + 1]; ++v) {
            fn(base | v);
          }
        }
        break;
    }
  }

  /// From a set of decoded words, appends a sealed chunk (no-op when all
  /// words are zero).
  void AppendChunkFromWords(uint32_t key, const uint64_t* words);

  std::vector<Chunk> chunks_;  // ascending by key
  uint64_t cardinality_ = 0;
};

}  // namespace dmc

#endif  // DMC_POSTINGS_POSTING_CONTAINER_H_
