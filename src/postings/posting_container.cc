#include "postings/posting_container.h"

#include <algorithm>
#include <cstring>

#include "util/logging.h"
#include "util/random.h"

#if defined(__x86_64__)
#define DMC_POSTINGS_X86 1
#include <immintrin.h>
#endif

namespace dmc {
namespace {

constexpr uint32_t kLowMask = PostingContainer::kChunkSpan - 1;
constexpr uint32_t kWords = PostingContainer::kBitmapWords;

uint64_t AndPopcountPortable(const uint64_t* a, const uint64_t* b, size_t n) {
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += static_cast<uint64_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return total;
}

#ifdef DMC_POSTINGS_X86
__attribute__((target("avx2,popcnt"))) uint64_t AndPopcountAvx2(
    const uint64_t* a, const uint64_t* b, size_t n) {
  uint64_t total = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i x = _mm256_and_si256(va, vb);
    total += static_cast<uint64_t>(
        __builtin_popcountll(static_cast<uint64_t>(_mm256_extract_epi64(x, 0))) +
        __builtin_popcountll(static_cast<uint64_t>(_mm256_extract_epi64(x, 1))) +
        __builtin_popcountll(static_cast<uint64_t>(_mm256_extract_epi64(x, 2))) +
        __builtin_popcountll(static_cast<uint64_t>(_mm256_extract_epi64(x, 3))));
  }
  for (; i < n; ++i) {
    total += static_cast<uint64_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return total;
}

bool DetectAvx2Popcnt() {
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("popcnt");
}
#endif  // DMC_POSTINGS_X86

uint64_t AndPopcount(const uint64_t* a, const uint64_t* b, size_t n) {
#ifdef DMC_POSTINGS_X86
  static const bool kHaveAvx2 = DetectAvx2Popcnt();
  if (kHaveAvx2) return AndPopcountAvx2(a, b, n);
#endif
  return AndPopcountPortable(a, b, n);
}

/// Sets bits [s, l] (inclusive) in a kWords-long word array.
void FillRange(uint64_t* words, uint32_t s, uint32_t l) {
  const uint32_t ws = s / 64;
  const uint32_t we = l / 64;
  const uint64_t first = ~0ULL << (s % 64);
  const uint64_t last =
      (l % 64 == 63) ? ~0ULL : ((1ULL << ((l % 64) + 1)) - 1);
  if (ws == we) {
    words[ws] |= first & last;
    return;
  }
  words[ws] |= first;
  for (uint32_t w = ws + 1; w < we; ++w) words[w] = ~0ULL;
  words[we] |= last;
}

/// popcount of bits [s, l] (inclusive) in a kWords-long word array.
uint64_t CountBitsInRange(const uint64_t* words, uint32_t s, uint32_t l) {
  const uint32_t ws = s / 64;
  const uint32_t we = l / 64;
  const uint64_t first = ~0ULL << (s % 64);
  const uint64_t last =
      (l % 64 == 63) ? ~0ULL : ((1ULL << ((l % 64) + 1)) - 1);
  if (ws == we) {
    return static_cast<uint64_t>(__builtin_popcountll(words[ws] & first & last));
  }
  uint64_t n = static_cast<uint64_t>(__builtin_popcountll(words[ws] & first));
  for (uint32_t w = ws + 1; w < we; ++w) {
    n += static_cast<uint64_t>(__builtin_popcountll(words[w]));
  }
  return n + static_cast<uint64_t>(__builtin_popcountll(words[we] & last));
}

uint32_t CountRunsArray(const std::vector<uint16_t>& slots) {
  uint32_t runs = 0;
  uint32_t prev = 0;
  bool have_prev = false;
  for (const uint16_t v : slots) {
    if (!have_prev || v != prev + 1) ++runs;
    prev = v;
    have_prev = true;
  }
  return runs;
}

uint32_t CountRunsWords(const uint64_t* words) {
  // A run starts at every set bit whose predecessor bit is clear.
  uint32_t runs = 0;
  uint64_t carry = 0;  // MSB of the previous word
  for (uint32_t w = 0; w < kWords; ++w) {
    const uint64_t starts = words[w] & ~((words[w] << 1) | carry);
    runs += static_cast<uint32_t>(__builtin_popcountll(starts));
    carry = words[w] >> 63;
  }
  return runs;
}

uint64_t IntersectSortedU16(const std::vector<uint16_t>& small,
                            const std::vector<uint16_t>& big) {
  // Caller guarantees small.size() <= big.size(). Gallop (binary probe
  // per element) once the size skew pays for the log factor; otherwise
  // a plain two-pointer walk.
  uint64_t n = 0;
  if (small.size() * 16 < big.size()) {
    for (const uint16_t v : small) {
      n += std::binary_search(big.begin(), big.end(), v) ? 1 : 0;
    }
    return n;
  }
  size_t i = 0;
  size_t j = 0;
  while (i < small.size() && j < big.size()) {
    const uint16_t a = small[i];
    const uint16_t b = big[j];
    n += (a == b) ? 1 : 0;
    i += (a <= b) ? 1 : 0;
    j += (b <= a) ? 1 : 0;
  }
  return n;
}

}  // namespace

PostingContainer PostingContainer::FromSorted(std::span<const uint32_t> ids) {
  PostingContainer p;
  p.AppendSorted(ids);
  p.Optimize();
  return p;
}

void PostingContainer::Append(uint32_t id) {
  const uint32_t key = id >> kChunkShift;
  const uint16_t lo = static_cast<uint16_t>(id & kLowMask);
  if (chunks_.empty() || chunks_.back().key != key) {
    DMC_CHECK(chunks_.empty() || chunks_.back().key < key);
    if (!chunks_.empty()) SealChunk(&chunks_.back());
    chunks_.emplace_back();
    chunks_.back().key = key;
  }
  Chunk& c = chunks_.back();
  switch (c.format) {
    case PostingChunkFormat::kArray:
      DMC_CHECK(c.slots.empty() || lo > c.slots.back());
      c.slots.push_back(lo);
      ++c.card;
      if (c.card > kArrayMaxIds) ArrayToBitmap(&c);
      break;
    case PostingChunkFormat::kBitmap: {
      uint64_t& word = c.words[lo / 64];
      const uint64_t bit = 1ULL << (lo % 64);
      DMC_CHECK((word & bit) == 0);
      word |= bit;
      ++c.card;
      break;
    }
    case PostingChunkFormat::kRun: {
      const uint16_t last = c.slots.back();
      DMC_CHECK(lo > last);
      if (lo == last + 1) {
        c.slots.back() = lo;  // extend the final run
      } else {
        c.slots.push_back(lo);
        c.slots.push_back(lo);
      }
      ++c.card;
      break;
    }
  }
  ++cardinality_;
}

void PostingContainer::AppendSorted(std::span<const uint32_t> ids) {
  for (const uint32_t id : ids) Append(id);
}

void PostingContainer::Optimize() {
  for (Chunk& c : chunks_) SealChunk(&c);
}

void PostingContainer::Clear() {
  chunks_.clear();
  cardinality_ = 0;
}

void PostingContainer::ArrayToBitmap(Chunk* c) {
  std::vector<uint64_t> words(kWords, 0);
  for (const uint16_t v : c->slots) words[v / 64] |= 1ULL << (v % 64);
  c->words = std::move(words);
  c->slots.clear();
  c->slots.shrink_to_fit();
  c->format = PostingChunkFormat::kBitmap;
}

void PostingContainer::ChunkWords(const Chunk& c, uint64_t* words) {
  switch (c.format) {
    case PostingChunkFormat::kArray:
      for (const uint16_t v : c.slots) words[v / 64] |= 1ULL << (v % 64);
      break;
    case PostingChunkFormat::kBitmap:
      std::memcpy(words, c.words.data(), kWords * sizeof(uint64_t));
      break;
    case PostingChunkFormat::kRun:
      for (size_t i = 0; i + 1 < c.slots.size(); i += 2) {
        FillRange(words, c.slots[i], c.slots[i + 1]);
      }
      break;
  }
}

void PostingContainer::SealChunk(Chunk* c) {
  if (c->card == 0) return;
  uint32_t runs = 0;
  switch (c->format) {
    case PostingChunkFormat::kArray:
      runs = CountRunsArray(c->slots);
      break;
    case PostingChunkFormat::kBitmap:
      runs = CountRunsWords(c->words.data());
      break;
    case PostingChunkFormat::kRun:
      runs = static_cast<uint32_t>(c->slots.size() / 2);
      break;
  }
  const size_t array_cost = 2u * c->card;
  const size_t run_cost = 4u * runs;
  const size_t bitmap_cost = kWords * sizeof(uint64_t);
  PostingChunkFormat target;
  if (array_cost <= run_cost && array_cost <= bitmap_cost) {
    target = PostingChunkFormat::kArray;
  } else if (run_cost <= bitmap_cost) {
    target = PostingChunkFormat::kRun;
  } else {
    target = PostingChunkFormat::kBitmap;
  }
  if (target == c->format) {
    c->slots.shrink_to_fit();
    return;
  }
  // Decode to a scratch bitmap, then re-encode: sealing runs once per
  // chunk lifetime, so the O(chunk-span) round trip is irrelevant.
  std::vector<uint64_t> words(kWords, 0);
  ChunkWords(*c, words.data());
  c->slots.clear();
  c->words.clear();
  switch (target) {
    case PostingChunkFormat::kArray:
      c->slots.reserve(c->card);
      for (uint32_t w = 0; w < kWords; ++w) {
        uint64_t word = words[w];
        while (word != 0) {
          const int bit = __builtin_ctzll(word);
          c->slots.push_back(static_cast<uint16_t>(w * 64 + bit));
          word &= word - 1;
        }
      }
      break;
    case PostingChunkFormat::kRun: {
      c->slots.reserve(2 * runs);
      int32_t run_start = -1;
      int32_t prev = -2;
      for (uint32_t w = 0; w < kWords; ++w) {
        uint64_t word = words[w];
        while (word != 0) {
          const int32_t v = static_cast<int32_t>(w * 64) + __builtin_ctzll(word);
          if (v != prev + 1) {
            if (run_start >= 0) {
              c->slots.push_back(static_cast<uint16_t>(run_start));
              c->slots.push_back(static_cast<uint16_t>(prev));
            }
            run_start = v;
          }
          prev = v;
          word &= word - 1;
        }
      }
      if (run_start >= 0) {
        c->slots.push_back(static_cast<uint16_t>(run_start));
        c->slots.push_back(static_cast<uint16_t>(prev));
      }
      break;
    }
    case PostingChunkFormat::kBitmap:
      c->words = std::move(words);
      break;
  }
  c->slots.shrink_to_fit();
  c->format = target;
}

bool PostingContainer::ChunkContains(const Chunk& c, uint16_t lo) {
  switch (c.format) {
    case PostingChunkFormat::kArray:
      return std::binary_search(c.slots.begin(), c.slots.end(), lo);
    case PostingChunkFormat::kBitmap:
      return (c.words[lo / 64] >> (lo % 64)) & 1;
    case PostingChunkFormat::kRun: {
      // Last run whose start is <= lo, via binary search on pair index.
      size_t nruns = c.slots.size() / 2;
      size_t first = 0;
      while (nruns > 0) {
        const size_t half = nruns / 2;
        const size_t mid = first + half;
        if (c.slots[2 * mid] <= lo) {
          first = mid + 1;
          nruns -= half + 1;
        } else {
          nruns = half;
        }
      }
      if (first == 0) return false;
      return lo <= c.slots[2 * (first - 1) + 1];
    }
  }
  return false;
}

uint64_t PostingContainer::ChunkCountBelow(const Chunk& c, uint16_t lo) {
  if (lo == 0) return 0;
  switch (c.format) {
    case PostingChunkFormat::kArray:
      return static_cast<uint64_t>(
          std::lower_bound(c.slots.begin(), c.slots.end(), lo) -
          c.slots.begin());
    case PostingChunkFormat::kBitmap:
      return CountBitsInRange(c.words.data(), 0,
                              static_cast<uint32_t>(lo) - 1);
    case PostingChunkFormat::kRun: {
      uint64_t n = 0;
      for (size_t i = 0; i + 1 < c.slots.size(); i += 2) {
        if (c.slots[i] >= lo) break;
        const uint16_t last = std::min<uint16_t>(
            c.slots[i + 1], static_cast<uint16_t>(lo - 1));
        n += static_cast<uint64_t>(last) - c.slots[i] + 1;
      }
      return n;
    }
  }
  return 0;
}

uint64_t PostingContainer::Rank(uint32_t bound) const {
  const uint32_t bound_key = bound >> kChunkShift;
  const uint16_t bound_low = static_cast<uint16_t>(bound & kLowMask);
  uint64_t n = 0;
  for (const Chunk& c : chunks_) {
    if (c.key < bound_key) {
      n += c.card;
      continue;
    }
    if (c.key == bound_key) n += ChunkCountBelow(c, bound_low);
    break;
  }
  return n;
}

bool PostingContainer::Contains(uint32_t id) const {
  const uint32_t key = id >> kChunkShift;
  const auto it = std::partition_point(
      chunks_.begin(), chunks_.end(),
      [key](const Chunk& c) { return c.key < key; });
  if (it == chunks_.end() || it->key != key) return false;
  return ChunkContains(*it, static_cast<uint16_t>(id & kLowMask));
}

uint32_t PostingContainer::Select(uint64_t k) const {
  DMC_CHECK(k < cardinality_);
  for (const Chunk& c : chunks_) {
    if (k >= c.card) {
      k -= c.card;
      continue;
    }
    const uint32_t base = c.key << kChunkShift;
    switch (c.format) {
      case PostingChunkFormat::kArray:
        return base | c.slots[k];
      case PostingChunkFormat::kBitmap:
        for (uint32_t w = 0; w < kWords; ++w) {
          const uint32_t pc =
              static_cast<uint32_t>(__builtin_popcountll(c.words[w]));
          if (k >= pc) {
            k -= pc;
            continue;
          }
          uint64_t word = c.words[w];
          for (; k > 0; --k) word &= word - 1;
          return base | (w * 64 + static_cast<uint32_t>(__builtin_ctzll(word)));
        }
        break;
      case PostingChunkFormat::kRun:
        for (size_t i = 0; i + 1 < c.slots.size(); i += 2) {
          const uint64_t len =
              static_cast<uint64_t>(c.slots[i + 1]) - c.slots[i] + 1;
          if (k < len) return base | (c.slots[i] + static_cast<uint32_t>(k));
          k -= len;
        }
        break;
    }
    break;
  }
  DMC_CHECK(false);  // corrupt cardinality
  return 0;
}

uint64_t PostingContainer::ChunkIntersect(const Chunk& a, const Chunk& b) {
  // Normalize so a.format <= b.format (enum order array < bitmap < run).
  const Chunk& x = a.format <= b.format ? a : b;
  const Chunk& y = a.format <= b.format ? b : a;
  switch (x.format) {
    case PostingChunkFormat::kArray:
      switch (y.format) {
        case PostingChunkFormat::kArray:
          return x.slots.size() <= y.slots.size()
                     ? IntersectSortedU16(x.slots, y.slots)
                     : IntersectSortedU16(y.slots, x.slots);
        case PostingChunkFormat::kBitmap: {
          uint64_t n = 0;
          for (const uint16_t v : x.slots) {
            n += (y.words[v / 64] >> (v % 64)) & 1;
          }
          return n;
        }
        case PostingChunkFormat::kRun: {
          uint64_t n = 0;
          size_t ri = 0;
          const size_t nr = y.slots.size();
          for (const uint16_t v : x.slots) {
            while (ri + 1 < nr && y.slots[ri + 1] < v) ri += 2;
            if (ri + 1 >= nr) break;
            n += (y.slots[ri] <= v) ? 1 : 0;
          }
          return n;
        }
      }
      break;
    case PostingChunkFormat::kBitmap:
      switch (y.format) {
        case PostingChunkFormat::kBitmap:
          return AndPopcount(x.words.data(), y.words.data(), kWords);
        case PostingChunkFormat::kRun: {
          uint64_t n = 0;
          for (size_t i = 0; i + 1 < y.slots.size(); i += 2) {
            n += CountBitsInRange(x.words.data(), y.slots[i], y.slots[i + 1]);
          }
          return n;
        }
        default:
          break;
      }
      break;
    case PostingChunkFormat::kRun: {
      // run × run: sum of pairwise overlap lengths.
      uint64_t n = 0;
      size_t i = 0;
      size_t j = 0;
      while (i + 1 < x.slots.size() && j + 1 < y.slots.size()) {
        const int32_t s = std::max<int32_t>(x.slots[i], y.slots[j]);
        const int32_t e = std::min<int32_t>(x.slots[i + 1], y.slots[j + 1]);
        if (e >= s) n += static_cast<uint64_t>(e - s + 1);
        if (x.slots[i + 1] <= y.slots[j + 1]) {
          i += 2;
        } else {
          j += 2;
        }
      }
      return n;
    }
  }
  return 0;
}

uint64_t PostingContainer::ChunkIntersectFrom(const Chunk& a, const Chunk& b,
                                              uint16_t lo) {
  if (a.format == PostingChunkFormat::kBitmap &&
      b.format == PostingChunkFormat::kBitmap) {
    const uint32_t w0 = lo / 64;
    const uint64_t head =
        (a.words[w0] & b.words[w0]) & (~0ULL << (lo % 64));
    return static_cast<uint64_t>(__builtin_popcountll(head)) +
           AndPopcount(a.words.data() + w0 + 1, b.words.data() + w0 + 1,
                       kWords - w0 - 1);
  }
  // Partial-chunk trims happen at most once per suffix query: iterate the
  // ids of `a` at/above lo and probe `b`.
  uint64_t n = 0;
  switch (a.format) {
    case PostingChunkFormat::kArray: {
      auto it = std::lower_bound(a.slots.begin(), a.slots.end(), lo);
      for (; it != a.slots.end(); ++it) n += ChunkContains(b, *it) ? 1 : 0;
      break;
    }
    case PostingChunkFormat::kBitmap:
      for (uint32_t w = lo / 64; w < kWords; ++w) {
        uint64_t word = a.words[w];
        if (w == lo / 64) word &= ~0ULL << (lo % 64);
        while (word != 0) {
          const int bit = __builtin_ctzll(word);
          n += ChunkContains(b, static_cast<uint16_t>(w * 64 + bit)) ? 1 : 0;
          word &= word - 1;
        }
      }
      break;
    case PostingChunkFormat::kRun:
      for (size_t i = 0; i + 1 < a.slots.size(); i += 2) {
        if (a.slots[i + 1] < lo) continue;
        const uint16_t s = std::max<uint16_t>(a.slots[i], lo);
        for (uint32_t v = s; v <= a.slots[i + 1]; ++v) {
          n += ChunkContains(b, static_cast<uint16_t>(v)) ? 1 : 0;
        }
      }
      break;
  }
  return n;
}

uint64_t PostingContainer::IntersectCount(const PostingContainer& b) const {
  uint64_t n = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < chunks_.size() && j < b.chunks_.size()) {
    const uint32_t ka = chunks_[i].key;
    const uint32_t kb = b.chunks_[j].key;
    if (ka == kb) {
      n += ChunkIntersect(chunks_[i], b.chunks_[j]);
      ++i;
      ++j;
    } else if (ka < kb) {
      ++i;
    } else {
      ++j;
    }
  }
  return n;
}

uint64_t PostingContainer::IntersectCountFrom(uint32_t lo,
                                              const PostingContainer& b) const {
  const uint32_t lo_key = lo >> kChunkShift;
  const uint16_t lo_low = static_cast<uint16_t>(lo & kLowMask);
  uint64_t n = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < chunks_.size() && j < b.chunks_.size()) {
    const uint32_t ka = chunks_[i].key;
    const uint32_t kb = b.chunks_[j].key;
    if (ka == kb) {
      if (ka > lo_key || (ka == lo_key && lo_low == 0)) {
        n += ChunkIntersect(chunks_[i], b.chunks_[j]);
      } else if (ka == lo_key) {
        n += ChunkIntersectFrom(chunks_[i], b.chunks_[j], lo_low);
      }
      ++i;
      ++j;
    } else if (ka < kb) {
      ++i;
    } else {
      ++j;
    }
  }
  return n;
}

uint64_t PostingContainer::IntersectCountBelow(
    uint32_t hi, const PostingContainer& b) const {
  const uint32_t hi_key = hi >> kChunkShift;
  const uint16_t hi_low = static_cast<uint16_t>(hi & kLowMask);
  uint64_t n = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < chunks_.size() && j < b.chunks_.size()) {
    const uint32_t ka = chunks_[i].key;
    const uint32_t kb = b.chunks_[j].key;
    if (ka > hi_key || kb > hi_key) break;
    if (ka == kb) {
      if (ka < hi_key) {
        n += ChunkIntersect(chunks_[i], b.chunks_[j]);
      } else if (hi_low != 0) {
        // Only the boundary chunk needs a partial count: everything in
        // the chunk minus the suffix at/above hi_low.
        n += ChunkIntersect(chunks_[i], b.chunks_[j]) -
             ChunkIntersectFrom(chunks_[i], b.chunks_[j], hi_low);
      }
      ++i;
      ++j;
    } else if (ka < kb) {
      ++i;
    } else {
      ++j;
    }
  }
  return n;
}

void PostingContainer::EvictBelowAndShift(uint32_t bound) {
  // Rebuild rather than edit in place: a fresh container appended from
  // the shifted survivors reproduces, bit for bit, the layout of a
  // container that never saw the evicted prefix (chunk splits, format
  // upgrades, and vector capacities all depend only on the appended
  // sequence). That is what makes windowed MemoryBytes() byte-identical
  // to a fresh mine of the window contents.
  PostingContainer out;
  ForEach([bound, &out](uint32_t id) {
    if (id >= bound) out.Append(id - bound);
  });
  *this = std::move(out);
}

uint64_t PostingContainer::SuffixIntersectCount(uint64_t skip_a,
                                                const PostingContainer& b,
                                                uint64_t skip_b) const {
  if (skip_a >= cardinality_ || skip_b >= b.cardinality_) return 0;
  // Suffix-by-index equals suffix-by-value on a strictly sorted set: the
  // combined constraint is id >= max of the two suffix heads.
  const uint32_t lo = std::max(Select(skip_a), b.Select(skip_b));
  return IntersectCountFrom(lo, b);
}

void PostingContainer::AppendChunkFromWords(uint32_t key,
                                            const uint64_t* words) {
  uint32_t card = 0;
  for (uint32_t w = 0; w < kWords; ++w) {
    card += static_cast<uint32_t>(__builtin_popcountll(words[w]));
  }
  if (card == 0) return;
  Chunk c;
  c.key = key;
  c.format = PostingChunkFormat::kBitmap;
  c.card = card;
  c.words.assign(words, words + kWords);
  SealChunk(&c);
  DMC_CHECK(chunks_.empty() || chunks_.back().key < key);
  chunks_.push_back(std::move(c));
  cardinality_ += card;
}

PostingContainer PostingContainer::Intersect(const PostingContainer& b) const {
  PostingContainer out;
  std::vector<uint64_t> wa(kWords);
  std::vector<uint64_t> wb(kWords);
  size_t i = 0;
  size_t j = 0;
  while (i < chunks_.size() && j < b.chunks_.size()) {
    const uint32_t ka = chunks_[i].key;
    const uint32_t kb = b.chunks_[j].key;
    if (ka == kb) {
      std::fill(wa.begin(), wa.end(), 0);
      std::fill(wb.begin(), wb.end(), 0);
      ChunkWords(chunks_[i], wa.data());
      ChunkWords(b.chunks_[j], wb.data());
      for (uint32_t w = 0; w < kWords; ++w) wa[w] &= wb[w];
      out.AppendChunkFromWords(ka, wa.data());
      ++i;
      ++j;
    } else if (ka < kb) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

PostingContainer PostingContainer::Union(const PostingContainer& b) const {
  PostingContainer out;
  std::vector<uint64_t> wa(kWords);
  std::vector<uint64_t> wb(kWords);
  size_t i = 0;
  size_t j = 0;
  while (i < chunks_.size() || j < b.chunks_.size()) {
    const bool take_a =
        j >= b.chunks_.size() ||
        (i < chunks_.size() && chunks_[i].key <= b.chunks_[j].key);
    const bool take_b =
        i >= chunks_.size() ||
        (j < b.chunks_.size() && b.chunks_[j].key <= chunks_[i].key);
    std::fill(wa.begin(), wa.end(), 0);
    uint32_t key = 0;
    if (take_a) {
      key = chunks_[i].key;
      ChunkWords(chunks_[i], wa.data());
      ++i;
    }
    if (take_b) {
      key = b.chunks_[j].key;
      std::fill(wb.begin(), wb.end(), 0);
      ChunkWords(b.chunks_[j], wb.data());
      for (uint32_t w = 0; w < kWords; ++w) wa[w] |= wb[w];
      ++j;
    }
    out.AppendChunkFromWords(key, wa.data());
  }
  return out;
}

uint64_t PostingContainer::Hash() const {
  uint64_t h = 0xcbf29ce484222325ULL ^ (cardinality_ * 0x9e3779b97f4a7c15ULL);
  ForEach([&h](uint32_t id) {
    h = (h ^ Mix64(id)) * 0x100000001b3ULL;
  });
  return h;
}

bool PostingContainer::operator==(const PostingContainer& b) const {
  if (cardinality_ != b.cardinality_) return false;
  // Equal-size sets are equal iff the intersection has full size; this
  // keeps equality independent of chunk formats.
  return IntersectCount(b) == cardinality_;
}

std::vector<uint32_t> PostingContainer::ToVector() const {
  std::vector<uint32_t> out;
  out.reserve(cardinality_);
  ForEach([&out](uint32_t id) { out.push_back(id); });
  return out;
}

size_t PostingContainer::MemoryBytes() const {
  size_t bytes = chunks_.capacity() * sizeof(Chunk);
  for (const Chunk& c : chunks_) {
    bytes += c.slots.capacity() * sizeof(uint16_t) +
             c.words.capacity() * sizeof(uint64_t);
  }
  return bytes;
}

size_t PostingContainer::ChunkDataBytes(const Chunk& c) {
  switch (c.format) {
    case PostingChunkFormat::kArray:
      return 2u * c.card;
    case PostingChunkFormat::kBitmap:
      return kWords * sizeof(uint64_t);
    case PostingChunkFormat::kRun:
      return c.slots.size() * sizeof(uint16_t);
  }
  return 0;
}

size_t PostingContainer::LogicalBytes() const {
  size_t bytes = 0;
  for (const Chunk& c : chunks_) bytes += kChunkHeaderBytes + ChunkDataBytes(c);
  return bytes;
}

PostingContainer::FormatCounts PostingContainer::ChunkFormats() const {
  FormatCounts fc;
  for (const Chunk& c : chunks_) {
    switch (c.format) {
      case PostingChunkFormat::kArray:
        ++fc.array;
        break;
      case PostingChunkFormat::kBitmap:
        ++fc.bitmap;
        break;
      case PostingChunkFormat::kRun:
        ++fc.run;
        break;
    }
  }
  return fc;
}

}  // namespace dmc
