// Crash-safe file writes: temp file + fsync + rename.
//
// A reader never observes a partially written output: either the old
// file (or nothing) is at `path`, or the complete new content is. The
// sequence is the classic POSIX recipe — write to `path.tmp.<pid>.<n>`,
// fsync the file, rename(2) over the target, fsync the directory so the
// rename itself is durable.
//
// Every syscall boundary is a failpoint site (atomic_io.open / .write /
// .fsync / .rename), so the fault-injection tests can prove the
// "old-or-new, never torn" contract instead of assuming it.

#ifndef DMC_UTIL_ATOMIC_IO_H_
#define DMC_UTIL_ATOMIC_IO_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace dmc {

/// Streaming writer for one atomic file replacement.
///
///   AtomicFileWriter w;
///   DMC_RETURN_IF_ERROR(w.Open(path));
///   DMC_RETURN_IF_ERROR(w.Write(chunk));   // any number of times
///   DMC_RETURN_IF_ERROR(w.Commit());       // fsync + rename
///
/// If Commit() is never reached (error, early return, destructor), the
/// temp file is unlinked and the target path is untouched.
class AtomicFileWriter {
 public:
  AtomicFileWriter() = default;
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// Creates the temp file next to `path`. Fails if a writer is already
  /// open.
  [[nodiscard]] Status Open(const std::string& path);

  /// Appends `data` to the temp file.
  [[nodiscard]] Status Write(std::string_view data);

  /// fsync + close + rename over the target + directory fsync. On any
  /// failure the temp file is removed and the target is left as it was.
  [[nodiscard]] Status Commit();

  /// Discards the temp file; the target path is untouched. Safe to call
  /// when not open.
  void Abort();

  bool is_open() const { return fd_ >= 0; }
  const std::string& temp_path() const { return temp_path_; }

 private:
  std::string path_;
  std::string temp_path_;
  int fd_ = -1;
};

/// One-shot convenience: atomically replaces `path` with `content`.
[[nodiscard]] Status AtomicWriteFile(const std::string& path,
                                     std::string_view content);

}  // namespace dmc

#endif  // DMC_UTIL_ATOMIC_IO_H_
