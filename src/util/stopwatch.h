// Wall-clock stopwatch used by the mining engines to attribute time to
// phases (pre-scan, 100%-rule phase, DMC-base, DMC-bitmap).

#ifndef DMC_UTIL_STOPWATCH_H_
#define DMC_UTIL_STOPWATCH_H_

#include <chrono>

namespace dmc {

/// Monotonic stopwatch with microsecond resolution. Starts running on
/// construction; Restart() resets the origin.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the origin to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dmc

#endif  // DMC_UTIL_STOPWATCH_H_
