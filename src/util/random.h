// Deterministic pseudo-random number generation.
//
// All generators and randomized algorithms in the library are seeded
// explicitly so every experiment is reproducible bit-for-bit. The engine is
// xoshiro256**, seeded via SplitMix64 (the recommended pairing).

#ifndef DMC_UTIL_RANDOM_H_
#define DMC_UTIL_RANDOM_H_

#include <cstdint>

namespace dmc {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix of `x`; good avalanche, used for hashing.
inline uint64_t Mix64(uint64_t x) {
  uint64_t s = x;
  return SplitMix64(s);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator so it can be
/// used with <random> distributions, though the library's own helpers
/// below are preferred for determinism across standard libraries.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds deterministically from a single 64-bit value.
  explicit Rng(uint64_t seed = 0x8f3c9a1d2b4e5f60ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  uint64_t operator()() { return Next(); }

  /// Next raw 64-bit output.
  uint64_t Next();

  /// Uniform integer in [0, bound). bound must be > 0. Unbiased
  /// (Lemire's method with rejection).
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller (no cached spare; simple and
  /// deterministic).
  double Gaussian();

  /// Geometric: number of failures before the first success with success
  /// probability p in (0,1].
  uint64_t Geometric(double p);

  /// Poisson-distributed value with the given mean (Knuth for small mean,
  /// normal approximation for large).
  uint64_t Poisson(double mean);

 private:
  uint64_t s_[4];
};

}  // namespace dmc

#endif  // DMC_UTIL_RANDOM_H_
