// Clang Thread Safety Analysis annotations + annotated mutex wrappers.
//
// The DMC_* macros expand to Clang's capability attributes when the
// compiler supports them (-Wthread-safety) and to nothing everywhere
// else, so GCC builds see plain C++. The `thread-safety` CMake preset
// builds the whole tree with clang -Wthread-safety -Werror, turning the
// lock discipline documented by these annotations into a compile error
// on every schedule — the static complement to the dynamic TSan suite,
// which can only prove absence of races on exercised schedules.
//
// libstdc++'s std::mutex carries no capability attributes, so the
// analysis cannot see through std::lock_guard<std::mutex>. dmc::Mutex
// wraps std::mutex as an annotated capability and dmc::MutexLock is the
// annotated RAII guard; they are the project-sanctioned spellings (the
// dmc_lint `banned-raw-lock` rule forbids bare .lock()/.unlock() calls
// outside src/util/, and `unannotated-mutex` forbids std::mutex members
// that no DMC_GUARDED_BY references).
//
// Annotation policy (DESIGN §5.6): every mutex-guarded member is marked
// DMC_GUARDED_BY(mu_); functions that run with a lock already held take
// DMC_REQUIRES(mu); lock-acquiring/releasing helpers are DMC_ACQUIRE /
// DMC_RELEASE. Shared state published by pointer swap (RuleIndex
// snapshots) guards only the pointer — the pointee is immutable.

#ifndef DMC_UTIL_THREAD_ANNOTATIONS_H_
#define DMC_UTIL_THREAD_ANNOTATIONS_H_

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#define DMC_THREAD_ANNOTATION_IMPL(x) __attribute__((x))
#else
#define DMC_THREAD_ANNOTATION_IMPL(x)  // no-op outside Clang
#endif

/// Declares a class to be a lockable capability (e.g. a mutex type).
#define DMC_CAPABILITY(x) DMC_THREAD_ANNOTATION_IMPL(capability(x))

/// Declares an RAII class that acquires a capability in its constructor
/// and releases it in its destructor.
#define DMC_SCOPED_CAPABILITY DMC_THREAD_ANNOTATION_IMPL(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define DMC_GUARDED_BY(x) DMC_THREAD_ANNOTATION_IMPL(guarded_by(x))

/// Pointer member whose pointee is protected by `x`.
#define DMC_PT_GUARDED_BY(x) DMC_THREAD_ANNOTATION_IMPL(pt_guarded_by(x))

/// Declares lock-ordering: this mutex is always acquired before `...`.
/// Violations of the declared order are diagnosed at compile time.
#define DMC_ACQUIRED_BEFORE(...) \
  DMC_THREAD_ANNOTATION_IMPL(acquired_before(__VA_ARGS__))

/// Declares lock-ordering: this mutex is always acquired after `...`.
#define DMC_ACQUIRED_AFTER(...) \
  DMC_THREAD_ANNOTATION_IMPL(acquired_after(__VA_ARGS__))

/// Function that must be called with the listed capabilities held.
#define DMC_REQUIRES(...) \
  DMC_THREAD_ANNOTATION_IMPL(requires_capability(__VA_ARGS__))

/// Function that must be called with the capabilities held shared.
#define DMC_REQUIRES_SHARED(...) \
  DMC_THREAD_ANNOTATION_IMPL(requires_shared_capability(__VA_ARGS__))

/// Function that acquires the listed capabilities and does not release
/// them before returning.
#define DMC_ACQUIRE(...) \
  DMC_THREAD_ANNOTATION_IMPL(acquire_capability(__VA_ARGS__))

#define DMC_ACQUIRE_SHARED(...) \
  DMC_THREAD_ANNOTATION_IMPL(acquire_shared_capability(__VA_ARGS__))

/// Function that releases the listed capabilities.
#define DMC_RELEASE(...) \
  DMC_THREAD_ANNOTATION_IMPL(release_capability(__VA_ARGS__))

#define DMC_RELEASE_SHARED(...) \
  DMC_THREAD_ANNOTATION_IMPL(release_shared_capability(__VA_ARGS__))

/// Function that acquires the capability when it returns `result`.
#define DMC_TRY_ACQUIRE(result, ...) \
  DMC_THREAD_ANNOTATION_IMPL(try_acquire_capability(result, __VA_ARGS__))

/// Function that must NOT be called with the listed capabilities held
/// (deadlock prevention for non-reentrant locks).
#define DMC_EXCLUDES(...) \
  DMC_THREAD_ANNOTATION_IMPL(locks_excluded(__VA_ARGS__))

/// Asserts at runtime that the calling thread holds the capability.
#define DMC_ASSERT_CAPABILITY(x) \
  DMC_THREAD_ANNOTATION_IMPL(assert_capability(x))

/// Function returning a reference to the capability guarding its result.
#define DMC_RETURN_CAPABILITY(x) DMC_THREAD_ANNOTATION_IMPL(lock_returned(x))

/// Escape hatch: disables the analysis for one function.
#define DMC_NO_THREAD_SAFETY_ANALYSIS \
  DMC_THREAD_ANNOTATION_IMPL(no_thread_safety_analysis)

namespace dmc {

/// std::mutex as an annotated capability. Same cost, same semantics —
/// the wrapper only exists so -Wthread-safety can track acquisition.
/// Default-constructible as a constant-initialized global (std::mutex's
/// constructor is constexpr).
class DMC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DMC_ACQUIRE() { mu_.lock(); }
  void Unlock() DMC_RELEASE() { mu_.unlock(); }
  bool TryLock() DMC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII guard over dmc::Mutex — the one sanctioned way to hold a lock
/// (see the dmc_lint banned-raw-lock rule). Equivalent to
/// std::lock_guard, plus the scoped-capability annotation.
class DMC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DMC_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() DMC_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace dmc

#endif  // DMC_UTIL_THREAD_ANNOTATIONS_H_
