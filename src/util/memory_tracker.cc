#include "util/memory_tracker.h"

// MemoryTracker is header-only today; this translation unit exists so the
// header keeps a stable home if out-of-line methods are added later.
