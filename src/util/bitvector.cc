#include "util/bitvector.h"

#include <bit>

#include "util/logging.h"
#include "util/random.h"

namespace dmc {

BitVector::BitVector(size_t num_bits)
    : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

void BitVector::Reset() {
  for (auto& w : words_) w = 0;
}

uint64_t BitVector::Hash() const {
  uint64_t h = 0x51ab2cd4e9f06b77ULL ^ num_bits_;
  for (uint64_t w : words_) h = Mix64(h ^ w) + 0x9e3779b97f4a7c15ULL;
  return h;
}

std::vector<uint32_t> BitVector::ToIndices() const {
  std::vector<uint32_t> out;
  for (size_t wi = 0; wi < words_.size(); ++wi) {
    uint64_t w = words_[wi];
    while (w != 0) {
      const int bit = std::countr_zero(w);
      out.push_back(static_cast<uint32_t>(wi * 64 + bit));
      w &= w - 1;
    }
  }
  return out;
}

}  // namespace dmc
