#include "util/failpoint.h"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>

#include "util/thread_annotations.h"

namespace dmc {
namespace fail {

namespace {

// Trigger kinds for an armed site.
enum class TriggerKind { kNth, kFromNth, kProbability };

struct Arm {
  Mode mode = Mode::kOff;
  TriggerKind trigger = TriggerKind::kFromNth;
  uint64_t n = 1;        // for kNth / kFromNth (1-based)
  double probability = 0.0;
};

struct Registry {
  Mutex mu;
  std::map<std::string, Arm> arms DMC_GUARDED_BY(mu);
  std::map<std::string, SiteStats> stats DMC_GUARDED_BY(mu);
  uint64_t seed DMC_GUARDED_BY(mu) = 0;
  uint64_t total_fires DMC_GUARDED_BY(mu) = 0;
  std::string spec DMC_GUARDED_BY(mu);
};

std::atomic<bool> g_enabled{false};
std::once_flag g_env_once;

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

uint64_t HashString(const char* s) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a
  for (; *s != '\0'; ++s) {
    h ^= static_cast<unsigned char>(*s);
    h *= 1099511628211ULL;
  }
  return h;
}

// Deterministic per-(seed, site, hit) coin flip.
bool CoinFlip(uint64_t seed, const char* site, uint64_t hit, double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  const uint64_t r = SplitMix64(seed ^ HashString(site) ^ (hit * 0x9E37ULL));
  return static_cast<double>(r) <
         p * static_cast<double>(UINT64_MAX);
}

Status ConfigureLocked(Registry& reg, const std::string& spec)
    DMC_REQUIRES(reg.mu);

// One-time pickup of DMC_FAILPOINTS so library users (tests, benches)
// get injection without any CLI plumbing.
void InitFromEnvOnce() {
  std::call_once(g_env_once, [] {
    const char* env = std::getenv("DMC_FAILPOINTS");
    if (env == nullptr || *env == '\0') return;
    Registry& reg = GetRegistry();
    MutexLock lock(reg.mu);
    // A malformed env spec must not crash the host process; it simply
    // stays disabled (Configure reports the error to CLI users).
    (void)ConfigureLocked(reg, env);
  });
}

bool ParseMode(const std::string& word, Mode* mode) {
  if (word == "error") *mode = Mode::kError;
  else if (word == "enospc") *mode = Mode::kNoSpace;
  else if (word == "alloc") *mode = Mode::kAlloc;
  else if (word == "short") *mode = Mode::kShortWrite;
  else if (word == "dataloss") *mode = Mode::kDataLoss;
  else if (word == "off") *mode = Mode::kOff;
  else return false;
  return true;
}

bool ParseTrigger(const std::string& word, Arm* arm) {
  if (word.empty()) return false;
  if (word[0] == 'p') {
    char* end = nullptr;
    const double p = std::strtod(word.c_str() + 1, &end);
    if (end == nullptr || *end != '\0' || !(p >= 0.0) || p > 1.0) {
      return false;
    }
    arm->trigger = TriggerKind::kProbability;
    arm->probability = p;
    return true;
  }
  const bool from = word.back() == '+';
  const std::string digits = from ? word.substr(0, word.size() - 1) : word;
  if (digits.empty()) return false;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
  }
  arm->trigger = from ? TriggerKind::kFromNth : TriggerKind::kNth;
  arm->n = std::strtoull(digits.c_str(), nullptr, 10);
  return arm->n >= 1;
}

Status ConfigureLocked(Registry& reg, const std::string& spec)
    DMC_REQUIRES(reg.mu) {
  std::map<std::string, Arm> arms;
  uint64_t seed = 0;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t end = spec.find_first_of(";,", pos);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) {
      if (pos > spec.size()) break;
      continue;
    }
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return InvalidArgumentError("failpoint spec entry '" + entry +
                                  "' is not site=mode[@trigger]");
    }
    const std::string site = entry.substr(0, eq);
    const std::string rhs = entry.substr(eq + 1);
    if (site == "seed") {
      seed = std::strtoull(rhs.c_str(), nullptr, 10);
      continue;
    }
    Arm arm;
    const size_t at = rhs.find('@');
    const std::string mode_word = rhs.substr(0, at);
    if (!ParseMode(mode_word, &arm.mode)) {
      return InvalidArgumentError("unknown failpoint mode '" + mode_word +
                                  "' in '" + entry + "'");
    }
    if (at != std::string::npos) {
      if (!ParseTrigger(rhs.substr(at + 1), &arm)) {
        return InvalidArgumentError("bad failpoint trigger in '" + entry +
                                    "'");
      }
    }
    if (arm.mode != Mode::kOff) arms[site] = arm;
  }
  reg.arms = std::move(arms);
  reg.stats.clear();
  reg.seed = seed;
  reg.total_fires = 0;
  reg.spec = spec;
  g_enabled.store(true, std::memory_order_release);
  return Status::OK();
}

}  // namespace

bool Enabled() {
  InitFromEnvOnce();
  return g_enabled.load(std::memory_order_acquire);
}

Status Configure(const std::string& spec) {
  InitFromEnvOnce();
  Registry& reg = GetRegistry();
  MutexLock lock(reg.mu);
  const Status st = ConfigureLocked(reg, spec);
  if (!st.ok()) g_enabled.store(false, std::memory_order_release);
  return st;
}

void Disable() {
  InitFromEnvOnce();
  Registry& reg = GetRegistry();
  MutexLock lock(reg.mu);
  reg.arms.clear();
  reg.stats.clear();
  reg.total_fires = 0;
  reg.spec.clear();
  g_enabled.store(false, std::memory_order_release);
}

std::string CurrentSpec() {
  if (!Enabled()) return "";
  Registry& reg = GetRegistry();
  MutexLock lock(reg.mu);
  return reg.spec;
}

Mode Fire(const char* site) {
  if (!Enabled()) return Mode::kOff;
  Registry& reg = GetRegistry();
  MutexLock lock(reg.mu);
  if (!g_enabled.load(std::memory_order_relaxed)) return Mode::kOff;
  SiteStats& stats = reg.stats[site];
  const uint64_t hit = ++stats.hits;  // 1-based
  const auto it = reg.arms.find(site);
  if (it == reg.arms.end()) return Mode::kOff;
  const Arm& arm = it->second;
  bool fires = false;
  switch (arm.trigger) {
    case TriggerKind::kNth:
      fires = hit == arm.n;
      break;
    case TriggerKind::kFromNth:
      fires = hit >= arm.n;
      break;
    case TriggerKind::kProbability:
      fires = CoinFlip(reg.seed, site, hit, arm.probability);
      break;
  }
  if (!fires) return Mode::kOff;
  ++stats.fires;
  ++reg.total_fires;
  return arm.mode;
}

Status StatusFor(Mode mode, const char* site) {
  const std::string at = std::string(" at ") + site;
  switch (mode) {
    case Mode::kOff:
      return Status::OK();
    case Mode::kError:
      return IOError("injected I/O error" + at);
    case Mode::kNoSpace:
      return ResourceExhaustedError("injected ENOSPC (no space left)" + at);
    case Mode::kAlloc:
      return ResourceExhaustedError("injected allocation failure" + at);
    case Mode::kShortWrite:
      return IOError("injected short write" + at);
    case Mode::kDataLoss:
      return DataLossError("injected data loss" + at);
  }
  return InternalError("unknown failpoint mode" + at);
}

Status InjectStatus(const char* site) {
  return StatusFor(Fire(site), site);
}

bool IsInjectedFault(const Status& status) {
  return !status.ok() && status.message().rfind("injected ", 0) == 0;
}

std::vector<std::string> SitesSeen() {
  Registry& reg = GetRegistry();
  MutexLock lock(reg.mu);
  std::vector<std::string> sites;
  sites.reserve(reg.stats.size());
  for (const auto& [site, stats] : reg.stats) sites.push_back(site);
  return sites;
}

SiteStats GetSiteStats(const std::string& site) {
  Registry& reg = GetRegistry();
  MutexLock lock(reg.mu);
  const auto it = reg.stats.find(site);
  return it == reg.stats.end() ? SiteStats{} : it->second;
}

uint64_t TotalFires() {
  Registry& reg = GetRegistry();
  MutexLock lock(reg.mu);
  return reg.total_fires;
}

}  // namespace fail
}  // namespace dmc
