#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "util/thread_annotations.h"

namespace dmc {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

// Serializes stderr emission so log lines from parallel shards can
// never interleave. Constant-initialized (std::mutex ctor is constexpr),
// so it is usable from any static destructor ordering.
Mutex g_stderr_mu;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

double SecondsSinceStart() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration<double>(Clock::now() - start).count();
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  const double elapsed = SecondsSinceStart();
  MutexLock lock(g_stderr_mu);
  std::fprintf(stderr, "%9.3f %s\n", elapsed, stream_.str().c_str());
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: "
          << condition << " ";
}

FatalLogMessage::~FatalLogMessage() {
  {
    MutexLock lock(g_stderr_mu);
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
  std::abort();
}

}  // namespace internal_logging

}  // namespace dmc
