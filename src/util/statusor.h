// StatusOr<T>: a Status or a value of type T.

#ifndef DMC_UTIL_STATUSOR_H_
#define DMC_UTIL_STATUSOR_H_

#include <optional>
#include <utility>

#include "util/logging.h"
#include "util/status.h"

namespace dmc {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value is absent. Accessing the value of a non-OK StatusOr aborts.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Constructs from an error status. Must not be OK (an OK status with no
  /// value is meaningless); enforced with a CHECK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    DMC_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  /// Constructs from a value; the status is OK.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(StatusOr&&) = default;

  [[nodiscard]] bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    DMC_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    DMC_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    DMC_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a StatusOr), propagating the error to the caller, and
/// otherwise assigns the value to `lhs`.
#define DMC_ASSIGN_OR_RETURN(lhs, rexpr)                 \
  auto DMC_CONCAT_(_dmc_sor_, __LINE__) = (rexpr);       \
  if (!DMC_CONCAT_(_dmc_sor_, __LINE__).ok())            \
    return DMC_CONCAT_(_dmc_sor_, __LINE__).status();    \
  lhs = std::move(DMC_CONCAT_(_dmc_sor_, __LINE__)).value()

#define DMC_CONCAT_INNER_(a, b) a##b
#define DMC_CONCAT_(a, b) DMC_CONCAT_INNER_(a, b)

}  // namespace dmc

#endif  // DMC_UTIL_STATUSOR_H_
