// Byte-exact accounting of the candidate/counter data structures.
//
// The paper's evaluation (Fig. 3, Fig. 6(g,h)) reports the size of the
// "counter array that keeps candidate IDs and their miss-counters"; this
// tracker is the instrument behind those figures, and also drives the
// DMC-base -> DMC-bitmap switch (the 50 MB rule in §4.4).

#ifndef DMC_UTIL_MEMORY_TRACKER_H_
#define DMC_UTIL_MEMORY_TRACKER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dmc {

/// Tracks current and peak byte usage of an instrumented structure, with an
/// optional sampled history (bytes after each row) for memory-vs-progress
/// plots like the paper's Fig. 3.
class MemoryTracker {
 public:
  MemoryTracker() = default;

  void Add(size_t bytes) {
    current_ += bytes;
    if (current_ > peak_) peak_ = current_;
    if (current_ > interval_peak_) interval_peak_ = current_;
  }

  void Sub(size_t bytes) {
    current_ = bytes > current_ ? 0 : current_ - bytes;
  }

  /// Resets current usage to zero but keeps the peak and history.
  void ReleaseAll() { current_ = 0; }

  size_t current_bytes() const { return current_; }
  size_t peak_bytes() const { return peak_; }

  /// Returns the highest usage seen since the previous TakeIntervalPeak()
  /// (or since construction/Reset), then re-arms the interval at the
  /// current usage. With one take per row, max over all takes equals
  /// peak_bytes() exactly — even when lists shrink mid-row — which is the
  /// invariant the exported Fig. 3 memory curves are checked against.
  size_t TakeIntervalPeak() {
    const size_t p = interval_peak_;
    interval_peak_ = current_;
    return p;
  }

  /// Appends the current usage to the history (one sample per processed
  /// row when history recording is enabled by the caller).
  void RecordSample() { history_.push_back(current_); }

  const std::vector<size_t>& history() const { return history_; }

  void Reset() {
    current_ = 0;
    peak_ = 0;
    interval_peak_ = 0;
    history_.clear();
  }

 private:
  size_t current_ = 0;
  size_t peak_ = 0;
  size_t interval_peak_ = 0;
  std::vector<size_t> history_;
};

}  // namespace dmc

#endif  // DMC_UTIL_MEMORY_TRACKER_H_
