#include "util/atomic_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <system_error>

#include "util/failpoint.h"

namespace dmc {

namespace {

std::string ErrnoMessage(int err) {
  return std::error_code(err, std::generic_category()).message();
}

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

// Writes all of `data` to `fd`, retrying on EINTR and partial writes.
Status WriteAll(int fd, std::string_view data, const std::string& temp_path) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      return err == ENOSPC
                 ? ResourceExhaustedError("no space left writing " +
                                          temp_path + ": " +
                                          ErrnoMessage(err))
                 : IOError("write failed for " + temp_path + ": " +
                           ErrnoMessage(err));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

// Makes the rename durable by fsyncing the containing directory. Best
// effort on filesystems that reject directory fsync (EINVAL).
Status FsyncDir(const std::string& dir) {
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd < 0) {
    return IOError("open failed for directory " + dir + ": " +
                   ErrnoMessage(errno));
  }
  const int rc = ::fsync(dfd);
  const int err = errno;
  ::close(dfd);
  if (rc != 0 && err != EINVAL && err != EROFS) {
    return IOError("fsync failed for directory " + dir + ": " +
                   ErrnoMessage(err));
  }
  return Status::OK();
}

}  // namespace

AtomicFileWriter::~AtomicFileWriter() { Abort(); }

Status AtomicFileWriter::Open(const std::string& path) {
  if (is_open()) {
    return FailedPreconditionError("AtomicFileWriter already open for " +
                                   path_);
  }
  if (fail::Enabled()) {
    DMC_RETURN_IF_ERROR(fail::InjectStatus("atomic_io.open"));
  }
  // Unique per process and per writer so concurrent shards can replace
  // files in the same directory without colliding.
  static std::atomic<uint64_t> counter{0};
  path_ = path;
  temp_path_ = path + ".tmp." + std::to_string(::getpid()) + "." +
               std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
  fd_ = ::open(temp_path_.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC,
               0644);
  if (fd_ < 0) {
    const Status st = IOError("open failed for " + temp_path_ + ": " +
                              ErrnoMessage(errno));
    path_.clear();
    temp_path_.clear();
    return st;
  }
  return Status::OK();
}

Status AtomicFileWriter::Write(std::string_view data) {
  if (!is_open()) {
    return FailedPreconditionError("AtomicFileWriter::Write before Open");
  }
  if (fail::Enabled()) {
    const fail::Mode mode = fail::Fire("atomic_io.write");
    if (mode == fail::Mode::kShortWrite) {
      // Persist a truncated prefix, then fail — models a torn write.
      (void)WriteAll(fd_, data.substr(0, data.size() / 2), temp_path_);
      Abort();
      return fail::StatusFor(mode, "atomic_io.write");
    }
    if (mode != fail::Mode::kOff) {
      Abort();
      return fail::StatusFor(mode, "atomic_io.write");
    }
  }
  const Status st = WriteAll(fd_, data, temp_path_);
  if (!st.ok()) Abort();
  return st;
}

Status AtomicFileWriter::Commit() {
  if (!is_open()) {
    return FailedPreconditionError("AtomicFileWriter::Commit before Open");
  }
  if (fail::Enabled()) {
    const Status injected = fail::InjectStatus("atomic_io.fsync");
    if (!injected.ok()) {
      Abort();
      return injected;
    }
  }
  if (::fsync(fd_) != 0) {
    const Status st =
        IOError("fsync failed for " + temp_path_ + ": " + ErrnoMessage(errno));
    Abort();
    return st;
  }
  if (::close(fd_) != 0) {
    const Status st =
        IOError("close failed for " + temp_path_ + ": " + ErrnoMessage(errno));
    fd_ = -1;
    Abort();
    return st;
  }
  fd_ = -1;
  if (fail::Enabled()) {
    const Status injected = fail::InjectStatus("atomic_io.rename");
    if (!injected.ok()) {
      Abort();
      return injected;
    }
  }
  if (::rename(temp_path_.c_str(), path_.c_str()) != 0) {
    const Status st = IOError("rename " + temp_path_ + " -> " + path_ +
                              " failed: " + ErrnoMessage(errno));
    Abort();
    return st;
  }
  const std::string dir = ParentDir(path_);
  temp_path_.clear();
  path_.clear();
  return FsyncDir(dir);
}

void AtomicFileWriter::Abort() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!temp_path_.empty()) {
    ::unlink(temp_path_.c_str());
    temp_path_.clear();
  }
  path_.clear();
}

Status AtomicWriteFile(const std::string& path, std::string_view content) {
  AtomicFileWriter writer;
  DMC_RETURN_IF_ERROR(writer.Open(path));
  DMC_RETURN_IF_ERROR(writer.Write(content));
  return writer.Commit();
}

}  // namespace dmc
