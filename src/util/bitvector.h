// Fixed-size bit vector with the kernels DMC-bitmap needs:
// popcount, AND, AND-NOT popcount, and equality hashing.

#ifndef DMC_UTIL_BITVECTOR_H_
#define DMC_UTIL_BITVECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dmc {

/// Densely packed bit vector of a fixed logical size. Bits beyond size()
/// in the last word are kept zero (class invariant), so whole-word
/// popcounts are exact.
class BitVector {
 public:
  BitVector() = default;

  /// All bits start cleared.
  explicit BitVector(size_t num_bits);

  BitVector(const BitVector&) = default;
  BitVector& operator=(const BitVector&) = default;
  BitVector(BitVector&&) = default;
  BitVector& operator=(BitVector&&) = default;

  size_t size() const { return num_bits_; }
  bool empty() const { return num_bits_ == 0; }

  void Set(size_t i);
  void Clear(size_t i);
  bool Test(size_t i) const;

  /// Number of set bits.
  size_t Count() const;

  /// popcount(*this & other). Sizes must match.
  size_t AndCount(const BitVector& other) const;

  /// popcount(*this & ~other) — the DMC-bitmap "miss count" kernel
  /// (rows where this column is 1 and the other is 0). Sizes must match.
  size_t AndNotCount(const BitVector& other) const;

  /// In-place OR. Sizes must match.
  void OrWith(const BitVector& other);

  /// Resets all bits to 0.
  void Reset();

  /// Heap bytes used by the word storage.
  size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

  /// 64-bit content hash (used to bucket identical columns in DMC-sim's
  /// 100%-similarity phase).
  uint64_t Hash() const;

  friend bool operator==(const BitVector& a, const BitVector& b) {
    return a.num_bits_ == b.num_bits_ && a.words_ == b.words_;
  }

  /// Indices of all set bits, ascending.
  std::vector<uint32_t> ToIndices() const;

 private:
  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace dmc

#endif  // DMC_UTIL_BITVECTOR_H_
