// Fixed-size bit vector with the kernels DMC-bitmap needs:
// popcount, AND, AND-NOT popcount, and equality hashing.

#ifndef DMC_UTIL_BITVECTOR_H_
#define DMC_UTIL_BITVECTOR_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace dmc {

/// Densely packed bit vector of a fixed logical size. Bits beyond size()
/// in the last word are kept zero (class invariant), so whole-word
/// popcounts are exact.
class BitVector {
 public:
  BitVector() = default;

  /// All bits start cleared.
  explicit BitVector(size_t num_bits);

  BitVector(const BitVector&) = default;
  BitVector& operator=(const BitVector&) = default;
  BitVector(BitVector&&) = default;
  BitVector& operator=(BitVector&&) = default;

  size_t size() const { return num_bits_; }
  bool empty() const { return num_bits_ == 0; }

  // The single-bit accessors and the word-parallel counting kernels are
  // defined inline: they sit in the innermost loops of both the batch
  // bitmap kernel and the incremental update/regen passes, where the
  // per-call overhead of an out-of-line body rivals the body itself
  // (a window's column fits in a handful of words).
  void Set(size_t i) {
    DMC_CHECK_LT(i, num_bits_);
    words_[i >> 6] |= uint64_t{1} << (i & 63);
  }
  void Clear(size_t i) {
    DMC_CHECK_LT(i, num_bits_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }
  bool Test(size_t i) const {
    DMC_CHECK_LT(i, num_bits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Number of set bits.
  size_t Count() const {
    size_t total = 0;
    for (uint64_t w : words_) total += static_cast<size_t>(std::popcount(w));
    return total;
  }

  /// popcount(*this & other). Sizes must match.
  size_t AndCount(const BitVector& other) const {
    DMC_CHECK_EQ(num_bits_, other.num_bits_);
    size_t total = 0;
    for (size_t i = 0; i < words_.size(); ++i) {
      total +=
          static_cast<size_t>(std::popcount(words_[i] & other.words_[i]));
    }
    return total;
  }

  /// popcount(*this & ~other) — the DMC-bitmap "miss count" kernel
  /// (rows where this column is 1 and the other is 0). Sizes must match.
  size_t AndNotCount(const BitVector& other) const {
    DMC_CHECK_EQ(num_bits_, other.num_bits_);
    size_t total = 0;
    for (size_t i = 0; i < words_.size(); ++i) {
      total +=
          static_cast<size_t>(std::popcount(words_[i] & ~other.words_[i]));
    }
    return total;
  }

  /// AndNotCount with a budget: early-exits once the running count
  /// exceeds `cap` and returns that partial total. The result is exact
  /// whenever it is <= cap; any return value > cap only certifies that
  /// the true count also exceeds cap. Lets miss-budget checks on long
  /// vectors stop as soon as a pair is disqualified.
  size_t AndNotCountCapped(const BitVector& other, size_t cap) const {
    DMC_CHECK_EQ(num_bits_, other.num_bits_);
    size_t total = 0;
    const size_t n = words_.size();
    size_t i = 0;
    while (i < n) {
      const size_t stop = i + 8 < n ? i + 8 : n;
      for (; i < stop; ++i) {
        total +=
            static_cast<size_t>(std::popcount(words_[i] & ~other.words_[i]));
      }
      if (total > cap) return total;
    }
    return total;
  }

  /// In-place OR. Sizes must match.
  void OrWith(const BitVector& other) {
    DMC_CHECK_EQ(num_bits_, other.num_bits_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  }

  /// Resets all bits to 0.
  void Reset();

  /// Heap bytes used by the word storage.
  size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

  /// 64-bit content hash (used to bucket identical columns in DMC-sim's
  /// 100%-similarity phase).
  uint64_t Hash() const;

  friend bool operator==(const BitVector& a, const BitVector& b) {
    return a.num_bits_ == b.num_bits_ && a.words_ == b.words_;
  }

  /// Indices of all set bits, ascending.
  std::vector<uint32_t> ToIndices() const;

 private:
  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace dmc

#endif  // DMC_UTIL_BITVECTOR_H_
