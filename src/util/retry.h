// Bounded retry-with-backoff for transient I/O failures.
//
// The DMC engines treat kIOError and kResourceExhausted as potentially
// transient (a flaky mount, a disk that frees up, an allocation that
// succeeds once a sibling shard finishes); everything else — malformed
// input, corruption, cancellation — is permanent and is returned
// immediately. Retries sleep with exponential backoff so a genuinely
// down disk does not get hammered.

#ifndef DMC_UTIL_RETRY_H_
#define DMC_UTIL_RETRY_H_

#include <functional>

#include "util/status.h"

namespace dmc {

struct RetryPolicy {
  /// Total attempts, including the first; 1 = no retries.
  int max_attempts = 3;
  /// Sleep before the first retry.
  double initial_backoff_seconds = 0.001;
  /// Backoff growth factor per retry.
  double backoff_multiplier = 2.0;
  /// Backoff ceiling.
  double max_backoff_seconds = 0.050;
  /// Retry StatusCode::kIOError.
  bool retry_io_error = true;
  /// Retry StatusCode::kResourceExhausted (ENOSPC / alloc pressure).
  bool retry_resource_exhausted = true;

  /// Whether `status` is worth another attempt under this policy.
  bool IsRetryable(const Status& status) const;
};

/// Invoked before each re-attempt with the 1-based number of the attempt
/// that just failed and its status; useful for metrics and logs.
using RetryObserver = std::function<void(int failed_attempt, const Status&)>;

/// Runs `op` up to policy.max_attempts times, sleeping between attempts.
/// Returns the first success, or the last error once attempts are
/// exhausted / the error is not retryable.
[[nodiscard]] Status RetryWithBackoff(const RetryPolicy& policy,
                                      const std::function<Status()>& op,
                                      const RetryObserver& on_retry = nullptr);

}  // namespace dmc

#endif  // DMC_UTIL_RETRY_H_
