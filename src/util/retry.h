// Bounded retry-with-backoff for transient I/O failures.
//
// The DMC engines treat kIOError and kResourceExhausted as potentially
// transient (a flaky mount, a disk that frees up, an allocation that
// succeeds once a sibling shard finishes); everything else — malformed
// input, corruption, cancellation — is permanent and is returned
// immediately. Retries sleep with exponential backoff so a genuinely
// down disk does not get hammered.

#ifndef DMC_UTIL_RETRY_H_
#define DMC_UTIL_RETRY_H_

#include <functional>

#include "util/status.h"

namespace dmc {

struct RetryPolicy {
  /// Total attempts, including the first; 1 = no retries.
  int max_attempts = 3;
  /// Sleep before the first retry.
  double initial_backoff_seconds = 0.001;
  /// Backoff growth factor per retry.
  double backoff_multiplier = 2.0;
  /// Backoff ceiling.
  double max_backoff_seconds = 0.050;
  /// Retry StatusCode::kIOError.
  bool retry_io_error = true;
  /// Retry StatusCode::kResourceExhausted (ENOSPC / alloc pressure).
  bool retry_resource_exhausted = true;
  /// Full-jitter backoff: each sleep is drawn uniformly from
  /// [0, exponential backoff] instead of the exponential value itself,
  /// decorrelating a fleet of retriers (the shard coordinator respawning
  /// several dead workers at once) so they do not stampede in lockstep.
  /// The draw is a pure function of (jitter_seed, attempt number), so a
  /// given policy always produces the same schedule — seed-stable runs
  /// stay seed-stable.
  bool full_jitter = false;
  uint64_t jitter_seed = 0;
  /// Cap on the *sum* of sleeps across one RetryWithBackoff call;
  /// 0 disables the cap. Once the next sleep would push the total past
  /// the cap, the call gives up and returns the last error instead of
  /// sleeping — a respawn loop is bounded in wall-clock, not just in
  /// attempt count.
  double max_total_backoff_seconds = 0.0;

  /// Whether `status` is worth another attempt under this policy.
  bool IsRetryable(const Status& status) const;
};

/// The exact sleep RetryWithBackoff performs after attempt
/// `failed_attempt` (1-based) fails, before the total-wait cap is
/// applied. Pure function of the policy, exposed so tests can pin the
/// whole schedule without sleeping through it.
double BackoffForAttempt(const RetryPolicy& policy, int failed_attempt);

/// Invoked before each re-attempt with the 1-based number of the attempt
/// that just failed and its status; useful for metrics and logs.
using RetryObserver = std::function<void(int failed_attempt, const Status&)>;

/// Runs `op` up to policy.max_attempts times, sleeping between attempts.
/// Returns the first success, or the last error once attempts are
/// exhausted / the error is not retryable.
[[nodiscard]] Status RetryWithBackoff(const RetryPolicy& policy,
                                      const std::function<Status()>& op,
                                      const RetryObserver& on_retry = nullptr);

}  // namespace dmc

#endif  // DMC_UTIL_RETRY_H_
