#include "util/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace dmc {

bool RetryPolicy::IsRetryable(const Status& status) const {
  switch (status.code()) {
    case StatusCode::kIOError:
      return retry_io_error;
    case StatusCode::kResourceExhausted:
      return retry_resource_exhausted;
    default:
      return false;
  }
}

Status RetryWithBackoff(const RetryPolicy& policy,
                        const std::function<Status()>& op,
                        const RetryObserver& on_retry) {
  const int attempts = std::max(policy.max_attempts, 1);
  double backoff = policy.initial_backoff_seconds;
  Status last = Status::OK();
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    last = op();
    if (last.ok()) return last;
    if (attempt == attempts || !policy.IsRetryable(last)) return last;
    if (on_retry) on_retry(attempt, last);
    if (backoff > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    }
    backoff = std::min(backoff * policy.backoff_multiplier,
                       policy.max_backoff_seconds);
  }
  return last;
}

}  // namespace dmc
