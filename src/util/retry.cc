#include "util/retry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "util/random.h"

namespace dmc {

bool RetryPolicy::IsRetryable(const Status& status) const {
  switch (status.code()) {
    case StatusCode::kIOError:
      return retry_io_error;
    case StatusCode::kResourceExhausted:
      return retry_resource_exhausted;
    default:
      return false;
  }
}

double BackoffForAttempt(const RetryPolicy& policy, int failed_attempt) {
  if (failed_attempt < 1) return 0.0;
  double base = policy.initial_backoff_seconds;
  for (int i = 1; i < failed_attempt; ++i) {
    base = std::min(base * policy.backoff_multiplier,
                    policy.max_backoff_seconds);
  }
  base = std::min(base, policy.max_backoff_seconds);
  if (base <= 0.0) return 0.0;
  if (!policy.full_jitter) return base;
  // Uniform in [0, base), deterministic in (jitter_seed, attempt). The
  // odd constant keys the attempt number away from the seed so nearby
  // seeds do not produce shifted copies of the same schedule.
  const uint64_t h =
      Mix64(policy.jitter_seed ^
            (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(failed_attempt)));
  const double unit =
      static_cast<double>(h >> 11) * 0x1.0p-53;  // 53-bit mantissa in [0,1)
  return base * unit;
}

Status RetryWithBackoff(const RetryPolicy& policy,
                        const std::function<Status()>& op,
                        const RetryObserver& on_retry) {
  const int attempts = std::max(policy.max_attempts, 1);
  double slept = 0.0;
  Status last = Status::OK();
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    last = op();
    if (last.ok()) return last;
    if (attempt == attempts || !policy.IsRetryable(last)) return last;
    const double backoff = BackoffForAttempt(policy, attempt);
    if (policy.max_total_backoff_seconds > 0.0 &&
        slept + backoff > policy.max_total_backoff_seconds) {
      return last;
    }
    if (on_retry) on_retry(attempt, last);
    if (backoff > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      slept += backoff;
    }
  }
  return last;
}

}  // namespace dmc
