#include "util/status.h"

namespace dmc {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  result += ": ";
  result += message_;
  return result;
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status IOError(std::string message) {
  return Status(StatusCode::kIOError, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status UnimplementedError(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
Status CancelledError(std::string message) {
  return Status(StatusCode::kCancelled, std::move(message));
}
Status DataLossError(std::string message) {
  return Status(StatusCode::kDataLoss, std::move(message));
}

}  // namespace dmc
