#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace dmc {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  // All-zero state is invalid for xoshiro; SplitMix64 of any seed cannot
  // produce four zeros, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  DMC_CHECK_GT(bound, 0u);
  // Lemire's multiply-shift with rejection for exact uniformity.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  DMC_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Gaussian() {
  // Box-Muller; avoid log(0) by nudging u1 away from zero.
  double u1 = UniformDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = UniformDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

uint64_t Rng::Geometric(double p) {
  DMC_CHECK_GT(p, 0.0);
  if (p >= 1.0) return 0;
  double u = UniformDouble();
  if (u < 1e-300) u = 1e-300;
  return static_cast<uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

uint64_t Rng::Poisson(double mean) {
  DMC_CHECK_GE(mean, 0.0);
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's product-of-uniforms method.
    const double limit = std::exp(-mean);
    uint64_t k = 0;
    double prod = UniformDouble();
    while (prod > limit) {
      ++k;
      prod *= UniformDouble();
    }
    return k;
  }
  // Normal approximation with continuity correction for large means.
  const double v = mean + std::sqrt(mean) * Gaussian() + 0.5;
  return v <= 0.0 ? 0 : static_cast<uint64_t>(v);
}

}  // namespace dmc
