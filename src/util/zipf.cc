#include "util/zipf.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace dmc {

ZipfSampler::ZipfSampler(uint64_t n, double theta) : n_(n), theta_(theta) {
  DMC_CHECK_GE(n, 1u);
  DMC_CHECK_GE(theta, 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = total;
  }
  for (auto& v : cdf_) v /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.UniformDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(uint64_t rank) const {
  DMC_CHECK_LT(rank, n_);
  const double lo = rank == 0 ? 0.0 : cdf_[rank - 1];
  return cdf_[rank] - lo;
}

PowerLawSampler::PowerLawSampler(uint64_t k_min, uint64_t k_max, double alpha)
    : k_min_(k_min), k_max_(k_max) {
  DMC_CHECK_GE(k_min, 1u);
  DMC_CHECK_LE(k_min, k_max);
  cdf_.resize(k_max - k_min + 1);
  double total = 0.0;
  for (uint64_t k = k_min; k <= k_max; ++k) {
    total += std::pow(static_cast<double>(k), -alpha);
    cdf_[k - k_min] = total;
  }
  for (auto& v : cdf_) v /= total;
  cdf_.back() = 1.0;
}

uint64_t PowerLawSampler::Sample(Rng& rng) const {
  const double u = rng.UniformDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return k_min_ + static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace dmc
