// Fault-injection registry ("failpoints") for robustness testing.
//
// Engines and I/O helpers mark fallible sites with a stable string name
// and call fail::InjectStatus("site") there. In production the registry
// is disabled and the whole call collapses to one relaxed atomic load.
// Tests (or an operator, via the DMC_FAILPOINTS environment variable or
// dmc_cli --failpoints) arm sites with a spec like
//
//   external.spill.write=error@2;atomic_io.rename=enospc@p0.25;seed=7
//
// and the armed sites then return injected errors — deterministically:
// a probability trigger is a pure function of (seed, site, hit index),
// so a failing run replays bit-for-bit.
//
// Spec grammar (entries separated by ';' or ','):
//   entry   := site '=' mode [ '@' trigger ] | 'seed=' N
//   mode    := error | enospc | alloc | short | dataloss | off
//   trigger := N      fire on the Nth hit only (1-based, once)
//            | N+     fire on every hit from the Nth onward
//            | pX     fire with probability X in [0,1] per hit
//   (no trigger = '1+', i.e. fire on every hit)
//
// An empty spec ("") enables *recording only*: every site that is hit
// registers itself (see SitesSeen) but nothing fires. The differential
// fault-sweep test uses this to enumerate the live sites before forcing
// each one in turn.

#ifndef DMC_UTIL_FAILPOINT_H_
#define DMC_UTIL_FAILPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace dmc {
namespace fail {

/// What an armed site injects when it fires.
enum class Mode {
  kOff = 0,
  /// Generic I/O failure -> StatusCode::kIOError.
  kError,
  /// Disk full -> StatusCode::kResourceExhausted.
  kNoSpace,
  /// Allocation failure -> StatusCode::kResourceExhausted.
  kAlloc,
  /// Short write: the site persists a truncated prefix before failing
  /// (sites that cannot emulate truncation treat it as kError).
  kShortWrite,
  /// Detected corruption -> StatusCode::kDataLoss.
  kDataLoss,
};

/// Hit/fire counters for one site.
struct SiteStats {
  uint64_t hits = 0;
  uint64_t fires = 0;
};

/// True when any spec is active (including record-only). One relaxed
/// atomic load; the intended guard for per-row call sites.
bool Enabled();

/// Arms the registry from a spec (see grammar above). Replaces any
/// previous configuration and resets all counters. Empty spec = record
/// only. Returns kInvalidArgument on a malformed spec (registry is then
/// left disabled).
[[nodiscard]] Status Configure(const std::string& spec);

/// Disarms everything and clears counters and recorded sites.
void Disable();

/// The spec most recently passed to Configure() (or picked up from
/// DMC_FAILPOINTS), verbatim; "" when disabled or record-only. Lets a
/// parent process propagate its injection config to children it spawns
/// (the shard coordinator forwards this via the child environment).
std::string CurrentSpec();

/// Records a hit at `site` and decides whether to fire. Returns kOff
/// when the registry is disabled, the site is not armed, or the trigger
/// does not match this hit.
Mode Fire(const char* site);

/// The Status a fired mode maps to; message starts with "injected" and
/// names the site. kOff maps to OK.
Status StatusFor(Mode mode, const char* site);

/// Fire() + StatusFor() in one call — the common call-site form:
///   DMC_RETURN_IF_ERROR(fail::InjectStatus("external.spill.open"));
[[nodiscard]] Status InjectStatus(const char* site);

/// True iff `status` was produced by an injected failpoint (used by the
/// engines to count dmc.faults.injected without plumbing extra state).
bool IsInjectedFault(const Status& status);

/// Sites hit since the last Configure(), sorted. Includes sites that
/// never fired (record-only runs use this to enumerate coverage).
std::vector<std::string> SitesSeen();

/// Counters for one site (zeros when unknown).
SiteStats GetSiteStats(const std::string& site);

/// Total fires across all sites since the last Configure().
uint64_t TotalFires();

}  // namespace fail
}  // namespace dmc

#endif  // DMC_UTIL_FAILPOINT_H_
