// Lightweight logging and assertion macros.
//
// DMC_CHECK(cond) aborts with a message when `cond` is false — used for
// programming-error invariants (never for data-dependent failures, which
// return Status). DMC_LOG(level) writes a timestamped line to stderr.

#ifndef DMC_UTIL_LOGGING_H_
#define DMC_UTIL_LOGGING_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace dmc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level emitted by DMC_LOG. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Aborts the process in the destructor, after flushing the message.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

// Swallows the streamed expression when a log statement is disabled.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging

#define DMC_LOG(level)                                                \
  ::dmc::internal_logging::LogMessage(::dmc::LogLevel::k##level,      \
                                      __FILE__, __LINE__)             \
      .stream()

#define DMC_CHECK(condition)                                          \
  (condition) ? (void)0                                               \
              : ::dmc::internal_logging::Voidify() &                  \
                    ::dmc::internal_logging::FatalLogMessage(         \
                        __FILE__, __LINE__, #condition)               \
                        .stream()

#define DMC_CHECK_EQ(a, b) DMC_CHECK((a) == (b))
#define DMC_CHECK_NE(a, b) DMC_CHECK((a) != (b))
#define DMC_CHECK_LT(a, b) DMC_CHECK((a) < (b))
#define DMC_CHECK_LE(a, b) DMC_CHECK((a) <= (b))
#define DMC_CHECK_GT(a, b) DMC_CHECK((a) > (b))
#define DMC_CHECK_GE(a, b) DMC_CHECK((a) >= (b))

namespace internal_logging {

// Allows DMC_CHECK to appear where a void expression is required while
// still supporting `DMC_CHECK(x) << "detail"`.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging

}  // namespace dmc

#endif  // DMC_UTIL_LOGGING_H_
