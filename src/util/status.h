// Minimal Status / error-code type used across the DMC library.
//
// The library does not use exceptions (matching the style of large C++
// database codebases); fallible operations return Status or StatusOr<T>.

#ifndef DMC_UTIL_STATUS_H_
#define DMC_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace dmc {

// Broad error categories, deliberately small. Mirrors the usual
// absl/leveldb vocabulary that downstream users expect.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kIOError = 3,
  kResourceExhausted = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kUnimplemented = 7,
  kCancelled = 8,
  /// Unrecoverable corruption or truncation of persisted data (bad
  /// checksum, malformed checkpoint, torn file).
  kDataLoss = 9,
};

/// Returns a stable human-readable name for `code` ("OK", "InvalidArgument",
/// ...).
const char* StatusCodeToString(StatusCode code);

/// Value-type status: either OK, or an error code plus message.
///
/// Cheap to copy in the OK case (no allocation); error states carry a
/// std::string message.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Factory helpers, one per error category.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status IOError(std::string message);
Status ResourceExhaustedError(std::string message);
Status FailedPreconditionError(std::string message);
Status InternalError(std::string message);
Status UnimplementedError(std::string message);
Status CancelledError(std::string message);
Status DataLossError(std::string message);

/// Propagates a non-OK status to the caller. Usable only in functions
/// returning Status.
#define DMC_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::dmc::Status _dmc_status = (expr);        \
    if (!_dmc_status.ok()) return _dmc_status; \
  } while (false)

}  // namespace dmc

#endif  // DMC_UTIL_STATUS_H_
