// Zipf / power-law samplers.
//
// All four of the paper's data sets are heavy-tailed in column density
// (Fig. 4); the synthetic generators reproduce that with Zipf-distributed
// popularity and discrete power-law degree distributions.

#ifndef DMC_UTIL_ZIPF_H_
#define DMC_UTIL_ZIPF_H_

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace dmc {

/// Samples ranks in [0, n) with probability proportional to
/// 1 / (rank+1)^theta. Uses an exact inverse-CDF table (built once; O(n)
/// memory, O(log n) per sample), which is fine at the library's scales and
/// keeps sampling deterministic across platforms.
class ZipfSampler {
 public:
  /// `n` must be >= 1; `theta` >= 0 (0 = uniform).
  ZipfSampler(uint64_t n, double theta);

  /// Returns a rank in [0, n); rank 0 is the most popular.
  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

  /// Probability mass of `rank`.
  double Pmf(uint64_t rank) const;

 private:
  uint64_t n_;
  double theta_;
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i)
};

/// Samples a discrete power-law value k in [k_min, k_max] with
/// P(k) ~ k^-alpha. Used for degree / row-density distributions.
class PowerLawSampler {
 public:
  PowerLawSampler(uint64_t k_min, uint64_t k_max, double alpha);

  uint64_t Sample(Rng& rng) const;

  uint64_t k_min() const { return k_min_; }
  uint64_t k_max() const { return k_max_; }

 private:
  uint64_t k_min_;
  uint64_t k_max_;
  std::vector<double> cdf_;  // over k_min..k_max inclusive
};

}  // namespace dmc

#endif  // DMC_UTIL_ZIPF_H_
