#include "incr/window_miner.h"

#include <utility>

#include "observe/metrics.h"

namespace dmc {

namespace {

void RecordSlide(MetricsRegistry* metrics, uint64_t rows_evicted) {
  if (metrics == nullptr) return;
  metrics->IncrCounter("dmc.window.slides");
  metrics->IncrCounter("dmc.window.rows_evicted", rows_evicted);
}

}  // namespace

// ---------------------------------------------------------------------
// Implications
// ---------------------------------------------------------------------

WindowedImplicationMiner::WindowedImplicationMiner(
    ImplicationMiningOptions options, uint64_t window_rows,
    ColumnId num_columns)
    : window_rows_(window_rows),
      miner_(std::move(options), num_columns) {}

StatusOr<WindowedImplicationMiner> WindowedImplicationMiner::FromBatchMine(
    const BinaryMatrix& initial, const ImplicationMiningOptions& options,
    uint64_t window_rows, MiningStats* stats) {
  DMC_ASSIGN_OR_RETURN(
      IncrementalImplicationMiner inner,
      IncrementalImplicationMiner::FromBatchMine(initial, options, stats));
  WindowedImplicationMiner miner(options, window_rows,
                                 initial.num_columns());
  miner.miner_ = std::move(inner);
  DMC_RETURN_IF_ERROR(miner.SlideToWindow(nullptr));
  return miner;
}

Status WindowedImplicationMiner::SlideToWindow(IncrEvictStats* stats) {
  IncrEvictStats local;
  if (window_rows_ > 0 && miner_.num_rows() > window_rows_) {
    const uint64_t overflow = miner_.num_rows() - window_rows_;
    DMC_RETURN_IF_ERROR(miner_.EvictBatch(overflow, &local));
    RecordSlide(miner_.options().policy.observe.metrics, overflow);
  }
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

Status WindowedImplicationMiner::AppendBatch(const BinaryMatrix& delta,
                                             IncrAppendStats* append_stats,
                                             IncrEvictStats* evict_stats) {
  DMC_RETURN_IF_ERROR(miner_.AppendBatch(delta, append_stats));
  return SlideToWindow(evict_stats);
}

Status WindowedImplicationMiner::EvictBatch(uint64_t k,
                                            IncrEvictStats* stats) {
  return miner_.EvictBatch(k, stats);
}

// ---------------------------------------------------------------------
// Similarities
// ---------------------------------------------------------------------

WindowedSimilarityMiner::WindowedSimilarityMiner(
    SimilarityMiningOptions options, uint64_t window_rows,
    ColumnId num_columns)
    : window_rows_(window_rows),
      miner_(std::move(options), num_columns) {}

StatusOr<WindowedSimilarityMiner> WindowedSimilarityMiner::FromBatchMine(
    const BinaryMatrix& initial, const SimilarityMiningOptions& options,
    uint64_t window_rows, MiningStats* stats) {
  DMC_ASSIGN_OR_RETURN(
      IncrementalSimilarityMiner inner,
      IncrementalSimilarityMiner::FromBatchMine(initial, options, stats));
  WindowedSimilarityMiner miner(options, window_rows, initial.num_columns());
  miner.miner_ = std::move(inner);
  DMC_RETURN_IF_ERROR(miner.SlideToWindow(nullptr));
  return miner;
}

Status WindowedSimilarityMiner::SlideToWindow(IncrEvictStats* stats) {
  IncrEvictStats local;
  if (window_rows_ > 0 && miner_.num_rows() > window_rows_) {
    const uint64_t overflow = miner_.num_rows() - window_rows_;
    DMC_RETURN_IF_ERROR(miner_.EvictBatch(overflow, &local));
    RecordSlide(miner_.options().policy.observe.metrics, overflow);
  }
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

Status WindowedSimilarityMiner::AppendBatch(const BinaryMatrix& delta,
                                            IncrAppendStats* append_stats,
                                            IncrEvictStats* evict_stats) {
  DMC_RETURN_IF_ERROR(miner_.AppendBatch(delta, append_stats));
  return SlideToWindow(evict_stats);
}

Status WindowedSimilarityMiner::EvictBatch(uint64_t k,
                                           IncrEvictStats* stats) {
  return miner_.EvictBatch(k, stats);
}

}  // namespace dmc
