// Sliding-window mining — the count-bounded convenience layer over the
// incremental miners (DESIGN §5.10).
//
// A windowed miner is an incremental miner plus a row budget: every
// AppendBatch that pushes the live row count past `window_rows`
// immediately evicts the overflow from the front, so rules() always
// reflects exactly the newest `window_rows` rows of the feed — the
// "last N rows" monitoring/CEP scenario of ROADMAP item 2. With
// window_rows == 0 the window is unbounded and the wrapper degrades to
// the plain incremental miner (EvictBatch stays available for explicit
// trims either way).
//
// Exactness is inherited: AppendBatch and EvictBatch are each
// byte-identical to a fresh mine of the resulting window contents
// (rules and memory accounting — see incr_miner.h), so any interleaving
// of the two is as well.
//
// Observability: each automatic slide records dmc.window.slides and
// dmc.window.rows_evicted on top of the inner miner's dmc.incr.* and
// dmc.incr.evict.* counters.

#ifndef DMC_INCR_WINDOW_MINER_H_
#define DMC_INCR_WINDOW_MINER_H_

#include <cstdint>

#include "incr/incr_miner.h"

namespace dmc {

/// Count-bounded sliding-window implication miner.
class WindowedImplicationMiner {
 public:
  /// Empty window. `window_rows` == 0 means unbounded.
  explicit WindowedImplicationMiner(ImplicationMiningOptions options,
                                    uint64_t window_rows = 0,
                                    ColumnId num_columns = 0);

  /// Seeds from a batch mine of `initial`, then trims the overflow so
  /// the window invariant holds from the start.
  static StatusOr<WindowedImplicationMiner> FromBatchMine(
      const BinaryMatrix& initial, const ImplicationMiningOptions& options,
      uint64_t window_rows = 0, MiningStats* stats = nullptr);

  /// Appends `delta`, then auto-evicts any overflow past window_rows().
  /// `evict_stats`, when non-null, receives the slide's breakdown
  /// (zeroed when no slide was needed).
  [[nodiscard]] Status AppendBatch(const BinaryMatrix& delta,
                                   IncrAppendStats* append_stats = nullptr,
                                   IncrEvictStats* evict_stats = nullptr);

  /// Explicitly evicts the oldest `k` rows (same contract as the inner
  /// miner's EvictBatch).
  [[nodiscard]] Status EvictBatch(uint64_t k,
                                  IncrEvictStats* stats = nullptr);

  const ImplicationRuleSet& rules() const { return miner_.rules(); }
  uint64_t num_rows() const { return miner_.num_rows(); }
  ColumnId num_columns() const { return miner_.num_columns(); }
  uint64_t window_rows() const { return window_rows_; }
  const IncrCumulativeStats& cumulative() const {
    return miner_.cumulative();
  }
  size_t MemoryBytes() const { return miner_.MemoryBytes(); }

 private:
  Status SlideToWindow(IncrEvictStats* stats);

  uint64_t window_rows_ = 0;
  IncrementalImplicationMiner miner_;
};

/// Count-bounded sliding-window similarity miner; same contract as
/// WindowedImplicationMiner with the similarity engine underneath.
class WindowedSimilarityMiner {
 public:
  explicit WindowedSimilarityMiner(SimilarityMiningOptions options,
                                   uint64_t window_rows = 0,
                                   ColumnId num_columns = 0);

  static StatusOr<WindowedSimilarityMiner> FromBatchMine(
      const BinaryMatrix& initial, const SimilarityMiningOptions& options,
      uint64_t window_rows = 0, MiningStats* stats = nullptr);

  [[nodiscard]] Status AppendBatch(const BinaryMatrix& delta,
                                   IncrAppendStats* append_stats = nullptr,
                                   IncrEvictStats* evict_stats = nullptr);

  [[nodiscard]] Status EvictBatch(uint64_t k,
                                  IncrEvictStats* stats = nullptr);

  const SimilarityRuleSet& pairs() const { return miner_.pairs(); }
  uint64_t num_rows() const { return miner_.num_rows(); }
  ColumnId num_columns() const { return miner_.num_columns(); }
  uint64_t window_rows() const { return window_rows_; }
  const IncrCumulativeStats& cumulative() const {
    return miner_.cumulative();
  }
  size_t MemoryBytes() const { return miner_.MemoryBytes(); }

 private:
  Status SlideToWindow(IncrEvictStats* stats);

  uint64_t window_rows_ = 0;
  IncrementalSimilarityMiner miner_;
};

}  // namespace dmc

#endif  // DMC_INCR_WINDOW_MINER_H_
