// Column postings — the counting state the incremental engine persists
// between batches.
//
// For every column, the sorted list of global row ids carrying a 1. This
// is the matrix in column-major (inverted-index) form: appending a batch
// extends each touched column's list with strictly larger row ids, so a
// list stays sorted by construction and any suffix of it is exactly the
// rows contributed by the batches appended after a recorded boundary.
// Intersections of two lists (or two suffixes) therefore reuse the
// sorted-set kernels from core/kernels.h unchanged — RowId and ColumnId
// are the same integer type.

#ifndef DMC_INCR_POSTINGS_H_
#define DMC_INCR_POSTINGS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/dmc_options.h"
#include "matrix/binary_matrix.h"

namespace dmc {

class ColumnPostings {
 public:
  ColumnPostings() = default;
  explicit ColumnPostings(ColumnId num_columns) : postings_(num_columns) {}

  /// Appends every row of `delta`; row r becomes global row
  /// num_rows() + r. Grows the column count when the batch is wider.
  void Append(const BinaryMatrix& delta);

  ColumnId num_columns() const {
    return static_cast<ColumnId>(postings_.size());
  }
  uint64_t num_rows() const { return num_rows_; }

  /// ones(c): rows with a 1 in column c.
  uint32_t ones(ColumnId c) const {
    return c < postings_.size()
               ? static_cast<uint32_t>(postings_[c].size())
               : 0;
  }

  /// All row ids of column c, ascending.
  std::span<const RowId> rows(ColumnId c) const {
    if (c >= postings_.size()) return {};
    return std::span<const RowId>(postings_[c]);
  }

  /// The rows of column c past a recorded boundary: entries at index
  /// >= `from` (an earlier ones(c) value). Exactly the rows appended
  /// since that boundary.
  std::span<const RowId> suffix(ColumnId c, uint32_t from) const {
    const std::span<const RowId> all = rows(c);
    return from >= all.size() ? std::span<const RowId>{} : all.subspan(from);
  }

  /// Heap bytes held by the posting lists.
  size_t MemoryBytes() const;

 private:
  uint64_t num_rows_ = 0;
  std::vector<std::vector<RowId>> postings_;
};

/// |rows(a) ∩ rows(b)| via the core sorted-set kernels. `kernel` must be
/// resolved (no kAuto); kLegacy counts as kScalar, as in the batch scan.
uint32_t IntersectPostings(std::span<const RowId> a, std::span<const RowId> b,
                           MergeKernel kernel);

}  // namespace dmc

#endif  // DMC_INCR_POSTINGS_H_
