// Column postings — the counting state the incremental engine persists
// between batches.
//
// For every column, the set of global row ids carrying a 1, held as a
// hybrid PostingContainer (array/bitmap/run chunks). This is the matrix
// in column-major (inverted-index) form: appending a batch extends each
// touched column's container with strictly larger row ids, so dense
// regions compress to bitmap or run chunks while sparse regions stay
// arrays. Any index suffix of a container is exactly the rows
// contributed by the batches appended after a recorded boundary, which
// SuffixIntersectOnes exploits via rank/select instead of re-decoding.

#ifndef DMC_INCR_POSTINGS_H_
#define DMC_INCR_POSTINGS_H_

#include <cstdint>
#include <vector>

#include "matrix/binary_matrix.h"
#include "postings/posting_container.h"

namespace dmc {

class ColumnPostings {
 public:
  ColumnPostings() = default;
  explicit ColumnPostings(ColumnId num_columns) : postings_(num_columns) {}

  /// Appends every row of `delta`; row r becomes global row
  /// num_rows() + r. Grows the column count when the batch is wider.
  void Append(const BinaryMatrix& delta);

  /// Evicts the oldest `k` rows (global ids < k) and renumbers the
  /// survivors down by k, so ids stay 0..num_rows()-1. The column count
  /// is sticky: a column whose every row was evicted keeps its (empty)
  /// container. Precondition: k <= num_rows().
  void EvictPrefix(uint64_t k);

  ColumnId num_columns() const {
    return static_cast<ColumnId>(postings_.size());
  }
  uint64_t num_rows() const { return num_rows_; }

  /// ones(c): rows with a 1 in column c.
  uint32_t ones(ColumnId c) const {
    return c < postings_.size()
               ? static_cast<uint32_t>(postings_[c].cardinality())
               : 0;
  }

  /// |{rows(c) < bound}| — how many of column c's ones fall in the
  /// window prefix an eviction would drop.
  uint32_t PrefixOnes(ColumnId c, uint32_t bound) const {
    return c < postings_.size()
               ? static_cast<uint32_t>(postings_[c].Rank(bound))
               : 0;
  }

  /// |{rows(a) ∩ rows(b) : row < bound}| — the co-occurrences an
  /// eviction of rows [0, bound) removes from the pair.
  uint32_t PrefixIntersectOnes(ColumnId a, ColumnId b, uint32_t bound) const;

  /// The full posting set of column c.
  const PostingContainer& rows(ColumnId c) const { return postings_[c]; }

  /// |rows(a) ∩ rows(b)|.
  uint32_t IntersectOnes(ColumnId a, ColumnId b) const;

  /// Intersection of the two columns restricted to their suffixes past
  /// recorded boundaries: entries at index >= `from_*` (earlier ones()
  /// values) — exactly the rows appended since those boundaries.
  uint32_t SuffixIntersectOnes(ColumnId a, uint32_t from_a, ColumnId b,
                               uint32_t from_b) const;

  /// Heap bytes held by the posting containers.
  size_t MemoryBytes() const;

 private:
  uint64_t num_rows_ = 0;
  std::vector<PostingContainer> postings_;
};

}  // namespace dmc

#endif  // DMC_INCR_POSTINGS_H_
