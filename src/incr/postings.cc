#include "incr/postings.h"

namespace dmc {

void ColumnPostings::Append(const BinaryMatrix& delta) {
  if (delta.num_columns() > postings_.size()) {
    // Widen with exact capacity (a plain resize() grows geometrically):
    // the container vector's footprint must depend only on the current
    // column count, never the widening history, so a windowed miner's
    // MemoryBytes() stays byte-identical to a fresh mine of the window.
    std::vector<PostingContainer> wider;
    wider.reserve(delta.num_columns());
    for (PostingContainer& p : postings_) wider.push_back(std::move(p));
    wider.resize(delta.num_columns());
    postings_ = std::move(wider);
  }
  for (RowId r = 0; r < delta.num_rows(); ++r) {
    const RowId global = static_cast<RowId>(num_rows_ + r);
    for (const ColumnId c : delta.Row(r)) {
      postings_[c].Append(global);
    }
  }
  num_rows_ += delta.num_rows();
}

void ColumnPostings::EvictPrefix(uint64_t k) {
  if (k == 0) return;
  const uint32_t bound = static_cast<uint32_t>(k);
  for (PostingContainer& p : postings_) p.EvictBelowAndShift(bound);
  num_rows_ -= k;
}

uint32_t ColumnPostings::PrefixIntersectOnes(ColumnId a, ColumnId b,
                                             uint32_t bound) const {
  if (a >= postings_.size() || b >= postings_.size()) return 0;
  return static_cast<uint32_t>(
      postings_[a].IntersectCountBelow(bound, postings_[b]));
}

uint32_t ColumnPostings::IntersectOnes(ColumnId a, ColumnId b) const {
  if (a >= postings_.size() || b >= postings_.size()) return 0;
  return static_cast<uint32_t>(postings_[a].IntersectCount(postings_[b]));
}

uint32_t ColumnPostings::SuffixIntersectOnes(ColumnId a, uint32_t from_a,
                                             ColumnId b,
                                             uint32_t from_b) const {
  if (a >= postings_.size() || b >= postings_.size()) return 0;
  return static_cast<uint32_t>(
      postings_[a].SuffixIntersectCount(from_a, postings_[b], from_b));
}

size_t ColumnPostings::MemoryBytes() const {
  size_t bytes = postings_.capacity() * sizeof(PostingContainer);
  for (const auto& list : postings_) bytes += list.MemoryBytes();
  return bytes;
}

}  // namespace dmc
