#include "incr/postings.h"

#include "core/kernels.h"

namespace dmc {

void ColumnPostings::Append(const BinaryMatrix& delta) {
  if (delta.num_columns() > postings_.size()) {
    postings_.resize(delta.num_columns());
  }
  for (RowId r = 0; r < delta.num_rows(); ++r) {
    const RowId global = static_cast<RowId>(num_rows_ + r);
    for (const ColumnId c : delta.Row(r)) {
      postings_[c].push_back(global);
    }
  }
  num_rows_ += delta.num_rows();
}

size_t ColumnPostings::MemoryBytes() const {
  size_t bytes = postings_.capacity() * sizeof(std::vector<RowId>);
  for (const auto& list : postings_) {
    bytes += list.capacity() * sizeof(RowId);
  }
  return bytes;
}

uint32_t IntersectPostings(std::span<const RowId> a, std::span<const RowId> b,
                           MergeKernel kernel) {
  return static_cast<uint32_t>(kernels::IntersectCount(
      a.data(), a.size(), b.data(), b.size(), kernel));
}

}  // namespace dmc
