#include "incr/postings.h"

namespace dmc {

void ColumnPostings::Append(const BinaryMatrix& delta) {
  if (delta.num_columns() > postings_.size()) {
    postings_.resize(delta.num_columns());
  }
  for (RowId r = 0; r < delta.num_rows(); ++r) {
    const RowId global = static_cast<RowId>(num_rows_ + r);
    for (const ColumnId c : delta.Row(r)) {
      postings_[c].Append(global);
    }
  }
  num_rows_ += delta.num_rows();
}

uint32_t ColumnPostings::IntersectOnes(ColumnId a, ColumnId b) const {
  if (a >= postings_.size() || b >= postings_.size()) return 0;
  return static_cast<uint32_t>(postings_[a].IntersectCount(postings_[b]));
}

uint32_t ColumnPostings::SuffixIntersectOnes(ColumnId a, uint32_t from_a,
                                             ColumnId b,
                                             uint32_t from_b) const {
  if (a >= postings_.size() || b >= postings_.size()) return 0;
  return static_cast<uint32_t>(
      postings_[a].SuffixIntersectCount(from_a, postings_[b], from_b));
}

size_t ColumnPostings::MemoryBytes() const {
  size_t bytes = postings_.capacity() * sizeof(PostingContainer);
  for (const auto& list : postings_) bytes += list.MemoryBytes();
  return bytes;
}

}  // namespace dmc
