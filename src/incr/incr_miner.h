// Incremental append-batch mining (DESIGN §5.5).
//
// The paper's miss-counting invariant — miss(c_i => c_j) only grows as
// rows arrive, and a candidate dies permanently once it exceeds its
// budget — makes the mined rule set *incrementally maintainable*: after
// a batch mine, keep (a) the column postings (incr/postings.h) and
// (b) the current rule set with its exact counts, and an appended batch
// of rows can be absorbed without re-reading the old data.
//
// AppendBatch(delta) runs the paper's two-pass structure per batch:
//
//   1. UPDATE — every currently-held rule's unordered column pair gains
//      exactly |delta rows where both columns are 1| intersections,
//      computed by intersecting the two posting-list *suffixes* that the
//      batch appended (the stored rule already carries the exact counts
//      at the previous boundary). The pair is re-oriented sparser-first
//      under the new 1-counts and re-tested against the exact integer
//      budget (core/thresholds.h); a pair over budget is killed on the
//      spot and never resurrected.
//   2. REGENERATE — rules that newly clear the threshold can only come
//      from pairs that co-occur in the delta (proof below), so one pass
//      enumerates the 2-subsets of the delta rows, deduplicates them,
//      skips the pairs step 1 already decided, and evaluates the rest
//      exactly against the full posting lists. DMC-sim's §5.1 density
//      screen (negative pair budget) prunes hopeless pairs before any
//      intersection is computed.
//
// Why the delta pass is exact (miss monotonicity): consider an unordered
// pair at two boundaries t < t'. Appending one row changes the pair's
// state in only three ways — a row where neither column is 1 changes
// nothing; a row where exactly one is 1 adds a miss for one direction
// (and shrinks Jaccard: the union grows, the intersection does not); a
// row where both are 1 is the only event that adds an intersection. For
// implications the sparser-first direction needs at least
// g(n) = n - floor((1-minconf)*n + eps) hits with n = min(ones_i,
// ones_j), and g is non-decreasing in n while n itself never shrinks —
// so a pair failing at t (I_t < g(n_t)) and holding at t'
// (I_t' >= g(n_t') >= g(n_t)) must have I_t' > I_t: it co-occurred in
// the delta. For similarity the same holds directly on Jaccard, which
// only increases via co-occurrence rows. Hence step 2's candidate set
// (pairs co-occurring in the delta) covers every possible resurrection,
// and both steps evaluate the exact predicate — the final rule set is
// byte-identical to a fresh batch mine of the concatenated matrix
// (tests/incr_differential_test.cc proves this property).
//
// EvictBatch(k) extends the invariant to deletions with the mirror-image
// two-pass structure: every held rule's counts lose exactly the evicted
// prefix's contribution (|{rows < k where both columns are 1}|, counted
// from the posting prefixes), and the regeneration pass only needs pairs
// with at least one evicted one — evicting a row where neither or both
// columns are 1 can never flip a failing pair to passing (the dual of
// miss monotonicity; proof sketch in DESIGN §5.10). All decisions are
// made against the pre-trim postings, then the prefix is trimmed and the
// surviving row ids renumbered down by k, so the state is byte-identical
// — rules and memory accounting — to a fresh mine of the window contents
// (tests/window_differential_test.cc proves this property).
//
// Determinism: all state lives in sorted vectors (postings, canonical
// rule sets, sorted/uniqued pair keys) — no hash containers — so equal
// inputs give byte-identical outputs, run to run.

#ifndef DMC_INCR_INCR_MINER_H_
#define DMC_INCR_INCR_MINER_H_

#include <cstdint>

#include "core/dmc_options.h"
#include "core/mining_stats.h"
#include "incr/postings.h"
#include "matrix/binary_matrix.h"
#include "rules/rule_set.h"
#include "util/status.h"
#include "util/statusor.h"

namespace dmc {

/// Per-AppendBatch breakdown.
struct IncrAppendStats {
  uint64_t rows_appended = 0;
  /// Previously-held rules re-evaluated by the update pass.
  uint64_t rules_updated = 0;
  /// Rules dropped because the batch pushed them over budget.
  uint64_t candidates_killed = 0;
  /// Rules added by the regeneration pass (pairs that newly clear the
  /// threshold thanks to delta co-occurrences).
  uint64_t candidates_revived = 0;
  /// Distinct co-occurring delta pairs the regeneration pass examined.
  uint64_t delta_pairs_examined = 0;
  double seconds = 0.0;
};

/// Per-EvictBatch breakdown (the append stats' mirror image).
struct IncrEvictStats {
  uint64_t rows_evicted = 0;
  /// Previously-held rules re-decided by the eviction update pass.
  uint64_t rules_updated = 0;
  /// Rules dropped because eviction took their last co-occurrences (or
  /// tightened the sparser column under them).
  uint64_t candidates_killed = 0;
  /// Pairs resurrected because eviction removed misses faster than hits
  /// (the dual of the append pass's revivals).
  uint64_t candidates_regenerated = 0;
  /// Candidate pairs the eviction regeneration pass examined.
  uint64_t regen_pairs_examined = 0;
  double seconds = 0.0;
};

/// Running totals across every AppendBatch/EvictBatch since
/// construction. Evict-side kills and regenerations fold into
/// candidates_killed / candidates_revived: they mutate the same
/// candidate state.
struct IncrCumulativeStats {
  uint64_t batches = 0;
  uint64_t rows_total = 0;
  uint64_t candidates_killed = 0;
  uint64_t candidates_revived = 0;
  uint64_t evict_batches = 0;
  uint64_t rows_evicted = 0;
};

/// Incrementally maintained implication-rule miner. Construct empty (or
/// seed from a batch mine), then AppendBatch row deltas; rules() is
/// always exactly MineImplications over the concatenation of everything
/// appended so far.
class IncrementalImplicationMiner {
 public:
  /// Empty state: zero rows, no rules. `num_columns` may be 0 — the
  /// column count grows to fit the widest appended batch.
  explicit IncrementalImplicationMiner(ImplicationMiningOptions options,
                                       ColumnId num_columns = 0);

  /// Seeds from a batch mine of `initial` (the snapshot-after-batch-mine
  /// entry point): runs MineImplications with `options`, keeps its rule
  /// set as the live candidate state and builds the postings in one row
  /// sweep. `stats`, when non-null, receives the batch engine's
  /// breakdown.
  static StatusOr<IncrementalImplicationMiner> FromBatchMine(
      const BinaryMatrix& initial, const ImplicationMiningOptions& options,
      MiningStats* stats = nullptr);

  /// Absorbs `delta` (its rows become rows [num_rows(),
  /// num_rows() + delta rows)). On error (invalid options, injected
  /// fault at site "incr.append") the state is untouched. Observability:
  /// spans incr/append_batch, incr/update, incr/regen and counters
  /// dmc.incr.batches / dmc.incr.rows_appended /
  /// dmc.incr.candidates_killed / dmc.incr.candidates_revived flow
  /// through options.policy.observe.
  [[nodiscard]] Status AppendBatch(const BinaryMatrix& delta,
                                   IncrAppendStats* stats = nullptr);

  /// Evicts the oldest `k` rows (the window's prefix) and renumbers the
  /// survivors, leaving rules() exactly MineImplications over the
  /// surviving rows. k == 0 is a no-op; k > num_rows() is an error and,
  /// like an injected fault at site "incr.evict", leaves the state
  /// untouched. The column count is sticky (never shrinks).
  /// Observability: spans incr/evict_batch, incr/evict_update,
  /// incr/evict_regen and counters dmc.incr.evict.*.
  [[nodiscard]] Status EvictBatch(uint64_t k,
                                  IncrEvictStats* stats = nullptr);

  /// The current rule set, canonical, with exact counts.
  const ImplicationRuleSet& rules() const { return rules_; }

  uint64_t num_rows() const { return postings_.num_rows(); }
  ColumnId num_columns() const { return postings_.num_columns(); }
  const ImplicationMiningOptions& options() const { return options_; }
  const IncrCumulativeStats& cumulative() const { return cumulative_; }
  /// Heap bytes of the persistent counting state.
  size_t MemoryBytes() const { return postings_.MemoryBytes(); }

 private:
  ImplicationMiningOptions options_;
  ColumnPostings postings_;
  ImplicationRuleSet rules_;
  IncrCumulativeStats cumulative_;
};

/// Incrementally maintained similarity-pair miner; same contract as
/// IncrementalImplicationMiner with MineSimilarities as the reference.
class IncrementalSimilarityMiner {
 public:
  explicit IncrementalSimilarityMiner(SimilarityMiningOptions options,
                                      ColumnId num_columns = 0);

  static StatusOr<IncrementalSimilarityMiner> FromBatchMine(
      const BinaryMatrix& initial, const SimilarityMiningOptions& options,
      MiningStats* stats = nullptr);

  [[nodiscard]] Status AppendBatch(const BinaryMatrix& delta,
                                   IncrAppendStats* stats = nullptr);

  /// Same contract as IncrementalImplicationMiner::EvictBatch with
  /// MineSimilarities as the reference.
  [[nodiscard]] Status EvictBatch(uint64_t k,
                                  IncrEvictStats* stats = nullptr);

  const SimilarityRuleSet& pairs() const { return pairs_; }

  uint64_t num_rows() const { return postings_.num_rows(); }
  ColumnId num_columns() const { return postings_.num_columns(); }
  const SimilarityMiningOptions& options() const { return options_; }
  const IncrCumulativeStats& cumulative() const { return cumulative_; }
  size_t MemoryBytes() const { return postings_.MemoryBytes(); }

 private:
  SimilarityMiningOptions options_;
  ColumnPostings postings_;
  SimilarityRuleSet pairs_;
  IncrCumulativeStats cumulative_;
};

}  // namespace dmc

#endif  // DMC_INCR_INCR_MINER_H_
