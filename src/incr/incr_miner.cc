#include "incr/incr_miner.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/dmc_imp.h"
#include "core/dmc_sim.h"
#include "core/kernels.h"
#include "core/thresholds.h"
#include "observe/metrics.h"
#include "observe/trace.h"
#include "rules/rule.h"
#include "util/failpoint.h"
#include "util/stopwatch.h"

namespace dmc {

namespace {

// Unordered pair {u, v} (u != v) packed as (min << 32) | max, so pair
// sets are plain sorted uint64 vectors — deterministic and binary-
// searchable without hash containers.
uint64_t PairKey(ColumnId u, ColumnId v) {
  const ColumnId lo = u < v ? u : v;
  const ColumnId hi = u < v ? v : u;
  return (uint64_t{lo} << 32) | hi;
}

// Distinct unordered column pairs co-occurring in some delta row,
// ascending. Quadratic in row length — the delta is the small side of an
// append, and the batch engines remain the right tool for bulk loads.
std::vector<uint64_t> CoOccurringDeltaPairs(const BinaryMatrix& delta) {
  std::vector<uint64_t> keys;
  for (RowId r = 0; r < delta.num_rows(); ++r) {
    const auto row = delta.Row(r);
    for (size_t i = 0; i < row.size(); ++i) {
      for (size_t j = i + 1; j < row.size(); ++j) {
        keys.push_back(PairKey(row[i], row[j]));
      }
    }
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

bool Contains(const std::vector<uint64_t>& sorted, uint64_t key) {
  return std::binary_search(sorted.begin(), sorted.end(), key);
}

void RecordAppendMetrics(MetricsRegistry* metrics,
                         const IncrAppendStats& stats) {
  if (metrics == nullptr) return;
  metrics->IncrCounter("dmc.incr.batches");
  metrics->IncrCounter("dmc.incr.rows_appended", stats.rows_appended);
  metrics->IncrCounter("dmc.incr.candidates_killed",
                       stats.candidates_killed);
  metrics->IncrCounter("dmc.incr.candidates_revived",
                       stats.candidates_revived);
  metrics->RecordTimer("dmc.incr.append_seconds", stats.seconds);
}

}  // namespace

// ---------------------------------------------------------------------
// Implications
// ---------------------------------------------------------------------

IncrementalImplicationMiner::IncrementalImplicationMiner(
    ImplicationMiningOptions options, ColumnId num_columns)
    : options_(std::move(options)), postings_(num_columns) {}

StatusOr<IncrementalImplicationMiner>
IncrementalImplicationMiner::FromBatchMine(
    const BinaryMatrix& initial, const ImplicationMiningOptions& options,
    MiningStats* stats) {
  DMC_ASSIGN_OR_RETURN(ImplicationRuleSet rules,
                       MineImplications(initial, options, stats));
  IncrementalImplicationMiner miner(options, initial.num_columns());
  miner.postings_.Append(initial);
  miner.rules_ = std::move(rules);
  miner.cumulative_.rows_total = initial.num_rows();
  return miner;
}

Status IncrementalImplicationMiner::AppendBatch(const BinaryMatrix& delta,
                                                IncrAppendStats* stats) {
  const double minconf = options_.min_confidence;
  if (!(minconf > 0.0) || minconf > 1.0) {
    return InvalidArgumentError("min_confidence must be in (0, 1]");
  }
  if (fail::Enabled()) {
    DMC_RETURN_IF_ERROR(fail::InjectStatus("incr.append"));
  }
  const ObserveContext& obs = options_.policy.observe;
  ScopedSpan batch_span(obs.trace, "incr/append_batch", obs.trace_lane);
  Stopwatch timer;
  IncrAppendStats local;
  local.rows_appended = delta.num_rows();

  // Snapshot the per-column posting sizes: the entries past these
  // boundaries are exactly the delta's contribution.
  const ColumnId width =
      std::max(postings_.num_columns(), delta.num_columns());
  std::vector<uint32_t> old_ones(width);
  for (ColumnId c = 0; c < width; ++c) old_ones[c] = postings_.ones(c);
  postings_.Append(delta);

  // Update pass: re-decide every held rule under the new counts. The
  // stored rule carries the exact previous-boundary counts, so the new
  // intersection is old intersection + |delta co-occurrences|, and the
  // suffix intersection touches only the delta's rows.
  std::vector<uint64_t> decided;
  decided.reserve(rules_.size());
  ImplicationRuleSet next;
  {
    ScopedSpan span(obs.trace, "incr/update", obs.trace_lane);
    for (const ImplicationRule& r : rules_) {
      ++local.rules_updated;
      decided.push_back(PairKey(r.lhs, r.rhs));
      const uint32_t delta_inter = postings_.SuffixIntersectOnes(
          r.lhs, old_ones[r.lhs], r.rhs, old_ones[r.rhs]);
      const uint32_t inter = r.hits() + delta_inter;
      ColumnId lhs = r.lhs;
      ColumnId rhs = r.rhs;
      if (!SparserFirst(postings_.ones(lhs), lhs, postings_.ones(rhs),
                        rhs)) {
        std::swap(lhs, rhs);
      }
      const uint32_t lhs_ones = postings_.ones(lhs);
      const uint32_t misses = lhs_ones - inter;
      if (misses <= MaxMissesForConfidence(lhs_ones, minconf)) {
        next.Add(ImplicationRule{lhs, rhs, lhs_ones, misses});
      } else {
        ++local.candidates_killed;
      }
    }
  }
  std::sort(decided.begin(), decided.end());

  // Regeneration pass: only pairs with a delta co-occurrence can newly
  // clear the threshold (miss monotonicity; see incr_miner.h), and the
  // update pass already decided the held ones exactly.
  {
    ScopedSpan span(obs.trace, "incr/regen", obs.trace_lane);
    for (const uint64_t key : CoOccurringDeltaPairs(delta)) {
      if (Contains(decided, key)) continue;
      ++local.delta_pairs_examined;
      const ColumnId u = static_cast<ColumnId>(key >> 32);
      const ColumnId v = static_cast<ColumnId>(key & 0xffffffffu);
      ColumnId lhs = u;
      ColumnId rhs = v;
      if (!SparserFirst(postings_.ones(lhs), lhs, postings_.ones(rhs),
                        rhs)) {
        std::swap(lhs, rhs);
      }
      const uint32_t lhs_ones = postings_.ones(lhs);
      const int64_t budget = MaxMissesForConfidence(lhs_ones, minconf);
      // A pair needs at least lhs_ones - budget hits; with fewer total
      // rows in the denser column it can never qualify.
      const int64_t required_new = static_cast<int64_t>(lhs_ones) - budget;
      if (required_new > static_cast<int64_t>(postings_.ones(rhs))) {
        continue;
      }
      // Miss-monotonicity screen: the pair was NOT held at the previous
      // boundary, so its old intersection was at most
      // required_old - 1 hits (required(n) = n - budget(n) is the exact
      // hit floor for min-ones n, and required >= 1 whenever n >= 1).
      // Only the delta's co-occurrences can close the gap to the new
      // floor, and those are countable from the posting suffixes alone —
      // so most pairs skip the full-list intersection entirely.
      const uint32_t m_old = std::min(old_ones[u], old_ones[v]);
      const int64_t required_old =
          m_old == 0 ? 0
                     : static_cast<int64_t>(m_old) -
                           MaxMissesForConfidence(m_old, minconf);
      const uint32_t delta_inter = postings_.SuffixIntersectOnes(
          u, old_ones[u], v, old_ones[v]);
      if (static_cast<int64_t>(delta_inter) <
          required_new - required_old + (m_old > 0 ? 1 : 0)) {
        continue;
      }
      const uint32_t inter = postings_.IntersectOnes(lhs, rhs);
      const uint32_t misses = lhs_ones - inter;
      if (misses <= budget) {
        next.Add(ImplicationRule{lhs, rhs, lhs_ones, misses});
        ++local.candidates_revived;
      }
    }
  }

  next.Canonicalize();
  rules_ = std::move(next);

  ++cumulative_.batches;
  cumulative_.rows_total += local.rows_appended;
  cumulative_.candidates_killed += local.candidates_killed;
  cumulative_.candidates_revived += local.candidates_revived;
  local.seconds = timer.ElapsedSeconds();
  RecordAppendMetrics(obs.metrics, local);
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

// ---------------------------------------------------------------------
// Similarities
// ---------------------------------------------------------------------

IncrementalSimilarityMiner::IncrementalSimilarityMiner(
    SimilarityMiningOptions options, ColumnId num_columns)
    : options_(std::move(options)), postings_(num_columns) {}

StatusOr<IncrementalSimilarityMiner> IncrementalSimilarityMiner::FromBatchMine(
    const BinaryMatrix& initial, const SimilarityMiningOptions& options,
    MiningStats* stats) {
  DMC_ASSIGN_OR_RETURN(SimilarityRuleSet pairs,
                       MineSimilarities(initial, options, stats));
  IncrementalSimilarityMiner miner(options, initial.num_columns());
  miner.postings_.Append(initial);
  miner.pairs_ = std::move(pairs);
  miner.cumulative_.rows_total = initial.num_rows();
  return miner;
}

Status IncrementalSimilarityMiner::AppendBatch(const BinaryMatrix& delta,
                                               IncrAppendStats* stats) {
  const double minsim = options_.min_similarity;
  if (!(minsim > 0.0) || minsim > 1.0) {
    return InvalidArgumentError("min_similarity must be in (0, 1]");
  }
  if (fail::Enabled()) {
    DMC_RETURN_IF_ERROR(fail::InjectStatus("incr.append"));
  }
  const ObserveContext& obs = options_.policy.observe;
  ScopedSpan batch_span(obs.trace, "incr/append_batch", obs.trace_lane);
  Stopwatch timer;
  IncrAppendStats local;
  local.rows_appended = delta.num_rows();

  const ColumnId width =
      std::max(postings_.num_columns(), delta.num_columns());
  std::vector<uint32_t> old_ones(width);
  for (ColumnId c = 0; c < width; ++c) old_ones[c] = postings_.ones(c);
  postings_.Append(delta);

  std::vector<uint64_t> decided;
  decided.reserve(pairs_.size());
  SimilarityRuleSet next;
  {
    ScopedSpan span(obs.trace, "incr/update", obs.trace_lane);
    for (const SimilarityPair& p : pairs_) {
      ++local.rules_updated;
      decided.push_back(PairKey(p.a, p.b));
      const uint32_t delta_inter = postings_.SuffixIntersectOnes(
          p.a, old_ones[p.a], p.b, old_ones[p.b]);
      const uint32_t inter = p.intersection + delta_inter;
      ColumnId a = p.a;
      ColumnId b = p.b;
      if (!SparserFirst(postings_.ones(a), a, postings_.ones(b), b)) {
        std::swap(a, b);
      }
      const uint32_t ones_a = postings_.ones(a);
      const uint32_t ones_b = postings_.ones(b);
      const uint32_t misses = ones_a - inter;
      if (static_cast<int64_t>(misses) <=
          MaxMissesForSimilarity(ones_a, ones_b, minsim)) {
        next.Add(SimilarityPair{a, b, ones_a, ones_b, inter});
      } else {
        ++local.candidates_killed;
      }
    }
  }
  std::sort(decided.begin(), decided.end());

  {
    ScopedSpan span(obs.trace, "incr/regen", obs.trace_lane);
    for (const uint64_t key : CoOccurringDeltaPairs(delta)) {
      if (Contains(decided, key)) continue;
      ++local.delta_pairs_examined;
      const ColumnId u = static_cast<ColumnId>(key >> 32);
      const ColumnId v = static_cast<ColumnId>(key & 0xffffffffu);
      ColumnId a = u;
      ColumnId b = v;
      if (!SparserFirst(postings_.ones(a), a, postings_.ones(b), b)) {
        std::swap(a, b);
      }
      const uint32_t ones_a = postings_.ones(a);
      const uint32_t ones_b = postings_.ones(b);
      const int64_t budget = MaxMissesForSimilarity(ones_a, ones_b, minsim);
      // §5.1 density screen: a negative budget means ones_a/ones_b is
      // already below the threshold — no intersection needed.
      if (budget < 0) continue;
      // Miss-monotonicity screen, Jaccard flavor: the pair failed the
      // previous boundary, so its old intersection was below the old
      // required-hit floor (computed under the old sparser-first
      // orientation, exactly as the engine decided it back then); only
      // delta co-occurrences can close the gap to the new floor.
      const int64_t required_new = static_cast<int64_t>(ones_a) - budget;
      uint32_t old_a = old_ones[u];
      uint32_t old_b = old_ones[v];
      if (!SparserFirst(old_a, u, old_b, v)) std::swap(old_a, old_b);
      const int64_t required_old =
          old_a + old_b == 0
              ? 0
              : static_cast<int64_t>(old_a) -
                    MaxMissesForSimilarity(old_a, old_b, minsim);
      const uint32_t delta_inter = postings_.SuffixIntersectOnes(
          u, old_ones[u], v, old_ones[v]);
      if (static_cast<int64_t>(delta_inter) <
          required_new - required_old + (old_a + old_b > 0 ? 1 : 0)) {
        continue;
      }
      const uint32_t inter = postings_.IntersectOnes(a, b);
      const uint32_t misses = ones_a - inter;
      if (static_cast<int64_t>(misses) <= budget) {
        next.Add(SimilarityPair{a, b, ones_a, ones_b, inter});
        ++local.candidates_revived;
      }
    }
  }

  next.Canonicalize();
  pairs_ = std::move(next);

  ++cumulative_.batches;
  cumulative_.rows_total += local.rows_appended;
  cumulative_.candidates_killed += local.candidates_killed;
  cumulative_.candidates_revived += local.candidates_revived;
  local.seconds = timer.ElapsedSeconds();
  RecordAppendMetrics(obs.metrics, local);
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

}  // namespace dmc
