#include "incr/incr_miner.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/dmc_imp.h"
#include "core/dmc_sim.h"
#include "core/kernels.h"
#include "core/thresholds.h"
#include "observe/metrics.h"
#include "observe/trace.h"
#include "util/bitvector.h"
#include "rules/rule.h"
#include "util/failpoint.h"
#include "util/stopwatch.h"

namespace dmc {

namespace {

// Unordered pair {u, v} (u != v) packed as (min << 32) | max, so pair
// sets are plain sorted uint64 vectors — deterministic and binary-
// searchable without hash containers.
uint64_t PairKey(ColumnId u, ColumnId v) {
  const ColumnId lo = u < v ? u : v;
  const ColumnId hi = u < v ? v : u;
  return (uint64_t{lo} << 32) | hi;
}

// Distinct unordered column pairs co-occurring in some delta row, in
// first-seen order. Quadratic in row length — the delta is the small
// side of an append, and the batch engines remain the right tool for
// bulk loads. Dense deltas repeat the same pairs across rows, so for
// narrow matrices a width x width seen-byte table dedups in O(1) per
// occurrence; sorting the raw occurrence list would dominate the whole
// append on correlated data.
std::vector<uint64_t> CoOccurringDeltaPairs(const BinaryMatrix& delta) {
  std::vector<uint64_t> keys;
  const size_t width = delta.num_columns();
  constexpr size_t kSeenTableMaxColumns = 4096;  // 16 MB of flags
  if (width <= kSeenTableMaxColumns) {
    std::vector<uint8_t> seen(width * width, 0);
    for (RowId r = 0; r < delta.num_rows(); ++r) {
      const auto row = delta.Row(r);
      for (size_t i = 0; i < row.size(); ++i) {
        for (size_t j = i + 1; j < row.size(); ++j) {
          uint8_t& flag = seen[row[i] * width + row[j]];
          if (flag) continue;
          flag = 1;
          keys.push_back(PairKey(row[i], row[j]));
        }
      }
    }
    return keys;
  }
  for (RowId r = 0; r < delta.num_rows(); ++r) {
    const auto row = delta.Row(r);
    for (size_t i = 0; i < row.size(); ++i) {
      for (size_t j = i + 1; j < row.size(); ++j) {
        keys.push_back(PairKey(row[i], row[j]));
      }
    }
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

// Membership set for the pairs the update pass already decided, probed
// once per regen candidate. Narrow matrices get a width x width byte
// table (one predictable load per probe); wide ones fall back to a
// sorted key vector + binary search to keep memory bounded.
class DecidedPairs {
 public:
  static constexpr ColumnId kTableMaxColumns = 4096;  // 16 MB of flags

  DecidedPairs(ColumnId width, size_t expected) : width_(width) {
    if (width_ <= kTableMaxColumns) {
      table_.assign(size_t{width_} * width_, 0);
    } else {
      keys_.reserve(expected);
    }
  }

  void Add(ColumnId u, ColumnId v) {
    if (!table_.empty()) {
      table_[Index(u, v)] = 1;
    } else {
      keys_.push_back(PairKey(u, v));
    }
  }

  /// Call once between the update pass (Add) and the regen pass
  /// (Contains); no-op for the table representation.
  void Seal() {
    if (table_.empty()) std::sort(keys_.begin(), keys_.end());
  }

  bool Contains(ColumnId u, ColumnId v) const {
    if (!table_.empty()) return table_[Index(u, v)] != 0;
    return std::binary_search(keys_.begin(), keys_.end(), PairKey(u, v));
  }

 private:
  size_t Index(ColumnId u, ColumnId v) const {
    const ColumnId lo = u < v ? u : v;
    const ColumnId hi = u < v ? v : u;
    return size_t{lo} * width_ + hi;
  }

  ColumnId width_;
  std::vector<uint8_t> table_;
  std::vector<uint64_t> keys_;
};

// MaxMissesForConfidence for every reachable ones count: the implication
// regen passes evaluate two budgets per examined pair, and on dense
// windows that is T x width floating-point floors per batch — one small
// table turns them into indexed loads.
std::vector<int64_t> ConfidenceBudgetTable(uint64_t max_ones,
                                           double minconf) {
  std::vector<int64_t> table(max_ones + 1);
  for (uint64_t n = 0; n <= max_ones; ++n) {
    table[n] = MaxMissesForConfidence(static_cast<uint32_t>(n), minconf);
  }
  return table;
}

void RecordAppendMetrics(MetricsRegistry* metrics,
                         const IncrAppendStats& stats) {
  if (metrics == nullptr) return;
  metrics->IncrCounter("dmc.incr.batches");
  metrics->IncrCounter("dmc.incr.rows_appended", stats.rows_appended);
  metrics->IncrCounter("dmc.incr.candidates_killed",
                       stats.candidates_killed);
  metrics->IncrCounter("dmc.incr.candidates_revived",
                       stats.candidates_revived);
  metrics->RecordTimer("dmc.incr.append_seconds", stats.seconds);
}

void RecordEvictMetrics(MetricsRegistry* metrics,
                        const IncrEvictStats& stats) {
  if (metrics == nullptr) return;
  metrics->IncrCounter("dmc.incr.evict.batches");
  metrics->IncrCounter("dmc.incr.evict.rows_evicted", stats.rows_evicted);
  metrics->IncrCounter("dmc.incr.evict.candidates_killed",
                       stats.candidates_killed);
  metrics->IncrCounter("dmc.incr.evict.candidates_regenerated",
                       stats.candidates_regenerated);
  metrics->RecordTimer("dmc.incr.evict.seconds", stats.seconds);
}

// Distinct unordered pairs with at least one column losing ones to the
// evicted prefix. Only such pairs can resurrect: evicting a row where
// neither column is 1 changes nothing for the pair, and evicting both-1
// rows can never flip a failing pair to passing (DESIGN §5.10) — a
// resurrection needs an evicted row where exactly one column is 1, i.e.
// one column with prefix ones. Each pair is emitted exactly once (a
// pair losing ones on both sides comes from its lower endpoint), so no
// sort/unique dedup pass is needed — on dense windows nearly every
// column loses ones and that sort would dominate the eviction.
std::vector<uint64_t> EvictCandidatePairs(
    const std::vector<uint32_t>& prefix_ones, ColumnId width) {
  std::vector<uint64_t> keys;
  for (ColumnId t = 0; t < width; ++t) {
    if (prefix_ones[t] == 0) continue;
    for (ColumnId c = 0; c < width; ++c) {
      if (c == t) continue;
      if (c < t && prefix_ones[c] > 0) continue;
      keys.push_back(PairKey(t, c));
    }
  }
  return keys;
}

// Lazily-built per-column bitmaps of the rows at index >= bound (bit i
// == row bound + i): the surviving window during EvictBatch, the fresh
// delta during AppendBatch. Each per-pair exact count collapses to one
// word-parallel AndNotCount instead of a posting merge — the update and
// regen passes together push tens of thousands of pairs through those
// counts on dense windows. The transposition is worth it only while the
// full-width estimate stays small; past the budget (or on an empty
// suffix) the passes fall back to posting merges.
class SuffixBitmapCache {
 public:
  static constexpr size_t kBudgetBytes = size_t{32} << 20;

  SuffixBitmapCache(const ColumnPostings& postings, uint32_t bound,
                    uint64_t new_rows)
      : postings_(postings), bound_(bound), new_rows_(new_rows) {
    const size_t words = (new_rows + 63) / 64;
    usable_ =
        new_rows > 0 && words * 8 * postings.num_columns() <= kBudgetBytes;
    if (usable_) {
      bitmaps_.resize(postings.num_columns());
      built_.assign(postings.num_columns(), 0);
    }
  }

  bool usable() const { return usable_; }

  /// Misses of the oriented pair over the surviving window:
  /// |suffix(lhs) \ suffix(rhs)|.
  uint32_t SuffixMisses(ColumnId lhs, ColumnId rhs) {
    return static_cast<uint32_t>(Get(lhs).AndNotCount(Get(rhs)));
  }

  /// SuffixMisses with an early exit once the count exceeds `cap`;
  /// exact when the result is <= cap (see BitVector::AndNotCountCapped).
  uint32_t SuffixMissesCapped(ColumnId lhs, ColumnId rhs, uint32_t cap) {
    return static_cast<uint32_t>(Get(lhs).AndNotCountCapped(Get(rhs), cap));
  }

 private:
  const BitVector& Get(ColumnId c) {
    if (!built_[c]) {
      BitVector bits(new_rows_);
      postings_.rows(c).ForEach([&](uint32_t id) {
        if (id >= bound_) bits.Set(id - bound_);
      });
      bitmaps_[c] = std::move(bits);
      built_[c] = 1;
    }
    return bitmaps_[c];
  }

  const ColumnPostings& postings_;
  uint32_t bound_;
  uint64_t new_rows_;
  bool usable_ = false;
  std::vector<BitVector> bitmaps_;
  std::vector<uint8_t> built_;
};

}  // namespace

// ---------------------------------------------------------------------
// Implications
// ---------------------------------------------------------------------

IncrementalImplicationMiner::IncrementalImplicationMiner(
    ImplicationMiningOptions options, ColumnId num_columns)
    : options_(std::move(options)), postings_(num_columns) {}

StatusOr<IncrementalImplicationMiner>
IncrementalImplicationMiner::FromBatchMine(
    const BinaryMatrix& initial, const ImplicationMiningOptions& options,
    MiningStats* stats) {
  DMC_ASSIGN_OR_RETURN(ImplicationRuleSet rules,
                       MineImplications(initial, options, stats));
  IncrementalImplicationMiner miner(options, initial.num_columns());
  miner.postings_.Append(initial);
  miner.rules_ = std::move(rules);
  miner.cumulative_.rows_total = initial.num_rows();
  return miner;
}

Status IncrementalImplicationMiner::AppendBatch(const BinaryMatrix& delta,
                                                IncrAppendStats* stats) {
  const double minconf = options_.min_confidence;
  if (!(minconf > 0.0) || minconf > 1.0) {
    return InvalidArgumentError("min_confidence must be in (0, 1]");
  }
  if (fail::Enabled()) {
    DMC_RETURN_IF_ERROR(fail::InjectStatus("incr.append"));
  }
  const ObserveContext& obs = options_.policy.observe;
  ScopedSpan batch_span(obs.trace, "incr/append_batch", obs.trace_lane);
  Stopwatch timer;
  IncrAppendStats local;
  local.rows_appended = delta.num_rows();

  // Snapshot the per-column posting sizes: the entries past these
  // boundaries are exactly the delta's contribution.
  const ColumnId width =
      std::max(postings_.num_columns(), delta.num_columns());
  std::vector<uint32_t> old_ones(width);
  for (ColumnId c = 0; c < width; ++c) old_ones[c] = postings_.ones(c);
  const uint32_t rows_before = static_cast<uint32_t>(postings_.num_rows());
  postings_.Append(delta);
  SuffixBitmapCache bitmaps(postings_, rows_before,
                            postings_.num_rows() - rows_before);

  // Update pass: re-decide every held rule under the new counts. The
  // stored rule carries the exact previous-boundary counts, so the new
  // intersection is old intersection + |delta co-occurrences|, and the
  // suffix intersection touches only the delta's rows.
  DecidedPairs decided(width, rules_.size());
  ImplicationRuleSet next;
  {
    ScopedSpan span(obs.trace, "incr/update", obs.trace_lane);
    for (const ImplicationRule& r : rules_) {
      ++local.rules_updated;
      decided.Add(r.lhs, r.rhs);
      const uint32_t delta_inter =
          bitmaps.usable()
              ? postings_.ones(r.lhs) - old_ones[r.lhs] -
                    bitmaps.SuffixMisses(r.lhs, r.rhs)
              : postings_.SuffixIntersectOnes(r.lhs, old_ones[r.lhs], r.rhs,
                                              old_ones[r.rhs]);
      const uint32_t inter = r.hits() + delta_inter;
      ColumnId lhs = r.lhs;
      ColumnId rhs = r.rhs;
      if (!SparserFirst(postings_.ones(lhs), lhs, postings_.ones(rhs),
                        rhs)) {
        std::swap(lhs, rhs);
      }
      const uint32_t lhs_ones = postings_.ones(lhs);
      const uint32_t misses = lhs_ones - inter;
      if (misses <= MaxMissesForConfidence(lhs_ones, minconf)) {
        next.Add(ImplicationRule{lhs, rhs, lhs_ones, misses});
      } else {
        ++local.candidates_killed;
      }
    }
  }
  decided.Seal();

  // Regeneration pass: only pairs with a delta co-occurrence can newly
  // clear the threshold (miss monotonicity; see incr_miner.h), and the
  // update pass already decided the held ones exactly.
  {
    ScopedSpan span(obs.trace, "incr/regen", obs.trace_lane);
    const std::vector<int64_t> budgets =
        ConfidenceBudgetTable(num_rows(), minconf);
    for (const uint64_t key : CoOccurringDeltaPairs(delta)) {
      const ColumnId u = static_cast<ColumnId>(key >> 32);
      const ColumnId v = static_cast<ColumnId>(key & 0xffffffffu);
      if (decided.Contains(u, v)) continue;
      ++local.delta_pairs_examined;
      ColumnId lhs = u;
      ColumnId rhs = v;
      if (!SparserFirst(postings_.ones(lhs), lhs, postings_.ones(rhs),
                        rhs)) {
        std::swap(lhs, rhs);
      }
      const uint32_t lhs_ones = postings_.ones(lhs);
      const int64_t budget = budgets[lhs_ones];
      // A pair needs at least lhs_ones - budget hits; with fewer total
      // rows in the denser column it can never qualify.
      const int64_t required_new = static_cast<int64_t>(lhs_ones) - budget;
      if (required_new > static_cast<int64_t>(postings_.ones(rhs))) {
        continue;
      }
      // Miss-monotonicity screen: the pair was NOT held at the previous
      // boundary, so its old intersection was at most
      // required_old - 1 hits (required(n) = n - budget(n) is the exact
      // hit floor for min-ones n, and required >= 1 whenever n >= 1).
      // Only the delta's co-occurrences can close the gap to the new
      // floor, and those are countable from the posting suffixes alone —
      // so most pairs skip the full-list intersection entirely.
      const uint32_t m_old = std::min(old_ones[u], old_ones[v]);
      const int64_t required_old =
          m_old == 0 ? 0
                     : static_cast<int64_t>(m_old) - budgets[m_old];
      const uint32_t delta_inter =
          bitmaps.usable()
              ? postings_.ones(u) - old_ones[u] - bitmaps.SuffixMisses(u, v)
              : postings_.SuffixIntersectOnes(u, old_ones[u], v, old_ones[v]);
      if (static_cast<int64_t>(delta_inter) <
          required_new - required_old + (m_old > 0 ? 1 : 0)) {
        continue;
      }
      const uint32_t inter = postings_.IntersectOnes(lhs, rhs);
      const uint32_t misses = lhs_ones - inter;
      if (misses <= budget) {
        next.Add(ImplicationRule{lhs, rhs, lhs_ones, misses});
        ++local.candidates_revived;
      }
    }
  }

  next.Canonicalize();
  rules_ = std::move(next);

  ++cumulative_.batches;
  cumulative_.rows_total += local.rows_appended;
  cumulative_.candidates_killed += local.candidates_killed;
  cumulative_.candidates_revived += local.candidates_revived;
  local.seconds = timer.ElapsedSeconds();
  RecordAppendMetrics(obs.metrics, local);
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

Status IncrementalImplicationMiner::EvictBatch(uint64_t k,
                                               IncrEvictStats* stats) {
  const double minconf = options_.min_confidence;
  if (!(minconf > 0.0) || minconf > 1.0) {
    return InvalidArgumentError("min_confidence must be in (0, 1]");
  }
  if (k > num_rows()) {
    return InvalidArgumentError("EvictBatch: cannot evict more rows than "
                                "the window holds");
  }
  if (fail::Enabled()) {
    DMC_RETURN_IF_ERROR(fail::InjectStatus("incr.evict"));
  }
  IncrEvictStats local;
  local.rows_evicted = k;
  if (k == 0) {
    if (stats != nullptr) *stats = local;
    return Status::OK();
  }
  const ObserveContext& obs = options_.policy.observe;
  ScopedSpan batch_span(obs.trace, "incr/evict_batch", obs.trace_lane);
  Stopwatch timer;

  // All decisions run against the pre-trim postings: the prefix below
  // `bound` is exactly the evicted rows' contribution, and the suffix at
  // index >= prefix_ones[c] is exactly the surviving window.
  const uint32_t bound = static_cast<uint32_t>(k);
  const ColumnId width = postings_.num_columns();
  std::vector<uint32_t> old_ones(width);
  std::vector<uint32_t> prefix_ones(width);
  std::vector<uint32_t> new_ones(width);
  for (ColumnId c = 0; c < width; ++c) {
    old_ones[c] = postings_.ones(c);
    prefix_ones[c] = postings_.PrefixOnes(c, bound);
    new_ones[c] = old_ones[c] - prefix_ones[c];
  }
  SuffixBitmapCache bitmaps(postings_, bound, num_rows() - k);

  // Update pass: every held rule loses exactly the evicted prefix's
  // co-occurrences, then is re-oriented and re-tested under the new
  // counts.
  DecidedPairs decided(width, rules_.size());
  ImplicationRuleSet next;
  {
    ScopedSpan span(obs.trace, "incr/evict_update", obs.trace_lane);
    for (const ImplicationRule& r : rules_) {
      ++local.rules_updated;
      decided.Add(r.lhs, r.rhs);
      const uint32_t inter =
          bitmaps.usable()
              ? new_ones[r.lhs] - bitmaps.SuffixMisses(r.lhs, r.rhs)
              : r.hits() - postings_.PrefixIntersectOnes(r.lhs, r.rhs, bound);
      ColumnId lhs = r.lhs;
      ColumnId rhs = r.rhs;
      if (!SparserFirst(new_ones[lhs], lhs, new_ones[rhs], rhs)) {
        std::swap(lhs, rhs);
      }
      const uint32_t lhs_ones = new_ones[lhs];
      const uint32_t misses = lhs_ones - inter;
      // inter >= 1 mirrors the batch engines' candidate seeding: columns
      // that no longer co-occur in the window never form a rule there.
      if (inter >= 1 && misses <= MaxMissesForConfidence(lhs_ones, minconf)) {
        next.Add(ImplicationRule{lhs, rhs, lhs_ones, misses});
      } else {
        ++local.candidates_killed;
      }
    }
  }
  decided.Seal();

  // Regeneration pass: only pairs with an evicted one in at least one
  // column can newly clear the threshold (the dual of append-side miss
  // monotonicity; see the header), and the update pass already decided
  // the held ones exactly.
  {
    ScopedSpan span(obs.trace, "incr/evict_regen", obs.trace_lane);
    const std::vector<int64_t> budgets =
        ConfidenceBudgetTable(num_rows(), minconf);
    for (const uint64_t key : EvictCandidatePairs(prefix_ones, width)) {
      const ColumnId u = static_cast<ColumnId>(key >> 32);
      const ColumnId v = static_cast<ColumnId>(key & 0xffffffffu);
      if (decided.Contains(u, v)) continue;
      ++local.regen_pairs_examined;
      if (new_ones[u] == 0 || new_ones[v] == 0) continue;
      ColumnId lhs = u;
      ColumnId rhs = v;
      if (!SparserFirst(new_ones[lhs], lhs, new_ones[rhs], rhs)) {
        std::swap(lhs, rhs);
      }
      const uint32_t lhs_ones = new_ones[lhs];
      const int64_t budget = budgets[lhs_ones];
      const int64_t required_new = static_cast<int64_t>(lhs_ones) - budget;
      if (required_new > static_cast<int64_t>(new_ones[rhs])) continue;
      // Dual monotonicity screen: the pair was NOT held before, so its
      // intersection was at most max(required_old, 1) - 1 — and eviction
      // only shrinks intersections. It can qualify now only if eviction
      // lowered the effective hit floor, a counts-only test.
      const uint32_t m_old = std::min(old_ones[u], old_ones[v]);
      const int64_t required_old =
          m_old == 0 ? 0
                     : static_cast<int64_t>(m_old) - budgets[m_old];
      if (std::max<int64_t>(required_new, 1) >
          std::max<int64_t>(required_old, 1) - 1) {
        continue;
      }
      // The capped form is exact whenever the pair qualifies (misses <=
      // budget); an over-cap partial count only feeds the failing branch.
      const uint32_t misses =
          bitmaps.usable()
              ? bitmaps.SuffixMissesCapped(lhs, rhs,
                                           static_cast<uint32_t>(budget))
              : lhs_ones - postings_.SuffixIntersectOnes(u, prefix_ones[u],
                                                         v, prefix_ones[v]);
      const uint32_t inter = lhs_ones - misses;
      if (inter >= 1 && static_cast<int64_t>(misses) <= budget) {
        next.Add(ImplicationRule{lhs, rhs, lhs_ones, misses});
        ++local.candidates_regenerated;
      }
    }
  }

  next.Canonicalize();
  postings_.EvictPrefix(k);
  rules_ = std::move(next);

  ++cumulative_.evict_batches;
  cumulative_.rows_evicted += k;
  cumulative_.candidates_killed += local.candidates_killed;
  cumulative_.candidates_revived += local.candidates_regenerated;
  local.seconds = timer.ElapsedSeconds();
  RecordEvictMetrics(obs.metrics, local);
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

// ---------------------------------------------------------------------
// Similarities
// ---------------------------------------------------------------------

IncrementalSimilarityMiner::IncrementalSimilarityMiner(
    SimilarityMiningOptions options, ColumnId num_columns)
    : options_(std::move(options)), postings_(num_columns) {}

StatusOr<IncrementalSimilarityMiner> IncrementalSimilarityMiner::FromBatchMine(
    const BinaryMatrix& initial, const SimilarityMiningOptions& options,
    MiningStats* stats) {
  DMC_ASSIGN_OR_RETURN(SimilarityRuleSet pairs,
                       MineSimilarities(initial, options, stats));
  IncrementalSimilarityMiner miner(options, initial.num_columns());
  miner.postings_.Append(initial);
  miner.pairs_ = std::move(pairs);
  miner.cumulative_.rows_total = initial.num_rows();
  return miner;
}

Status IncrementalSimilarityMiner::AppendBatch(const BinaryMatrix& delta,
                                               IncrAppendStats* stats) {
  const double minsim = options_.min_similarity;
  if (!(minsim > 0.0) || minsim > 1.0) {
    return InvalidArgumentError("min_similarity must be in (0, 1]");
  }
  if (fail::Enabled()) {
    DMC_RETURN_IF_ERROR(fail::InjectStatus("incr.append"));
  }
  const ObserveContext& obs = options_.policy.observe;
  ScopedSpan batch_span(obs.trace, "incr/append_batch", obs.trace_lane);
  Stopwatch timer;
  IncrAppendStats local;
  local.rows_appended = delta.num_rows();

  const ColumnId width =
      std::max(postings_.num_columns(), delta.num_columns());
  std::vector<uint32_t> old_ones(width);
  for (ColumnId c = 0; c < width; ++c) old_ones[c] = postings_.ones(c);
  const uint32_t rows_before = static_cast<uint32_t>(postings_.num_rows());
  postings_.Append(delta);
  SuffixBitmapCache bitmaps(postings_, rows_before,
                            postings_.num_rows() - rows_before);

  DecidedPairs decided(width, pairs_.size());
  SimilarityRuleSet next;
  {
    ScopedSpan span(obs.trace, "incr/update", obs.trace_lane);
    for (const SimilarityPair& p : pairs_) {
      ++local.rules_updated;
      decided.Add(p.a, p.b);
      const uint32_t delta_inter =
          bitmaps.usable()
              ? postings_.ones(p.a) - old_ones[p.a] -
                    bitmaps.SuffixMisses(p.a, p.b)
              : postings_.SuffixIntersectOnes(p.a, old_ones[p.a], p.b,
                                              old_ones[p.b]);
      const uint32_t inter = p.intersection + delta_inter;
      ColumnId a = p.a;
      ColumnId b = p.b;
      if (!SparserFirst(postings_.ones(a), a, postings_.ones(b), b)) {
        std::swap(a, b);
      }
      const uint32_t ones_a = postings_.ones(a);
      const uint32_t ones_b = postings_.ones(b);
      const uint32_t misses = ones_a - inter;
      if (static_cast<int64_t>(misses) <=
          MaxMissesForSimilarity(ones_a, ones_b, minsim)) {
        next.Add(SimilarityPair{a, b, ones_a, ones_b, inter});
      } else {
        ++local.candidates_killed;
      }
    }
  }
  decided.Seal();

  {
    ScopedSpan span(obs.trace, "incr/regen", obs.trace_lane);
    for (const uint64_t key : CoOccurringDeltaPairs(delta)) {
      const ColumnId u = static_cast<ColumnId>(key >> 32);
      const ColumnId v = static_cast<ColumnId>(key & 0xffffffffu);
      if (decided.Contains(u, v)) continue;
      ++local.delta_pairs_examined;
      ColumnId a = u;
      ColumnId b = v;
      if (!SparserFirst(postings_.ones(a), a, postings_.ones(b), b)) {
        std::swap(a, b);
      }
      const uint32_t ones_a = postings_.ones(a);
      const uint32_t ones_b = postings_.ones(b);
      const int64_t budget = MaxMissesForSimilarity(ones_a, ones_b, minsim);
      // §5.1 density screen: a negative budget means ones_a/ones_b is
      // already below the threshold — no intersection needed.
      if (budget < 0) continue;
      // Miss-monotonicity screen, Jaccard flavor: the pair failed the
      // previous boundary, so its old intersection was below the old
      // required-hit floor (computed under the old sparser-first
      // orientation, exactly as the engine decided it back then); only
      // delta co-occurrences can close the gap to the new floor.
      const int64_t required_new = static_cast<int64_t>(ones_a) - budget;
      uint32_t old_a = old_ones[u];
      uint32_t old_b = old_ones[v];
      if (!SparserFirst(old_a, u, old_b, v)) std::swap(old_a, old_b);
      const int64_t required_old =
          old_a + old_b == 0
              ? 0
              : static_cast<int64_t>(old_a) -
                    MaxMissesForSimilarity(old_a, old_b, minsim);
      const uint32_t delta_inter =
          bitmaps.usable()
              ? postings_.ones(u) - old_ones[u] - bitmaps.SuffixMisses(u, v)
              : postings_.SuffixIntersectOnes(u, old_ones[u], v, old_ones[v]);
      if (static_cast<int64_t>(delta_inter) <
          required_new - required_old + (old_a + old_b > 0 ? 1 : 0)) {
        continue;
      }
      const uint32_t inter = postings_.IntersectOnes(a, b);
      const uint32_t misses = ones_a - inter;
      if (static_cast<int64_t>(misses) <= budget) {
        next.Add(SimilarityPair{a, b, ones_a, ones_b, inter});
        ++local.candidates_revived;
      }
    }
  }

  next.Canonicalize();
  pairs_ = std::move(next);

  ++cumulative_.batches;
  cumulative_.rows_total += local.rows_appended;
  cumulative_.candidates_killed += local.candidates_killed;
  cumulative_.candidates_revived += local.candidates_revived;
  local.seconds = timer.ElapsedSeconds();
  RecordAppendMetrics(obs.metrics, local);
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

Status IncrementalSimilarityMiner::EvictBatch(uint64_t k,
                                              IncrEvictStats* stats) {
  const double minsim = options_.min_similarity;
  if (!(minsim > 0.0) || minsim > 1.0) {
    return InvalidArgumentError("min_similarity must be in (0, 1]");
  }
  if (k > num_rows()) {
    return InvalidArgumentError("EvictBatch: cannot evict more rows than "
                                "the window holds");
  }
  if (fail::Enabled()) {
    DMC_RETURN_IF_ERROR(fail::InjectStatus("incr.evict"));
  }
  IncrEvictStats local;
  local.rows_evicted = k;
  if (k == 0) {
    if (stats != nullptr) *stats = local;
    return Status::OK();
  }
  const ObserveContext& obs = options_.policy.observe;
  ScopedSpan batch_span(obs.trace, "incr/evict_batch", obs.trace_lane);
  Stopwatch timer;

  const uint32_t bound = static_cast<uint32_t>(k);
  const ColumnId width = postings_.num_columns();
  std::vector<uint32_t> old_ones(width);
  std::vector<uint32_t> prefix_ones(width);
  std::vector<uint32_t> new_ones(width);
  for (ColumnId c = 0; c < width; ++c) {
    old_ones[c] = postings_.ones(c);
    prefix_ones[c] = postings_.PrefixOnes(c, bound);
    new_ones[c] = old_ones[c] - prefix_ones[c];
  }
  SuffixBitmapCache bitmaps(postings_, bound, num_rows() - k);

  DecidedPairs decided(width, pairs_.size());
  SimilarityRuleSet next;
  {
    ScopedSpan span(obs.trace, "incr/evict_update", obs.trace_lane);
    for (const SimilarityPair& p : pairs_) {
      ++local.rules_updated;
      decided.Add(p.a, p.b);
      const uint32_t inter =
          bitmaps.usable()
              ? new_ones[p.a] - bitmaps.SuffixMisses(p.a, p.b)
              : p.intersection - postings_.PrefixIntersectOnes(p.a, p.b, bound);
      ColumnId a = p.a;
      ColumnId b = p.b;
      if (!SparserFirst(new_ones[a], a, new_ones[b], b)) {
        std::swap(a, b);
      }
      const uint32_t ones_a = new_ones[a];
      const uint32_t ones_b = new_ones[b];
      const uint32_t misses = ones_a - inter;
      if (inter >= 1 &&
          static_cast<int64_t>(misses) <=
              MaxMissesForSimilarity(ones_a, ones_b, minsim)) {
        next.Add(SimilarityPair{a, b, ones_a, ones_b, inter});
      } else {
        ++local.candidates_killed;
      }
    }
  }
  decided.Seal();

  {
    ScopedSpan span(obs.trace, "incr/evict_regen", obs.trace_lane);
    for (const uint64_t key : EvictCandidatePairs(prefix_ones, width)) {
      const ColumnId u = static_cast<ColumnId>(key >> 32);
      const ColumnId v = static_cast<ColumnId>(key & 0xffffffffu);
      if (decided.Contains(u, v)) continue;
      ++local.regen_pairs_examined;
      if (new_ones[u] == 0 || new_ones[v] == 0) continue;
      ColumnId a = u;
      ColumnId b = v;
      if (!SparserFirst(new_ones[a], a, new_ones[b], b)) {
        std::swap(a, b);
      }
      const uint32_t ones_a = new_ones[a];
      const uint32_t ones_b = new_ones[b];
      const int64_t budget = MaxMissesForSimilarity(ones_a, ones_b, minsim);
      // §5.1 density screen, unchanged under eviction.
      if (budget < 0) continue;
      // Dual monotonicity screen (Jaccard flavor): the pair failed
      // before, so its intersection was below the old effective hit
      // floor (computed under the old sparser-first orientation, exactly
      // as the engine decided it back then) — and eviction only shrinks
      // intersections.
      const int64_t required_new = static_cast<int64_t>(ones_a) - budget;
      uint32_t old_a = old_ones[u];
      uint32_t old_b = old_ones[v];
      if (!SparserFirst(old_a, u, old_b, v)) std::swap(old_a, old_b);
      const int64_t required_old =
          old_a + old_b == 0
              ? 0
              : static_cast<int64_t>(old_a) -
                    MaxMissesForSimilarity(old_a, old_b, minsim);
      if (std::max<int64_t>(required_new, 1) >
          std::max<int64_t>(required_old, 1) - 1) {
        continue;
      }
      // The capped form is exact whenever the pair qualifies (misses <=
      // budget); an over-cap partial count only feeds the failing branch.
      const uint32_t misses =
          bitmaps.usable()
              ? bitmaps.SuffixMissesCapped(a, b,
                                           static_cast<uint32_t>(budget))
              : ones_a - postings_.SuffixIntersectOnes(u, prefix_ones[u], v,
                                                       prefix_ones[v]);
      const uint32_t inter = ones_a - misses;
      if (inter >= 1 && static_cast<int64_t>(misses) <= budget) {
        next.Add(SimilarityPair{a, b, ones_a, ones_b, inter});
        ++local.candidates_regenerated;
      }
    }
  }

  next.Canonicalize();
  postings_.EvictPrefix(k);
  pairs_ = std::move(next);

  ++cumulative_.evict_batches;
  cumulative_.rows_evicted += k;
  cumulative_.candidates_killed += local.candidates_killed;
  cumulative_.candidates_revived += local.candidates_regenerated;
  local.seconds = timer.ElapsedSeconds();
  RecordEvictMetrics(obs.metrics, local);
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

}  // namespace dmc
