#include "rules/multiattr.h"

#include <algorithm>
#include <limits>

#include "rules/grouping.h"
#include "postings/posting_container.h"

namespace dmc {

std::vector<MultiAttributeGroup> SummarizeRuleGroups(
    const BinaryMatrix& matrix, const ImplicationRuleSet& rules,
    const MultiAttributeOptions& options) {
  const auto components = GroupByConnectedComponents(rules);
  std::vector<MultiAttributeGroup> out;
  out.reserve(components.size());

  for (const ColumnGroup& component : components) {
    MultiAttributeGroup g;
    g.columns = component.columns;
    g.rule_indices = component.rule_indices;
    for (size_t idx : g.rule_indices) {
      g.min_rule_confidence = std::min(
          g.min_rule_confidence, rules.rules()[idx].confidence());
    }

    // A rule set from a different matrix can reference columns this
    // matrix does not have; summarize such groups without touching the
    // bitmaps instead of reading out of range.
    const bool in_range =
        std::all_of(g.columns.begin(), g.columns.end(),
                    [&matrix](ColumnId c) { return c < matrix.num_columns(); });
    if (!in_range || g.columns.size() > options.max_exact_group) {
      g.joint_support = 0;
      g.cohesion = -1.0;
      out.push_back(std::move(g));
      continue;
    }

    // Exact joint support: intersect member posting sets, sparsest first
    // so the running intersection shrinks quickly.
    std::vector<ColumnId> by_ones = g.columns;
    std::sort(by_ones.begin(), by_ones.end(),
              [&matrix](ColumnId a, ColumnId b) {
                return matrix.column_ones()[a] < matrix.column_ones()[b];
              });
    PostingContainer joint = matrix.ColumnPosting(by_ones.front());
    for (size_t i = 1; i < by_ones.size() && !joint.empty(); ++i) {
      joint = joint.Intersect(matrix.ColumnPosting(by_ones[i]));
    }
    g.joint_support = static_cast<uint32_t>(joint.cardinality());
    const uint32_t sparsest = matrix.column_ones()[by_ones.front()];
    g.cohesion =
        sparsest == 0 ? 0.0 : double(g.joint_support) / double(sparsest);
    out.push_back(std::move(g));
  }

  std::sort(out.begin(), out.end(),
            [](const MultiAttributeGroup& a, const MultiAttributeGroup& b) {
              return a.columns.size() > b.columns.size();
            });
  return out;
}

}  // namespace dmc
