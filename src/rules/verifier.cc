#include "rules/verifier.h"

#include <string>

namespace dmc {

RuleVerifier::RuleVerifier(const BinaryMatrix& m)
    : postings_(m.AllColumnPostings()), ones_(m.column_ones()) {}

uint32_t RuleVerifier::Intersection(ColumnId i, ColumnId j) const {
  return static_cast<uint32_t>(postings_[i].IntersectCount(postings_[j]));
}

double RuleVerifier::Confidence(ColumnId i, ColumnId j) const {
  if (ones_[i] == 0) return 0.0;
  return double(Intersection(i, j)) / double(ones_[i]);
}

double RuleVerifier::Similarity(ColumnId i, ColumnId j) const {
  const uint32_t inter = Intersection(i, j);
  const uint64_t uni = uint64_t{ones_[i]} + ones_[j] - inter;
  return uni == 0 ? 0.0 : double(inter) / double(uni);
}

Status RuleVerifier::VerifyImplications(const ImplicationRuleSet& rules,
                                        double min_confidence) const {
  for (const ImplicationRule& r : rules) {
    if (r.lhs >= ones_.size() || r.rhs >= ones_.size()) {
      return InvalidArgumentError("rule references unknown column: " +
                                  r.ToString());
    }
    if (r.lhs_ones != ones_[r.lhs]) {
      return InternalError("stored lhs_ones mismatch: " + r.ToString() +
                           " actual ones=" + std::to_string(ones_[r.lhs]));
    }
    const uint32_t inter = Intersection(r.lhs, r.rhs);
    if (r.hits() != inter) {
      return InternalError("stored hit count mismatch: " + r.ToString() +
                           " actual intersection=" + std::to_string(inter));
    }
    if (r.confidence() < min_confidence) {
      return InternalError("confidence below threshold: " + r.ToString());
    }
  }
  return Status::OK();
}

Status RuleVerifier::VerifySimilarities(const SimilarityRuleSet& pairs,
                                        double min_similarity) const {
  for (const SimilarityPair& p : pairs) {
    if (p.a >= ones_.size() || p.b >= ones_.size()) {
      return InvalidArgumentError("pair references unknown column: " +
                                  p.ToString());
    }
    if (p.ones_a != ones_[p.a] || p.ones_b != ones_[p.b]) {
      return InternalError("stored ones mismatch: " + p.ToString());
    }
    const uint32_t inter = Intersection(p.a, p.b);
    if (p.intersection != inter) {
      return InternalError("stored intersection mismatch: " + p.ToString() +
                           " actual=" + std::to_string(inter));
    }
    if (p.similarity() < min_similarity) {
      return InternalError("similarity below threshold: " + p.ToString());
    }
  }
  return Status::OK();
}

ImplicationRule RuleVerifier::MakeImplication(ColumnId i, ColumnId j) const {
  ImplicationRule r;
  r.lhs = i;
  r.rhs = j;
  r.lhs_ones = ones_[i];
  r.misses = ones_[i] - Intersection(i, j);
  return r;
}

SimilarityPair RuleVerifier::MakeSimilarity(ColumnId i, ColumnId j) const {
  SimilarityPair p;
  p.a = i;
  p.b = j;
  p.ones_a = ones_[i];
  p.ones_b = ones_[j];
  if (!SparserFirst(p.ones_a, p.a, p.ones_b, p.b)) {
    std::swap(p.a, p.b);
    std::swap(p.ones_a, p.ones_b);
  }
  p.intersection = Intersection(i, j);
  return p;
}

}  // namespace dmc
