// Rule value types.
//
// Both rule kinds carry the exact counts they were derived from, not just
// the ratio, so confidence/similarity are reproducible and verifiable.

#ifndef DMC_RULES_RULE_H_
#define DMC_RULES_RULE_H_

#include <cstdint>
#include <string>
#include <tuple>

#include "matrix/binary_matrix.h"

namespace dmc {

/// An implication rule lhs => rhs with confidence
/// |S_lhs intersect S_rhs| / |S_lhs| (§2). Stored as the antecedent's
/// 1-count plus the number of misses (rows where lhs=1 but rhs=0), which
/// is what DMC actually counts.
struct ImplicationRule {
  ColumnId lhs = 0;
  ColumnId rhs = 0;
  /// ones(lhs) = |S_lhs|.
  uint32_t lhs_ones = 0;
  /// Rows where lhs is 1 and rhs is 0; confidence = 1 - misses/lhs_ones.
  uint32_t misses = 0;

  double confidence() const {
    return lhs_ones == 0
               ? 0.0
               : double(lhs_ones - misses) / double(lhs_ones);
  }

  /// |S_lhs intersect S_rhs|.
  uint32_t hits() const { return lhs_ones - misses; }

  std::string ToString() const;

  friend bool operator==(const ImplicationRule& a, const ImplicationRule& b) {
    return a.lhs == b.lhs && a.rhs == b.rhs && a.lhs_ones == b.lhs_ones &&
           a.misses == b.misses;
  }
  friend bool operator<(const ImplicationRule& a, const ImplicationRule& b) {
    return std::tie(a.lhs, a.rhs) < std::tie(b.lhs, b.rhs);
  }
};

/// A similarity pair a ~ b with similarity
/// |S_a intersect S_b| / |S_a union S_b| (Jaccard, §2). Canonical form has
/// (ones_a, a) <= (ones_b, b) in the paper's ordering: the sparser column
/// first, ties broken by id.
struct SimilarityPair {
  ColumnId a = 0;
  ColumnId b = 0;
  uint32_t ones_a = 0;
  uint32_t ones_b = 0;
  /// |S_a intersect S_b|.
  uint32_t intersection = 0;

  double similarity() const {
    const uint64_t uni =
        uint64_t{ones_a} + uint64_t{ones_b} - uint64_t{intersection};
    return uni == 0 ? 0.0 : double(intersection) / double(uni);
  }

  std::string ToString() const;

  friend bool operator==(const SimilarityPair& x, const SimilarityPair& y) {
    return x.a == y.a && x.b == y.b && x.ones_a == y.ones_a &&
           x.ones_b == y.ones_b && x.intersection == y.intersection;
  }
  friend bool operator<(const SimilarityPair& x, const SimilarityPair& y) {
    return std::tie(x.a, x.b) < std::tie(y.a, y.b);
  }
};

/// True iff the paper's candidate-ordering predicate holds: rules are only
/// considered from the sparser column to the denser one —
/// ones(i) < ones(j), ties broken by i < j (§2).
inline bool SparserFirst(uint32_t ones_i, ColumnId i, uint32_t ones_j,
                         ColumnId j) {
  return ones_i < ones_j || (ones_i == ones_j && i < j);
}

}  // namespace dmc

#endif  // DMC_RULES_RULE_H_
