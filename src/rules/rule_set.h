// Containers for mined rules with the operations tests and benches need:
// canonical sorting, equality as sets, filtering, and text output.

#ifndef DMC_RULES_RULE_SET_H_
#define DMC_RULES_RULE_SET_H_

#include <ostream>
#include <utility>
#include <vector>

#include "rules/rule.h"

namespace dmc {

/// A set of implication rules. Thin wrapper over a vector; Canonicalize()
/// establishes the sorted/deduplicated form used for comparisons.
class ImplicationRuleSet {
 public:
  ImplicationRuleSet() = default;
  explicit ImplicationRuleSet(std::vector<ImplicationRule> rules)
      : rules_(std::move(rules)) {}

  void Add(const ImplicationRule& rule) { rules_.push_back(rule); }

  size_t size() const { return rules_.size(); }
  bool empty() const { return rules_.empty(); }
  const std::vector<ImplicationRule>& rules() const { return rules_; }
  std::vector<ImplicationRule>& mutable_rules() { return rules_; }
  /// Destructively moves the rules out, leaving the set empty — the
  /// sanctioned way for pipeline stages (e.g. the shard merge) to
  /// re-own mined rules without mutating a set in place.
  std::vector<ImplicationRule> TakeRules() { return std::move(rules_); }

  auto begin() const { return rules_.begin(); }
  auto end() const { return rules_.end(); }

  /// Sorts by (lhs, rhs) and removes duplicates.
  void Canonicalize();

  /// (lhs, rhs) pairs in canonical order — the comparison key used by the
  /// exactness tests (counts are checked separately by the verifier).
  std::vector<std::pair<ColumnId, ColumnId>> Pairs() const;

  /// Rules with confidence >= min_confidence.
  ImplicationRuleSet FilterByConfidence(double min_confidence) const;

  /// Sorted copy, highest confidence first (ties by ids).
  ImplicationRuleSet SortedByConfidence() const;

  void Print(std::ostream& os, size_t limit = 0) const;

 private:
  std::vector<ImplicationRule> rules_;
};

/// A set of similarity pairs, same design as ImplicationRuleSet.
class SimilarityRuleSet {
 public:
  SimilarityRuleSet() = default;
  explicit SimilarityRuleSet(std::vector<SimilarityPair> pairs)
      : pairs_(std::move(pairs)) {}

  void Add(const SimilarityPair& pair) { pairs_.push_back(pair); }

  size_t size() const { return pairs_.size(); }
  bool empty() const { return pairs_.empty(); }
  const std::vector<SimilarityPair>& pairs() const { return pairs_; }
  std::vector<SimilarityPair>& mutable_pairs() { return pairs_; }
  /// Destructive move-out, mirroring ImplicationRuleSet::TakeRules().
  std::vector<SimilarityPair> TakePairs() { return std::move(pairs_); }

  auto begin() const { return pairs_.begin(); }
  auto end() const { return pairs_.end(); }

  /// Puts every pair in canonical orientation (sparser column first, ties
  /// by id), sorts by (a, b), and removes duplicates.
  void Canonicalize();

  /// (a, b) pairs in canonical order.
  std::vector<std::pair<ColumnId, ColumnId>> Pairs() const;

  SimilarityRuleSet FilterBySimilarity(double min_similarity) const;

  SimilarityRuleSet SortedBySimilarity() const;

  void Print(std::ostream& os, size_t limit = 0) const;

 private:
  std::vector<SimilarityPair> pairs_;
};

}  // namespace dmc

#endif  // DMC_RULES_RULE_SET_H_
