#include "rules/rule.h"

#include <cstdio>

namespace dmc {

std::string ImplicationRule::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "c%u => c%u (conf=%.4f, ones=%u, miss=%u)",
                lhs, rhs, confidence(), lhs_ones, misses);
  return buf;
}

std::string SimilarityPair::ToString() const {
  char buf[112];
  std::snprintf(buf, sizeof(buf),
                "c%u ~ c%u (sim=%.4f, |a|=%u, |b|=%u, inter=%u)", a, b,
                similarity(), ones_a, ones_b, intersection);
  return buf;
}

}  // namespace dmc
