// Servable rule index — the read side of the incremental pipeline.
//
// A RuleIndexSnapshot is an immutable, antecedent-keyed view of one
// canonical ImplicationRuleSet: rules grouped by antecedent, each group
// (and a global ordering for TopK) sorted by exact confidence, ties
// broken by column ids so equal inputs always serve identical results.
// Confidence comparisons cross-multiply the integer counts
// (hits_a * lhs_ones_b vs hits_b * lhs_ones_a in uint64) instead of
// dividing, so the order is exact — no float rounding can reorder two
// rules whose true confidences differ.
//
// RuleIndex is the serving handle: queries read a shared_ptr to the
// current snapshot, Publish() builds a fresh snapshot off to the side
// and swaps it in under a mutex. Readers holding the old snapshot keep
// a consistent view for as long as they need it — the swap never blocks
// or mutates what they see (the TSan stage exercises queries racing
// Publish). Save/Load persist a snapshot with the checkpoint layer's
// fingerprint scheme: AtomicFileWriter on the way out, FNV-1a checksum
// + end magic verified on the way in, failpoint sites rule_index.save /
// rule_index.load for fault drills.

#ifndef DMC_RULES_RULE_INDEX_H_
#define DMC_RULES_RULE_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rules/rule_set.h"
#include "util/status.h"
#include "util/statusor.h"
#include "util/thread_annotations.h"

namespace dmc {

/// Exact confidence ordering: true iff a's confidence is strictly higher
/// than b's, ties broken by ascending (lhs, rhs). Zero-antecedent rules
/// compare as confidence 0. Integer cross-multiplication — safe in
/// uint64 since counts are uint32 — so the comparator agrees with exact
/// rational comparison, not with double rounding.
bool HigherConfidence(const ImplicationRule& a, const ImplicationRule& b);

/// Immutable, query-optimized view of one rule set. Build once, share
/// freely across threads; every accessor is const and allocation-free
/// except for the returned copies.
class RuleIndexSnapshot {
 public:
  /// Indexes a copy of `rules` (canonicalized) tagged with `generation`.
  static std::shared_ptr<const RuleIndexSnapshot> Build(
      const ImplicationRuleSet& rules, uint64_t generation);

  /// All rules lhs => *, highest confidence first.
  std::vector<ImplicationRule> QueryByAntecedent(ColumnId lhs) const;

  /// All rules * => rhs, highest confidence first.
  std::vector<ImplicationRule> QueryByConsequent(ColumnId rhs) const;

  /// The k highest-confidence rules overall (fewer when the index is
  /// smaller). k == 0 returns everything.
  std::vector<ImplicationRule> TopK(size_t k) const;

  uint64_t generation() const { return generation_; }
  size_t size() const { return by_lhs_.size(); }
  bool empty() const { return by_lhs_.empty(); }

  /// Checksummed binary image (magic DMCRIDX, version, generation, rule
  /// records, FNV-1a fingerprint, end magic).
  std::string Serialize() const;

  /// Rebuilds a snapshot from Serialize() output. Truncation, bad magic,
  /// version skew, or checksum mismatch yield kDataLoss mentioning
  /// `context` (typically the file path).
  static StatusOr<std::shared_ptr<const RuleIndexSnapshot>> Deserialize(
      const std::string& data, const std::string& context);

 private:
  RuleIndexSnapshot() = default;

  uint64_t generation_ = 0;
  /// Sorted by (lhs, HigherConfidence, rhs): one contiguous,
  /// confidence-ordered posting per antecedent.
  std::vector<ImplicationRule> by_lhs_;
  /// Indices into by_lhs_ sorted by (rhs, HigherConfidence): the
  /// consequent-keyed postings.
  std::vector<uint32_t> by_rhs_;
  /// Indices into by_lhs_ in global HigherConfidence order for TopK.
  std::vector<uint32_t> by_conf_;
};

/// Thread-safe serving handle over an atomically swappable snapshot.
class RuleIndex {
 public:
  /// Starts with an empty generation-0 snapshot, so queries are valid
  /// before the first Publish.
  RuleIndex();

  RuleIndex(const RuleIndex&) = delete;
  RuleIndex& operator=(const RuleIndex&) = delete;

  /// The current snapshot. The returned pointer stays valid and
  /// immutable regardless of later Publish/Load calls.
  std::shared_ptr<const RuleIndexSnapshot> snapshot() const;

  /// Builds a snapshot of `rules` with the next generation number and
  /// swaps it in. In-flight readers keep the snapshot they hold; the
  /// build itself runs outside the readers' mutex, so snapshot() never
  /// waits longer than a pointer swap.
  void Publish(const ImplicationRuleSet& rules);

  /// Persists the current snapshot (AtomicFileWriter: old-or-new, never
  /// torn). Failpoint site: rule_index.save.
  [[nodiscard]] Status Save(const std::string& path) const;

  /// Replaces the current snapshot with the one stored at `path`.
  /// Corruption is reported as kDataLoss and leaves the served snapshot
  /// untouched. Failpoint site: rule_index.load.
  [[nodiscard]] Status Load(const std::string& path);

 private:
  /// Serializes writers (Publish, Load) so concurrent publishes cannot
  /// both read generation g and race to install g+1 twice. Always
  /// acquired before mu_; never held by readers.
  Mutex publish_mu_ DMC_ACQUIRED_BEFORE(mu_);
  /// Guards only the pointer: the pointed-to snapshot is immutable, so
  /// readers that copied the shared_ptr need no capability (this is the
  /// capability model for the snapshot swap — DESIGN §5.6).
  mutable Mutex mu_;
  std::shared_ptr<const RuleIndexSnapshot> snapshot_ DMC_GUARDED_BY(mu_);
};

}  // namespace dmc

#endif  // DMC_RULES_RULE_INDEX_H_
