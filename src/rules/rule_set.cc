#include "rules/rule_set.h"

#include <algorithm>

namespace dmc {

void ImplicationRuleSet::Canonicalize() {
  std::sort(rules_.begin(), rules_.end());
  rules_.erase(std::unique(rules_.begin(), rules_.end(),
                           [](const ImplicationRule& a,
                              const ImplicationRule& b) {
                             return a.lhs == b.lhs && a.rhs == b.rhs;
                           }),
               rules_.end());
}

std::vector<std::pair<ColumnId, ColumnId>> ImplicationRuleSet::Pairs() const {
  std::vector<std::pair<ColumnId, ColumnId>> out;
  out.reserve(rules_.size());
  for (const auto& r : rules_) out.emplace_back(r.lhs, r.rhs);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

ImplicationRuleSet ImplicationRuleSet::FilterByConfidence(
    double min_confidence) const {
  ImplicationRuleSet out;
  for (const auto& r : rules_) {
    if (r.confidence() >= min_confidence) out.Add(r);
  }
  return out;
}

ImplicationRuleSet ImplicationRuleSet::SortedByConfidence() const {
  ImplicationRuleSet out = *this;
  std::sort(out.rules_.begin(), out.rules_.end(),
            [](const ImplicationRule& a, const ImplicationRule& b) {
              if (a.confidence() != b.confidence()) {
                return a.confidence() > b.confidence();
              }
              return std::tie(a.lhs, a.rhs) < std::tie(b.lhs, b.rhs);
            });
  return out;
}

void ImplicationRuleSet::Print(std::ostream& os, size_t limit) const {
  const size_t n =
      limit == 0 ? rules_.size() : std::min(limit, rules_.size());
  for (size_t i = 0; i < n; ++i) os << rules_[i].ToString() << "\n";
  if (n < rules_.size()) {
    os << "... (" << rules_.size() - n << " more)\n";
  }
}

void SimilarityRuleSet::Canonicalize() {
  for (auto& p : pairs_) {
    if (!SparserFirst(p.ones_a, p.a, p.ones_b, p.b)) {
      std::swap(p.a, p.b);
      std::swap(p.ones_a, p.ones_b);
    }
  }
  std::sort(pairs_.begin(), pairs_.end());
  pairs_.erase(std::unique(pairs_.begin(), pairs_.end(),
                           [](const SimilarityPair& x,
                              const SimilarityPair& y) {
                             return x.a == y.a && x.b == y.b;
                           }),
               pairs_.end());
}

std::vector<std::pair<ColumnId, ColumnId>> SimilarityRuleSet::Pairs() const {
  std::vector<std::pair<ColumnId, ColumnId>> out;
  out.reserve(pairs_.size());
  for (const auto& p : pairs_) {
    // Orientation-insensitive key: smaller id first.
    out.emplace_back(std::min(p.a, p.b), std::max(p.a, p.b));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

SimilarityRuleSet SimilarityRuleSet::FilterBySimilarity(
    double min_similarity) const {
  SimilarityRuleSet out;
  for (const auto& p : pairs_) {
    if (p.similarity() >= min_similarity) out.Add(p);
  }
  return out;
}

SimilarityRuleSet SimilarityRuleSet::SortedBySimilarity() const {
  SimilarityRuleSet out = *this;
  std::sort(out.pairs_.begin(), out.pairs_.end(),
            [](const SimilarityPair& x, const SimilarityPair& y) {
              if (x.similarity() != y.similarity()) {
                return x.similarity() > y.similarity();
              }
              return std::tie(x.a, x.b) < std::tie(y.a, y.b);
            });
  return out;
}

void SimilarityRuleSet::Print(std::ostream& os, size_t limit) const {
  const size_t n =
      limit == 0 ? pairs_.size() : std::min(limit, pairs_.size());
  for (size_t i = 0; i < n; ++i) os << pairs_[i].ToString() << "\n";
  if (n < pairs_.size()) {
    os << "... (" << pairs_.size() - n << " more)\n";
  }
}

}  // namespace dmc
