#include "rules/grouping.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

namespace dmc {

ImplicationRuleSet ExpandFromSeed(const ImplicationRuleSet& rules,
                                  ColumnId seed, uint32_t max_depth) {
  // Index rules by lhs.
  std::unordered_map<ColumnId, std::vector<size_t>> by_lhs;
  for (size_t i = 0; i < rules.size(); ++i) {
    by_lhs[rules.rules()[i].lhs].push_back(i);
  }

  ImplicationRuleSet out;
  std::unordered_set<ColumnId> visited{seed};
  std::unordered_set<size_t> emitted;
  std::deque<std::pair<ColumnId, uint32_t>> frontier{{seed, 0}};
  while (!frontier.empty()) {
    const auto [col, depth] = frontier.front();
    frontier.pop_front();
    if (max_depth != 0 && depth >= max_depth) continue;
    const auto it = by_lhs.find(col);
    if (it == by_lhs.end()) continue;
    for (size_t idx : it->second) {
      if (!emitted.insert(idx).second) continue;
      const ImplicationRule& r = rules.rules()[idx];
      out.Add(r);
      if (visited.insert(r.rhs).second) {
        frontier.emplace_back(r.rhs, depth + 1);
      }
    }
  }
  out.Canonicalize();
  return out;
}

namespace {

// Union-find over arbitrary column ids.
class UnionFind {
 public:
  ColumnId Find(ColumnId x) {
    if (parent_.emplace(x, x).second) return x;
    ColumnId root = x;
    while (parent_[root] != root) root = parent_[root];
    // Path compression.
    while (parent_[x] != root) {
      const ColumnId next = parent_[x];
      parent_[x] = root;
      x = next;
    }
    return root;
  }

  void Union(ColumnId a, ColumnId b) {
    const ColumnId ra = Find(a);
    const ColumnId rb = Find(b);
    if (ra != rb) parent_[ra] = rb;
  }

 private:
  std::unordered_map<ColumnId, ColumnId> parent_;
};

template <typename GetEdge>
std::vector<ColumnGroup> GroupEdges(size_t num_edges, GetEdge get_edge) {
  UnionFind uf;
  for (size_t i = 0; i < num_edges; ++i) {
    const auto [u, v] = get_edge(i);
    uf.Union(u, v);
  }
  std::unordered_map<ColumnId, size_t> root_to_group;
  std::vector<ColumnGroup> groups;
  std::unordered_map<ColumnId, bool> seen_column;
  for (size_t i = 0; i < num_edges; ++i) {
    const auto [u, v] = get_edge(i);
    const ColumnId root = uf.Find(u);
    auto [it, inserted] = root_to_group.emplace(root, groups.size());
    if (inserted) groups.emplace_back();
    ColumnGroup& g = groups[it->second];
    g.rule_indices.push_back(i);
    for (ColumnId c : {u, v}) {
      if (!seen_column[c]) {
        seen_column[c] = true;
        g.columns.push_back(c);
      }
    }
  }
  for (auto& g : groups) std::sort(g.columns.begin(), g.columns.end());
  std::sort(groups.begin(), groups.end(),
            [](const ColumnGroup& a, const ColumnGroup& b) {
              return a.columns.size() > b.columns.size();
            });
  return groups;
}

}  // namespace

std::vector<ColumnGroup> GroupByConnectedComponents(
    const ImplicationRuleSet& rules) {
  return GroupEdges(rules.size(), [&rules](size_t i) {
    const ImplicationRule& r = rules.rules()[i];
    return std::pair<ColumnId, ColumnId>(r.lhs, r.rhs);
  });
}

std::vector<ColumnGroup> GroupByConnectedComponents(
    const SimilarityRuleSet& pairs) {
  return GroupEdges(pairs.size(), [&pairs](size_t i) {
    const SimilarityPair& p = pairs.pairs()[i];
    return std::pair<ColumnId, ColumnId>(p.a, p.b);
  });
}

}  // namespace dmc
