// Multi-attribute structure from pair rules — the paper's first future-
// work item: "by grouping similarity and implication rules as showed in
// Sec. 6.3, we can get useful groups of rules among more than two
// attributes."
//
// Groups are the connected components of the rule graph; this module
// upgrades them to quantified multi-attribute summaries by computing the
// EXACT joint support of each group (rows where every member is 1) and
// the weakest pairwise link inside it, via column bitmaps.

#ifndef DMC_RULES_MULTIATTR_H_
#define DMC_RULES_MULTIATTR_H_

#include <cstdint>
#include <vector>

#include "matrix/binary_matrix.h"
#include "rules/rule_set.h"

namespace dmc {

struct MultiAttributeGroup {
  /// Sorted member columns.
  std::vector<ColumnId> columns;
  /// Pair rules inside the group (indices into the input rule set).
  std::vector<size_t> rule_indices;
  /// Exact |S_{c1} ∩ ... ∩ S_{ck}| — rows carrying the whole group.
  uint32_t joint_support = 0;
  /// The weakest pairwise confidence among the group's rules.
  double min_rule_confidence = 1.0;
  /// Joint support / smallest member support: how close the group is to
  /// a true multi-attribute implication (1.0 = the sparsest member
  /// implies the whole group).
  double cohesion = 0.0;
};

struct MultiAttributeOptions {
  /// Groups larger than this are summarized without the (expensive)
  /// joint-support intersection; their joint_support is 0 and cohesion
  /// is -1 to mark the skip. Groups referencing columns the matrix does
  /// not have are skipped the same way.
  size_t max_exact_group = 32;
};

/// Builds quantified group summaries from the mined pair rules, ordered
/// by descending group size.
std::vector<MultiAttributeGroup> SummarizeRuleGroups(
    const BinaryMatrix& matrix, const ImplicationRuleSet& rules,
    const MultiAttributeOptions& options = {});

}  // namespace dmc

#endif  // DMC_RULES_MULTIATTR_H_
