#include "rules/rule_index.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <tuple>
#include <utility>

#include "util/atomic_io.h"
#include "util/failpoint.h"

namespace dmc {

namespace {

constexpr char kMagic[8] = {'D', 'M', 'C', 'R', 'I', 'D', 'X', '\n'};
constexpr char kEndMagic[4] = {'D', 'M', 'C', 'E'};
constexpr uint32_t kVersion = 1;
constexpr size_t kRecordBytes = 4 * sizeof(uint32_t);

uint64_t Fnv1aInit() { return 1469598103934665603ULL; }

uint64_t Fnv1aUpdate(uint64_t h, const char* data, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

template <typename T>
void AppendLE(std::string* out, T value) {
  char buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  out->append(buf, sizeof(T));
}

template <typename T>
bool ReadLE(const std::string& data, size_t* offset, T* value) {
  if (data.size() - *offset < sizeof(T)) return false;
  std::memcpy(value, data.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

Status Corrupt(const std::string& context, const std::string& what) {
  return DataLossError("rule index " + context + ": " + what);
}

}  // namespace

bool HigherConfidence(const ImplicationRule& a, const ImplicationRule& b) {
  // Clamp so a malformed rule (misses > lhs_ones) orders as confidence 0
  // instead of wrapping around.
  const uint64_t nx = a.misses > a.lhs_ones ? 0 : a.lhs_ones - a.misses;
  const uint64_t ny = b.misses > b.lhs_ones ? 0 : b.lhs_ones - b.misses;
  const uint64_t dx = a.lhs_ones == 0 ? 1 : a.lhs_ones;
  const uint64_t dy = b.lhs_ones == 0 ? 1 : b.lhs_ones;
  // nx/dx > ny/dy, exactly: counts are uint32, so the products fit.
  const uint64_t lhs = nx * dy;
  const uint64_t rhs = ny * dx;
  if (lhs != rhs) return lhs > rhs;
  return std::tie(a.lhs, a.rhs) < std::tie(b.lhs, b.rhs);
}

std::shared_ptr<const RuleIndexSnapshot> RuleIndexSnapshot::Build(
    const ImplicationRuleSet& rules, uint64_t generation) {
  ImplicationRuleSet canonical = rules;
  canonical.Canonicalize();

  auto snapshot = std::shared_ptr<RuleIndexSnapshot>(new RuleIndexSnapshot());
  snapshot->generation_ = generation;
  snapshot->by_lhs_ = canonical.rules();
  std::sort(snapshot->by_lhs_.begin(), snapshot->by_lhs_.end(),
            [](const ImplicationRule& a, const ImplicationRule& b) {
              if (a.lhs != b.lhs) return a.lhs < b.lhs;
              return HigherConfidence(a, b);
            });

  const uint32_t n = static_cast<uint32_t>(snapshot->by_lhs_.size());
  snapshot->by_rhs_.resize(n);
  snapshot->by_conf_.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    snapshot->by_rhs_[i] = i;
    snapshot->by_conf_[i] = i;
  }
  const std::vector<ImplicationRule>& all = snapshot->by_lhs_;
  std::sort(snapshot->by_rhs_.begin(), snapshot->by_rhs_.end(),
            [&all](uint32_t x, uint32_t y) {
              if (all[x].rhs != all[y].rhs) return all[x].rhs < all[y].rhs;
              return HigherConfidence(all[x], all[y]);
            });
  std::sort(snapshot->by_conf_.begin(), snapshot->by_conf_.end(),
            [&all](uint32_t x, uint32_t y) {
              return HigherConfidence(all[x], all[y]);
            });
  return snapshot;
}

std::vector<ImplicationRule> RuleIndexSnapshot::QueryByAntecedent(
    ColumnId lhs) const {
  const auto first = std::lower_bound(
      by_lhs_.begin(), by_lhs_.end(), lhs,
      [](const ImplicationRule& r, ColumnId value) { return r.lhs < value; });
  const auto last = std::upper_bound(
      by_lhs_.begin(), by_lhs_.end(), lhs,
      [](ColumnId value, const ImplicationRule& r) { return value < r.lhs; });
  return std::vector<ImplicationRule>(first, last);
}

std::vector<ImplicationRule> RuleIndexSnapshot::QueryByConsequent(
    ColumnId rhs) const {
  const auto first = std::lower_bound(
      by_rhs_.begin(), by_rhs_.end(), rhs,
      [this](uint32_t idx, ColumnId value) { return by_lhs_[idx].rhs < value; });
  const auto last = std::upper_bound(
      by_rhs_.begin(), by_rhs_.end(), rhs,
      [this](ColumnId value, uint32_t idx) { return value < by_lhs_[idx].rhs; });
  std::vector<ImplicationRule> out;
  out.reserve(static_cast<size_t>(last - first));
  for (auto it = first; it != last; ++it) out.push_back(by_lhs_[*it]);
  return out;
}

std::vector<ImplicationRule> RuleIndexSnapshot::TopK(size_t k) const {
  const size_t n = k == 0 ? by_conf_.size() : std::min(k, by_conf_.size());
  std::vector<ImplicationRule> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(by_lhs_[by_conf_[i]]);
  return out;
}

std::string RuleIndexSnapshot::Serialize() const {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  AppendLE<uint32_t>(&out, kVersion);
  AppendLE<uint64_t>(&out, generation_);
  AppendLE<uint64_t>(&out, static_cast<uint64_t>(by_lhs_.size()));
  for (const ImplicationRule& r : by_lhs_) {
    AppendLE<uint32_t>(&out, r.lhs);
    AppendLE<uint32_t>(&out, r.rhs);
    AppendLE<uint32_t>(&out, r.lhs_ones);
    AppendLE<uint32_t>(&out, r.misses);
  }
  AppendLE<uint64_t>(&out, Fnv1aUpdate(Fnv1aInit(), out.data(), out.size()));
  out.append(kEndMagic, sizeof(kEndMagic));
  return out;
}

StatusOr<std::shared_ptr<const RuleIndexSnapshot>> RuleIndexSnapshot::Deserialize(
    const std::string& data, const std::string& context) {
  constexpr size_t kMinBytes =
      sizeof(kMagic) + 4 + 8 + 8 + 8 + sizeof(kEndMagic);
  if (data.size() < kMinBytes) {
    return Corrupt(context,
                   "truncated (" + std::to_string(data.size()) + " bytes)");
  }
  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Corrupt(context, "bad magic");
  }
  if (std::memcmp(data.data() + data.size() - sizeof(kEndMagic), kEndMagic,
                  sizeof(kEndMagic)) != 0) {
    return Corrupt(context, "missing end marker");
  }
  const size_t body_size = data.size() - sizeof(kEndMagic) - sizeof(uint64_t);
  size_t offset = sizeof(kMagic);
  uint32_t version = 0;
  (void)ReadLE(data, &offset, &version);
  if (version != kVersion) {
    return Corrupt(context, "unsupported version " + std::to_string(version));
  }
  uint64_t generation = 0;
  uint64_t count = 0;
  if (!ReadLE(data, &offset, &generation) || !ReadLE(data, &offset, &count)) {
    return Corrupt(context, "truncated header");
  }
  if (count * kRecordBytes != body_size - offset) {
    return Corrupt(context, "rule count " + std::to_string(count) +
                                " does not match file size");
  }
  uint64_t stored_checksum = 0;
  {
    size_t checksum_offset = body_size;
    (void)ReadLE(data, &checksum_offset, &stored_checksum);
  }
  const uint64_t actual =
      Fnv1aUpdate(Fnv1aInit(), data.data(), body_size);
  if (actual != stored_checksum) {
    return Corrupt(context, "checksum mismatch");
  }

  ImplicationRuleSet rules;
  for (uint64_t i = 0; i < count; ++i) {
    ImplicationRule r;
    (void)ReadLE(data, &offset, &r.lhs);
    (void)ReadLE(data, &offset, &r.rhs);
    (void)ReadLE(data, &offset, &r.lhs_ones);
    (void)ReadLE(data, &offset, &r.misses);
    rules.Add(r);
  }
  return Build(rules, generation);
}

RuleIndex::RuleIndex()
    : snapshot_(RuleIndexSnapshot::Build(ImplicationRuleSet(), 0)) {}

std::shared_ptr<const RuleIndexSnapshot> RuleIndex::snapshot() const {
  MutexLock lock(mu_);
  return snapshot_;
}

void RuleIndex::Publish(const ImplicationRuleSet& rules) {
  // publish_mu_ serializes writers so the generation read below cannot
  // be stale; building outside mu_ keeps the O(n log n) Build off the
  // readers' lock — snapshot() only ever waits for the pointer swap.
  MutexLock publish_lock(publish_mu_);
  uint64_t next_generation = 0;
  {
    MutexLock lock(mu_);
    next_generation = snapshot_->generation() + 1;
  }
  std::shared_ptr<const RuleIndexSnapshot> built =
      RuleIndexSnapshot::Build(rules, next_generation);
  MutexLock lock(mu_);
  snapshot_ = std::move(built);
}

Status RuleIndex::Save(const std::string& path) const {
  if (fail::Enabled()) {
    DMC_RETURN_IF_ERROR(fail::InjectStatus("rule_index.save"));
  }
  const std::string image = snapshot()->Serialize();
  AtomicFileWriter writer;
  DMC_RETURN_IF_ERROR(writer.Open(path));
  DMC_RETURN_IF_ERROR(writer.Write(image));
  return writer.Commit();
}

Status RuleIndex::Load(const std::string& path) {
  if (fail::Enabled()) {
    DMC_RETURN_IF_ERROR(fail::InjectStatus("rule_index.load"));
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return IOError("cannot open rule index: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return IOError("read failed for rule index: " + path);
  DMC_ASSIGN_OR_RETURN(std::shared_ptr<const RuleIndexSnapshot> snapshot,
                       RuleIndexSnapshot::Deserialize(buffer.str(), path));
  MutexLock publish_lock(publish_mu_);
  MutexLock lock(mu_);
  snapshot_ = std::move(snapshot);
  return Status::OK();
}

}  // namespace dmc
