// Rule grouping — the paper's §6.3 / Fig. 7 workflow and its "future work"
// extension to multi-attribute structure.
//
// Fig. 7 was produced by "selecting all rules related to keyword Polgar
// and its successors, recursively": a breadth-first expansion over the
// implication-rule graph from a seed column. The conclusion proposes
// grouping rules to approximate rules among more than two attributes;
// connected components over the rule graph provide that grouping.

#ifndef DMC_RULES_GROUPING_H_
#define DMC_RULES_GROUPING_H_

#include <cstdint>
#include <vector>

#include "rules/rule_set.h"

namespace dmc {

/// Rules reachable from `seed`: starts with all rules whose lhs is `seed`,
/// then recursively adds rules whose lhs is any rhs already reached
/// (breadth-first; `max_depth` 0 means unlimited). This reproduces the
/// Fig. 7 extraction.
ImplicationRuleSet ExpandFromSeed(const ImplicationRuleSet& rules,
                                  ColumnId seed, uint32_t max_depth = 0);

/// One group of mutually related columns.
struct ColumnGroup {
  /// Sorted member column ids.
  std::vector<ColumnId> columns;
  /// Indices (into the input rule set) of the rules inside this group.
  std::vector<size_t> rule_indices;
};

/// Connected components of the undirected graph whose edges are the rule
/// pairs. Groups are returned largest first; singleton columns (no rules)
/// are omitted.
std::vector<ColumnGroup> GroupByConnectedComponents(
    const ImplicationRuleSet& rules);

/// Same over similarity pairs.
std::vector<ColumnGroup> GroupByConnectedComponents(
    const SimilarityRuleSet& pairs);

}  // namespace dmc

#endif  // DMC_RULES_GROUPING_H_
