// Exact verification of mined rules against the source matrix.
//
// DMC's headline guarantee is "no false positives and no false negatives";
// the verifier is the independent oracle the test suite uses to check it,
// and the verification step the Min-Hash baseline needs to remove its
// false positives.

#ifndef DMC_RULES_VERIFIER_H_
#define DMC_RULES_VERIFIER_H_

#include <vector>

#include "matrix/binary_matrix.h"
#include "postings/posting_container.h"
#include "rules/rule_set.h"
#include "util/status.h"

namespace dmc {

/// Answers exact pairwise queries via per-column hybrid posting
/// containers (built once; each query is a typed chunk intersection).
class RuleVerifier {
 public:
  explicit RuleVerifier(const BinaryMatrix& m);

  /// |S_i intersect S_j|.
  uint32_t Intersection(ColumnId i, ColumnId j) const;

  /// Conf(c_i => c_j); 0 when ones(i) == 0.
  double Confidence(ColumnId i, ColumnId j) const;

  /// Sim(c_i, c_j); 0 when both columns are empty.
  double Similarity(ColumnId i, ColumnId j) const;

  uint32_t ones(ColumnId c) const { return ones_[c]; }

  /// Checks that every rule's stored counts match the matrix and that its
  /// confidence reaches `min_confidence`. Returns the first violation.
  [[nodiscard]] Status VerifyImplications(const ImplicationRuleSet& rules,
                            double min_confidence) const;

  /// Same for similarity pairs.
  [[nodiscard]] Status VerifySimilarities(const SimilarityRuleSet& pairs,
                            double min_similarity) const;

  /// Builds an ImplicationRule with exact counts for (i, j).
  ImplicationRule MakeImplication(ColumnId i, ColumnId j) const;

  /// Builds a SimilarityPair with exact counts for (i, j), in canonical
  /// orientation.
  SimilarityPair MakeSimilarity(ColumnId i, ColumnId j) const;

 private:
  std::vector<PostingContainer> postings_;
  std::vector<uint32_t> ones_;
};

}  // namespace dmc

#endif  // DMC_RULES_VERIFIER_H_
