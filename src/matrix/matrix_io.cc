#include "matrix/matrix_io.h"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <sstream>
#include <string_view>
#include <vector>

namespace dmc {

namespace {

// Parses one text line into column ids. Returns false on malformed input
// and fills `error`.
bool ParseLine(std::string_view line, std::vector<ColumnId>* cols,
               std::string* error) {
  cols->clear();
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t' ||
                               line[i] == '\r')) {
      ++i;
    }
    if (i >= line.size()) break;
    const size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t' &&
           line[i] != '\r') {
      ++i;
    }
    uint32_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(line.data() + start, line.data() + i, value);
    if (ec != std::errc() || ptr != line.data() + i) {
      *error = "malformed column id '" +
               std::string(line.substr(start, i - start)) + "'";
      return false;
    }
    cols->push_back(value);
  }
  return true;
}

}  // namespace

Status WriteMatrixText(const BinaryMatrix& m, std::ostream& os) {
  os << "# dmc matrix: rows=" << m.num_rows()
     << " columns=" << m.num_columns() << "\n";
  for (RowId r = 0; r < m.num_rows(); ++r) {
    bool first = true;
    for (ColumnId c : m.Row(r)) {
      if (!first) os << ' ';
      os << c;
      first = false;
    }
    os << '\n';
  }
  if (!os) return IOError("write failed");
  return Status::OK();
}

Status WriteMatrixTextFile(const BinaryMatrix& m, const std::string& path) {
  // Matrix serialization is a data format, not a metrics export, so it
  // opens its own stream.
  std::ofstream out(path);  // dmc_lint: ignore
  if (!out) return IOError("cannot open for write: " + path);
  return WriteMatrixText(m, out);
}

StatusOr<BinaryMatrix> ReadMatrixText(std::istream& is) {
  MatrixBuilder builder;
  std::string line;
  std::vector<ColumnId> cols;
  std::string error;
  size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (!line.empty() && line[0] == '#') continue;
    if (!ParseLine(line, &cols, &error)) {
      return InvalidArgumentError("line " + std::to_string(line_no) + ": " +
                                  error);
    }
    builder.AddRow(cols);
  }
  return builder.Build();
}

StatusOr<BinaryMatrix> ReadMatrixTextFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return IOError("cannot open for read: " + path);
  return ReadMatrixText(in);
}

Status ForEachRowText(
    std::istream& is,
    const std::function<Status(std::span<const ColumnId>)>& callback) {
  std::string line;
  std::vector<ColumnId> cols;
  std::string error;
  size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (!line.empty() && line[0] == '#') continue;
    if (!ParseLine(line, &cols, &error)) {
      return InvalidArgumentError("line " + std::to_string(line_no) + ": " +
                                  error);
    }
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    DMC_RETURN_IF_ERROR(callback(cols));
  }
  return Status::OK();
}

StatusOr<FirstPassStats> ScanMatrixText(std::istream& is) {
  FirstPassStats stats;
  std::string line;
  std::vector<ColumnId> cols;
  std::string error;
  size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (!line.empty() && line[0] == '#') continue;
    if (!ParseLine(line, &cols, &error)) {
      return InvalidArgumentError("line " + std::to_string(line_no) + ": " +
                                  error);
    }
    // Deduplicate within the row so ones(c) matches FromRows semantics.
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    for (ColumnId c : cols) {
      if (c >= stats.num_columns) {
        stats.num_columns = c + 1;
        stats.column_ones.resize(stats.num_columns, 0);
      }
      ++stats.column_ones[c];
    }
    stats.row_density.push_back(static_cast<uint32_t>(cols.size()));
    ++stats.num_rows;
  }
  return stats;
}

}  // namespace dmc
