#include "matrix/matrix_io.h"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/atomic_io.h"
#include "util/failpoint.h"

namespace dmc {

namespace {

// Parses one text line into column ids. Returns false on malformed input
// and fills `error`.
bool ParseLine(std::string_view line, std::vector<ColumnId>* cols,
               std::string* error) {
  cols->clear();
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t' ||
                               line[i] == '\r')) {
      ++i;
    }
    if (i >= line.size()) break;
    const size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t' &&
           line[i] != '\r') {
      ++i;
    }
    uint32_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(line.data() + start, line.data() + i, value);
    if (ec != std::errc() || ptr != line.data() + i) {
      *error = "malformed column id '" +
               std::string(line.substr(start, i - start)) + "'";
      return false;
    }
    cols->push_back(value);
  }
  return true;
}

std::string LineContext(size_t line_no, uint64_t byte_offset) {
  return "line " + std::to_string(line_no) + " (byte " +
         std::to_string(byte_offset) + ")";
}

// Range check + strictness check (or sort/dedup when normalizing).
// `byte_offset` is the offset of the line start in the stream.
Status ValidateOrNormalizeRow(std::vector<ColumnId>* cols,
                              const TextReadOptions& options, size_t line_no,
                              uint64_t byte_offset) {
  for (ColumnId c : *cols) {
    if (c > options.max_column_id) {
      return InvalidArgumentError(
          LineContext(line_no, byte_offset) + ": column id " +
          std::to_string(c) + " exceeds the configured maximum " +
          std::to_string(options.max_column_id));
    }
  }
  if (options.normalize) {
    std::sort(cols->begin(), cols->end());
    cols->erase(std::unique(cols->begin(), cols->end()), cols->end());
    return Status::OK();
  }
  for (size_t i = 1; i < cols->size(); ++i) {
    const ColumnId prev = (*cols)[i - 1];
    const ColumnId cur = (*cols)[i];
    if (cur == prev) {
      return InvalidArgumentError(LineContext(line_no, byte_offset) +
                                  ": duplicate column id " +
                                  std::to_string(cur));
    }
    if (cur < prev) {
      return InvalidArgumentError(
          LineContext(line_no, byte_offset) + ": column ids not sorted (" +
          std::to_string(cur) + " after " + std::to_string(prev) + ")");
    }
  }
  return Status::OK();
}

// Shared line loop for the three text readers: handles comments, byte
// offsets, parse errors, validation and the per-row failpoint.
Status ForEachValidatedRow(
    std::istream& is, const TextReadOptions& options,
    const std::function<Status(std::vector<ColumnId>&)>& per_row) {
  std::string line;
  std::vector<ColumnId> cols;
  std::string error;
  size_t line_no = 0;
  uint64_t byte_offset = 0;
  const bool inject = fail::Enabled();
  while (std::getline(is, line)) {
    ++line_no;
    const uint64_t line_start = byte_offset;
    byte_offset += line.size() + 1;
    if (!line.empty() && line[0] == '#') continue;
    if (inject) {
      DMC_RETURN_IF_ERROR(fail::InjectStatus("matrix.text.row"));
    }
    if (!ParseLine(line, &cols, &error)) {
      return InvalidArgumentError(LineContext(line_no, line_start) + ": " +
                                  error);
    }
    DMC_RETURN_IF_ERROR(
        ValidateOrNormalizeRow(&cols, options, line_no, line_start));
    DMC_RETURN_IF_ERROR(per_row(cols));
  }
  if (is.bad()) {
    return IOError("read failed at " + LineContext(line_no, byte_offset));
  }
  return Status::OK();
}

constexpr char kBinaryMagic[8] = {'D', 'M', 'C', 'B', 'I', 'N', '1', '\n'};
constexpr char kBinaryEndMagic[4] = {'D', 'M', 'C', 'E'};

uint64_t Fnv1a(std::string_view data) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

template <typename T>
void AppendLE(std::string* out, T value) {
  char buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  out->append(buf, sizeof(T));
}

// Reads a little-endian integer at `*offset`, advancing it. Returns false
// when the buffer is too short.
template <typename T>
bool ReadLE(std::string_view data, size_t* offset, T* value) {
  if (data.size() - *offset < sizeof(T)) return false;
  std::memcpy(value, data.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

std::string ByteContext(size_t offset) {
  return "byte " + std::to_string(offset);
}

}  // namespace

Status WriteMatrixText(const BinaryMatrix& m, std::ostream& os) {
  os << "# dmc matrix: rows=" << m.num_rows()
     << " columns=" << m.num_columns() << "\n";
  for (RowId r = 0; r < m.num_rows(); ++r) {
    bool first = true;
    for (ColumnId c : m.Row(r)) {
      if (!first) os << ' ';
      os << c;
      first = false;
    }
    os << '\n';
  }
  if (!os) return IOError("write failed");
  return Status::OK();
}

Status WriteMatrixTextFile(const BinaryMatrix& m, const std::string& path) {
  if (fail::Enabled()) {
    DMC_RETURN_IF_ERROR(fail::InjectStatus("matrix.text.write"));
  }
  std::ostringstream out;
  DMC_RETURN_IF_ERROR(WriteMatrixText(m, out));
  return AtomicWriteFile(path, out.str());
}

StatusOr<BinaryMatrix> ReadMatrixText(std::istream& is,
                                      const TextReadOptions& options) {
  MatrixBuilder builder;
  DMC_RETURN_IF_ERROR(
      ForEachValidatedRow(is, options, [&](std::vector<ColumnId>& cols) {
        builder.AddRow(cols);
        return Status::OK();
      }));
  return builder.Build();
}

StatusOr<BinaryMatrix> ReadMatrixTextFile(const std::string& path,
                                          const TextReadOptions& options) {
  if (fail::Enabled()) {
    DMC_RETURN_IF_ERROR(fail::InjectStatus("matrix.text.open"));
  }
  std::ifstream in(path);
  if (!in) return IOError("cannot open for read: " + path);
  return ReadMatrixText(in, options);
}

Status ForEachRowText(
    std::istream& is,
    const std::function<Status(std::span<const ColumnId>)>& callback,
    const TextReadOptions& options) {
  return ForEachValidatedRow(is, options,
                             [&](std::vector<ColumnId>& cols) {
                               return callback(cols);
                             });
}

StatusOr<FirstPassStats> ScanMatrixText(std::istream& is,
                                        const TextReadOptions& options) {
  FirstPassStats stats;
  DMC_RETURN_IF_ERROR(
      ForEachValidatedRow(is, options, [&](std::vector<ColumnId>& cols) {
        for (ColumnId c : cols) {
          if (c >= stats.num_columns) {
            stats.num_columns = c + 1;
            stats.column_ones.resize(stats.num_columns, 0);
          }
          ++stats.column_ones[c];
        }
        stats.row_density.push_back(static_cast<uint32_t>(cols.size()));
        ++stats.num_rows;
        return Status::OK();
      }));
  return stats;
}

std::string SerializeMatrixBinary(const BinaryMatrix& m) {
  std::string out;
  out.reserve(sizeof(kBinaryMagic) + 12 + m.num_ones() * sizeof(ColumnId) +
              m.num_rows() * sizeof(uint32_t) + 12);
  out.append(kBinaryMagic, sizeof(kBinaryMagic));
  AppendLE<uint32_t>(&out, m.num_columns());
  AppendLE<uint64_t>(&out, m.num_rows());
  for (RowId r = 0; r < m.num_rows(); ++r) {
    const auto row = m.Row(r);
    AppendLE<uint32_t>(&out, static_cast<uint32_t>(row.size()));
    for (ColumnId c : row) AppendLE<uint32_t>(&out, c);
  }
  AppendLE<uint64_t>(&out, Fnv1a(out));
  out.append(kBinaryEndMagic, sizeof(kBinaryEndMagic));
  return out;
}

Status WriteMatrixBinaryFile(const BinaryMatrix& m, const std::string& path) {
  if (fail::Enabled()) {
    DMC_RETURN_IF_ERROR(fail::InjectStatus("matrix.binary.write"));
  }
  return AtomicWriteFile(path, SerializeMatrixBinary(m));
}

StatusOr<BinaryMatrix> ReadMatrixBinary(std::string_view data) {
  size_t offset = 0;
  if (data.size() < sizeof(kBinaryMagic) + 12 + 12) {
    return DataLossError("binary matrix truncated: only " +
                         std::to_string(data.size()) +
                         " bytes, smaller than the minimal container");
  }
  if (std::memcmp(data.data(), kBinaryMagic, sizeof(kBinaryMagic)) != 0) {
    return DataLossError("binary matrix has bad magic at byte 0");
  }
  offset = sizeof(kBinaryMagic);
  uint32_t num_columns = 0;
  uint64_t num_rows = 0;
  (void)ReadLE(data, &offset, &num_columns);  // length pre-checked above
  (void)ReadLE(data, &offset, &num_rows);
  if (num_rows > static_cast<uint64_t>(UINT32_MAX)) {
    return DataLossError("binary matrix header claims " +
                         std::to_string(num_rows) +
                         " rows, beyond the 32-bit row-id space (byte " +
                         std::to_string(sizeof(kBinaryMagic) + 4) + ")");
  }
  MatrixBuilder builder(num_columns);
  std::vector<ColumnId> cols;
  const bool inject = fail::Enabled();
  for (uint64_t r = 0; r < num_rows; ++r) {
    const size_t row_start = offset;
    if (inject) {
      DMC_RETURN_IF_ERROR(fail::InjectStatus("matrix.binary.row"));
    }
    uint32_t count = 0;
    if (!ReadLE(data, &offset, &count)) {
      return DataLossError("binary matrix truncated in row " +
                           std::to_string(r) + " at " +
                           ByteContext(row_start));
    }
    if (count > num_columns) {
      return DataLossError("binary matrix row " + std::to_string(r) + " at " +
                           ByteContext(row_start) + " claims " +
                           std::to_string(count) + " ids but there are only " +
                           std::to_string(num_columns) + " columns");
    }
    cols.clear();
    cols.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t id = 0;
      if (!ReadLE(data, &offset, &id)) {
        return DataLossError("binary matrix truncated in row " +
                             std::to_string(r) + " at " + ByteContext(offset));
      }
      if (id >= num_columns) {
        return DataLossError("binary matrix row " + std::to_string(r) +
                             " at " + ByteContext(offset - sizeof(uint32_t)) +
                             ": column id " + std::to_string(id) +
                             " out of range (columns=" +
                             std::to_string(num_columns) + ")");
      }
      if (!cols.empty() && id <= cols.back()) {
        return DataLossError("binary matrix row " + std::to_string(r) +
                             " at " + ByteContext(offset - sizeof(uint32_t)) +
                             ": column id " + std::to_string(id) +
                             " not strictly increasing after " +
                             std::to_string(cols.back()));
      }
      cols.push_back(id);
    }
    builder.AddRow(cols);
  }
  const size_t body_end = offset;
  uint64_t stored_checksum = 0;
  if (!ReadLE(data, &offset, &stored_checksum)) {
    return DataLossError("binary matrix truncated before checksum at " +
                         ByteContext(body_end));
  }
  const uint64_t actual = Fnv1a(data.substr(0, body_end));
  if (stored_checksum != actual) {
    return DataLossError("binary matrix checksum mismatch at " +
                         ByteContext(body_end) + ": stored " +
                         std::to_string(stored_checksum) + ", computed " +
                         std::to_string(actual));
  }
  if (data.size() - offset < sizeof(kBinaryEndMagic) ||
      std::memcmp(data.data() + offset, kBinaryEndMagic,
                  sizeof(kBinaryEndMagic)) != 0) {
    return DataLossError("binary matrix missing end magic at " +
                         ByteContext(offset));
  }
  offset += sizeof(kBinaryEndMagic);
  if (offset != data.size()) {
    return DataLossError("binary matrix has " +
                         std::to_string(data.size() - offset) +
                         " trailing bytes after the end magic at " +
                         ByteContext(offset));
  }
  return builder.Build();
}

StatusOr<BinaryMatrix> ReadMatrixBinaryFile(const std::string& path) {
  if (fail::Enabled()) {
    DMC_RETURN_IF_ERROR(fail::InjectStatus("matrix.binary.open"));
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return IOError("cannot open for read: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return IOError("read failed for " + path);
  return ReadMatrixBinary(buffer.str());
}

}  // namespace dmc
