// The 0/1 matrix substrate all mining algorithms run on.
//
// A BinaryMatrix is stored sparsely, CSR-style: for every row, the sorted
// list of column ids that are 1 in that row. This matches the paper's view
// of a row as "a set of columns" (§3.3) and makes the DMC merge step a
// linear merge of two sorted sequences.

#ifndef DMC_MATRIX_BINARY_MATRIX_H_
#define DMC_MATRIX_BINARY_MATRIX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "postings/posting_container.h"
#include "util/bitvector.h"

namespace dmc {

/// Column index ("attribute" in the paper).
using ColumnId = uint32_t;
/// Row index ("transaction" in the paper).
using RowId = uint32_t;

/// Immutable sparse 0/1 matrix. Rows are sorted, deduplicated column-id
/// lists; per-column 1-counts (`ones(c)` in the paper) are precomputed.
class BinaryMatrix {
 public:
  /// Empty 0x0 matrix.
  BinaryMatrix() = default;

  /// Builds from row lists. Each row is sorted and deduplicated; column
  /// ids must be < num_columns.
  static BinaryMatrix FromRows(ColumnId num_columns,
                               std::vector<std::vector<ColumnId>> rows);

  BinaryMatrix(const BinaryMatrix&) = default;
  BinaryMatrix& operator=(const BinaryMatrix&) = default;
  BinaryMatrix(BinaryMatrix&&) = default;
  BinaryMatrix& operator=(BinaryMatrix&&) = default;

  RowId num_rows() const { return static_cast<RowId>(row_offsets_.size() - 1); }
  ColumnId num_columns() const { return num_columns_; }

  /// Total number of 1 entries.
  size_t num_ones() const { return column_ids_.size(); }

  /// Sorted column ids that are 1 in row `r`.
  std::span<const ColumnId> Row(RowId r) const {
    return std::span<const ColumnId>(column_ids_.data() + row_offsets_[r],
                                     row_offsets_[r + 1] - row_offsets_[r]);
  }

  /// Number of 1s in row `r`.
  size_t RowSize(RowId r) const {
    return row_offsets_[r + 1] - row_offsets_[r];
  }

  /// ones(c): number of rows with a 1 in column `c`, for every column.
  const std::vector<uint32_t>& column_ones() const { return column_ones_; }

  /// Point query (binary search within the row).
  bool Get(RowId r, ColumnId c) const;

  /// Transposed copy (rows <-> columns). Used to produce plinkT from
  /// plinkF, exactly as the paper does with the link graph.
  BinaryMatrix Transposed() const;

  /// Dense bitmap of column `c` over all rows. O(num_ones) per call if
  /// used for every column — prefer AllColumnBitmaps for bulk use.
  BitVector ColumnBitmap(ColumnId c) const;

  /// Bitmaps for every column, built in one row sweep.
  std::vector<BitVector> AllColumnBitmaps() const;

  /// Hybrid posting container of column `c` over all rows (sealed).
  /// O(num_ones) per call if used for every column — prefer
  /// AllColumnPostings for bulk use.
  PostingContainer ColumnPosting(ColumnId c) const;

  /// Posting containers for every column, built in one row sweep.
  std::vector<PostingContainer> AllColumnPostings() const;

  /// Approximate heap bytes held by the matrix.
  size_t MemoryBytes() const {
    return column_ids_.size() * sizeof(ColumnId) +
           row_offsets_.size() * sizeof(size_t) +
           column_ones_.size() * sizeof(uint32_t);
  }

  friend bool operator==(const BinaryMatrix& a, const BinaryMatrix& b) {
    return a.num_columns_ == b.num_columns_ &&
           a.row_offsets_ == b.row_offsets_ && a.column_ids_ == b.column_ids_;
  }

 private:
  ColumnId num_columns_ = 0;
  // CSR layout: row r spans column_ids_[row_offsets_[r] .. row_offsets_[r+1]).
  std::vector<size_t> row_offsets_{0};
  std::vector<ColumnId> column_ids_;
  std::vector<uint32_t> column_ones_;
};

/// Incremental row-by-row builder. Grows the column count automatically to
/// fit the largest id seen unless a fixed count is given.
class MatrixBuilder {
 public:
  MatrixBuilder() = default;

  /// Fixes the column count; ids >= num_columns are rejected with a CHECK.
  explicit MatrixBuilder(ColumnId num_columns)
      : num_columns_(num_columns), fixed_columns_(true) {}

  /// Appends a row; `cols` may be unsorted and contain duplicates.
  void AddRow(std::vector<ColumnId> cols);

  /// Number of rows added so far.
  RowId num_rows() const { return static_cast<RowId>(rows_.size()); }

  /// Finalizes. The builder is left empty and reusable.
  BinaryMatrix Build();

 private:
  ColumnId num_columns_ = 0;
  bool fixed_columns_ = false;
  std::vector<std::vector<ColumnId>> rows_;
};

}  // namespace dmc

#endif  // DMC_MATRIX_BINARY_MATRIX_H_
