#include "matrix/binary_matrix.h"

#include <algorithm>

#include "util/logging.h"

namespace dmc {

BinaryMatrix BinaryMatrix::FromRows(ColumnId num_columns,
                                    std::vector<std::vector<ColumnId>> rows) {
  BinaryMatrix m;
  m.num_columns_ = num_columns;
  m.column_ones_.assign(num_columns, 0);
  m.row_offsets_.reserve(rows.size() + 1);
  size_t total = 0;
  for (const auto& row : rows) total += row.size();
  m.column_ids_.reserve(total);
  for (auto& row : rows) {
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
    for (ColumnId c : row) {
      DMC_CHECK_LT(c, num_columns);
      m.column_ids_.push_back(c);
      ++m.column_ones_[c];
    }
    m.row_offsets_.push_back(m.column_ids_.size());
  }
  return m;
}

bool BinaryMatrix::Get(RowId r, ColumnId c) const {
  const auto row = Row(r);
  return std::binary_search(row.begin(), row.end(), c);
}

BinaryMatrix BinaryMatrix::Transposed() const {
  std::vector<std::vector<ColumnId>> cols(num_columns_);
  for (ColumnId c = 0; c < num_columns_; ++c) {
    cols[c].reserve(column_ones_[c]);
  }
  const RowId n = num_rows();
  for (RowId r = 0; r < n; ++r) {
    for (ColumnId c : Row(r)) {
      cols[c].push_back(static_cast<ColumnId>(r));
    }
  }
  return FromRows(static_cast<ColumnId>(n), std::move(cols));
}

BitVector BinaryMatrix::ColumnBitmap(ColumnId c) const {
  DMC_CHECK_LT(c, num_columns_);
  BitVector bv(num_rows());
  const RowId n = num_rows();
  for (RowId r = 0; r < n; ++r) {
    if (Get(r, c)) bv.Set(r);
  }
  return bv;
}

std::vector<BitVector> BinaryMatrix::AllColumnBitmaps() const {
  std::vector<BitVector> bitmaps(num_columns_, BitVector(num_rows()));
  const RowId n = num_rows();
  for (RowId r = 0; r < n; ++r) {
    for (ColumnId c : Row(r)) bitmaps[c].Set(r);
  }
  return bitmaps;
}

PostingContainer BinaryMatrix::ColumnPosting(ColumnId c) const {
  DMC_CHECK_LT(c, num_columns_);
  PostingContainer p;
  const RowId n = num_rows();
  for (RowId r = 0; r < n; ++r) {
    if (Get(r, c)) p.Append(r);
  }
  p.Optimize();
  return p;
}

std::vector<PostingContainer> BinaryMatrix::AllColumnPostings() const {
  std::vector<PostingContainer> postings(num_columns_);
  const RowId n = num_rows();
  for (RowId r = 0; r < n; ++r) {
    for (ColumnId c : Row(r)) postings[c].Append(r);
  }
  for (PostingContainer& p : postings) p.Optimize();
  return postings;
}

void MatrixBuilder::AddRow(std::vector<ColumnId> cols) {
  for (ColumnId c : cols) {
    if (fixed_columns_) {
      DMC_CHECK_LT(c, num_columns_);
    } else if (c >= num_columns_) {
      num_columns_ = c + 1;
    }
  }
  rows_.push_back(std::move(cols));
}

BinaryMatrix MatrixBuilder::Build() {
  BinaryMatrix m = BinaryMatrix::FromRows(num_columns_, std::move(rows_));
  rows_.clear();
  if (!fixed_columns_) num_columns_ = 0;
  return m;
}

}  // namespace dmc
