// Matrix serialization and a streaming first-pass reader.
//
// Text format ("transaction format"): one row per line, space-separated
// column ids; blank lines are empty rows; lines starting with '#' are
// comments. This matches common association-rule data sets and keeps the
// examples/CLI self-contained.

#ifndef DMC_MATRIX_MATRIX_IO_H_
#define DMC_MATRIX_MATRIX_IO_H_

#include <functional>
#include <istream>
#include <ostream>
#include <span>
#include <string>

#include "matrix/binary_matrix.h"
#include "util/status.h"
#include "util/statusor.h"

namespace dmc {

/// Writes `m` in transaction text format.
[[nodiscard]] Status WriteMatrixText(const BinaryMatrix& m, std::ostream& os);
[[nodiscard]] Status WriteMatrixTextFile(const BinaryMatrix& m, const std::string& path);

/// Parses transaction text format. Fails on malformed tokens.
[[nodiscard]] StatusOr<BinaryMatrix> ReadMatrixText(std::istream& is);
[[nodiscard]] StatusOr<BinaryMatrix> ReadMatrixTextFile(const std::string& path);

/// First-pass statistics obtainable from a single stream scan without
/// materializing the matrix: ones(c) per column and per-row densities.
/// This mirrors the paper's first disk pass (count 1s, assign rows to
/// density buckets).
struct FirstPassStats {
  ColumnId num_columns = 0;
  RowId num_rows = 0;
  std::vector<uint32_t> column_ones;
  std::vector<uint32_t> row_density;
};

[[nodiscard]] StatusOr<FirstPassStats> ScanMatrixText(std::istream& is);

/// Streams rows from transaction text without materializing the matrix:
/// `callback(row)` is invoked once per row with sorted, deduplicated
/// column ids; a non-OK return aborts the scan. This is the primitive the
/// external (disk-based) miner is built on.
[[nodiscard]] Status ForEachRowText(
    std::istream& is,
    const std::function<Status(std::span<const ColumnId>)>& callback);

}  // namespace dmc

#endif  // DMC_MATRIX_MATRIX_IO_H_
