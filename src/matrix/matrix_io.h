// Matrix serialization and a streaming first-pass reader.
//
// Text format ("transaction format"): one row per line, space-separated
// column ids; blank lines are empty rows; lines starting with '#' are
// comments. This matches common association-rule data sets and keeps the
// examples/CLI self-contained.
//
// Binary format: a checksummed container for the same data —
//
//   offset 0   8 bytes   magic "DMCBIN1\n"
//          8   u32       num_columns
//         12   u64       num_rows
//         20   per row:  u32 count, then count u32 column ids
//                        (strictly increasing, all < num_columns)
//        ...   u64       FNV-1a checksum of every byte above
//        ...   4 bytes   end magic "DMCE"
//
// All integers are little-endian. Readers validate structure, ranges,
// sortedness and the checksum, and report failures as kDataLoss with the
// row index and byte offset; they never crash on corrupt input.
//
// Both readers are *strict by default*: a row whose column ids are
// unsorted, duplicated or out of range is rejected with a Status that
// names the line/row and byte offset. Legacy tolerant behaviour
// (sort + dedup on the fly) is available via TextReadOptions::normalize.
//
// File writers are crash-safe: they go through AtomicFileWriter
// (temp + fsync + rename), so a crash mid-write leaves the previous file
// (or no file) — never a torn one.

#ifndef DMC_MATRIX_MATRIX_IO_H_
#define DMC_MATRIX_MATRIX_IO_H_

#include <functional>
#include <istream>
#include <ostream>
#include <span>
#include <string>
#include <string_view>

#include "matrix/binary_matrix.h"
#include "util/status.h"
#include "util/statusor.h"

namespace dmc {

/// Controls how the text readers treat imperfect rows.
struct TextReadOptions {
  /// When true, rows are sorted and deduplicated on the fly (the historic
  /// tolerant behaviour). When false (default), a row with unsorted or
  /// duplicate column ids is rejected with kInvalidArgument.
  bool normalize = false;
  /// Largest acceptable column id; anything above it is rejected. The
  /// default (2^26 - 1) caps implied matrix width at ~64M columns so a
  /// corrupt id cannot balloon column_ones into an OOM.
  ColumnId max_column_id = (1u << 26) - 1;
};

/// Writes `m` in transaction text format.
[[nodiscard]] Status WriteMatrixText(const BinaryMatrix& m, std::ostream& os);
/// Atomically replaces `path` with `m` in transaction text format.
[[nodiscard]] Status WriteMatrixTextFile(const BinaryMatrix& m, const std::string& path);

/// Parses transaction text format. Fails on malformed tokens and (unless
/// `options.normalize`) on unsorted/duplicate ids; errors carry the line
/// number and byte offset.
[[nodiscard]] StatusOr<BinaryMatrix> ReadMatrixText(
    std::istream& is, const TextReadOptions& options = {});
[[nodiscard]] StatusOr<BinaryMatrix> ReadMatrixTextFile(
    const std::string& path, const TextReadOptions& options = {});

/// First-pass statistics obtainable from a single stream scan without
/// materializing the matrix: ones(c) per column and per-row densities.
/// This mirrors the paper's first disk pass (count 1s, assign rows to
/// density buckets).
struct FirstPassStats {
  ColumnId num_columns = 0;
  RowId num_rows = 0;
  std::vector<uint32_t> column_ones;
  std::vector<uint32_t> row_density;
};

[[nodiscard]] StatusOr<FirstPassStats> ScanMatrixText(
    std::istream& is, const TextReadOptions& options = {});

/// Streams rows from transaction text without materializing the matrix:
/// `callback(row)` is invoked once per row with sorted, deduplicated
/// column ids; a non-OK return aborts the scan. This is the primitive the
/// external (disk-based) miner is built on.
[[nodiscard]] Status ForEachRowText(
    std::istream& is,
    const std::function<Status(std::span<const ColumnId>)>& callback,
    const TextReadOptions& options = {});

/// Serializes `m` in the checksummed binary format (see header comment).
[[nodiscard]] std::string SerializeMatrixBinary(const BinaryMatrix& m);

/// Atomically replaces `path` with `m` in the binary format.
[[nodiscard]] Status WriteMatrixBinaryFile(const BinaryMatrix& m,
                                           const std::string& path);

/// Parses the binary format from an in-memory buffer. Corruption
/// (bad magic, truncation, unsorted/out-of-range ids, checksum mismatch)
/// is reported as kDataLoss with the row index and byte offset.
[[nodiscard]] StatusOr<BinaryMatrix> ReadMatrixBinary(std::string_view data);
[[nodiscard]] StatusOr<BinaryMatrix> ReadMatrixBinaryFile(
    const std::string& path);

}  // namespace dmc

#endif  // DMC_MATRIX_MATRIX_IO_H_
