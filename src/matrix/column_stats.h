// Column-density statistics and support-based column pruning.
//
// The paper plots the column-density distribution of all four data sets
// (Fig. 4) and derives pruned variants (WlogP, NewsP) by dropping columns
// outside a support window; both operations live here.

#ifndef DMC_MATRIX_COLUMN_STATS_H_
#define DMC_MATRIX_COLUMN_STATS_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "matrix/binary_matrix.h"

namespace dmc {

/// Histogram over exact column densities: entry {k, count} means `count`
/// columns have exactly `k` ones. Sorted by k ascending; zero-count
/// densities are omitted. This is the data behind Fig. 4.
struct ColumnDensityHistogram {
  struct Entry {
    uint64_t ones;
    uint64_t columns;
  };
  std::vector<Entry> entries;

  /// Number of columns with >= `min_ones` ones.
  uint64_t ColumnsWithAtLeast(uint64_t min_ones) const;
};

ColumnDensityHistogram ComputeColumnDensityHistogram(const BinaryMatrix& m);

/// Summary statistics printed by the Table-1 bench.
struct MatrixSummary {
  RowId rows = 0;
  ColumnId columns = 0;
  size_t ones = 0;
  double mean_row_density = 0.0;
  size_t max_row_density = 0;
  double mean_column_ones = 0.0;
  size_t max_column_ones = 0;
};

MatrixSummary Summarize(const BinaryMatrix& m);

/// Result of support pruning: the reduced matrix plus the mapping from new
/// column ids back to the original ids.
struct PrunedMatrix {
  BinaryMatrix matrix;
  /// original_column[new_id] = old_id.
  std::vector<ColumnId> original_column;
};

/// Keeps only columns whose 1-count lies in [min_ones, max_ones]; rows are
/// preserved (they may become empty). This is how the paper derives WlogP
/// (min 11) and NewsP (support window [35, 3278]).
PrunedMatrix SupportPruneColumns(
    const BinaryMatrix& m, uint64_t min_ones,
    uint64_t max_ones = std::numeric_limits<uint64_t>::max());

}  // namespace dmc

#endif  // DMC_MATRIX_COLUMN_STATS_H_
