// Row-ordering strategies for the second DMC pass.
//
// §4.1 of the paper: reading sparser rows first keeps early candidate
// lists small. Exact sorting is expensive on disk, so the paper buckets
// rows by density ranges [2^i, 2^{i+1}) during the first pass and reads
// lower-density buckets first; both the exact sort and the bucketed
// approximation are provided here.

#ifndef DMC_MATRIX_ROW_ORDER_H_
#define DMC_MATRIX_ROW_ORDER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "matrix/binary_matrix.h"

namespace dmc {

/// Rows in their original order.
std::vector<RowId> IdentityOrder(const BinaryMatrix& m);

/// Rows ordered by exact density, sparsest first; stable (original order
/// within equal densities).
std::vector<RowId> SortedByDensityOrder(const BinaryMatrix& m);

/// The paper's bucketed approximation of sparsest-first.
struct BucketedOrder {
  /// All row ids, grouped by bucket, sparsest bucket first; original order
  /// preserved within a bucket (this is what a two-pass disk partition
  /// yields).
  std::vector<RowId> order;
  /// Half-open ranges [begin, end) into `order`, one per non-empty bucket,
  /// sparsest first.
  std::vector<std::pair<size_t, size_t>> bucket_ranges;
  /// Density lower bound (2^i; bucket 0 covers densities 0 and 1) of each
  /// entry of bucket_ranges.
  std::vector<uint64_t> bucket_min_density;
};

/// Buckets rows into density ranges [2^i, 2^{i+1}) (bucket 0 additionally
/// holds empty rows), ordered sparsest bucket first. At most
/// ceil(log2(num_columns)) + 1 buckets, as the paper notes.
BucketedOrder DensityBucketOrder(const BinaryMatrix& m);

}  // namespace dmc

#endif  // DMC_MATRIX_ROW_ORDER_H_
