#include "matrix/column_stats.h"

#include <algorithm>
#include <map>

namespace dmc {

uint64_t ColumnDensityHistogram::ColumnsWithAtLeast(uint64_t min_ones) const {
  uint64_t total = 0;
  for (const Entry& e : entries) {
    if (e.ones >= min_ones) total += e.columns;
  }
  return total;
}

ColumnDensityHistogram ComputeColumnDensityHistogram(const BinaryMatrix& m) {
  std::map<uint64_t, uint64_t> counts;
  for (uint32_t ones : m.column_ones()) ++counts[ones];
  ColumnDensityHistogram hist;
  hist.entries.reserve(counts.size());
  for (const auto& [ones, columns] : counts) {
    hist.entries.push_back({ones, columns});
  }
  return hist;
}

MatrixSummary Summarize(const BinaryMatrix& m) {
  MatrixSummary s;
  s.rows = m.num_rows();
  s.columns = m.num_columns();
  s.ones = m.num_ones();
  for (RowId r = 0; r < s.rows; ++r) {
    s.max_row_density = std::max(s.max_row_density, m.RowSize(r));
  }
  for (uint32_t ones : m.column_ones()) {
    s.max_column_ones = std::max<size_t>(s.max_column_ones, ones);
  }
  s.mean_row_density = s.rows == 0 ? 0.0 : double(s.ones) / double(s.rows);
  s.mean_column_ones =
      s.columns == 0 ? 0.0 : double(s.ones) / double(s.columns);
  return s;
}

PrunedMatrix SupportPruneColumns(const BinaryMatrix& m, uint64_t min_ones,
                                 uint64_t max_ones) {
  PrunedMatrix result;
  const auto& ones = m.column_ones();
  std::vector<ColumnId> new_id(m.num_columns(),
                               std::numeric_limits<ColumnId>::max());
  for (ColumnId c = 0; c < m.num_columns(); ++c) {
    if (ones[c] >= min_ones && ones[c] <= max_ones) {
      new_id[c] = static_cast<ColumnId>(result.original_column.size());
      result.original_column.push_back(c);
    }
  }
  std::vector<std::vector<ColumnId>> rows(m.num_rows());
  for (RowId r = 0; r < m.num_rows(); ++r) {
    for (ColumnId c : m.Row(r)) {
      if (new_id[c] != std::numeric_limits<ColumnId>::max()) {
        rows[r].push_back(new_id[c]);
      }
    }
  }
  result.matrix = BinaryMatrix::FromRows(
      static_cast<ColumnId>(result.original_column.size()), std::move(rows));
  return result;
}

}  // namespace dmc
