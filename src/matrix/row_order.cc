#include "matrix/row_order.h"

#include <algorithm>
#include <numeric>

namespace dmc {

std::vector<RowId> IdentityOrder(const BinaryMatrix& m) {
  std::vector<RowId> order(m.num_rows());
  std::iota(order.begin(), order.end(), RowId{0});
  return order;
}

std::vector<RowId> SortedByDensityOrder(const BinaryMatrix& m) {
  std::vector<RowId> order = IdentityOrder(m);
  std::stable_sort(order.begin(), order.end(), [&m](RowId a, RowId b) {
    return m.RowSize(a) < m.RowSize(b);
  });
  return order;
}

namespace {
// Bucket index for a row with `density` ones: floor(log2(density)), with
// densities 0 and 1 sharing bucket 0.
int BucketIndex(size_t density) {
  if (density <= 1) return 0;
  int b = 0;
  while (density > 1) {
    density >>= 1;
    ++b;
  }
  return b;
}
}  // namespace

BucketedOrder DensityBucketOrder(const BinaryMatrix& m) {
  constexpr int kMaxBuckets = 33;  // densities fit in 32 bits
  std::vector<std::vector<RowId>> buckets(kMaxBuckets);
  const RowId n = m.num_rows();
  for (RowId r = 0; r < n; ++r) {
    buckets[BucketIndex(m.RowSize(r))].push_back(r);
  }

  BucketedOrder result;
  result.order.reserve(n);
  for (int b = 0; b < kMaxBuckets; ++b) {
    if (buckets[b].empty()) continue;
    const size_t begin = result.order.size();
    result.order.insert(result.order.end(), buckets[b].begin(),
                        buckets[b].end());
    result.bucket_ranges.emplace_back(begin, result.order.size());
    result.bucket_min_density.push_back(b == 0 ? 0 : (uint64_t{1} << b));
  }
  return result;
}

}  // namespace dmc
