// Accounting for one sharded (multi-process) mining run. Kept in its
// own dependency-free header so observe/stats_export.cc can serialize
// the struct without pulling in the whole coordinator.

#ifndef DMC_SHARD_SHARD_STATS_H_
#define DMC_SHARD_SHARD_STATS_H_

#include <cstdint>

namespace dmc {
namespace shard {

/// Accounting for one sharded run.
struct ShardMiningStats {
  int tasks_total = 0;
  int workers_spawned = 0;
  int workers_died = 0;
  uint64_t tasks_reassigned = 0;
  uint64_t heartbeats = 0;
  /// Tasks satisfied from a valid checkpoint instead of mining.
  int checkpoint_hits = 0;
  /// Tasks mined in-process after the process fleet gave out.
  int degraded_tasks = 0;
  double pass1_seconds = 0.0;
  double mine_seconds = 0.0;
  double total_seconds = 0.0;
  /// True when pass 1 was resumed from an external-miner checkpoint.
  bool resumed = false;
};

}  // namespace shard
}  // namespace dmc

#endif  // DMC_SHARD_SHARD_STATS_H_
