// The shard worker: one child process of the coordinator, speaking the
// shard protocol over two inherited pipe descriptors. A worker is a thin
// loop — receive the plan, mine whatever tasks arrive with the task's
// lhs-shard mask, stream heartbeats from the progress callback, send the
// canonical per-shard rule set back — and is deliberately stateless
// across tasks so the coordinator can hand any task to any worker.
//
// Failure behavior: a mining error (including an injected
// "shard.worker" failpoint) is reported as kTaskError and the worker
// stays alive for the next task; only transport failure (coordinator
// gone) or kShutdown ends the loop. Two environment hooks exist for the
// kill-a-worker tests: DMC_SHARD_TEST_CRASH_AFTER_ROWS=<n> calls _exit
// mid-mine after n rows, DMC_SHARD_TEST_HANG_AFTER_ROWS=<n> stops
// processing (and heartbeating) forever — the coordinator must detect
// both and reassign.

#ifndef DMC_SHARD_SHARD_WORKER_H_
#define DMC_SHARD_SHARD_WORKER_H_

#include <string>

#include "util/status.h"

namespace dmc {
namespace shard {

struct WorkerOptions {
  /// Descriptor carrying coordinator -> worker frames (blocking).
  int in_fd = -1;
  /// Descriptor carrying worker -> coordinator frames (blocking).
  int out_fd = -1;
  /// When non-empty, the worker's full metrics registry is atomically
  /// rewritten as JSONL here after every task, so the coordinator can
  /// merge worker metrics even when the worker later dies.
  std::string metrics_out;
};

/// Runs the worker loop until kShutdown or EOF on in_fd. Returns non-OK
/// only on transport or protocol failure (the exit code of
/// dmc_shard_worker).
[[nodiscard]] Status RunShardWorker(const WorkerOptions& options);

}  // namespace shard
}  // namespace dmc

#endif  // DMC_SHARD_SHARD_WORKER_H_
