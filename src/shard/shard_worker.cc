#include "shard/shard_worker.h"

#include <errno.h>
#include <string.h>
#include <unistd.h>

#include <cstdlib>
#include <sstream>
#include <utility>
#include <vector>

#include "core/dmc_options.h"
#include "core/external_miner.h"
#include "core/streaming_imp.h"
#include "core/streaming_sim.h"
#include "observe/metrics.h"
#include "serve/protocol.h"
#include "shard/shard_protocol.h"
#include "util/atomic_io.h"
#include "util/failpoint.h"
#include "util/stopwatch.h"

namespace dmc {
namespace shard {

namespace {

Status WriteAllFd(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return IOError(std::string("worker write: ") + strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

uint64_t EnvRows(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return 0;
  return std::strtoull(v, nullptr, 10);
}

/// Per-task mining state shared with the progress callback.
struct TaskContext {
  int out_fd = -1;
  uint32_t task_id = 0;
  uint64_t peak_counter_bytes = 0;
  uint64_t crash_after_rows = 0;
  uint64_t hang_after_rows = 0;
  bool transport_broken = false;
};

DmcPolicy PolicyFromPlan(const ShardPlan& plan, MetricsRegistry* metrics,
                         TaskContext* ctx) {
  DmcPolicy policy;
  policy.row_order = static_cast<RowOrderPolicy>(plan.row_order);
  policy.hundred_percent_phase = plan.hundred_percent_phase;
  policy.bitmap_fallback = plan.bitmap_fallback;
  policy.column_density_pruning = plan.column_density_pruning;
  policy.max_hits_pruning = plan.max_hits_pruning;
  policy.kernel = static_cast<MergeKernel>(plan.kernel);
  policy.memory_threshold_bytes = plan.memory_threshold_bytes;
  policy.bitmap_max_remaining_rows = plan.bitmap_max_remaining_rows;
  policy.observe.metrics = metrics;
  policy.observe.progress_interval_rows = plan.progress_interval_rows;
  // Heartbeats ride the progress callback: liveness and cancellation
  // share one cadence, so a worker that stops mining also stops
  // heartbeating and the coordinator's deadline fires.
  policy.observe.progress = [ctx](const ProgressUpdate& update) {
    if (update.counter_bytes > ctx->peak_counter_bytes) {
      ctx->peak_counter_bytes = update.counter_bytes;
    }
    if (ctx->crash_after_rows > 0 &&
        update.rows_processed >= ctx->crash_after_rows) {
      _exit(137);  // test hook: simulate an abrupt worker death
    }
    if (ctx->hang_after_rows > 0 &&
        update.rows_processed >= ctx->hang_after_rows) {
      for (;;) pause();  // test hook: alive but silent forever
    }
    if (!ctx->transport_broken) {
      const Status st = WriteAllFd(
          ctx->out_fd, EncodeHeartbeat(ctx->task_id, update.rows_processed));
      // A dead coordinator surfaces as EPIPE here; finish the task
      // anyway (the result write will fail and end the loop cleanly).
      if (!st.ok()) ctx->transport_broken = true;
    }
    return true;
  };
  return policy;
}

StatusOr<ShardResult> MineTask(const ShardPlan& plan,
                               const std::vector<uint8_t>& mask,
                               uint32_t task_id, MetricsRegistry* metrics,
                               TaskContext* ctx) {
  if (fail::Enabled()) {
    DMC_RETURN_IF_ERROR(fail::InjectStatus("shard.worker"));
  }
  if (mask.size() != plan.column_ones.size()) {
    return InvalidArgumentError("task mask width does not match the plan");
  }

  const DmcPolicy policy = PolicyFromPlan(plan, metrics, ctx);
  const bool bucketed = policy.row_order != RowOrderPolicy::kIdentity;

  ExternalIoOptions io;  // no checkpointing in workers; artifacts borrowed
  ExternalInput input(plan.input_path, plan.work_dir, bucketed, io,
                      policy.observe, nullptr);
  FirstPassStats first_pass;
  first_pass.num_columns = plan.num_columns;
  first_pass.num_rows = plan.num_rows;
  first_pass.column_ones = plan.column_ones;
  std::vector<int> buckets(plan.buckets.begin(), plan.buckets.end());
  input.AdoptPlan(std::move(first_pass), std::move(buckets));

  Status replay_status = Status::OK();
  auto replay = [&](auto&& sink) {
    if (!replay_status.ok()) return;
    replay_status = input.Replay(sink);
  };

  ShardResult result;
  result.task_id = task_id;
  result.engine = plan.engine;
  Stopwatch sw;
  if (plan.engine == Engine::kImplications) {
    ImplicationMiningOptions options;
    options.min_confidence = plan.threshold;
    options.policy = policy;
    auto rules = StreamImplications(plan.num_columns, plan.column_ones,
                                    plan.num_rows, options, replay, &mask);
    if (!replay_status.ok()) return replay_status;
    if (!rules.ok()) return rules.status();
    result.imp_rules = rules->TakeRules();
  } else {
    SimilarityMiningOptions options;
    options.min_similarity = plan.threshold;
    options.policy = policy;
    auto pairs = StreamSimilarities(plan.num_columns, plan.column_ones,
                                    plan.num_rows, options, replay, &mask);
    if (!replay_status.ok()) return replay_status;
    if (!pairs.ok()) return pairs.status();
    result.sim_pairs = pairs->TakePairs();
  }
  result.mine_seconds = sw.ElapsedSeconds();
  result.peak_counter_bytes = ctx->peak_counter_bytes;
  return result;
}

void ExportMetrics(const MetricsRegistry& metrics, const std::string& path) {
  if (path.empty()) return;
  std::ostringstream os;
  metrics.WriteJsonl(os);
  // Atomic whole-file replace: the coordinator either sees the previous
  // complete snapshot or this one, never a torn line.
  (void)AtomicWriteFile(path, os.str()).ok();
}

}  // namespace

Status RunShardWorker(const WorkerOptions& options) {
  const uint64_t crash_after = EnvRows("DMC_SHARD_TEST_CRASH_AFTER_ROWS");
  const uint64_t hang_after = EnvRows("DMC_SHARD_TEST_HANG_AFTER_ROWS");

  DMC_RETURN_IF_ERROR(WriteAllFd(options.out_fd, EncodeHello()));

  MetricsRegistry metrics;
  serve::FrameBuffer frames(kShardMaxFramePayloadBytes);
  ShardPlan plan;
  bool have_plan = false;

  char buf[1 << 16];
  for (;;) {
    std::string payload;
    // Drain every complete frame before reading more bytes.
    while (true) {
      const auto poll = frames.Next(&payload);
      if (poll == serve::FrameBuffer::Poll::kNeedMore) break;
      if (poll == serve::FrameBuffer::Poll::kBadFrame) {
        return InvalidArgumentError("worker: unframed bytes from coordinator");
      }
      auto msg = DecodeMessagePayload(payload);
      if (!msg.ok()) return msg.status();
      switch (msg->op) {
        case Op::kInit:
          plan = std::move(msg->plan);
          have_plan = true;
          break;
        case Op::kTask: {
          if (!have_plan) {
            return InvalidArgumentError("worker: kTask before kInit");
          }
          metrics.IncrCounter("dmc.shard.worker.tasks_received");
          TaskContext ctx;
          ctx.out_fd = options.out_fd;
          ctx.task_id = msg->task_id;
          ctx.crash_after_rows = crash_after;
          ctx.hang_after_rows = hang_after;
          auto result =
              MineTask(plan, msg->shard_mask, msg->task_id, &metrics, &ctx);
          std::string reply;
          if (result.ok()) {
            metrics.IncrCounter("dmc.shard.worker.tasks_ok");
            metrics.RecordTimer("dmc.shard.worker.mine_seconds",
                                result->mine_seconds);
            metrics.MaxGauge("dmc.shard.worker.peak_counter_bytes",
                             static_cast<double>(result->peak_counter_bytes));
            reply = EncodeResult(*result);
          } else {
            metrics.IncrCounter("dmc.shard.worker.tasks_failed");
            reply = EncodeTaskError(msg->task_id, result.status());
          }
          ExportMetrics(metrics, options.metrics_out);
          DMC_RETURN_IF_ERROR(WriteAllFd(options.out_fd, reply));
          break;
        }
        case Op::kShutdown:
          return Status::OK();
        default:
          return InvalidArgumentError("worker: unexpected op from coordinator");
      }
    }

    const ssize_t n = read(options.in_fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      return IOError(std::string("worker read: ") + strerror(errno));
    }
    if (n == 0) return Status::OK();  // coordinator closed the pipe
    frames.Append(buf, static_cast<size_t>(n));
  }
}

}  // namespace shard
}  // namespace dmc
