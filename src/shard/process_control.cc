#include "shard/process_control.h"

#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#include <string.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>

#include "serve/net_socket.h"
#include "util/failpoint.h"

extern char** environ;

namespace dmc {
namespace shard {

namespace {

/// The descriptors the child sees, by convention of the worker CLI.
constexpr int kChildInFd = 3;
constexpr int kChildOutFd = 4;

void CloseQuietly(int fd) {
  if (fd >= 0) close(fd);
}

}  // namespace

StatusOr<ChildProcess> SpawnWorker(const std::string& binary,
                                   const std::vector<std::string>& args,
                                   const std::vector<std::string>& extra_env) {
  // A worker that dies mid-frame leaves the coordinator writing into a
  // readerless pipe; without this, that write raises SIGPIPE and kills
  // the coordinator instead of surfacing EPIPE to the respawn logic.
  static const bool sigpipe_ignored = [] {
    signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)sigpipe_ignored;

  if (fail::Enabled()) {
    DMC_RETURN_IF_ERROR(fail::InjectStatus("shard.spawn"));
  }

  // to_child: coordinator writes [1], child reads [0] as fd 3.
  // from_child: child writes [1] as fd 4, coordinator reads [0].
  int to_child[2] = {-1, -1};
  int from_child[2] = {-1, -1};
  if (pipe(to_child) != 0) {
    return IOError(std::string("pipe: ") + strerror(errno));
  }
  if (pipe(from_child) != 0) {
    const int saved = errno;
    CloseQuietly(to_child[0]);
    CloseQuietly(to_child[1]);
    return IOError(std::string("pipe: ") + strerror(saved));
  }

  // argv/envp must be materialized before fork: only async-signal-safe
  // calls are allowed between fork and exec in a multithreaded parent.
  std::vector<std::string> argv_storage;
  argv_storage.push_back(binary);
  argv_storage.push_back("--in-fd=" + std::to_string(kChildInFd));
  argv_storage.push_back("--out-fd=" + std::to_string(kChildOutFd));
  for (const auto& a : args) argv_storage.push_back(a);
  std::vector<char*> argv;
  argv.reserve(argv_storage.size() + 1);
  for (auto& a : argv_storage) argv.push_back(a.data());
  argv.push_back(nullptr);

  std::vector<std::string> env_storage;
  for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
    env_storage.emplace_back(*e);
  }
  for (const auto& e : extra_env) env_storage.push_back(e);
  std::vector<char*> envp;
  envp.reserve(env_storage.size() + 1);
  for (auto& e : env_storage) envp.push_back(e.data());
  envp.push_back(nullptr);

  const pid_t pid = fork();
  if (pid < 0) {
    const int saved = errno;
    CloseQuietly(to_child[0]);
    CloseQuietly(to_child[1]);
    CloseQuietly(from_child[0]);
    CloseQuietly(from_child[1]);
    return IOError(std::string("fork: ") + strerror(saved));
  }

  if (pid == 0) {
    // Child: move the pipe ends onto the conventional descriptors and
    // exec. Everything here must be async-signal-safe.
    close(to_child[1]);
    close(from_child[0]);
    // The pipe ends can land anywhere — including on 3/4 themselves
    // when the parent's low descriptors are taken (ctest, daemons).
    // Naively dup2-ing both and then closing the originals can close a
    // descriptor just placed (e.g. to_child[0]==4: after from_child[1]
    // is dup2'ed onto 4, closing to_child[0] destroys it). Move any
    // end squatting on a target slot out of the way first, then
    // relocate one pipe at a time, closing its original before the
    // next dup2 can reuse that number.
    if (from_child[1] == kChildInFd) {
      const int moved = fcntl(from_child[1], F_DUPFD, kChildOutFd + 1);
      if (moved < 0) _exit(127);
      close(from_child[1]);
      from_child[1] = moved;
    }
    if (to_child[0] != kChildInFd) {
      if (dup2(to_child[0], kChildInFd) < 0) _exit(127);
      close(to_child[0]);
    }
    if (from_child[1] != kChildOutFd) {
      if (dup2(from_child[1], kChildOutFd) < 0) _exit(127);
      close(from_child[1]);
    }
    execve(binary.c_str(), argv.data(), envp.data());
    _exit(127);
  }

  // Parent.
  close(to_child[0]);
  close(from_child[1]);
  // The coordinator's event loop relies on these fds never blocking; a
  // blocking descriptor would stall the whole fleet, so an fcntl
  // failure here aborts the spawn instead of limping on.
  const Status nb_write = net::SetNonBlocking(to_child[1]);
  const Status nb_read =
      nb_write.ok() ? net::SetNonBlocking(from_child[0]) : nb_write;
  if (!nb_read.ok()) {
    kill(pid, SIGKILL);
    ReapBlocking(static_cast<int>(pid));
    CloseQuietly(to_child[1]);
    CloseQuietly(from_child[0]);
    return nb_read;
  }

  ChildProcess child;
  child.pid = static_cast<int>(pid);
  child.read_fd = from_child[0];
  child.write_fd = to_child[1];
  return child;
}

void SignalProcess(int pid, int signum) {
  if (pid > 0) kill(static_cast<pid_t>(pid), signum);
}

bool TryReap(int pid, int* exit_code) {
  if (pid <= 0) return false;
  int status = 0;
  const pid_t r = waitpid(static_cast<pid_t>(pid), &status, WNOHANG);
  if (r != pid) return false;
  if (exit_code != nullptr) {
    if (WIFEXITED(status)) {
      *exit_code = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
      *exit_code = 128 + WTERMSIG(status);
    } else {
      *exit_code = -1;
    }
  }
  return true;
}

void ReapBlocking(int pid) {
  if (pid <= 0) return;
  int status = 0;
  while (waitpid(static_cast<pid_t>(pid), &status, 0) < 0 &&
         errno == EINTR) {
  }
}

void CloseChannel(ChildProcess* child) {
  CloseQuietly(child->read_fd);
  CloseQuietly(child->write_fd);
  child->read_fd = -1;
  child->write_fd = -1;
}

}  // namespace shard
}  // namespace dmc
