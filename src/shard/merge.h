// Merging per-shard rule sets back into the single-process result.
//
// The lhs-shard partition gives each rule exactly one owner (implication
// rules belong to their antecedent's shard; a similarity pair belongs to
// the shard of its canonical — sparser, then lower-id — column), so the
// per-task canonical rule sets are pairwise disjoint and already sorted
// by the canonical (lhs, rhs) / (a, b) order. A k-way std::merge over
// them therefore reproduces Canonicalize(union) byte for byte — the
// merge-order invariant DESIGN §5.8 proves and the differential tests
// enforce.
//
// The confidence-ordered variants use the exact uint64 cross-multiplied
// comparators (rules/rule_index.h) so the merged ranking agrees with
// exact rational comparison even where doubles would tie.

#ifndef DMC_SHARD_MERGE_H_
#define DMC_SHARD_MERGE_H_

#include <vector>

#include "rules/rule_set.h"

namespace dmc {
namespace shard {

/// Merges disjoint canonical per-shard implication rule sets into the
/// canonical union. Inputs must each be canonical (sorted by (lhs, rhs),
/// deduplicated); the output equals Canonicalize of the concatenation.
ImplicationRuleSet MergeCanonical(
    std::vector<ImplicationRuleSet> parts);

/// Same for similarity pairs (inputs canonical: sparser-first
/// orientation, sorted by (a, b)).
SimilarityRuleSet MergeCanonicalSim(std::vector<SimilarityRuleSet> parts);

/// Merges per-shard rule sets directly into descending-confidence order
/// (exact uint64 cross-multiply, ties by ascending (lhs, rhs)) without
/// materializing the canonical union first. Equals
/// MergeCanonical(parts).SortedByConfidence() when no two rules'
/// confidences straddle a double-rounding boundary, and is the exact
/// order regardless.
ImplicationRuleSet MergeByConfidence(
    std::vector<ImplicationRuleSet> parts);

}  // namespace shard
}  // namespace dmc

#endif  // DMC_SHARD_MERGE_H_
