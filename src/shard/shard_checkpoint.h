// Per-task result checkpoints for the shard coordinator.
//
// When a worker dies, its in-flight task is reassigned; tasks that had
// already *finished* should not be re-mined. The coordinator therefore
// persists each completed task's rule set, bound to a fingerprint of the
// whole run configuration (input fingerprint, engine, threshold, shard
// mask), and on resume loads any checkpoint that still matches instead
// of assigning the task — a reassigned shard resumes from its last
// durable result rather than restarting (core/checkpoint.h does the same
// for pass 1).
//
// On-disk format (little-endian), mirroring core/checkpoint.h:
//
//   offset 0   8 bytes   magic "DMCSHRD\n"
//          8   u32       version (1)
//         12   u64       config fingerprint (see TaskFingerprint)
//         20   u32       task id
//         24   u8        engine (0 = implications, 1 = similarities)
//         25   u32       record count
//        ...   records   imp: 4 x u32 per rule; sim: 5 x u32 per pair
//        ...   u64       FNV-1a checksum of every byte above
//        ...   4 bytes   end magic "DMCE"
//
// Any structural problem, checksum mismatch, or unsupported version
// reads as kDataLoss; the coordinator treats every read failure as
// "mine it fresh" — a torn checkpoint can cost time, never correctness.

#ifndef DMC_SHARD_SHARD_CHECKPOINT_H_
#define DMC_SHARD_SHARD_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "shard/shard_protocol.h"
#include "util/status.h"
#include "util/statusor.h"

namespace dmc {
namespace shard {

/// Binds a task's checkpoint to the run configuration that produced it:
/// FNV-1a over the input fingerprint, engine, threshold bits, column
/// count, the task's shard mask, and the task id. Any drift — different
/// input, threshold, shard layout — changes the fingerprint and
/// invalidates the checkpoint.
uint64_t TaskFingerprint(const FileFingerprint& input, Engine engine,
                         double threshold, uint32_t num_columns,
                         const std::vector<uint8_t>& shard_mask,
                         uint32_t task_id);

/// Checkpoint path of `task_id` under `dir`.
std::string ShardCheckpointPath(const std::string& dir, uint32_t task_id);

/// Atomically writes the result (temp + fsync + rename via
/// AtomicFileWriter). `fingerprint` must come from TaskFingerprint.
[[nodiscard]] Status WriteShardCheckpoint(const ShardResult& result,
                                          uint64_t fingerprint,
                                          const std::string& path);

/// Reads and verifies one checkpoint. Corruption, truncation, checksum
/// mismatch or an unsupported (future) version yields kDataLoss; a
/// missing file yields kIOError. The caller must additionally compare
/// the returned fingerprint against TaskFingerprint of the current run.
struct LoadedShardCheckpoint {
  uint64_t fingerprint = 0;
  ShardResult result;
};
[[nodiscard]] StatusOr<LoadedShardCheckpoint> ReadShardCheckpoint(
    const std::string& path);

}  // namespace shard
}  // namespace dmc

#endif  // DMC_SHARD_SHARD_CHECKPOINT_H_
