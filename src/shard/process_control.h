// Child-process plumbing for the shard coordinator. This is the one
// translation unit allowed to call fork/execve/waitpid/kill — dmc_lint's
// banned-raw-process rule confines the raw process API to
// src/shard/process_*, the way banned-raw-socket confines sockets to
// serve/net_*.
//
// A worker child is connected by two pipes; the child sees them as fixed
// descriptors 3 (coordinator -> worker) and 4 (worker -> coordinator),
// passed on the command line as --in-fd=3 --out-fd=4 so stdout stays
// clean for human-readable logs. Both coordinator-side descriptors are
// non-blocking: the poll loop owns all progress, so a stalled or dead
// child can never wedge the coordinator in read() or write().

#ifndef DMC_SHARD_PROCESS_CONTROL_H_
#define DMC_SHARD_PROCESS_CONTROL_H_

#include <string>
#include <vector>

#include "util/status.h"
#include "util/statusor.h"

namespace dmc {
namespace shard {

/// A spawned worker and the coordinator's ends of its pipes.
struct ChildProcess {
  int pid = -1;
  /// Coordinator reads worker frames here (non-blocking).
  int read_fd = -1;
  /// Coordinator writes frames to the worker here (non-blocking).
  int write_fd = -1;
};

/// fork/execs `binary` with `args` (argv[1..], --in-fd/--out-fd are
/// prepended) and `extra_env` ("KEY=VALUE" entries appended to the
/// inherited environment — DMC_FAILPOINTS propagation rides here).
/// Checks failpoint site "shard.spawn" so spawn failures are injectable.
[[nodiscard]] StatusOr<ChildProcess> SpawnWorker(
    const std::string& binary, const std::vector<std::string>& args,
    const std::vector<std::string>& extra_env);

/// Sends `signum` to `pid`. Missing processes are not an error (the
/// child may have exited and been reaped already).
void SignalProcess(int pid, int signum);

/// Non-blocking reap. Returns true when the child has exited (and was
/// reaped); *exit_code holds the wait status interpretation: the exit
/// code for a normal exit, 128+signal for a signal death.
bool TryReap(int pid, int* exit_code);

/// Blocking reap; call only after SIGKILL (guaranteed to terminate).
void ReapBlocking(int pid);

/// Closes both coordinator-side descriptors (idempotent).
void CloseChannel(ChildProcess* child);

}  // namespace shard
}  // namespace dmc

#endif  // DMC_SHARD_PROCESS_CONTROL_H_
