#include "shard/coordinator.h"

#include <errno.h>
#include <poll.h>
#include <signal.h>
#include <string.h>
#include <unistd.h>

#include <algorithm>
#include <deque>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "core/checkpoint.h"
#include "core/parallel_dmc.h"
#include "core/streaming_imp.h"
#include "core/streaming_sim.h"
#include "observe/metrics.h"
#include "observe/trace.h"
#include "serve/protocol.h"
#include "shard/merge.h"
#include "shard/process_control.h"
#include "shard/shard_checkpoint.h"
#include "shard/shard_protocol.h"
#include "util/failpoint.h"
#include "util/stopwatch.h"

namespace dmc {
namespace shard {

namespace {

void Incr(const ObserveContext& obs, const char* name, uint64_t delta = 1) {
  if (obs.metrics != nullptr) obs.metrics->IncrCounter(name, delta);
}

std::string DefaultWorkerBinary() {
  char buf[4096];
  const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "dmc_shard_worker";
  buf[n] = '\0';
  std::string exe(buf);
  const size_t slash = exe.rfind('/');
  if (slash == std::string::npos) return "dmc_shard_worker";
  return exe.substr(0, slash + 1) + "dmc_shard_worker";
}

ShardPlan BuildPlan(Engine engine, double threshold, const DmcPolicy& policy,
                    const std::string& path, const std::string& work_dir,
                    const ExternalInput& input) {
  ShardPlan plan;
  plan.engine = engine;
  plan.threshold = threshold;
  plan.row_order = static_cast<uint8_t>(policy.row_order);
  plan.hundred_percent_phase = policy.hundred_percent_phase;
  plan.bitmap_fallback = policy.bitmap_fallback;
  plan.column_density_pruning = policy.column_density_pruning;
  plan.max_hits_pruning = policy.max_hits_pruning;
  plan.kernel = static_cast<uint8_t>(policy.kernel);
  plan.memory_threshold_bytes = policy.memory_threshold_bytes;
  plan.bitmap_max_remaining_rows = policy.bitmap_max_remaining_rows;
  plan.progress_interval_rows = policy.observe.progress_interval_rows;
  plan.input_path = path;
  plan.work_dir = work_dir;
  plan.num_columns = input.first_pass().num_columns;
  plan.num_rows = input.first_pass().num_rows;
  plan.column_ones = input.first_pass().column_ones;
  plan.buckets.assign(input.buckets().begin(), input.buckets().end());
  return plan;
}

struct Task {
  uint32_t id = 0;
  std::vector<uint8_t> mask;
  int attempts = 0;
  bool done = false;
  ShardResult result;
};

enum class SlotState { kDead, kAwaitingHello, kIdle, kMining };

struct Slot {
  ChildProcess proc;
  SlotState state = SlotState::kDead;
  int task = -1;  // index into tasks when kMining
  std::string outbox;
  serve::FrameBuffer frames{kShardMaxFramePayloadBytes};
  /// Elapsed-seconds instant after which the worker counts as dead;
  /// armed only while it owes us something (hello, or heartbeats for a
  /// task in flight).
  double deadline = 0.0;
  int respawns = 0;
  std::string metrics_path;
};

/// In-process fallback: mine one task on the calling thread over the
/// coordinator's own prepared input — same data, same lhs-shard mask,
/// so the result is identical to what the dead fleet would have sent.
StatusOr<ShardResult> MineTaskInProcess(const ShardPlan& plan,
                                        const DmcPolicy& policy,
                                        const Task& task,
                                        ExternalInput* input) {
  Status replay_status = Status::OK();
  auto replay = [&](auto&& sink) {
    if (!replay_status.ok()) return;
    replay_status = input->Replay(sink);
  };

  ShardResult result;
  result.task_id = task.id;
  result.engine = plan.engine;
  Stopwatch sw;
  if (plan.engine == Engine::kImplications) {
    ImplicationMiningOptions options;
    options.min_confidence = plan.threshold;
    options.policy = policy;
    auto rules = StreamImplications(plan.num_columns, plan.column_ones,
                                    plan.num_rows, options, replay,
                                    &task.mask);
    if (!replay_status.ok()) return replay_status;
    if (!rules.ok()) return rules.status();
    result.imp_rules = rules->TakeRules();
  } else {
    SimilarityMiningOptions options;
    options.min_similarity = plan.threshold;
    options.policy = policy;
    auto pairs = StreamSimilarities(plan.num_columns, plan.column_ones,
                                    plan.num_rows, options, replay,
                                    &task.mask);
    if (!replay_status.ok()) return replay_status;
    if (!pairs.ok()) return pairs.status();
    result.sim_pairs = pairs->TakePairs();
  }
  result.mine_seconds = sw.ElapsedSeconds();
  return result;
}

/// The coordinator's poll(2) event loop over one fleet of workers.
/// Leaves unfinished tasks for the caller (degrade path); only
/// programming errors produce a non-OK status.
class Fleet {
 public:
  Fleet(const ShardPlan& plan, const ShardOptions& opts,
        const ObserveContext& obs, ShardMiningStats* stats,
        uint64_t input_fingerprint_bytes, uint64_t input_fingerprint_hash,
        std::vector<Task>* tasks)
      : plan_(plan),
        opts_(opts),
        obs_(obs),
        stats_(stats),
        tasks_(*tasks) {
    input_fp_.bytes = input_fingerprint_bytes;
    input_fp_.hash = input_fingerprint_hash;
    binary_ = opts.worker_binary.empty() ? DefaultWorkerBinary()
                                         : opts.worker_binary;
    init_frame_ = EncodeInit(plan_);
    attempt_cap_ = std::max(
        2, opts_.max_respawns_per_slot + opts_.num_workers + 1);
  }

  void Run() {
    slots_.resize(static_cast<size_t>(opts_.num_workers));
    for (int i = 0; i < opts_.num_workers; ++i) {
      if (!opts_.worker_metrics_dir.empty()) {
        slots_[i].metrics_path = opts_.worker_metrics_dir + "/worker_" +
                                 std::to_string(i) + ".jsonl";
      }
    }
    for (size_t i = 0; i < tasks_.size(); ++i) {
      if (!tasks_[i].done) pending_.push_back(static_cast<int>(i));
    }
    if (pending_.empty()) return;
    for (int i = 0; i < opts_.num_workers; ++i) Spawn(i);

    while (!Finished()) {
      if (!AnyAlive()) break;  // fleet gone; caller degrades
      PumpAssignments();
      PollOnce();
      EnforceDeadlines();
    }
    Shutdown();
  }

 private:
  double Now() const { return clock_.ElapsedSeconds(); }

  bool Finished() const {
    // Done when nothing is pending and nothing is in flight. Tasks
    // abandoned past the attempt cap are neither — they fall through to
    // the degrade path.
    if (!pending_.empty()) return false;
    for (const Slot& s : slots_) {
      if (s.state == SlotState::kMining) return false;
    }
    return true;
  }

  bool AnyAlive() const {
    for (const Slot& s : slots_) {
      if (s.state != SlotState::kDead) return true;
    }
    return false;
  }

  void Spawn(int idx) {
    Slot& slot = slots_[idx];
    std::vector<std::string> args;
    if (!slot.metrics_path.empty()) {
      args.push_back("--metrics-out=" + slot.metrics_path);
    }
    std::vector<std::string> env = opts_.worker_env;
    // Children mine with the same injected faults as the coordinator,
    // whether the spec came from the environment or from Configure().
    const std::string spec = fail::CurrentSpec();
    if (!spec.empty()) env.push_back("DMC_FAILPOINTS=" + spec);

    RetryPolicy retry = opts_.spawn_retry;
    // Decorrelate per-slot respawn schedules deterministically.
    retry.jitter_seed ^= 0x9e3779b97f4a7c15ULL * (idx + 1);
    const Status st = RetryWithBackoff(retry, [&]() -> Status {
      auto child = SpawnWorker(binary_, args, env);
      if (!child.ok()) return child.status();
      slot.proc = *child;
      return Status::OK();
    });
    if (!st.ok()) {
      slot.state = SlotState::kDead;
      Incr(obs_, "dmc.shard.spawn_failures");
      return;
    }
    slot.state = SlotState::kAwaitingHello;
    slot.task = -1;
    slot.outbox.clear();
    slot.frames = serve::FrameBuffer(kShardMaxFramePayloadBytes);
    slot.deadline = Now() + opts_.heartbeat_timeout_seconds;
    ++stats_->workers_spawned;
    Incr(obs_, "dmc.shard.workers_spawned");
    if (opts_.on_worker_spawn) opts_.on_worker_spawn(idx, slot.proc.pid);
  }

  void DeclareDead(int idx) {
    Slot& slot = slots_[idx];
    if (slot.state == SlotState::kDead) return;
    // SIGKILL before reaping: the "death" may be a hang or a protocol
    // violation with the process still running.
    SignalProcess(slot.proc.pid, SIGKILL);
    CloseChannel(&slot.proc);
    ReapBlocking(slot.proc.pid);
    slot.proc.pid = -1;
    ++stats_->workers_died;
    Incr(obs_, "dmc.shard.workers_died");
    if (slot.state == SlotState::kMining && slot.task >= 0) {
      Requeue(slot.task, /*front=*/true);
      ++stats_->tasks_reassigned;
      Incr(obs_, "dmc.shard.tasks_reassigned");
    }
    slot.task = -1;
    slot.state = SlotState::kDead;
    slot.deadline = 0.0;
    if (!Finished() && slot.respawns < opts_.max_respawns_per_slot) {
      ++slot.respawns;
      Incr(obs_, "dmc.shard.respawns");
      Spawn(idx);
    }
  }

  void Requeue(int task_idx, bool front) {
    Task& t = tasks_[task_idx];
    if (t.done) return;
    if (t.attempts >= attempt_cap_) {
      // Abandoned: some input/worker combination keeps killing workers
      // on this task. The degrade path (or a clean failure) takes over
      // after the fleet drains the rest.
      Incr(obs_, "dmc.shard.tasks_abandoned");
      return;
    }
    if (front) {
      pending_.push_front(task_idx);
    } else {
      pending_.push_back(task_idx);
    }
  }

  void PumpAssignments() {
    for (size_t i = 0; i < slots_.size() && !pending_.empty(); ++i) {
      Slot& slot = slots_[i];
      if (slot.state != SlotState::kIdle) continue;
      const int ti = pending_.front();
      pending_.pop_front();
      Task& t = tasks_[ti];
      ++t.attempts;
      slot.task = ti;
      slot.state = SlotState::kMining;
      slot.outbox += EncodeTask(t.id, t.mask);
      slot.deadline = Now() + opts_.heartbeat_timeout_seconds;
      FlushOutbox(static_cast<int>(i));
    }
  }

  void FlushOutbox(int idx) {
    Slot& slot = slots_[idx];
    while (slot.state != SlotState::kDead && !slot.outbox.empty()) {
      const ssize_t n = write(slot.proc.write_fd, slot.outbox.data(),
                              slot.outbox.size());
      if (n > 0) {
        slot.outbox.erase(0, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      // EPIPE and friends: the worker is gone.
      DeclareDead(idx);
      return;
    }
  }

  void DrainRead(int idx) {
    Slot& slot = slots_[idx];
    // Failpoint site for the coordinator's receive path; an injected
    // fault is indistinguishable from a worker whose pipe broke.
    if (fail::Enabled() && !fail::InjectStatus("shard.read").ok()) {
      DeclareDead(idx);
      return;
    }
    char buf[1 << 16];
    for (;;) {
      const ssize_t n = read(slot.proc.read_fd, buf, sizeof(buf));
      if (n > 0) {
        slot.frames.Append(buf, static_cast<size_t>(n));
        continue;
      }
      if (n == 0) {  // EOF: the worker exited (or crashed)
        DeclareDead(idx);
        return;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      DeclareDead(idx);
      return;
    }
    ProcessFrames(idx);
  }

  void ProcessFrames(int idx) {
    Slot& slot = slots_[idx];
    std::string payload;
    while (slot.state != SlotState::kDead) {
      const auto poll = slot.frames.Next(&payload);
      if (poll == serve::FrameBuffer::Poll::kNeedMore) return;
      if (poll == serve::FrameBuffer::Poll::kBadFrame) {
        Incr(obs_, "dmc.shard.protocol_errors");
        DeclareDead(idx);
        return;
      }
      auto msg = DecodeMessagePayload(payload);
      if (!msg.ok()) {
        Incr(obs_, "dmc.shard.protocol_errors");
        DeclareDead(idx);
        return;
      }
      HandleMessage(idx, *msg);
    }
  }

  void HandleMessage(int idx, Message& msg) {
    Slot& slot = slots_[idx];
    switch (msg.op) {
      case Op::kHello: {
        if (slot.state != SlotState::kAwaitingHello) break;
        slot.outbox += init_frame_;
        slot.state = SlotState::kIdle;
        slot.deadline = 0.0;
        FlushOutbox(idx);
        break;
      }
      case Op::kHeartbeat: {
        ++stats_->heartbeats;
        Incr(obs_, "dmc.shard.heartbeats");
        if (slot.state == SlotState::kMining) {
          slot.deadline = Now() + opts_.heartbeat_timeout_seconds;
        }
        break;
      }
      case Op::kResult: {
        if (slot.state != SlotState::kMining || slot.task < 0 ||
            tasks_[slot.task].id != msg.result.task_id) {
          Incr(obs_, "dmc.shard.protocol_errors");
          DeclareDead(idx);
          return;
        }
        Task& t = tasks_[slot.task];
        t.result = std::move(msg.result);
        t.done = true;
        WriteTaskCheckpoint(t);
        slot.task = -1;
        slot.state = SlotState::kIdle;
        slot.deadline = 0.0;
        Incr(obs_, "dmc.shard.tasks_completed");
        break;
      }
      case Op::kTaskError: {
        if (slot.state != SlotState::kMining || slot.task < 0) {
          Incr(obs_, "dmc.shard.protocol_errors");
          DeclareDead(idx);
          return;
        }
        // The worker is healthy, the task failed (e.g. an injected
        // shard.worker fault): requeue at the back so a different
        // worker — or a later attempt — picks it up.
        Incr(obs_, "dmc.shard.task_errors");
        Requeue(slot.task, /*front=*/false);
        slot.task = -1;
        slot.state = SlotState::kIdle;
        slot.deadline = 0.0;
        break;
      }
      default:
        Incr(obs_, "dmc.shard.protocol_errors");
        DeclareDead(idx);
        return;
    }
  }

  void WriteTaskCheckpoint(const Task& t) {
    if (opts_.checkpoint_dir.empty()) return;
    const uint64_t fp =
        TaskFingerprint(input_fp_, plan_.engine, plan_.threshold,
                        plan_.num_columns, t.mask, t.id);
    const Status st = WriteShardCheckpoint(
        t.result, fp, ShardCheckpointPath(opts_.checkpoint_dir, t.id));
    if (!st.ok()) {
      // A failed checkpoint costs resumability, never the run.
      Incr(obs_, "dmc.shard.checkpoint_write_failures");
    }
  }

  void PollOnce() {
    std::vector<pollfd> fds;
    std::vector<int> owner;
    double next_deadline = 0.0;
    for (size_t i = 0; i < slots_.size(); ++i) {
      Slot& slot = slots_[i];
      if (slot.state == SlotState::kDead) continue;
      pollfd p{};
      p.fd = slot.proc.read_fd;
      p.events = POLLIN;
      fds.push_back(p);
      owner.push_back(static_cast<int>(i));
      if (!slot.outbox.empty()) {
        pollfd w{};
        w.fd = slot.proc.write_fd;
        w.events = POLLOUT;
        fds.push_back(w);
        owner.push_back(static_cast<int>(i));
      }
      if (slot.deadline > 0.0 &&
          (next_deadline == 0.0 || slot.deadline < next_deadline)) {
        next_deadline = slot.deadline;
      }
    }
    if (fds.empty()) return;

    int timeout_ms = 100;  // floor so dead-fleet detection cannot stall
    if (next_deadline > 0.0) {
      const double remaining = next_deadline - Now();
      timeout_ms = std::max(0, std::min(timeout_ms,
                                        static_cast<int>(remaining * 1000)));
    }
    const int rc = poll(fds.data(), fds.size(), timeout_ms);
    if (rc <= 0) return;  // timeout or EINTR; deadlines handle the rest
    for (size_t k = 0; k < fds.size(); ++k) {
      const int idx = owner[k];
      if (slots_[idx].state == SlotState::kDead) continue;
      if (fds[k].revents & POLLOUT) FlushOutbox(idx);
      if (fds[k].revents & (POLLIN | POLLHUP | POLLERR)) DrainRead(idx);
    }
  }

  void EnforceDeadlines() {
    const double t = Now();
    for (size_t i = 0; i < slots_.size(); ++i) {
      Slot& slot = slots_[i];
      if (slot.state == SlotState::kDead || slot.deadline <= 0.0) continue;
      if (t >= slot.deadline) {
        // Hung (or never said hello): no frame within the heartbeat
        // window while holding an obligation.
        Incr(obs_, "dmc.shard.heartbeat_timeouts");
        DeclareDead(static_cast<int>(i));
      }
    }
  }

  void Shutdown() {
    for (size_t i = 0; i < slots_.size(); ++i) {
      Slot& slot = slots_[i];
      if (slot.state == SlotState::kDead) continue;
      slot.outbox += EncodeShutdown();
      FlushOutbox(static_cast<int>(i));
    }
    const double grace_end = Now() + opts_.shutdown_grace_seconds;
    for (size_t i = 0; i < slots_.size(); ++i) {
      Slot& slot = slots_[i];
      if (slot.state == SlotState::kDead) continue;
      int exit_code = 0;
      while (!TryReap(slot.proc.pid, &exit_code) && Now() < grace_end) {
        usleep(5000);
      }
      if (Now() >= grace_end && !TryReap(slot.proc.pid, &exit_code)) {
        SignalProcess(slot.proc.pid, SIGKILL);
        ReapBlocking(slot.proc.pid);
      }
      CloseChannel(&slot.proc);
      slot.proc.pid = -1;
      slot.state = SlotState::kDead;
    }
  }

  const ShardPlan& plan_;
  const ShardOptions& opts_;
  const ObserveContext& obs_;
  ShardMiningStats* stats_;
  std::vector<Task>& tasks_;
  FileFingerprint input_fp_;
  std::string binary_;
  std::string init_frame_;
  int attempt_cap_ = 2;
  Stopwatch clock_;
  std::vector<Slot> slots_;
  std::deque<int> pending_;
};

/// Checkpoints a task mined outside the fleet (the degrade path), so a
/// resumed run also skips degraded tasks.
void WriteTaskCheckpointStandalone(const ShardOptions& opts,
                                   const FileFingerprint& input_fp,
                                   const ShardPlan& plan, const Task& t,
                                   const ObserveContext& obs) {
  if (opts.checkpoint_dir.empty()) return;
  const uint64_t fp = TaskFingerprint(input_fp, plan.engine, plan.threshold,
                                      plan.num_columns, t.mask, t.id);
  const Status st = WriteShardCheckpoint(
      t.result, fp, ShardCheckpointPath(opts.checkpoint_dir, t.id));
  if (!st.ok()) Incr(obs, "dmc.shard.checkpoint_write_failures");
}

void MergeWorkerMetrics(const ShardOptions& opts, const ObserveContext& obs) {
  if (opts.worker_metrics_dir.empty() || obs.metrics == nullptr) return;
  for (int i = 0; i < opts.num_workers; ++i) {
    const std::string path =
        opts.worker_metrics_dir + "/worker_" + std::to_string(i) + ".jsonl";
    std::ifstream in(path, std::ios::binary);
    if (!in) continue;  // worker never exported (e.g. died before a task)
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) continue;
    if (!MergeMetricsJsonl(buffer.str(), obs.metrics).ok()) {
      obs.metrics->IncrCounter("dmc.shard.metrics_merge_failures");
    }
  }
}

/// The whole sharded mine, engine-agnostic: pass 1, task construction
/// (with checkpoint resume), the worker fleet, the in-process degrade
/// path, and stats. Returns the per-task results in task order.
StatusOr<std::vector<ShardResult>> RunShardedMine(
    Engine engine, double threshold, const DmcPolicy& policy,
    const std::string& path, const std::string& work_dir,
    const ShardOptions& opts, ShardMiningStats* stats) {
  if (opts.num_workers < 1) {
    return InvalidArgumentError("shard: num_workers must be >= 1");
  }
  if (opts.tasks_per_worker < 1) {
    return InvalidArgumentError("shard: tasks_per_worker must be >= 1");
  }
  if (!(threshold > 0.0) || threshold > 1.0) {
    return InvalidArgumentError("shard: threshold must be in (0, 1]");
  }
  if (opts.resume && opts.checkpoint_dir.empty()) {
    return InvalidArgumentError(
        "shard: resume requires a checkpoint_dir to resume from");
  }
  // Create the artifact directories up front: a misspelled or
  // first-run path must not silently turn every checkpoint write (and
  // every worker metrics file) into a counted-but-invisible failure.
  for (const std::string* dir :
       {&opts.checkpoint_dir, &opts.worker_metrics_dir}) {
    if (dir->empty()) continue;
    std::error_code ec;
    std::filesystem::create_directories(*dir, ec);
    if (ec) {
      return IOError("shard: cannot create directory " + *dir + ": " +
                     ec.message());
    }
  }

  const ObserveContext& obs = policy.observe;
  Stopwatch total;
  ShardMiningStats local_stats;
  if (stats == nullptr) stats = &local_stats;

  // Pass 1 (or checkpoint resume) — exactly once, in this process.
  ExternalMiningStats ext_stats;
  const bool bucketed = policy.row_order != RowOrderPolicy::kIdentity;
  ExternalInput input(path, work_dir, bucketed, opts.io, obs, &ext_stats);
  {
    ScopedSpan span(obs.trace, "shard/pass1", obs.trace_lane);
    DMC_RETURN_IF_ERROR(input.Prepare());
  }
  stats->pass1_seconds = ext_stats.pass1_seconds + ext_stats.partition_seconds;
  stats->resumed = ext_stats.resumed;

  const ShardPlan plan =
      BuildPlan(engine, threshold, policy, path, work_dir, input);

  // Fingerprint the input once iff task checkpoints are on; the
  // fingerprint binds every checkpoint to this exact input.
  FileFingerprint input_fp;
  if (!opts.checkpoint_dir.empty()) {
    auto fp = FingerprintFile(path);
    if (!fp.ok()) return fp.status();
    input_fp = *fp;
  }

  // Balanced antecedent shards; over-partitioned so reassignment moves
  // 1/(workers*tasks_per_worker) of the work, not 1/workers.
  const uint32_t num_tasks = static_cast<uint32_t>(opts.num_workers) *
                             static_cast<uint32_t>(opts.tasks_per_worker);
  std::vector<std::vector<uint8_t>> masks =
      MakeColumnShards(plan.column_ones, num_tasks);
  std::vector<Task> tasks(masks.size());
  for (size_t i = 0; i < masks.size(); ++i) {
    tasks[i].id = static_cast<uint32_t>(i);
    tasks[i].mask = std::move(masks[i]);
  }
  stats->tasks_total = static_cast<int>(tasks.size());

  // Resume finished tasks from their checkpoints.
  if (opts.resume) {
    for (Task& t : tasks) {
      auto loaded = ReadShardCheckpoint(
          ShardCheckpointPath(opts.checkpoint_dir, t.id));
      if (!loaded.ok()) continue;  // missing/corrupt: mine it fresh
      const uint64_t expect = TaskFingerprint(
          input_fp, engine, threshold, plan.num_columns, t.mask, t.id);
      if (loaded->fingerprint != expect ||
          loaded->result.engine != engine ||
          loaded->result.task_id != t.id) {
        continue;  // stale config: mine it fresh
      }
      t.result = std::move(loaded->result);
      t.done = true;
      ++stats->checkpoint_hits;
      Incr(obs, "dmc.shard.checkpoint_hits");
    }
  }

  // The fleet.
  Stopwatch mine_clock;
  {
    ScopedSpan span(obs.trace, "shard/fleet", obs.trace_lane);
    Fleet fleet(plan, opts, obs, stats, input_fp.bytes, input_fp.hash,
                &tasks);
    fleet.Run();
  }

  // Degrade: anything the fleet could not finish is mined right here,
  // in-process, over the same artifacts — or the run fails cleanly.
  for (Task& t : tasks) {
    if (t.done) continue;
    if (!opts.degrade_to_in_process) {
      return InternalError(
          "shard: worker respawns exhausted with tasks unfinished and "
          "degrade_to_in_process disabled");
    }
    ScopedSpan span(obs.trace, "shard/degrade", obs.trace_lane);
    auto result = MineTaskInProcess(plan, policy, t, &input);
    if (!result.ok()) return result.status();
    t.result = std::move(*result);
    t.done = true;
    ++stats->degraded_tasks;
    Incr(obs, "dmc.shard.degraded_tasks");
    WriteTaskCheckpointStandalone(opts, input_fp, plan, t, obs);
  }
  stats->mine_seconds = mine_clock.ElapsedSeconds();

  MergeWorkerMetrics(opts, obs);

  stats->total_seconds = total.ElapsedSeconds();
  if (obs.metrics != nullptr) {
    obs.metrics->RecordTimer("dmc.shard.pass1_seconds", stats->pass1_seconds);
    obs.metrics->RecordTimer("dmc.shard.mine_seconds", stats->mine_seconds);
    obs.metrics->RecordTimer("dmc.shard.total_seconds", stats->total_seconds);
    obs.metrics->SetGauge("dmc.shard.num_workers",
                          static_cast<double>(opts.num_workers));
    obs.metrics->SetGauge("dmc.shard.tasks_total",
                          static_cast<double>(stats->tasks_total));
  }

  std::vector<ShardResult> results;
  results.reserve(tasks.size());
  for (Task& t : tasks) results.push_back(std::move(t.result));
  return results;
}

}  // namespace

StatusOr<ImplicationRuleSet> MineImplicationsSharded(
    const std::string& path, const ImplicationMiningOptions& options,
    const std::string& work_dir, const ShardOptions& shard,
    ShardMiningStats* stats) {
  auto results =
      RunShardedMine(Engine::kImplications, options.min_confidence,
                     options.policy, path, work_dir, shard, stats);
  if (!results.ok()) return results.status();
  if (fail::Enabled()) {
    DMC_RETURN_IF_ERROR(fail::InjectStatus("shard.merge"));
  }
  const ObserveContext& obs = options.policy.observe;
  ScopedSpan span(obs.trace, "shard/merge", obs.trace_lane);
  std::vector<ImplicationRuleSet> parts;
  parts.reserve(results->size());
  for (ShardResult& r : *results) {
    parts.emplace_back(std::move(r.imp_rules));
  }
  return MergeCanonical(std::move(parts));
}

StatusOr<SimilarityRuleSet> MineSimilaritiesSharded(
    const std::string& path, const SimilarityMiningOptions& options,
    const std::string& work_dir, const ShardOptions& shard,
    ShardMiningStats* stats) {
  auto results =
      RunShardedMine(Engine::kSimilarities, options.min_similarity,
                     options.policy, path, work_dir, shard, stats);
  if (!results.ok()) return results.status();
  if (fail::Enabled()) {
    DMC_RETURN_IF_ERROR(fail::InjectStatus("shard.merge"));
  }
  const ObserveContext& obs = options.policy.observe;
  ScopedSpan span(obs.trace, "shard/merge", obs.trace_lane);
  std::vector<SimilarityRuleSet> parts;
  parts.reserve(results->size());
  for (ShardResult& r : *results) {
    parts.emplace_back(std::move(r.sim_pairs));
  }
  return MergeCanonicalSim(std::move(parts));
}

}  // namespace shard
}  // namespace dmc
