#include "shard/shard_checkpoint.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "util/atomic_io.h"

namespace dmc {
namespace shard {

namespace {

constexpr char kMagic[8] = {'D', 'M', 'C', 'S', 'H', 'R', 'D', '\n'};
constexpr char kEndMagic[4] = {'D', 'M', 'C', 'E'};
constexpr uint32_t kVersion = 1;

uint64_t Fnv1aInit() { return 1469598103934665603ULL; }

uint64_t Fnv1aUpdate(uint64_t h, const char* data, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

template <typename T>
void AppendLE(std::string* out, T value) {
  char buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  out->append(buf, sizeof(T));
}

template <typename T>
bool ReadLE(const std::string& data, size_t* offset, T* value) {
  if (data.size() - *offset < sizeof(T)) return false;
  std::memcpy(value, data.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

Status Corrupt(const std::string& path, const std::string& what) {
  return DataLossError("shard checkpoint " + path + ": " + what);
}

}  // namespace

uint64_t TaskFingerprint(const FileFingerprint& input, Engine engine,
                         double threshold, uint32_t num_columns,
                         const std::vector<uint8_t>& shard_mask,
                         uint32_t task_id) {
  std::string blob;
  AppendLE<uint64_t>(&blob, input.bytes);
  AppendLE<uint64_t>(&blob, input.hash);
  AppendLE<uint8_t>(&blob, static_cast<uint8_t>(engine));
  uint64_t threshold_bits = 0;
  static_assert(sizeof(threshold_bits) == sizeof(threshold));
  std::memcpy(&threshold_bits, &threshold, sizeof(threshold));
  AppendLE<uint64_t>(&blob, threshold_bits);
  AppendLE<uint32_t>(&blob, num_columns);
  AppendLE<uint32_t>(&blob, task_id);
  blob.append(reinterpret_cast<const char*>(shard_mask.data()),
              shard_mask.size());
  return Fnv1aUpdate(Fnv1aInit(), blob.data(), blob.size());
}

std::string ShardCheckpointPath(const std::string& dir, uint32_t task_id) {
  return dir + "/dmc_shard_task_" + std::to_string(task_id) + ".ckpt";
}

Status WriteShardCheckpoint(const ShardResult& result, uint64_t fingerprint,
                            const std::string& path) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  AppendLE<uint32_t>(&out, kVersion);
  AppendLE<uint64_t>(&out, fingerprint);
  AppendLE<uint32_t>(&out, result.task_id);
  AppendLE<uint8_t>(&out, static_cast<uint8_t>(result.engine));
  if (result.engine == Engine::kImplications) {
    AppendLE<uint32_t>(&out, static_cast<uint32_t>(result.imp_rules.size()));
    for (const auto& r : result.imp_rules) {
      AppendLE<uint32_t>(&out, r.lhs);
      AppendLE<uint32_t>(&out, r.rhs);
      AppendLE<uint32_t>(&out, r.lhs_ones);
      AppendLE<uint32_t>(&out, r.misses);
    }
  } else {
    AppendLE<uint32_t>(&out, static_cast<uint32_t>(result.sim_pairs.size()));
    for (const auto& p : result.sim_pairs) {
      AppendLE<uint32_t>(&out, p.a);
      AppendLE<uint32_t>(&out, p.b);
      AppendLE<uint32_t>(&out, p.ones_a);
      AppendLE<uint32_t>(&out, p.ones_b);
      AppendLE<uint32_t>(&out, p.intersection);
    }
  }
  AppendLE<uint64_t>(&out, Fnv1aUpdate(Fnv1aInit(), out.data(), out.size()));
  out.append(kEndMagic, sizeof(kEndMagic));
  return AtomicWriteFile(path, out);
}

StatusOr<LoadedShardCheckpoint> ReadShardCheckpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return IOError("cannot open shard checkpoint: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return IOError("read failed for shard checkpoint: " + path);
  const std::string data = buffer.str();

  if (data.size() < sizeof(kMagic) + 4 + 8 + 4 + 1 + 4 + 8 + 4) {
    return Corrupt(path,
                   "truncated (" + std::to_string(data.size()) + " bytes)");
  }
  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Corrupt(path, "bad magic");
  }
  size_t offset = sizeof(kMagic);
  uint32_t version = 0;
  (void)ReadLE(data, &offset, &version);
  if (version != kVersion) {
    return Corrupt(path, "unsupported version " + std::to_string(version));
  }

  LoadedShardCheckpoint loaded;
  uint8_t engine = 0;
  uint32_t count = 0;
  if (!ReadLE(data, &offset, &loaded.fingerprint) ||
      !ReadLE(data, &offset, &loaded.result.task_id) ||
      !ReadLE(data, &offset, &engine) || !ReadLE(data, &offset, &count)) {
    return Corrupt(path, "truncated header");
  }
  if (engine > static_cast<uint8_t>(Engine::kSimilarities)) {
    return Corrupt(path, "bad engine " + std::to_string(engine));
  }
  loaded.result.engine = static_cast<Engine>(engine);
  const uint64_t record_bytes =
      loaded.result.engine == Engine::kImplications ? 16 : 20;
  // A corrupt count must not drive the resize: the header cannot claim
  // more records than bytes left in the file.
  if (static_cast<uint64_t>(count) * record_bytes > data.size() - offset) {
    return Corrupt(path, "record count " + std::to_string(count) +
                             " exceeds file size");
  }
  if (loaded.result.engine == Engine::kImplications) {
    loaded.result.imp_rules.resize(count);
    for (auto& r : loaded.result.imp_rules) {
      if (!ReadLE(data, &offset, &r.lhs) || !ReadLE(data, &offset, &r.rhs) ||
          !ReadLE(data, &offset, &r.lhs_ones) ||
          !ReadLE(data, &offset, &r.misses)) {
        return Corrupt(path, "truncated in rule records");
      }
    }
  } else {
    loaded.result.sim_pairs.resize(count);
    for (auto& p : loaded.result.sim_pairs) {
      if (!ReadLE(data, &offset, &p.a) || !ReadLE(data, &offset, &p.b) ||
          !ReadLE(data, &offset, &p.ones_a) ||
          !ReadLE(data, &offset, &p.ones_b) ||
          !ReadLE(data, &offset, &p.intersection)) {
        return Corrupt(path, "truncated in pair records");
      }
    }
  }
  const size_t body_end = offset;
  uint64_t stored = 0;
  if (!ReadLE(data, &offset, &stored)) {
    return Corrupt(path, "truncated before checksum");
  }
  const uint64_t actual = Fnv1aUpdate(Fnv1aInit(), data.data(), body_end);
  if (stored != actual) {
    return Corrupt(path, "checksum mismatch (stored " +
                             std::to_string(stored) + ", computed " +
                             std::to_string(actual) + ")");
  }
  if (data.size() - offset != sizeof(kEndMagic) ||
      std::memcmp(data.data() + offset, kEndMagic, sizeof(kEndMagic)) != 0) {
    return Corrupt(path, "missing end magic");
  }
  return loaded;
}

}  // namespace shard
}  // namespace dmc
