// Wire protocol between the shard coordinator and its worker processes
// (DESIGN §5.8). Reuses the dmc_serve framing (serve/protocol.h): every
// message is a u32-LE length prefix plus a payload starting with
//
//   u16  version       kShardProtocolVersion (1)
//   u8   op            Op below
//   u8   reserved      0 on requests; a Status code on kTaskError
//
// Conversation, in order:
//
//   worker -> coordinator   kHello        (empty) protocol handshake
//   coordinator -> worker   kInit         the ShardPlan: engine,
//                                         threshold, policy, first-pass
//                                         stats, bucket inventory
//   coordinator -> worker   kTask         u32 task_id + the antecedent
//                                         shard mask (u8 per column)
//   worker -> coordinator   kHeartbeat    u32 task_id, u64 rows — sent
//                                         from the progress callback so
//                                         liveness rides the same path
//                                         as cancellation
//   worker -> coordinator   kResult       u32 task_id + the shard's rule
//                                         set + per-task stats
//   worker -> coordinator   kTaskError    u32 task_id, status code + msg
//                                         (worker stays alive; the
//                                         coordinator requeues the task)
//   coordinator -> worker   kShutdown     (empty) worker exits 0
//
// Frames are capped at kShardMaxFramePayloadBytes (64 MiB — a kInit for
// a 2^24-column matrix or a multi-million-rule kResult fits; a hostile
// length prefix beyond the cap is rejected before buffering, exactly as
// in serve). Decoders validate every count against the remaining payload
// bytes before allocating, so a 16-byte frame can never announce a
// multi-GiB vector.
//
// All encode/decode helpers are pure functions over std::string buffers;
// a frame either round-trips exactly or decodes to kInvalidArgument.

#ifndef DMC_SHARD_SHARD_PROTOCOL_H_
#define DMC_SHARD_SHARD_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "matrix/binary_matrix.h"
#include "rules/rule_set.h"
#include "util/status.h"
#include "util/statusor.h"

namespace dmc {
namespace shard {

inline constexpr uint16_t kShardProtocolVersion = 1;
/// Frame cap; sized for wide matrices (column_ones in kInit) and large
/// per-shard rule sets (kResult).
inline constexpr uint32_t kShardMaxFramePayloadBytes = 64u << 20;
/// Column cap mirrored from TextReadOptions::max_column_id (2^26 - 1):
/// decode rejects wider announcements before sizing per-column state.
inline constexpr uint32_t kShardMaxColumns = 1u << 26;

enum class Op : uint8_t {
  kHello = 1,
  kInit = 2,
  kTask = 3,
  kHeartbeat = 4,
  kResult = 5,
  kTaskError = 6,
  kShutdown = 7,
};

/// Which engine the run drives; rides the wire as u8.
enum class Engine : uint8_t {
  kImplications = 0,
  kSimilarities = 1,
};

/// Everything a worker needs to mine any shard of the run: the mining
/// configuration plus the coordinator's pass-1 result. Workers never
/// scan or partition the input themselves — they replay the bucket
/// files (or the original input, in identity order) named here.
struct ShardPlan {
  Engine engine = Engine::kImplications;
  /// minconf (implications) or minsim (similarities).
  double threshold = 0.9;
  // DmcPolicy fields that affect mining results or replay order.
  uint8_t row_order = 0;  // RowOrderPolicy as u8
  bool hundred_percent_phase = true;
  bool bitmap_fallback = true;
  bool column_density_pruning = true;
  bool max_hits_pruning = true;
  uint8_t kernel = 0;  // MergeKernel as u8
  uint64_t memory_threshold_bytes = 0;
  uint64_t bitmap_max_remaining_rows = 0;
  /// Heartbeat cadence: the worker's progress_interval_rows.
  uint64_t progress_interval_rows = 1024;
  /// Original input (replayed directly when row_order is identity).
  std::string input_path;
  /// Directory holding the coordinator's bucket files.
  std::string work_dir;
  ColumnId num_columns = 0;
  uint64_t num_rows = 0;
  std::vector<uint32_t> column_ones;
  /// Ascending ids of the non-empty bucket files.
  std::vector<int32_t> buckets;
};

/// One task result: the rules whose antecedents fall in the task's
/// shard, canonicalized, plus the per-task accounting the coordinator
/// folds into its stats.
struct ShardResult {
  uint32_t task_id = 0;
  Engine engine = Engine::kImplications;
  std::vector<ImplicationRule> imp_rules;
  std::vector<SimilarityPair> sim_pairs;
  double mine_seconds = 0.0;
  uint64_t peak_counter_bytes = 0;
};

/// One decoded worker->coordinator or coordinator->worker message.
struct Message {
  Op op = Op::kHello;
  // kTask
  uint32_t task_id = 0;
  std::vector<uint8_t> shard_mask;
  // kHeartbeat
  uint64_t rows_processed = 0;
  // kInit
  ShardPlan plan;
  // kResult
  ShardResult result;
  // kTaskError
  Status task_status;
};

// Encoders produce a complete frame (length prefix included).
std::string EncodeHello();
std::string EncodeInit(const ShardPlan& plan);
std::string EncodeTask(uint32_t task_id,
                       const std::vector<uint8_t>& shard_mask);
std::string EncodeHeartbeat(uint32_t task_id, uint64_t rows_processed);
std::string EncodeResult(const ShardResult& result);
/// `status` must not be OK.
std::string EncodeTaskError(uint32_t task_id, const Status& status);
std::string EncodeShutdown();

/// Decodes one payload (frame prefix already stripped). Version skew,
/// unknown op, short/trailing bytes, or counts that overrun the payload
/// yield kInvalidArgument.
[[nodiscard]] StatusOr<Message> DecodeMessagePayload(
    std::string_view payload);

}  // namespace shard
}  // namespace dmc

#endif  // DMC_SHARD_SHARD_PROTOCOL_H_
