#include "shard/merge.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "rules/rule_index.h"

namespace dmc {
namespace shard {

namespace {

/// k-way merge of sorted, pairwise-disjoint runs under `less`. With a
/// handful of shards a simple fold of pairwise std::merge calls is
/// both optimal enough and obviously stable.
template <typename T, typename Less>
std::vector<T> KWayMerge(std::vector<std::vector<T>> runs, Less less) {
  std::vector<T> merged;
  for (auto& run : runs) {
    if (run.empty()) continue;
    if (merged.empty()) {
      merged = std::move(run);
      continue;
    }
    std::vector<T> next;
    next.reserve(merged.size() + run.size());
    std::merge(merged.begin(), merged.end(), run.begin(), run.end(),
               std::back_inserter(next), less);
    merged = std::move(next);
  }
  return merged;
}

}  // namespace

ImplicationRuleSet MergeCanonical(std::vector<ImplicationRuleSet> parts) {
  std::vector<std::vector<ImplicationRule>> runs;
  runs.reserve(parts.size());
  for (auto& p : parts) runs.push_back(p.TakeRules());
  return ImplicationRuleSet(KWayMerge(
      std::move(runs), [](const ImplicationRule& a, const ImplicationRule& b) {
        return a < b;
      }));
}

SimilarityRuleSet MergeCanonicalSim(std::vector<SimilarityRuleSet> parts) {
  std::vector<std::vector<SimilarityPair>> runs;
  runs.reserve(parts.size());
  for (auto& p : parts) runs.push_back(p.TakePairs());
  return SimilarityRuleSet(KWayMerge(
      std::move(runs),
      [](const SimilarityPair& x, const SimilarityPair& y) { return x < y; }));
}

ImplicationRuleSet MergeByConfidence(std::vector<ImplicationRuleSet> parts) {
  // Per-shard sets arrive in (lhs, rhs) order, not confidence order, so
  // each run is re-sorted under the exact comparator before the merge.
  std::vector<std::vector<ImplicationRule>> runs;
  runs.reserve(parts.size());
  for (auto& p : parts) {
    std::vector<ImplicationRule> run = p.TakeRules();
    std::sort(run.begin(), run.end(), HigherConfidence);
    runs.push_back(std::move(run));
  }
  return ImplicationRuleSet(KWayMerge(std::move(runs), HigherConfidence));
}

}  // namespace shard
}  // namespace dmc
