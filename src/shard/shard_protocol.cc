#include "shard/shard_protocol.h"

#include <bit>
#include <cstring>

namespace dmc {
namespace shard {

namespace {

template <typename T>
void AppendLE(std::string* out, T value) {
  char buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  out->append(buf, sizeof(T));
}

template <typename T>
bool ReadLE(std::string_view data, size_t* offset, T* value) {
  if (data.size() - *offset < sizeof(T)) return false;
  std::memcpy(value, data.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

void AppendF64(std::string* out, double value) {
  AppendLE<uint64_t>(out, std::bit_cast<uint64_t>(value));
}

bool ReadF64(std::string_view data, size_t* offset, double* value) {
  uint64_t bits = 0;
  if (!ReadLE(data, offset, &bits)) return false;
  *value = std::bit_cast<double>(bits);
  return true;
}

void AppendString(std::string* out, const std::string& s) {
  AppendLE<uint32_t>(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

bool ReadString(std::string_view data, size_t* offset, std::string* s) {
  uint32_t len = 0;
  if (!ReadLE(data, offset, &len)) return false;
  if (data.size() - *offset < len) return false;
  s->assign(data.data() + *offset, len);
  *offset += len;
  return true;
}

Status Malformed(const std::string& what) {
  return InvalidArgumentError("shard protocol: " + what);
}

std::string Frame(std::string payload) {
  std::string out;
  out.reserve(payload.size() + sizeof(uint32_t));
  AppendLE<uint32_t>(&out, static_cast<uint32_t>(payload.size()));
  out += payload;
  return out;
}

void AppendPayloadHeader(std::string* out, Op op, uint8_t reserved) {
  AppendLE<uint16_t>(out, kShardProtocolVersion);
  AppendLE<uint8_t>(out, static_cast<uint8_t>(op));
  AppendLE<uint8_t>(out, reserved);
}

/// Guard for count-prefixed vectors: true iff `count` records of
/// `record_bytes` each still fit in the unread payload suffix.
bool CountFits(std::string_view payload, size_t offset, uint64_t count,
               size_t record_bytes) {
  return count <= (payload.size() - offset) / record_bytes;
}

}  // namespace

std::string EncodeHello() {
  std::string payload;
  AppendPayloadHeader(&payload, Op::kHello, 0);
  return Frame(std::move(payload));
}

std::string EncodeInit(const ShardPlan& plan) {
  std::string payload;
  AppendPayloadHeader(&payload, Op::kInit, 0);
  AppendLE<uint8_t>(&payload, static_cast<uint8_t>(plan.engine));
  AppendF64(&payload, plan.threshold);
  AppendLE<uint8_t>(&payload, plan.row_order);
  AppendLE<uint8_t>(&payload, plan.hundred_percent_phase ? 1 : 0);
  AppendLE<uint8_t>(&payload, plan.bitmap_fallback ? 1 : 0);
  AppendLE<uint8_t>(&payload, plan.column_density_pruning ? 1 : 0);
  AppendLE<uint8_t>(&payload, plan.max_hits_pruning ? 1 : 0);
  AppendLE<uint8_t>(&payload, plan.kernel);
  AppendLE<uint64_t>(&payload, plan.memory_threshold_bytes);
  AppendLE<uint64_t>(&payload, plan.bitmap_max_remaining_rows);
  AppendLE<uint64_t>(&payload, plan.progress_interval_rows);
  AppendString(&payload, plan.input_path);
  AppendString(&payload, plan.work_dir);
  AppendLE<uint32_t>(&payload, plan.num_columns);
  AppendLE<uint64_t>(&payload, plan.num_rows);
  AppendLE<uint32_t>(&payload, static_cast<uint32_t>(plan.column_ones.size()));
  for (uint32_t v : plan.column_ones) AppendLE<uint32_t>(&payload, v);
  AppendLE<uint32_t>(&payload, static_cast<uint32_t>(plan.buckets.size()));
  for (int32_t b : plan.buckets) AppendLE<int32_t>(&payload, b);
  return Frame(std::move(payload));
}

std::string EncodeTask(uint32_t task_id,
                       const std::vector<uint8_t>& shard_mask) {
  std::string payload;
  AppendPayloadHeader(&payload, Op::kTask, 0);
  AppendLE<uint32_t>(&payload, task_id);
  AppendLE<uint32_t>(&payload, static_cast<uint32_t>(shard_mask.size()));
  payload.append(reinterpret_cast<const char*>(shard_mask.data()),
                 shard_mask.size());
  return Frame(std::move(payload));
}

std::string EncodeHeartbeat(uint32_t task_id, uint64_t rows_processed) {
  std::string payload;
  AppendPayloadHeader(&payload, Op::kHeartbeat, 0);
  AppendLE<uint32_t>(&payload, task_id);
  AppendLE<uint64_t>(&payload, rows_processed);
  return Frame(std::move(payload));
}

std::string EncodeResult(const ShardResult& result) {
  std::string payload;
  AppendPayloadHeader(&payload, Op::kResult, 0);
  AppendLE<uint32_t>(&payload, result.task_id);
  AppendLE<uint8_t>(&payload, static_cast<uint8_t>(result.engine));
  AppendF64(&payload, result.mine_seconds);
  AppendLE<uint64_t>(&payload, result.peak_counter_bytes);
  if (result.engine == Engine::kImplications) {
    AppendLE<uint32_t>(&payload,
                       static_cast<uint32_t>(result.imp_rules.size()));
    for (const auto& r : result.imp_rules) {
      AppendLE<uint32_t>(&payload, r.lhs);
      AppendLE<uint32_t>(&payload, r.rhs);
      AppendLE<uint32_t>(&payload, r.lhs_ones);
      AppendLE<uint32_t>(&payload, r.misses);
    }
  } else {
    AppendLE<uint32_t>(&payload,
                       static_cast<uint32_t>(result.sim_pairs.size()));
    for (const auto& p : result.sim_pairs) {
      AppendLE<uint32_t>(&payload, p.a);
      AppendLE<uint32_t>(&payload, p.b);
      AppendLE<uint32_t>(&payload, p.ones_a);
      AppendLE<uint32_t>(&payload, p.ones_b);
      AppendLE<uint32_t>(&payload, p.intersection);
    }
  }
  return Frame(std::move(payload));
}

std::string EncodeTaskError(uint32_t task_id, const Status& status) {
  std::string payload;
  AppendPayloadHeader(&payload, Op::kTaskError,
                      static_cast<uint8_t>(status.code()));
  AppendLE<uint32_t>(&payload, task_id);
  AppendString(&payload, status.message());
  return Frame(std::move(payload));
}

std::string EncodeShutdown() {
  std::string payload;
  AppendPayloadHeader(&payload, Op::kShutdown, 0);
  return Frame(std::move(payload));
}

StatusOr<Message> DecodeMessagePayload(std::string_view payload) {
  size_t offset = 0;
  uint16_t version = 0;
  uint8_t op_byte = 0;
  uint8_t reserved = 0;
  if (!ReadLE(payload, &offset, &version) ||
      !ReadLE(payload, &offset, &op_byte) ||
      !ReadLE(payload, &offset, &reserved)) {
    return Malformed("payload shorter than the 4-byte header");
  }
  if (version != kShardProtocolVersion) {
    return Malformed("unsupported version " + std::to_string(version));
  }

  Message msg;
  switch (static_cast<Op>(op_byte)) {
    case Op::kHello:
    case Op::kShutdown: {
      msg.op = static_cast<Op>(op_byte);
      break;
    }
    case Op::kInit: {
      msg.op = Op::kInit;
      ShardPlan& p = msg.plan;
      uint8_t engine = 0;
      uint8_t hundred = 0, bitmap = 0, density = 0, maxhits = 0;
      if (!ReadLE(payload, &offset, &engine) ||
          !ReadF64(payload, &offset, &p.threshold) ||
          !ReadLE(payload, &offset, &p.row_order) ||
          !ReadLE(payload, &offset, &hundred) ||
          !ReadLE(payload, &offset, &bitmap) ||
          !ReadLE(payload, &offset, &density) ||
          !ReadLE(payload, &offset, &maxhits) ||
          !ReadLE(payload, &offset, &p.kernel) ||
          !ReadLE(payload, &offset, &p.memory_threshold_bytes) ||
          !ReadLE(payload, &offset, &p.bitmap_max_remaining_rows) ||
          !ReadLE(payload, &offset, &p.progress_interval_rows) ||
          !ReadString(payload, &offset, &p.input_path) ||
          !ReadString(payload, &offset, &p.work_dir)) {
        return Malformed("truncated kInit body");
      }
      if (engine > 1) return Malformed("unknown engine");
      p.engine = static_cast<Engine>(engine);
      p.hundred_percent_phase = hundred != 0;
      p.bitmap_fallback = bitmap != 0;
      p.column_density_pruning = density != 0;
      p.max_hits_pruning = maxhits != 0;
      uint32_t ones_count = 0;
      if (!ReadLE(payload, &offset, &p.num_columns) ||
          !ReadLE(payload, &offset, &p.num_rows) ||
          !ReadLE(payload, &offset, &ones_count)) {
        return Malformed("truncated kInit counts");
      }
      if (p.num_columns > kShardMaxColumns ||
          ones_count != p.num_columns ||
          !CountFits(payload, offset, ones_count, sizeof(uint32_t))) {
        return Malformed("kInit column count violates bounds");
      }
      p.column_ones.resize(ones_count);
      for (uint32_t i = 0; i < ones_count; ++i) {
        if (!ReadLE(payload, &offset, &p.column_ones[i])) {
          return Malformed("truncated column_ones");
        }
      }
      uint32_t bucket_count = 0;
      if (!ReadLE(payload, &offset, &bucket_count) ||
          !CountFits(payload, offset, bucket_count, sizeof(int32_t))) {
        return Malformed("kInit bucket count violates bounds");
      }
      p.buckets.resize(bucket_count);
      for (uint32_t i = 0; i < bucket_count; ++i) {
        if (!ReadLE(payload, &offset, &p.buckets[i])) {
          return Malformed("truncated bucket list");
        }
      }
      break;
    }
    case Op::kTask: {
      msg.op = Op::kTask;
      uint32_t mask_len = 0;
      if (!ReadLE(payload, &offset, &msg.task_id) ||
          !ReadLE(payload, &offset, &mask_len)) {
        return Malformed("truncated kTask body");
      }
      if (mask_len > kShardMaxColumns ||
          payload.size() - offset < mask_len) {
        return Malformed("kTask mask violates bounds");
      }
      msg.shard_mask.assign(
          reinterpret_cast<const uint8_t*>(payload.data()) + offset,
          reinterpret_cast<const uint8_t*>(payload.data()) + offset +
              mask_len);
      offset += mask_len;
      break;
    }
    case Op::kHeartbeat: {
      msg.op = Op::kHeartbeat;
      if (!ReadLE(payload, &offset, &msg.task_id) ||
          !ReadLE(payload, &offset, &msg.rows_processed)) {
        return Malformed("truncated kHeartbeat body");
      }
      break;
    }
    case Op::kResult: {
      msg.op = Op::kResult;
      ShardResult& r = msg.result;
      uint8_t engine = 0;
      uint32_t count = 0;
      if (!ReadLE(payload, &offset, &r.task_id) ||
          !ReadLE(payload, &offset, &engine) ||
          !ReadF64(payload, &offset, &r.mine_seconds) ||
          !ReadLE(payload, &offset, &r.peak_counter_bytes) ||
          !ReadLE(payload, &offset, &count)) {
        return Malformed("truncated kResult body");
      }
      if (engine > 1) return Malformed("unknown engine");
      r.engine = static_cast<Engine>(engine);
      if (r.engine == Engine::kImplications) {
        if (!CountFits(payload, offset, count, 4 * sizeof(uint32_t))) {
          return Malformed("kResult rule count violates bounds");
        }
        r.imp_rules.resize(count);
        for (uint32_t i = 0; i < count; ++i) {
          auto& rule = r.imp_rules[i];
          if (!ReadLE(payload, &offset, &rule.lhs) ||
              !ReadLE(payload, &offset, &rule.rhs) ||
              !ReadLE(payload, &offset, &rule.lhs_ones) ||
              !ReadLE(payload, &offset, &rule.misses)) {
            return Malformed("truncated rule record");
          }
        }
      } else {
        if (!CountFits(payload, offset, count, 5 * sizeof(uint32_t))) {
          return Malformed("kResult pair count violates bounds");
        }
        r.sim_pairs.resize(count);
        for (uint32_t i = 0; i < count; ++i) {
          auto& pair = r.sim_pairs[i];
          if (!ReadLE(payload, &offset, &pair.a) ||
              !ReadLE(payload, &offset, &pair.b) ||
              !ReadLE(payload, &offset, &pair.ones_a) ||
              !ReadLE(payload, &offset, &pair.ones_b) ||
              !ReadLE(payload, &offset, &pair.intersection)) {
            return Malformed("truncated pair record");
          }
        }
      }
      break;
    }
    case Op::kTaskError: {
      msg.op = Op::kTaskError;
      std::string message;
      if (!ReadLE(payload, &offset, &msg.task_id) ||
          !ReadString(payload, &offset, &message)) {
        return Malformed("truncated kTaskError body");
      }
      if (reserved == 0 ||
          reserved > static_cast<uint8_t>(StatusCode::kDataLoss)) {
        return Malformed("kTaskError carries an invalid status code");
      }
      msg.task_status = Status(static_cast<StatusCode>(reserved), message);
      break;
    }
    default:
      return Malformed("unknown op " + std::to_string(op_byte));
  }
  if (offset != payload.size()) {
    return Malformed("trailing bytes after message body");
  }
  return msg;
}

}  // namespace shard
}  // namespace dmc
