// The shard coordinator: multi-process DMC mining (DESIGN §5.8).
//
// The coordinator runs pass 1 of the external pipeline once (scan +
// density-bucket partitioning, or a checkpoint resume), splits the
// columns into num_workers * tasks_per_worker balanced antecedent
// shards, fork/execs a fleet of dmc_shard_worker children, and deals
// tasks to them over the length-prefixed shard protocol. Workers replay
// the coordinator's bucket files — the input is scanned exactly once no
// matter how many workers mine it.
//
// Robustness contract (the kill-a-worker differential sweep pins this):
//
//   * Liveness: every worker owes a heartbeat within
//     heartbeat_timeout_seconds while it holds a task. A missed
//     deadline, an EOF, a bad frame, or a wait()able child all count as
//     death: the worker is SIGKILLed/reaped, its task is requeued, and
//     the slot is respawned with full-jitter backoff while the respawn
//     budget lasts.
//   * Reassignment invariant: a task is either mined to completion by
//     exactly one process and its canonical rule set recorded, or it is
//     requeued untouched — per-task results are all-or-nothing, so a
//     task can bounce between workers without double-counting.
//   * Degradation: when a task exhausts its attempts (or no worker can
//     be respawned), the coordinator mines the remaining tasks itself,
//     in-process, over the same bucket files — exactly what
//     ParallelOptions::degrade_to_serial does for threads. With
//     degrade_to_in_process=false the run fails with a clean Status
//     instead; it never hangs and never returns a partial rule set.
//   * Merge-order invariant: each rule is owned by exactly one task (its
//     antecedent's shard — for similarity pairs, the canonical sparser
//     column's shard), so concatenating the canonical per-task sets in
//     task order under a k-way merge reproduces the single-process
//     Canonicalize(union) byte for byte.
//
// Per-task results can be checkpointed (shard_checkpoint.h): a rerun
// with resume=true skips every task whose checkpoint still matches the
// input/config fingerprint, so a killed coordinator resumes instead of
// re-mining finished shards.

#ifndef DMC_SHARD_COORDINATOR_H_
#define DMC_SHARD_COORDINATOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/dmc_options.h"
#include "core/external_miner.h"
#include "rules/rule_set.h"
#include "shard/shard_stats.h"
#include "util/retry.h"
#include "util/statusor.h"

namespace dmc {
namespace shard {

struct ShardOptions {
  /// Worker processes to keep alive.
  int num_workers = 2;
  /// Tasks per worker (over-partitioning): more tasks mean finer
  /// reassignment granularity when a worker dies mid-run.
  int tasks_per_worker = 2;
  /// Path of the dmc_shard_worker binary. Empty resolves to
  /// "dmc_shard_worker" next to the current executable.
  std::string worker_binary;
  /// A worker holding a task (or owing its hello after spawn) that stays
  /// silent this long is declared dead.
  double heartbeat_timeout_seconds = 30.0;
  /// How long workers get to exit after kShutdown before SIGKILL.
  double shutdown_grace_seconds = 2.0;
  /// Respawn budget per worker slot.
  int max_respawns_per_slot = 2;
  /// Backoff between respawn attempts of one slot; full-jitter so a
  /// fleet of dead workers does not respawn in lockstep.
  RetryPolicy spawn_retry = {
      .max_attempts = 3,
      .initial_backoff_seconds = 0.01,
      .max_backoff_seconds = 0.5,
      .full_jitter = true,
      .max_total_backoff_seconds = 2.0,
  };
  /// Mine leftover tasks in-process once respawns are exhausted. When
  /// false the run fails cleanly instead.
  bool degrade_to_in_process = true;
  /// Directory for per-task result checkpoints; empty disables them.
  std::string checkpoint_dir;
  /// Load matching task checkpoints from checkpoint_dir instead of
  /// re-mining those tasks.
  bool resume = false;
  /// Pass-1 I/O options (checkpoint/resume of the scan itself, retry
  /// policy for file opens). keep_artifacts is forced on internally
  /// while workers replay the bucket files.
  ExternalIoOptions io;
  /// Extra "KEY=VALUE" environment entries for workers. DMC_FAILPOINTS
  /// is propagated automatically when set in the coordinator.
  std::vector<std::string> worker_env;
  /// Directory for per-worker metrics JSONL files (worker_<slot>.jsonl);
  /// empty disables worker metrics. Merged into the coordinator's
  /// registry (one schema-v1 document) at the end of the run.
  std::string worker_metrics_dir;
  /// Test hook: observed after every successful spawn with the slot
  /// index and the child pid (kill targets for the fault sweep).
  std::function<void(int slot, int pid)> on_worker_spawn;
};

/// Mines implication rules from the transaction text file at `path`
/// across a fleet of worker processes. Byte-identical to
/// MineImplicationsFromFile(path, options, work_dir) — the differential
/// sweep holds this under worker kills, hangs and injected faults.
[[nodiscard]] StatusOr<ImplicationRuleSet> MineImplicationsSharded(
    const std::string& path, const ImplicationMiningOptions& options,
    const std::string& work_dir, const ShardOptions& shard,
    ShardMiningStats* stats = nullptr);

/// Similarity-rule counterpart of MineImplicationsSharded.
[[nodiscard]] StatusOr<SimilarityRuleSet> MineSimilaritiesSharded(
    const std::string& path, const SimilarityMiningOptions& options,
    const std::string& work_dir, const ShardOptions& shard,
    ShardMiningStats* stats = nullptr);

}  // namespace shard
}  // namespace dmc

#endif  // DMC_SHARD_COORDINATOR_H_
