// Synthetic news corpus — the News / NewsP analogue.
//
// Rows are documents, columns are words. A topic model reproduces the
// paper's motivating structure: rare entity words (the "polgar", "judit",
// "garri" of Fig. 7) appear only in their topic's documents and imply the
// topic's theme words with high confidence but LOW support — the rules
// support pruning destroys and DMC is built to find. Background
// vocabulary is Zipf-distributed, giving the Fig. 4 density shape.

#ifndef DMC_DATAGEN_NEWS_GEN_H_
#define DMC_DATAGEN_NEWS_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "matrix/binary_matrix.h"

namespace dmc {

struct NewsOptions {
  uint32_t num_docs = 16000;
  uint32_t num_topics = 40;
  /// Theme words per topic (moderately frequent).
  uint32_t words_per_topic = 12;
  /// Rare entity words per topic (low support, high confidence).
  uint32_t entities_per_topic = 4;
  /// Background vocabulary size.
  uint32_t background_vocab = 8000;
  double background_zipf_theta = 1.05;
  uint32_t background_words_min = 5;
  uint32_t background_words_max = 120;
  double background_len_alpha = 1.8;
  /// Probability each theme word appears in a document of its topic.
  double topic_word_prob = 0.6;
  /// Probability a topic document mentions the topic's entity cluster.
  double entity_prob = 0.08;
  /// Given a mention, probability each individual entity appears —
  /// entities of one topic co-occur ("judit" with "polgar"), giving the
  /// entity => entity rules of Fig. 7.
  double entity_comention_prob = 0.9;
  /// When an entity appears, each theme word of the topic is forced in
  /// with this probability (the entity => theme confidence).
  double entity_implies_theme_prob = 0.95;
  /// Collocation pairs per topic: two words that (almost) always appear
  /// together — "garri"/"kasparov"-style bigrams. They produce the
  /// high-similarity column pairs of Fig. 6(j).
  uint32_t collocations_per_topic = 2;
  /// Probability a topic document carries a given collocation.
  double collocation_prob = 0.3;
  /// Probability the second member accompanies the first.
  double collocation_stickiness = 0.95;
  uint64_t seed = 19970215;
};

/// Generated corpus plus the ground-truth wiring the tests and Fig. 7
/// bench use.
struct NewsData {
  BinaryMatrix matrix;
  /// Human-readable name of every column (entities of topic 0 get
  /// chess-flavoured names so the Fig. 7 output reads like the paper's).
  std::vector<std::string> words;
  /// Column ids of all entity words, grouped by topic.
  std::vector<std::vector<ColumnId>> entity_columns;
  /// Column ids of all theme words, grouped by topic.
  std::vector<std::vector<ColumnId>> theme_columns;
  /// Column-id pairs of the planted collocations, grouped by topic.
  std::vector<std::vector<std::pair<ColumnId, ColumnId>>> collocations;
};

NewsData GenerateNews(const NewsOptions& options);

}  // namespace dmc

#endif  // DMC_DATAGEN_NEWS_GEN_H_
