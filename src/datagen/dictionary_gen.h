// Synthetic dictionary — the dicD analogue.
//
// Columns are head words (words being defined), rows are definition words
// (§6.1). Synonym groups share most of their definition vocabulary, so
// their columns come out highly similar — the "brother-in-law" ~
// "sister-in-law" pairs the paper extracts.

#ifndef DMC_DATAGEN_DICTIONARY_GEN_H_
#define DMC_DATAGEN_DICTIONARY_GEN_H_

#include <cstdint>
#include <vector>

#include "matrix/binary_matrix.h"

namespace dmc {

struct DictionaryOptions {
  /// Columns.
  uint32_t num_head_words = 8000;
  /// Rows.
  uint32_t num_definition_words = 4000;
  uint32_t def_len_min = 3;
  uint32_t def_len_max = 30;
  double def_len_alpha = 1.6;
  double def_zipf_theta = 1.0;
  /// Synonym clusters of head words sharing definitions.
  uint32_t num_synonym_groups = 150;
  uint32_t synonym_group_size = 2;
  /// Probability each base definition word is kept by a group member.
  double synonym_overlap = 0.95;
  uint64_t seed = 19130101;
};

struct DictionaryData {
  /// Rows = definition words, columns = head words.
  BinaryMatrix matrix;
  /// Head-word columns of each synonym group.
  std::vector<std::vector<ColumnId>> synonym_groups;
};

DictionaryData GenerateDictionary(const DictionaryOptions& options);

}  // namespace dmc

#endif  // DMC_DATAGEN_DICTIONARY_GEN_H_
