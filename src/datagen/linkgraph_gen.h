// Synthetic web page-link graph — the plinkF / plinkT analogue.
//
// Preferential attachment plus a copy model: each new page picks a
// prototype and copies a fraction of its out-links, otherwise linking to
// degree-biased targets. A fraction of pages are "mirrors": their
// out-links nearly duplicate the prototype's (similar columns in plinkT),
// and pages linking to a mirrored destination usually link to its twin
// too (similar columns in plinkF). Hub pages give the dense rows/columns
// the paper's memory experiments rely on.

#ifndef DMC_DATAGEN_LINKGRAPH_GEN_H_
#define DMC_DATAGEN_LINKGRAPH_GEN_H_

#include <cstdint>

#include "matrix/binary_matrix.h"

namespace dmc {

struct LinkGraphOptions {
  uint32_t num_pages = 20000;
  /// Out-degree power law ("most pages are linked to ten or so pages",
  /// §1 — the mean out-degree lands in the high single digits).
  double out_degree_alpha = 1.6;
  uint32_t min_out_degree = 2;
  uint32_t max_out_degree = 80;
  /// Probability a link is copied from the prototype rather than sampled
  /// by preferential attachment.
  double copy_prob = 0.35;
  /// Among non-copied links, probability of a uniform-random target
  /// instead of a degree-biased one (keeps the graph from collapsing onto
  /// a handful of hubs).
  double uniform_prob = 0.5;
  /// Fraction of pages that are near-mirrors of their prototype.
  double mirror_fraction = 0.02;
  /// Per-link probability a mirror drops/replaces a copied link.
  double mirror_noise = 0.05;
  /// When a page links to a destination with a twin, probability it also
  /// links to the twin.
  double twin_follow_prob = 0.8;
  uint64_t seed = 19991231;
};

/// The forward matrix plinkF: row = source page, column = destination
/// page; entry 1 iff the source links to the destination. plinkT is
/// `GenerateLinkGraph(o).Transposed()`.
BinaryMatrix GenerateLinkGraph(const LinkGraphOptions& options);

}  // namespace dmc

#endif  // DMC_DATAGEN_LINKGRAPH_GEN_H_
