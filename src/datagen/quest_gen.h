// IBM Quest-style market-basket generator [Agrawal & Srikant VLDB'94].
//
// The classic synthetic workload a-priori was designed for: a pool of
// "potentially large itemsets" (patterns); each transaction draws a few
// patterns and keeps each item with (1 - corruption) probability. Used by
// the comparison benches and the a-priori tests.

#ifndef DMC_DATAGEN_QUEST_GEN_H_
#define DMC_DATAGEN_QUEST_GEN_H_

#include <cstdint>

#include "matrix/binary_matrix.h"

namespace dmc {

struct QuestOptions {
  uint32_t num_transactions = 10000;
  uint32_t num_items = 1000;
  uint32_t num_patterns = 300;
  uint32_t avg_pattern_len = 4;
  uint32_t avg_patterns_per_transaction = 3;
  /// Per-item drop probability when a pattern is instantiated.
  double corruption = 0.15;
  uint64_t seed = 1994;
};

BinaryMatrix GenerateQuest(const QuestOptions& options);

}  // namespace dmc

#endif  // DMC_DATAGEN_QUEST_GEN_H_
