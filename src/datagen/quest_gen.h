// IBM Quest-style market-basket generator [Agrawal & Srikant VLDB'94].
//
// The classic synthetic workload a-priori was designed for: a pool of
// "potentially large itemsets" (patterns); each transaction draws a few
// patterns and keeps each item with (1 - corruption) probability. Used by
// the comparison benches and the a-priori tests.
//
// Two output modes share one row generator (same RNG call sequence):
//
//   * GenerateQuest materializes a BinaryMatrix in memory.
//   * GenerateQuestStream / GenerateQuestFile emit rows one at a time,
//     so a 100M+-row matrix can be written to disk in O(row) memory.
//     For equal options, GenerateQuestFile's output is byte-identical
//     to WriteMatrixTextFile(GenerateQuest(options), path).

#ifndef DMC_DATAGEN_QUEST_GEN_H_
#define DMC_DATAGEN_QUEST_GEN_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "matrix/binary_matrix.h"
#include "util/status.h"

namespace dmc {

struct QuestOptions {
  uint32_t num_transactions = 10000;
  uint32_t num_items = 1000;
  uint32_t num_patterns = 300;
  uint32_t avg_pattern_len = 4;
  uint32_t avg_patterns_per_transaction = 3;
  /// Per-item drop probability when a pattern is instantiated.
  double corruption = 0.15;
  uint64_t seed = 1994;
};

BinaryMatrix GenerateQuest(const QuestOptions& options);

/// Streams the transactions GenerateQuest would materialize, one row at
/// a time, without ever holding the matrix: `sink` is called once per
/// transaction with the row's sorted, deduplicated column ids (the same
/// normalization MatrixBuilder applies). A non-OK return from the sink
/// aborts generation and is passed through.
[[nodiscard]] Status GenerateQuestStream(
    const QuestOptions& options,
    const std::function<Status(std::span<const ColumnId>)>& sink);

/// Streams a Quest matrix straight to `path` in transaction text format
/// with bounded memory. Crash-safe (temp file + fsync + rename) like
/// every other writer; a failure leaves the previous file untouched.
[[nodiscard]] Status GenerateQuestFile(const QuestOptions& options,
                                       const std::string& path);

}  // namespace dmc

#endif  // DMC_DATAGEN_QUEST_GEN_H_
