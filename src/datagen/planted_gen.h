// Planted-truth generator: a noise matrix with column pairs engineered to
// have EXACT confidence / similarity values. Used by tests (recall and
// precision against known truth) and by the ablation benches.

#ifndef DMC_DATAGEN_PLANTED_GEN_H_
#define DMC_DATAGEN_PLANTED_GEN_H_

#include <cstdint>
#include <vector>

#include "matrix/binary_matrix.h"
#include "rules/rule_set.h"

namespace dmc {

struct PlantedOptions {
  uint32_t num_rows = 2000;
  /// Background (noise) columns.
  uint32_t num_noise_columns = 200;
  double noise_density = 0.01;

  /// Planted implication pairs (each consumes two dedicated columns).
  uint32_t num_implications = 15;
  /// ones(lhs) of each planted implication.
  uint32_t implication_lhs_ones = 40;
  /// Exact hits out of implication_lhs_ones (confidence = hits/ones).
  uint32_t implication_hits = 36;
  /// Extra rhs-only rows.
  uint32_t implication_rhs_extra = 20;

  /// Planted similarity pairs (two dedicated columns each).
  uint32_t num_similarities = 10;
  /// |S_a|, |S_b| and |S_a intersect S_b| of each planted pair.
  uint32_t sim_ones_a = 40;
  uint32_t sim_ones_b = 44;
  uint32_t sim_intersection = 38;

  uint64_t seed = 77;
};

struct PlantedData {
  BinaryMatrix matrix;
  /// The planted implications with their exact counts.
  ImplicationRuleSet implications;
  /// The planted similarity pairs with their exact counts.
  SimilarityRuleSet similarities;
};

/// Builds the matrix. Planted columns receive no background noise, so the
/// returned rule counts are exact by construction.
PlantedData GeneratePlanted(const PlantedOptions& options);

}  // namespace dmc

#endif  // DMC_DATAGEN_PLANTED_GEN_H_
