// Synthetic web-access log — the Wlog analogue.
//
// Rows are clients, columns are URLs (paper §6.1). Reproduced structure:
//   * Zipf URL popularity and power-law client activity, giving the
//     heavy-tailed column-density distribution of Fig. 4;
//   * a small crawler population visiting almost every URL — the very
//     dense rows responsible for the Fig. 3 memory explosion;
//   * site sections with index pages that co-occur with their section's
//     pages, creating high-confidence page => index implication rules.

#ifndef DMC_DATAGEN_WEBLOG_GEN_H_
#define DMC_DATAGEN_WEBLOG_GEN_H_

#include <cstdint>

#include "matrix/binary_matrix.h"

namespace dmc {

struct WebLogOptions {
  /// Rows (distinct client IPs).
  uint32_t num_clients = 20000;
  /// Columns (URLs).
  uint32_t num_urls = 6000;
  /// Site sections; URL u belongs to section u % num_sections, and URL
  /// s < num_sections is section s's index page.
  uint32_t num_sections = 40;
  /// Zipf exponent of within-section page popularity.
  double url_zipf_theta = 0.9;
  /// Power-law exponent of pages-per-client.
  double client_activity_alpha = 2.0;
  uint32_t min_pages_per_client = 1;
  uint32_t max_pages_per_client = 400;
  /// Probability that visiting a section page also hits the section
  /// index (drives the page => index rules).
  double index_visit_prob = 0.97;
  /// Clients that behave like crawlers.
  uint32_t num_crawlers = 4;
  /// Fraction of all URLs a crawler visits.
  double crawler_coverage = 0.9;
  uint64_t seed = 20000701;
};

/// Generates the access-log matrix (clients x URLs).
BinaryMatrix GenerateWebLog(const WebLogOptions& options);

}  // namespace dmc

#endif  // DMC_DATAGEN_WEBLOG_GEN_H_
