#include "datagen/quest_gen.h"

#include <algorithm>
#include <string>
#include <vector>

#include "util/atomic_io.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/zipf.h"

namespace dmc {
namespace {

// The one row generator both output modes share. `fn` receives each
// transaction's raw item draw — possibly unsorted, possibly duplicated,
// exactly what MatrixBuilder::AddRow historically received — so the
// in-memory and streaming paths consume the RNG identically.
template <typename RowFn>
Status ForEachQuestRow(const QuestOptions& options, RowFn&& fn) {
  DMC_CHECK_GE(options.num_patterns, 1u);
  Rng rng(options.seed);

  // Pattern pool: Zipf-weighted popularity, Poisson lengths, items drawn
  // by Zipf so some items are shared across patterns (cross support).
  const ZipfSampler item_sampler(options.num_items, 0.8);
  const ZipfSampler pattern_sampler(options.num_patterns, 0.9);
  std::vector<std::vector<ColumnId>> patterns(options.num_patterns);
  for (auto& pattern : patterns) {
    const uint64_t len =
        1 + rng.Poisson(options.avg_pattern_len > 1
                            ? options.avg_pattern_len - 1
                            : 0);
    for (uint64_t i = 0; i < len; ++i) {
      pattern.push_back(static_cast<ColumnId>(item_sampler.Sample(rng)));
    }
  }

  std::vector<ColumnId> row;
  for (uint32_t t = 0; t < options.num_transactions; ++t) {
    row.clear();
    const uint64_t k =
        1 + rng.Poisson(options.avg_patterns_per_transaction > 1
                            ? options.avg_patterns_per_transaction - 1
                            : 0);
    for (uint64_t i = 0; i < k; ++i) {
      const auto& pattern = patterns[pattern_sampler.Sample(rng)];
      for (ColumnId item : pattern) {
        if (!rng.Bernoulli(options.corruption)) row.push_back(item);
      }
    }
    DMC_RETURN_IF_ERROR(fn(row));
  }
  return Status::OK();
}

}  // namespace

BinaryMatrix GenerateQuest(const QuestOptions& options) {
  MatrixBuilder builder(options.num_items);
  const Status st =
      ForEachQuestRow(options, [&](const std::vector<ColumnId>& row) {
        builder.AddRow(row);
        return Status::OK();
      });
  DMC_CHECK(st.ok());  // the builder sink never fails
  return builder.Build();
}

Status GenerateQuestStream(
    const QuestOptions& options,
    const std::function<Status(std::span<const ColumnId>)>& sink) {
  std::vector<ColumnId> sorted;
  return ForEachQuestRow(options, [&](const std::vector<ColumnId>& row) {
    sorted.assign(row.begin(), row.end());
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    return sink(std::span<const ColumnId>(sorted));
  });
}

Status GenerateQuestFile(const QuestOptions& options,
                         const std::string& path) {
  AtomicFileWriter writer;
  DMC_RETURN_IF_ERROR(writer.Open(path));
  // Matches WriteMatrixText's header; the dimensions are known up front
  // (the builder's column count is fixed at num_items).
  std::string buffer;
  constexpr size_t kFlushBytes = 1 << 20;
  buffer.reserve(kFlushBytes + 4096);
  buffer += "# dmc matrix: rows=";
  buffer += std::to_string(options.num_transactions);
  buffer += " columns=";
  buffer += std::to_string(options.num_items);
  buffer += '\n';
  const Status gen = GenerateQuestStream(
      options, [&](std::span<const ColumnId> row) -> Status {
        bool first = true;
        for (ColumnId c : row) {
          if (!first) buffer += ' ';
          buffer += std::to_string(c);
          first = false;
        }
        buffer += '\n';
        if (buffer.size() >= kFlushBytes) {
          DMC_RETURN_IF_ERROR(writer.Write(buffer));
          buffer.clear();
        }
        return Status::OK();
      });
  DMC_RETURN_IF_ERROR(gen);  // writer's destructor discards the temp file
  DMC_RETURN_IF_ERROR(writer.Write(buffer));
  return writer.Commit();
}

}  // namespace dmc
