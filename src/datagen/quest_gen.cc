#include "datagen/quest_gen.h"

#include <vector>

#include "util/logging.h"
#include "util/random.h"
#include "util/zipf.h"

namespace dmc {

BinaryMatrix GenerateQuest(const QuestOptions& options) {
  DMC_CHECK_GE(options.num_patterns, 1u);
  Rng rng(options.seed);

  // Pattern pool: Zipf-weighted popularity, Poisson lengths, items drawn
  // by Zipf so some items are shared across patterns (cross support).
  const ZipfSampler item_sampler(options.num_items, 0.8);
  const ZipfSampler pattern_sampler(options.num_patterns, 0.9);
  std::vector<std::vector<ColumnId>> patterns(options.num_patterns);
  for (auto& pattern : patterns) {
    const uint64_t len =
        1 + rng.Poisson(options.avg_pattern_len > 1
                            ? options.avg_pattern_len - 1
                            : 0);
    for (uint64_t i = 0; i < len; ++i) {
      pattern.push_back(static_cast<ColumnId>(item_sampler.Sample(rng)));
    }
  }

  MatrixBuilder builder(options.num_items);
  std::vector<ColumnId> row;
  for (uint32_t t = 0; t < options.num_transactions; ++t) {
    row.clear();
    const uint64_t k =
        1 + rng.Poisson(options.avg_patterns_per_transaction > 1
                            ? options.avg_patterns_per_transaction - 1
                            : 0);
    for (uint64_t i = 0; i < k; ++i) {
      const auto& pattern = patterns[pattern_sampler.Sample(rng)];
      for (ColumnId item : pattern) {
        if (!rng.Bernoulli(options.corruption)) row.push_back(item);
      }
    }
    builder.AddRow(row);
  }
  return builder.Build();
}

}  // namespace dmc
