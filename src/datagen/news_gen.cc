#include "datagen/news_gen.h"

#include <array>

#include "util/logging.h"
#include "util/random.h"
#include "util/zipf.h"

namespace dmc {

namespace {

// Flavour names for topic 0, echoing the paper's Fig. 7.
constexpr std::array<const char*, 8> kChessEntities = {
    "polgar", "judit", "garri", "kasparov",
    "karpov", "anand",  "shirov", "kramnik"};
constexpr std::array<const char*, 16> kChessThemes = {
    "chess",        "champion", "soviet",  "grandmaster",
    "championship", "game",     "players", "federation",
    "ranked",       "top",      "world",   "title",
    "match",        "moscow",   "hungary", "youngest"};

}  // namespace

NewsData GenerateNews(const NewsOptions& options) {
  DMC_CHECK_GE(options.num_topics, 1u);
  Rng rng(options.seed);

  NewsData data;
  // Column layout: [theme words by topic][entity words by topic]
  // [background vocabulary].
  const uint32_t theme_base = 0;
  const uint32_t entity_base = options.num_topics * options.words_per_topic;
  const uint32_t colloc_base =
      entity_base + options.num_topics * options.entities_per_topic;
  const uint32_t background_base =
      colloc_base + options.num_topics * options.collocations_per_topic * 2;
  const uint32_t num_columns = background_base + options.background_vocab;

  data.theme_columns.resize(options.num_topics);
  data.entity_columns.resize(options.num_topics);
  data.words.resize(num_columns);
  for (uint32_t t = 0; t < options.num_topics; ++t) {
    for (uint32_t w = 0; w < options.words_per_topic; ++w) {
      const ColumnId c = theme_base + t * options.words_per_topic + w;
      data.theme_columns[t].push_back(c);
      data.words[c] = (t == 0 && w < kChessThemes.size())
                          ? kChessThemes[w]
                          : "theme" + std::to_string(t) + "_" +
                                std::to_string(w);
    }
    for (uint32_t e = 0; e < options.entities_per_topic; ++e) {
      const ColumnId c = entity_base + t * options.entities_per_topic + e;
      data.entity_columns[t].push_back(c);
      data.words[c] = (t == 0 && e < kChessEntities.size())
                          ? kChessEntities[e]
                          : "entity" + std::to_string(t) + "_" +
                                std::to_string(e);
    }
  }
  data.collocations.resize(options.num_topics);
  for (uint32_t t = 0; t < options.num_topics; ++t) {
    for (uint32_t k = 0; k < options.collocations_per_topic; ++k) {
      const ColumnId first =
          colloc_base + (t * options.collocations_per_topic + k) * 2;
      data.collocations[t].emplace_back(first, first + 1);
      data.words[first] =
          "bigramA" + std::to_string(t) + "_" + std::to_string(k);
      data.words[first + 1] =
          "bigramB" + std::to_string(t) + "_" + std::to_string(k);
    }
  }
  for (uint32_t b = 0; b < options.background_vocab; ++b) {
    data.words[background_base + b] = "word" + std::to_string(b);
  }

  const ZipfSampler topic_sampler(options.num_topics, 0.7);
  const ZipfSampler background_sampler(options.background_vocab,
                                       options.background_zipf_theta);
  const PowerLawSampler doc_len(options.background_words_min,
                                options.background_words_max,
                                options.background_len_alpha);

  MatrixBuilder builder(num_columns);
  std::vector<ColumnId> row;
  for (uint32_t d = 0; d < options.num_docs; ++d) {
    row.clear();
    const uint32_t topic =
        static_cast<uint32_t>(topic_sampler.Sample(rng));
    bool entity_present = false;
    if (rng.Bernoulli(options.entity_prob)) {
      for (ColumnId e : data.entity_columns[topic]) {
        if (rng.Bernoulli(options.entity_comention_prob)) {
          row.push_back(e);
          entity_present = true;
        }
      }
    }
    const double theme_prob = entity_present
                                  ? options.entity_implies_theme_prob
                                  : options.topic_word_prob;
    for (ColumnId w : data.theme_columns[topic]) {
      if (rng.Bernoulli(theme_prob)) row.push_back(w);
    }
    for (const auto& [first, second] : data.collocations[topic]) {
      if (!rng.Bernoulli(options.collocation_prob)) continue;
      // Both members with probability `stickiness`, otherwise one member
      // alone — the pair's Jaccard similarity converges to stickiness.
      if (rng.Bernoulli(options.collocation_stickiness)) {
        row.push_back(first);
        row.push_back(second);
      } else if (rng.Bernoulli(0.5)) {
        row.push_back(first);
      } else {
        row.push_back(second);
      }
    }
    const uint64_t len = doc_len.Sample(rng);
    for (uint64_t i = 0; i < len; ++i) {
      row.push_back(background_base +
                    static_cast<ColumnId>(background_sampler.Sample(rng)));
    }
    builder.AddRow(row);
  }
  data.matrix = builder.Build();
  return data;
}

}  // namespace dmc
