#include "datagen/weblog_gen.h"

#include <utility>
#include <vector>

#include "util/logging.h"
#include "util/random.h"
#include "util/zipf.h"

namespace dmc {

BinaryMatrix GenerateWebLog(const WebLogOptions& options) {
  DMC_CHECK_GE(options.num_urls, options.num_sections);
  DMC_CHECK_GE(options.num_sections, 1u);
  Rng rng(options.seed);

  const uint32_t pages_per_section =
      options.num_urls / options.num_sections;
  const ZipfSampler section_sampler(options.num_sections, 0.8);
  const ZipfSampler page_sampler(pages_per_section, options.url_zipf_theta);
  const PowerLawSampler activity(
      options.min_pages_per_client,
      std::min<uint64_t>(options.max_pages_per_client, options.num_urls),
      options.client_activity_alpha);

  std::vector<std::vector<ColumnId>> all_rows;
  all_rows.reserve(options.num_clients);
  std::vector<ColumnId> row;
  const uint32_t regular_clients =
      options.num_clients > options.num_crawlers
          ? options.num_clients - options.num_crawlers
          : options.num_clients;

  for (uint32_t client = 0; client < regular_clients; ++client) {
    row.clear();
    const uint64_t pages = activity.Sample(rng);
    // A client browses 1-3 sections; pages cluster within them.
    const uint32_t sections = 1 + static_cast<uint32_t>(rng.Uniform(3));
    for (uint64_t p = 0; p < pages; ++p) {
      const uint32_t section_slot = static_cast<uint32_t>(
          rng.Uniform(sections));
      // Deterministic per-client section choice seeded by slot.
      uint64_t mix = options.seed ^ (uint64_t{client} << 20) ^ section_slot;
      const uint32_t section =
          (section_slot == 0)
              ? static_cast<uint32_t>(section_sampler.Sample(rng))
              : static_cast<uint32_t>(Mix64(mix) % options.num_sections);
      const uint32_t page_rank =
          static_cast<uint32_t>(page_sampler.Sample(rng));
      const ColumnId url = section + page_rank * options.num_sections;
      if (url >= options.num_urls) continue;
      row.push_back(url);
      // Section index page: URL ids [0, num_sections) are the indexes.
      if (url >= options.num_sections &&
          rng.Bernoulli(options.index_visit_prob)) {
        row.push_back(section);
      }
    }
    all_rows.push_back(row);
  }

  // Crawlers: nearly full rows.
  for (uint32_t k = 0;
       k < options.num_crawlers && regular_clients + k < options.num_clients;
       ++k) {
    row.clear();
    for (ColumnId url = 0; url < options.num_urls; ++url) {
      if (rng.Bernoulli(options.crawler_coverage)) row.push_back(url);
    }
    all_rows.push_back(row);
  }

  // Real logs intersperse crawler sessions with regular traffic;
  // shuffle so dense rows land at arbitrary scan positions (this is what
  // makes the §4.1 re-ordering matter).
  for (size_t i = all_rows.size(); i > 1; --i) {
    const size_t j = rng.Uniform(i);
    std::swap(all_rows[i - 1], all_rows[j]);
  }

  return BinaryMatrix::FromRows(options.num_urls, std::move(all_rows));
}

}  // namespace dmc
