#include "datagen/linkgraph_gen.h"

#include <algorithm>
#include <vector>

#include "util/logging.h"
#include "util/random.h"
#include "util/zipf.h"

namespace dmc {

BinaryMatrix GenerateLinkGraph(const LinkGraphOptions& options) {
  DMC_CHECK_GE(options.num_pages, 4u);
  Rng rng(options.seed);
  const PowerLawSampler degree(options.min_out_degree,
                               options.max_out_degree,
                               options.out_degree_alpha);

  std::vector<std::vector<ColumnId>> out_links(options.num_pages);
  // Degree-biased sampling pool: every link appends its destination, so a
  // uniform draw from the pool is preferential attachment.
  std::vector<ColumnId> pref_pool;
  pref_pool.reserve(options.num_pages * 8);
  // twin[p] = the mirror of destination p, if any.
  std::vector<int64_t> twin(options.num_pages, -1);

  // Seed pages link to each other in a small ring.
  const uint32_t kSeedPages = 4;
  for (uint32_t p = 0; p < kSeedPages; ++p) {
    const ColumnId dst = (p + 1) % kSeedPages;
    out_links[p].push_back(dst);
    pref_pool.push_back(dst);
  }

  auto add_link = [&](uint32_t src, ColumnId dst) {
    out_links[src].push_back(dst);
    pref_pool.push_back(dst);
    if (twin[dst] >= 0 && rng.Bernoulli(options.twin_follow_prob)) {
      const ColumnId t = static_cast<ColumnId>(twin[dst]);
      out_links[src].push_back(t);
      pref_pool.push_back(t);
    }
  };

  for (uint32_t p = kSeedPages; p < options.num_pages; ++p) {
    const uint32_t prototype = static_cast<uint32_t>(rng.Uniform(p));
    const bool mirror = rng.Bernoulli(options.mirror_fraction) &&
                        !out_links[prototype].empty();
    if (mirror) {
      // Near-exact copy of the prototype's out-links; this page becomes
      // the prototype's twin as a destination.
      for (ColumnId dst : out_links[prototype]) {
        if (rng.Bernoulli(options.mirror_noise)) continue;
        out_links[p].push_back(dst);
        pref_pool.push_back(dst);
      }
      if (twin[prototype] < 0) {
        twin[prototype] = p;
        twin[p] = prototype;
      }
      continue;
    }
    const uint64_t k = degree.Sample(rng);
    for (uint64_t e = 0; e < k; ++e) {
      ColumnId dst;
      if (!out_links[prototype].empty() && rng.Bernoulli(options.copy_prob)) {
        dst = out_links[prototype][rng.Uniform(out_links[prototype].size())];
      } else if (rng.Bernoulli(options.uniform_prob)) {
        dst = static_cast<ColumnId>(rng.Uniform(p));
      } else {
        dst = pref_pool[rng.Uniform(pref_pool.size())];
      }
      if (dst == p) continue;
      add_link(p, dst);
    }
  }

  return BinaryMatrix::FromRows(options.num_pages, std::move(out_links));
}

}  // namespace dmc
