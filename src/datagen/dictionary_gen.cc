#include "datagen/dictionary_gen.h"

#include <algorithm>

#include "util/logging.h"
#include "util/random.h"
#include "util/zipf.h"

namespace dmc {

DictionaryData GenerateDictionary(const DictionaryOptions& options) {
  Rng rng(options.seed);
  const ZipfSampler word_sampler(options.num_definition_words,
                                 options.def_zipf_theta);
  const PowerLawSampler def_len(options.def_len_min, options.def_len_max,
                                options.def_len_alpha);

  DictionaryData data;
  // definitions[h] = set of definition-word row ids for head word h.
  std::vector<std::vector<RowId>> definitions(options.num_head_words);

  const uint32_t grouped_heads =
      options.num_synonym_groups * options.synonym_group_size;
  DMC_CHECK_LE(grouped_heads, options.num_head_words);

  // Synonym groups occupy the first columns: each group shares a base
  // definition with per-member noise.
  std::vector<RowId> base;
  for (uint32_t g = 0; g < options.num_synonym_groups; ++g) {
    base.clear();
    const uint64_t len = std::max<uint64_t>(def_len.Sample(rng), 4);
    for (uint64_t i = 0; i < len; ++i) {
      base.push_back(static_cast<RowId>(word_sampler.Sample(rng)));
    }
    std::sort(base.begin(), base.end());
    base.erase(std::unique(base.begin(), base.end()), base.end());
    data.synonym_groups.emplace_back();
    for (uint32_t k = 0; k < options.synonym_group_size; ++k) {
      const ColumnId head = g * options.synonym_group_size + k;
      data.synonym_groups.back().push_back(head);
      for (RowId w : base) {
        if (rng.Bernoulli(options.synonym_overlap)) {
          definitions[head].push_back(w);
        }
      }
      // One member-specific word ("brother" vs "sister").
      definitions[head].push_back(
          static_cast<RowId>(word_sampler.Sample(rng)));
    }
  }

  // Remaining head words get independent definitions.
  for (ColumnId head = grouped_heads; head < options.num_head_words;
       ++head) {
    const uint64_t len = def_len.Sample(rng);
    for (uint64_t i = 0; i < len; ++i) {
      definitions[head].push_back(
          static_cast<RowId>(word_sampler.Sample(rng)));
    }
  }

  // Assemble rows (definition words) from the per-column sets.
  std::vector<std::vector<ColumnId>> rows(options.num_definition_words);
  for (ColumnId head = 0; head < options.num_head_words; ++head) {
    for (RowId w : definitions[head]) {
      rows[w].push_back(head);
    }
  }
  data.matrix = BinaryMatrix::FromRows(options.num_head_words,
                                       std::move(rows));
  return data;
}

}  // namespace dmc
