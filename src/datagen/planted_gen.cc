#include "datagen/planted_gen.h"

#include <algorithm>
#include <numeric>

#include "rules/rule.h"
#include "util/logging.h"
#include "util/random.h"

namespace dmc {

namespace {

// `count` distinct row ids, shuffled from [0, n).
std::vector<RowId> SampleRows(uint32_t count, uint32_t n, Rng& rng) {
  DMC_CHECK_LE(count, n);
  // Partial Fisher-Yates over an index vector.
  std::vector<RowId> all(n);
  std::iota(all.begin(), all.end(), RowId{0});
  for (uint32_t i = 0; i < count; ++i) {
    const uint64_t j = i + rng.Uniform(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(count);
  return all;
}

}  // namespace

PlantedData GeneratePlanted(const PlantedOptions& options) {
  DMC_CHECK_LE(options.implication_hits, options.implication_lhs_ones);
  DMC_CHECK_LE(options.sim_intersection, options.sim_ones_a);
  DMC_CHECK_LE(options.sim_ones_a, options.sim_ones_b);
  Rng rng(options.seed);

  const ColumnId imp_base = options.num_noise_columns;
  const ColumnId sim_base = imp_base + 2 * options.num_implications;
  const ColumnId num_columns = sim_base + 2 * options.num_similarities;

  std::vector<std::vector<ColumnId>> rows(options.num_rows);

  // Background noise.
  for (RowId r = 0; r < options.num_rows; ++r) {
    for (ColumnId c = 0; c < options.num_noise_columns; ++c) {
      if (rng.Bernoulli(options.noise_density)) rows[r].push_back(c);
    }
  }

  PlantedData data;

  // Planted implications: lhs has implication_lhs_ones rows, of which
  // exactly implication_hits also carry rhs; rhs gets extra rows so
  // ones(lhs) < ones(rhs) and the rule direction is canonical.
  for (uint32_t k = 0; k < options.num_implications; ++k) {
    const ColumnId lhs = imp_base + 2 * k;
    const ColumnId rhs = lhs + 1;
    const uint32_t rhs_ones =
        options.implication_hits + options.implication_rhs_extra;
    const auto picked = SampleRows(
        options.implication_lhs_ones + options.implication_rhs_extra,
        options.num_rows, rng);
    // First lhs_ones rows: lhs; first `hits` of them also rhs; the
    // remaining picked rows: rhs only.
    for (uint32_t i = 0; i < options.implication_lhs_ones; ++i) {
      rows[picked[i]].push_back(lhs);
      if (i < options.implication_hits) rows[picked[i]].push_back(rhs);
    }
    for (uint32_t i = options.implication_lhs_ones; i < picked.size();
         ++i) {
      rows[picked[i]].push_back(rhs);
    }
    ImplicationRule rule;
    rule.lhs = lhs;
    rule.rhs = rhs;
    rule.lhs_ones = options.implication_lhs_ones;
    rule.misses = options.implication_lhs_ones - options.implication_hits;
    data.implications.Add(rule);
    (void)rhs_ones;
  }

  // Planted similarity pairs with exact intersection.
  for (uint32_t k = 0; k < options.num_similarities; ++k) {
    const ColumnId a = sim_base + 2 * k;
    const ColumnId b = a + 1;
    const uint32_t total = options.sim_ones_a + options.sim_ones_b -
                           options.sim_intersection;
    const auto picked = SampleRows(total, options.num_rows, rng);
    // Layout: [intersection][a only][b only].
    uint32_t idx = 0;
    for (uint32_t i = 0; i < options.sim_intersection; ++i, ++idx) {
      rows[picked[idx]].push_back(a);
      rows[picked[idx]].push_back(b);
    }
    for (uint32_t i = options.sim_intersection; i < options.sim_ones_a;
         ++i, ++idx) {
      rows[picked[idx]].push_back(a);
    }
    for (uint32_t i = options.sim_intersection; i < options.sim_ones_b;
         ++i, ++idx) {
      rows[picked[idx]].push_back(b);
    }
    SimilarityPair pair;
    pair.a = a;
    pair.b = b;
    pair.ones_a = options.sim_ones_a;
    pair.ones_b = options.sim_ones_b;
    pair.intersection = options.sim_intersection;
    data.similarities.Add(pair);
  }

  data.matrix = BinaryMatrix::FromRows(num_columns, std::move(rows));
  data.implications.Canonicalize();
  data.similarities.Canonicalize();
  return data;
}

}  // namespace dmc
