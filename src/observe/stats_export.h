// One export path for every stats struct the engines emit.
//
// The exported document (schema_version 1) is:
//
//   {
//     "schema_version": 1,
//     "tool":    "<producer, e.g. dmc_cli>",
//     "dataset": "<input name>",
//     "labels":  { "<k>": "<v>", ... },          // free-form run labels
//     "rules_total": <n>,                        // omitted when < 0
//     "mining":   { ...MiningStats... },         // present when supplied
//     "parallel": { ...ParallelMiningStats...,
//                   "per_shard": [ {MiningStats}, ... ] },
//     "external": { ...ExternalMiningStats... },
//     "shard":    { ...shard::ShardMiningStats... },
//     "metrics":  { "counters": {...}, "gauges": {...},
//                   "timers": {...}, "histograms": {...} }
//   }
//
// Field names inside each section match the struct members one-to-one,
// so the schema is documented by mining_stats.h / parallel_dmc.h /
// external_miner.h / shard/shard_stats.h. Timing fields all end in
// "seconds"; golden tests mask exactly those.

#ifndef DMC_OBSERVE_STATS_EXPORT_H_
#define DMC_OBSERVE_STATS_EXPORT_H_

#include <map>
#include <ostream>
#include <string>

#include "util/status.h"

namespace dmc {

class JsonWriter;
class MetricsRegistry;
struct MiningStats;
struct ParallelMiningStats;
struct ExternalMiningStats;
namespace shard {
struct ShardMiningStats;
}  // namespace shard

/// Writers for the individual sections, exposed so tests can check one
/// struct's serialization in isolation.
void WriteJson(JsonWriter& w, const MiningStats& stats);
void WriteJson(JsonWriter& w, const ParallelMiningStats& stats);
void WriteJson(JsonWriter& w, const ExternalMiningStats& stats);
void WriteJson(JsonWriter& w, const shard::ShardMiningStats& stats);

/// Everything one metrics document can carry; null pointers omit their
/// section. The pointed-to objects must outlive the export call.
struct MetricsReport {
  std::string tool;
  std::string dataset;
  std::map<std::string, std::string> labels;
  /// Total rules in the produced rule set; negative = omit.
  int64_t rules_total = -1;
  const MiningStats* mining = nullptr;
  const ParallelMiningStats* parallel = nullptr;
  const ExternalMiningStats* external = nullptr;
  const shard::ShardMiningStats* shard = nullptr;
  const MetricsRegistry* metrics = nullptr;
};

/// Writes the full document to `os` (pretty-printed, trailing newline).
Status ExportMetricsJson(const MetricsReport& report, std::ostream& os);

/// Opens `path`, writes the document, and closes it.
Status ExportMetricsJsonFile(const MetricsReport& report,
                             const std::string& path);

/// Mirrors a stats struct into registry gauges/counters under
/// "<prefix>.<field>" (e.g. "imp.peak_counter_bytes"), so ad-hoc
/// instrumentation and the engine stats land in one namespace.
void RecordToRegistry(MetricsRegistry* registry, const std::string& prefix,
                      const MiningStats& stats);
void RecordToRegistry(MetricsRegistry* registry, const std::string& prefix,
                      const ParallelMiningStats& stats);
void RecordToRegistry(MetricsRegistry* registry, const std::string& prefix,
                      const ExternalMiningStats& stats);
void RecordToRegistry(MetricsRegistry* registry, const std::string& prefix,
                      const shard::ShardMiningStats& stats);

}  // namespace dmc

#endif  // DMC_OBSERVE_STATS_EXPORT_H_
