#include "observe/json_writer.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace dmc {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[64];
  const auto res =
      std::to_chars(buf, buf + sizeof(buf), value);
  std::string out(buf, res.ptr);
  // Bare shortest-round-trip output like "3" is a valid JSON number but
  // loses the "this was a double" signal; keep integral doubles as-is
  // (golden files mask timing values anyway).
  return out;
}

void JsonWriter::NewlineIndent() {
  if (indent_ <= 0) return;
  os_ << '\n';
  for (size_t i = 0; i < has_elements_.size(); ++i) {
    for (int k = 0; k < indent_; ++k) os_ << ' ';
  }
}

void JsonWriter::Prefix() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // key already emitted the comma/indent
  }
  if (!has_elements_.empty()) {
    if (has_elements_.back()) os_ << ',';
    has_elements_.back() = true;
    NewlineIndent();
  }
}

void JsonWriter::BeginObject() {
  Prefix();
  os_ << '{';
  has_elements_.push_back(false);
}

void JsonWriter::EndObject() {
  const bool had = has_elements_.back();
  has_elements_.pop_back();
  if (had) NewlineIndent();
  os_ << '}';
}

void JsonWriter::BeginArray() {
  Prefix();
  os_ << '[';
  has_elements_.push_back(false);
}

void JsonWriter::EndArray() {
  const bool had = has_elements_.back();
  has_elements_.pop_back();
  if (had) NewlineIndent();
  os_ << ']';
}

void JsonWriter::Key(std::string_view name) {
  if (has_elements_.back()) os_ << ',';
  has_elements_.back() = true;
  NewlineIndent();
  os_ << '"' << JsonEscape(name) << "\":";
  if (indent_ > 0) os_ << ' ';
  pending_key_ = true;
}

void JsonWriter::Value(std::string_view s) {
  Prefix();
  os_ << '"' << JsonEscape(s) << '"';
}

void JsonWriter::Value(bool b) {
  Prefix();
  os_ << (b ? "true" : "false");
}

void JsonWriter::Value(double d) {
  Prefix();
  os_ << JsonNumber(d);
}

void JsonWriter::Value(int64_t v) {
  Prefix();
  os_ << v;
}

void JsonWriter::Value(uint64_t v) {
  Prefix();
  os_ << v;
}

void JsonWriter::Null() {
  Prefix();
  os_ << "null";
}

void JsonWriter::Raw(std::string_view json) {
  Prefix();
  os_ << json;
}

}  // namespace dmc
